/**
 * @file
 * Unit tests for the 2-bit DnaSequence representation.
 */

#include <gtest/gtest.h>

#include "genomics/sequence.hh"
#include "util/rng.hh"

namespace {

using namespace gpx;
using genomics::DnaSequence;

TEST(Sequence, EncodeDecodeRoundTrip)
{
    DnaSequence s("ACGTACGTTGCA");
    EXPECT_EQ(s.size(), 12u);
    EXPECT_EQ(s.toString(), "ACGTACGTTGCA");
}

TEST(Sequence, LowerCaseAndAmbiguityHandled)
{
    DnaSequence s("acgtN");
    EXPECT_EQ(s.toString(), "ACGTA"); // N maps to A
}

TEST(Sequence, AtMatchesEncoding)
{
    DnaSequence s("ACGT");
    EXPECT_EQ(s.at(0), genomics::BaseA);
    EXPECT_EQ(s.at(1), genomics::BaseC);
    EXPECT_EQ(s.at(2), genomics::BaseG);
    EXPECT_EQ(s.at(3), genomics::BaseT);
}

TEST(Sequence, SetOverwritesBase)
{
    DnaSequence s("AAAA");
    s.set(2, genomics::BaseT);
    EXPECT_EQ(s.toString(), "AATA");
}

TEST(Sequence, SubExtractsRange)
{
    DnaSequence s("ACGTACGT");
    EXPECT_EQ(s.sub(2, 4).toString(), "GTAC");
    EXPECT_EQ(s.sub(0, 0).size(), 0u);
}

TEST(Sequence, RevCompKnownValue)
{
    DnaSequence s("AACGTT");
    EXPECT_EQ(s.revComp().toString(), "AACGTT"); // palindrome
    EXPECT_EQ(DnaSequence("ACCT").revComp().toString(), "AGGT");
}

TEST(Sequence, RevCompInvolution)
{
    util::Pcg32 rng(3);
    std::string s;
    for (int i = 0; i < 257; ++i)
        s.push_back(genomics::baseToChar(rng.below(4)));
    DnaSequence seq(s);
    EXPECT_EQ(seq.revComp().revComp(), seq);
}

TEST(Sequence, AppendConcatenates)
{
    DnaSequence a("ACG");
    DnaSequence b("TTT");
    a.append(b);
    EXPECT_EQ(a.toString(), "ACGTTT");
}

TEST(Sequence, PackedBytesDeterministic)
{
    DnaSequence a("ACGTACGT");
    DnaSequence b("ACGTACGT");
    EXPECT_EQ(a.packed(), b.packed());
    DnaSequence c("ACGTACGA");
    EXPECT_NE(a.packed(), c.packed());
}

TEST(Sequence, BitPlanesMatchBaseBits)
{
    DnaSequence s("ACGT");
    std::vector<u64> lo, hi;
    s.bitPlanes(lo, hi);
    ASSERT_EQ(lo.size(), 1u);
    // A=00 C=01 G=10 T=11 -> lo bits 0101 (C,T), hi bits 0011 (G,T).
    EXPECT_EQ(lo[0], 0b1010u);
    EXPECT_EQ(hi[0], 0b1100u);
}

TEST(Sequence, BitPlanesCrossWordBoundary)
{
    std::string s(70, 'T');
    DnaSequence seq(s);
    std::vector<u64> lo, hi;
    seq.bitPlanes(lo, hi);
    ASSERT_EQ(lo.size(), 2u);
    EXPECT_EQ(lo[0], ~u64{0});
    EXPECT_EQ(lo[1], (u64{1} << 6) - 1);
}

TEST(Sequence, HammingDistanceCountsDiffs)
{
    DnaSequence a("ACGTACGT");
    DnaSequence b("ACGAACGA");
    EXPECT_EQ(genomics::hammingDistance(a, b), 2u);
    EXPECT_EQ(genomics::hammingDistance(a, a), 0u);
}

TEST(Sequence, FromCodesMatchesPush)
{
    std::vector<u8> codes = { 0, 1, 2, 3, 3, 2 };
    DnaSequence s = DnaSequence::fromCodes(codes);
    EXPECT_EQ(s.toString(), "ACGTTG");
}

TEST(Sequence, ComplementBase)
{
    EXPECT_EQ(genomics::complementBase(genomics::BaseA), genomics::BaseT);
    EXPECT_EQ(genomics::complementBase(genomics::BaseC), genomics::BaseG);
}

TEST(DnaView, BasicAccessAndWords)
{
    DnaSequence s("ACGTACGTTGCA");
    genomics::DnaView v = s.view(2, 7); // GTACGTT
    EXPECT_EQ(v.size(), 7u);
    EXPECT_EQ(v.toString(), "GTACGTT");
    EXPECT_EQ(v.at(0), genomics::BaseG);
    EXPECT_EQ(v.at(6), genomics::BaseT);
    // One packed word: G,T,A,C,G,T,T = 2,3,0,1,2,3,3 LSB-first.
    u64 w = v.word(0);
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ((w >> (2 * i)) & 3u, v.at(static_cast<std::size_t>(i)));
    EXPECT_EQ(w >> 14, 0u); // zero-padded past the view
}

TEST(DnaView, EqualityAcrossDifferentAlignments)
{
    DnaSequence s("TTACGTACGTACG");
    // The same 8-base payload viewed at offsets 2 and from a copy at 0.
    DnaSequence copy = s.sub(2, 8);
    EXPECT_TRUE(s.view(2, 8) == copy.view());
    EXPECT_FALSE(s.view(1, 8) == copy.view());
    EXPECT_FALSE(s.view(2, 7) == copy.view());
}

TEST(DnaView, MaterializeRoundTrip)
{
    std::string ascii(157, 'A');
    for (std::size_t i = 0; i < ascii.size(); ++i)
        ascii[i] = genomics::baseToChar(static_cast<u8>(i % 4));
    DnaSequence s{ std::string_view(ascii) };
    DnaSequence copy = s.view(3, 140).materialize();
    EXPECT_EQ(copy.toString(), ascii.substr(3, 140));
}

} // namespace
