/**
 * @file
 * Unit tests for anchor chaining.
 */

#include <gtest/gtest.h>

#include "align/chain.hh"

namespace {

using namespace gpx;
using align::Anchor;
using align::ChainParams;
using align::chainAnchors;

ChainParams
lenientParams()
{
    ChainParams p;
    p.minScore = 10;
    return p;
}

TEST(Chain, EmptyInput)
{
    EXPECT_TRUE(chainAnchors({}, lenientParams()).empty());
}

TEST(Chain, SingleAnchorFormsChain)
{
    std::vector<Anchor> anchors = { { 10, 1000, 21, false } };
    auto chains = chainAnchors(anchors, lenientParams());
    ASSERT_EQ(chains.size(), 1u);
    EXPECT_EQ(chains[0].refStart, 1000u);
    EXPECT_EQ(chains[0].refEnd, 1021u);
}

TEST(Chain, ColinearAnchorsMerge)
{
    std::vector<Anchor> anchors = {
        { 0, 1000, 21, false },
        { 30, 1030, 21, false },
        { 60, 1060, 21, false },
    };
    auto chains = chainAnchors(anchors, lenientParams());
    ASSERT_GE(chains.size(), 1u);
    EXPECT_EQ(chains[0].anchorIdx.size(), 3u);
    EXPECT_EQ(chains[0].queryStart, 0u);
    EXPECT_EQ(chains[0].queryEnd, 81u);
}

TEST(Chain, DistantAnchorsSeparate)
{
    std::vector<Anchor> anchors = {
        { 0, 1000, 21, false },
        { 30, 900000, 21, false }, // far beyond maxGap
    };
    auto chains = chainAnchors(anchors, lenientParams());
    // Each anchor can only stand alone (score 21 each).
    for (const auto &c : chains)
        EXPECT_EQ(c.anchorIdx.size(), 1u);
}

TEST(Chain, SkewPenaltyBreaksDiagonalJumps)
{
    ChainParams p = lenientParams();
    p.maxSkew = 10;
    std::vector<Anchor> anchors = {
        { 0, 1000, 21, false },
        { 30, 1230, 21, false }, // query gap 9, ref gap 209 -> skew 200
    };
    auto chains = chainAnchors(anchors, p);
    for (const auto &c : chains)
        EXPECT_EQ(c.anchorIdx.size(), 1u);
}

TEST(Chain, BestChainFirst)
{
    std::vector<Anchor> anchors = {
        { 0, 1000, 21, false },
        { 30, 1030, 21, false },
        { 0, 50000, 21, false }, // lone decoy
    };
    auto chains = chainAnchors(anchors, lenientParams());
    ASSERT_GE(chains.size(), 1u);
    EXPECT_GE(chains[0].score, 40.0);
    EXPECT_EQ(chains[0].refStart, 1000u);
}

TEST(Chain, MinScoreFiltersWeakChains)
{
    ChainParams p;
    p.minScore = 100;
    std::vector<Anchor> anchors = { { 0, 1000, 21, false } };
    EXPECT_TRUE(chainAnchors(anchors, p).empty());
}

TEST(Chain, RespectsMaxChains)
{
    ChainParams p = lenientParams();
    p.maxChains = 2;
    std::vector<Anchor> anchors;
    for (int i = 0; i < 10; ++i)
        anchors.push_back({ 0, static_cast<GlobalPos>(i) * 100000, 21,
                            false });
    auto chains = chainAnchors(anchors, p);
    EXPECT_LE(chains.size(), 2u);
}

TEST(Chain, OverlappingAnchorsNotChained)
{
    // Second anchor overlaps the first on the reference.
    std::vector<Anchor> anchors = {
        { 0, 1000, 21, false },
        { 30, 1010, 21, false },
    };
    auto chains = chainAnchors(anchors, lenientParams());
    for (const auto &c : chains)
        EXPECT_LE(c.anchorIdx.size(), 1u);
}

} // namespace
