/**
 * @file
 * Parameterized generality sweeps: the pipeline is specified for 150 bp
 * GIAB-style reads, but a production mapper must behave across read
 * lengths, seed lengths and adjacency thresholds. These suites pin the
 * invariants that must hold at every design point.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "baseline/mm2lite.hh"
#include "genpair/light_align.hh"
#include "genpair/pipeline.hh"
#include "hwsim/dram.hh"
#include "hwsim/nmsl.hh"
#include "simdata/genome_generator.hh"
#include "util/rng.hh"

namespace {

using namespace gpx;
using genomics::DnaSequence;
using genomics::Reference;

Reference
sharedRef()
{
    simdata::GenomeParams gp;
    gp.length = 300000;
    gp.chromosomes = 1;
    gp.seed = 91;
    return simdata::generateGenome(gp);
}

/** Light alignment across read lengths: threshold scales, CIGAR spans. */
class LightAlignLengths : public ::testing::TestWithParam<u32>
{
};

TEST_P(LightAlignLengths, ExactAndEditedReadsAlign)
{
    const u32 len = GetParam();
    Reference ref = sharedRef();
    genpair::LightAlignParams params;
    genpair::LightAligner aligner(ref, params);
    const auto scoring = params.scoring;

    // Exact read.
    DnaSequence read = ref.window(5000, len);
    auto r = aligner.align(read, 5000);
    ASSERT_TRUE(r.aligned) << "len " << len;
    EXPECT_EQ(r.score, scoring.perfectScore(len));
    EXPECT_EQ(r.cigar.querySpan(), len);

    // One mismatch: still above the scaled threshold for len >= 100.
    read.set(len / 2, (read.at(len / 2) + 1) & 3u);
    auto rm = aligner.align(read, 5000);
    ASSERT_TRUE(rm.aligned) << "len " << len;
    EXPECT_EQ(rm.score, scoring.perfectScore(len) - 10);

    // One deletion of 2 at mid-read.
    DnaSequence del = ref.window(5000, len / 2);
    del.append(ref.windowView(5000 + len / 2 + 2, len - len / 2));
    auto rd = aligner.align(del, 5000);
    ASSERT_TRUE(rd.aligned) << "len " << len;
    EXPECT_EQ(rd.cigar.deletedBases(), 2u);
    EXPECT_EQ(rd.cigar.refSpan(), len + 2u);
}

INSTANTIATE_TEST_SUITE_P(ReadLengths, LightAlignLengths,
                         ::testing::Values(100u, 150u, 200u, 250u));

/** SeedMap across seed lengths. */
class SeedLengths : public ::testing::TestWithParam<u32>
{
};

TEST_P(SeedLengths, IndexAndSeederConsistent)
{
    const u32 seedLen = GetParam();
    Reference ref = sharedRef();
    genpair::SeedMapParams sp;
    sp.seedLen = seedLen;
    sp.tableBits = 19;
    genpair::SeedMap map(ref, sp);
    genpair::PartitionedSeeder seeder(map);

    DnaSequence read = ref.chromosome(0).sub(7000, 3 * seedLen);
    auto seeds = seeder.extract(read);
    EXPECT_EQ(seeds[0].offsetInRead, 0u);
    EXPECT_EQ(seeds[2].offsetInRead, 2 * seedLen);
    for (const auto &s : seeds) {
        auto span = map.lookup(s.hash);
        u32 want = static_cast<u32>(7000 + s.offsetInRead);
        EXPECT_NE(std::find(span.begin(), span.end(), want), span.end())
            << "seedLen " << seedLen;
    }
}

INSTANTIATE_TEST_SUITE_P(SeedLens, SeedLengths,
                         ::testing::Values(25u, 32u, 50u, 64u));

/** Pipeline across adjacency thresholds. */
class DeltaSweep : public ::testing::TestWithParam<u32>
{
};

TEST_P(DeltaSweep, InsertWithinDeltaMapsOnFastPath)
{
    const u32 delta = GetParam();
    Reference ref = sharedRef();
    genpair::SeedMapParams sp;
    sp.tableBits = 20;
    genpair::SeedMap map(ref, sp);
    genpair::GenPairParams params;
    params.delta = delta;
    genpair::GenPairPipeline pipe(ref, map, params, nullptr);

    // Insert chosen to sit just inside delta (start distance
    // = insert - 150 = delta - 50).
    u64 insert = delta + 100;
    genomics::ReadPair pair;
    pair.first.seq = ref.chromosome(0).sub(40000, 150);
    pair.second.seq =
        ref.chromosome(0).sub(40000 + insert - 150, 150).revComp();
    auto pm = pipe.mapPair(pair);
    EXPECT_EQ(pm.path, genomics::MappingPath::LightAligned)
        << "delta " << delta;

    // And just outside: distance = delta + 50.
    genpair::GenPairPipeline pipe2(ref, map, params, nullptr);
    u64 farInsert = delta + 200;
    genomics::ReadPair far;
    far.first.seq = ref.chromosome(0).sub(60000, 150);
    far.second.seq =
        ref.chromosome(0).sub(60000 + farInsert - 150, 150).revComp();
    auto pm2 = pipe2.mapPair(far);
    EXPECT_NE(pm2.path, genomics::MappingPath::LightAligned)
        << "delta " << delta;
    EXPECT_GE(pipe2.stats().paFilterFallback, 1u);
}

INSTANTIATE_TEST_SUITE_P(Deltas, DeltaSweep,
                         ::testing::Values(200u, 300u, 500u, 800u));

/** Scoring threshold scaling across read lengths. */
TEST(LightAlignParamsTest, MinScoreScalesWithLength)
{
    genpair::LightAlignParams p;
    EXPECT_EQ(p.minScoreFor(150), 276);
    EXPECT_EQ(p.minScoreFor(100), 184); // 276/300 x 200
    EXPECT_LT(p.minScoreFor(100), p.minScoreFor(250));
}

/** Light alignment must reject candidates pointing nowhere close. */
class WrongCandidateRejection : public ::testing::TestWithParam<int>
{
};

TEST_P(WrongCandidateRejection, RandomCandidateDoesNotAlign)
{
    Reference ref = sharedRef();
    genpair::LightAligner aligner(ref, genpair::LightAlignParams{});
    util::Pcg32 rng(GetParam() * 7 + 3);
    DnaSequence read = ref.window(1000 + rng.below(100000), 150);
    GlobalPos wrong = 150000 + rng.below(100000);
    auto r = aligner.align(read, wrong);
    // A random far-away window must not pass the 276 gate (collision
    // odds at 150 bp are astronomically small).
    EXPECT_FALSE(r.aligned);
}

INSTANTIATE_TEST_SUITE_P(Random, WrongCandidateRejection,
                         ::testing::Range(0, 8));


// ---------------------------------------------------------------------
// DRAM channel invariants under randomized request streams
// ---------------------------------------------------------------------

class DramRandomTraffic
    : public ::testing::TestWithParam<std::tuple<const char *, u64>>
{
  protected:
    hwsim::MemoryConfig
    config() const
    {
        std::string name = std::get<0>(GetParam());
        if (name == "hbm2")
            return hwsim::MemoryConfig::hbm2();
        if (name == "ddr5")
            return hwsim::MemoryConfig::ddr5();
        return hwsim::MemoryConfig::gddr6();
    }
};

TEST_P(DramRandomTraffic, ConservationAndTimingInvariants)
{
    const auto cfg = config();
    hwsim::DramChannel chan(cfg, 16);
    util::Pcg32 rng(std::get<1>(GetParam()));

    const u32 total = 400;
    u64 pushed = 0, bytesPushed = 0;
    u64 drained = 0;
    u64 cycle = 0;
    u64 lastFinish = 0;
    while (drained < total) {
        if (pushed < total && chan.canAccept()) {
            hwsim::MemRequest req;
            req.addr = static_cast<u64>(rng.next()) << 6;
            req.bytes = 4 + rng.below(120);
            req.tag = pushed;
            chan.push(req);
            bytesPushed += req.bytes;
            ++pushed;
        }
        chan.tick(cycle);
        for (const auto &resp : chan.drain(cycle)) {
            // Responses never finish in the future.
            EXPECT_LE(resp.finishCycle, cycle);
            lastFinish = std::max(lastFinish, resp.finishCycle);
            ++drained;
        }
        ++cycle;
        ASSERT_LT(cycle, u64{10} << 20) << "channel wedged";
    }

    const auto &st = chan.stats();
    EXPECT_EQ(st.requests, total);
    // Bursts round bytes up to the burst size, never down.
    EXPECT_GE(st.bytesRead, bytesPushed);
    EXPECT_EQ(chan.inFlight(), 0u);
    // Row hits can never exceed column accesses, and every burst
    // occupies the bus for tBL cycles.
    EXPECT_LE(st.rowHits, st.bursts);
    EXPECT_EQ(st.busBusyCycles, st.bursts * cfg.tBL);
    EXPECT_GT(st.dynamicEnergyNj(cfg), 0.0);
    // A single channel cannot beat its own peak bandwidth.
    double gbps = static_cast<double>(st.bytesRead) /
                  (static_cast<double>(lastFinish) / cfg.clockGhz);
    EXPECT_LE(gbps, cfg.peakChannelGBps() * 1.001);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DramRandomTraffic,
    ::testing::Combine(::testing::Values("hbm2", "ddr5", "gddr6"),
                       ::testing::Values(u64{1}, u64{2}, u64{3})),
    [](const auto &test_info) {
        return std::string(std::get<0>(test_info.param)) + "_seed" +
               std::to_string(std::get<1>(test_info.param));
    });

// ---------------------------------------------------------------------
// Sequential vs random access: row-buffer locality must pay off
// ---------------------------------------------------------------------

TEST(DramRandomTraffic, SequentialBeatsRandom)
{
    const auto cfg = hwsim::MemoryConfig::hbm2();
    auto runTrace = [&](bool sequential) {
        hwsim::DramChannel chan(cfg, 16);
        util::Pcg32 rng(7);
        const u32 total = 300;
        u64 pushed = 0, drained = 0, cycle = 0;
        while (drained < total) {
            if (pushed < total && chan.canAccept()) {
                hwsim::MemRequest req;
                req.addr = sequential
                               ? pushed * 64
                               : static_cast<u64>(rng.next()) << 8;
                req.bytes = 64;
                req.tag = pushed;
                chan.push(req);
                ++pushed;
            }
            chan.tick(cycle);
            drained += chan.drain(cycle).size();
            ++cycle;
        }
        return std::pair<u64, u64>(cycle, chan.stats().rowHits);
    };
    auto [seqCycles, seqHits] = runTrace(true);
    auto [rndCycles, rndHits] = runTrace(false);
    EXPECT_GT(seqHits, rndHits);
    EXPECT_LT(seqCycles, rndCycles);
}


// ---------------------------------------------------------------------
// NMSL liveness: skewed traces retire under every window size
// ---------------------------------------------------------------------

class NmslLiveness
    : public ::testing::TestWithParam<std::tuple<u32, const char *>>
{
  protected:
    /** Synthesize an adversarial trace of the requested shape. */
    std::vector<hwsim::PairTrace>
    trace(const std::string &shape, util::Pcg32 &rng) const
    {
        std::vector<hwsim::PairTrace> t(256);
        for (std::size_t p = 0; p < t.size(); ++p) {
            for (auto &seed : t[p]) {
                if (shape == "hot-channel") {
                    // All seeds hash to the same channel residue, the
                    // worst case for the per-channel FIFOs.
                    seed.hash = 32 * static_cast<u32>(p);
                    seed.locCount = 4;
                } else if (shape == "heavy-tail") {
                    // One straggler seed per pair with a near-threshold
                    // location list; the rest are singletons.
                    seed.hash = rng.next();
                    seed.locCount = 1;
                } else { // uniform
                    seed.hash = rng.next();
                    seed.locCount = 1 + rng.below(8);
                }
                seed.locOffset = rng.next() >> 8;
            }
            if (shape == "heavy-tail")
                t[p][p % 6].locCount = 490; // just under the 500 cap
        }
        return t;
    }
};

TEST_P(NmslLiveness, AllPairsRetireUnderEveryWindow)
{
    const u32 window = std::get<0>(GetParam());
    util::Pcg32 rng(99);
    auto workload = trace(std::get<1>(GetParam()), rng);

    hwsim::NmslConfig cfg;
    cfg.windowSize = window;
    auto result = hwsim::NmslSim(cfg).run(workload);

    // Liveness: every pair retires; the deadlock the paper's sliding
    // window + centralized buffer prevent (SS5.2) must not occur for
    // any window size or traffic shape.
    EXPECT_EQ(result.pairs, workload.size());
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.mpairsPerSec, 0.0);
    // The centralized buffer never needs more than threshold-depth
    // FIFOs (the paper's sizing rule).
    EXPECT_LE(result.maxChannelFifoDepth,
              u64{cfg.channelFifoDepth} * cfg.mem.channels);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NmslLiveness,
    ::testing::Combine(::testing::Values(1u, 4u, 64u, 1024u),
                       ::testing::Values("uniform", "hot-channel",
                                         "heavy-tail")),
    [](const auto &test_info) {
        std::string name = std::get<1>(test_info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name + "_w" + std::to_string(std::get<0>(test_info.param));
    });

} // namespace
