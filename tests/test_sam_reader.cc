/**
 * @file
 * SAM reader tests: round trip through SamWriter, mandatory-column
 * validation, malformed-line quarantine, tag handling, and coordinate
 * resolution against the Reference.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "genomics/sam.hh"
#include "genomics/sam_reader.hh"
#include "simdata/genome_generator.hh"

namespace {

using namespace gpx;
using genomics::Cigar;
using genomics::Mapping;
using genomics::PairMapping;
using genomics::ReadPair;
using genomics::Reference;
using genomics::SamRecord;

Reference
smallRef()
{
    simdata::GenomeParams gp;
    gp.length = 40000;
    gp.chromosomes = 2;
    gp.seed = 3;
    return simdata::generateGenome(gp);
}

TEST(SamReader, RoundTripThroughWriter)
{
    Reference ref = smallRef();
    ReadPair pair;
    pair.first.name = "p0";
    pair.first.seq = ref.window(1000, 150);
    pair.second.name = "p0";
    pair.second.seq = ref.window(1237, 150).revComp();

    PairMapping pm;
    pm.first.mapped = true;
    pm.first.pos = 1000;
    pm.first.score = 300;
    pm.first.cigar = Cigar::parse("150M");
    pm.second.mapped = true;
    pm.second.pos = 1237;
    pm.second.reverse = true;
    pm.second.score = 290;
    pm.second.cigar = Cigar::parse("150M");

    std::ostringstream out;
    genomics::SamWriter writer(out, ref);
    writer.writeHeader();
    writer.writePair(pair, pm);

    std::istringstream in(out.str());
    auto sam = genomics::readSam(in);
    EXPECT_TRUE(sam.badLines.empty());
    EXPECT_GE(sam.headerLines.size(), 3u); // @HD, @SQ x2, @PG
    ASSERT_EQ(sam.records.size(), 2u);

    const auto &r1 = sam.records[0];
    EXPECT_EQ(r1.qname, "p0");
    EXPECT_TRUE(r1.isMapped());
    EXPECT_TRUE(r1.isFirstInPair());
    EXPECT_FALSE(r1.isReverse());
    EXPECT_EQ(*genomics::recordGlobalPos(r1, ref), 1000u);
    ASSERT_TRUE(r1.alignScore.has_value());
    EXPECT_EQ(*r1.alignScore, 300);
    EXPECT_EQ(r1.cigar.toString(), "150M");

    const auto &r2 = sam.records[1];
    EXPECT_TRUE(r2.isSecondInPair());
    EXPECT_TRUE(r2.isReverse());
    EXPECT_EQ(*genomics::recordGlobalPos(r2, ref), 1237u);
    // SAM stores reverse-mapped reads reference-forward.
    EXPECT_EQ(r2.seq, ref.window(1237, 150).toString());
}

TEST(SamReader, UnmappedRecordHasNoGlobalPos)
{
    Reference ref = smallRef();
    std::istringstream in("r1\t4\t*\t0\t0\t*\t*\t0\t0\tACGT\t*\n");
    auto sam = genomics::readSam(in);
    ASSERT_EQ(sam.records.size(), 1u);
    EXPECT_FALSE(sam.records[0].isMapped());
    EXPECT_FALSE(genomics::recordGlobalPos(sam.records[0], ref));
}

TEST(SamReader, MalformedLinesQuarantinedNotFatal)
{
    std::istringstream in(
        "good\t4\t*\t0\t0\t*\t*\t0\t0\tACGT\t*\n"
        "too\tfew\tfields\n"
        "bad\tflags\t*\t0\t0\t*\t*\t0\t0\tACGT\t*\n"
        "badcigar\t0\tchr1\t10\t60\t5Q\t*\t0\t0\tACGT\t*\n"
        "mapped_no_pos\t0\tchr1\t0\t60\t4M\t*\t0\t0\tACGT\t*\n");
    auto sam = genomics::readSam(in);
    EXPECT_EQ(sam.records.size(), 1u);
    EXPECT_EQ(sam.badLines.size(), 4u);
    EXPECT_EQ(sam.badLines[0].first, 2u); // line numbers preserved
}

TEST(SamReader, UnknownChromosomeRejected)
{
    Reference ref = smallRef();
    std::istringstream in(
        "r1\t0\tchrMT\t100\t60\t4M\t*\t0\t0\tACGT\t*\n");
    auto sam = genomics::readSam(in);
    ASSERT_EQ(sam.records.size(), 1u);
    EXPECT_FALSE(genomics::recordGlobalPos(sam.records[0], ref));
}

TEST(SamReader, PositionPastChromosomeEndRejected)
{
    Reference ref = smallRef();
    std::ostringstream line;
    line << "r1\t0\t" << ref.name(0) << '\t'
         << ref.chromosomeLength(0) + 5 << "\t60\t4M\t*\t0\t0\tACGT\t*\n";
    std::istringstream in(line.str());
    auto sam = genomics::readSam(in);
    ASSERT_EQ(sam.records.size(), 1u);
    EXPECT_FALSE(genomics::recordGlobalPos(sam.records[0], ref));
}

TEST(SamReader, SecondChromosomeCoordinatesResolve)
{
    Reference ref = smallRef();
    std::ostringstream line;
    line << "r1\t0\t" << ref.name(1) << "\t101\t60\t4M\t*\t0\t0\tACGT\t*\n";
    std::istringstream in(line.str());
    auto sam = genomics::readSam(in);
    auto pos = genomics::recordGlobalPos(sam.records[0], ref);
    ASSERT_TRUE(pos.has_value());
    EXPECT_EQ(*pos, ref.toGlobal(1, 100));
}

TEST(SamReader, TagsBeyondAsIgnored)
{
    std::istringstream in("r1\t0\tchr1\t10\t60\t4M\t*\t0\t0\tACGT\t*\t"
                          "NM:i:2\tAS:i:290\tXS:i:250\n");
    auto sam = genomics::readSam(in);
    ASSERT_EQ(sam.records.size(), 1u);
    ASSERT_TRUE(sam.records[0].alignScore.has_value());
    EXPECT_EQ(*sam.records[0].alignScore, 290);
}

TEST(SamReader, CrlfAndBlankLinesHandled)
{
    std::istringstream in("@HD\tVN:1.6\r\n\r\n"
                          "r1\t4\t*\t0\t0\t*\t*\t0\t0\tACGT\t*\r\n");
    auto sam = genomics::readSam(in);
    EXPECT_EQ(sam.headerLines.size(), 1u);
    EXPECT_EQ(sam.records.size(), 1u);
    EXPECT_TRUE(sam.badLines.empty());
}

} // namespace
