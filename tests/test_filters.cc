/**
 * @file
 * Unit, property and differential tests for the pre-alignment filter
 * library: the edit-distance oracle, mask operations, the four filters
 * (BaseCount, SHD, GateKeeper, SneakySnake) and the SneakySnake x Light
 * Alignment combination of paper §8.
 */

#include <gtest/gtest.h>

#include <memory>

#include "filters/base_count.hh"
#include "filters/edit_distance.hh"
#include "filters/filtered_light_align.hh"
#include "filters/gatekeeper.hh"
#include "filters/grim_filter.hh"
#include "filters/mask_ops.hh"
#include "filters/shd_filter.hh"
#include "filters/sneakysnake.hh"
#include "genpair/pipeline.hh"
#include "simdata/genome_generator.hh"
#include "simdata/read_simulator.hh"
#include "util/rng.hh"

namespace {

using namespace gpx;
using filters::BaseCountFilter;
using filters::FilterDecision;
using filters::GateKeeperFilter;
using filters::PreAlignmentFilter;
using filters::ShdFilter;
using filters::SneakySnakeFilter;
using genomics::DnaSequence;

DnaSequence
randomSeq(util::Pcg32 &rng, u32 len)
{
    DnaSequence s;
    for (u32 i = 0; i < len; ++i)
        s.push(static_cast<u8>(rng.below(4)));
    return s;
}

/** Apply n scattered substitutions at distinct positions. */
DnaSequence
withSubstitutions(const DnaSequence &seq, util::Pcg32 &rng, u32 n)
{
    DnaSequence out = seq;
    std::vector<bool> used(seq.size(), false);
    for (u32 k = 0; k < n; ++k) {
        u32 pos;
        do {
            pos = rng.below(static_cast<u32>(seq.size()));
        } while (used[pos]);
        used[pos] = true;
        out.set(pos, (out.at(pos) + 1 + rng.below(3)) & 3u);
    }
    return out;
}

/** Delete a run of n bases starting at pos. */
DnaSequence
withDeletionRun(const DnaSequence &seq, u32 pos, u32 n)
{
    DnaSequence out;
    for (std::size_t i = 0; i < seq.size(); ++i)
        if (i < pos || i >= pos + n)
            out.push(seq.at(i));
    return out;
}

/** Insert a run of n random bases at pos. */
DnaSequence
withInsertionRun(const DnaSequence &seq, util::Pcg32 &rng, u32 pos, u32 n)
{
    DnaSequence out;
    for (std::size_t i = 0; i < seq.size(); ++i) {
        if (i == pos)
            for (u32 k = 0; k < n; ++k)
                out.push(static_cast<u8>(rng.below(4)));
        out.push(seq.at(i));
    }
    return out;
}

// ---------------------------------------------------------------------
// Edit-distance oracle
// ---------------------------------------------------------------------

TEST(EditDistance, IdenticalIsZero)
{
    DnaSequence a("ACGTACGTACGT");
    EXPECT_EQ(filters::editDistance(a, a), 0u);
}

TEST(EditDistance, KnownSmallCases)
{
    auto dist = [](std::string_view x, std::string_view y) {
        DnaSequence a{ x }, b{ y };
        return filters::editDistance(a, b);
    };
    EXPECT_EQ(dist("ACGT", "AGGT"), 1u);  // one substitution
    EXPECT_EQ(dist("ACGT", "ACGGT"), 1u); // one insertion
    EXPECT_EQ(dist("ACGT", "AGT"), 1u);   // one deletion
    EXPECT_EQ(dist("AAAA", "TTTT"), 4u);
    EXPECT_EQ(dist("", "ACGT"), 4u);
}

TEST(EditDistance, SymmetricOnRandomPairs)
{
    util::Pcg32 rng(11);
    for (int k = 0; k < 20; ++k) {
        DnaSequence a = randomSeq(rng, 40 + rng.below(40));
        DnaSequence b = randomSeq(rng, 40 + rng.below(40));
        EXPECT_EQ(filters::editDistance(a, b), filters::editDistance(b, a));
    }
}

TEST(EditDistance, BoundedAgreesWithFullWithinCutoff)
{
    util::Pcg32 rng(12);
    for (int k = 0; k < 40; ++k) {
        DnaSequence a = randomSeq(rng, 80);
        u32 edits = rng.below(6);
        DnaSequence b = withSubstitutions(a, rng, edits);
        u32 full = filters::editDistance(a, b);
        for (u32 cutoff : { 2u, 5u, 8u }) {
            u32 bounded = filters::editDistanceBounded(a, b, cutoff);
            if (full <= cutoff)
                EXPECT_EQ(bounded, full);
            else
                EXPECT_EQ(bounded, cutoff + 1);
        }
    }
}

TEST(EditDistance, BoundedLengthGapShortCircuit)
{
    DnaSequence a("ACGTACGTACGTACGT");
    DnaSequence b("ACG");
    EXPECT_EQ(filters::editDistanceBounded(a, b, 3), 4u);
}

TEST(EditDistance, BoundedHandlesIndelRuns)
{
    util::Pcg32 rng(13);
    DnaSequence a = randomSeq(rng, 100);
    DnaSequence del = withDeletionRun(a, 30, 4);
    EXPECT_EQ(filters::editDistanceBounded(a, del, 6), 4u);
    DnaSequence ins = withInsertionRun(a, rng, 50, 3);
    EXPECT_EQ(filters::editDistanceBounded(a, ins, 6), 3u);
}

TEST(CandidateEditDistance, ExactPlacementIsZero)
{
    util::Pcg32 rng(14);
    DnaSequence window = randomSeq(rng, 200);
    DnaSequence read = window.sub(25, 150);
    EXPECT_EQ(filters::candidateEditDistance(read, window, 25, 5), 0u);
}

TEST(CandidateEditDistance, OffCenterWithinSlackIsZero)
{
    util::Pcg32 rng(15);
    DnaSequence window = randomSeq(rng, 220);
    DnaSequence read = window.sub(28, 150);
    // Candidate says 25, truth is 28; slack 5 covers it.
    EXPECT_EQ(filters::candidateEditDistance(read, window, 25, 5), 0u);
}

TEST(CandidateEditDistance, CountsSubstitutions)
{
    util::Pcg32 rng(16);
    DnaSequence window = randomSeq(rng, 200);
    DnaSequence read = withSubstitutions(window.sub(20, 150), rng, 3);
    EXPECT_EQ(filters::candidateEditDistance(read, window, 20, 5), 3u);
}

// ---------------------------------------------------------------------
// Mask operations
// ---------------------------------------------------------------------

TEST(MaskOps, OnesRunAtBasics)
{
    align::HammingMask m;
    m.bits = 16;
    m.words = { 0b0011101100001111 };
    EXPECT_EQ(filters::onesRunAt(m, 0), 4u);
    EXPECT_EQ(filters::onesRunAt(m, 4), 0u);
    EXPECT_EQ(filters::onesRunAt(m, 8), 2u);
    EXPECT_EQ(filters::onesRunAt(m, 11), 3u);
    EXPECT_EQ(filters::onesRunAt(m, 15), 0u);
    EXPECT_EQ(filters::onesRunAt(m, 16), 0u); // out of range
}

TEST(MaskOps, OnesRunCrossesWordBoundary)
{
    align::HammingMask m;
    m.bits = 100;
    m.words = { ~u64{0}, 0x7 }; // 64 ones then 3 ones
    EXPECT_EQ(filters::onesRunAt(m, 0), 67u);
    EXPECT_EQ(filters::onesRunAt(m, 60), 7u);
}

TEST(MaskOps, AmendShortRunsRemovesOnlyShortRuns)
{
    align::HammingMask m;
    m.bits = 16;
    //          fedcba9876543210
    m.words = { 0b0110111110001011 };
    auto out = filters::amendShortRuns(m, 3);
    // Runs: [0..1] len2 (killed), [3] len1 (killed), [7..11] len5
    // (kept), [13..14] len2 (killed).
    EXPECT_EQ(out.words[0], 0b0000111110000000u);
}

TEST(MaskOps, AmendKeepsLongRunAtEnd)
{
    align::HammingMask m;
    m.bits = 150;
    m.words = { ~u64{0}, ~u64{0}, (u64{1} << 22) - 1 };
    auto out = filters::amendShortRuns(m, 3);
    EXPECT_EQ(out.popcount(), 150u);
}

TEST(MaskOps, ZeroRunCount)
{
    align::HammingMask m;
    m.bits = 12;
    m.words = { 0b110011101101 };
    // Zero runs: bit1, bit4, bits 8-9 -> 3 runs.
    EXPECT_EQ(filters::zeroRunCount(m), 3u);
    EXPECT_EQ(filters::zeroCount(m), 4u);
}

// ---------------------------------------------------------------------
// Filter behaviour, parameterized across all four filters
// ---------------------------------------------------------------------

enum class FilterKind { BaseCount, Shd, GateKeeper, SneakySnake };

std::unique_ptr<PreAlignmentFilter>
makeFilter(FilterKind kind)
{
    switch (kind) {
    case FilterKind::BaseCount:
        return std::make_unique<BaseCountFilter>();
    case FilterKind::Shd:
        return std::make_unique<ShdFilter>();
    case FilterKind::GateKeeper:
        return std::make_unique<GateKeeperFilter>();
    case FilterKind::SneakySnake:
        return std::make_unique<SneakySnakeFilter>();
    }
    return nullptr;
}

class AllFilters : public ::testing::TestWithParam<FilterKind>
{
  protected:
    std::unique_ptr<PreAlignmentFilter> filter_ = makeFilter(GetParam());
};

TEST_P(AllFilters, ExactMatchAccepted)
{
    util::Pcg32 rng(21);
    for (int k = 0; k < 10; ++k) {
        DnaSequence window = randomSeq(rng, 170);
        DnaSequence read = window.sub(5, 150);
        auto d = filter_->evaluate(read, window, 5, 5);
        EXPECT_TRUE(d.accept) << filter_->name();
        EXPECT_EQ(d.estimatedEdits, 0u) << filter_->name();
    }
}

TEST_P(AllFilters, SubstitutionsWithinBudgetAccepted)
{
    util::Pcg32 rng(22);
    for (u32 edits = 1; edits <= 4; ++edits) {
        for (int k = 0; k < 10; ++k) {
            DnaSequence window = randomSeq(rng, 170);
            DnaSequence read =
                withSubstitutions(window.sub(5, 150), rng, edits);
            auto d = filter_->evaluate(read, window, 5, 5);
            EXPECT_TRUE(d.accept)
                << filter_->name() << " rejected " << edits << " subs";
        }
    }
}

TEST_P(AllFilters, DeletionRunWithinBudgetAccepted)
{
    util::Pcg32 rng(23);
    for (u32 run = 1; run <= 4; ++run) {
        DnaSequence window = randomSeq(rng, 200);
        // Read = window[10..170) with a deletion run -> still 150 long.
        DnaSequence read =
            withDeletionRun(window.sub(10, 150 + run), 60, run);
        auto d = filter_->evaluate(read, window, 10, 5);
        EXPECT_TRUE(d.accept)
            << filter_->name() << " rejected " << run << "-del run";
    }
}

TEST_P(AllFilters, InsertionRunWithinBudgetAccepted)
{
    util::Pcg32 rng(24);
    for (u32 run = 1; run <= 4; ++run) {
        DnaSequence window = randomSeq(rng, 200);
        DnaSequence read =
            withInsertionRun(window.sub(10, 150 - run), rng, 70, run);
        ASSERT_EQ(read.size(), 150u);
        auto d = filter_->evaluate(read, window, 10, 5);
        EXPECT_TRUE(d.accept)
            << filter_->name() << " rejected " << run << "-ins run";
    }
}

TEST_P(AllFilters, RandomWindowsOverwhelminglyRejected)
{
    // BaseCount is order-blind: a random window supplies roughly the
    // right base composition, so it cannot reject unrelated-but-
    // composition-matched sequences. That weakness is exactly what the
    // ablation bench quantifies; here it gets the skew test below.
    if (GetParam() == FilterKind::BaseCount)
        GTEST_SKIP() << "order-blind filter; see CompositionSkewRejected";
    util::Pcg32 rng(25);
    int rejected = 0;
    const int trials = 50;
    for (int k = 0; k < trials; ++k) {
        DnaSequence window = randomSeq(rng, 170);
        DnaSequence read = randomSeq(rng, 150); // unrelated
        auto d = filter_->evaluate(read, window, 5, 5);
        rejected += d.accept ? 0 : 1;
    }
    // An unrelated 150 bp sequence has expected ~112 mismatches; the
    // mask-based filters must reject essentially all of these.
    EXPECT_GE(rejected, trials - 1) << filter_->name();
}

TEST_P(AllFilters, CompositionSkewRejected)
{
    // All filters, including BaseCount, must reject a read whose base
    // composition the window cannot supply.
    util::Pcg32 rng(27);
    DnaSequence window = randomSeq(rng, 170);
    DnaSequence read;
    for (int i = 0; i < 150; ++i)
        read.push(genomics::BaseA);
    auto d = filter_->evaluate(read, window, 5, 5);
    EXPECT_FALSE(d.accept) << filter_->name();
}

TEST_P(AllFilters, AcceptanceMonotonicInBudget)
{
    util::Pcg32 rng(26);
    for (int k = 0; k < 20; ++k) {
        DnaSequence window = randomSeq(rng, 180);
        DnaSequence read =
            withSubstitutions(window.sub(8, 150), rng, rng.below(6));
        bool prev = false;
        for (u32 budget = 0; budget <= 8; ++budget) {
            bool acc = filter_->evaluate(read, window, 8, budget).accept;
            if (prev) {
                EXPECT_TRUE(acc)
                    << filter_->name()
                    << ": accepted at smaller budget, rejected at "
                    << budget;
            }
            prev = acc;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Filters, AllFilters,
    ::testing::Values(FilterKind::BaseCount, FilterKind::Shd,
                      FilterKind::GateKeeper, FilterKind::SneakySnake),
    [](const auto &test_info) {
        switch (test_info.param) {
        case FilterKind::BaseCount: return std::string("BaseCount");
        case FilterKind::Shd: return std::string("SHD");
        case FilterKind::GateKeeper: return std::string("GateKeeper");
        case FilterKind::SneakySnake: return std::string("SneakySnake");
        }
        return std::string("unknown");
    });

// ---------------------------------------------------------------------
// Lower-bound properties (differential against the oracle)
// ---------------------------------------------------------------------

class LowerBoundProperty : public ::testing::TestWithParam<u64>
{
};

TEST_P(LowerBoundProperty, SneakySnakeNeverOverestimates)
{
    util::Pcg32 rng(100 + GetParam());
    for (int k = 0; k < 25; ++k) {
        DnaSequence window = randomSeq(rng, 180);
        DnaSequence read = window.sub(8, 150);
        // Mixed random edits.
        u32 nsub = rng.below(4);
        read = withSubstitutions(read, rng, nsub);
        if (rng.below(2)) {
            u32 run = 1 + rng.below(3);
            read = withDeletionRun(read, 20 + rng.below(100), run);
        }
        const u32 budget = 8;
        auto d = SneakySnakeFilter{}.evaluate(read, window, 8, budget);
        u32 truth =
            filters::candidateEditDistance(read, window, 8, budget);
        if (d.estimatedEdits <= budget) {
            EXPECT_LE(d.estimatedEdits, truth)
                << "snake overestimated: read len " << read.size();
        }
    }
}

TEST_P(LowerBoundProperty, BaseCountNeverOverestimates)
{
    util::Pcg32 rng(200 + GetParam());
    for (int k = 0; k < 25; ++k) {
        DnaSequence window = randomSeq(rng, 180);
        DnaSequence read =
            withSubstitutions(window.sub(8, 150), rng, rng.below(6));
        const u32 budget = 8;
        auto d = BaseCountFilter{}.evaluate(read, window, 8, budget);
        u32 truth =
            filters::candidateEditDistance(read, window, 8, budget);
        EXPECT_LE(d.estimatedEdits, truth);
    }
}

TEST_P(LowerBoundProperty, NoFalseRejectsWithinBudget)
{
    // Any candidate whose true distance fits the budget must pass the
    // lower-bounding filters (heuristic SHD/GateKeeper are exercised
    // separately; their guarantees are statistical).
    util::Pcg32 rng(300 + GetParam());
    SneakySnakeFilter snake;
    BaseCountFilter counts;
    for (int k = 0; k < 25; ++k) {
        DnaSequence window = randomSeq(rng, 180);
        DnaSequence read =
            withSubstitutions(window.sub(8, 150), rng, rng.below(9));
        const u32 budget = 8;
        u32 truth =
            filters::candidateEditDistance(read, window, 8, budget);
        if (truth <= budget) {
            EXPECT_TRUE(snake.evaluate(read, window, 8, budget).accept);
            EXPECT_TRUE(counts.evaluate(read, window, 8, budget).accept);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LowerBoundProperty,
                         ::testing::Range(u64{0}, u64{8}));

// ---------------------------------------------------------------------
// FilteredLightAligner (the §8 combination)
// ---------------------------------------------------------------------

class FilteredLightTest : public ::testing::Test
{
  protected:
    FilteredLightTest()
    {
        simdata::GenomeParams gp;
        gp.length = 200000;
        gp.chromosomes = 1;
        gp.seed = 77;
        ref_ = simdata::generateGenome(gp);
    }

    genomics::Reference ref_;
    genpair::LightAlignParams params_;
    SneakySnakeFilter gate_;
};

TEST_F(FilteredLightTest, ExactReadPassesGateAndAligns)
{
    filters::FilteredLightAligner combo(ref_, params_, gate_);
    DnaSequence read = ref_.window(5000, 150);
    auto r = combo.align(read, 5000);
    EXPECT_TRUE(r.aligned);
    EXPECT_EQ(r.pos, 5000u);
    EXPECT_EQ(combo.stats().gateRejected, 0u);
    EXPECT_EQ(combo.stats().lightAligned, 1u);
}

TEST_F(FilteredLightTest, GarbageCandidateRejectedWithZeroHypotheses)
{
    filters::FilteredLightAligner combo(ref_, params_, gate_);
    util::Pcg32 rng(5);
    DnaSequence read = randomSeq(rng, 150);
    auto r = combo.align(read, 9000);
    EXPECT_FALSE(r.aligned);
    EXPECT_EQ(combo.stats().gateRejected, 1u);
    EXPECT_EQ(combo.stats().hypothesesTried, 0u);
}

TEST_F(FilteredLightTest, NeverRejectsWhatLightAlignmentWouldAlign)
{
    // The decisive soundness property of the combination: for candidates
    // the plain Light Aligner aligns, the gated one must align with the
    // same score and position.
    genpair::LightAligner plain(ref_, params_);
    filters::FilteredLightAligner combo(ref_, params_, gate_);
    util::Pcg32 rng(6);
    int aligned = 0;
    for (int k = 0; k < 400; ++k) {
        GlobalPos pos = 1000 + rng.below(150000);
        DnaSequence read = ref_.window(pos, 150);
        // Random light edits, sometimes none.
        u32 mode = rng.below(4);
        if (mode == 1)
            read = withSubstitutions(read, rng, 1 + rng.below(3));
        else if (mode == 2)
            read = withDeletionRun(ref_.window(pos, 152), 40, 2);
        else if (mode == 3)
            read = withInsertionRun(ref_.window(pos, 148), rng, 60, 2);
        auto p = plain.align(read, pos);
        auto c = combo.align(read, pos);
        if (p.aligned) {
            ++aligned;
            ASSERT_TRUE(c.aligned) << "gate caused a false reject";
            EXPECT_EQ(c.score, p.score);
            EXPECT_EQ(c.pos, p.pos);
        }
    }
    EXPECT_GT(aligned, 300); // the scenario must actually exercise the path
}

TEST_F(FilteredLightTest, StatsAccumulateAndReset)
{
    filters::FilteredLightAligner combo(ref_, params_, gate_);
    DnaSequence read = ref_.window(3000, 150);
    combo.align(read, 3000);
    combo.align(read, 3000);
    EXPECT_EQ(combo.stats().candidates, 2u);
    EXPECT_EQ(combo.stats().lightAttempted, 2u);
    combo.resetStats();
    EXPECT_EQ(combo.stats().candidates, 0u);
}

TEST_F(FilteredLightTest, GateBudgetCoversLightAlignBound)
{
    filters::FilteredLightAligner combo(ref_, params_, gate_);
    EXPECT_EQ(combo.gateBudget(),
              std::max(params_.maxShift, params_.maxMismatches));
}


// ---------------------------------------------------------------------
// GRIM-Filter (binned q-gram existence)
// ---------------------------------------------------------------------

class GrimTest : public ::testing::Test
{
  protected:
    GrimTest()
    {
        simdata::GenomeParams gp;
        gp.length = 250000;
        gp.chromosomes = 2;
        gp.seed = 31;
        ref_ = simdata::generateGenome(gp);
        grim_ = std::make_unique<filters::GrimFilter>(
            ref_, filters::GrimParams{});
    }

    genomics::Reference ref_;
    std::unique_ptr<filters::GrimFilter> grim_;
};

TEST_F(GrimTest, ExactReadFullyPresent)
{
    util::Pcg32 rng(1);
    for (int k = 0; k < 10; ++k) {
        GlobalPos pos = 500 + rng.below(100000);
        DnaSequence read = ref_.window(pos, 150);
        auto d = grim_->evaluate(read, pos, 5);
        EXPECT_TRUE(d.accept);
        EXPECT_EQ(d.estimatedEdits, 0u);
        EXPECT_EQ(grim_->presentTokens(read, pos), 146u); // 150 - 5 + 1
    }
}

TEST_F(GrimTest, SubstitutionsWithinBudgetNeverRejected)
{
    // The GRIM no-false-negative argument: each edit kills at most q
    // tokens, so a read with e <= maxEdits edits always clears the bar.
    util::Pcg32 rng(2);
    for (u32 edits = 1; edits <= 5; ++edits) {
        for (int k = 0; k < 10; ++k) {
            GlobalPos pos = 500 + rng.below(100000);
            DnaSequence read =
                withSubstitutions(ref_.window(pos, 150), rng, edits);
            EXPECT_TRUE(grim_->evaluate(read, pos, 5).accept)
                << edits << " substitutions rejected";
        }
    }
}

TEST_F(GrimTest, IndelRunsWithinBudgetNeverRejected)
{
    util::Pcg32 rng(3);
    for (u32 run = 1; run <= 5; ++run) {
        GlobalPos pos = 500 + rng.below(100000);
        DnaSequence del =
            withDeletionRun(ref_.window(pos, 150 + run), 60, run);
        EXPECT_TRUE(grim_->evaluate(del, pos, 5).accept);
        DnaSequence ins =
            withInsertionRun(ref_.window(pos, 150 - run), rng, 80, run);
        EXPECT_TRUE(grim_->evaluate(ins, pos, 5).accept);
    }
}

TEST_F(GrimTest, BinBoundaryPlacementAccepted)
{
    // A read starting exactly on a bin boundary must find its tokens in
    // the next bins (the straddle-compensation path).
    const u64 binSize = u64{1} << filters::GrimParams{}.binBits;
    GlobalPos pos = 40 * binSize;
    DnaSequence read = ref_.window(pos, 150);
    EXPECT_TRUE(grim_->evaluate(read, pos, 5).accept);
}

TEST_F(GrimTest, DisplacedCandidatesOverwhelminglyRejected)
{
    util::Pcg32 rng(4);
    int rejected = 0;
    const int trials = 40;
    for (int k = 0; k < trials; ++k) {
        GlobalPos pos = 500 + rng.below(100000);
        DnaSequence read = ref_.window(pos, 150);
        GlobalPos decoy = pos + 30000 + rng.below(80000);
        rejected += grim_->evaluate(read, decoy, 5).accept ? 0 : 1;
    }
    EXPECT_GE(rejected, trials * 9 / 10);
}

TEST_F(GrimTest, BitvectorFootprintMatchesGeometry)
{
    // bins x 4^q bits; q=5, 256 bp bins over ~250 kbp -> ~977 bins.
    const u64 binSize = u64{1} << filters::GrimParams{}.binBits;
    const u64 bins = (ref_.totalLength() + binSize - 1) / binSize;
    EXPECT_EQ(grim_->bitvectorBytes(), bins * 1024 / 8);
}

TEST_F(GrimTest, ShortReadTriviallyAccepted)
{
    DnaSequence tiny("ACG"); // shorter than q
    EXPECT_TRUE(grim_->evaluate(tiny, 1000, 0).accept);
}


// ---------------------------------------------------------------------
// FilterGate inside the full pipeline (the SS8 combination end to end)
// ---------------------------------------------------------------------

class GatedPipelineTest : public ::testing::Test
{
  protected:
    GatedPipelineTest()
    {
        simdata::GenomeParams gp;
        gp.length = 400000;
        gp.chromosomes = 2;
        gp.seed = 55;
        ref_ = simdata::generateGenome(gp);
        diploid_ = std::make_unique<simdata::DiploidGenome>(
            ref_, simdata::VariantParams{});
        map_ = std::make_unique<genpair::SeedMap>(
            ref_, genpair::SeedMapParams{});
        mm2_ = std::make_unique<baseline::Mm2Lite>(
            ref_, baseline::Mm2LiteParams{});
        simdata::ReadSimParams rp;
        simdata::ReadSimulator sim(*diploid_, rp);
        pairs_ = sim.simulate(800);
    }

    genomics::Reference ref_;
    std::unique_ptr<simdata::DiploidGenome> diploid_;
    std::unique_ptr<genpair::SeedMap> map_;
    std::unique_ptr<baseline::Mm2Lite> mm2_;
    std::vector<genomics::ReadPair> pairs_;
};

TEST_F(GatedPipelineTest, SneakyGatePreservesEveryMapping)
{
    genpair::GenPairParams params;
    genpair::GenPairPipeline plain(ref_, *map_, params, mm2_.get());
    std::vector<genomics::PairMapping> plainOut;
    for (const auto &p : pairs_)
        plainOut.push_back(plain.mapPair(p));

    SneakySnakeFilter snake;
    filters::FilterGate gate(
        ref_, snake,
        std::max(params.light.maxShift, params.light.maxMismatches));
    genpair::GenPairPipeline gated(ref_, *map_, params, mm2_.get());
    gated.setLightAlignGate(&gate);
    std::vector<genomics::PairMapping> gatedOut;
    for (const auto &p : pairs_)
        gatedOut.push_back(gated.mapPair(p));

    // Soundness end to end: identical routing and placements.
    ASSERT_EQ(plainOut.size(), gatedOut.size());
    for (std::size_t i = 0; i < plainOut.size(); ++i) {
        EXPECT_EQ(plainOut[i].path, gatedOut[i].path) << "pair " << i;
        EXPECT_EQ(plainOut[i].first.pos, gatedOut[i].first.pos);
        EXPECT_EQ(plainOut[i].second.pos, gatedOut[i].second.pos);
        EXPECT_EQ(plainOut[i].first.score, gatedOut[i].first.score);
    }
    EXPECT_EQ(plain.stats().lightAligned, gated.stats().lightAligned);

    // And the gate did remove work.
    EXPECT_GT(gate.evaluations(), 0u);
    EXPECT_EQ(gated.stats().gateRejected, gate.rejections());
    EXPECT_LE(gated.stats().lightHypotheses,
              plain.stats().lightHypotheses);
}

TEST_F(GatedPipelineTest, RejectingGateForcesDpEverywhere)
{
    // A degenerate always-reject gate must not break the pipeline —
    // every pair routes to a DP path (or unmapped), none light-align.
    struct NoGate final : genpair::LightAlignGate
    {
        bool
        admit(const genomics::DnaSequence &, GlobalPos) override
        {
            return false;
        }
    } never;
    genpair::GenPairPipeline gated(ref_, *map_, genpair::GenPairParams{},
                                   mm2_.get());
    gated.setLightAlignGate(&never);
    u64 mapped = 0;
    for (std::size_t i = 0; i < 100; ++i) {
        auto pm = gated.mapPair(pairs_[i]);
        mapped += pm.bothMapped() ? 1 : 0;
        EXPECT_NE(pm.path, genomics::MappingPath::LightAligned);
    }
    EXPECT_EQ(gated.stats().lightAligned, 0u);
    EXPECT_GT(gated.stats().gateRejected, 0u);
    EXPECT_GT(mapped, 90u); // DP fallback still maps the reads
}

} // namespace
