/**
 * @file
 * util::Channel tests: FIFO order, capacity backpressure, close/drain
 * semantics, blocked-side wake-up, MPMC exactly-once delivery, and the
 * stall counters. The MPMC cases are the ones the TSan CI preset
 * exists for — they hammer the queue from many producers and consumers
 * at once.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "util/channel.hh"

namespace {

using namespace gpx;
using util::Channel;

TEST(Channel, FifoSingleThread)
{
    Channel<int> ch(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(ch.push(i));
    EXPECT_EQ(ch.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        auto v = ch.pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
    EXPECT_EQ(ch.size(), 0u);
}

TEST(Channel, CapacityIsClampedToOne)
{
    Channel<int> ch(0);
    EXPECT_EQ(ch.capacity(), 1u);
    int v = 1;
    EXPECT_TRUE(ch.tryPush(v));
    int w = 2;
    EXPECT_FALSE(ch.tryPush(w)) << "capacity-1 channel held two items";
}

TEST(Channel, TryPushRespectsCapacity)
{
    Channel<int> ch(2);
    int a = 1, b = 2, c = 3;
    EXPECT_TRUE(ch.tryPush(a));
    EXPECT_TRUE(ch.tryPush(b));
    EXPECT_FALSE(ch.tryPush(c));
    EXPECT_EQ(ch.size(), 2u);
    ch.pop();
    EXPECT_TRUE(ch.tryPush(c));
}

TEST(Channel, TryPopEmptyReturnsNullopt)
{
    Channel<int> ch(2);
    EXPECT_FALSE(ch.tryPop().has_value());
    EXPECT_TRUE(ch.push(7));
    auto v = ch.tryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7);
}

TEST(Channel, CloseThenDrainYieldsQueuedItemsThenEndOfStream)
{
    Channel<int> ch(4);
    EXPECT_TRUE(ch.push(1));
    EXPECT_TRUE(ch.push(2));
    ch.close();
    EXPECT_TRUE(ch.closed());
    // Queued items still drain in order after close...
    auto a = ch.pop();
    auto b = ch.pop();
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, 1);
    EXPECT_EQ(*b, 2);
    // ...then end-of-stream, repeatably.
    EXPECT_FALSE(ch.pop().has_value());
    EXPECT_FALSE(ch.pop().has_value());
}

TEST(Channel, PushFailsAfterClose)
{
    Channel<int> ch(4);
    ch.close();
    EXPECT_FALSE(ch.push(1));
    int v = 2;
    EXPECT_FALSE(ch.tryPush(v));
    EXPECT_EQ(ch.size(), 0u);
}

TEST(Channel, CloseIsIdempotent)
{
    Channel<int> ch(1);
    ch.close();
    ch.close();
    EXPECT_TRUE(ch.closed());
    EXPECT_FALSE(ch.pop().has_value());
}

TEST(Channel, CloseUnblocksStuckProducer)
{
    Channel<int> ch(1);
    EXPECT_TRUE(ch.push(0)); // fill it
    std::atomic<bool> returned{ false };
    std::thread producer([&]() {
        // Blocks on the full queue until close() wakes it with false.
        EXPECT_FALSE(ch.push(1));
        returned.store(true);
    });
    ch.close();
    producer.join();
    EXPECT_TRUE(returned.load());
    // The dropped value never landed behind the queued one.
    auto v = ch.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 0);
    EXPECT_FALSE(ch.pop().has_value());
}

TEST(Channel, CloseUnblocksStuckConsumer)
{
    Channel<int> ch(1);
    std::atomic<bool> returned{ false };
    std::thread consumer([&]() {
        EXPECT_FALSE(ch.pop().has_value());
        returned.store(true);
    });
    ch.close();
    consumer.join();
    EXPECT_TRUE(returned.load());
}

TEST(Channel, BackpressureBoundsInFlightItems)
{
    // A fast producer against a consumer that drains at its own pace:
    // the queue must never exceed its capacity.
    Channel<int> ch(3);
    constexpr int kItems = 2000;
    std::thread producer([&]() {
        for (int i = 0; i < kItems; ++i)
            ASSERT_TRUE(ch.push(i));
        ch.close();
    });
    std::size_t maxSeen = 0;
    int received = 0;
    while (auto v = ch.pop()) {
        maxSeen = std::max(maxSeen, ch.size());
        EXPECT_EQ(*v, received);
        ++received;
    }
    producer.join();
    EXPECT_EQ(received, kItems);
    EXPECT_LE(maxSeen, ch.capacity());
}

TEST(Channel, MpmcDeliversEveryItemExactlyOnce)
{
    // 4 producers x 4 consumers over a small queue: every pushed value
    // must come out exactly once (no loss, no duplication), and each
    // producer's values must stay in that producer's order.
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 5000;
    Channel<int> ch(8);

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p]() {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(ch.push(p * kPerProducer + i));
        });
    }

    std::vector<std::vector<int>> got(kConsumers);
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&, c]() {
            while (auto v = ch.pop())
                got[c].push_back(*v);
        });
    }

    for (auto &t : producers)
        t.join();
    ch.close();
    for (auto &t : consumers)
        t.join();

    std::vector<int> all;
    for (const auto &g : got) {
        // Per-consumer streams see each producer's values in order.
        for (int p = 0; p < kProducers; ++p) {
            int last = -1;
            for (int v : g) {
                if (v / kPerProducer != p)
                    continue;
                EXPECT_GT(v, last);
                last = v;
            }
        }
        all.insert(all.end(), g.begin(), g.end());
    }
    ASSERT_EQ(all.size(),
              static_cast<std::size_t>(kProducers) * kPerProducer);
    std::sort(all.begin(), all.end());
    for (int i = 0; i < kProducers * kPerProducer; ++i)
        ASSERT_EQ(all[static_cast<std::size_t>(i)], i);
}

TEST(Channel, MoveOnlyPayloadsMoveThrough)
{
    Channel<std::unique_ptr<int>> ch(2);
    EXPECT_TRUE(ch.push(std::make_unique<int>(41)));
    auto v = ch.pop();
    ASSERT_TRUE(v.has_value());
    ASSERT_TRUE(*v != nullptr);
    EXPECT_EQ(**v, 41);
}

TEST(Channel, StallCountersStayZeroWithoutContention)
{
    Channel<int> ch(8);
    for (int i = 0; i < 4; ++i)
        ch.push(i);
    for (int i = 0; i < 4; ++i)
        ch.pop();
    EXPECT_EQ(ch.pushStall().waits, 0u);
    EXPECT_DOUBLE_EQ(ch.pushStall().seconds, 0.0);
    EXPECT_EQ(ch.popStall().waits, 0u);
    EXPECT_DOUBLE_EQ(ch.popStall().seconds, 0.0);
}

TEST(Channel, StallCountersRecordBlockedSides)
{
    // Producer blocks on a full queue until the consumer drains after a
    // delay; consumer then blocks on the emptied queue until the next
    // push. Both sides must record at least one wait with nonzero time.
    Channel<int> ch(1);
    ASSERT_TRUE(ch.push(0));
    std::atomic<bool> atPush{ false };
    std::thread producer([&]() {
        atPush.store(true);
        ASSERT_TRUE(ch.push(1)); // blocks: queue is full
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ASSERT_TRUE(ch.push(2)); // consumer is already waiting by now
        ch.close();
    });
    // Let the producer reach (and sit in) the blocking push before
    // draining, so the push side is guaranteed to record a wait.
    while (!atPush.load())
        std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    int received = 0;
    while (ch.pop())
        ++received;
    producer.join();
    EXPECT_EQ(received, 3);
    EXPECT_GE(ch.pushStall().waits, 1u);
    EXPECT_GT(ch.pushStall().seconds, 0.0);
    EXPECT_GE(ch.popStall().waits, 1u);
    EXPECT_GT(ch.popStall().seconds, 0.0);
}

} // namespace
