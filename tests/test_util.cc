/**
 * @file
 * Unit tests for util: xxHash reference vectors, the PCG RNG, statistics
 * containers and the table printer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "util/md5.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/xxhash.hh"

namespace {

using namespace gpx;
using namespace gpx::util;

// Canonical xxHash test vectors (from the reference implementation).
TEST(XxHash, Xxh32EmptyInput)
{
    EXPECT_EQ(xxh32(nullptr, 0, 0), 0x02CC5D05u);
}

TEST(XxHash, Xxh32KnownStrings)
{
    const std::string a = "a";
    EXPECT_EQ(xxh32(a.data(), a.size(), 0), 0x550D7456u);
    const std::string abc = "abc";
    EXPECT_EQ(xxh32(abc.data(), abc.size(), 0), 0x32D153FFu);
    const std::string msg = "Hello World";
    EXPECT_EQ(xxh32(msg.data(), msg.size(), 0), 0xB1FD16EEu);
}

TEST(XxHash, Xxh32SeedChangesDigest)
{
    const std::string s = "GenPairX";
    EXPECT_NE(xxh32(s.data(), s.size(), 0), xxh32(s.data(), s.size(), 1));
}

TEST(XxHash, Xxh32LongInputCoversStripedPath)
{
    // > 16 bytes exercises the 4-lane accumulation.
    std::string s(100, 'x');
    for (std::size_t i = 0; i < s.size(); ++i)
        s[i] = static_cast<char>('A' + (i % 26));
    u32 h1 = xxh32(s.data(), s.size(), 0);
    u32 h2 = xxh32(s.data(), s.size(), 0);
    EXPECT_EQ(h1, h2);
    s[50] ^= 1;
    EXPECT_NE(h1, xxh32(s.data(), s.size(), 0));
}

TEST(XxHash, Xxh64EmptyInput)
{
    EXPECT_EQ(xxh64(nullptr, 0, 0), 0xEF46DB3751D8E999ull);
}

TEST(XxHash, Xxh64KnownString)
{
    const std::string abc = "abc";
    EXPECT_EQ(xxh64(abc.data(), abc.size(), 0), 0x44BC2CF5AD770999ull);
}

TEST(XxHash, Xxh64WordWrapperMatchesBuffer)
{
    u64 w = 0x0123456789ABCDEFull;
    EXPECT_EQ(xxh64Word(w, 7), xxh64(&w, 8, 7));
}

TEST(Pcg32, DeterministicForSameSeed)
{
    Pcg32 a(42, 3), b(42, 3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, StreamsDiffer)
{
    Pcg32 a(42, 1), b(42, 2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Pcg32, BelowRespectsBound)
{
    Pcg32 rng(1);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Pcg32, UniformMeanIsCentered)
{
    Pcg32 rng(5);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Pcg32, NormalMomentsMatch)
{
    Pcg32 rng(9);
    RunningStat st;
    for (int i = 0; i < 100000; ++i)
        st.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(st.mean(), 10.0, 0.05);
    EXPECT_NEAR(st.stddev(), 2.0, 0.05);
}

TEST(Pcg32, ExtendLengthGeometric)
{
    Pcg32 rng(13);
    RunningStat st;
    for (int i = 0; i < 50000; ++i)
        st.add(rng.extendLength(0.5, 100));
    // Mean of geometric(start=1, p_continue=0.5) is 2.
    EXPECT_NEAR(st.mean(), 2.0, 0.1);
}

TEST(RunningStat, BasicMoments)
{
    RunningStat st;
    for (double v : { 1.0, 2.0, 3.0, 4.0 })
        st.add(v);
    EXPECT_EQ(st.count(), 4u);
    EXPECT_DOUBLE_EQ(st.mean(), 2.5);
    EXPECT_NEAR(st.variance(), 5.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(st.min(), 1.0);
    EXPECT_DOUBLE_EQ(st.max(), 4.0);
    EXPECT_DOUBLE_EQ(st.sum(), 10.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat st;
    EXPECT_EQ(st.count(), 0u);
    EXPECT_EQ(st.mean(), 0.0);
    EXPECT_EQ(st.variance(), 0.0);
}

TEST(Histogram, CountsAndCdf)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    EXPECT_EQ(h.totalCount(), 10u);
    auto cdf = h.cdf();
    EXPECT_NEAR(cdf.front(), 0.1, 1e-12);
    EXPECT_NEAR(cdf.back(), 1.0, 1e-12);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(7.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
}

TEST(Histogram, PercentileMonotone)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 1000; ++i)
        h.add(i % 100);
    EXPECT_LE(h.percentile(0.25), h.percentile(0.75));
}

TEST(ExactPercentile, MedianOfOddSet)
{
    EXPECT_DOUBLE_EQ(exactPercentile({ 3.0, 1.0, 2.0 }, 0.5), 2.0);
}

// RFC 1321 appendix A.5 test suite: the golden-corpus digests pinned
// elsewhere are only trustworthy if this implementation matches md5sum.
TEST(Md5, Rfc1321Vectors)
{
    EXPECT_EQ(md5Hex(std::string("")),
              "d41d8cd98f00b204e9800998ecf8427e");
    EXPECT_EQ(md5Hex(std::string("a")),
              "0cc175b9c0f1b6a831c399e269772661");
    EXPECT_EQ(md5Hex(std::string("abc")),
              "900150983cd24fb0d6963f7d28e17f72");
    EXPECT_EQ(md5Hex(std::string("message digest")),
              "f96b697d7cb7938d525a2f31aaf161d0");
    EXPECT_EQ(md5Hex(std::string("abcdefghijklmnopqrstuvwxyz")),
              "c3fcd3d76192e4007dfb496cca67e13b");
    EXPECT_EQ(md5Hex(std::string(
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
                  "0123456789")),
              "d174ab98d277d9f5a5611c2c9f419d9f");
    EXPECT_EQ(md5Hex(std::string(
                  "123456789012345678901234567890123456789012345678901"
                  "23456789012345678901234567890")),
              "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalUpdatesMatchOneShot)
{
    // Same bytes absorbed in awkward chunk sizes (straddling the
    // 64-byte block boundary) must give the same digest.
    std::string data(1000, '\0');
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<char>('A' + (i * 17) % 26);
    Md5 incremental;
    std::size_t pos = 0;
    const std::size_t chunks[] = { 1, 63, 64, 65, 7, 300 };
    std::size_t c = 0;
    while (pos < data.size()) {
        std::size_t take =
            std::min(chunks[c++ % 6], data.size() - pos);
        incremental.update(data.data() + pos, take);
        pos += take;
    }
    EXPECT_EQ(incremental.hexDigest(), md5Hex(data));
}

TEST(Table, RendersAlignedColumns)
{
    Table t({ "name", "value" });
    t.row().cell("alpha").cell(42);
    t.row().cell("b").cell(3.14159, 2);
    std::string s = t.toString("demo");
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
    EXPECT_NE(s.find("=== demo ==="), std::string::npos);
}

TEST(Table, SiFormat)
{
    EXPECT_EQ(siFormat(1500.0, 1), "1.5K");
    EXPECT_EQ(siFormat(2.5e6, 1), "2.5M");
    EXPECT_EQ(siFormat(3.0e9, 0), "3G");
}

} // namespace
