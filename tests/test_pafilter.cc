/**
 * @file
 * Unit and property tests for SeedMap query merging and the
 * Paired-Adjacency filter.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "genpair/pafilter.hh"
#include "util/rng.hh"

namespace {

using namespace gpx;
using genpair::CandidatePair;
using genpair::pairedAdjacencyFilter;
using genpair::QueryWork;

TEST(PaFilter, EmptyInputs)
{
    QueryWork w;
    EXPECT_TRUE(pairedAdjacencyFilter({}, {}, 500, w).empty());
    EXPECT_TRUE(pairedAdjacencyFilter({ 1, 2 }, {}, 500, w).empty());
    EXPECT_TRUE(pairedAdjacencyFilter({}, { 1, 2 }, 500, w).empty());
}

TEST(PaFilter, KeepsPairsWithinDelta)
{
    QueryWork w;
    std::vector<GlobalPos> left = { 1000 };
    std::vector<GlobalPos> right = { 1200 };
    auto out = pairedAdjacencyFilter(left, right, 500, w);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].leftStart, 1000u);
    EXPECT_EQ(out[0].rightStart, 1200u);
}

TEST(PaFilter, RejectsBeyondDelta)
{
    QueryWork w;
    EXPECT_TRUE(pairedAdjacencyFilter({ 1000 }, { 1600 }, 500, w).empty());
}

TEST(PaFilter, RejectsWrongOrder)
{
    QueryWork w;
    // Right read upstream of left read violates FR ordering.
    EXPECT_TRUE(pairedAdjacencyFilter({ 1000 }, { 800 }, 500, w).empty());
}

TEST(PaFilter, ZeroDistanceAllowed)
{
    QueryWork w;
    auto out = pairedAdjacencyFilter({ 1000 }, { 1000 }, 500, w);
    EXPECT_EQ(out.size(), 1u);
}

TEST(PaFilter, EmitsAllCombinationsInWindow)
{
    QueryWork w;
    std::vector<GlobalPos> left = { 100, 150 };
    std::vector<GlobalPos> right = { 120, 180, 900 };
    auto out = pairedAdjacencyFilter(left, right, 100, w);
    // (100,120), (100,180), (150,180) -- not (150,120) (order), not 900.
    EXPECT_EQ(out.size(), 3u);
}

TEST(PaFilter, CountsIterations)
{
    QueryWork w;
    std::vector<GlobalPos> left = { 100, 200, 300 };
    std::vector<GlobalPos> right = { 150, 250, 350 };
    pairedAdjacencyFilter(left, right, 100, w);
    EXPECT_GT(w.filterIterations, 0u);
}

/** Property test: matches a brute-force quadratic reference. */
class PaFilterProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(PaFilterProperty, MatchesBruteForce)
{
    util::Pcg32 rng(GetParam() * 101 + 13);
    u32 delta = 200 + rng.below(400);
    std::vector<GlobalPos> left, right;
    for (u32 i = 0, n = rng.below(40); i < n; ++i)
        left.push_back(rng.below(10000));
    for (u32 i = 0, n = rng.below(40); i < n; ++i)
        right.push_back(rng.below(10000));
    std::sort(left.begin(), left.end());
    std::sort(right.begin(), right.end());
    left.erase(std::unique(left.begin(), left.end()), left.end());
    right.erase(std::unique(right.begin(), right.end()), right.end());

    QueryWork w;
    auto fast = pairedAdjacencyFilter(left, right, delta, w);

    std::vector<CandidatePair> brute;
    for (GlobalPos l : left) {
        for (GlobalPos r : right) {
            if (r >= l && r - l <= delta)
                brute.push_back({ l, r });
        }
    }
    ASSERT_EQ(fast.size(), brute.size());
    auto key = [](const CandidatePair &c) {
        return std::pair<GlobalPos, GlobalPos>(c.leftStart, c.rightStart);
    };
    auto cmp = [&](const CandidatePair &a, const CandidatePair &b) {
        return key(a) < key(b);
    };
    std::sort(fast.begin(), fast.end(), cmp);
    std::sort(brute.begin(), brute.end(), cmp);
    for (std::size_t i = 0; i < fast.size(); ++i)
        EXPECT_EQ(key(fast[i]), key(brute[i]));
}

INSTANTIATE_TEST_SUITE_P(Random, PaFilterProperty,
                         ::testing::Range(0, 20));

} // namespace
