/**
 * @file
 * The robustness wall: fault-injection unit tests plus the chaos
 * suites that prove the recovery code is live code.
 *
 * Everything here runs faults *programmatically* (configure/reset per
 * test, destructive actions included); the CI chaos job additionally
 * sweeps GPX_FAULTS delay-plans over the normal suites, where golden
 * assertions must keep passing. scripts/check_fault_wall.py holds this
 * file, the injection call sites and the registry in
 * src/util/fault.cc to one contract.
 *
 * The heavyweight member is the hot-swap chaos test: concurrent
 * clients map the golden corpus through a live daemon while the
 * mount's index image is re-published underneath them — including one
 * deliberately corrupted candidate that must be rejected before
 * publish — and every reply must still assemble the pinned digest.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <sys/mman.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "genomics/fasta.hh"
#include "genomics/sam.hh"
#include "genpair/seedmap.hh"
#include "genpair/seedmap_io.hh"
#include "genpair/streaming.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "util/channel.hh"
#include "util/fault.hh"
#include "util/md5.hh"
#include "util/sigbus_guard.hh"
#include "util/socket.hh"

namespace {

using namespace gpx;

const char kGoldenSamMd5[] = "6e4b292bd35bc3babd6ffd733c44612f";

const char *
goldenDir()
{
#ifdef GPX_GOLDEN_DIR
    return GPX_GOLDEN_DIR;
#else
    return "tests/data/golden";
#endif
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is) << "cannot open " << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** Every test leaves the process-wide injector disarmed. */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { util::FaultInjector::instance().reset(); }
    void TearDown() override { util::FaultInjector::instance().reset(); }

    bool
    arm(const std::string &plan, u64 seed = 0)
    {
        std::string error;
        bool ok = util::FaultInjector::instance().configure(plan, seed,
                                                            &error);
        EXPECT_TRUE(ok) << error;
        return ok;
    }
};

// ---------------------------------------------------------------------
// FaultInjector semantics
// ---------------------------------------------------------------------

TEST_F(FaultTest, DisarmedIsInvisible)
{
    EXPECT_FALSE(util::FaultInjector::armed());
    EXPECT_FALSE(util::checkFault("socket.read"));
    EXPECT_FALSE(util::checkFaultBytes("sam.write", 1 << 20));
    // Disarmed evaluations are not even counted (the fast path never
    // reaches the injector).
    EXPECT_EQ(util::FaultInjector::instance().evaluations("socket.read"),
              0u);
}

TEST_F(FaultTest, RejectsUnknownPointAndBadSyntax)
{
    auto &inj = util::FaultInjector::instance();
    std::string error;
    EXPECT_FALSE(inj.configure("socket.wrote:fail", 0, &error));
    EXPECT_NE(error.find("unknown injection point"), std::string::npos)
        << error;
    EXPECT_FALSE(inj.configure("socket.read", 0, &error));
    EXPECT_FALSE(inj.configure("socket.read:explode", 0, &error));
    EXPECT_NE(error.find("unknown action"), std::string::npos) << error;
    EXPECT_FALSE(inj.configure("socket.read:fail@p=1.5", 0, &error));
    EXPECT_FALSE(inj.configure("socket.read:fail@every=0", 0, &error));
    EXPECT_FALSE(inj.configure("chan.push:delay=abc", 0, &error));
    // A failed configure leaves the injector disarmed.
    EXPECT_FALSE(util::FaultInjector::armed());
}

TEST_F(FaultTest, ActionsMapToHitKinds)
{
    arm("socket.write:short,sam.write:enospc,socket.read:fail");
    auto hit = util::checkFault("socket.write");
    EXPECT_EQ(hit.kind, util::FaultHit::kShort);
    hit = util::checkFault("sam.write");
    EXPECT_EQ(hit.kind, util::FaultHit::kErrno);
    EXPECT_EQ(hit.value, static_cast<u64>(ENOSPC));
    hit = util::checkFault("socket.read");
    EXPECT_EQ(hit.kind, util::FaultHit::kFail);
}

TEST_F(FaultTest, CountTriggers)
{
    arm("socket.read:fail@nth=3,socket.write:fail@every=2,"
        "sam.write:fail@once");
    // nth=3: exactly the third evaluation.
    EXPECT_FALSE(util::checkFault("socket.read"));
    EXPECT_FALSE(util::checkFault("socket.read"));
    EXPECT_TRUE(util::checkFault("socket.read"));
    EXPECT_FALSE(util::checkFault("socket.read"));
    // every=2: evaluations 2, 4, 6, ...
    EXPECT_FALSE(util::checkFault("socket.write"));
    EXPECT_TRUE(util::checkFault("socket.write"));
    EXPECT_FALSE(util::checkFault("socket.write"));
    EXPECT_TRUE(util::checkFault("socket.write"));
    // once: first evaluation only.
    EXPECT_TRUE(util::checkFault("sam.write"));
    EXPECT_FALSE(util::checkFault("sam.write"));

    auto &inj = util::FaultInjector::instance();
    EXPECT_EQ(inj.fires("socket.read"), 1u);
    EXPECT_EQ(inj.fires("socket.write"), 2u);
    EXPECT_EQ(inj.fires("sam.write"), 1u);
    EXPECT_EQ(inj.evaluations("socket.read"), 4u);
    EXPECT_EQ(inj.totalFires(), 4u);
}

TEST_F(FaultTest, ByteTriggerFiresAfterThreshold)
{
    arm("sam.write:enospc@after=4KiB");
    EXPECT_FALSE(util::checkFaultBytes("sam.write", 1024));
    EXPECT_FALSE(util::checkFaultBytes("sam.write", 3072));
    // Cumulative bytes now past the 4 KiB threshold.
    EXPECT_TRUE(util::checkFaultBytes("sam.write", 1));
    EXPECT_TRUE(util::checkFaultBytes("sam.write", 1));
}

TEST_F(FaultTest, ProbabilisticTriggerIsDeterministicUnderSeed)
{
    auto sample = [&](u64 seed) {
        arm("socket.read:fail@p=0.5", seed);
        std::string bits;
        for (int i = 0; i < 64; ++i)
            bits += util::checkFault("socket.read") ? '1' : '0';
        return bits;
    };
    std::string a = sample(42), b = sample(42), c = sample(43);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c); // 2^-64 false-failure odds
    EXPECT_NE(a.find('1'), std::string::npos);
    EXPECT_NE(a.find('0'), std::string::npos);
}

TEST_F(FaultTest, DelayRuleStallsTheCallSite)
{
    arm("chan.push:delay=60ms");
    util::Channel<int> ch(4);
    auto begin = std::chrono::steady_clock::now();
    EXPECT_TRUE(ch.push(1));
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - begin)
                       .count();
    EXPECT_GE(elapsed, 50);
}

TEST_F(FaultTest, ChannelPushFailureIsDropped)
{
    util::Channel<int> ch(4);
    arm("chan.push:fail@once");
    EXPECT_FALSE(ch.push(1)); // injected: hand-off refused
    EXPECT_TRUE(ch.push(2));  // once => subsequent pushes recover
    std::optional<int> v = ch.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 2);
}

TEST_F(FaultTest, EnvArmingAndTypoTolerance)
{
    auto &inj = util::FaultInjector::instance();
    ::setenv("GPX_FAULTS", "socket.read:fail@nth=2", 1);
    ::setenv("GPX_FAULTS_SEED", "7", 1);
    inj.configureFromEnv();
    EXPECT_TRUE(util::FaultInjector::armed());
    EXPECT_FALSE(util::checkFault("socket.read"));
    EXPECT_TRUE(util::checkFault("socket.read"));
    inj.reset();

    // A typo'd plan must warn and leave the injector disarmed — a
    // daemon restarted under a bad env var has to come up serving.
    ::setenv("GPX_FAULTS", "sockt.read:fail", 1); // bad plan: typo
    inj.configureFromEnv();
    EXPECT_FALSE(util::FaultInjector::armed());
    ::unsetenv("GPX_FAULTS");
    ::unsetenv("GPX_FAULTS_SEED");
}

// ---------------------------------------------------------------------
// Socket-layer faults (unit level, over a socketpair)
// ---------------------------------------------------------------------

class SocketFaultTest : public FaultTest
{
  protected:
    void
    SetUp() override
    {
        FaultTest::SetUp();
        int fds[2];
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a_ = util::Socket(fds[0]);
        b_ = util::Socket(fds[1]);
    }

    util::Socket a_, b_;
};

TEST_F(SocketFaultTest, InjectedReadFailure)
{
    const char msg[] = "hello";
    ASSERT_TRUE(a_.writeExact(msg, sizeof msg));
    arm("socket.read:fail@once");
    char buf[sizeof msg];
    EXPECT_FALSE(b_.readExact(buf, sizeof buf));
    // The fault fired once; the byte stream itself is intact.
    util::FaultInjector::instance().reset();
    ASSERT_TRUE(a_.writeExact(msg, sizeof msg));
    EXPECT_TRUE(b_.readExact(buf, sizeof buf));
}

TEST_F(SocketFaultTest, InjectedShortWrite)
{
    arm("socket.write:short@once");
    const char msg[] = "0123456789abcdef";
    EXPECT_FALSE(a_.writeExact(msg, sizeof msg));
    util::FaultInjector::instance().reset();
    // A short write is a real transfer of a strict prefix — the peer
    // sees half the bytes, exactly what a dying client produces.
    char buf[sizeof msg / 2];
    EXPECT_TRUE(b_.readExact(buf, sizeof buf));
}

TEST_F(SocketFaultTest, ReadDeadlineExpires)
{
    char byte;
    auto begin = std::chrono::steady_clock::now();
    auto status = b_.readExactDeadline(&byte, 1, 80);
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - begin)
                       .count();
    EXPECT_FALSE(status.ok);
    EXPECT_TRUE(status.timedOut);
    EXPECT_FALSE(status.cleanEof);
    EXPECT_GE(elapsed, 70);
}

TEST_F(SocketFaultTest, CleanEofIsNotATimeout)
{
    a_.close();
    char byte;
    auto status = b_.readExactDeadline(&byte, 1, 200);
    EXPECT_FALSE(status.ok);
    EXPECT_TRUE(status.cleanEof);
    EXPECT_FALSE(status.timedOut);
}

// ---------------------------------------------------------------------
// SIGBUS guard and truncated images
// ---------------------------------------------------------------------

TEST(SigbusGuard, BenignRegionRunsToCompletion)
{
    int ran = 0;
    EXPECT_TRUE(util::SigbusGuard::run([&] { ran = 1; }));
    EXPECT_EQ(ran, 1);
}

TEST(SigbusGuard, TruncationUnderMmapIsCaught)
{
    // The real failure mode, reproduced exactly: map a file, truncate
    // it behind the mapping, touch a vanished page. Unguarded this is
    // process death; guarded it is `false`.
    std::string path = ::testing::TempDir() + "gpx_sigbus_test.bin";
    const long page = ::sysconf(_SC_PAGESIZE);
    {
        std::ofstream os(path, std::ios::binary);
        std::vector<char> fill(static_cast<std::size_t>(page) * 4, 'x');
        os.write(fill.data(), static_cast<std::streamsize>(fill.size()));
    }
    int fd = ::open(path.c_str(), O_RDONLY);
    ASSERT_GE(fd, 0);
    void *addr = ::mmap(nullptr, static_cast<std::size_t>(page) * 4,
                        PROT_READ, MAP_PRIVATE, fd, 0);
    ASSERT_NE(addr, MAP_FAILED);
    ::close(fd);
    ASSERT_EQ(::truncate(path.c_str(), page), 0);

    volatile char sink = 0;
    const char *bytes = static_cast<const char *>(addr);
    // First page still backed: the guard must not misfire.
    EXPECT_TRUE(util::SigbusGuard::run([&] { sink = bytes[0]; }));
    // Third page is gone: SIGBUS, caught.
    EXPECT_FALSE(util::SigbusGuard::run(
        [&] { sink = bytes[page * 2]; }));
    // The handler restored nothing permanent: guarded reads still work.
    EXPECT_TRUE(util::SigbusGuard::run([&] { sink = bytes[1]; }));
    (void)sink;

    ::munmap(addr, static_cast<std::size_t>(page) * 4);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Golden-corpus fixture shared by the pipeline and serve fault tests
// ---------------------------------------------------------------------

class GoldenFaultTest : public FaultTest
{
  protected:
    void
    SetUp() override
    {
        FaultTest::SetUp();
        std::string dir = goldenDir();
        std::ifstream refFile(dir + "/ref.fa");
        ASSERT_TRUE(refFile) << "missing golden reference in " << dir;
        ref_ = genomics::readFasta(refFile);
        ASSERT_GT(ref_.totalLength(), 0u);
        r1Text_ = slurp(dir + "/r1.fq");
        r2Text_ = slurp(dir + "/r2.fq");
        ASSERT_FALSE(r1Text_.empty());

        genpair::SeedMapParams params;
        params.seedLen = 50;
        params.tableBits = 18;
        params.filterThreshold = 500;
        map_ = std::make_unique<genpair::SeedMap>(ref_, params);
    }

    /** One spine run over the whole corpus into a checked writer. */
    genpair::StreamRunStatus
    runSpine(genomics::SamWriter &sam, genomics::IngestError *error,
             std::string *document)
    {
        std::ostringstream header;
        {
            genomics::SamWriter headerWriter(header, ref_);
            headerWriter.writeHeader();
        }
        genpair::DriverConfig config;
        config.threads = 2;
        genpair::StreamingMapper mapper(ref_, *map_, config,
                                        /*chunk_pairs=*/64,
                                        /*io_threads=*/2);
        std::istringstream r1(r1Text_), r2(r2Text_);
        genpair::StreamingResult result;
        auto status = mapper.tryRun(r1, r2, sam, result, error);
        if (document != nullptr)
            *document = header.str();
        return status;
    }

    genomics::Reference ref_;
    std::string r1Text_, r2Text_;
    std::unique_ptr<genpair::SeedMap> map_;
};

TEST_F(GoldenFaultTest, ByteSourceFaultSurfacesAsParseError)
{
    std::ostringstream os;
    genomics::SamWriter sam(os, ref_);
    genomics::IngestError error;
    arm("byte.read:fail@nth=2");
    auto status = runSpine(sam, &error, nullptr);
    EXPECT_EQ(status, genpair::StreamRunStatus::kParseError);
    EXPECT_NE(error.message.find("injected"), std::string::npos)
        << error.message;

    // Same mapper code path, faults cleared: the pinned bits prove the
    // failure left no persistent state behind.
    util::FaultInjector::instance().reset();
    std::ostringstream os2;
    genomics::SamWriter sam2(os2, ref_);
    std::string header;
    ASSERT_EQ(runSpine(sam2, &error, &header),
              genpair::StreamRunStatus::kOk);
    EXPECT_EQ(util::md5Hex(header + os2.str()), kGoldenSamMd5);
}

TEST_F(GoldenFaultTest, SamWriteFaultSurfacesAsWriteError)
{
    std::ostringstream os;
    genomics::SamWriter sam(os, ref_);
    sam.checkWrites("corpus.sam", /*fatal_on_error=*/false);
    genomics::IngestError error;
    arm("sam.write:enospc@after=4KiB");
    auto status = runSpine(sam, &error, nullptr);
    EXPECT_EQ(status, genpair::StreamRunStatus::kWriteError);
    EXPECT_TRUE(sam.writeFailed());
    // The diagnostic locates the failure: output label + byte offset.
    EXPECT_NE(error.message.find("corpus.sam"), std::string::npos)
        << error.message;
    EXPECT_NE(error.message.find("byte offset"), std::string::npos)
        << error.message;
}

TEST_F(GoldenFaultTest, TruncatedImageRejectedNotCrash)
{
    // A v2 image truncated on disk (botched copy, partial download)
    // must come back as a diagnostic reject from open(), never a
    // SIGBUS or a silently wrong mapping.
    std::string path = ::testing::TempDir() + "gpx_trunc_test.gpx";
    {
        std::ofstream os(path, std::ios::binary);
        genpair::saveSeedMapV2(os, *map_, /*shards=*/2);
    }
    std::string full = slurp(path);
    ASSERT_GT(full.size(), 1024u);
    for (std::size_t keep :
         { full.size() / 2, full.size() - 64, std::size_t{ 100 } }) {
        ASSERT_EQ(::truncate(path.c_str(),
                             static_cast<off_t>(keep)),
                  0);
        std::string error;
        auto image = genpair::SeedMapImage::open(path, {}, &error);
        EXPECT_FALSE(image.has_value()) << "keep=" << keep;
        EXPECT_FALSE(error.empty());
        // Restore for the next round.
        std::ofstream os(path, std::ios::binary);
        os.write(full.data(), static_cast<std::streamsize>(full.size()));
    }
    std::remove(path.c_str());
}

TEST_F(GoldenFaultTest, MmapFaultPointsRejectCleanly)
{
    std::string path = ::testing::TempDir() + "gpx_mmapfault_test.gpx";
    {
        std::ofstream os(path, std::ios::binary);
        genpair::saveSeedMapV2(os, *map_, /*shards=*/1);
    }
    std::string error;
    arm("mmap.open:fail@once");
    EXPECT_FALSE(
        genpair::SeedMapImage::open(path, {}, &error).has_value());
    EXPECT_NE(error.find("injected"), std::string::npos) << error;

    util::FaultInjector::instance().reset();
    arm("mmap.validate:fail@once");
    EXPECT_FALSE(
        genpair::SeedMapImage::open(path, {}, &error).has_value());
    EXPECT_NE(error.find("injected"), std::string::npos) << error;

    util::FaultInjector::instance().reset();
    EXPECT_TRUE(
        genpair::SeedMapImage::open(path, {}, &error).has_value())
        << error;
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Serve-path chaos: shedding, deadlines, faults, hot swap
// ---------------------------------------------------------------------

class ServeFaultTest : public GoldenFaultTest
{
  protected:
    void
    SetUp() override
    {
        GoldenFaultTest::SetUp();
        std::ifstream r1(std::string(goldenDir()) + "/r1.fq");
        std::ifstream r2(std::string(goldenDir()) + "/r2.fq");
        reads1_ = genomics::readFastq(r1);
        reads2_ = genomics::readFastq(r2);
        ASSERT_EQ(reads1_.size(), reads2_.size());
    }

    void
    TearDown() override
    {
        if (server_) {
            server_->requestShutdown();
            server_->waitUntilDrained();
        }
        if (!imagePath_.empty())
            std::remove(imagePath_.c_str());
        GoldenFaultTest::TearDown();
    }

    void
    startServer(serve::ServeConfig config, bool file_backed = false)
    {
        socketPath_ = ::testing::TempDir() + "gpx_faults_test.sock";
        config.socketPath = socketPath_;
        if (config.threads == 0)
            config.threads = 2;
        config.chunkPairs = 64;
        serve::MountSpec spec;
        spec.name = "golden";
        spec.ref = &ref_;
        if (file_backed) {
            imagePath_ = ::testing::TempDir() + "gpx_faults_test.gpx";
            {
                std::ofstream os(imagePath_, std::ios::binary);
                genpair::saveSeedMapV2(os, *map_, /*shards=*/2);
            }
            std::string error;
            image_ = genpair::SeedMapImage::open(imagePath_, {}, &error);
            ASSERT_TRUE(image_.has_value()) << error;
            spec.view = image_->view();
            spec.indexPath = imagePath_;
        } else {
            spec.view = *map_;
        }
        server_ = std::make_unique<serve::ServeServer>(
            std::vector<serve::MountSpec>{ spec }, config);
        std::string error;
        ASSERT_TRUE(server_->start(&error)) << error;
    }

    serve::ServeClient
    connect()
    {
        std::string error;
        auto client =
            serve::ServeClient::connectUnix(socketPath_, &error);
        EXPECT_TRUE(client.has_value()) << error;
        return std::move(*client);
    }

    std::string
    fastqSlice(const std::vector<genomics::Read> &reads,
               std::size_t begin, std::size_t end) const
    {
        std::vector<genomics::Read> slice(reads.begin() + begin,
                                          reads.begin() + end);
        std::ostringstream os;
        genomics::writeFastq(os, slice);
        return os.str();
    }

    std::string
    mapCorpus(serve::ServeClient &client, std::size_t batch_pairs)
    {
        std::string doc;
        auto status = client.fetchHeader("", &doc);
        EXPECT_TRUE(status.ok) << status.describe();
        for (std::size_t i = 0; i < reads1_.size(); i += batch_pairs) {
            std::size_t end = std::min(i + batch_pairs, reads1_.size());
            serve::MapReplyBody reply;
            status = client.mapBatch("golden",
                                     fastqSlice(reads1_, i, end),
                                     fastqSlice(reads2_, i, end), false,
                                     &reply);
            EXPECT_TRUE(status.ok) << status.describe();
            doc += reply.sam;
        }
        return util::md5Hex(doc);
    }

    std::vector<genomics::Read> reads1_, reads2_;
    std::optional<genpair::SeedMapImage> image_;
    std::unique_ptr<serve::ServeServer> server_;
    std::string socketPath_, imagePath_;
};

TEST_F(ServeFaultTest, InjectedServerFaultIsRequestScoped)
{
    startServer({});
    auto client = connect();
    arm("serve.map:fail@once");
    serve::MapReplyBody reply;
    auto status =
        client.mapBatch("golden", fastqSlice(reads1_, 0, 8),
                        fastqSlice(reads2_, 0, 8), false, &reply);
    ASSERT_FALSE(status.ok);
    ASSERT_TRUE(status.errorFrame.has_value()) << status.describe();
    EXPECT_EQ(status.errorFrame->code, serve::kErrIoFault);
    // Request-scoped: the same connection immediately serves again.
    status = client.mapBatch("golden", fastqSlice(reads1_, 0, 8),
                             fastqSlice(reads2_, 0, 8), false, &reply);
    EXPECT_TRUE(status.ok) << status.describe();
    EXPECT_EQ(server_->counters().ioFaults, 1u);
}

TEST_F(ServeFaultTest, OverloadShedsWithRetryHintAndClientBacksOff)
{
    serve::ServeConfig config;
    config.admissionSlots = 1;
    config.queueTimeoutMs = 60;
    config.retryAfterMs = 30;
    startServer(config);

    // The first MAP evaluation stalls 600 ms holding the only slot —
    // a deterministic stand-in for an overloaded pool.
    arm("serve.map:delay=600@nth=1");
    std::thread occupier([this]() {
        auto client = connect();
        serve::MapReplyBody reply;
        auto status =
            client.mapBatch("golden", fastqSlice(reads1_, 0, 8),
                            fastqSlice(reads2_, 0, 8), false, &reply);
        EXPECT_TRUE(status.ok) << status.describe();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    // Fail-fast client: explicit OVERLOADED with the backoff hint.
    auto client = connect();
    serve::MapReplyBody reply;
    auto status =
        client.mapBatch("golden", fastqSlice(reads1_, 0, 8),
                        fastqSlice(reads2_, 0, 8), false, &reply);
    ASSERT_FALSE(status.ok);
    ASSERT_TRUE(status.errorFrame.has_value()) << status.describe();
    EXPECT_EQ(status.errorFrame->code, serve::kErrOverloaded);
    EXPECT_EQ(status.errorFrame->retryAfterMs, 30u);

    // Retrying client: capped exponential backoff rides out the spike
    // on the same connection.
    serve::RetryPolicy policy;
    policy.maxRetries = 12;
    policy.backoffMs = 40;
    client.setRetryPolicy(policy);
    status = client.mapBatch("golden", fastqSlice(reads1_, 0, 8),
                             fastqSlice(reads2_, 0, 8), false, &reply);
    EXPECT_TRUE(status.ok) << status.describe();
    occupier.join();

    serve::ServeCounters counters = server_->counters();
    EXPECT_GE(counters.shedded, 1u);
}

TEST_F(ServeFaultTest, SlowLorisHitsFrameDeadline)
{
    serve::ServeConfig config;
    config.connTimeoutMs = 200;
    startServer(config);

    std::string error;
    auto raw = util::connectUnix(socketPath_, &error);
    ASSERT_TRUE(raw.has_value()) << error;
    ASSERT_TRUE(serve::writeFrame(*raw, serve::kHelloRequest,
                                  serve::encodeHello({})));
    serve::Frame frame;
    ASSERT_EQ(serve::readFrame(*raw, &frame), serve::FrameRead::kFrame);

    // Start a frame (2 of 4 length bytes) and stall: the monotonic
    // frame budget must expire no matter how slowly bytes dribble.
    const u8 dribble[2] = { 0x40, 0x00 };
    ASSERT_TRUE(raw->writeExact(dribble, sizeof dribble));
    ASSERT_EQ(serve::readFrame(*raw, &frame), serve::FrameRead::kFrame);
    ASSERT_EQ(frame.type, serve::kErrorReply);
    serve::ErrorBody err;
    ASSERT_TRUE(serve::decodeError(frame.payload, &err));
    EXPECT_EQ(err.code, serve::kErrDeadline);
    // Connection is closed behind the courtesy frame.
    u8 byte;
    EXPECT_FALSE(raw->readExact(&byte, 1));
    EXPECT_EQ(server_->counters().deadlineExpired, 1u);
}

TEST_F(ServeFaultTest, IdleConnectionsAreReaped)
{
    serve::ServeConfig config;
    config.idleTimeoutMs = 100;
    startServer(config);

    std::string error;
    auto raw = util::connectUnix(socketPath_, &error);
    ASSERT_TRUE(raw.has_value()) << error;
    ASSERT_TRUE(serve::writeFrame(*raw, serve::kHelloRequest,
                                  serve::encodeHello({})));
    serve::Frame frame;
    ASSERT_EQ(serve::readFrame(*raw, &frame), serve::FrameRead::kFrame);

    // Say nothing. The reaper answers DEADLINE and closes.
    ASSERT_EQ(serve::readFrame(*raw, &frame), serve::FrameRead::kFrame);
    ASSERT_EQ(frame.type, serve::kErrorReply);
    serve::ErrorBody err;
    ASSERT_TRUE(serve::decodeError(frame.payload, &err));
    EXPECT_EQ(err.code, serve::kErrDeadline);
    EXPECT_NE(err.message.find("idle"), std::string::npos);
    u8 byte;
    EXPECT_FALSE(raw->readExact(&byte, 1));
    EXPECT_EQ(server_->counters().idleClosed, 1u);
}

TEST_F(ServeFaultTest, RefreshRejectedForInlineMount)
{
    startServer({}); // memory-built mount: nothing to re-open
    auto client = connect();
    auto status = client.refreshMount("golden");
    ASSERT_FALSE(status.ok);
    ASSERT_TRUE(status.errorFrame.has_value()) << status.describe();
    EXPECT_EQ(status.errorFrame->code, serve::kErrRefreshFailed);
    // Request-scoped: mapping continues on the same connection.
    serve::MapReplyBody reply;
    status = client.mapBatch("golden", fastqSlice(reads1_, 0, 4),
                             fastqSlice(reads2_, 0, 4), false, &reply);
    EXPECT_TRUE(status.ok) << status.describe();
    EXPECT_EQ(server_->counters().swapsRejected, 1u);
}

TEST_F(ServeFaultTest, HotSwapChaosUnderConcurrentClients)
{
    // The tentpole proof: N hot swaps — one of them a corrupt
    // candidate that must be rejected before publish — while
    // concurrent clients map the corpus in a loop. Zero dropped
    // requests, every document bit-identical to the pinned digest.
    // GPX_CHAOS_SWAPS scales the swap count (CI chaos job: 50).
    u64 swapTarget = 4;
    if (const char *env = std::getenv("GPX_CHAOS_SWAPS"))
        swapTarget = std::max<u64>(std::strtoull(env, nullptr, 10), 2);

    startServer({}, /*file_backed=*/true);
    const std::string goodImage = slurp(imagePath_);
    ASSERT_GT(goodImage.size(), 1024u);

    // Replace the on-disk image the way an operator must: write the
    // candidate beside it and rename() over the path. An in-place
    // ofstream rewrite truncates the live inode while the serving
    // epoch still has it mmapped — a concurrent client faulting a
    // cold page past the momentary EOF dies of real SIGBUS. rename()
    // keeps the old inode alive for existing mappings.
    auto publishImage = [this](const std::string &bytes) {
        const std::string tmp = imagePath_ + ".tmp";
        {
            std::ofstream os(tmp, std::ios::binary);
            os.write(bytes.data(),
                     static_cast<std::streamsize>(bytes.size()));
        }
        ASSERT_EQ(std::rename(tmp.c_str(), imagePath_.c_str()), 0);
    };

    std::atomic<bool> done{ false };
    std::atomic<u64> corpusRuns{ 0 };
    constexpr int kClients = 3;
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c)
        clients.emplace_back([this, c, &done, &corpusRuns]() {
            auto client = connect();
            std::size_t batch = 32 + 17 * static_cast<std::size_t>(c);
            do {
                EXPECT_EQ(mapCorpus(client, batch), kGoldenSamMd5);
                ++corpusRuns;
            } while (!done.load());
        });

    u64 swaps = 0;
    bool corruptTried = false;
    while (swaps < swapTarget) {
        std::string error;
        if (!corruptTried && swaps == swapTarget / 2) {
            // Corrupt the candidate: flip a payload byte so the shard
            // checksum cannot match. The swap must be rejected with
            // the old epoch untouched and clients never noticing.
            std::string bad = goodImage;
            bad[bad.size() / 2] ^= 0x5A;
            publishImage(bad);
            EXPECT_FALSE(server_->refreshMount("golden", &error));
            EXPECT_FALSE(error.empty());
            publishImage(goodImage);
            corruptTried = true;
            continue;
        }
        ASSERT_TRUE(server_->refreshMount("golden", &error)) << error;
        ++swaps;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    // Every client must complete at least one more full corpus pass
    // entirely on post-swap epochs.
    u64 floor = corpusRuns.load() + kClients;
    while (corpusRuns.load() < floor)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    done.store(true);
    for (auto &t : clients)
        t.join();

    serve::ServeCounters counters = server_->counters();
    EXPECT_GE(counters.indexSwaps, 3u);
    EXPECT_EQ(counters.swapsRejected, 1u);
    EXPECT_EQ(counters.requestsRejected, 0u);

    // A REFRESH over the wire works too (the admin path clients use).
    auto admin = connect();
    auto status = admin.refreshMount("golden");
    EXPECT_TRUE(status.ok) << status.describe();
    EXPECT_EQ(mapCorpus(admin, 64), kGoldenSamMd5);
}

} // namespace
