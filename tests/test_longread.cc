/**
 * @file
 * Tests for the long-read mapping pipeline (paper §4.7): pseudo-pair
 * decomposition, location voting and chunked DP alignment.
 */

#include <gtest/gtest.h>

#include <memory>

#include "baseline/mm2lite.hh"
#include "genpair/longread.hh"
#include "simdata/genome_generator.hh"
#include "simdata/read_simulator.hh"

namespace {

using namespace gpx;
using genomics::DnaSequence;
using genomics::Read;
using genomics::Reference;
using genpair::LongReadMapper;
using genpair::LongReadParams;
using genpair::SeedMap;
using genpair::SeedMapParams;

class LongReadTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        simdata::GenomeParams gp;
        gp.length = 400000;
        gp.chromosomes = 1;
        gp.seed = 55;
        ref_ = simdata::generateGenome(gp);
        SeedMapParams sp;
        sp.tableBits = 20;
        map_ = std::make_unique<SeedMap>(ref_, sp);
        dp_ = std::make_unique<baseline::Mm2Lite>(
            ref_, baseline::Mm2LiteParams{});
        mapper_ = std::make_unique<LongReadMapper>(ref_, *map_,
                                                   LongReadParams{},
                                                   dp_.get());
    }

    Reference ref_;
    std::unique_ptr<SeedMap> map_;
    std::unique_ptr<baseline::Mm2Lite> dp_;
    std::unique_ptr<LongReadMapper> mapper_;
};

TEST_F(LongReadTest, MapsCleanForwardRead)
{
    Read read;
    read.seq = ref_.chromosome(0).sub(50000, 5000);
    auto m = mapper_->mapRead(read);
    ASSERT_TRUE(m.mapped);
    EXPECT_EQ(m.pos, 50000u);
    EXPECT_FALSE(m.reverse);
    EXPECT_EQ(m.cigar.querySpan(), 5000u);
}

TEST_F(LongReadTest, MapsCleanReverseRead)
{
    Read read;
    read.seq = ref_.chromosome(0).sub(80000, 4000).revComp();
    auto m = mapper_->mapRead(read);
    ASSERT_TRUE(m.mapped);
    EXPECT_EQ(m.pos, 80000u);
    EXPECT_TRUE(m.reverse);
}

TEST_F(LongReadTest, MapsNoisyRead)
{
    simdata::DiploidGenome dg(ref_, simdata::VariantParams{});
    simdata::LongReadSimParams lp;
    lp.meanLen = 4000;
    lp.sdLen = 500;
    lp.errors = simdata::ErrorProfile::uniform(0.005); // HiFi-like
    simdata::LongReadSimulator sim(dg, lp);
    u32 correct = 0;
    const u32 n = 10;
    for (u32 i = 0; i < n; ++i) {
        Read read = sim.simulateRead();
        auto m = mapper_->mapRead(read);
        if (m.mapped && m.reverse == read.truthReverse) {
            u64 diff = m.pos > read.truthPos ? m.pos - read.truthPos
                                             : read.truthPos - m.pos;
            correct += diff <= 200;
        }
    }
    EXPECT_GE(correct, n - 2);
}

TEST_F(LongReadTest, RandomSequenceUnmapped)
{
    util::Pcg32 rng(3);
    std::string junk;
    for (int i = 0; i < 3000; ++i)
        junk.push_back(genomics::baseToChar(rng.below(4)));
    Read read;
    read.seq = DnaSequence(junk);
    auto m = mapper_->mapRead(read);
    EXPECT_FALSE(m.mapped);
    EXPECT_GT(mapper_->stats().unmapped, 0u);
}

TEST_F(LongReadTest, StatsTrackPseudoPairs)
{
    Read read;
    read.seq = ref_.chromosome(0).sub(10000, 3000);
    mapper_->mapRead(read);
    // 3000/150 = 20 segments -> 19 pseudo pairs, twice (both strands).
    EXPECT_GE(mapper_->stats().pseudoPairs, 19u);
    EXPECT_GT(mapper_->stats().votes, 0u);
    EXPECT_GT(mapper_->stats().dpCells, 0u);
}

TEST_F(LongReadTest, DeletionInReadStillMaps)
{
    // A long read with a 30-base deletion relative to the reference.
    DnaSequence seq = ref_.chromosome(0).sub(120000, 2000);
    seq.append(ref_.chromosome(0).view(122030, 2000));
    Read read;
    read.seq = seq;
    auto m = mapper_->mapRead(read);
    ASSERT_TRUE(m.mapped);
    EXPECT_EQ(m.pos, 120000u);
}

} // namespace
