/**
 * @file
 * Tests for the adoption-surface I/O: SAM records, VCF round-trips and
 * SeedMap binary serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "eval/vcf.hh"
#include "genomics/sam.hh"
#include "genpair/seedmap_io.hh"
#include "simdata/genome_generator.hh"
#include "util/rng.hh"

namespace {

using namespace gpx;
using genomics::Cigar;
using genomics::DnaSequence;
using genomics::Mapping;
using genomics::PairMapping;
using genomics::ReadPair;
using genomics::Reference;
using genomics::SamWriter;

Reference
makeRef()
{
    Reference ref;
    util::Pcg32 rng(5);
    std::string s;
    for (int i = 0; i < 3000; ++i)
        s.push_back(genomics::baseToChar(rng.below(4)));
    ref.addChromosome("chr1", DnaSequence(s));
    ref.addChromosome("chr2", DnaSequence(s.substr(0, 1500)));
    return ref;
}

TEST(Sam, HeaderListsChromosomes)
{
    Reference ref = makeRef();
    std::ostringstream os;
    SamWriter writer(os, ref);
    writer.writeHeader();
    std::string out = os.str();
    EXPECT_NE(out.find("@SQ\tSN:chr1\tLN:3000"), std::string::npos);
    EXPECT_NE(out.find("@SQ\tSN:chr2\tLN:1500"), std::string::npos);
}

TEST(Sam, ProperPairFlagsAndTlen)
{
    Reference ref = makeRef();
    std::ostringstream os;
    SamWriter writer(os, ref);

    ReadPair pair;
    pair.first.name = "p0";
    pair.first.seq = ref.window(100, 150);
    pair.second.name = "p0";
    pair.second.seq = ref.window(350, 150).revComp();

    PairMapping pm;
    pm.first.mapped = true;
    pm.first.pos = 100;
    pm.first.cigar = Cigar::parse("150M");
    pm.first.score = 300;
    pm.second.mapped = true;
    pm.second.pos = 350;
    pm.second.reverse = true;
    pm.second.cigar = Cigar::parse("150M");
    pm.second.score = 300;

    writer.writePair(pair, pm);
    std::string out = os.str();
    EXPECT_EQ(writer.recordsWritten(), 2u);

    // First record: paired, proper, first-in-pair, mate reverse.
    u32 f1 = genomics::kSamPaired | genomics::kSamProperPair |
             genomics::kSamFirstInPair | genomics::kSamMateReverse;
    EXPECT_NE(out.find("p0\t" + std::to_string(f1) + "\tchr1\t101"),
              std::string::npos);
    // TLEN = 350 + 150 - 100 = 400.
    EXPECT_NE(out.find("\t400\t"), std::string::npos);
    EXPECT_NE(out.find("\t-400\t"), std::string::npos);
}

TEST(Sam, ReverseReadSequenceIsRevComped)
{
    Reference ref = makeRef();
    std::ostringstream os;
    SamWriter writer(os, ref);
    genomics::Read read;
    read.name = "r";
    read.seq = ref.window(200, 20).revComp();
    Mapping m;
    m.mapped = true;
    m.pos = 200;
    m.reverse = true;
    m.cigar = Cigar::parse("20M");
    writer.writeRead(read, m);
    // SAM stores the reference-forward orientation.
    EXPECT_NE(os.str().find(ref.window(200, 20).toString()),
              std::string::npos);
}

TEST(Sam, UnmappedRecord)
{
    Reference ref = makeRef();
    std::ostringstream os;
    SamWriter writer(os, ref);
    genomics::Read read;
    read.name = "u";
    read.seq = DnaSequence("ACGT");
    writer.writeRead(read, Mapping{});
    EXPECT_NE(os.str().find("u\t4\t*\t0\t0\t*"), std::string::npos);
}

TEST(Sam, MapqFromScores)
{
    EXPECT_EQ(genomics::mapqFromScores(300, 0, 300), 60);
    EXPECT_EQ(genomics::mapqFromScores(300, 300, 300), 0);
    u8 mid = genomics::mapqFromScores(300, 270, 300);
    EXPECT_GT(mid, 0);
    EXPECT_LT(mid, 60);
    EXPECT_EQ(genomics::mapqFromScores(0, 0, 300), 0);
}

TEST(Vcf, RoundTripAllClasses)
{
    Reference ref = makeRef();
    std::vector<eval::CalledVariant> calls(3);
    calls[0].chrom = 0;
    calls[0].pos = 500;
    calls[0].type = simdata::VariantType::Snp;
    calls[0].altBase = (ref.baseAt(500) + 1) & 3u;
    calls[0].altFraction = 0.5;
    calls[0].depth = 30;
    calls[1].chrom = 0;
    calls[1].pos = 800;
    calls[1].type = simdata::VariantType::Insertion;
    calls[1].insSeq = "TTG";
    calls[1].len = 3;
    calls[2].chrom = 1;
    calls[2].pos = 300;
    calls[2].type = simdata::VariantType::Deletion;
    calls[2].len = 2;

    std::stringstream ss;
    eval::writeVcf(ss, ref, calls);
    auto back = eval::readVcf(ss, ref);
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back[0].type, simdata::VariantType::Snp);
    EXPECT_EQ(back[0].pos, 500u);
    EXPECT_EQ(back[0].altBase, calls[0].altBase);
    EXPECT_EQ(back[1].type, simdata::VariantType::Insertion);
    EXPECT_EQ(back[1].insSeq, "TTG");
    EXPECT_EQ(back[2].type, simdata::VariantType::Deletion);
    EXPECT_EQ(back[2].len, 2u);
    EXPECT_EQ(back[2].chrom, 1u);
}

TEST(Vcf, HeaderWellFormed)
{
    Reference ref = makeRef();
    std::ostringstream os;
    eval::writeVcf(os, ref, {});
    std::string out = os.str();
    EXPECT_EQ(out.rfind("##fileformat=VCFv4.2", 0), 0u);
    EXPECT_NE(out.find("##contig=<ID=chr1,length=3000>"),
              std::string::npos);
    EXPECT_NE(out.find("#CHROM\tPOS"), std::string::npos);
}

class SeedMapIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        simdata::GenomeParams gp;
        gp.length = 60000;
        gp.chromosomes = 1;
        gp.seed = 31;
        ref_ = simdata::generateGenome(gp);
        genpair::SeedMapParams sp;
        sp.tableBits = 17;
        map_ = std::make_unique<genpair::SeedMap>(ref_, sp);
    }

    Reference ref_;
    std::unique_ptr<genpair::SeedMap> map_;
};

TEST_F(SeedMapIoTest, SaveLoadRoundTrip)
{
    std::stringstream ss;
    genpair::saveSeedMap(ss, *map_);
    auto loaded = genpair::loadSeedMap(ss);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->tableBits(), map_->tableBits());
    EXPECT_EQ(loaded->params().seedLen, map_->params().seedLen);
    EXPECT_EQ(loaded->rawLocationTable(), map_->rawLocationTable());

    // Queries against the loaded index behave identically.
    const DnaSequence &chrom = ref_.chromosome(0);
    for (u64 p = 0; p + 50 <= chrom.size(); p += 769) {
        u32 h = map_->hashSeed(chrom.sub(p, 50));
        auto a = map_->lookup(h);
        auto b = loaded->lookup(h);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_EQ(a[i], b[i]);
    }
}

TEST_F(SeedMapIoTest, CorruptPayloadRejected)
{
    std::stringstream ss;
    genpair::saveSeedMap(ss, *map_);
    std::string image = ss.str();
    image[image.size() - 3] ^= 0x5A; // flip payload bits
    std::stringstream bad(image);
    EXPECT_FALSE(genpair::loadSeedMap(bad).has_value());
}

TEST_F(SeedMapIoTest, TruncatedImageRejected)
{
    std::stringstream ss;
    genpair::saveSeedMap(ss, *map_);
    std::string image = ss.str();
    std::stringstream bad(image.substr(0, image.size() / 2));
    EXPECT_FALSE(genpair::loadSeedMap(bad).has_value());
}

TEST_F(SeedMapIoTest, WrongMagicRejected)
{
    std::stringstream bad("not a seedmap image at all");
    EXPECT_FALSE(genpair::loadSeedMap(bad).has_value());
}

} // namespace
