/**
 * @file
 * Tests for the parallel mapping driver: identical results to a serial
 * run, correct aggregation, and both engine configurations.
 */

#include <gtest/gtest.h>

#include <memory>

#include "genpair/driver.hh"
#include "simdata/genome_generator.hh"
#include "simdata/read_simulator.hh"
#include "test_gates.hh"

namespace {

using namespace gpx;
using genpair::DriverConfig;
using genpair::ParallelMapper;

class DriverTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        simdata::GenomeParams gp;
        gp.length = 200000;
        gp.chromosomes = 1;
        gp.seed = 61;
        ref_ = simdata::generateGenome(gp);
        map_ = std::make_unique<genpair::SeedMap>(
            ref_, genpair::SeedMapParams{});
        simdata::DiploidGenome donor(ref_, simdata::VariantParams{});
        simdata::ReadSimulator sim(donor, simdata::ReadSimParams{});
        pairs_ = sim.simulate(300);
    }

    genomics::Reference ref_;
    std::unique_ptr<genpair::SeedMap> map_;
    std::vector<genomics::ReadPair> pairs_;
};

TEST_F(DriverTest, ParallelMatchesSerial)
{
    DriverConfig serialCfg;
    serialCfg.threads = 1;
    DriverConfig parallelCfg;
    parallelCfg.threads = 8;

    auto serial = ParallelMapper(ref_, *map_, serialCfg).mapAll(pairs_);
    auto parallel =
        ParallelMapper(ref_, *map_, parallelCfg).mapAll(pairs_);

    ASSERT_EQ(serial.mappings.size(), parallel.mappings.size());
    for (std::size_t i = 0; i < serial.mappings.size(); ++i) {
        EXPECT_EQ(serial.mappings[i].first.pos,
                  parallel.mappings[i].first.pos);
        EXPECT_EQ(serial.mappings[i].second.pos,
                  parallel.mappings[i].second.pos);
        EXPECT_EQ(serial.mappings[i].first.score,
                  parallel.mappings[i].first.score);
        EXPECT_EQ(serial.mappings[i].path, parallel.mappings[i].path);
    }
    EXPECT_EQ(serial.stats.lightAligned, parallel.stats.lightAligned);
    EXPECT_EQ(serial.stats.pairsTotal, parallel.stats.pairsTotal);
}

TEST_F(DriverTest, StatsFieldwiseParallelEqualsSerial)
{
    // The seed driver's hand-rolled stats merge silently dropped
    // gateRejected; comparing every field against a serial run (with a
    // gate installed so gateRejected is exercised) pins the full list.
    auto withGate = [](u32 threads) {
        DriverConfig cfg;
        cfg.threads = threads;
        cfg.gateFactory = [] {
            return std::make_unique<gpx::testing::OddPositionGate>();
        };
        return cfg;
    };
    auto serial =
        ParallelMapper(ref_, *map_, withGate(1)).mapAll(pairs_);
    auto parallel =
        ParallelMapper(ref_, *map_, withGate(8)).mapAll(pairs_);

    const auto &s = serial.stats;
    const auto &p = parallel.stats;
    EXPECT_GT(s.gateRejected, 0u);
    EXPECT_EQ(s.pairsTotal, p.pairsTotal);
    EXPECT_EQ(s.seedMissFallback, p.seedMissFallback);
    EXPECT_EQ(s.paFilterFallback, p.paFilterFallback);
    EXPECT_EQ(s.lightAlignFallback, p.lightAlignFallback);
    EXPECT_EQ(s.lightAligned, p.lightAligned);
    EXPECT_EQ(s.dpAligned, p.dpAligned);
    EXPECT_EQ(s.fullDpMapped, p.fullDpMapped);
    EXPECT_EQ(s.unmapped, p.unmapped);
    EXPECT_EQ(s.query.seedLookups, p.query.seedLookups);
    EXPECT_EQ(s.query.locationsFetched, p.query.locationsFetched);
    EXPECT_EQ(s.query.filterIterations, p.query.filterIterations);
    EXPECT_EQ(s.candidatePairs, p.candidatePairs);
    EXPECT_EQ(s.lightAlignsAttempted, p.lightAlignsAttempted);
    EXPECT_EQ(s.lightHypotheses, p.lightHypotheses);
    EXPECT_EQ(s.gateRejected, p.gateRejected);
}

TEST_F(DriverTest, PoolPersistsAcrossMapAllCalls)
{
    // Workers (and their engines) outlive one mapAll; a second call on
    // the same mapper must neither double-count stats nor change
    // results.
    DriverConfig cfg;
    cfg.threads = 4;
    ParallelMapper mapper(ref_, *map_, cfg);
    auto first = mapper.mapAll(pairs_);
    auto second = mapper.mapAll(pairs_);
    EXPECT_EQ(first.stats.pairsTotal, pairs_.size());
    EXPECT_EQ(second.stats.pairsTotal, pairs_.size());
    EXPECT_EQ(first.stats.lightAligned, second.stats.lightAligned);
    ASSERT_EQ(first.mappings.size(), second.mappings.size());
    for (std::size_t i = 0; i < first.mappings.size(); ++i) {
        EXPECT_EQ(first.mappings[i].first.pos,
                  second.mappings[i].first.pos);
        EXPECT_EQ(first.mappings[i].path, second.mappings[i].path);
    }
}

TEST_F(DriverTest, EmptyInputYieldsEmptyResult)
{
    DriverConfig cfg;
    cfg.threads = 4;
    ParallelMapper mapper(ref_, *map_, cfg);
    auto res = mapper.mapAll({});
    EXPECT_TRUE(res.mappings.empty());
    EXPECT_EQ(res.stats.pairsTotal, 0u);
}

TEST_F(DriverTest, StatsAggregateToInputSize)
{
    DriverConfig cfg;
    cfg.threads = 4;
    auto res = ParallelMapper(ref_, *map_, cfg).mapAll(pairs_);
    EXPECT_EQ(res.stats.pairsTotal, pairs_.size());
    EXPECT_GT(res.timing.itemsPerSec, 0.0);
    EXPECT_GT(res.timing.mbpsFor(150), 0.0);
}

TEST_F(DriverTest, PureMm2ConfigurationRuns)
{
    DriverConfig cfg;
    cfg.threads = 4;
    cfg.useGenPair = false; // MM2-lite end to end
    auto res = ParallelMapper(ref_, *map_, cfg).mapAll(pairs_);
    u32 mapped = 0;
    for (const auto &pm : res.mappings)
        mapped += pm.bothMapped();
    EXPECT_GT(mapped, pairs_.size() * 8 / 10);
    // The GenPair pipeline never ran.
    EXPECT_EQ(res.stats.lightAligned, 0u);
}

TEST_F(DriverTest, ZeroThreadsUsesHardwareConcurrency)
{
    DriverConfig cfg;
    cfg.threads = 0;
    ParallelMapper mapper(ref_, *map_, cfg);
    EXPECT_GE(mapper.threads(), 1u);
}

TEST_F(DriverTest, GenPairFasterThanPureMm2)
{
    // The paper's GenPair+MM2 vs MM2 speedup (1.72x) at software level;
    // assert directionally (>1.1x) to stay robust on busy CI hosts.
    DriverConfig gp;
    gp.threads = 4;
    DriverConfig mm2;
    mm2.threads = 4;
    mm2.useGenPair = false;
    // Warm both paths once to amortize first-touch effects.
    ParallelMapper(ref_, *map_, gp).mapAll(pairs_);
    auto a = ParallelMapper(ref_, *map_, gp).mapAll(pairs_);
    auto b = ParallelMapper(ref_, *map_, mm2).mapAll(pairs_);
    EXPECT_GT(a.timing.itemsPerSec, b.timing.itemsPerSec * 1.1);
}

} // namespace
