/**
 * @file
 * Unit and property tests for the SHD bit-parallel primitives.
 */

#include <gtest/gtest.h>

#include "align/shd.hh"
#include "util/rng.hh"

namespace {

using namespace gpx;
using align::BitPlanes;
using align::HammingMask;
using align::shiftedMasks;
using genomics::DnaSequence;

TEST(HammingMask, PopcountPrefixSuffix)
{
    HammingMask m;
    m.bits = 8;
    m.words = { 0b11100111 };
    EXPECT_EQ(m.popcount(), 6u);
    EXPECT_EQ(m.onesPrefix(), 3u);
    EXPECT_EQ(m.onesSuffix(), 3u);
}

TEST(HammingMask, AllOnes)
{
    HammingMask m;
    m.bits = 150;
    m.words = { ~u64{0}, ~u64{0}, (u64{1} << 22) - 1 };
    EXPECT_EQ(m.popcount(), 150u);
    EXPECT_EQ(m.onesPrefix(), 150u);
    EXPECT_EQ(m.onesSuffix(), 150u);
}

TEST(HammingMask, AllZeros)
{
    HammingMask m;
    m.bits = 100;
    m.words = { 0, 0 };
    EXPECT_EQ(m.onesPrefix(), 0u);
    EXPECT_EQ(m.onesSuffix(), 0u);
}

TEST(HammingMask, PrefixCrossesWordBoundary)
{
    HammingMask m;
    m.bits = 100;
    m.words = { ~u64{0}, (u64{1} << 10) - 1 }; // ones through bit 73
    EXPECT_EQ(m.onesPrefix(), 74u);
}

TEST(HammingMask, SuffixCrossesWordBoundary)
{
    HammingMask m;
    m.bits = 96;
    // Bits 60..95 set.
    m.words = { ~u64{0} << 60, ~u64{0} >> 32 };
    EXPECT_EQ(m.onesSuffix(), 36u);
}

TEST(BitPlanes, EqualityMaskExactMatch)
{
    DnaSequence read("ACGTACGT");
    DnaSequence ref("ACGTACGT");
    BitPlanes rp(read), gp(ref);
    HammingMask m = rp.equalityMask(gp, 0);
    EXPECT_EQ(m.popcount(), 8u);
}

TEST(BitPlanes, EqualityMaskWithOffset)
{
    DnaSequence read("ACGT");
    DnaSequence ref("TTACGTTT");
    BitPlanes rp(read), gp(ref);
    EXPECT_EQ(rp.equalityMask(gp, 2).popcount(), 4u);
    EXPECT_LT(rp.equalityMask(gp, 0).popcount(), 4u);
}

TEST(BitPlanes, BitsBeyondRefWindowAreMismatch)
{
    DnaSequence read("AAAA");
    DnaSequence ref("AA");
    BitPlanes rp(read), gp(ref);
    HammingMask m = rp.equalityMask(gp, 0);
    // Only the two in-window bases can match; 'A' equals implicit zero
    // planes and must NOT be counted.
    EXPECT_EQ(m.popcount(), 2u);
}

/** Property test: equality masks match a naive per-base comparison. */
class MaskProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(MaskProperty, MatchesNaiveComparison)
{
    util::Pcg32 rng(GetParam() * 31 + 7);
    u32 readLen = 100 + rng.below(120);
    u32 refLen = readLen + 20;
    std::string rs, gs;
    for (u32 i = 0; i < readLen; ++i)
        rs.push_back(genomics::baseToChar(rng.below(4)));
    for (u32 i = 0; i < refLen; ++i)
        gs.push_back(genomics::baseToChar(rng.below(4)));
    DnaSequence read(rs), ref(gs);
    BitPlanes rp(read), gp(ref);
    for (u32 off = 0; off <= 20; off += 5) {
        HammingMask m = rp.equalityMask(gp, off);
        for (u32 i = 0; i < readLen; ++i) {
            bool expect = off + i < refLen && read.at(i) == ref.at(off + i);
            EXPECT_EQ(m.test(i), expect)
                << "offset " << off << " bit " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Random, MaskProperty, ::testing::Range(0, 10));

TEST(ShiftedMasks, CenterMaskIsShiftZero)
{
    DnaSequence read("ACGTACGTAC");
    // Window: 3 pad bases, the read, 3 pad bases.
    DnaSequence window("TTT" "ACGTACGTAC" "TTT");
    auto masks = shiftedMasks(read, window, 3, 3);
    ASSERT_EQ(masks.size(), 7u);
    EXPECT_EQ(masks[3].popcount(), 10u); // shift 0 = exact
}

TEST(ShiftedMasks, DetectsShiftedMatch)
{
    DnaSequence read("ACGTACGTAC");
    // The read occurs 2 bases to the right of the nominal center.
    DnaSequence window("GGGGG" "ACGTACGTAC" "G");
    auto masks = shiftedMasks(read, window, 3, 3);
    // shift +2: read[i] == window[3 + i + 2].
    EXPECT_EQ(masks[3 + 2].popcount(), 10u);
}

} // namespace
