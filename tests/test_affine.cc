/**
 * @file
 * Unit and property tests for the two-piece affine DP aligner.
 */

#include <gtest/gtest.h>

#include "align/affine.hh"
#include "genomics/scoring.hh"
#include "util/rng.hh"

namespace {

using namespace gpx;
using align::fitAlign;
using align::globalAlign;
using align::localAlign;
using genomics::DnaSequence;
using genomics::ScoringScheme;

const ScoringScheme kSr = ScoringScheme::shortRead();

TEST(GlobalAlign, ExactMatch)
{
    DnaSequence s("ACGTACGTACGT");
    auto r = globalAlign(s, s, kSr);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.score, 24);
    EXPECT_EQ(r.cigar.toString(), "12M");
}

TEST(GlobalAlign, SingleMismatch)
{
    DnaSequence q("ACGTACGTACGT");
    DnaSequence t("ACGTACTTACGT");
    auto r = globalAlign(q, t, kSr);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.score, 11 * 2 - 8);
    EXPECT_EQ(r.cigar.toString(), "12M");
}

TEST(GlobalAlign, SingleDeletion)
{
    DnaSequence q("ACGTACGT");
    DnaSequence t("ACGTTACGT"); // one extra ref base
    auto r = globalAlign(q, t, kSr);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.score, 8 * 2 - 14);
    EXPECT_EQ(r.cigar.refSpan(), 9u);
    EXPECT_EQ(r.cigar.querySpan(), 8u);
    EXPECT_EQ(r.cigar.deletedBases(), 1u);
}

TEST(GlobalAlign, SingleInsertion)
{
    DnaSequence q("ACGTTACGT");
    DnaSequence t("ACGTACGT");
    auto r = globalAlign(q, t, kSr);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.score, 8 * 2 - 14);
    EXPECT_EQ(r.cigar.insertedBases(), 1u);
}

TEST(GlobalAlign, LongGapUsesSecondPiece)
{
    // 40-base deletion: two-piece cost is 32 + 40 = 72, not 12 + 80.
    std::string prefix(30, 'A');
    std::string suffix(30, 'C');
    std::string gap(40, 'G');
    DnaSequence q(prefix + suffix);
    DnaSequence t(prefix + gap + suffix);
    auto r = globalAlign(q, t, kSr);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.score, 60 * 2 - 72);
    EXPECT_EQ(r.cigar.deletedBases(), 40u);
}

TEST(GlobalAlign, CellUpdatesCounted)
{
    DnaSequence q("ACGTACGT");
    auto r = globalAlign(q, q, kSr);
    EXPECT_EQ(r.cellUpdates, 64u);
}

TEST(GlobalAlign, BandedMatchesUnbandedForSmallEdits)
{
    util::Pcg32 rng(17);
    std::string s;
    for (int i = 0; i < 120; ++i)
        s.push_back(genomics::baseToChar(rng.below(4)));
    DnaSequence q(s);
    std::string t = s;
    t[60] = t[60] == 'A' ? 'C' : 'A';
    DnaSequence target(t);
    auto full = globalAlign(q, target, kSr);
    auto banded = globalAlign(q, target, kSr, 8);
    ASSERT_TRUE(full.valid);
    ASSERT_TRUE(banded.valid);
    EXPECT_EQ(full.score, banded.score);
}

TEST(FitAlign, FindsReadInsideWindow)
{
    DnaSequence read("ACGTACGTAC");
    DnaSequence window("TTTTTACGTACGTACTTTTT");
    auto r = fitAlign(read, window, kSr);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.score, 20);
    EXPECT_EQ(r.targetStart, 5u);
    EXPECT_EQ(r.targetEnd, 15u);
    EXPECT_EQ(r.cigar.toString(), "10M");
}

TEST(FitAlign, WholeQueryConsumed)
{
    DnaSequence read("ACGTACGTAC");
    DnaSequence window("GGGGACGTACGTACGGGG");
    auto r = fitAlign(read, window, kSr);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.cigar.querySpan(), read.size());
}

TEST(FitAlign, MismatchTolerated)
{
    DnaSequence read("ACGTACGTACGTACG");
    DnaSequence window("CCCCCACGTACGAACGTACGCCCC");
    auto r = fitAlign(read, window, kSr);
    ASSERT_TRUE(r.valid);
    EXPECT_GT(r.score, 0);
}

TEST(LocalAlign, FindsCommonCore)
{
    DnaSequence q("TTTTACGTACGTTTTT");
    DnaSequence t("GGGGACGTACGGGGG");
    auto r = localAlign(q, t, kSr);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.score, 2 * 7); // "ACGTACG"
}

TEST(LocalAlign, EmptyOnAllMismatch)
{
    DnaSequence q("AAAA");
    DnaSequence t("CCCC");
    auto r = localAlign(q, t, kSr);
    // Best local score of all-mismatch sequences is a single... no
    // positive-scoring cell exists, score 0.
    EXPECT_LE(r.score, 2);
}

/** Property sweep: DP score must equal the analytic score of its CIGAR. */
class AffineSelfConsistency : public ::testing::TestWithParam<int>
{
};

TEST_P(AffineSelfConsistency, ScoreMatchesCigarRescore)
{
    util::Pcg32 rng(GetParam());
    std::string s;
    int len = 60 + static_cast<int>(rng.below(80));
    for (int i = 0; i < len; ++i)
        s.push_back(genomics::baseToChar(rng.below(4)));
    // Mutate a copy with a few random edits.
    std::string t = s;
    for (int e = 0; e < 3; ++e) {
        u32 pos = rng.below(static_cast<u32>(t.size() - 1));
        switch (rng.below(3)) {
          case 0:
            t[pos] = genomics::baseToChar(rng.below(4));
            break;
          case 1:
            t.insert(t.begin() + pos, genomics::baseToChar(rng.below(4)));
            break;
          default:
            t.erase(t.begin() + pos);
            break;
        }
    }
    DnaSequence q(s), target(t);
    auto r = globalAlign(q, target, kSr);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.cigar.querySpan(), q.size());
    EXPECT_EQ(r.cigar.refSpan(), target.size());
    EXPECT_EQ(kSr.scoreAlignment(q, target, r.cigar), r.score);
}

INSTANTIATE_TEST_SUITE_P(RandomEdits, AffineSelfConsistency,
                         ::testing::Range(1, 25));

} // namespace
