/**
 * @file
 * Shared test doubles for the light-align admission gate.
 */

#ifndef GPX_TESTS_TEST_GATES_HH
#define GPX_TESTS_TEST_GATES_HH

#include "genpair/light_align.hh"

namespace gpx {
namespace testing {

/**
 * Deterministic light-align gate: a pure function of the candidate
 * position (rejects odd positions), so serial and parallel runs must
 * agree on every counter it touches regardless of which worker maps
 * which pair.
 */
class OddPositionGate final : public genpair::LightAlignGate
{
  public:
    bool
    admit(const genomics::DnaSequence &, GlobalPos candidate) override
    {
        return candidate % 2 == 0;
    }
};

} // namespace testing
} // namespace gpx

#endif // GPX_TESTS_TEST_GATES_HH
