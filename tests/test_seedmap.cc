/**
 * @file
 * Unit tests for SeedMap construction and query, and for the partitioned
 * seeder.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "genpair/seeder.hh"
#include "genpair/seedmap.hh"
#include "simdata/genome_generator.hh"
#include "util/rng.hh"

namespace {

using namespace gpx;
using genomics::DnaSequence;
using genomics::Reference;
using genpair::PartitionedSeeder;
using genpair::SeedMap;
using genpair::SeedMapParams;

Reference
testRef(u64 len = 100000, u64 seed = 5)
{
    simdata::GenomeParams p;
    p.length = len;
    p.chromosomes = 2;
    p.seed = seed;
    return simdata::generateGenome(p);
}

SeedMapParams
smallParams()
{
    SeedMapParams p;
    p.seedLen = 50;
    p.tableBits = 18;
    p.filterThreshold = 500;
    return p;
}

TEST(SeedMap, EverySeedPositionRetrievable)
{
    Reference ref = testRef(60000);
    SeedMap map(ref, smallParams());
    // Every genome position's seed must be present in its hash bucket.
    const DnaSequence &chrom = ref.chromosome(0);
    for (u64 p = 0; p + 50 <= chrom.size(); p += 487) {
        u32 h = map.hashSeed(chrom.sub(p, 50));
        auto span = map.lookup(h);
        GlobalPos global = ref.toGlobal(0, p);
        bool found = std::find(span.begin(), span.end(),
                               static_cast<u32>(global)) != span.end();
        EXPECT_TRUE(found) << "position " << p;
    }
}

TEST(SeedMap, LocationsSortedWithinBucket)
{
    Reference ref = testRef(80000);
    SeedMap map(ref, smallParams());
    const DnaSequence &chrom = ref.chromosome(0);
    for (u64 p = 0; p + 50 <= chrom.size(); p += 997) {
        auto span = map.lookup(map.hashSeed(chrom.sub(p, 50)));
        EXPECT_TRUE(std::is_sorted(span.begin(), span.end()));
    }
}

TEST(SeedMap, StatsAccounting)
{
    Reference ref = testRef(50000);
    SeedMap map(ref, smallParams());
    const auto &st = map.stats();
    // Total seeds: every position of both chromosomes minus tails.
    u64 expect = 0;
    for (u32 c = 0; c < ref.numChromosomes(); ++c)
        expect += ref.chromosomeLength(c) - 49;
    EXPECT_EQ(st.totalSeeds, expect);
    EXPECT_EQ(st.storedLocations + st.filteredLocations, st.totalSeeds);
    EXPECT_GT(st.avgLocationsPerSeed, 0.9);
}

TEST(SeedMap, FilterThresholdDropsHeavySeeds)
{
    // Deterministic heavy-tail genome: a 100 bp unit repeated 60 times
    // with random spacers. Every interior seed of the unit occurs 60
    // times, well above the threshold of 30.
    util::Pcg32 rng(77);
    auto randomStretch = [&](u64 n) {
        std::string s;
        for (u64 i = 0; i < n; ++i)
            s.push_back(genomics::baseToChar(rng.below(4)));
        return s;
    };
    std::string unit = randomStretch(100);
    std::string genome;
    for (int copy = 0; copy < 60; ++copy) {
        genome += unit;
        genome += randomStretch(300);
    }
    Reference ref;
    ref.addChromosome("chr1", DnaSequence(genome));

    SeedMapParams unfiltered = smallParams();
    unfiltered.filterThreshold = 0;
    SeedMap mapAll(ref, unfiltered);

    SeedMapParams filtered = smallParams();
    filtered.filterThreshold = 30;
    SeedMap mapFiltered(ref, filtered);

    EXPECT_EQ(mapAll.stats().filteredSeeds, 0u);
    EXPECT_GT(mapFiltered.stats().filteredSeeds, 0u);
    EXPECT_LT(mapFiltered.stats().storedLocations,
              mapAll.stats().storedLocations);
    // The repeated unit's seeds are gone from the filtered index but
    // present (60 deep) in the unfiltered one.
    u32 h = mapAll.hashSeed(DnaSequence(unit.substr(0, 50)));
    EXPECT_EQ(mapAll.lookup(h).size(), 60u);
    EXPECT_EQ(mapFiltered.lookup(h).size(), 0u);
}

TEST(SeedMap, TableBytesReported)
{
    Reference ref = testRef(50000);
    SeedMap map(ref, smallParams());
    EXPECT_EQ(map.seedTableBytes(), ((u64{1} << 18) + 1) * 4);
    EXPECT_EQ(map.locationTableBytes(), map.stats().storedLocations * 4);
}

TEST(SeedMap, AutoTableBits)
{
    Reference ref = testRef(50000);
    SeedMapParams p = smallParams();
    p.tableBits = 0;
    SeedMap map(ref, p);
    EXPECT_GE(map.tableBits(), 16u);
    EXPECT_LE(map.tableBits(), 30u);
}

TEST(SeedMap, ParallelBuildBitIdenticalToSerial)
{
    Reference ref = testRef(120000, 11);
    SeedMapParams p = smallParams();
    SeedMap serial(ref, p);
    for (u32 threads : { 1u, 2u, 3u, 8u }) {
        SeedMap parallel = SeedMap::build(ref, p, threads);
        EXPECT_EQ(parallel.rawSeedTable(), serial.rawSeedTable())
            << threads << " threads";
        EXPECT_EQ(parallel.rawLocationTable(), serial.rawLocationTable())
            << threads << " threads";
        EXPECT_EQ(parallel.stats().totalSeeds, serial.stats().totalSeeds);
        EXPECT_EQ(parallel.stats().storedLocations,
                  serial.stats().storedLocations);
        EXPECT_EQ(parallel.stats().distinctHashes,
                  serial.stats().distinctHashes);
        EXPECT_EQ(parallel.stats().filteredSeeds,
                  serial.stats().filteredSeeds);
        EXPECT_EQ(parallel.stats().filteredLocations,
                  serial.stats().filteredLocations);
        EXPECT_DOUBLE_EQ(parallel.stats().queryWeightedLocations,
                         serial.stats().queryWeightedLocations);
    }
}

TEST(SeedMap, ParallelBuildRespectsFilterThreshold)
{
    // Heavy-tail genome as in FilterThresholdDropsHeavySeeds, built in
    // parallel: the filter must drop the same buckets.
    util::Pcg32 rng(77);
    auto randomStretch = [&](u64 n) {
        std::string s;
        for (u64 i = 0; i < n; ++i)
            s.push_back(genomics::baseToChar(rng.below(4)));
        return s;
    };
    std::string unit = randomStretch(100);
    std::string genome;
    for (int copy = 0; copy < 60; ++copy) {
        genome += unit;
        genome += randomStretch(300);
    }
    Reference ref;
    ref.addChromosome("chr1", DnaSequence(genome));

    SeedMapParams filtered = smallParams();
    filtered.filterThreshold = 30;
    SeedMap serial(ref, filtered);
    SeedMap parallel = SeedMap::build(ref, filtered, 4);
    EXPECT_EQ(parallel.rawSeedTable(), serial.rawSeedTable());
    EXPECT_EQ(parallel.rawLocationTable(), serial.rawLocationTable());
    EXPECT_GT(parallel.stats().filteredSeeds, 0u);
}

TEST(SeedMapView, ViewLookupsMatchOwningMap)
{
    Reference ref = testRef(60000);
    SeedMap map(ref, smallParams());
    genpair::SeedMapView view = map.view();
    EXPECT_EQ(view.tableBits(), map.tableBits());
    EXPECT_EQ(view.shardCount(), 1u);
    EXPECT_EQ(view.seedTableBytes(), map.seedTableBytes());
    EXPECT_EQ(view.locationTableBytes(), map.locationTableBytes());
    const DnaSequence &chrom = ref.chromosome(0);
    for (u64 p = 0; p + 50 <= chrom.size(); p += 313) {
        u32 h = map.hashSeed(chrom.sub(p, 50));
        auto a = map.lookup(h);
        auto b = view.lookup(h);
        ASSERT_EQ(a.size(), b.size()) << "position " << p;
        // Zero-copy: the view serves the owning map's own storage.
        EXPECT_EQ(a.data(), b.data());
    }
}

TEST(Seeder, ExtractsFirstMiddleLast)
{
    Reference ref = testRef(50000);
    SeedMap map(ref, smallParams());
    PartitionedSeeder seeder(map);
    DnaSequence read = ref.chromosome(0).sub(1000, 150);
    auto seeds = seeder.extract(read);
    EXPECT_EQ(seeds[0].offsetInRead, 0u);
    EXPECT_EQ(seeds[1].offsetInRead, 50u);
    EXPECT_EQ(seeds[2].offsetInRead, 100u);
    // Each seed hash must retrieve the true genome position.
    for (const auto &s : seeds) {
        auto span = map.lookup(s.hash);
        u32 want = static_cast<u32>(1000 + s.offsetInRead);
        EXPECT_NE(std::find(span.begin(), span.end(), want), span.end());
    }
}

TEST(Seeder, NonMultipleLengthRead)
{
    Reference ref = testRef(50000);
    SeedMap map(ref, smallParams());
    PartitionedSeeder seeder(map);
    DnaSequence read = ref.chromosome(0).sub(2000, 130);
    auto seeds = seeder.extract(read);
    EXPECT_EQ(seeds[0].offsetInRead, 0u);
    EXPECT_EQ(seeds[1].offsetInRead, 40u);
    EXPECT_EQ(seeds[2].offsetInRead, 80u);
}

TEST(Seeder, HashMatchesSeedMapHash)
{
    Reference ref = testRef(50000);
    SeedMap map(ref, smallParams());
    PartitionedSeeder seeder(map);
    DnaSequence read = ref.chromosome(0).sub(3000, 150);
    auto seeds = seeder.extract(read);
    EXPECT_EQ(seeds[0].hash, map.hashSeed(read.sub(0, 50)));
    EXPECT_EQ(seeds[2].hash, map.hashSeed(read.sub(100, 50)));
}

} // namespace
