/**
 * @file
 * Unit tests for Reference coordinates and FASTA/FASTQ serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "genomics/fasta.hh"
#include "genomics/reference.hh"

namespace {

using namespace gpx;
using genomics::DnaSequence;
using genomics::Reference;

Reference
makeRef()
{
    Reference ref;
    ref.addChromosome("chr1", DnaSequence("ACGTACGTAC"));
    ref.addChromosome("chr2", DnaSequence("TTTTGGGG"));
    return ref;
}

TEST(Reference, TotalLengthSumsChromosomes)
{
    Reference ref = makeRef();
    EXPECT_EQ(ref.totalLength(), 18u);
    EXPECT_EQ(ref.numChromosomes(), 2u);
}

TEST(Reference, GlobalToChromRoundTrip)
{
    Reference ref = makeRef();
    for (GlobalPos p = 0; p < ref.totalLength(); ++p) {
        genomics::ChromPos cp = ref.toChromPos(p);
        EXPECT_EQ(ref.toGlobal(cp.chrom, cp.offset), p);
    }
}

TEST(Reference, ChromosomeBoundaries)
{
    Reference ref = makeRef();
    EXPECT_EQ(ref.toChromPos(9).chrom, 0u);
    EXPECT_EQ(ref.toChromPos(10).chrom, 1u);
    EXPECT_EQ(ref.toChromPos(10).offset, 0u);
    EXPECT_EQ(ref.chromosomeStart(1), 10u);
}

TEST(Reference, BaseAtCrossesChromosomes)
{
    Reference ref = makeRef();
    EXPECT_EQ(ref.baseAt(0), genomics::BaseA);
    EXPECT_EQ(ref.baseAt(10), genomics::BaseT);
    EXPECT_EQ(ref.baseAt(14), genomics::BaseG);
}

TEST(Reference, WindowClampsAtChromosomeEnd)
{
    Reference ref = makeRef();
    DnaSequence w = ref.window(8, 10);
    EXPECT_EQ(w.toString(), "AC"); // truncated at chr1's end
}

TEST(Reference, WindowValidChecksBoundary)
{
    Reference ref = makeRef();
    EXPECT_TRUE(ref.windowValid(0, 10));
    EXPECT_FALSE(ref.windowValid(5, 10)); // would straddle chr1/chr2
    EXPECT_TRUE(ref.windowValid(10, 8));
    EXPECT_FALSE(ref.windowValid(10, 9));
    EXPECT_FALSE(ref.windowValid(100, 1));
}

TEST(Fasta, RoundTrip)
{
    Reference ref = makeRef();
    std::stringstream ss;
    genomics::writeFasta(ss, ref, 4);
    Reference back = genomics::readFasta(ss);
    ASSERT_EQ(back.numChromosomes(), 2u);
    EXPECT_EQ(back.name(0), "chr1");
    EXPECT_EQ(back.chromosome(0).toString(), "ACGTACGTAC");
    EXPECT_EQ(back.chromosome(1).toString(), "TTTTGGGG");
}

TEST(Fastq, RoundTrip)
{
    std::vector<genomics::Read> reads(2);
    reads[0].name = "r1";
    reads[0].seq = DnaSequence("ACGT");
    reads[1].name = "r2";
    reads[1].seq = DnaSequence("GGTT");
    std::stringstream ss;
    genomics::writeFastq(ss, reads);
    auto back = genomics::readFastq(ss);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].name, "r1");
    EXPECT_EQ(back[1].seq.toString(), "GGTT");
}

} // namespace
