/**
 * @file
 * StreamingMapper tests: bit-identical results to the batch driver
 * across chunk sizes, stats aggregation, stream-mismatch failure, and
 * the incremental FastqReader.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "genomics/fasta.hh"
#include "genpair/streaming.hh"
#include "simdata/datasets.hh"
#include "test_gates.hh"
#include "util/gzip_stream.hh"

namespace {

using namespace gpx;

class StreamingTest : public ::testing::Test
{
  protected:
    StreamingTest()
    {
        dataset_ = simdata::buildDataset(
            simdata::datasetConfig(1, 400000, 600));
        map_ = std::make_unique<genpair::SeedMap>(
            *dataset_.reference, genpair::SeedMapParams{});
        // Serialize the pairs to FASTQ text the way a user would feed
        // them back in.
        std::vector<genomics::Read> r1, r2;
        for (const auto &p : dataset_.pairs) {
            r1.push_back(p.first);
            r2.push_back(p.second);
        }
        std::ostringstream o1, o2;
        genomics::writeFastq(o1, r1);
        genomics::writeFastq(o2, r2);
        fq1_ = o1.str();
        fq2_ = o2.str();
    }

    /** SAM text of a streaming run over the given FASTQ bytes. */
    std::string
    streamedSamOver(const std::string &t1, const std::string &t2,
                    u64 chunk_pairs, genpair::StreamingResult *out,
                    u32 threads, u32 io_threads)
    {
        std::istringstream i1(t1), i2(t2);
        std::ostringstream sam;
        genomics::SamWriter writer(sam, *dataset_.reference);
        writer.writeHeader();
        genpair::DriverConfig config;
        config.threads = threads;
        genpair::StreamingMapper mapper(*dataset_.reference, *map_,
                                        config, chunk_pairs, io_threads);
        auto result = mapper.run(i1, i2, writer);
        if (out)
            *out = result;
        return sam.str();
    }

    /** SAM text of a streaming run with the given chunk size. */
    std::string
    streamedSam(u64 chunk_pairs, genpair::StreamingResult *out = nullptr,
                u32 threads = 2, u32 io_threads = 1)
    {
        return streamedSamOver(fq1_, fq2_, chunk_pairs, out, threads,
                               io_threads);
    }

    struct ReferenceRun
    {
        std::string sam;
        genpair::StreamingResult result;
    };

    /**
     * Single-chunk reference run, computed once per suite — the
     * dataset is deterministic, so every fixture instance produces the
     * same bytes.
     */
    const ReferenceRun &
    referenceRun()
    {
        static const ReferenceRun ref = [this] {
            ReferenceRun r;
            r.sam = streamedSam(100000, &r.result);
            return r;
        }();
        return ref;
    }

    const std::string &referenceSam() { return referenceRun().sam; }

    simdata::Dataset dataset_;
    std::unique_ptr<genpair::SeedMap> map_;
    std::string fq1_, fq2_;
};

TEST_F(StreamingTest, ChunkSizeDoesNotChangeOutput)
{
    genpair::StreamingResult tiny;
    std::string samTiny = streamedSam(7, &tiny);
    const auto &large = referenceRun();
    EXPECT_EQ(samTiny, large.sam);
    EXPECT_EQ(tiny.pairs, large.result.pairs);
    EXPECT_EQ(tiny.pairs, dataset_.pairs.size());
    EXPECT_GT(tiny.chunks, large.result.chunks);
    EXPECT_EQ(large.result.chunks, 1u);
}

TEST_F(StreamingTest, ChunkSizeOneMapsOnePairPerChunk)
{
    genpair::StreamingResult one;
    std::string samOne = streamedSam(1, &one);
    EXPECT_EQ(samOne, referenceSam());
    EXPECT_EQ(one.pairs, dataset_.pairs.size());
    EXPECT_EQ(one.chunks, one.pairs);
}

TEST_F(StreamingTest, LastPartialChunkIsMappedAndCounted)
{
    // A chunk size that does not divide the pair count leaves a final
    // partial chunk; it must still be mapped and counted as a chunk.
    const u64 n = dataset_.pairs.size();
    const u64 chunkPairs = n - 1;
    ASSERT_GE(n, 3u) << "n-1 must not divide n";
    genpair::StreamingResult r;
    std::string sam = streamedSam(chunkPairs, &r);
    EXPECT_EQ(r.pairs, n);
    EXPECT_EQ(r.chunks, 2u);
    EXPECT_EQ(sam, referenceSam());
}

TEST_F(StreamingTest, ExactMultipleChunkSizeHasNoEmptyTrailingChunk)
{
    const u64 n = dataset_.pairs.size();
    ASSERT_EQ(n % 2, 0u) << "test assumes an even pair count";
    genpair::StreamingResult r;
    streamedSam(n / 2, &r);
    EXPECT_EQ(r.pairs, n);
    EXPECT_EQ(r.chunks, 2u);
}

TEST_F(StreamingTest, ZeroChunkSizeIsClampedToOne)
{
    genpair::StreamingResult r;
    std::string sam = streamedSam(0, &r);
    EXPECT_EQ(r.pairs, dataset_.pairs.size());
    EXPECT_EQ(r.chunks, r.pairs);
    EXPECT_EQ(sam, referenceSam());
}

TEST_F(StreamingTest, ThreadCountDoesNotChangeOutput)
{
    // Bit-identical SAM across --threads 1/2/8: the pool's atomic
    // block cursor changes which worker maps which pair, never what
    // lands at the pair's output index.
    genpair::StreamingResult r1, r2, r8;
    std::string sam1 = streamedSam(64, &r1, 1);
    std::string sam2 = streamedSam(64, &r2, 2);
    std::string sam8 = streamedSam(64, &r8, 8);
    EXPECT_EQ(sam1, sam2);
    EXPECT_EQ(sam1, sam8);
    EXPECT_EQ(r1.stats.lightAligned, r8.stats.lightAligned);
    EXPECT_EQ(r1.stats.unmapped, r8.stats.unmapped);
}

TEST_F(StreamingTest, ThreadAndChunkSweepIsDeterministic)
{
    // Cross sweep under the persistent pool: every (threads, chunk)
    // combination must produce the single-chunk reference bytes.
    for (u32 threads : { 1u, 2u, 8u }) {
        for (u64 chunk : { u64{ 3 }, u64{ 100 } }) {
            std::string sam = streamedSam(chunk, nullptr, threads);
            EXPECT_EQ(sam, referenceSam())
                << "threads=" << threads << " chunk=" << chunk;
        }
    }
}

TEST_F(StreamingTest, IoThreadSweepIsDeterministic)
{
    // The tentpole contract of the async spine: parser fan-out and the
    // reorder buffer must never change a byte of output, at any
    // (io_threads, worker threads, chunk) combination.
    for (u32 io : { 1u, 2u, 4u }) {
        for (u64 chunk : { u64{ 3 }, u64{ 100 } }) {
            genpair::StreamingResult r;
            std::string sam = streamedSam(chunk, &r, 2, io);
            EXPECT_EQ(sam, referenceSam())
                << "io_threads=" << io << " chunk=" << chunk;
            EXPECT_EQ(r.pairs, dataset_.pairs.size());
        }
    }
}

TEST_F(StreamingTest, ZeroIoThreadsIsClampedToOne)
{
    genpair::StreamingResult r;
    std::string sam = streamedSam(64, &r, 2, 0);
    EXPECT_EQ(sam, referenceSam());
    EXPECT_EQ(r.pairs, dataset_.pairs.size());
}

TEST_F(StreamingTest, StallCountersAreReportedAndSane)
{
    // Forcing one-pair chunks through many parsers makes the mapping
    // stage block on ingest or emission at least once; either way the
    // counters must come back finite and non-negative, and a fresh run
    // must not inherit a previous run's stall time.
    genpair::StreamingResult r;
    streamedSam(1, &r, 2, 4);
    EXPECT_GE(r.stats.readerStallSeconds, 0.0);
    EXPECT_GE(r.stats.writerStallSeconds, 0.0);
    EXPECT_LT(r.stats.readerStallSeconds, 3600.0);
    EXPECT_LT(r.stats.writerStallSeconds, 3600.0);

    std::ostringstream js;
    r.stats.writeJson(js);
    EXPECT_NE(js.str().find("\"reader_stall_seconds\""),
              std::string::npos);
    EXPECT_NE(js.str().find("\"writer_stall_seconds\""),
              std::string::npos);
}

TEST_F(StreamingTest, GzipInputMatchesPlainBitForBit)
{
    if (!util::gzipSupported())
        GTEST_SKIP() << "built without zlib";
    const std::string gz1 = util::gzipCompress(fq1_);
    const std::string gz2 = util::gzipCompress(fq2_);
    ASSERT_LT(gz1.size(), fq1_.size());
    genpair::StreamingResult r;
    std::string sam = streamedSamOver(gz1, gz2, 64, &r, 2, 2);
    EXPECT_EQ(sam, referenceSam());
    EXPECT_EQ(r.pairs, dataset_.pairs.size());
}

TEST_F(StreamingTest, MixedGzipAndPlainStreamsMatch)
{
    // Sniffing is per-stream: a gzip R1 against a plain R2 must work
    // and produce the same bytes.
    if (!util::gzipSupported())
        GTEST_SKIP() << "built without zlib";
    std::string sam = streamedSamOver(util::gzipCompress(fq1_), fq2_,
                                      64, nullptr, 2, 2);
    EXPECT_EQ(sam, referenceSam());
}

TEST_F(StreamingTest, GateRejectionsSurviveChunkAggregation)
{
    // The seed batch driver dropped gateRejected when merging worker
    // stats, so streaming runs always reported zero. With a rejecting
    // gate installed, the counter must be nonzero and independent of
    // chunking and thread count.
    auto run = [&](u64 chunk_pairs, u32 threads) {
        std::istringstream i1(fq1_), i2(fq2_);
        std::ostringstream sam;
        genomics::SamWriter writer(sam, *dataset_.reference);
        writer.writeHeader();
        genpair::DriverConfig config;
        config.threads = threads;
        config.gateFactory = [] {
            return std::make_unique<gpx::testing::OddPositionGate>();
        };
        genpair::StreamingMapper mapper(*dataset_.reference, *map_,
                                        config, chunk_pairs);
        return mapper.run(i1, i2, writer).stats.gateRejected;
    };
    const u64 serial = run(1000000, 1);
    EXPECT_GT(serial, 0u);
    EXPECT_EQ(run(37, 4), serial);
    EXPECT_EQ(run(7, 8), serial);
}

TEST_F(StreamingTest, MatchesBatchDriver)
{
    genpair::StreamingResult streamed;
    std::string samStreamed = streamedSam(64, &streamed);

    // Batch run over the same reads, same SAM writer settings. The
    // FASTQ round trip strips truth metadata, so feed the batch driver
    // the re-parsed reads rather than the originals.
    std::istringstream i1(fq1_), i2(fq2_);
    auto r1 = genomics::readFastq(i1);
    auto r2 = genomics::readFastq(i2);
    std::vector<genomics::ReadPair> pairs(r1.size());
    for (std::size_t i = 0; i < r1.size(); ++i)
        pairs[i] = { r1[i], r2[i] };
    genpair::DriverConfig config;
    config.threads = 2;
    genpair::ParallelMapper batch(*dataset_.reference, *map_, config);
    auto batchResult = batch.mapAll(pairs);

    std::ostringstream sam;
    genomics::SamWriter writer(sam, *dataset_.reference);
    writer.writeHeader();
    for (std::size_t i = 0; i < pairs.size(); ++i)
        writer.writePair(pairs[i], batchResult.mappings[i]);

    EXPECT_EQ(samStreamed, sam.str());
    EXPECT_EQ(streamed.stats.pairsTotal, batchResult.stats.pairsTotal);
    EXPECT_EQ(streamed.stats.lightAligned,
              batchResult.stats.lightAligned);
    EXPECT_EQ(streamed.stats.unmapped, batchResult.stats.unmapped);
}

TEST_F(StreamingTest, StatsAccumulateAcrossChunks)
{
    genpair::StreamingResult r;
    streamedSam(50, &r);
    const auto &st = r.stats;
    EXPECT_EQ(st.pairsTotal, dataset_.pairs.size());
    // Routing classes partition the input.
    EXPECT_EQ(st.lightAligned + st.dpAligned + st.fullDpMapped +
                  st.unmapped,
              st.pairsTotal);
    EXPECT_GT(st.query.seedLookups, 0u);
}

TEST_F(StreamingTest, EmptyStreamsYieldHeaderOnlySam)
{
    std::istringstream i1(""), i2("");
    std::ostringstream sam;
    genomics::SamWriter writer(sam, *dataset_.reference);
    writer.writeHeader();
    genpair::StreamingMapper mapper(*dataset_.reference, *map_,
                                    genpair::DriverConfig{});
    auto result = mapper.run(i1, i2, writer);
    EXPECT_EQ(result.pairs, 0u);
    EXPECT_EQ(result.chunks, 0u);
    EXPECT_EQ(sam.str().find("sim"), std::string::npos);
}

TEST_F(StreamingTest, MismatchedStreamLengthsFatal)
{
    EXPECT_DEATH(
        {
            std::istringstream i1(fq1_);
            std::istringstream i2("@only\nACGT\n+\nIIII\n");
            std::ostringstream sam;
            genomics::SamWriter writer(sam, *dataset_.reference);
            genpair::StreamingMapper mapper(*dataset_.reference, *map_,
                                            genpair::DriverConfig{});
            mapper.run(i1, i2, writer);
        },
        "FASTQ streams disagree");
}

TEST_F(StreamingTest, MismatchFatalNamesTheStreamThatEndedEarly)
{
    // R2 runs out after one record; the fatal must say so (and not
    // just that the counts differ) so users know which file to fix.
    EXPECT_DEATH(
        {
            std::istringstream i1(fq1_);
            std::istringstream i2("@only\nACGT\n+\nIIII\n");
            std::ostringstream sam;
            genomics::SamWriter writer(sam, *dataset_.reference);
            genpair::StreamingMapper mapper(*dataset_.reference, *map_,
                                            genpair::DriverConfig{});
            mapper.run(i1, i2, writer);
        },
        "R2 ended early after 1 records");
}

TEST(FastqReader, IncrementalMatchesBatch)
{
    std::string text = "@a x\nACGT\n+\nIIII\n@b\nTTAA\n+\nIIII\n";
    std::istringstream batchIn(text);
    auto batch = genomics::readFastq(batchIn);

    std::istringstream incIn(text);
    genomics::FastqReader reader(incIn);
    genomics::Read r;
    std::vector<genomics::Read> inc;
    while (reader.next(r))
        inc.push_back(r);

    ASSERT_EQ(inc.size(), batch.size());
    for (std::size_t i = 0; i < inc.size(); ++i) {
        EXPECT_EQ(inc[i].name, batch[i].name);
        EXPECT_TRUE(inc[i].seq == batch[i].seq);
    }
    EXPECT_EQ(reader.recordsRead(), 2u);
}

} // namespace
