/**
 * @file
 * Failure-injection and format-robustness tests for the FASTA/FASTQ
 * readers and the CLI flag parser: a production mapper meets malformed
 * and foreign-formatted files long before it meets clean ones.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "../tools/cli.hh"
#include "genomics/fasta.hh"
#include "util/byte_stream.hh"
#include "util/gzip_stream.hh"

namespace {

using namespace gpx;
using genomics::DnaSequence;
using genomics::Reference;

// ---------------------------------------------------------------------
// FASTA robustness
// ---------------------------------------------------------------------

TEST(FastaRobust, EmptyStreamYieldsEmptyReference)
{
    std::istringstream in("");
    Reference ref = genomics::readFasta(in);
    EXPECT_EQ(ref.totalLength(), 0u);
    EXPECT_EQ(ref.numChromosomes(), 0u);
}

TEST(FastaRobust, CrlfLineEndingsDoNotCorruptSequence)
{
    // A CRLF file must decode to the same bases as its LF twin; a naive
    // reader turns each '\r' into a spurious 'A'.
    std::istringstream crlf(">chr1\r\nACGTACGT\r\nTTGG\r\n");
    Reference ref = genomics::readFasta(crlf);
    ASSERT_EQ(ref.numChromosomes(), 1u);
    EXPECT_EQ(ref.chromosome(0).toString(), "ACGTACGTTTGG");
}

TEST(FastaRobust, HeaderDescriptionStripped)
{
    std::istringstream in(">chr1 Homo sapiens chromosome 1\nACGT\n");
    Reference ref = genomics::readFasta(in);
    ASSERT_EQ(ref.numChromosomes(), 1u);
    EXPECT_EQ(ref.name(0), "chr1");
}

TEST(FastaRobust, BlankLinesSkipped)
{
    std::istringstream in("\n>chr1\n\nAC\nGT\n\n>chr2\nTTTT\n");
    Reference ref = genomics::readFasta(in);
    ASSERT_EQ(ref.numChromosomes(), 2u);
    EXPECT_EQ(ref.chromosome(0).toString(), "ACGT");
    EXPECT_EQ(ref.chromosome(1).toString(), "TTTT");
}

TEST(FastaRobust, MultiLineWrapJoined)
{
    std::string seq(500, 'C');
    std::ostringstream file;
    file << ">chr1\n";
    for (std::size_t i = 0; i < seq.size(); i += 60)
        file << seq.substr(i, 60) << '\n';
    std::istringstream in(file.str());
    Reference ref = genomics::readFasta(in);
    EXPECT_EQ(ref.chromosome(0).toString(), seq);
}

TEST(FastaRobust, AmbiguityCodesResolveToA)
{
    // The documented convention: any non-ACGT character maps to A.
    std::istringstream in(">chr1\nACGTNNRY\n");
    Reference ref = genomics::readFasta(in);
    EXPECT_EQ(ref.chromosome(0).toString(), "ACGTAAAA");
}

TEST(FastaRobust, AmbiguousBasesCountedInStats)
{
    std::istringstream in(">c1\nACGTNN\n>c2\nNRYA\nacgt\n");
    genomics::IngestStats stats;
    Reference ref = genomics::readFasta(in, &stats);
    EXPECT_EQ(ref.numChromosomes(), 2u);
    EXPECT_EQ(stats.ambiguousBases, 5u); // N N + N R Y

    std::istringstream clean(">c1\nACGT\n");
    genomics::IngestStats cleanStats;
    genomics::readFasta(clean, &cleanStats);
    EXPECT_EQ(cleanStats.ambiguousBases, 0u);
}

// ---------------------------------------------------------------------
// FASTQ robustness
// ---------------------------------------------------------------------

TEST(FastqRobust, CrlfRecordsDecodeCleanly)
{
    std::istringstream in("@r1\r\nACGT\r\n+\r\nIIII\r\n");
    auto reads = genomics::readFastq(in);
    ASSERT_EQ(reads.size(), 1u);
    EXPECT_EQ(reads[0].name, "r1");
    EXPECT_EQ(reads[0].seq.toString(), "ACGT");
}

TEST(FastqRobust, NameStopsAtWhitespace)
{
    std::istringstream in("@r1 1:N:0:ATCACG\nACGT\n+\nIIII\n");
    auto reads = genomics::readFastq(in);
    ASSERT_EQ(reads.size(), 1u);
    EXPECT_EQ(reads[0].name, "r1");
}

TEST(FastqRobust, ReaderCountsAmbiguousBases)
{
    std::istringstream in("@r1\nACGN\n+\nIIII\n@r2\nNNNN\n+\nIIII\n"
                          "@r3\nACGT\n+\nIIII\n");
    genomics::FastqReader reader(in);
    genomics::Read r;
    while (reader.next(r)) {
    }
    EXPECT_EQ(reader.recordsRead(), 3u);
    EXPECT_EQ(reader.ambiguousBases(), 5u);
    EXPECT_EQ(reader.stats().ambiguousBases, 5u);
}

TEST(FastqRobust, CleanInputReportsZeroAmbiguous)
{
    std::istringstream in("@r1\nACGT\n+\nIIII\n");
    genomics::FastqReader reader(in);
    genomics::Read r;
    while (reader.next(r)) {
    }
    EXPECT_EQ(reader.ambiguousBases(), 0u);
}

TEST(FastqRobust, MissingTrailingNewlineStillYieldsLastRecord)
{
    // EOF directly after the quality characters (no final '\n'): the
    // last record must parse whole, not vanish or go fatal.
    std::istringstream in("@r1\nACGT\n+\nIIII\n@r2\nTTGG\n+\nIIII");
    auto reads = genomics::readFastq(in);
    ASSERT_EQ(reads.size(), 2u);
    EXPECT_EQ(reads[1].name, "r2");
    EXPECT_EQ(reads[1].seq.toString(), "TTGG");
}

TEST(FastqRobust, CrlfWithMissingTrailingNewline)
{
    // CRLF line endings AND no terminator on the last line: the '\r'
    // on the final quality line must not corrupt anything.
    std::istringstream in("@r1\r\nACGT\r\n+\r\nIIII\r\n@r2\r\nTTGG\r\n"
                          "+\r\nIIII");
    auto reads = genomics::readFastq(in);
    ASSERT_EQ(reads.size(), 2u);
    EXPECT_EQ(reads[0].seq.toString(), "ACGT");
    EXPECT_EQ(reads[1].name, "r2");
    EXPECT_EQ(reads[1].seq.toString(), "TTGG");
}

TEST(FastqRobust, EmptyFinalRecordParsesAsZeroLengthRead)
{
    // A zero-length final record (empty sequence and quality) is valid
    // FASTQ; it must surface as an empty read, not crash or be lost.
    std::istringstream in("@r1\nACGT\n+\nIIII\n@empty\n\n+\n\n");
    auto reads = genomics::readFastq(in);
    ASSERT_EQ(reads.size(), 2u);
    EXPECT_EQ(reads[1].name, "empty");
    EXPECT_EQ(reads[1].seq.size(), 0u);
}

TEST(FastqRobust, CrlfEmptyFinalRecord)
{
    std::istringstream in("@r1\r\nACGT\r\n+\r\nIIII\r\n@empty\r\n\r\n"
                          "+\r\n\r\n");
    auto reads = genomics::readFastq(in);
    ASSERT_EQ(reads.size(), 2u);
    EXPECT_EQ(reads[1].name, "empty");
    EXPECT_EQ(reads[1].seq.size(), 0u);
}

TEST(FastqRobust, TrailingBlankLinesYieldNoExtraRecords)
{
    std::istringstream in("@r1\nACGT\n+\nIIII\n\n\n\r\n");
    auto reads = genomics::readFastq(in);
    ASSERT_EQ(reads.size(), 1u);
    EXPECT_EQ(reads[0].seq.toString(), "ACGT");
}

TEST(FastqRobust, StreamingReaderAgreesOnEdgeCaseInput)
{
    // The incremental reader (the streaming driver's parser) must see
    // exactly the same records as the batch helper on edge-case input.
    const std::string file =
        "@r1\r\nACGT\r\n+\r\nIIII\r\n@empty\n\n+\n\n@r3\nGGCC\n+\nIIII";
    std::istringstream a(file);
    auto batch = genomics::readFastq(a);
    std::istringstream b(file);
    genomics::FastqReader reader(b);
    genomics::Read r;
    std::size_t i = 0;
    while (reader.next(r)) {
        ASSERT_LT(i, batch.size());
        EXPECT_EQ(r.name, batch[i].name);
        EXPECT_EQ(r.seq.toString(), batch[i].seq.toString());
        ++i;
    }
    EXPECT_EQ(i, batch.size());
    EXPECT_EQ(reader.recordsRead(), 3u);
}

// ---------------------------------------------------------------------
// Recoverable parse path (the serve-mode discipline): tryNext() must
// report malformed input instead of exiting, so gpx_serve can reject
// one bad request without taking the daemon down.
// ---------------------------------------------------------------------

TEST(FastqTryNext, CleanStreamMatchesNext)
{
    std::istringstream in("@r1\nACGT\n+\nIIII\n@r2\nTTGG\n+\nIIII\n");
    genomics::FastqReader reader(in);
    genomics::Read r;
    std::string error;
    EXPECT_EQ(reader.tryNext(r, &error), genomics::FastqParse::kRecord);
    EXPECT_EQ(r.name, "r1");
    EXPECT_EQ(reader.tryNext(r, &error), genomics::FastqParse::kRecord);
    EXPECT_EQ(r.name, "r2");
    EXPECT_EQ(reader.tryNext(r, &error), genomics::FastqParse::kEof);
    EXPECT_TRUE(error.empty());
}

TEST(FastqTryNext, TruncatedRecordReportsErrorNotDeath)
{
    std::istringstream in("@r1\nACGT\n+\nIIII\n@r2\nACGT\n+\n");
    genomics::FastqReader reader(in);
    genomics::Read r;
    std::string error;
    EXPECT_EQ(reader.tryNext(r, &error), genomics::FastqParse::kRecord);
    EXPECT_EQ(reader.tryNext(r, &error), genomics::FastqParse::kError);
    EXPECT_NE(error.find("truncated FASTQ record"), std::string::npos)
        << error;
    EXPECT_NE(error.find("record 2"), std::string::npos) << error;
    EXPECT_NE(error.find("@r2"), std::string::npos) << error;
}

TEST(FastqTryNext, MalformedHeaderReportsErrorNotDeath)
{
    std::istringstream in("ACGT\nACGT\n+\nIIII\n");
    genomics::FastqReader reader(in);
    genomics::Read r;
    std::string error;
    EXPECT_EQ(reader.tryNext(r, &error), genomics::FastqParse::kError);
    EXPECT_NE(error.find("malformed FASTQ header"), std::string::npos)
        << error;
}

TEST(FastqTryNext, ErrorPoisonsReader)
{
    // After one kError the stream position inside the broken record is
    // meaningless; every further call must keep failing with the same
    // diagnostic rather than resynchronize on garbage.
    std::istringstream in("@r1\nACGT\n+\n");
    genomics::FastqReader reader(in);
    genomics::Read r;
    std::string first, second;
    EXPECT_EQ(reader.tryNext(r, &first), genomics::FastqParse::kError);
    EXPECT_EQ(reader.tryNext(r, &second), genomics::FastqParse::kError);
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty());
}

TEST(FastqTryNext, NullErrorPointerAccepted)
{
    std::istringstream in("garbage");
    genomics::FastqReader reader(in);
    genomics::Read r;
    EXPECT_EQ(reader.tryNext(r), genomics::FastqParse::kError);
}

TEST(FastqRobustDeath, TruncatedRecordIsFatal)
{
    EXPECT_DEATH(
        {
            std::istringstream in("@r1\nACGT\n+\n"); // missing quality
            genomics::readFastq(in);
        },
        "truncated FASTQ record");
}

TEST(FastqRobustDeath, TruncatedRecordReportsIndexAndHeader)
{
    // EOF mid-record must say which record broke, not just that the
    // stream ended: record 1 parsed fine, record 2 is cut short.
    EXPECT_DEATH(
        {
            std::istringstream in(
                "@r1\nACGT\n+\nIIII\n@r2\nACGT\n+\n");
            genomics::readFastq(in);
        },
        "EOF mid-record at record 2 \\(header '@r2'\\)");
}

TEST(FastqRobustDeath, MalformedHeaderIsFatal)
{
    EXPECT_DEATH(
        {
            std::istringstream in("ACGT\nACGT\n+\nIIII\n");
            genomics::readFastq(in);
        },
        "malformed FASTQ header");
}

// ---------------------------------------------------------------------
// Gzip ingest + record-base offsets (the splittable-reader contracts)
// ---------------------------------------------------------------------

TEST(FastqGzip, GzipStreamDecodesLikePlainText)
{
    if (!util::gzipSupported())
        GTEST_SKIP() << "built without zlib";
    const std::string text =
        "@a one\nACGT\n+\nIIII\n@b two\nTTAA\n+\nIIII\n";
    std::istringstream in(util::gzipCompress(text));
    genomics::FastqReader reader(in);
    genomics::Read r;
    std::vector<std::string> names;
    while (reader.next(r))
        names.push_back(r.name);
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
}

TEST(FastqGzip, MultiMemberGzipConcatenationDecodes)
{
    // `cat a.fq.gz b.fq.gz` is a valid gzip file; the inflater must
    // cross the member boundary instead of stopping at the first one.
    if (!util::gzipSupported())
        GTEST_SKIP() << "built without zlib";
    std::string joined = util::gzipCompress("@a\nACGT\n+\nIIII\n") +
                         util::gzipCompress("@b\nTTAA\n+\nIIII\n");
    std::istringstream in(joined);
    genomics::FastqReader reader(in);
    genomics::Read r;
    u64 count = 0;
    while (reader.next(r))
        ++count;
    EXPECT_EQ(count, 2u);
}

TEST(FastqGzip, CorruptGzipPayloadReportsError)
{
    if (!util::gzipSupported())
        GTEST_SKIP() << "built without zlib";
    std::string gz = util::gzipCompress("@a\nACGT\n+\nIIII\n");
    ASSERT_GT(gz.size(), 12u);
    // Valid gzip header, then a deflate block with the reserved type:
    // inflate must reject it before yielding any bytes to the parser.
    gz = gz.substr(0, 10) + std::string(4, '\xff');
    std::istringstream in(gz);
    genomics::FastqReader reader(in);
    genomics::Read r;
    std::string error;
    EXPECT_EQ(reader.tryNext(r, &error), genomics::FastqParse::kError);
    EXPECT_NE(error.find("gzip"), std::string::npos) << error;
}

TEST(FastqRecordBase, ErrorIndicesAreOffsetByRecordBase)
{
    // A chunk parser that owns records 100.. must report absolute
    // record numbers: the second record of this slice is record 102.
    util::StringSource slice("@r1\nACGT\n+\nIIII\n@r2\nACGT\n+\n");
    genomics::FastqReader reader(slice, 100);
    genomics::Read r;
    std::string error;
    EXPECT_EQ(reader.tryNext(r, &error), genomics::FastqParse::kRecord);
    EXPECT_EQ(reader.tryNext(r, &error), genomics::FastqParse::kError);
    EXPECT_NE(error.find("at record 102"), std::string::npos) << error;
}

TEST(FastqRecordBase, SharedAmbiguityWarningFiresOnce)
{
    // Concurrent slice readers share one warned-ambiguous latch so a
    // file full of N bases warns once, not once per parser thread.
    std::atomic<bool> warned{ false };
    util::StringSource s1("@a\nACGN\n+\nIIII\n");
    util::StringSource s2("@b\nNNNN\n+\nIIII\n");
    genomics::FastqReader r1(s1, 0, &warned);
    genomics::FastqReader r2(s2, 1, &warned);
    genomics::Read r;
    EXPECT_TRUE(r1.next(r));
    EXPECT_TRUE(warned.load());
    EXPECT_TRUE(r2.next(r));
    EXPECT_EQ(r1.ambiguousBases() + r2.ambiguousBases(), 5u);
}

// ---------------------------------------------------------------------
// CLI parser
// ---------------------------------------------------------------------

tools::Cli
parse(std::vector<std::string> args, const std::set<std::string> &vals,
      const std::set<std::string> &bools)
{
    std::vector<char *> argv;
    static std::vector<std::string> storage;
    storage = std::move(args);
    storage.insert(storage.begin(), "prog");
    argv.reserve(storage.size());
    for (auto &s : storage)
        argv.push_back(s.data());
    return tools::Cli(static_cast<int>(argv.size()), argv.data(), vals,
                      bools, "usage");
}

TEST(Cli, ValueAndBoolFlags)
{
    auto cli = parse({ "--ref", "x.fa", "--baseline" }, { "--ref" },
                     { "--baseline" });
    EXPECT_EQ(cli.str("--ref"), "x.fa");
    EXPECT_TRUE(cli.has("--baseline"));
    EXPECT_FALSE(cli.has("--out"));
}

TEST(Cli, NumericParsing)
{
    auto cli = parse({ "--threads", "8", "--rate", "0.25" },
                     { "--threads", "--rate" }, {});
    EXPECT_EQ(cli.num("--threads", 0), 8);
    EXPECT_DOUBLE_EQ(cli.real("--rate", 0.0), 0.25);
    EXPECT_EQ(cli.num("--missing", 42), 42);
    EXPECT_DOUBLE_EQ(cli.real("--missing", 1.5), 1.5);
}

TEST(CliDeath, UnknownFlagExits)
{
    EXPECT_EXIT(parse({ "--bogus" }, { "--ref" }, {}),
                ::testing::ExitedWithCode(2), "unknown flag: --bogus");
}

TEST(CliDeath, MissingValueExits)
{
    EXPECT_EXIT(parse({ "--ref" }, { "--ref" }, {}),
                ::testing::ExitedWithCode(2), "needs a value");
}

TEST(CliDeath, MissingRequiredExits)
{
    auto cli = parse({}, { "--ref" }, {});
    EXPECT_EXIT(cli.required("--ref"), ::testing::ExitedWithCode(2),
                "missing required flag: --ref");
}

TEST(CliDeath, NonNumericValueExits)
{
    auto cli = parse({ "--threads", "many" }, { "--threads" }, {});
    EXPECT_EXIT(cli.num("--threads", 0), ::testing::ExitedWithCode(2),
                "expects an integer");
}


TEST(CliDeath, HelpExitsZero)
{
    // Usage goes to stdout (which EXPECT_EXIT does not capture); the
    // contract under test is the clean exit before any flag validation.
    EXPECT_EXIT(parse({ "--help" }, { "--ref" }, {}),
                ::testing::ExitedWithCode(0), "");
}

} // namespace
