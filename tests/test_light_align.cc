/**
 * @file
 * Unit and property tests for Light Alignment: every paper Table 1 edit
 * class must be detected with the right score and CIGAR, and within its
 * edit bound the result must equal the DP optimum (paper §8 claim).
 */

#include <gtest/gtest.h>

#include "align/affine.hh"
#include "genomics/reference.hh"
#include "genpair/light_align.hh"
#include "util/rng.hh"

namespace {

using namespace gpx;
using genomics::DnaSequence;
using genomics::Reference;
using genpair::LightAligner;
using genpair::LightAlignParams;
using genpair::LightResult;

/** Random reference with one chromosome. */
Reference
randomRef(u64 len, u64 seed)
{
    util::Pcg32 rng(seed);
    std::string s;
    for (u64 i = 0; i < len; ++i)
        s.push_back(genomics::baseToChar(rng.below(4)));
    Reference ref;
    ref.addChromosome("chr1", DnaSequence(s));
    return ref;
}

struct Fixture
{
    Reference ref = randomRef(5000, 71);
    LightAlignParams params;
    LightAligner aligner{ ref, params };

    DnaSequence
    window(GlobalPos pos, u64 len) const
    {
        return ref.window(pos, len);
    }

    genomics::DnaView
    windowView(GlobalPos pos, u64 len) const
    {
        return ref.windowView(pos, len);
    }
};

TEST(LightAlign, ExactMatch)
{
    Fixture f;
    DnaSequence read = f.window(1000, 150);
    LightResult r = f.aligner.align(read, 1000);
    ASSERT_TRUE(r.aligned);
    EXPECT_EQ(r.score, 300);
    EXPECT_EQ(r.pos, 1000u);
    EXPECT_EQ(r.cigar.toString(), "150M");
}

TEST(LightAlign, OneMismatch)
{
    Fixture f;
    DnaSequence read = f.window(1000, 150);
    read.set(77, (read.at(77) + 1) & 3u);
    LightResult r = f.aligner.align(read, 1000);
    ASSERT_TRUE(r.aligned);
    EXPECT_EQ(r.score, 290);
    EXPECT_EQ(r.pos, 1000u);
}

TEST(LightAlign, TwoScatteredMismatches)
{
    Fixture f;
    DnaSequence read = f.window(1000, 150);
    read.set(20, (read.at(20) + 1) & 3u);
    read.set(130, (read.at(130) + 2) & 3u);
    LightResult r = f.aligner.align(read, 1000);
    ASSERT_TRUE(r.aligned);
    EXPECT_EQ(r.score, 280);
}

TEST(LightAlign, TooManyMismatchesRejected)
{
    Fixture f;
    DnaSequence read = f.window(1000, 150);
    for (u32 i = 10; i < 90; i += 13)
        read.set(i, (read.at(i) + 1) & 3u);
    LightResult r = f.aligner.align(read, 1000);
    EXPECT_FALSE(r.aligned);
}

TEST(LightAlign, SingleDeletion)
{
    Fixture f;
    // Read skips one reference base at read offset 60.
    DnaSequence read = f.window(1000, 60);
    read.append(f.windowView(1061, 90));
    ASSERT_EQ(read.size(), 150u);
    LightResult r = f.aligner.align(read, 1000);
    ASSERT_TRUE(r.aligned);
    EXPECT_EQ(r.score, 286); // 300 - gapCost(1)
    EXPECT_EQ(r.cigar.deletedBases(), 1u);
    EXPECT_EQ(r.pos, 1000u);
}

TEST(LightAlign, FiveConsecutiveDeletions)
{
    Fixture f;
    DnaSequence read = f.window(1000, 80);
    read.append(f.windowView(1085, 70));
    LightResult r = f.aligner.align(read, 1000);
    ASSERT_TRUE(r.aligned);
    EXPECT_EQ(r.score, 278); // paper Table 1
    EXPECT_EQ(r.cigar.deletedBases(), 5u);
}

TEST(LightAlign, SingleInsertion)
{
    Fixture f;
    DnaSequence read = f.window(1000, 75);
    read.push(genomics::BaseG); // may match ref by chance; score >= 284
    read.append(f.windowView(1075, 74));
    ASSERT_EQ(read.size(), 150u);
    LightResult r = f.aligner.align(read, 1000);
    ASSERT_TRUE(r.aligned);
    EXPECT_GE(r.score, 284);
}

TEST(LightAlign, TwoConsecutiveInsertions)
{
    Fixture f;
    DnaSequence ref_part1 = f.window(2000, 50);
    DnaSequence ref_part2 = f.window(2050, 98);
    DnaSequence read = ref_part1;
    // Insert two bases differing from the reference at the junction.
    u8 avoid = f.ref.baseAt(2050);
    read.push((avoid + 1) & 3u);
    read.push((avoid + 2) & 3u);
    read.append(ref_part2);
    ASSERT_EQ(read.size(), 150u);
    LightResult r = f.aligner.align(read, 2000);
    ASSERT_TRUE(r.aligned);
    EXPECT_GE(r.score, 280); // paper Table 1 value for 2 insertions
    EXPECT_EQ(r.pos, 2000u);
}

TEST(LightAlign, CandidateDisplacedByGap)
{
    // Seed from the read's tail: candidate start is displaced by the
    // deletion; the prefix then matches at a non-zero shift.
    Fixture f;
    DnaSequence read = f.window(1000, 60);
    read.append(f.windowView(1063, 90)); // 3-base deletion at offset 60
    // Candidate computed from a tail seed: loc - offset = 1003.
    LightResult r = f.aligner.align(read, 1003);
    ASSERT_TRUE(r.aligned);
    EXPECT_EQ(r.score, 300 - 18); // gapCost(3) = 18
    EXPECT_EQ(r.pos, 1000u);      // true start recovered
}

TEST(LightAlign, MixedEditsFallToDp)
{
    Fixture f;
    // One mismatch AND one deletion: two edit types; light alignment
    // must reject (per paper, this goes to DP).
    DnaSequence read = f.window(1000, 60);
    read.append(f.windowView(1061, 90));
    read.set(20, (read.at(20) + 1) & 3u);
    LightResult r = f.aligner.align(read, 1000);
    EXPECT_FALSE(r.aligned);
}

TEST(LightAlign, WindowAtChromosomeEdgeRejected)
{
    Fixture f;
    DnaSequence read = f.window(0, 150);
    // candidate 0 < maxShift: cannot build the shifted window.
    LightResult r = f.aligner.align(read, 0);
    EXPECT_FALSE(r.aligned);
}

TEST(LightAlign, HypothesisCountBounded)
{
    Fixture f;
    DnaSequence read = f.window(1000, 150);
    LightResult r = f.aligner.align(read, 1000);
    u32 e = f.params.maxShift;
    EXPECT_LE(r.hypothesesTried, (2 * e + 1) * (2 * e + 1) + (2 * e + 1));
}

/**
 * Property test (paper §8: "GenPairX always returns the optimal
 * alignment given an upper limit for the number of edits"): for reads
 * with a single edit type within the bound, the light-alignment score
 * must equal the DP fitting-alignment score.
 */
class LightVsDp : public ::testing::TestWithParam<int>
{
};

TEST_P(LightVsDp, ScoreMatchesDpOptimum)
{
    util::Pcg32 rng(GetParam() * 37 + 5);
    Reference ref = randomRef(4000, GetParam() * 13 + 1);
    LightAlignParams params;
    LightAligner aligner(ref, params);

    GlobalPos pos = 500 + rng.below(2000);
    u32 editClass = rng.below(3);
    DnaSequence read;
    if (editClass == 0) {
        // 1-2 scattered mismatches.
        read = ref.window(pos, 150);
        u32 n = 1 + rng.below(2);
        for (u32 i = 0; i < n; ++i) {
            u32 at = rng.below(150);
            read.set(at, (read.at(at) + 1 + rng.below(3)) & 3u);
        }
    } else if (editClass == 1) {
        // k consecutive deletions, k in 1..5.
        u32 k = 1 + rng.below(5);
        u32 split = 20 + rng.below(110);
        read = ref.window(pos, split);
        read.append(ref.windowView(pos + split + k, 150 - split));
    } else {
        // k consecutive insertions, k in 1..2.
        u32 k = 1 + rng.below(2);
        u32 split = 20 + rng.below(110);
        read = ref.window(pos, split);
        for (u32 i = 0; i < k; ++i)
            read.push(rng.below(4));
        read.append(ref.windowView(pos + split, 150 - split - k));
    }
    ASSERT_EQ(read.size(), 150u);

    LightResult light = aligner.align(read, pos);
    auto window = ref.window(pos - 10, 170);
    auto dp = align::fitAlign(read, window, params.scoring);
    ASSERT_TRUE(dp.valid);
    if (dp.score >= params.minScore) {
        ASSERT_TRUE(light.aligned)
            << "DP found score " << dp.score << " but light align failed";
        EXPECT_EQ(light.score, dp.score);
    }
}

INSTANTIATE_TEST_SUITE_P(SingleEditClasses, LightVsDp,
                         ::testing::Range(0, 40));

} // namespace
