/**
 * @file
 * Stage-graph equivalence tests: the batched SoA engine must be
 * bit-identical to per-pair execution for any batch partition, with
 * statistics equal field by field, on inputs that exercise every
 * Fig. 10 fallback exit. Also pins the scratch-reusing kernels
 * (light-align scratch, branchless banded DP) against their
 * allocating/reference counterparts.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "align/affine.hh"
#include "baseline/mm2lite.hh"
#include "genpair/pipeline.hh"
#include "genpair/stages.hh"
#include "simdata/genome_generator.hh"
#include "simdata/read_simulator.hh"
#include "util/rng.hh"

namespace {

using namespace gpx;

/** Random read of length n (not drawn from any reference). */
genomics::DnaSequence
randomSeq(util::Pcg32 &rng, std::size_t n)
{
    genomics::DnaSequence seq;
    for (std::size_t i = 0; i < n; ++i)
        seq.push(static_cast<u8>(rng.next() & 3));
    return seq;
}

/**
 * A pair set that takes every route: simulated proper pairs (light
 * fast path + light fallback), random junk (seed miss) and
 * far-apart segment pairs (PA-filter miss).
 */
class StageGraphTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        simdata::GenomeParams gp;
        gp.length = 150000;
        gp.chromosomes = 1;
        gp.seed = 77;
        ref_ = simdata::generateGenome(gp);
        // A sparse table (2^21 buckets for ~150k seeds) so the junk
        // reads below can actually miss every bucket — exit 1 needs
        // zero locations across all twelve seeds of a pair.
        genpair::SeedMapParams sp;
        sp.tableBits = 21;
        map_ = std::make_unique<genpair::SeedMap>(ref_, sp);
        mm2_ = std::make_unique<baseline::Mm2Lite>(
            ref_, baseline::Mm2LiteParams{});

        simdata::DiploidGenome donor(ref_, simdata::VariantParams{});
        simdata::ReadSimulator sim(donor, simdata::ReadSimParams{});
        pairs_ = sim.simulate(220);

        util::Pcg32 rng(1234);
        // Seed-miss pairs: reads unrelated to the reference.
        for (int i = 0; i < 12; ++i) {
            genomics::ReadPair junk;
            junk.first.name = "junk" + std::to_string(i);
            junk.first.seq = randomSeq(rng, 150);
            junk.second.name = junk.first.name;
            junk.second.seq = randomSeq(rng, 150);
            pairs_.push_back(std::move(junk));
        }
        // PA-miss pairs: both mates are real reference windows but far
        // apart, so candidates exist while no pair is within delta.
        for (int i = 0; i < 12; ++i) {
            u64 a = 1000 + static_cast<u64>(i) * 4000;
            u64 b = a + 60000;
            genomics::ReadPair far;
            far.first.name = "far" + std::to_string(i);
            far.first.seq =
                ref_.windowView(a, 150).materialize();
            far.second.name = far.first.name;
            far.second.seq =
                ref_.windowView(b, 150).materialize().revComp();
            pairs_.push_back(std::move(far));
        }
    }

    genpair::PipelineStats
    runBatched(u64 batch, std::vector<genomics::PairMapping> *out)
    {
        genpair::GenPairPipeline pipeline(ref_, *map_,
                                          genpair::GenPairParams{},
                                          mm2_.get());
        out->resize(pairs_.size());
        for (u64 begin = 0; begin < pairs_.size(); begin += batch) {
            u64 end = std::min<u64>(pairs_.size(), begin + batch);
            pipeline.mapBatch(pairs_.data() + begin, end - begin,
                              out->data() + begin);
        }
        return pipeline.stats();
    }

    static void
    expectStatsEqual(const genpair::PipelineStats &a,
                     const genpair::PipelineStats &b)
    {
        EXPECT_EQ(a.pairsTotal, b.pairsTotal);
        EXPECT_EQ(a.seedMissFallback, b.seedMissFallback);
        EXPECT_EQ(a.paFilterFallback, b.paFilterFallback);
        EXPECT_EQ(a.lightAlignFallback, b.lightAlignFallback);
        EXPECT_EQ(a.lightAligned, b.lightAligned);
        EXPECT_EQ(a.dpAligned, b.dpAligned);
        EXPECT_EQ(a.fullDpMapped, b.fullDpMapped);
        EXPECT_EQ(a.unmapped, b.unmapped);
        EXPECT_EQ(a.query.seedLookups, b.query.seedLookups);
        EXPECT_EQ(a.query.locationsFetched, b.query.locationsFetched);
        EXPECT_EQ(a.query.filterIterations, b.query.filterIterations);
        EXPECT_EQ(a.candidatePairs, b.candidatePairs);
        EXPECT_EQ(a.lightAlignsAttempted, b.lightAlignsAttempted);
        EXPECT_EQ(a.lightHypotheses, b.lightHypotheses);
        EXPECT_EQ(a.gateRejected, b.gateRejected);
        // Per-stage item counters are partition-invariant; only the
        // batch counts depend on how the input was chopped.
        for (u32 s = 0; s < genpair::kNumStages; ++s) {
            EXPECT_EQ(a.stage[s].itemsIn, b.stage[s].itemsIn) << s;
            EXPECT_EQ(a.stage[s].itemsOut, b.stage[s].itemsOut) << s;
        }
    }

    static void
    expectMappingsEqual(const std::vector<genomics::PairMapping> &a,
                        const std::vector<genomics::PairMapping> &b)
    {
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].path, b[i].path) << i;
            EXPECT_EQ(a[i].first.pos, b[i].first.pos) << i;
            EXPECT_EQ(a[i].second.pos, b[i].second.pos) << i;
            EXPECT_EQ(a[i].first.score, b[i].first.score) << i;
            EXPECT_EQ(a[i].second.score, b[i].second.score) << i;
            EXPECT_EQ(a[i].first.cigar.toString(),
                      b[i].first.cigar.toString())
                << i;
        }
    }

    genomics::Reference ref_;
    std::unique_ptr<genpair::SeedMap> map_;
    std::unique_ptr<baseline::Mm2Lite> mm2_;
    std::vector<genomics::ReadPair> pairs_;
};

TEST_F(StageGraphTest, EveryFallbackExitIsExercised)
{
    std::vector<genomics::PairMapping> out;
    auto stats = runBatched(pairs_.size(), &out);
    EXPECT_GT(stats.lightAligned, 0u);
    EXPECT_GT(stats.lightAlignFallback, 0u);
    EXPECT_GT(stats.seedMissFallback, 0u);
    EXPECT_GT(stats.paFilterFallback, 0u);
    EXPECT_EQ(stats.pairsTotal, pairs_.size());
}

TEST_F(StageGraphTest, BatchPartitionInvariance)
{
    // mapPair() (batch of one) and every other partition must produce
    // identical mappings and identical stats, field by field.
    std::vector<genomics::PairMapping> perPair;
    auto perPairStats = runBatched(1, &perPair);

    for (u64 batch : { u64{ 7 }, u64{ 64 }, pairs_.size() }) {
        std::vector<genomics::PairMapping> batched;
        auto batchedStats = runBatched(batch, &batched);
        expectMappingsEqual(perPair, batched);
        expectStatsEqual(perPairStats, batchedStats);
    }
}

TEST_F(StageGraphTest, MapPairWrapperMatchesBatch)
{
    genpair::GenPairPipeline a(ref_, *map_, genpair::GenPairParams{},
                               mm2_.get());
    genpair::GenPairPipeline b(ref_, *map_, genpair::GenPairParams{},
                               mm2_.get());
    std::vector<genomics::PairMapping> viaWrapper(pairs_.size());
    for (std::size_t i = 0; i < pairs_.size(); ++i)
        viaWrapper[i] = a.mapPair(pairs_[i]);
    std::vector<genomics::PairMapping> viaBatch(pairs_.size());
    b.mapBatch(pairs_.data(), pairs_.size(), viaBatch.data());
    expectMappingsEqual(viaWrapper, viaBatch);
    expectStatsEqual(a.stats(), b.stats());
}

TEST_F(StageGraphTest, StageCountersAreConsistent)
{
    std::vector<genomics::PairMapping> out;
    auto st = runBatched(64, &out);
    using genpair::StageId;
    const auto &seed = st.stageCounters(StageId::Seed);
    const auto &query = st.stageCounters(StageId::Query);
    const auto &pa = st.stageCounters(StageId::PaFilter);
    const auto &light = st.stageCounters(StageId::LightAlign);
    const auto &fb = st.stageCounters(StageId::Fallback);

    EXPECT_EQ(seed.itemsIn, pairs_.size());
    EXPECT_EQ(seed.itemsOut, pairs_.size());
    EXPECT_EQ(query.itemsIn, pairs_.size());
    EXPECT_EQ(query.itemsOut, pairs_.size() - st.seedMissFallback);
    EXPECT_EQ(pa.itemsOut,
              query.itemsOut - st.paFilterFallback);
    EXPECT_EQ(light.itemsIn, pa.itemsOut);
    EXPECT_EQ(light.itemsOut, st.lightAligned);
    EXPECT_EQ(fb.itemsIn, pairs_.size() - st.lightAligned);
    EXPECT_EQ(seed.batches, query.batches);
}

TEST_F(StageGraphTest, TraceRecordsMatchRouting)
{
    genpair::GenPairPipeline pipeline(ref_, *map_,
                                      genpair::GenPairParams{},
                                      mm2_.get());
    std::vector<genomics::PairMapping> out(pairs_.size());
    std::vector<genpair::PairTraceRecord> trace(pairs_.size());
    pipeline.mapBatch(pairs_.data(), pairs_.size(), out.data(),
                      trace.data());
    const auto &st = pipeline.stats();
    u64 light = 0, lightFb = 0, seedMiss = 0, paMiss = 0;
    for (const auto &tr : trace) {
        switch (tr.route) {
        case genpair::PairRoute::LightAligned: ++light; break;
        case genpair::PairRoute::LightFallback: ++lightFb; break;
        case genpair::PairRoute::SeedMiss: ++seedMiss; break;
        case genpair::PairRoute::PaMiss: ++paMiss; break;
        default: FAIL() << "unrouted trace record";
        }
    }
    EXPECT_EQ(light, st.lightAligned);
    EXPECT_EQ(lightFb, st.lightAlignFallback);
    EXPECT_EQ(seedMiss, st.seedMissFallback);
    EXPECT_EQ(paMiss, st.paFilterFallback);

    u64 filterIters = 0, lightAligns = 0;
    for (const auto &tr : trace) {
        filterIters += tr.filterIterations;
        lightAligns += tr.lightAligns;
    }
    EXPECT_EQ(filterIters, st.query.filterIterations);
    EXPECT_EQ(lightAligns, st.lightAlignsAttempted);

    // Tracing must not change the mapping.
    std::vector<genomics::PairMapping> plain;
    runBatched(pairs_.size(), &plain);
    expectMappingsEqual(plain, out);
}

TEST(LightAlignScratchTest, ScratchFormMatchesAllocatingForm)
{
    simdata::GenomeParams gp;
    gp.length = 60000;
    gp.seed = 9;
    genomics::Reference ref = simdata::generateGenome(gp);
    genpair::LightAligner aligner(ref, genpair::LightAlignParams{});
    genpair::LightAlignScratch scratch;

    util::Pcg32 rng(42);
    for (int iter = 0; iter < 300; ++iter) {
        u64 pos = 200 + rng.next() % (ref.totalLength() - 600);
        genomics::DnaSequence read =
            ref.windowView(pos, 150).materialize();
        // Mutate a few bases / shift so all hypothesis classes fire.
        for (int e = 0; e < static_cast<int>(rng.next() % 5); ++e)
            read.set(rng.next() % read.size(),
                     static_cast<u8>(rng.next() & 3));
        GlobalPos candidate =
            pos + static_cast<i64>(rng.next() % 9) - 4;
        scratch.invalidateRead();
        for (int rep = 0; rep < 2; ++rep) { // cached-planes path too
            auto a = aligner.align(read, candidate);
            auto b = aligner.align(read, candidate, scratch);
            ASSERT_EQ(a.aligned, b.aligned);
            ASSERT_EQ(a.score, b.score);
            ASSERT_EQ(a.pos, b.pos);
            ASSERT_EQ(a.hypothesesTried, b.hypothesesTried);
            ASSERT_EQ(a.cigar.toString(), b.cigar.toString());
        }
    }
}

TEST(AffineOracleTest, BranchlessEngineMatchesReference)
{
    util::Pcg32 rng(7);
    align::AlignScratch scratch; // reused across every size mix
    for (int iter = 0; iter < 400; ++iter) {
        std::size_t qlen = 1 + rng.next() % 180;
        std::size_t tlen = 1 + rng.next() % 260;
        genomics::DnaSequence q = randomSeq(rng, qlen);
        genomics::DnaSequence t;
        if (rng.next() & 1) {
            // Related operands: t is a mutated copy of q plus flanks.
            t = randomSeq(rng, rng.next() % 40);
            t.append(q);
            for (int e = 0; e < static_cast<int>(rng.next() % 6); ++e)
                t.set(rng.next() % t.size(),
                      static_cast<u8>(rng.next() & 3));
        } else {
            t = randomSeq(rng, tlen);
        }
        i32 band = -1;
        if (rng.next() % 3 == 0)
            band = static_cast<i32>(rng.next() % 64);
        auto sc = genomics::ScoringScheme::shortRead();

        auto ref = align::fitAlignRef(q, t, sc, band);
        auto opt = align::fitAlign(q, t, sc, band, scratch);
        ASSERT_EQ(ref.valid, opt.valid) << "iter " << iter;
        ASSERT_EQ(ref.cellUpdates, opt.cellUpdates) << "iter " << iter;
        if (!ref.valid)
            continue;
        ASSERT_EQ(ref.score, opt.score) << "iter " << iter;
        ASSERT_EQ(ref.targetStart, opt.targetStart) << "iter " << iter;
        ASSERT_EQ(ref.targetEnd, opt.targetEnd) << "iter " << iter;
        ASSERT_EQ(ref.cigar.toString(), opt.cigar.toString())
            << "iter " << iter;
    }
}

} // namespace
