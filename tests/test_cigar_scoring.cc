/**
 * @file
 * Unit tests for CIGAR handling and the affine scoring scheme, including
 * an exact regeneration of paper Table 1 score values.
 */

#include <gtest/gtest.h>

#include "genomics/cigar.hh"
#include "genomics/scoring.hh"

namespace {

using namespace gpx;
using genomics::Cigar;
using genomics::CigarOp;
using genomics::ScoringScheme;

TEST(Cigar, ParseAndToString)
{
    Cigar c = Cigar::parse("42M2I106M");
    EXPECT_EQ(c.toString(), "42M2I106M");
    EXPECT_EQ(c.elems().size(), 3u);
}

TEST(Cigar, PushMergesAdjacentOps)
{
    Cigar c;
    c.push(CigarOp::Match, 10);
    c.push(CigarOp::Match, 5);
    c.push(CigarOp::Deletion, 2);
    EXPECT_EQ(c.toString(), "15M2D");
}

TEST(Cigar, PushIgnoresZeroLength)
{
    Cigar c;
    c.push(CigarOp::Match, 0);
    EXPECT_TRUE(c.empty());
}

TEST(Cigar, SpansAccounting)
{
    Cigar c = Cigar::parse("50M2I48M3D50M");
    EXPECT_EQ(c.querySpan(), 150u);
    EXPECT_EQ(c.refSpan(), 151u);
    EXPECT_EQ(c.insertedBases(), 2u);
    EXPECT_EQ(c.deletedBases(), 3u);
}

TEST(Cigar, SoftClipConsumesQueryOnly)
{
    Cigar c = Cigar::parse("5S100M");
    EXPECT_EQ(c.querySpan(), 105u);
    EXPECT_EQ(c.refSpan(), 100u);
}

TEST(Scoring, PerfectScoreIs300For150bp)
{
    ScoringScheme s = ScoringScheme::shortRead();
    EXPECT_EQ(s.perfectScore(150), 300);
}

TEST(Scoring, GapCostTwoPiece)
{
    ScoringScheme s = ScoringScheme::shortRead();
    EXPECT_EQ(s.gapCost(0), 0);
    EXPECT_EQ(s.gapCost(1), 14);  // 12 + 2
    EXPECT_EQ(s.gapCost(5), 22);  // 12 + 10
    EXPECT_EQ(s.gapCost(20), 52); // min(52, 52): crossover point
    EXPECT_EQ(s.gapCost(40), 72); // second piece: 32 + 40
}

/**
 * Paper Table 1: alignment scores of all single-edit variations of a
 * 150 bp read under the Minimap2 sr scoring scheme.
 */
struct EditCase
{
    const char *label;
    u32 matches;
    u32 mismatches;
    std::vector<u32> gaps;
    u32 insertedBases; ///< reduces matching read bases
    i32 expected;
};

class Table1Scores : public ::testing::TestWithParam<EditCase>
{
};

TEST_P(Table1Scores, MatchesPaper)
{
    const EditCase &c = GetParam();
    ScoringScheme s = ScoringScheme::shortRead();
    EXPECT_EQ(s.scoreFromCounts(c.matches, c.mismatches, c.gaps),
              c.expected)
        << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    Paper, Table1Scores,
    ::testing::Values(
        EditCase{ "None", 150, 0, {}, 0, 300 },
        EditCase{ "1 Mismatch", 149, 1, {}, 0, 290 },
        EditCase{ "1 Deletion", 150, 0, { 1 }, 0, 286 },
        EditCase{ "1 Insertion", 149, 0, { 1 }, 1, 284 },
        EditCase{ "2 Consecutive Deletions", 150, 0, { 2 }, 0, 284 },
        EditCase{ "3 Consecutive Deletions", 150, 0, { 3 }, 0, 282 },
        EditCase{ "2 Mismatches", 148, 2, {}, 0, 280 },
        EditCase{ "2 Consecutive Insertions", 148, 0, { 2 }, 2, 280 },
        EditCase{ "4 Consecutive Deletions", 150, 0, { 4 }, 0, 280 },
        EditCase{ "5 Consecutive Deletions", 150, 0, { 5 }, 0, 278 },
        EditCase{ "1 Mismatch + 1 Deletion", 149, 1, { 1 }, 0, 276 }),
    [](const auto &test_info) {
        std::string name = test_info.param.label;
        for (auto &ch : name) {
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return name;
    });

TEST(Scoring, ScoreAlignmentSplitsMatchRuns)
{
    ScoringScheme s = ScoringScheme::shortRead();
    genomics::DnaSequence read("ACGTACGT");
    genomics::DnaSequence ref("ACGAACGT"); // one mismatch at index 3
    Cigar c = Cigar::parse("8M");
    EXPECT_EQ(s.scoreAlignment(read, ref, c), 7 * 2 - 8);
}

TEST(Scoring, ScoreAlignmentWithGap)
{
    ScoringScheme s = ScoringScheme::shortRead();
    genomics::DnaSequence read("ACGTACGT");
    genomics::DnaSequence ref("ACGTTTACGT"); // 2 extra ref bases
    Cigar c = Cigar::parse("4M2D4M");
    EXPECT_EQ(s.scoreAlignment(read, ref, c), 8 * 2 - 16);
}

} // namespace
