/**
 * @file
 * Golden end-to-end corpus: a small checked-in simulated reference and
 * read set (tests/data/golden/) with a pinned SAM md5. Serial, pooled,
 * streaming and mmap-backed (v2 image) drivers must all reproduce the
 * digest bit-identically — the cross-driver determinism contract that
 * PR 2 established and the v2 zero-copy serving path must preserve.
 *
 * If an intentional mapping-behavior change moves the digest, every
 * driver must move to the SAME new digest; update kGoldenSamMd5 and
 * say why in the commit. `md5sum` of a gpx_map run over the same
 * corpus (threads/chunk don't matter) reproduces the value.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "baseline/mm2lite.hh"
#include "genomics/fasta.hh"
#include "genomics/sam.hh"
#include "genpair/pipeline.hh"
#include "genpair/seedmap_io.hh"
#include "genpair/streaming.hh"
#include "hwsim/trace_adapter.hh"
#include "util/gzip_stream.hh"
#include "util/md5.hh"

namespace {

using namespace gpx;
using genomics::Reference;

/** Pinned digest of header + all records over the golden corpus. */
const char kGoldenSamMd5[] = "6e4b292bd35bc3babd6ffd733c44612f";

const char *
goldenDir()
{
#ifdef GPX_GOLDEN_DIR
    return GPX_GOLDEN_DIR;
#else
    return "tests/data/golden";
#endif
}

class GoldenCorpusTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        std::string dir = goldenDir();
        std::ifstream refFile(dir + "/ref.fa");
        ASSERT_TRUE(refFile) << "missing golden reference in " << dir;
        ref_ = genomics::readFasta(refFile);
        ASSERT_GT(ref_.totalLength(), 0u);

        std::ifstream r1(dir + "/r1.fq"), r2(dir + "/r2.fq");
        ASSERT_TRUE(r1 && r2) << "missing golden FASTQ in " << dir;
        auto reads1 = genomics::readFastq(r1);
        auto reads2 = genomics::readFastq(r2);
        ASSERT_EQ(reads1.size(), reads2.size());
        ASSERT_GT(reads1.size(), 0u);
        pairs_.reserve(reads1.size());
        for (std::size_t i = 0; i < reads1.size(); ++i)
            pairs_.push_back({ reads1[i], reads2[i] });

        // Pinned index parameters: auto-sizing heuristics must never be
        // able to move the golden digest.
        params_.seedLen = 50;
        params_.tableBits = 18;
        params_.filterThreshold = 500;
        map_ = std::make_unique<genpair::SeedMap>(ref_, params_);
    }

    /** Digest of one full SAM run produced by @p writeBody. */
    template <typename WriteBody>
    std::string
    samDigest(WriteBody &&writeBody)
    {
        std::ostringstream os;
        genomics::SamWriter sam(os, ref_);
        sam.writeHeader();
        writeBody(sam);
        return util::md5Hex(os.str());
    }

    Reference ref_;
    std::vector<genomics::ReadPair> pairs_;
    genpair::SeedMapParams params_;
    std::unique_ptr<genpair::SeedMap> map_;
    genpair::DriverConfig config_;
};

TEST_F(GoldenCorpusTest, SerialPipelineReproducesPinnedDigest)
{
    std::string digest = samDigest([&](genomics::SamWriter &sam) {
        baseline::Mm2Lite fallback(ref_, config_.fallback);
        genpair::GenPairPipeline pipeline(ref_, *map_, config_.pipeline,
                                          &fallback);
        for (const auto &pair : pairs_)
            sam.writePair(pair, pipeline.mapPair(pair));
    });
    EXPECT_EQ(digest, kGoldenSamMd5);
}

TEST_F(GoldenCorpusTest, WorkerPoolReproducesPinnedDigest)
{
    std::string digest = samDigest([&](genomics::SamWriter &sam) {
        genpair::DriverConfig config = config_;
        config.threads = 3;
        genpair::ParallelMapper mapper(ref_, *map_, config);
        auto result = mapper.mapAll(pairs_);
        for (std::size_t i = 0; i < pairs_.size(); ++i)
            sam.writePair(pairs_[i], result.mappings[i]);
    });
    EXPECT_EQ(digest, kGoldenSamMd5);
}

TEST_F(GoldenCorpusTest, StreamingDriverReproducesPinnedDigest)
{
    std::string dir = goldenDir();
    std::string digest = samDigest([&](genomics::SamWriter &sam) {
        std::ifstream r1(dir + "/r1.fq"), r2(dir + "/r2.fq");
        ASSERT_TRUE(r1 && r2);
        genpair::DriverConfig config = config_;
        config.threads = 2;
        genpair::StreamingMapper mapper(ref_, *map_, config, 64);
        auto result = mapper.run(r1, r2, sam);
        EXPECT_EQ(result.pairs, pairs_.size());
        EXPECT_GT(result.chunks, 1u);
    });
    EXPECT_EQ(digest, kGoldenSamMd5);
}

TEST_F(GoldenCorpusTest, IoThreadSweepReproducesPinnedDigest)
{
    // The async spine contract: parser fan-out, chunk size and worker
    // count must never move the digest — the reorder buffer restores
    // exact input order at every combination.
    std::string dir = goldenDir();
    for (u32 io : { 1u, 2u, 4u }) {
        for (u64 chunk : { u64{ 16 }, u64{ 100000 } }) {
            std::string digest =
                samDigest([&](genomics::SamWriter &sam) {
                    std::ifstream r1(dir + "/r1.fq"), r2(dir + "/r2.fq");
                    ASSERT_TRUE(r1 && r2);
                    genpair::DriverConfig config = config_;
                    config.threads = 3;
                    genpair::StreamingMapper mapper(ref_, *map_, config,
                                                    chunk, io);
                    auto result = mapper.run(r1, r2, sam);
                    EXPECT_EQ(result.pairs, pairs_.size());
                });
            EXPECT_EQ(digest, kGoldenSamMd5)
                << "io_threads=" << io << " chunk=" << chunk;
        }
    }
}

TEST_F(GoldenCorpusTest, GzipIngestReproducesPinnedDigest)
{
    // Round the golden FASTQ through gzip and back in via the sniffing
    // ingest path: same bits out as the plain-text corpus.
    if (!util::gzipSupported())
        GTEST_SKIP() << "built without zlib";
    std::string dir = goldenDir();
    auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    };
    const std::string gz1 = util::gzipCompress(slurp(dir + "/r1.fq"));
    const std::string gz2 = util::gzipCompress(slurp(dir + "/r2.fq"));
    std::string digest = samDigest([&](genomics::SamWriter &sam) {
        std::istringstream r1(gz1), r2(gz2);
        genpair::DriverConfig config = config_;
        config.threads = 2;
        genpair::StreamingMapper mapper(ref_, *map_, config, 64, 2);
        auto result = mapper.run(r1, r2, sam);
        EXPECT_EQ(result.pairs, pairs_.size());
    });
    EXPECT_EQ(digest, kGoldenSamMd5);
}

TEST_F(GoldenCorpusTest, MmapBackedDriverReproducesPinnedDigest)
{
    // Round the index through a sharded v2 image and serve the mapping
    // from the mmap view: still the same bits out.
    std::string imagePath = ::testing::TempDir() + "golden_v2.gpx";
    {
        std::ofstream out(imagePath, std::ios::binary | std::ios::trunc);
        genpair::saveSeedMapV2(out, *map_, 4);
        ASSERT_TRUE(out.good());
    }
    std::string error;
    auto image = genpair::SeedMapImage::open(imagePath, {}, &error);
    ASSERT_TRUE(image.has_value()) << error;
    ASSERT_TRUE(image->mmapBacked());
    ASSERT_EQ(image->shardCount(), 4u);

    std::string dir = goldenDir();
    std::string digest = samDigest([&](genomics::SamWriter &sam) {
        std::ifstream r1(dir + "/r1.fq"), r2(dir + "/r2.fq");
        ASSERT_TRUE(r1 && r2);
        genpair::DriverConfig config = config_;
        config.threads = 2;
        genpair::StreamingMapper mapper(ref_, image->view(), config, 128);
        auto result = mapper.run(r1, r2, sam);
        EXPECT_EQ(result.pairs, pairs_.size());
    });
    EXPECT_EQ(digest, kGoldenSamMd5);
}

TEST_F(GoldenCorpusTest, TraceEnabledRunReproducesPinnedDigest)
{
    // Stage-event recording must be a pure observer: the traced run
    // produces the same bits as every other driver, and the trace
    // itself parses back with one record per corpus pair.
    std::ostringstream trace;
    hwsim::writeTraceHeader(trace, map_->tableBits());
    std::string dir = goldenDir();
    std::string digest = samDigest([&](genomics::SamWriter &sam) {
        std::ifstream r1(dir + "/r1.fq"), r2(dir + "/r2.fq");
        ASSERT_TRUE(r1 && r2);
        genpair::DriverConfig config = config_;
        config.threads = 3;
        config.recordTrace = true;
        genpair::StreamingMapper mapper(ref_, *map_, config, 64);
        auto result = mapper.run(
            r1, r2, sam,
            [&](const genpair::PairTraceRecord *records, u64 count) {
                for (u64 i = 0; i < count; ++i)
                    records[i].writeText(trace);
            });
        EXPECT_EQ(result.pairs, pairs_.size());
    });
    EXPECT_EQ(digest, kGoldenSamMd5);

    std::istringstream is(trace.str());
    hwsim::RecordedRun run;
    std::string error;
    ASSERT_TRUE(hwsim::loadRecordedRun(is, &run, &error)) << error;
    EXPECT_EQ(run.stats.pairsTotal, pairs_.size());
}

TEST_F(GoldenCorpusTest, LegacyV1CopyPathReproducesPinnedDigest)
{
    // The v1 stream-load path must keep producing the same mapping as
    // every other backend for as long as v1 images exist in the wild.
    std::string imagePath = ::testing::TempDir() + "golden_v1.gpx";
    {
        std::ofstream out(imagePath, std::ios::binary | std::ios::trunc);
        genpair::saveSeedMap(out, *map_);
        ASSERT_TRUE(out.good());
    }
    std::string error;
    auto image = genpair::SeedMapImage::open(imagePath, {}, &error);
    ASSERT_TRUE(image.has_value()) << error;
    ASSERT_FALSE(image->mmapBacked());

    std::string digest = samDigest([&](genomics::SamWriter &sam) {
        genpair::ParallelMapper mapper(ref_, image->view(), config_);
        auto result = mapper.mapAll(pairs_);
        for (std::size_t i = 0; i < pairs_.size(); ++i)
            sam.writePair(pairs_[i], result.mappings[i]);
    });
    EXPECT_EQ(digest, kGoldenSamMd5);
}

} // namespace
