/**
 * @file
 * Wavefront aligner tests: oracle differentials (unit penalties ==
 * Levenshtein via filters::editDistance), CIGAR consistency, penalty
 * accounting under affine costs, the penalty cap, and the O(ns) work
 * advantage over the DP matrix on near-identical sequences.
 */

#include <gtest/gtest.h>

#include "align/affine.hh"
#include "align/wfa.hh"
#include "filters/edit_distance.hh"
#include "util/rng.hh"

namespace {

using namespace gpx;
using align::WfaPenalties;
using align::wfaGlobalAlign;
using genomics::CigarOp;
using genomics::DnaSequence;

DnaSequence
randomSeq(util::Pcg32 &rng, u32 len)
{
    DnaSequence s;
    for (u32 i = 0; i < len; ++i)
        s.push(static_cast<u8>(rng.below(4)));
    return s;
}

/** The penalty a CIGAR implies under @p p, recomputed independently. */
u32
cigarPenalty(const genomics::Cigar &cigar, const DnaSequence &q,
             const DnaSequence &t, const WfaPenalties &p)
{
    u32 penalty = 0;
    std::size_t v = 0, h = 0;
    for (const auto &e : cigar.elems()) {
        switch (e.op) {
        case CigarOp::Match:
            for (u32 i = 0; i < e.len; ++i, ++v, ++h)
                if (q.at(v) != t.at(h))
                    penalty += p.mismatch;
            break;
        case CigarOp::Insertion:
            penalty += p.gapOpen + e.len * p.gapExtend;
            v += e.len;
            break;
        case CigarOp::Deletion:
            penalty += p.gapOpen + e.len * p.gapExtend;
            h += e.len;
            break;
        default:
            ADD_FAILURE() << "unexpected CIGAR op";
        }
    }
    EXPECT_EQ(v, q.size());
    EXPECT_EQ(h, t.size());
    return penalty;
}

TEST(Wfa, IdenticalSequencesFreeAlignment)
{
    util::Pcg32 rng(1);
    DnaSequence s = randomSeq(rng, 200);
    auto r = wfaGlobalAlign(s, s);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.penalty, 0u);
    EXPECT_EQ(r.cigar.toString(), "200M");
}

TEST(Wfa, EmptySequences)
{
    WfaPenalties p;
    auto both = wfaGlobalAlign(DnaSequence(""), DnaSequence(""));
    ASSERT_TRUE(both.valid);
    EXPECT_EQ(both.penalty, 0u);

    auto textOnly = wfaGlobalAlign(DnaSequence(""), DnaSequence("ACGT"));
    ASSERT_TRUE(textOnly.valid);
    EXPECT_EQ(textOnly.penalty, p.gapOpen + 4 * p.gapExtend);
    EXPECT_EQ(textOnly.cigar.toString(), "4D");

    auto queryOnly = wfaGlobalAlign(DnaSequence("ACGT"), DnaSequence(""));
    ASSERT_TRUE(queryOnly.valid);
    EXPECT_EQ(queryOnly.penalty, p.gapOpen + 4 * p.gapExtend);
    EXPECT_EQ(queryOnly.cigar.toString(), "4I");
}

TEST(Wfa, SingleMismatch)
{
    util::Pcg32 rng(2);
    DnaSequence t = randomSeq(rng, 120);
    DnaSequence q = t;
    q.set(60, (q.at(60) + 1) & 3u);
    auto r = wfaGlobalAlign(q, t);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.penalty, WfaPenalties{}.mismatch);
    EXPECT_EQ(r.cigar.toString(), "120M");
}

TEST(Wfa, GapRunCostsOpenPlusExtends)
{
    util::Pcg32 rng(3);
    WfaPenalties p;
    DnaSequence t = randomSeq(rng, 150);
    // Query missing 3 bases -> one 3-deletion in SAM terms.
    DnaSequence q;
    for (std::size_t i = 0; i < t.size(); ++i)
        if (i < 70 || i >= 73)
            q.push(t.at(i));
    auto r = wfaGlobalAlign(q, t, p);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.penalty, p.gapOpen + 3 * p.gapExtend);
    EXPECT_EQ(r.cigar.toString(), "70M3D77M");
}

TEST(Wfa, PenaltyCapAbandonsCleanly)
{
    util::Pcg32 rng(4);
    DnaSequence q = randomSeq(rng, 100);
    DnaSequence t = randomSeq(rng, 100);
    auto r = wfaGlobalAlign(q, t, WfaPenalties{}, 10);
    EXPECT_FALSE(r.valid);
    // And the same pair aligns when unbounded.
    auto full = wfaGlobalAlign(q, t);
    EXPECT_TRUE(full.valid);
    EXPECT_GT(full.penalty, 10u);
}

class WfaOracle : public ::testing::TestWithParam<u64>
{
};

TEST_P(WfaOracle, UnitPenaltyEqualsEditDistance)
{
    util::Pcg32 rng(100 + GetParam());
    for (int trial = 0; trial < 10; ++trial) {
        DnaSequence t = randomSeq(rng, 60 + rng.below(60));
        // Mutate into the query with random scattered edits.
        DnaSequence q;
        for (std::size_t i = 0; i < t.size(); ++i) {
            u32 roll = rng.below(30);
            if (roll == 0)
                continue; // deletion
            q.push(t.at(i));
            if (roll == 1)
                q.push(static_cast<u8>(rng.below(4))); // insertion
            else if (roll == 2)
                q.set(q.size() - 1, (q.at(q.size() - 1) + 1) & 3u);
        }
        auto r = wfaGlobalAlign(q, t, WfaPenalties::unit());
        ASSERT_TRUE(r.valid);
        EXPECT_EQ(r.penalty, filters::editDistance(q, t));
    }
}

TEST_P(WfaOracle, CigarReproducesPenaltyUnderAffineCosts)
{
    util::Pcg32 rng(200 + GetParam());
    WfaPenalties p; // affine defaults
    for (int trial = 0; trial < 10; ++trial) {
        DnaSequence t = randomSeq(rng, 80 + rng.below(60));
        DnaSequence q;
        for (std::size_t i = 0; i < t.size(); ++i) {
            u32 roll = rng.below(25);
            if (roll == 0)
                continue;
            q.push(t.at(i));
            if (roll == 1)
                q.push(static_cast<u8>(rng.below(4)));
        }
        auto r = wfaGlobalAlign(q, t, p);
        ASSERT_TRUE(r.valid);
        // The traceback CIGAR must (a) span both sequences and (b) cost
        // exactly the reported penalty.
        EXPECT_EQ(cigarPenalty(r.cigar, q, t, p), r.penalty);
    }
}

/** Reference min-cost gap-affine DP (three-matrix Gotoh). */
u32
affineDpMinCost(const DnaSequence &q, const DnaSequence &t,
                const WfaPenalties &p)
{
    const std::size_t n = q.size(), m = t.size();
    const i64 inf = i64{1} << 40;
    auto matrix = [&] {
        return std::vector<std::vector<i64>>(
            n + 1, std::vector<i64>(m + 1, inf));
    };
    auto M = matrix(), I = matrix(), D = matrix();
    M[0][0] = 0;
    for (std::size_t i = 1; i <= n; ++i)
        I[i][0] = p.gapOpen + static_cast<i64>(i) * p.gapExtend;
    for (std::size_t j = 1; j <= m; ++j)
        D[0][j] = p.gapOpen + static_cast<i64>(j) * p.gapExtend;
    for (std::size_t i = 1; i <= n; ++i) {
        for (std::size_t j = 1; j <= m; ++j) {
            const i64 sub = q.at(i - 1) == t.at(j - 1) ? 0 : p.mismatch;
            M[i][j] = std::min({ M[i - 1][j - 1], I[i - 1][j - 1],
                                 D[i - 1][j - 1] }) +
                      sub;
            I[i][j] = std::min({ M[i - 1][j] + p.gapOpen + p.gapExtend,
                                 I[i - 1][j] + p.gapExtend,
                                 D[i - 1][j] + p.gapOpen + p.gapExtend });
            D[i][j] = std::min({ M[i][j - 1] + p.gapOpen + p.gapExtend,
                                 I[i][j - 1] + p.gapOpen + p.gapExtend,
                                 D[i][j - 1] + p.gapExtend });
        }
        // Column 0 for I is set above; M/D stay inf there.
        I[i][0] = std::min(I[i][0], inf);
    }
    return static_cast<u32>(std::min({ M[n][m], I[n][m], D[n][m] }));
}

TEST_P(WfaOracle, PenaltyMatchesGotohDpOnRandomPairs)
{
    // Full optimality differential against the three-matrix DP oracle,
    // on sequence pairs small enough for O(nm) to be instant.
    util::Pcg32 rng(300 + GetParam());
    WfaPenalties p;
    for (int trial = 0; trial < 12; ++trial) {
        DnaSequence q = randomSeq(rng, 4 + rng.below(30));
        DnaSequence t = randomSeq(rng, 4 + rng.below(30));
        auto r = wfaGlobalAlign(q, t, p);
        ASSERT_TRUE(r.valid);
        EXPECT_EQ(r.penalty, affineDpMinCost(q, t, p))
            << "q=" << q.toString() << " t=" << t.toString();
        EXPECT_EQ(cigarPenalty(r.cigar, q, t, p), r.penalty);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WfaOracle, ::testing::Range(u64{0}, u64{6}));

TEST(Wfa, WorkScalesWithDivergenceNotLength)
{
    // The WFA selling point: near-identical sequences cost ~n wavefront
    // ops while the DP matrix always costs n*m cells.
    util::Pcg32 rng(9);
    DnaSequence t = randomSeq(rng, 600);
    DnaSequence clean = t;
    clean.set(300, (clean.at(300) + 1) & 3u);
    auto cheap = wfaGlobalAlign(clean, t);
    ASSERT_TRUE(cheap.valid);

    DnaSequence diverged = t;
    for (u32 i = 0; i < 60; ++i) {
        u32 pos = rng.below(600);
        diverged.set(pos, (diverged.at(pos) + 1) & 3u);
    }
    auto costly = wfaGlobalAlign(diverged, t);
    ASSERT_TRUE(costly.valid);

    EXPECT_LT(cheap.wavefrontOps, u64{600} * 600 / 50); // << n*m
    EXPECT_GT(costly.wavefrontOps, cheap.wavefrontOps * 5);
}

} // namespace
