/**
 * @file
 * Tests for the hardware simulation substrate: DRAM channel timing, the
 * NMSL simulator, the module performance models and the area/power
 * roll-up.
 */

#include <gtest/gtest.h>

#include "hwsim/baseline_models.hh"
#include "hwsim/dram.hh"
#include "hwsim/gendp.hh"
#include "hwsim/host_interface.hh"
#include "hwsim/module_models.hh"
#include "hwsim/nmsl.hh"
#include "hwsim/pipeline_model.hh"
#include "hwsim/sram.hh"
#include "hwsim/tech.hh"
#include "util/rng.hh"

namespace {

using namespace gpx;
using namespace gpx::hwsim;

TEST(MemConfig, PeakBandwidths)
{
    // HBM2: 32 channels x 32 GB/s = 1 TB/s aggregate.
    EXPECT_NEAR(MemoryConfig::hbm2().peakGBps(), 1024.0, 1.0);
    EXPECT_GT(MemoryConfig::ddr5().peakGBps(), 100.0);
    EXPECT_LT(MemoryConfig::ddr5().peakGBps(),
              MemoryConfig::hbm2().peakGBps());
}

TEST(DramChannel, SingleRequestLatency)
{
    MemoryConfig cfg = MemoryConfig::hbm2();
    DramChannel ch(cfg);
    ch.push({ 0x1000, 32, 1 });
    u64 cycle = 0;
    std::vector<MemResponse> done;
    while (done.empty() && cycle < 1000) {
        ch.tick(cycle);
        for (auto &r : ch.drain(cycle))
            done.push_back(r);
        ++cycle;
    }
    ASSERT_EQ(done.size(), 1u);
    // Row miss: tRP + tRCD + tCL + tBL.
    u64 expect = cfg.tRP + cfg.tRCD + cfg.tCL + cfg.tBL;
    EXPECT_GE(done[0].finishCycle, expect);
    EXPECT_LE(done[0].finishCycle, expect + 2);
    EXPECT_EQ(ch.stats().activations, 1u);
}

TEST(DramChannel, RowHitFasterThanMiss)
{
    MemoryConfig cfg = MemoryConfig::hbm2();
    DramChannel ch(cfg);
    // Two requests to the same row.
    ch.push({ 0x1000, 32, 1 });
    ch.push({ 0x1040, 32, 2 });
    u64 cycle = 0;
    std::vector<MemResponse> done;
    while (done.size() < 2 && cycle < 1000) {
        ch.tick(cycle);
        for (auto &r : ch.drain(cycle))
            done.push_back(r);
        ++cycle;
    }
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(ch.stats().activations, 1u);
    EXPECT_EQ(ch.stats().rowHits, 1u);
}

TEST(DramChannel, MultiBurstRequestSplit)
{
    MemoryConfig cfg = MemoryConfig::hbm2();
    DramChannel ch(cfg);
    ch.push({ 0x2000, 128, 7 }); // four 32-byte bursts
    u64 cycle = 0;
    std::vector<MemResponse> done;
    while (done.empty() && cycle < 1000) {
        ch.tick(cycle);
        for (auto &r : ch.drain(cycle))
            done.push_back(r);
        ++cycle;
    }
    EXPECT_EQ(ch.stats().bursts, 4u);
    EXPECT_EQ(ch.stats().bytesRead, 128u);
}

TEST(DramChannel, EnergyAccounting)
{
    MemoryConfig cfg = MemoryConfig::hbm2();
    DramChannel ch(cfg);
    ch.push({ 0x1000, 32, 1 });
    for (u64 c = 0; c < 200; ++c) {
        ch.tick(c);
        ch.drain(c);
    }
    double e = ch.stats().dynamicEnergyNj(cfg);
    EXPECT_NEAR(e, cfg.actEnergyNj + cfg.readEnergyNjPerBurst, 1e-9);
}

/** Synthetic workload with a fixed locations-per-seed profile. */
std::vector<PairTrace>
syntheticWorkload(u64 pairs, u32 avgLocs, u64 seed)
{
    util::Pcg32 rng(seed);
    std::vector<PairTrace> w(pairs);
    for (auto &trace : w) {
        for (auto &st : trace) {
            st.hash = rng.next();
            st.locCount = rng.below(2 * avgLocs + 1); // mean ~avgLocs
            st.locOffset = rng.next() & 0xFFFF;
        }
    }
    return w;
}

TEST(Nmsl, ThroughputIncreasesWithWindow)
{
    auto workload = syntheticWorkload(4000, 10, 3);
    double prev = 0;
    for (u32 win : { 1u, 16u, 256u }) {
        NmslConfig cfg;
        cfg.windowSize = win;
        NmslSim sim(cfg);
        auto res = sim.run(workload);
        EXPECT_GT(res.mpairsPerSec, prev) << "window " << win;
        prev = res.mpairsPerSec;
    }
}

TEST(Nmsl, SramGrowsWithWindow)
{
    auto workload = syntheticWorkload(2000, 10, 4);
    NmslConfig small;
    small.windowSize = 16;
    NmslConfig large;
    large.windowSize = 1024;
    auto a = NmslSim(small).run(workload);
    auto b = NmslSim(large).run(workload);
    EXPECT_LT(a.centralBufferBytes, b.centralBufferBytes);
    EXPECT_EQ(b.centralBufferBytes, 1024ull * 6 * 500 * 4);
}

TEST(Nmsl, HbmOutperformsDdr5)
{
    auto workload = syntheticWorkload(4000, 10, 5);
    NmslConfig hbm;
    hbm.mem = MemoryConfig::hbm2();
    hbm.windowSize = 1024;
    NmslConfig ddr;
    ddr.mem = MemoryConfig::ddr5();
    ddr.windowSize = 1024;
    auto h = NmslSim(hbm).run(workload);
    auto d = NmslSim(ddr).run(workload);
    EXPECT_GT(h.mpairsPerSec, 3.0 * d.mpairsPerSec);
}

TEST(Nmsl, AllPairsRetired)
{
    auto workload = syntheticWorkload(1000, 10, 6);
    NmslConfig cfg;
    cfg.windowSize = 64;
    auto res = NmslSim(cfg).run(workload);
    EXPECT_EQ(res.pairs, 1000u);
    EXPECT_GT(res.bytesRead, 0u);
    EXPECT_GT(res.dramTotalPowerW, 0.0);
}

TEST(Nmsl, FilterThresholdCapsTraffic)
{
    // Seeds with huge location lists are clamped to maxLocsPerSeed.
    std::vector<PairTrace> w(200);
    for (auto &trace : w) {
        for (auto &st : trace) {
            st.hash = 12345;
            st.locCount = 100000;
        }
    }
    NmslConfig cfg;
    cfg.maxLocsPerSeed = 500;
    auto res = NmslSim(cfg).run(w);
    // <= pairs x 6 seeds x (500 x 4B + seed entry), with burst rounding.
    EXPECT_LE(res.bytesRead, 200ull * 6 * (500 * 4 + 64));
}

TEST(ModuleModels, PartitionedSeedingMatchesPaper)
{
    ModuleModels mm(2.0);
    auto m = mm.partitionedSeeding(192.7);
    EXPECT_NEAR(m.throughputMpairs, 333.0, 1.0);
    EXPECT_EQ(m.instances, 1u);
    EXPECT_EQ(m.latencyCycles, 10.0);
}

TEST(ModuleModels, PaFilterMatchesPaper)
{
    ModuleModels mm(2.0);
    WorkloadProfile w = WorkloadProfile::paperDefault();
    auto m = mm.pairedAdjacencyFilter(w, 192.7);
    EXPECT_NEAR(m.throughputMpairs, 83.0, 1.0);
    EXPECT_EQ(m.instances, 3u);
}

TEST(ModuleModels, LightAlignMatchesPaper)
{
    ModuleModels mm(2.0);
    WorkloadProfile w = WorkloadProfile::paperDefault();
    auto m = mm.lightAlignment(w, 192.7);
    EXPECT_NEAR(m.throughputMpairs, 1.1, 0.05);
    EXPECT_NEAR(m.instances, 174.0, 3.0);
    EXPECT_EQ(m.latencyCycles, 156.0);
}

TEST(Tech, ScalingFactorsApplied)
{
    BlockCost c28{ 1.91, 3.5 };
    BlockCost c7 = TechModel::to7nm(c28);
    EXPECT_NEAR(c7.areaMm2, 1.0, 1e-9);
    EXPECT_NEAR(c7.powerMw, 1.0, 1e-9);
}

TEST(Sram, CalibratedAgainstPaperPoints)
{
    u64 bufBytes = static_cast<u64>(11.74 * 1024 * 1024);
    EXPECT_NEAR(SramModel::areaMm2(bufBytes, SramModel::Profile::Buffer),
                6.13, 0.02);
    EXPECT_NEAR(SramModel::powerMw(bufBytes, SramModel::Profile::Buffer),
                6.09, 0.02);
    u64 fifoBytes = 190 * 1024;
    EXPECT_NEAR(SramModel::powerMw(fifoBytes, SramModel::Profile::Fifo),
                3.36, 0.02);
}

TEST(GenDp, EfficiencyConstantsReproduceTable4)
{
    BlockCost chain = GenDpModel::chainCost(331772.0);
    EXPECT_NEAR(chain.areaMm2, 174.9, 0.5);
    EXPECT_NEAR(chain.powerMw, 115800.0, 500.0);
    BlockCost align = GenDpModel::alignCost(3469180.0);
    EXPECT_NEAR(align.areaMm2, 139.4, 0.5);
    EXPECT_NEAR(align.powerMw, 92300.0, 500.0);
}

TEST(BaselineModelsTest, RatiosMatchPaper)
{
    auto gx = BaselineModels::genPairXReported();
    auto mm2 = BaselineModels::mm2Cpu();
    auto gc = BaselineModels::genCache();
    auto gd = BaselineModels::genDp();
    EXPECT_NEAR(gx.mbpsPerMm2() / mm2.mbpsPerMm2(), 958.0, 30.0);
    EXPECT_NEAR(gx.mbpsPerW() / mm2.mbpsPerW(), 1575.0, 50.0);
    EXPECT_NEAR(gx.mbpsPerW() / gc.mbpsPerW(), 1.43, 0.05);
    EXPECT_NEAR(gx.mbpsPerMm2() / gd.mbpsPerMm2(), 1.97, 0.06);
    EXPECT_NEAR(gx.throughputMbps / gc.throughputMbps, 26.6, 0.5);
}

TEST(PipelineModelTest, PaperOperatingPointRollsUp)
{
    // Feed the paper's NMSL rate and workload through the roll-up; the
    // totals must land near Table 4 / Table 5.
    NmslResult nmsl;
    nmsl.mpairsPerSec = 192.7;
    nmsl.centralBufferBytes = static_cast<u64>(11.74 * 1024 * 1024);
    nmsl.channelFifoBytes = 190 * 1024;
    NmslConfig cfg;
    PipelineModel pm(2.0);
    auto d = pm.design(nmsl, cfg, WorkloadProfile::paperDefault());

    EXPECT_NEAR(d.throughputMbps(), 57810.0, 100.0);
    EXPECT_NEAR(d.genPairXCost.areaMm2, 66.8, 3.0);
    EXPECT_NEAR(d.totalCost.areaMm2, 381.1, 10.0);
    EXPECT_NEAR(d.totalCost.powerMw / 1000.0, 209.0, 8.0);
    EXPECT_NEAR(d.chainMcups, 331772.0, 5000.0);
    EXPECT_NEAR(d.alignMcups, 3469180.0, 50000.0);
}

TEST(PipelineModelTest, ThroughputDegradesWithFallback)
{
    NmslResult nmsl;
    nmsl.mpairsPerSec = 192.7;
    nmsl.centralBufferBytes = 1 << 20;
    nmsl.channelFifoBytes = 1 << 16;
    PipelineModel pm(2.0);
    auto d = pm.design(nmsl, NmslConfig{}, WorkloadProfile::paperDefault());

    WorkloadProfile high = WorkloadProfile::paperDefault();
    high.lightFallbackFrac = 0.5; // error-rate-driven fallback explosion
    double degraded = pm.throughputUnder(d, high);
    EXPECT_LT(degraded, d.endToEndMpairs);
    // Baseline workload keeps the design at its nominal rate.
    EXPECT_NEAR(pm.throughputUnder(d, WorkloadProfile::paperDefault()),
                d.endToEndMpairs, 1.0);
}

TEST(PipelineModelTest, LongReadsRoughlyTenfoldSlower)
{
    NmslResult nmsl;
    nmsl.mpairsPerSec = 192.7;
    nmsl.centralBufferBytes = 1 << 20;
    nmsl.channelFifoBytes = 1 << 16;
    PipelineModel pm(2.0);
    auto d = pm.design(nmsl, NmslConfig{}, WorkloadProfile::paperDefault());
    double lr = pm.longReadMbps(d, LongReadWorkload{});
    EXPECT_LT(lr, d.throughputMbps() / 3.0);
    EXPECT_GT(lr, d.throughputMbps() / 60.0);
}


TEST(Nmsl, BlockMappingLosesToHashInterleave)
{
    // Hot seeds concentrated in one hash region overload a single
    // channel under Block mapping; hash interleaving spreads them.
    util::Pcg32 rng(21);
    std::vector<PairTrace> w(3000);
    for (auto &trace : w) {
        for (auto &st : trace) {
            st.hash = rng.below(1u << 20); // narrow hash region
            st.locCount = 10;
        }
    }
    NmslConfig hash;
    hash.windowSize = 1024;
    hash.mapping = ChannelMapping::HashInterleave;
    NmslConfig block = hash;
    block.mapping = ChannelMapping::Block;
    block.tableEntries = u64{1} << 26;
    auto a = NmslSim(hash).run(w);
    auto b = NmslSim(block).run(w);
    EXPECT_GT(a.mpairsPerSec, 4.0 * b.mpairsPerSec);
}

TEST(Nmsl, MappingsEquivalentUnderUniformLoad)
{
    // With hashes spanning the full table, both mappings balance.
    util::Pcg32 rng(22);
    std::vector<PairTrace> w(3000);
    for (auto &trace : w) {
        for (auto &st : trace) {
            st.hash = rng.next() & ((1u << 26) - 1);
            st.locCount = 10;
        }
    }
    NmslConfig hash;
    hash.windowSize = 1024;
    NmslConfig block = hash;
    block.mapping = ChannelMapping::Block;
    auto a = NmslSim(hash).run(w);
    auto b = NmslSim(block).run(w);
    EXPECT_NEAR(a.mpairsPerSec / b.mpairsPerSec, 1.0, 0.25);
}

TEST(HostInterface, ReproducesPaperBandwidths)
{
    // SS7.4: 192.7 MPair/s, 150 bp, 2-bit encoding -> 14.5 GB/s in;
    // 8 B locations + ~20 B CIGAR -> 5.4 GB/s out.
    auto d = hostDemand(192.7);
    EXPECT_NEAR(d.inputGBs, 14.5, 0.1);
    EXPECT_NEAR(d.outputGBs, 5.4, 0.1);
}

TEST(HostInterface, Gen3AndGen4SustainTheDesign)
{
    auto d = hostDemand(192.7);
    auto links = pcieGenerations();
    ASSERT_GE(links.size(), 2u);
    EXPECT_TRUE(links[0].sustains(d)); // Gen3 x16
    EXPECT_TRUE(links[1].sustains(d)); // Gen4 x16
}

TEST(HostInterface, InputScalesWithReadLength)
{
    HostTrafficConfig longReads;
    longReads.readLen = 300;
    auto d150 = hostDemand(100.0);
    auto d300 = hostDemand(100.0, longReads);
    EXPECT_NEAR(d300.inputGBs / d150.inputGBs, 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(d300.outputGBs, d150.outputGBs);
}

TEST(HostInterface, LinkBoundCapInvertsDemand)
{
    // At the link-bound rate the demand exactly saturates one direction.
    for (const auto &link : pcieGenerations()) {
        double cap = maxMpairsOn(link);
        auto d = hostDemand(cap);
        EXPECT_TRUE(link.sustains(d));
        auto over = hostDemand(cap * 1.01);
        EXPECT_FALSE(link.sustains(over));
    }
}

} // namespace
