/**
 * @file
 * End-to-end tests of the GenPair pipeline: fast-path mapping, fallback
 * routing (Fig. 10 semantics), orientation handling and accuracy on
 * simulated data.
 */

#include <gtest/gtest.h>

#include <memory>

#include "baseline/mm2lite.hh"
#include "eval/mapping_eval.hh"
#include "genpair/pipeline.hh"
#include "simdata/genome_generator.hh"
#include "simdata/read_simulator.hh"

namespace {

using namespace gpx;
using genomics::DnaSequence;
using genomics::MappingPath;
using genomics::ReadPair;
using genomics::Reference;
using genpair::GenPairParams;
using genpair::GenPairPipeline;
using genpair::SeedMap;
using genpair::SeedMapParams;

class PipelineTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        simdata::GenomeParams gp;
        gp.length = 300000;
        gp.chromosomes = 1;
        gp.seed = 33;
        ref_ = simdata::generateGenome(gp);
        SeedMapParams sp;
        sp.tableBits = 20;
        map_ = std::make_unique<SeedMap>(ref_, sp);
        mapper_ = std::make_unique<baseline::Mm2Lite>(
            ref_, baseline::Mm2LiteParams{});
        pipeline_ = std::make_unique<GenPairPipeline>(
            ref_, *map_, GenPairParams{}, mapper_.get());
    }

    /** Error-free FR pair at the given position and insert. */
    ReadPair
    cleanPair(GlobalPos pos, u64 insert = 400) const
    {
        ReadPair pair;
        pair.first.seq = ref_.chromosome(0).sub(pos, 150);
        pair.first.truthPos = pos;
        pair.second.seq =
            ref_.chromosome(0).sub(pos + insert - 150, 150).revComp();
        pair.second.truthPos = pos + insert - 150;
        pair.second.truthReverse = true;
        return pair;
    }

    Reference ref_;
    std::unique_ptr<SeedMap> map_;
    std::unique_ptr<baseline::Mm2Lite> mapper_;
    std::unique_ptr<GenPairPipeline> pipeline_;
};

TEST_F(PipelineTest, CleanPairLightAligned)
{
    auto pm = pipeline_->mapPair(cleanPair(10000));
    EXPECT_EQ(pm.path, MappingPath::LightAligned);
    ASSERT_TRUE(pm.bothMapped());
    EXPECT_EQ(pm.first.pos, 10000u);
    EXPECT_EQ(pm.second.pos, 10250u);
    EXPECT_FALSE(pm.first.reverse);
    EXPECT_TRUE(pm.second.reverse);
    EXPECT_EQ(pm.first.score, 300);
    EXPECT_EQ(pm.second.score, 300);
}

TEST_F(PipelineTest, ReverseStrandFragmentHandled)
{
    // Swap roles: fragment sequenced from the minus strand means read 1
    // is the reverse-complemented right mate.
    ReadPair pair = cleanPair(20000);
    std::swap(pair.first, pair.second);
    auto pm = pipeline_->mapPair(pair);
    EXPECT_EQ(pm.path, MappingPath::LightAligned);
    ASSERT_TRUE(pm.bothMapped());
    EXPECT_EQ(pm.first.pos, 20250u);
    EXPECT_TRUE(pm.first.reverse);
    EXPECT_EQ(pm.second.pos, 20000u);
    EXPECT_FALSE(pm.second.reverse);
}

TEST_F(PipelineTest, PairWithFewMismatchesLightAligned)
{
    ReadPair pair = cleanPair(30000);
    pair.first.seq.set(75, (pair.first.seq.at(75) + 1) & 3u);
    auto pm = pipeline_->mapPair(pair);
    EXPECT_EQ(pm.path, MappingPath::LightAligned);
    EXPECT_EQ(pm.first.score, 290);
}

TEST_F(PipelineTest, RandomReadFallsToFullDp)
{
    util::Pcg32 rng(99);
    ReadPair pair;
    std::string junk1, junk2;
    for (int i = 0; i < 150; ++i) {
        junk1.push_back(genomics::baseToChar(rng.below(4)));
        junk2.push_back(genomics::baseToChar(rng.below(4)));
    }
    pair.first.seq = DnaSequence(junk1);
    pair.second.seq = DnaSequence(junk2);
    auto pm = pipeline_->mapPair(pair);
    // Random 150-mers essentially never occur in a 300 kb genome; the
    // pair exits through a full-DP fallback (and stays unmapped there).
    EXPECT_TRUE(pm.path == MappingPath::FullDpFallback ||
                pm.path == MappingPath::Unmapped);
    const auto &st = pipeline_->stats();
    EXPECT_EQ(st.seedMissFallback + st.paFilterFallback, 1u);
}

TEST_F(PipelineTest, ExcessiveInsertFallsBack)
{
    // Mates 5 kb apart exceed delta=500: adjacency filter rejects.
    auto pm = pipeline_->mapPair(cleanPair(40000, 5000));
    EXPECT_EQ(pm.path, MappingPath::FullDpFallback);
    EXPECT_GE(pipeline_->stats().paFilterFallback, 1u);
    // The DP fallback still maps both reads.
    EXPECT_TRUE(pm.first.mapped);
    EXPECT_TRUE(pm.second.mapped);
}

TEST_F(PipelineTest, MixedEditReadUsesDpAlignFallback)
{
    ReadPair pair = cleanPair(50000);
    // Read 1: one mismatch AND one deletion -> not light-alignable.
    DnaSequence seq = ref_.chromosome(0).sub(50000, 60);
    seq.append(ref_.chromosome(0).view(50061, 90));
    seq.set(20, (seq.at(20) + 1) & 3u);
    pair.first.seq = seq;
    auto pm = pipeline_->mapPair(pair);
    EXPECT_EQ(pm.path, MappingPath::DpAlignFallback);
    ASSERT_TRUE(pm.bothMapped());
    EXPECT_EQ(pm.first.pos, 50000u);
    EXPECT_EQ(pm.first.score, 276); // 1 mismatch + 1 deletion (Table 1)
}

TEST_F(PipelineTest, StatsAccumulate)
{
    pipeline_->mapPair(cleanPair(60000));
    pipeline_->mapPair(cleanPair(61000));
    const auto &st = pipeline_->stats();
    EXPECT_EQ(st.pairsTotal, 2u);
    EXPECT_EQ(st.lightAligned, 2u);
    EXPECT_GT(st.query.seedLookups, 0u);
    EXPECT_GT(st.lightAlignsAttempted, 0u);
}

TEST(PipelineStats, PlusEqualsCoversEveryField)
{
    // Every field gets a distinct value so a merge that drops or
    // double-counts any one of them fails on that exact field — the
    // regression that motivated replacing the drivers' hand-rolled
    // accumulators (they silently dropped gateRejected).
    genpair::PipelineStats a, b;
    u64 v = 1;
    for (u64 *f : { &b.pairsTotal, &b.seedMissFallback,
                    &b.paFilterFallback, &b.lightAlignFallback,
                    &b.lightAligned, &b.dpAligned, &b.fullDpMapped,
                    &b.unmapped, &b.query.seedLookups,
                    &b.query.locationsFetched,
                    &b.query.filterIterations, &b.candidatePairs,
                    &b.lightAlignsAttempted, &b.lightHypotheses,
                    &b.gateRejected })
        *f = v++;

    a += b;
    a += b;
    EXPECT_EQ(a.pairsTotal, 2u * b.pairsTotal);
    EXPECT_EQ(a.seedMissFallback, 2u * b.seedMissFallback);
    EXPECT_EQ(a.paFilterFallback, 2u * b.paFilterFallback);
    EXPECT_EQ(a.lightAlignFallback, 2u * b.lightAlignFallback);
    EXPECT_EQ(a.lightAligned, 2u * b.lightAligned);
    EXPECT_EQ(a.dpAligned, 2u * b.dpAligned);
    EXPECT_EQ(a.fullDpMapped, 2u * b.fullDpMapped);
    EXPECT_EQ(a.unmapped, 2u * b.unmapped);
    EXPECT_EQ(a.query.seedLookups, 2u * b.query.seedLookups);
    EXPECT_EQ(a.query.locationsFetched, 2u * b.query.locationsFetched);
    EXPECT_EQ(a.query.filterIterations, 2u * b.query.filterIterations);
    EXPECT_EQ(a.candidatePairs, 2u * b.candidatePairs);
    EXPECT_EQ(a.lightAlignsAttempted, 2u * b.lightAlignsAttempted);
    EXPECT_EQ(a.lightHypotheses, 2u * b.lightHypotheses);
    EXPECT_EQ(a.gateRejected, 2u * b.gateRejected);
}

TEST_F(PipelineTest, NoFallbackEngineCountsUnmapped)
{
    GenPairPipeline lone(ref_, *map_, GenPairParams{}, nullptr);
    util::Pcg32 rng(7);
    ReadPair pair;
    std::string junk;
    for (int i = 0; i < 150; ++i)
        junk.push_back(genomics::baseToChar(rng.below(4)));
    pair.first.seq = DnaSequence(junk);
    pair.second.seq = DnaSequence(junk);
    auto pm = lone.mapPair(pair);
    EXPECT_EQ(pm.path, MappingPath::Unmapped);
    EXPECT_EQ(lone.stats().unmapped, 1u);
}

TEST_F(PipelineTest, SimulatedReadsAccuracy)
{
    simdata::DiploidGenome dg(ref_, simdata::VariantParams{});
    simdata::ReadSimParams rp;
    simdata::ReadSimulator sim(dg, rp);
    eval::MappingEvaluator evaluator(30);
    const u32 n = 150;
    for (u32 i = 0; i < n; ++i) {
        auto pair = sim.simulatePair();
        auto pm = pipeline_->mapPair(pair);
        evaluator.addPair(pair, pm);
    }
    const auto &acc = evaluator.result();
    EXPECT_GT(acc.recall(), 0.9);
    EXPECT_GT(acc.precision(), 0.93);
    // The large majority of pairs must take the fast path (Fig. 10).
    const auto &st = pipeline_->stats();
    EXPECT_GT(st.fraction(st.lightAligned), 0.5);
}

} // namespace
