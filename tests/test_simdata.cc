/**
 * @file
 * Unit tests for the synthetic genome, diploid variants and the read
 * simulators.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "genomics/sequence.hh"
#include "simdata/datasets.hh"
#include "simdata/genome_generator.hh"
#include "simdata/read_simulator.hh"
#include "simdata/variants.hh"

namespace {

using namespace gpx;
using namespace gpx::simdata;
using genomics::DnaSequence;
using genomics::Reference;

GenomeParams
smallGenome(u64 len = 100000, u64 seed = 7)
{
    GenomeParams p;
    p.length = len;
    p.chromosomes = 2;
    p.seed = seed;
    return p;
}

TEST(GenomeGenerator, ProducesRequestedLength)
{
    Reference ref = generateGenome(smallGenome(120000));
    EXPECT_EQ(ref.totalLength(), 120000u);
    EXPECT_EQ(ref.numChromosomes(), 2u);
}

TEST(GenomeGenerator, DeterministicForSeed)
{
    Reference a = generateGenome(smallGenome(50000, 3));
    Reference b = generateGenome(smallGenome(50000, 3));
    EXPECT_EQ(a.chromosome(0), b.chromosome(0));
    Reference c = generateGenome(smallGenome(50000, 4));
    EXPECT_FALSE(a.chromosome(0) == c.chromosome(0));
}

TEST(GenomeGenerator, GcContentNearTarget)
{
    GenomeParams p = smallGenome(200000);
    p.repeatFraction = 0.0; // pure background
    Reference ref = generateGenome(p);
    u64 gc = 0;
    const DnaSequence &chrom = ref.chromosome(0);
    for (std::size_t i = 0; i < chrom.size(); ++i) {
        u8 b = chrom.at(i);
        gc += b == genomics::BaseC || b == genomics::BaseG;
    }
    double frac = static_cast<double>(gc) / chrom.size();
    EXPECT_NEAR(frac, p.gcContent, 0.02);
}

TEST(GenomeGenerator, RepeatsCreateDuplicateSeeds)
{
    // With repeats, some 50-mers must recur; without, essentially none.
    GenomeParams with = smallGenome(400000);
    with.repeatFraction = 0.5;
    GenomeParams without = smallGenome(400000);
    without.repeatFraction = 0.0;
    without.satelliteFamilies = 0;

    auto countDupes = [](const Reference &ref) {
        std::vector<std::string> seeds;
        const DnaSequence &chrom = ref.chromosome(0);
        for (u64 p = 0; p + 50 <= chrom.size(); p += 97)
            seeds.push_back(chrom.sub(p, 50).toString());
        std::sort(seeds.begin(), seeds.end());
        u64 dupes = 0;
        for (std::size_t i = 1; i < seeds.size(); ++i)
            dupes += seeds[i] == seeds[i - 1];
        return dupes;
    };
    EXPECT_GT(countDupes(generateGenome(with)), 0u);
    EXPECT_EQ(countDupes(generateGenome(without)), 0u);
}

TEST(Variants, GeneratedRatesApproximate)
{
    Reference ref = generateGenome(smallGenome(500000));
    VariantParams vp;
    vp.snpRate = 1e-3;
    vp.indelRate = 2e-4;
    DiploidGenome dg(ref, vp);
    u64 snps = 0, indels = 0;
    for (const auto &v : dg.truthVariants()) {
        if (v.type == VariantType::Snp)
            ++snps;
        else
            ++indels;
    }
    double snpRate = static_cast<double>(snps) / ref.totalLength();
    double indelRate = static_cast<double>(indels) / ref.totalLength();
    EXPECT_NEAR(snpRate, 1e-3, 3e-4);
    EXPECT_NEAR(indelRate, 2e-4, 1e-4);
}

TEST(Variants, HaplotypeCarriesHomVariants)
{
    Reference ref = generateGenome(smallGenome(100000));
    VariantParams vp;
    vp.hetFraction = 0.0; // all hom: both haplotypes carry everything
    DiploidGenome dg(ref, vp);
    ASSERT_FALSE(dg.truthVariants().empty());
    const Variant *snp = nullptr;
    for (const auto &v : dg.truthVariants()) {
        if (v.type == VariantType::Snp) {
            snp = &v;
            break;
        }
    }
    ASSERT_NE(snp, nullptr);
    for (u32 hap = 0; hap < 2; ++hap) {
        const Haplotype &h = dg.haplotype(snp->chrom, hap);
        // Find the haplotype position of this ref offset by scanning the
        // anchor map (no indel before the first variant is guaranteed
        // only for hap positions < first indel; use toRefOffset inverse
        // via linear check around the anchor).
        bool found = false;
        for (u64 hp = snp->pos > 64 ? snp->pos - 64 : 0;
             hp < snp->pos + 64 && hp < h.seq.size(); ++hp) {
            if (h.toRefOffset(hp) == snp->pos &&
                h.seq.at(hp) == snp->altBase) {
                found = true;
                break;
            }
        }
        EXPECT_TRUE(found) << "hap " << hap;
    }
}

TEST(Variants, CoordinateMapConsistent)
{
    Reference ref = generateGenome(smallGenome(100000));
    DiploidGenome dg(ref, VariantParams{});
    const Haplotype &h = dg.haplotype(0, 0);
    // toRefOffset must be monotone non-decreasing.
    u64 prev = 0;
    for (u64 hp = 0; hp < h.seq.size(); hp += 977) {
        u64 rp = h.toRefOffset(hp);
        EXPECT_GE(rp, prev);
        prev = rp;
    }
}

TEST(ReadSimulator, ErrorFreeReadsMatchReference)
{
    Reference ref = generateGenome(smallGenome(200000));
    VariantParams vp;
    vp.snpRate = 0;
    vp.indelRate = 0;
    DiploidGenome dg(ref, vp);
    ReadSimParams rp;
    rp.errors.subRate = 0;
    rp.errors.insRate = 0;
    rp.errors.delRate = 0;
    rp.errors.badFragmentFrac = 0;
    ReadSimulator sim(dg, rp);
    for (int i = 0; i < 50; ++i) {
        auto pair = sim.simulatePair();
        // Read 1 forward copy of the reference at its truth position.
        DnaSequence expect1 = ref.window(pair.first.truthPos, 150);
        EXPECT_EQ(pair.first.seq.toString(), expect1.toString());
        // Read 2 is the reverse complement of its truth window.
        DnaSequence expect2 =
            ref.window(pair.second.truthPos, 150).revComp();
        EXPECT_EQ(pair.second.seq.toString(), expect2.toString());
        EXPECT_TRUE(pair.second.truthReverse);
        EXPECT_GE(pair.second.truthPos, pair.first.truthPos);
    }
}

TEST(ReadSimulator, InsertDistanceWithinBounds)
{
    Reference ref = generateGenome(smallGenome(200000));
    DiploidGenome dg(ref, VariantParams{});
    ReadSimParams rp;
    rp.insertMean = 400;
    rp.insertSd = 40;
    ReadSimulator sim(dg, rp);
    for (int i = 0; i < 200; ++i) {
        auto pair = sim.simulatePair();
        u64 dist = pair.second.truthPos - pair.first.truthPos;
        EXPECT_LT(dist, 800u); // mean 400-150=250, far tail bounded
    }
}

TEST(ReadSimulator, ErrorRateApproximatelyRealized)
{
    Reference ref = generateGenome(smallGenome(200000));
    VariantParams vp;
    vp.snpRate = 0;
    vp.indelRate = 0;
    DiploidGenome dg(ref, vp);
    ReadSimParams rp;
    rp.errors.subRate = 0.01; // substitutions only: Hamming-measurable
    rp.errors.insRate = 0;
    rp.errors.delRate = 0;
    rp.errors.badFragmentFrac = 0;
    ReadSimulator sim(dg, rp);
    u64 mismatches = 0, bases = 0;
    for (int i = 0; i < 400; ++i) {
        auto pair = sim.simulatePair();
        DnaSequence truth = ref.window(pair.first.truthPos, 150);
        if (truth.size() != 150)
            continue;
        mismatches += genomics::hammingDistance(pair.first.seq, truth);
        bases += 150;
    }
    double rate = static_cast<double>(mismatches) / bases;
    EXPECT_NEAR(rate, 0.01, 0.004);
}

/**
 * Anchored-start edit distance of @p read against a prefix of @p win
 * (free end in the window): counts the substitutions, insertions and
 * deletions the simulator introduced into an error-only read.
 */
u32
editToWindowPrefix(const DnaSequence &read, const DnaSequence &win)
{
    const std::size_t n = read.size(), m = win.size();
    std::vector<u32> prev(m + 1), cur(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        prev[j] = static_cast<u32>(j);
    for (std::size_t i = 1; i <= n; ++i) {
        cur[0] = static_cast<u32>(i);
        for (std::size_t j = 1; j <= m; ++j) {
            u32 sub = prev[j - 1] + (read.at(i - 1) != win.at(j - 1));
            cur[j] = std::min(sub, std::min(prev[j], cur[j - 1]) + 1);
        }
        std::swap(prev, cur);
    }
    return *std::min_element(prev.begin(), prev.end());
}

TEST(ReadSimulator, SubstitutionRateCalibratedAcrossRatesAndSeeds)
{
    // Substitution-only profiles are Hamming-measurable: the realized
    // mismatch rate must track the requested rate at every (rate, seed)
    // combination, not just the single point the default profile uses.
    for (double rate : { 0.02, 0.05, 0.10 }) {
        for (u64 seed : { u64{ 101 }, u64{ 202 }, u64{ 303 } }) {
            Reference ref = generateGenome(smallGenome(150000, seed));
            VariantParams vp;
            vp.snpRate = 0;
            vp.indelRate = 0;
            DiploidGenome dg(ref, vp);
            ReadSimParams rp;
            rp.seed = seed + 9;
            rp.errors.subRate = rate;
            rp.errors.insRate = 0;
            rp.errors.delRate = 0;
            rp.errors.badFragmentFrac = 0;
            ReadSimulator sim(dg, rp);
            u64 mismatches = 0, bases = 0;
            for (int i = 0; i < 150; ++i) {
                auto pair = sim.simulatePair();
                DnaSequence truth = ref.window(pair.first.truthPos, 150);
                if (truth.size() != 150)
                    continue;
                mismatches +=
                    genomics::hammingDistance(pair.first.seq, truth);
                bases += 150;
            }
            double measured = static_cast<double>(mismatches) / bases;
            EXPECT_NEAR(measured, rate, std::max(0.005, rate * 0.3))
                << "rate " << rate << " seed " << seed;
        }
    }
}

TEST(ReadSimulator, TotalErrorRateCalibratedWithIndels)
{
    // The uniform profile splits the total rate across sub/ins/del;
    // the realized edit distance to the truth window must track it.
    // Edit distance undercounts slightly (adjacent edits merge, random
    // matches absorb some), so the tolerance is asymmetric.
    for (double rate : { 0.05, 0.10 }) {
        for (u64 seed : { u64{ 101 }, u64{ 303 } }) {
            Reference ref = generateGenome(smallGenome(150000, seed));
            VariantParams vp;
            vp.snpRate = 0;
            vp.indelRate = 0;
            DiploidGenome dg(ref, vp);
            ReadSimParams rp;
            rp.seed = seed + 13;
            rp.errors = ErrorProfile::uniform(rate);
            ReadSimulator sim(dg, rp);
            u64 edits = 0, bases = 0;
            for (int i = 0; i < 120; ++i) {
                auto pair = sim.simulatePair();
                DnaSequence win =
                    ref.window(pair.first.truthPos, 150 + 30);
                if (win.size() != 180)
                    continue;
                edits += editToWindowPrefix(pair.first.seq, win);
                bases += pair.first.seq.size();
            }
            double measured = static_cast<double>(edits) / bases;
            EXPECT_GT(measured, rate * 0.55)
                << "rate " << rate << " seed " << seed;
            EXPECT_LT(measured, rate * 1.35 + 0.005)
                << "rate " << rate << " seed " << seed;
        }
    }
}

TEST(LongReadSimulator, LengthsAndTruth)
{
    Reference ref = generateGenome(smallGenome(400000));
    DiploidGenome dg(ref, VariantParams{});
    LongReadSimParams lp;
    lp.meanLen = 5000;
    lp.sdLen = 1000;
    lp.minLen = 1000;
    LongReadSimulator sim(dg, lp);
    for (int i = 0; i < 20; ++i) {
        auto read = sim.simulateRead();
        EXPECT_GE(read.seq.size(), 1000u);
        EXPECT_NE(read.truthPos, kInvalidPos);
    }
}

TEST(Datasets, ThreeProfilesBuild)
{
    auto sets = buildPaperDatasets(1 << 17, 100);
    ASSERT_EQ(sets.size(), 3u);
    for (const auto &ds : sets) {
        EXPECT_EQ(ds.pairs.size(), 100u);
        EXPECT_TRUE(ds.reference);
        EXPECT_TRUE(ds.diploid);
    }
    // Shared genome: same reference across the three datasets.
    EXPECT_EQ(sets[0].reference->chromosome(0),
              sets[1].reference->chromosome(0));
}

} // namespace
