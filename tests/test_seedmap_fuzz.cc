/**
 * @file
 * Format-fuzz wall for the SeedMap v2 image: every header and directory
 * byte bit-flipped, truncation at every section boundary, every
 * checksum corrupted. The contract under test: loadSeedMap and
 * SeedMapImage::open must reject a damaged image with a diagnostic —
 * never crash, never silently accept. The ASan/UBSan CI job runs this
 * suite too, so any out-of-bounds parse is caught even when it would
 * not change the verdict.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "genpair/seedmap_io.hh"
#include "simdata/genome_generator.hh"
#include "util/xxhash.hh"

namespace {

using namespace gpx;
using genomics::Reference;
using genpair::SeedMap;
using genpair::SeedMapImage;
using genpair::SeedMapImageHeaderV2;
using genpair::SeedMapOpenOptions;
using genpair::SeedMapParams;
using genpair::SeedMapShardDirEntry;

class SeedMapFuzzTest : public ::testing::Test
{
  protected:
    static constexpr u32 kShards = 4;

    void
    SetUp() override
    {
        simdata::GenomeParams gp;
        gp.length = 20000;
        gp.chromosomes = 2;
        gp.seed = 99;
        ref_ = simdata::generateGenome(gp);
        SeedMapParams sp;
        sp.tableBits = 12; // small table keeps the fuzz grid fast
        map_ = std::make_unique<SeedMap>(ref_, sp);

        std::ostringstream os;
        genpair::saveSeedMapV2(os, *map_, kShards);
        image_ = os.str();

        std::memcpy(&hdr_, image_.data(), sizeof(hdr_));
        ASSERT_EQ(hdr_.shardCount, kShards);
        ASSERT_EQ(hdr_.fileBytes, image_.size());
    }

    /** Write @p bytes to a temp file and return the path. */
    std::string
    writeTemp(const std::string &bytes, const std::string &tag)
    {
        std::string path = ::testing::TempDir() + "gpx_fuzz_" + tag +
                           ".gpx";
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.close();
        return path;
    }

    /** Both load paths must reject @p bytes with a diagnostic. */
    void
    expectRejected(const std::string &bytes, const std::string &what)
    {
        std::istringstream is(bytes);
        std::string loadError;
        EXPECT_FALSE(genpair::loadSeedMap(is, &loadError).has_value())
            << what << ": copy path accepted a damaged image";
        EXPECT_FALSE(loadError.empty())
            << what << ": copy path rejected without a diagnostic";

        std::string openError;
        EXPECT_FALSE(SeedMapImage::open(writeTemp(bytes, "rej"), {},
                                        &openError)
                         .has_value())
            << what << ": mmap path accepted a damaged image";
        EXPECT_FALSE(openError.empty())
            << what << ": mmap path rejected without a diagnostic";
    }

    /** Patch the image at @p offset and refresh the header checksum, so
        semantic validation (not the checksum) is what rejects. */
    std::string
    withPatchedHeader(std::size_t offset, const void *value,
                      std::size_t len)
    {
        std::string bytes = image_;
        std::memcpy(bytes.data() + offset, value, len);
        u64 sum = util::xxh64(bytes.data(),
                              sizeof(SeedMapImageHeaderV2) - sizeof(u64));
        std::memcpy(bytes.data() + sizeof(SeedMapImageHeaderV2) -
                        sizeof(u64),
                    &sum, sizeof(sum));
        return bytes;
    }

    Reference ref_;
    std::unique_ptr<SeedMap> map_;
    std::string image_;
    SeedMapImageHeaderV2 hdr_;
};

TEST_F(SeedMapFuzzTest, CleanImageRoundTripsOnBothPaths)
{
    std::istringstream is(image_);
    std::string error;
    auto loaded = genpair::loadSeedMap(is, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(loaded->rawSeedTable(), map_->rawSeedTable());
    EXPECT_EQ(loaded->rawLocationTable(), map_->rawLocationTable());
    EXPECT_EQ(loaded->params().seedLen, map_->params().seedLen);
    EXPECT_EQ(loaded->params().filterThreshold,
              map_->params().filterThreshold);

    auto opened = SeedMapImage::open(writeTemp(image_, "clean"), {},
                                     &error);
    ASSERT_TRUE(opened.has_value()) << error;
    EXPECT_TRUE(opened->mmapBacked());
    EXPECT_EQ(opened->shardCount(), kShards);
    genpair::SeedMapView view = opened->view();
    const genomics::DnaSequence &chrom = ref_.chromosome(0);
    for (u64 p = 0; p + 50 <= chrom.size(); p += 137) {
        u32 h = map_->hashSeed(chrom.sub(p, 50));
        auto want = map_->lookup(h);
        auto got = view.lookup(h);
        ASSERT_EQ(want.size(), got.size()) << "position " << p;
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(want[i], got[i]);
    }
}

TEST_F(SeedMapFuzzTest, EveryHeaderByteBitFlipRejected)
{
    // The header checksum covers bytes [0, 56); flipping any bit there
    // breaks it, and flipping the checksum itself breaks the match.
    for (std::size_t off = 0; off < sizeof(SeedMapImageHeaderV2); ++off) {
        std::string bytes = image_;
        bytes[off] = static_cast<char>(bytes[off] ^ 0x10);
        expectRejected(bytes,
                       "header byte " + std::to_string(off) + " flipped");
    }
}

TEST_F(SeedMapFuzzTest, EveryDirectoryByteBitFlipRejected)
{
    const std::size_t dirBegin = hdr_.directoryOffset;
    const std::size_t dirBytes =
        std::size_t{ hdr_.shardCount } * sizeof(SeedMapShardDirEntry);
    for (std::size_t off = dirBegin; off < dirBegin + dirBytes; ++off) {
        std::string bytes = image_;
        bytes[off] = static_cast<char>(bytes[off] ^ 0x04);
        expectRejected(bytes, "directory byte " + std::to_string(off) +
                                  " flipped");
    }
}

TEST_F(SeedMapFuzzTest, TruncationAtEverySectionBoundaryRejected)
{
    // Section boundaries: header end, directory end, every shard's seed
    // table and location section start, plus one byte short of EOF.
    std::vector<std::size_t> cuts = {
        0, 1, sizeof(u32), 2 * sizeof(u32), sizeof(SeedMapImageHeaderV2)
    };
    cuts.push_back(hdr_.directoryOffset +
                   std::size_t{ hdr_.shardCount } *
                       sizeof(SeedMapShardDirEntry));
    for (u32 s = 0; s < hdr_.shardCount; ++s) {
        SeedMapShardDirEntry ent;
        std::memcpy(&ent,
                    image_.data() + hdr_.directoryOffset +
                        std::size_t{ s } * sizeof(ent),
                    sizeof(ent));
        cuts.push_back(ent.seedTableOffset);
        cuts.push_back(ent.locationOffset);
    }
    cuts.push_back(image_.size() - 1);

    for (std::size_t cut : cuts) {
        ASSERT_LT(cut, image_.size());
        expectRejected(image_.substr(0, cut),
                       "truncated at byte " + std::to_string(cut));
    }
}

TEST_F(SeedMapFuzzTest, EveryPayloadSectionCorruptionRejected)
{
    for (u32 s = 0; s < hdr_.shardCount; ++s) {
        SeedMapShardDirEntry ent;
        std::memcpy(&ent,
                    image_.data() + hdr_.directoryOffset +
                        std::size_t{ s } * sizeof(ent),
                    sizeof(ent));
        {
            std::string bytes = image_;
            std::size_t mid =
                ent.seedTableOffset + ent.seedTableEntries * 2;
            bytes[mid] = static_cast<char>(bytes[mid] ^ 0x40);
            expectRejected(bytes, "shard " + std::to_string(s) +
                                      " seed table corrupted");
        }
        if (ent.locationEntries > 0) {
            std::string bytes = image_;
            std::size_t mid =
                ent.locationOffset + ent.locationEntries * 2;
            bytes[mid] = static_cast<char>(bytes[mid] ^ 0x40);
            expectRejected(bytes, "shard " + std::to_string(s) +
                                      " location table corrupted");
        }
    }
}

TEST_F(SeedMapFuzzTest, SemanticViolationsRejectedPastTheChecksum)
{
    // These patches keep the header checksum valid, so the *semantic*
    // validators — not the checksum — must reject.
    u32 three = 3; // not a power of two
    expectRejected(withPatchedHeader(offsetof(SeedMapImageHeaderV2,
                                              shardCount),
                                     &three, sizeof(three)),
                   "shardCount=3");
    u32 bits = 31;
    expectRejected(withPatchedHeader(offsetof(SeedMapImageHeaderV2,
                                              tableBits),
                                     &bits, sizeof(bits)),
                   "tableBits=31");
    u32 seedLen = 4;
    expectRejected(withPatchedHeader(offsetof(SeedMapImageHeaderV2,
                                              seedLen),
                                     &seedLen, sizeof(seedLen)),
                   "seedLen=4");
    u64 wrongSize = image_.size() + genpair::kSeedMapSectionAlign;
    expectRejected(withPatchedHeader(offsetof(SeedMapImageHeaderV2,
                                              fileBytes),
                                     &wrongSize, sizeof(wrongSize)),
                   "fileBytes too large");
    u64 badDir = image_.size() + 64;
    expectRejected(withPatchedHeader(offsetof(SeedMapImageHeaderV2,
                                              directoryOffset),
                                     &badDir, sizeof(badDir)),
                   "directory beyond EOF");
}

TEST_F(SeedMapFuzzTest, GarbageAndWrongVersionsRejected)
{
    expectRejected(std::string(), "empty image");
    expectRejected(std::string("GPX"), "three bytes");
    expectRejected(std::string(4096, '\0'), "all zeros");
    expectRejected(std::string("not a seedmap image at all — just text"),
                   "text file");

    std::string bytes = image_;
    u32 version = 3;
    std::memcpy(bytes.data() + sizeof(u32), &version, sizeof(version));
    expectRejected(bytes, "version=3");
}

TEST_F(SeedMapFuzzTest, NonMonotoneCsrRejectedEvenWithValidChecksums)
{
    // The adversarial case checksums cannot catch: an *authored* image
    // whose checksums are all self-consistent but whose CSR is bogus.
    // An interior entry of 0xFFFFFFFF would turn the first unlucky
    // lookup() into an out-of-bounds span; the structural validator
    // must reject it at open time on both load paths.
    std::string bytes = image_;
    SeedMapShardDirEntry ent;
    std::memcpy(&ent, bytes.data() + hdr_.directoryOffset, sizeof(ent));

    // Poison an interior local-CSR entry of shard 0.
    u32 poison = 0xFFFFFFFFu;
    std::memcpy(bytes.data() + ent.seedTableOffset +
                    (ent.seedTableEntries / 2) * sizeof(u32),
                &poison, sizeof(poison));

    // Re-checksum the seed table section, the directory, the header.
    ent.seedTableChecksum =
        util::xxh64(bytes.data() + ent.seedTableOffset,
                    ent.seedTableEntries * sizeof(u32));
    std::memcpy(bytes.data() + hdr_.directoryOffset, &ent, sizeof(ent));
    u64 dirSum = util::xxh64(bytes.data() + hdr_.directoryOffset,
                             std::size_t{ hdr_.shardCount } *
                                 sizeof(SeedMapShardDirEntry));
    std::memcpy(bytes.data() + offsetof(SeedMapImageHeaderV2,
                                        directoryChecksum),
                &dirSum, sizeof(dirSum));
    u64 hdrSum = util::xxh64(bytes.data(),
                             sizeof(SeedMapImageHeaderV2) - sizeof(u64));
    std::memcpy(bytes.data() + sizeof(SeedMapImageHeaderV2) -
                    sizeof(u64),
                &hdrSum, sizeof(hdrSum));

    std::string error;
    EXPECT_FALSE(
        SeedMapImage::open(writeTemp(bytes, "mono"), {}, &error)
            .has_value());
    EXPECT_NE(error.find("monotone"), std::string::npos) << error;
    expectRejected(bytes, "non-monotone CSR with valid checksums");
}

TEST_F(SeedMapFuzzTest, StructuralCsrChecksRunEvenWithoutPayloadVerify)
{
    // Corrupt shard 0's local CSR first entry (must be 0). With payload
    // verification off the checksum cannot catch it; the structural
    // validator must.
    SeedMapShardDirEntry ent;
    std::memcpy(&ent, image_.data() + hdr_.directoryOffset, sizeof(ent));
    std::string bytes = image_;
    u32 bad = 7;
    std::memcpy(bytes.data() + ent.seedTableOffset, &bad, sizeof(bad));

    SeedMapOpenOptions opts;
    opts.verifyPayload = false;
    std::string error;
    EXPECT_FALSE(SeedMapImage::open(writeTemp(bytes, "csr"), opts,
                                    &error)
                     .has_value());
    EXPECT_NE(error.find("CSR"), std::string::npos) << error;
}

TEST_F(SeedMapFuzzTest, SkippingPayloadVerifyStillServesCleanImages)
{
    SeedMapOpenOptions opts;
    opts.verifyPayload = false;
    std::string error;
    auto opened =
        SeedMapImage::open(writeTemp(image_, "noverify"), opts, &error);
    ASSERT_TRUE(opened.has_value()) << error;
    EXPECT_TRUE(opened->mmapBacked());
    u32 h = map_->hashSeed(ref_.chromosome(0).sub(100, 50));
    auto want = map_->lookup(h);
    auto got = opened->view().lookup(h);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(want[i], got[i]);
}

TEST_F(SeedMapFuzzTest, ForceCopyOptionMaterializesV2)
{
    SeedMapOpenOptions opts;
    opts.forceCopy = true;
    std::string error;
    auto opened =
        SeedMapImage::open(writeTemp(image_, "copy"), opts, &error);
    ASSERT_TRUE(opened.has_value()) << error;
    EXPECT_FALSE(opened->mmapBacked());
    u32 h = map_->hashSeed(ref_.chromosome(1).sub(333, 50));
    auto want = map_->lookup(h);
    auto got = opened->view().lookup(h);
    ASSERT_EQ(want.size(), got.size());
}

TEST_F(SeedMapFuzzTest, V1ImagesOpenThroughTheLegacyPath)
{
    std::ostringstream os;
    genpair::saveSeedMap(os, *map_);
    std::string error;
    auto opened =
        SeedMapImage::open(writeTemp(os.str(), "v1"), {}, &error);
    ASSERT_TRUE(opened.has_value()) << error;
    EXPECT_FALSE(opened->mmapBacked());
    EXPECT_EQ(opened->shardCount(), 1u);
    const genomics::DnaSequence &chrom = ref_.chromosome(0);
    for (u64 p = 0; p + 50 <= chrom.size(); p += 211) {
        u32 h = map_->hashSeed(chrom.sub(p, 50));
        auto want = map_->lookup(h);
        auto got = opened->view().lookup(h);
        ASSERT_EQ(want.size(), got.size()) << "position " << p;
    }
}

TEST_F(SeedMapFuzzTest, SingleShardAndManyShardImagesAgree)
{
    for (u32 shards : { 1u, 2u, 16u }) {
        std::ostringstream os;
        genpair::saveSeedMapV2(os, *map_, shards);
        std::string error;
        std::string tag = "shards";
        tag += std::to_string(shards); // two steps: gcc-12 -Wrestrict FP
        auto opened =
            SeedMapImage::open(writeTemp(os.str(), tag), {}, &error);
        ASSERT_TRUE(opened.has_value()) << error;
        EXPECT_EQ(opened->shardCount(), shards);
        const genomics::DnaSequence &chrom = ref_.chromosome(0);
        for (u64 p = 0; p + 50 <= chrom.size(); p += 173) {
            u32 h = map_->hashSeed(chrom.sub(p, 50));
            auto want = map_->lookup(h);
            auto got = opened->view().lookup(h);
            ASSERT_EQ(want.size(), got.size())
                << shards << " shards, position " << p;
            for (std::size_t i = 0; i < want.size(); ++i)
                EXPECT_EQ(want[i], got[i]);
        }
    }
}

} // namespace
