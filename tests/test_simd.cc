/**
 * @file
 * Property tests pinning the SIMD-across-batch kernels lane-for-lane
 * against their scalar oracles, across every backend the host can run
 * (scalar / AVX2 / AVX-512), ragged final lane groups, window
 * straddles and mixed bands. The batch kernels promise bit-identical
 * output — not "close", identical — so every comparison here is exact
 * equality on scores, positions, cell counts, mask words and CIGARs.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "align/affine.hh"
#include "align/shd.hh"
#include "filters/mask_ops.hh"
#include "filters/shd_filter.hh"
#include "genomics/reference.hh"
#include "genomics/scoring.hh"
#include "genpair/light_align.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace {

using namespace gpx;
using genomics::DnaSequence;
using genomics::Reference;
using util::SimdBackend;

/**
 * Run @p fn under every backend the host supports, restoring the
 * session's backend afterwards. On a host without AVX2 the wider
 * requests clamp to scalar; skip those to avoid re-running the scalar
 * comparison under a misleading name.
 */
template <typename Fn>
void
forEachBackend(Fn &&fn)
{
    const SimdBackend prev = util::activeSimdBackend();
    for (SimdBackend want :
         { SimdBackend::Scalar, SimdBackend::Avx2, SimdBackend::Avx512 }) {
        const SimdBackend got = util::forceSimdBackend(want);
        if (got != want)
            continue; // host can't run it; clamped
        SCOPED_TRACE(std::string("backend=") + util::simdBackendName(got));
        fn();
    }
    util::forceSimdBackend(prev);
}

DnaSequence
randomSeq(util::Pcg32 &rng, u64 len)
{
    std::string s;
    for (u64 i = 0; i < len; ++i)
        s.push_back(genomics::baseToChar(rng.below(4)));
    return DnaSequence(s);
}

Reference
randomRef(u64 len, u64 seed)
{
    util::Pcg32 rng(seed);
    std::string s;
    for (u64 i = 0; i < len; ++i)
        s.push_back(genomics::baseToChar(rng.below(4)));
    Reference ref;
    ref.addChromosome("chr1", DnaSequence(s));
    return ref;
}

TEST(Simd, BackendNamesAndClamping)
{
    EXPECT_STREQ(util::simdBackendName(SimdBackend::Scalar), "scalar");
    EXPECT_STREQ(util::simdBackendName(SimdBackend::Avx2), "avx2");
    EXPECT_STREQ(util::simdBackendName(SimdBackend::Avx512), "avx512");

    const SimdBackend prev = util::activeSimdBackend();
    // A forced request never exceeds what the host supports, and the
    // install is reflected by activeSimdBackend.
    for (SimdBackend want :
         { SimdBackend::Scalar, SimdBackend::Avx2, SimdBackend::Avx512 }) {
        const SimdBackend got = util::forceSimdBackend(want);
        EXPECT_LE(static_cast<int>(got),
                  static_cast<int>(util::maxSimdBackend()));
        EXPECT_EQ(got, util::activeSimdBackend());
    }
    EXPECT_FALSE(util::simdBackendReason().empty());
    util::forceSimdBackend(prev);

    EXPECT_EQ(util::simdDpLanes(SimdBackend::Scalar), 1u);
    EXPECT_EQ(util::simdDpLanes(SimdBackend::Avx2), 8u);
    EXPECT_EQ(util::simdDpLanes(SimdBackend::Avx512), 16u);
    EXPECT_EQ(util::simdMaskLanes(SimdBackend::Scalar), 1u);
    EXPECT_EQ(util::simdMaskLanes(SimdBackend::Avx2), 4u);
    EXPECT_EQ(util::simdMaskLanes(SimdBackend::Avx512), 8u);
}

TEST(Simd, ZeroRunCountMatchesBitwalkOracle)
{
    util::Pcg32 rng(2024);
    for (int iter = 0; iter < 400; ++iter) {
        align::HammingMask mask;
        mask.bits = 1 + rng.below(300);
        mask.words.assign((mask.bits + 63) / 64, 0);
        // Mix densities so runs of both parities straddle word edges.
        const u32 density = 1 + rng.below(7);
        for (u32 i = 0; i < mask.bits; ++i)
            if (rng.below(8) < density)
                mask.words[i >> 6] |= u64{ 1 } << (i & 63u);
        // Leave junk above mask.bits in the last word on some iters:
        // zeroRunCount must ignore it.
        if ((mask.bits & 63u) != 0 && rng.below(2))
            mask.words.back() |= ~u64{ 0 } << (mask.bits & 63u);
        ASSERT_EQ(filters::zeroRunCount(mask), filters::zeroRunCountRef(mask))
            << "bits=" << mask.bits << " iter=" << iter;
    }

    // Edge shapes: all-zero, all-one, exact word multiples.
    for (u32 bits : { 1u, 63u, 64u, 65u, 128u, 192u }) {
        align::HammingMask zeros, ones;
        zeros.bits = ones.bits = bits;
        zeros.words.assign((bits + 63) / 64, 0);
        ones.words.assign((bits + 63) / 64, ~u64{ 0 });
        EXPECT_EQ(filters::zeroRunCount(zeros), 1u) << bits;
        EXPECT_EQ(filters::zeroRunCount(ones), 0u) << bits;
        EXPECT_EQ(filters::zeroRunCountRef(zeros), 1u) << bits;
        EXPECT_EQ(filters::zeroRunCountRef(ones), 0u) << bits;
    }
}

TEST(Simd, ShdBatchMatchesScalarMasks)
{
    forEachBackend([] {
        util::Pcg32 rng(7001);
        align::ShdBatch batch;
        std::vector<align::HammingMask> want;
        for (int iter = 0; iter < 120; ++iter) {
            const u32 e = 1 + rng.below(7);
            const u32 n = 30 + rng.below(170);
            const u32 center = e + rng.below(80);
            const u32 L = 1 + rng.below(9); // ragged vs lane width
            batch.begin(L, n, center, e);
            std::vector<DnaSequence> reads, wins;
            std::vector<align::BitPlanes> rp(L), wp(L);
            for (u32 l = 0; l < L; ++l) {
                reads.push_back(randomSeq(rng, n));
                // Windows from shorter-than-read (straddle) to ample.
                const u32 wlen = center + rng.below(n + 2 * e + 40);
                wins.push_back(randomSeq(rng, wlen ? wlen : 1));
                rp[l].assign(reads[l]);
                wp[l].assign(wins[l]);
                batch.setLane(l, rp[l], wp[l]);
            }
            batch.run();
            for (u32 l = 0; l < L; ++l) {
                align::shiftedMasksInto(rp[l], wp[l], center, e, want);
                for (u32 s = 0; s < batch.shifts(); ++s) {
                    for (u32 w = 0; w < batch.readWords; ++w)
                        ASSERT_EQ(batch.maskWord(s, w, l), want[s].words[w])
                            << "iter=" << iter << " l=" << l << " s=" << s
                            << " w=" << w << " n=" << n
                            << " center=" << center << " e=" << e
                            << " win=" << wins[l].size();
                    ASSERT_EQ(batch.pop(s, l), want[s].popcount());
                    ASSERT_EQ(batch.pre(s, l), want[s].onesPrefix());
                    ASSERT_EQ(batch.suf(s, l), want[s].onesSuffix());
                }
            }
        }
    });
}

TEST(Simd, FitAlignBatchMatchesScalar)
{
    const genomics::ScoringScheme sc = genomics::ScoringScheme::shortRead();
    forEachBackend([&sc] {
        util::Pcg32 rng(9113);
        align::BatchAlignScratch bscr;
        align::AlignScratch sscr;
        for (int iter = 0; iter < 50; ++iter) {
            const std::size_t count = 1 + rng.below(25);
            std::vector<DnaSequence> qs, ts;
            std::vector<align::FitTask> tasks;
            u64 m = 20 + rng.below(180);
            for (std::size_t k = 0; k < count; ++k) {
                if (rng.below(5) == 0)
                    m = 20 + rng.below(180); // new length -> new lane group
                DnaSequence q = randomSeq(rng, m);
                DnaSequence t;
                if (rng.below(2)) {
                    // Mutated copy: mismatches, deletions, insertions.
                    std::string body;
                    for (u64 i = 0; i < m; ++i) {
                        const u32 r = rng.below(20);
                        char b = genomics::baseToChar(q.at(i));
                        if (r == 0)
                            b = genomics::baseToChar(rng.below(4));
                        if (r == 1)
                            continue;
                        body.push_back(b);
                        if (r == 2)
                            body.push_back(genomics::baseToChar(rng.below(4)));
                    }
                    std::string pad;
                    for (int i = 0; i < 30; ++i)
                        pad.push_back(genomics::baseToChar(rng.below(4)));
                    t = DnaSequence(pad + body + pad);
                } else {
                    t = randomSeq(rng, 1 + rng.below(m + 120));
                }
                qs.push_back(std::move(q));
                ts.push_back(std::move(t));
            }
            for (std::size_t k = 0; k < count; ++k) {
                align::FitTask ft;
                ft.query = qs[k];
                ft.target = ts[k];
                const u32 r = rng.below(4);
                ft.band = -1;
                if (r == 0)
                    ft.band = static_cast<i32>(8 + rng.below(40));
                if (r == 1)
                    ft.band = 80;
                if (r == 2)
                    ft.band = 128;
                tasks.push_back(ft);
            }
            std::vector<align::AlignResult> got(count);
            align::fitAlignBatch(tasks.data(), count, sc, bscr, got.data());
            for (std::size_t k = 0; k < count; ++k) {
                const align::AlignResult want = align::fitAlign(
                    tasks[k].query, tasks[k].target, sc, tasks[k].band, sscr);
                SCOPED_TRACE("iter=" + std::to_string(iter) +
                             " k=" + std::to_string(k) +
                             " m=" + std::to_string(tasks[k].query.size()) +
                             " n=" + std::to_string(tasks[k].target.size()) +
                             " band=" + std::to_string(tasks[k].band));
                ASSERT_EQ(want.valid, got[k].valid);
                ASSERT_EQ(want.score, got[k].score);
                ASSERT_EQ(want.targetStart, got[k].targetStart);
                ASSERT_EQ(want.targetEnd, got[k].targetEnd);
                ASSERT_EQ(want.cellUpdates, got[k].cellUpdates);
                ASSERT_EQ(want.cigar.toString(), got[k].cigar.toString());
            }
        }
    });
}

TEST(Simd, ShdFilterBatchMatchesScalar)
{
    filters::ShdFilter filter;
    forEachBackend([&filter] {
        util::Pcg32 rng(5521);
        for (int iter = 0; iter < 60; ++iter) {
            const u32 e = 1 + rng.below(5);
            const u32 n = 40 + rng.below(140);
            const u32 center = e + rng.below(40);
            const std::size_t count = 1 + rng.below(13);
            const DnaSequence read = randomSeq(rng, n);
            std::vector<DnaSequence> winSeqs;
            for (std::size_t i = 0; i < count; ++i) {
                if (rng.below(2)) {
                    // Window embedding the read (should mostly accept).
                    DnaSequence w = randomSeq(rng, center + n + e + 10);
                    for (u32 j = 0; j < n; ++j) {
                        u8 b = read.at(j);
                        if (rng.below(40) == 0)
                            b = static_cast<u8>(rng.below(4));
                        w.set(center + j, b);
                    }
                    winSeqs.push_back(std::move(w));
                } else {
                    const u32 wlen = center + rng.below(n + 2 * e + 20);
                    winSeqs.push_back(randomSeq(rng, wlen ? wlen : 1));
                }
            }
            std::vector<genomics::DnaView> views;
            for (const auto &w : winSeqs)
                views.push_back(w);
            std::vector<filters::FilterDecision> got(count);
            filter.evaluateBatch(read, views.data(), count, center, e,
                                 got.data());
            for (std::size_t i = 0; i < count; ++i) {
                const filters::FilterDecision want =
                    filter.evaluate(read, views[i], center, e);
                ASSERT_EQ(want.accept, got[i].accept)
                    << "iter=" << iter << " i=" << i;
                ASSERT_EQ(want.estimatedEdits, got[i].estimatedEdits)
                    << "iter=" << iter << " i=" << i;
            }
        }
    });
}

TEST(Simd, LightAlignBatchMatchesScalar)
{
    const Reference ref = randomRef(6000, 417);
    genpair::LightAlignParams params;
    const genpair::LightAligner aligner(ref, params);
    forEachBackend([&ref, &aligner, &params] {
        util::Pcg32 rng(31337);
        genpair::LightBatchScratch scratch;
        for (int iter = 0; iter < 40; ++iter) {
            const std::size_t count = 1 + rng.below(21);
            std::vector<DnaSequence> reads;
            std::vector<align::BitPlanes> planes;
            std::vector<genpair::LightBatchItem> items;
            reads.reserve(count);
            planes.reserve(count);
            u64 len = 100 + 10 * rng.below(8);
            for (std::size_t i = 0; i < count; ++i) {
                if (rng.below(4) == 0)
                    len = 100 + 10 * rng.below(8); // ragged lane groups
                GlobalPos pos = rng.below(5800);
                if (rng.below(8) == 0)
                    pos = rng.below(2 * params.maxShift); // left edge
                if (rng.below(16) == 0)
                    pos = 5900 + rng.below(100); // straddles the ref end
                DnaSequence read = ref.window(pos, len);
                if (read.size() != len)
                    read = randomSeq(rng, len); // truncated: noise read
                // Sprinkle the Table-1 edit classes and noise.
                const u32 mode = rng.below(4);
                if (mode == 1)
                    for (u32 k = 0; k < 1 + rng.below(4); ++k)
                        read.set(rng.below(static_cast<u32>(len)),
                                 static_cast<u8>(rng.below(4)));
                if (mode == 2)
                    read = randomSeq(rng, len); // hopeless candidate
                reads.push_back(std::move(read));
                planes.emplace_back(reads.back());
                items.push_back({ &planes.back(), pos });
            }
            std::vector<genpair::LightResult> got(count);
            aligner.alignBatch(items.data(), count, scratch, got.data());
            for (std::size_t i = 0; i < count; ++i) {
                const genpair::LightResult want =
                    aligner.align(reads[i], items[i].candidate);
                SCOPED_TRACE("iter=" + std::to_string(iter) +
                             " i=" + std::to_string(i) + " pos=" +
                             std::to_string(items[i].candidate) +
                             " len=" + std::to_string(reads[i].size()));
                ASSERT_EQ(want.aligned, got[i].aligned);
                ASSERT_EQ(want.score, got[i].score);
                ASSERT_EQ(want.pos, got[i].pos);
                ASSERT_EQ(want.hypothesesTried, got[i].hypothesesTried);
                ASSERT_EQ(want.cigar.toString(), got[i].cigar.toString());
            }
        }
    });
}

} // namespace
