/**
 * @file
 * Tests for the scenario wall (src/scenario): the registry shape the
 * CI gate depends on, reduced-scale end-to-end runs of each workload
 * family, and the format:1 JSON document consumed by
 * scripts/check_scenarios.py.
 *
 * Runs here use ScenarioOptions::scale well below 1 so the full
 * simulate -> index -> map -> evaluate path stays cheap under the
 * sanitizers; the scale-1 floors live in BENCH_scenarios.json and are
 * gated by the smoke job, not here.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "scenario/scenario.hh"
#include "util/gzip_stream.hh"

namespace {

using namespace gpx;
using scenario::ScenarioKind;
using scenario::ScenarioOptions;
using scenario::ScenarioResult;
using scenario::ScenarioSpec;

ScenarioOptions
reducedScale(double scale)
{
    ScenarioOptions options;
    options.scale = scale;
    options.threads = 2; // accuracy is thread-count independent
    options.workDir = ::testing::TempDir();
    return options;
}

ScenarioResult
runByName(const std::string &name, double scale)
{
    const ScenarioSpec *spec = scenario::findScenario(name);
    EXPECT_NE(spec, nullptr) << name;
    return scenario::runScenario(*spec, reducedScale(scale));
}

TEST(ScenarioTable, CoversEveryPinnedWorkloadFamily)
{
    const auto &table = scenario::scenarioTable();
    EXPECT_GE(table.size(), 10u);

    std::set<std::string> names;
    u32 longRead = 0, highError = 0, contamination = 0, gzip = 0;
    u32 truncation = 0, variantLeg = 0;
    for (const auto &spec : table) {
        EXPECT_TRUE(names.insert(spec.name).second)
            << "duplicate scenario name: " << spec.name;
        EXPECT_FALSE(spec.note.empty()) << spec.name;
        longRead += spec.kind == ScenarioKind::kLongRead;
        highError += spec.errorRate >= 0.10;
        contamination += spec.kind == ScenarioKind::kContamination;
        gzip += spec.kind == ScenarioKind::kGzipIngest;
        truncation += spec.kind == ScenarioKind::kTruncatedIngest;
        variantLeg += spec.plantVariants;
    }
    EXPECT_GE(longRead, 1u);
    EXPECT_GE(highError, 2u);
    EXPECT_GE(contamination, 1u);
    EXPECT_GE(gzip, 1u);
    EXPECT_GE(truncation, 1u);
    EXPECT_GE(variantLeg, 1u);
}

TEST(ScenarioTable, LookupByName)
{
    const ScenarioSpec *spec = scenario::findScenario("short_baseline");
    ASSERT_NE(spec, nullptr);
    EXPECT_EQ(spec->kind, ScenarioKind::kShortRead);
    EXPECT_TRUE(spec->plantVariants);
    EXPECT_EQ(scenario::findScenario("no_such_scenario"), nullptr);
}

TEST(ScenarioRun, BaselineMapsAndCallsVariantsAtReducedScale)
{
    ScenarioResult row = runByName("short_baseline", 0.2);
    ASSERT_FALSE(row.skipped) << row.skipReason;
    ASSERT_FALSE(row.rejected) << row.rejectDiagnostic;
    EXPECT_GT(row.reads, 0u);
    EXPECT_GT(row.accuracy, 0.97);
    // The variant leg must have run (F1 fields default to -1).
    EXPECT_GE(row.snpF1, 0.7);
    EXPECT_GE(row.indelF1, 0.0);
}

TEST(ScenarioRun, ErrorSweepDegradesMonotonically)
{
    ScenarioResult e5 = runByName("short_err5", 0.15);
    ScenarioResult e10 = runByName("short_err10", 0.15);
    ScenarioResult e15 = runByName("short_err15", 0.15);
    ASSERT_FALSE(e5.skipped || e10.skipped || e15.skipped);
    EXPECT_GT(e5.accuracy, 0.6);
    // Same genome and seeds across the sweep; only the error rate
    // moves, so accuracy must fall (small epsilon for sampling noise
    // at the reduced read count).
    EXPECT_GT(e5.accuracy, e10.accuracy - 0.02);
    EXPECT_GT(e10.accuracy, e15.accuracy - 0.02);
    EXPECT_LT(e15.accuracy, e5.accuracy);
}

TEST(ScenarioRun, ContaminationAttributesReadsPerSpecies)
{
    ScenarioResult row = runByName("contam_mix10", 0.25);
    ASSERT_FALSE(row.skipped) << row.skipReason;
    // The index must really be the deployment path: a multi-shard v2
    // image mounted through mmap, not the in-memory SeedMap.
    EXPECT_EQ(row.shardCount, 4u);
    ASSERT_EQ(row.attribution.size(), 2u);
    EXPECT_EQ(row.attribution[0].label, "host");
    EXPECT_EQ(row.attribution[1].label, "contaminant");
    for (const auto &region : row.attribution) {
        EXPECT_GT(region.readsTotal, 0u) << region.label;
        EXPECT_LT(region.crossFraction(), 0.05) << region.label;
    }
    EXPECT_GT(row.accuracy, 0.95);
}

TEST(ScenarioRun, TruncatedIngestRejectsWithDiagnostic)
{
    ScenarioResult row = runByName("trunc_reject", 0.25);
    ASSERT_FALSE(row.skipped) << row.skipReason;
    EXPECT_TRUE(row.rejected);
    ASSERT_FALSE(row.rejectDiagnostic.empty());
    EXPECT_NE(row.rejectDiagnostic.find("record"), std::string::npos)
        << row.rejectDiagnostic;
}

TEST(ScenarioRun, GzipRunIsBitIdenticalToPlain)
{
    if (!util::gzipSupported())
        GTEST_SKIP() << "binary built without zlib";
    ScenarioResult row = runByName("gzip_ingest", 0.2);
    ASSERT_FALSE(row.skipped) << row.skipReason;
    ASSERT_FALSE(row.rejected) << row.rejectDiagnostic;
    EXPECT_TRUE(row.samMatchesPlain);
    // The scenario sprinkles N bases into R1; the ingest accounting
    // must carry them through the inflate path to the stats.
    EXPECT_GE(row.ambiguousBases, 1u);
    EXPECT_GT(row.accuracy, 0.95);
}

TEST(ScenarioJson, DocumentCarriesTheGatedFields)
{
    ScenarioResult ok;
    ok.name = "fake_ok";
    ok.kind = ScenarioKind::kContamination;
    ok.reads = 100;
    ok.mapped = 99;
    ok.correct = 98;
    ok.accuracy = 0.98;
    ok.shardCount = 4;
    eval::RegionAccuracy region;
    region.label = "host";
    region.readsTotal = 90;
    region.mapped = 89;
    region.crossMapped = 1;
    ok.attribution.push_back(region);
    ScenarioResult rej;
    rej.name = "fake_reject";
    rej.kind = ScenarioKind::kTruncatedIngest;
    rej.rejected = true;
    rej.rejectDiagnostic = "truncated \"record\"\n";

    std::ostringstream os;
    scenario::writeScenariosJson(os, { ok, rej }, 1.0, 4);
    const std::string doc = os.str();
    for (const char *key :
         { "\"bench\": \"scenarios\"", "\"format\": 1", "\"scale\": 1",
           "\"name\": \"fake_ok\"", "\"kind\": \"contamination\"",
           "\"accuracy\": 0.98", "\"shard_count\": 4",
           "\"attribution\": [{\"label\": \"host\"",
           "\"cross_mapped\": 1", "\"rejected\": true",
           "\"sam_matches_plain\"", "\"ambiguous_bases\"" })
        EXPECT_NE(doc.find(key), std::string::npos) << key;
    // Quotes and newlines inside diagnostics must be escaped.
    EXPECT_NE(doc.find("truncated \\\"record\\\"\\n"), std::string::npos);
}

} // namespace
