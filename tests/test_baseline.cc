/**
 * @file
 * Unit tests for the minimizer index and the Mm2Lite baseline mapper.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/mm2lite.hh"
#include "simdata/datasets.hh"
#include "simdata/genome_generator.hh"
#include "simdata/read_simulator.hh"

namespace {

using namespace gpx;
using baseline::extractMinimizers;
using baseline::MinimizerIndex;
using baseline::MinimizerParams;
using baseline::Mm2Lite;
using baseline::Mm2LiteParams;
using genomics::DnaSequence;
using genomics::Reference;

Reference
testRef(u64 len = 200000)
{
    simdata::GenomeParams p;
    p.length = len;
    p.chromosomes = 1;
    p.seed = 21;
    return simdata::generateGenome(p);
}

TEST(Minimizers, DensityApproximatelyTwoOverW)
{
    Reference ref = testRef(100000);
    MinimizerParams mp;
    auto mins = extractMinimizers(ref.chromosome(0), mp);
    double density = static_cast<double>(mins.size()) /
                     ref.chromosome(0).size();
    EXPECT_GT(density, 0.5 / mp.w);
    EXPECT_LT(density, 4.0 / mp.w);
}

TEST(Minimizers, PositionsWithinRange)
{
    Reference ref = testRef(50000);
    MinimizerParams mp;
    auto mins = extractMinimizers(ref.chromosome(0), mp);
    for (const auto &m : mins)
        EXPECT_LE(m.pos + mp.k, ref.chromosome(0).size());
}

TEST(Minimizers, CanonicalUnderRevComp)
{
    // The canonical minimizer hashes of a sequence and its reverse
    // complement must be equal as sets.
    Reference ref = testRef(20000);
    DnaSequence fwd = ref.chromosome(0).sub(100, 400);
    DnaSequence rev = fwd.revComp();
    MinimizerParams mp;
    auto a = extractMinimizers(fwd, mp);
    auto b = extractMinimizers(rev, mp);
    std::vector<u64> ha, hb;
    for (const auto &m : a)
        ha.push_back(m.hash);
    for (const auto &m : b)
        hb.push_back(m.hash);
    std::sort(ha.begin(), ha.end());
    std::sort(hb.begin(), hb.end());
    ha.erase(std::unique(ha.begin(), ha.end()), ha.end());
    hb.erase(std::unique(hb.begin(), hb.end()), hb.end());
    EXPECT_EQ(ha, hb);
}

TEST(MinimizerIndex, LookupFindsIndexedPositions)
{
    Reference ref = testRef(50000);
    MinimizerParams mp;
    MinimizerIndex index(ref, mp);
    auto mins = extractMinimizers(ref.chromosome(0), mp);
    ASSERT_FALSE(mins.empty());
    u32 checked = 0;
    for (std::size_t i = 0; i < mins.size(); i += 37) {
        auto span = index.lookup(mins[i].hash);
        bool found = false;
        for (const auto &e : span)
            found |= e.pos == mins[i].pos;
        EXPECT_TRUE(found);
        ++checked;
    }
    EXPECT_GT(checked, 10u);
}

TEST(MinimizerIndex, UnknownHashEmpty)
{
    Reference ref = testRef(30000);
    MinimizerIndex index(ref, MinimizerParams{});
    EXPECT_TRUE(index.lookup(0xDEADBEEFDEADBEEFull).empty());
}

class Mm2LiteTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ref_ = testRef(200000);
        mapper_ = std::make_unique<Mm2Lite>(ref_, Mm2LiteParams{});
    }

    Reference ref_;
    std::unique_ptr<Mm2Lite> mapper_;
};

TEST_F(Mm2LiteTest, MapsExactForwardRead)
{
    genomics::Read read;
    read.seq = ref_.chromosome(0).sub(12345, 150);
    auto mappings = mapper_->mapRead(read);
    ASSERT_FALSE(mappings.empty());
    EXPECT_EQ(mappings[0].pos, 12345u);
    EXPECT_FALSE(mappings[0].reverse);
    EXPECT_EQ(mappings[0].score, 300);
}

TEST_F(Mm2LiteTest, MapsExactReverseRead)
{
    genomics::Read read;
    read.seq = ref_.chromosome(0).sub(54321, 150).revComp();
    auto mappings = mapper_->mapRead(read);
    ASSERT_FALSE(mappings.empty());
    EXPECT_EQ(mappings[0].pos, 54321u);
    EXPECT_TRUE(mappings[0].reverse);
}

TEST_F(Mm2LiteTest, MapsReadWithEdits)
{
    genomics::Read read;
    DnaSequence seq = ref_.chromosome(0).sub(33000, 150);
    seq.set(30, (seq.at(30) + 1) & 3u);
    seq.set(90, (seq.at(90) + 1) & 3u);
    read.seq = seq;
    auto mappings = mapper_->mapRead(read);
    ASSERT_FALSE(mappings.empty());
    EXPECT_EQ(mappings[0].pos, 33000u);
    EXPECT_EQ(mappings[0].score, 280);
}

TEST_F(Mm2LiteTest, AlignAtRecoversPosition)
{
    DnaSequence seq = ref_.chromosome(0).sub(44000, 150);
    auto m = mapper_->alignAt(seq, 44010, 24);
    ASSERT_TRUE(m.mapped);
    EXPECT_EQ(m.pos, 44000u);
    EXPECT_EQ(m.score, 300);
}

TEST_F(Mm2LiteTest, PairsProperFrOrientation)
{
    genomics::ReadPair pair;
    pair.first.seq = ref_.chromosome(0).sub(60000, 150);
    pair.second.seq = ref_.chromosome(0).sub(60250, 150).revComp();
    auto pm = mapper_->mapPair(pair);
    ASSERT_TRUE(pm.bothMapped());
    EXPECT_EQ(pm.first.pos, 60000u);
    EXPECT_EQ(pm.second.pos, 60250u);
    EXPECT_FALSE(pm.first.reverse);
    EXPECT_TRUE(pm.second.reverse);
}

TEST_F(Mm2LiteTest, StageTimersPopulated)
{
    genomics::Read read;
    read.seq = ref_.chromosome(0).sub(12345, 150);
    mapper_->mapRead(read);
    EXPECT_GT(mapper_->timers().total(), 0.0);
    EXPECT_GT(mapper_->timers().seconds(baseline::stages::kSeeding), 0.0);
}

TEST_F(Mm2LiteTest, DpWorkCounted)
{
    genomics::Read read;
    read.seq = ref_.chromosome(0).sub(12345, 150);
    mapper_->mapRead(read);
    EXPECT_GT(mapper_->dpWork().alignCells, 0u);
}

TEST(Mm2LiteSimulated, HighAccuracyOnSimulatedPairs)
{
    simdata::GenomeParams gp;
    gp.length = 300000;
    gp.chromosomes = 1;
    gp.seed = 42;
    Reference ref = simdata::generateGenome(gp);
    simdata::DiploidGenome dg(ref, simdata::VariantParams{});
    simdata::ReadSimParams rp;
    simdata::ReadSimulator sim(dg, rp);
    Mm2Lite mapper(ref, Mm2LiteParams{});

    u32 correct = 0;
    const u32 n = 60;
    for (u32 i = 0; i < n; ++i) {
        auto pair = sim.simulatePair();
        auto pm = mapper.mapPair(pair);
        if (pm.first.mapped) {
            u64 diff = pm.first.pos > pair.first.truthPos
                           ? pm.first.pos - pair.first.truthPos
                           : pair.first.truthPos - pm.first.pos;
            correct += diff <= 20 && !pm.first.reverse;
        }
    }
    EXPECT_GT(correct, n * 8 / 10);
}

} // namespace
