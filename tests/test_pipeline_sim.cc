/**
 * @file
 * Tests for the cycle-level GenPairX pipeline simulator: balanced
 * designs sustain the NMSL rate, under-provisioned stages backpressure,
 * and the inter-stage buffers absorb bursts.
 */

#include <gtest/gtest.h>

#include "hwsim/fifo.hh"
#include "hwsim/pipeline_sim.hh"

namespace {

using namespace gpx;
using namespace gpx::hwsim;

std::vector<PairWork>
uniformWorkload(u64 pairs, u32 iters, u32 aligns)
{
    std::vector<PairWork> w(pairs);
    for (auto &p : w) {
        p.paIterations = iters;
        p.lightAligns = aligns;
        p.bypassLight = false;
    }
    return w;
}

TEST(Fifo, PushPopOrderAndStats)
{
    Fifo<int> f(2);
    EXPECT_TRUE(f.tryPush(1));
    EXPECT_TRUE(f.tryPush(2));
    EXPECT_FALSE(f.tryPush(3)); // full
    EXPECT_EQ(f.rejections(), 1u);
    EXPECT_EQ(f.maxOccupancy(), 2u);
    EXPECT_EQ(f.pop(), 1);
    EXPECT_EQ(f.pop(), 2);
    EXPECT_TRUE(f.empty());
}

TEST(PipelineSim, BalancedDesignSustainsNmslRate)
{
    // The paper's Table 3 design at the paper's workload.
    PipelineSimConfig cfg;
    cfg.nmslMpairs = 192.7;
    cfg.paInstances = 3;
    cfg.laInstances = 174;
    auto workload = GenPairXPipelineSim::synthesizeWorkload(
        WorkloadProfile::paperDefault(), 20000, 5);
    auto res = GenPairXPipelineSim(cfg).run(workload);
    EXPECT_GT(res.efficiencyVsNmsl(cfg), 0.90);
}

TEST(PipelineSim, UnderProvisionedLightAlignThrottles)
{
    PipelineSimConfig cfg;
    cfg.nmslMpairs = 192.7;
    cfg.paInstances = 3;
    cfg.laInstances = 40; // far below the required 174
    auto workload = GenPairXPipelineSim::synthesizeWorkload(
        WorkloadProfile::paperDefault(), 10000, 6);
    auto res = GenPairXPipelineSim(cfg).run(workload);
    EXPECT_LT(res.efficiencyVsNmsl(cfg), 0.5);
    EXPECT_GT(res.laUtilization, 0.95);
    EXPECT_GT(res.sourceStallCycles, 0u);
}

TEST(PipelineSim, UnderProvisionedPaFilterThrottles)
{
    PipelineSimConfig cfg;
    cfg.nmslMpairs = 192.7;
    cfg.paInstances = 1; // needs 3
    cfg.laInstances = 174;
    auto workload = GenPairXPipelineSim::synthesizeWorkload(
        WorkloadProfile::paperDefault(), 10000, 7);
    auto res = GenPairXPipelineSim(cfg).run(workload);
    EXPECT_LT(res.efficiencyVsNmsl(cfg), 0.6);
    EXPECT_GT(res.paUtilization, 0.90);
}

TEST(PipelineSim, BypassPairsSkipLightAlignment)
{
    PipelineSimConfig cfg;
    cfg.nmslMpairs = 100.0;
    cfg.paInstances = 2;
    cfg.laInstances = 1; // tiny, but every pair bypasses it
    std::vector<PairWork> w(5000);
    for (auto &p : w) {
        p.paIterations = 10;
        p.lightAligns = 100;
        p.bypassLight = true;
    }
    auto res = GenPairXPipelineSim(cfg).run(w);
    EXPECT_GT(res.efficiencyVsNmsl(cfg), 0.9);
    EXPECT_EQ(res.laUtilization, 0.0);
}

TEST(PipelineSim, DeterministicForSameWorkload)
{
    PipelineSimConfig cfg;
    auto w = uniformWorkload(2000, 24, 12);
    auto a = GenPairXPipelineSim(cfg).run(w);
    auto b = GenPairXPipelineSim(cfg).run(w);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.buf2MaxOccupancy, b.buf2MaxOccupancy);
}

TEST(PipelineSim, BufferAbsorbsHeavyTail)
{
    // Identical mean work, one with a heavy tail: the deeper buffer
    // keeps the source from stalling.
    PipelineSimConfig shallow;
    shallow.bufferDepth = 4;
    shallow.nmslMpairs = 150;
    PipelineSimConfig deep = shallow;
    deep.bufferDepth = 2048;

    auto workload = GenPairXPipelineSim::synthesizeWorkload(
        WorkloadProfile::paperDefault(), 10000, 11);
    auto a = GenPairXPipelineSim(shallow).run(workload);
    auto b = GenPairXPipelineSim(deep).run(workload);
    EXPECT_GE(b.mpairsPerSec, a.mpairsPerSec);
    EXPECT_LE(b.sourceStallCycles, a.sourceStallCycles);
}

TEST(PipelineSim, SynthesizedWorkloadMatchesMeans)
{
    WorkloadProfile p = WorkloadProfile::paperDefault();
    auto w = GenPairXPipelineSim::synthesizeWorkload(p, 50000, 3);
    double iterSum = 0, alignSum = 0, bypass = 0;
    for (const auto &pw : w) {
        iterSum += pw.paIterations;
        alignSum += pw.lightAligns;
        bypass += pw.bypassLight;
    }
    EXPECT_NEAR(iterSum / w.size(), p.avgFilterIterationsPerPair, 2.0);
    EXPECT_NEAR(alignSum / w.size(), p.avgLightAlignsPerPair, 1.0);
    EXPECT_NEAR(bypass / w.size(), p.fullDpFrac(), 0.01);
}

} // namespace
