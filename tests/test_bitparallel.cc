/**
 * @file
 * Randomized property tests pitting every bit-parallel kernel against
 * its retained scalar oracle: Myers edit distance (exact, bounded,
 * semi-global), the word-level DnaView operations (revComp, equality,
 * Hamming distance, bit planes, materialization), zero-copy reference
 * windows vs copied windows, and the packed-word minimizer stream vs
 * the original per-base deque implementation.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/minimizer_index.hh"
#include "filters/edit_distance.hh"
#include "genomics/reference.hh"
#include "genomics/sequence.hh"
#include "util/rng.hh"

namespace {

using namespace gpx;
using genomics::DnaSequence;
using genomics::DnaView;

DnaSequence
randomSeq(util::Pcg32 &rng, std::size_t len)
{
    DnaSequence s;
    for (std::size_t i = 0; i < len; ++i)
        s.push(static_cast<u8>(rng.below(4)));
    return s;
}

/** Mutate @p s with a few random substitutions/indels. */
DnaSequence
mutate(util::Pcg32 &rng, const DnaSequence &s, u32 edits)
{
    std::string ascii = s.toString();
    for (u32 e = 0; e < edits && !ascii.empty(); ++e) {
        u32 kind = rng.below(3);
        std::size_t pos = rng.below(static_cast<u32>(ascii.size()));
        if (kind == 0)
            ascii[pos] = genomics::baseToChar(rng.below(4));
        else if (kind == 1)
            ascii.erase(pos, 1);
        else
            ascii.insert(pos, 1, genomics::baseToChar(rng.below(4)));
    }
    return DnaSequence(ascii);
}

/** Lengths that straddle the 32-base packed and 64-base plane words. */
const std::size_t kEdgeLens[] = { 0,  1,  2,  31, 32, 33,  63,  64,
                                  65, 95, 96, 97, 127, 128, 129, 200 };

TEST(BitParallelEdit, MatchesScalarOnEdgeLengths)
{
    util::Pcg32 rng(101);
    for (std::size_t la : kEdgeLens) {
        for (std::size_t lb : kEdgeLens) {
            DnaSequence a = randomSeq(rng, la);
            DnaSequence b = randomSeq(rng, lb);
            EXPECT_EQ(filters::editDistance(a, b),
                      filters::editDistanceScalar(a, b))
                << "la=" << la << " lb=" << lb;
        }
    }
}

TEST(BitParallelEdit, MatchesScalarOnRelatedPairs)
{
    util::Pcg32 rng(202);
    for (int it = 0; it < 300; ++it) {
        std::size_t len = 1 + rng.below(280);
        DnaSequence a = randomSeq(rng, len);
        DnaSequence b = mutate(rng, a, rng.below(8));
        EXPECT_EQ(filters::editDistance(a, b),
                  filters::editDistanceScalar(a, b))
            << "iteration " << it;
    }
}

TEST(BitParallelEdit, BoundedMatchesScalar)
{
    util::Pcg32 rng(303);
    for (int it = 0; it < 400; ++it) {
        std::size_t len = 1 + rng.below(200);
        DnaSequence a = randomSeq(rng, len);
        DnaSequence b = rng.below(2) ? mutate(rng, a, rng.below(10))
                                     : randomSeq(rng, 1 + rng.below(200));
        u32 k = rng.below(13);
        EXPECT_EQ(filters::editDistanceBounded(a, b, k),
                  filters::editDistanceBoundedScalar(a, b, k))
            << "iteration " << it << " k=" << k;
    }
}

TEST(BitParallelEdit, CandidateMatchesScalar)
{
    util::Pcg32 rng(404);
    for (int it = 0; it < 300; ++it) {
        std::size_t rlen = 1 + rng.below(180);
        std::size_t wlen = 1 + rng.below(260);
        DnaSequence window = randomSeq(rng, wlen);
        DnaSequence read =
            rng.below(2) && wlen > rlen
                ? mutate(rng,
                         window.sub(rng.below(static_cast<u32>(
                                        wlen - rlen + 1)),
                                    rlen),
                         rng.below(5))
                : randomSeq(rng, rlen);
        u32 center = rng.below(static_cast<u32>(wlen) + 4);
        u32 slack = rng.below(9);
        EXPECT_EQ(
            filters::candidateEditDistance(read, window, center, slack),
            filters::candidateEditDistanceScalar(read, window, center,
                                                 slack))
            << "iteration " << it;
    }
}

TEST(BitParallelEdit, EmptySequences)
{
    DnaSequence e;
    DnaSequence a("ACGT");
    EXPECT_EQ(filters::editDistance(e, e), 0u);
    EXPECT_EQ(filters::editDistance(e, a), 4u);
    EXPECT_EQ(filters::editDistance(a, e), 4u);
    EXPECT_EQ(filters::editDistanceBounded(e, a, 2), 3u);
    EXPECT_EQ(filters::editDistanceBounded(e, a, 4), 4u);
}

// ---------------------------------------------------------------------------
// DnaView word-level operations vs per-base reference implementations.
// ---------------------------------------------------------------------------

TEST(DnaViewOps, RandomViewsMatchPerBase)
{
    util::Pcg32 rng(505);
    for (int it = 0; it < 200; ++it) {
        std::size_t plen = 1 + rng.below(400);
        DnaSequence parent = randomSeq(rng, plen);
        std::size_t start = rng.below(static_cast<u32>(plen));
        std::size_t len = rng.below(static_cast<u32>(plen - start) + 1);
        DnaView v = parent.view(start, len);

        ASSERT_EQ(v.size(), len);
        // at() agrees with the parent.
        for (std::size_t i = 0; i < len; ++i)
            ASSERT_EQ(v.at(i), parent.at(start + i));
        // word() decodes to the same bases.
        for (std::size_t w = 0; w < v.numWords(); ++w) {
            u64 word = v.word(w);
            std::size_t rem = std::min<std::size_t>(32, len - 32 * w);
            for (std::size_t i = 0; i < rem; ++i)
                ASSERT_EQ((word >> (2 * i)) & 0x3u,
                          parent.at(start + 32 * w + i));
            if (rem < 32) {
                ASSERT_EQ(word >> (2 * rem), 0u) << "tail not zero-padded";
            }
        }
        // materialize == scalar sub.
        DnaSequence copy = v.materialize();
        ASSERT_EQ(copy.size(), len);
        for (std::size_t i = 0; i < len; ++i)
            ASSERT_EQ(copy.at(i), parent.at(start + i));
        EXPECT_TRUE(v == copy.view());
        // packed bytes match a push-built copy bit for bit.
        DnaSequence pushed;
        for (std::size_t i = 0; i < len; ++i)
            pushed.push(parent.at(start + i));
        EXPECT_EQ(copy.packed(), pushed.packed());
    }
}

TEST(DnaViewOps, RevCompMatchesPerBase)
{
    util::Pcg32 rng(606);
    for (int it = 0; it < 200; ++it) {
        std::size_t plen = 1 + rng.below(300);
        DnaSequence parent = randomSeq(rng, plen);
        std::size_t start = rng.below(static_cast<u32>(plen));
        std::size_t len = rng.below(static_cast<u32>(plen - start) + 1);
        DnaView v = parent.view(start, len);

        DnaSequence rc = v.revComp();
        ASSERT_EQ(rc.size(), len);
        for (std::size_t i = 0; i < len; ++i)
            ASSERT_EQ(rc.at(i), genomics::complementBase(
                                    parent.at(start + len - 1 - i)))
                << "it=" << it << " i=" << i;
    }
}

TEST(DnaViewOps, HammingAndEqualityMatchPerBase)
{
    util::Pcg32 rng(707);
    for (int it = 0; it < 200; ++it) {
        std::size_t len = rng.below(300);
        DnaSequence a = randomSeq(rng, len + 7);
        DnaSequence b = randomSeq(rng, len + 3);
        std::size_t sa = rng.below(8);
        std::size_t sb = rng.below(4);
        DnaView va = a.view(sa, len);
        DnaView vb = b.view(sb, len);

        u64 expect = 0;
        bool equal = true;
        for (std::size_t i = 0; i < len; ++i) {
            if (va.at(i) != vb.at(i)) {
                ++expect;
                equal = false;
            }
        }
        EXPECT_EQ(genomics::hammingDistance(va, vb), expect);
        EXPECT_EQ(va == vb, equal);
        EXPECT_TRUE(va == va);
    }
}

TEST(DnaViewOps, BitPlanesMatchPerBase)
{
    util::Pcg32 rng(808);
    for (int it = 0; it < 100; ++it) {
        std::size_t plen = 1 + rng.below(300);
        DnaSequence parent = randomSeq(rng, plen);
        std::size_t start = rng.below(static_cast<u32>(plen));
        std::size_t len = rng.below(static_cast<u32>(plen - start) + 1);
        DnaView v = parent.view(start, len);

        std::vector<u64> lo, hi;
        v.bitPlanes(lo, hi);
        ASSERT_EQ(lo.size(), (len + 63) / 64);
        for (std::size_t i = 0; i < len; ++i) {
            u8 code = parent.at(start + i);
            EXPECT_EQ((lo[i >> 6] >> (i & 63u)) & 1u, code & 1u);
            EXPECT_EQ((hi[i >> 6] >> (i & 63u)) & 1u, (code >> 1) & 1u);
        }
        // Bits past the end stay zero (the SHD masks rely on this).
        for (std::size_t i = len; i < 64 * lo.size(); ++i) {
            EXPECT_EQ((lo[i >> 6] >> (i & 63u)) & 1u, 0u);
            EXPECT_EQ((hi[i >> 6] >> (i & 63u)) & 1u, 0u);
        }
    }
}

TEST(DnaViewOps, AppendMatchesPushLoop)
{
    util::Pcg32 rng(909);
    for (int it = 0; it < 200; ++it) {
        DnaSequence dst = randomSeq(rng, rng.below(120));
        DnaSequence srcParent = randomSeq(rng, 1 + rng.below(200));
        std::size_t start = rng.below(static_cast<u32>(srcParent.size()));
        std::size_t len =
            rng.below(static_cast<u32>(srcParent.size() - start) + 1);

        DnaSequence expect = dst;
        for (std::size_t i = 0; i < len; ++i)
            expect.push(srcParent.at(start + i));

        DnaSequence got = dst;
        got.append(srcParent.view(start, len));
        ASSERT_EQ(got.size(), expect.size());
        EXPECT_EQ(got.packed(), expect.packed());
    }
}

TEST(DnaViewOps, SelfAppendIsSafe)
{
    DnaSequence s("ACGTACGTACGTACGTACGTACGTACGTACGTACG");
    std::string expect = s.toString() + s.toString().substr(3, 20);
    s.append(s.view(3, 20));
    EXPECT_EQ(s.toString(), expect);
}

// ---------------------------------------------------------------------------
// Zero-copy reference windows vs copied windows.
// ---------------------------------------------------------------------------

TEST(WindowView, MatchesCopyAcrossChromosomes)
{
    util::Pcg32 rng(111);
    genomics::Reference ref;
    ref.addChromosome("c1", randomSeq(rng, 500));
    ref.addChromosome("c2", randomSeq(rng, 129));
    ref.addChromosome("c3", randomSeq(rng, 64));

    for (int it = 0; it < 500; ++it) {
        GlobalPos pos = rng.below(static_cast<u32>(ref.totalLength() + 8));
        u64 len = rng.below(200);
        DnaSequence copy = ref.window(pos, len);
        DnaView view = ref.windowView(pos, len);
        ASSERT_EQ(view.size(), copy.size());
        EXPECT_TRUE(view == copy.view());
        if (!view.empty()) {
            EXPECT_EQ(view.at(0), ref.baseAt(pos));
        }
    }
    // Boundary clamp: a window straddling c1/c2 truncates at the c1 end.
    EXPECT_EQ(ref.windowView(490, 50).size(), 10u);
    // Past the genome: empty.
    EXPECT_TRUE(ref.windowView(ref.totalLength(), 10).empty());
}

// ---------------------------------------------------------------------------
// Packed-word minimizer stream vs the original per-base deque oracle.
// ---------------------------------------------------------------------------

/** The retained per-base implementation (extractMinimizersScalar). */
std::vector<baseline::Minimizer>
minimizerOracle(const DnaSequence &seq, const baseline::MinimizerParams &p)
{
    return baseline::extractMinimizersScalar(seq, p);
}

void
expectSameStream(const std::vector<baseline::Minimizer> &got,
                 const std::vector<baseline::Minimizer> &want,
                 const std::string &what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].hash, want[i].hash) << what << " i=" << i;
        EXPECT_EQ(got[i].pos, want[i].pos) << what << " i=" << i;
        EXPECT_EQ(got[i].reverse, want[i].reverse) << what << " i=" << i;
    }
}

TEST(MinimizerStream, MatchesOracleOnRandomSequences)
{
    util::Pcg32 rng(121);
    const baseline::MinimizerParams configs[] = {
        { 21, 11, 500 }, // sr preset
        { 4, 1, 500 },   // minimal k, every-position window
        { 15, 10, 500 },
        { 31, 5, 500 },  // max k
        { 5, 64, 500 },  // window longer than most test sequences
    };
    int checked = 0;
    for (int it = 0; it < 1000; ++it) {
        const auto &p = configs[it % 5];
        // Bias lengths onto the 32/64-base word boundaries.
        std::size_t len;
        switch (rng.below(4)) {
        case 0: len = p.k + rng.below(40); break;
        case 1: len = 63 + rng.below(4); break;
        case 2: len = 127 + rng.below(4); break;
        default: len = 1 + rng.below(400); break;
        }
        DnaSequence seq = randomSeq(rng, len);
        expectSameStream(baseline::extractMinimizers(seq, p),
                         minimizerOracle(seq, p),
                         "it=" + std::to_string(it));
        ++checked;
    }
    EXPECT_EQ(checked, 1000);
}

TEST(MinimizerStream, MatchesOracleOnHomopolymersAndShortInputs)
{
    baseline::MinimizerParams p{ 5, 3, 500 };
    // Homopolymers exercise the palindrome-skip and tie rules.
    for (const char *s : { "", "A", "AAAA", "AAAAA", "AAAAAAAAAA",
                           "ACACACACACAC", "ACGTACGTACGT" }) {
        DnaSequence seq{ std::string_view(s) };
        expectSameStream(baseline::extractMinimizers(seq, p),
                         minimizerOracle(seq, p), s);
    }
}

// ---------------------------------------------------------------------------
// Ambiguous-base accounting.
// ---------------------------------------------------------------------------

TEST(AmbiguousBases, ConstructorCounts)
{
    u64 n = 0;
    DnaSequence s("ACGTNNRYacgtn", &n);
    EXPECT_EQ(n, 5u); // N N R Y n and nothing else
    EXPECT_EQ(s.size(), 13u);
    EXPECT_EQ(s.at(4), genomics::BaseA); // N still encodes as A
    u64 m = 0;
    DnaSequence clean("ACGTacgt", &m);
    EXPECT_EQ(m, 0u);
    EXPECT_TRUE(genomics::isAmbiguousBase('N'));
    EXPECT_FALSE(genomics::isAmbiguousBase('g'));
}

} // namespace
