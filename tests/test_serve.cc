/**
 * @file
 * End-to-end tests for the serving stack behind gpx_serve: protocol
 * encode/decode round trips, a live ServeServer on a Unix socket
 * mapping the golden corpus bit-identically to gpx_map (pinned md5),
 * concurrent clients, the request-scoped error taxonomy (bad FASTQ and
 * unknown mounts must NOT kill the connection, let alone the daemon),
 * and a doc-constants check that keeps docs/serve_protocol.md in
 * lockstep with src/serve/protocol.hh.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "genomics/fasta.hh"
#include "genomics/sam.hh"
#include "genpair/seedmap.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "util/gzip_stream.hh"
#include "util/md5.hh"

namespace {

using namespace gpx;

/** Same pinned digest as test_golden_corpus.cc: serving must never
 *  move the bits. */
const char kGoldenSamMd5[] = "6e4b292bd35bc3babd6ffd733c44612f";

const char *
goldenDir()
{
#ifdef GPX_GOLDEN_DIR
    return GPX_GOLDEN_DIR;
#else
    return "tests/data/golden";
#endif
}

const char *
docsDir()
{
#ifdef GPX_DOCS_DIR
    return GPX_DOCS_DIR;
#else
    return "docs";
#endif
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is) << "cannot open " << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

// ---------------------------------------------------------------------
// Protocol payload round trips
// ---------------------------------------------------------------------

TEST(ServeProtocol, HelloRoundTrip)
{
    serve::HelloBody body;
    body.mounts = { "golden", "hg38" };
    serve::HelloBody out;
    ASSERT_TRUE(serve::decodeHello(serve::encodeHello(body), &out));
    EXPECT_EQ(out.magic, serve::kProtoMagic);
    EXPECT_EQ(out.version, serve::kProtoVersion);
    EXPECT_EQ(out.mounts, body.mounts);
}

TEST(ServeProtocol, MapRequestRoundTrip)
{
    serve::MapRequestBody body;
    body.requestId = 42;
    body.flags = serve::kMapWantStats;
    body.refName = "golden";
    body.r1Fastq = "@r1\nACGT\n+\nIIII\n";
    body.r2Fastq = "@r1\nTTGG\n+\nIIII\n";
    serve::MapRequestBody out;
    ASSERT_TRUE(
        serve::decodeMapRequest(serve::encodeMapRequest(body), &out));
    EXPECT_EQ(out.requestId, 42u);
    EXPECT_EQ(out.flags, serve::kMapWantStats);
    EXPECT_EQ(out.refName, "golden");
    EXPECT_EQ(out.r1Fastq, body.r1Fastq);
    EXPECT_EQ(out.r2Fastq, body.r2Fastq);
}

TEST(ServeProtocol, MapReplyRoundTrip)
{
    serve::MapReplyBody body;
    body.requestId = 7;
    body.pairCount = 300;
    body.sam = "r1\t99\tchr1\t100\t60\t...\n";
    body.statsJson = "{\"pairs_total\": 300}";
    serve::MapReplyBody out;
    ASSERT_TRUE(serve::decodeMapReply(serve::encodeMapReply(body), &out));
    EXPECT_EQ(out.requestId, 7u);
    EXPECT_EQ(out.pairCount, 300u);
    EXPECT_EQ(out.sam, body.sam);
    EXPECT_EQ(out.statsJson, body.statsJson);
}

TEST(ServeProtocol, ErrorRoundTrip)
{
    serve::ErrorBody body;
    body.requestId = 9;
    body.code = serve::kErrBadFastq;
    body.message = "R1: truncated FASTQ record";
    serve::ErrorBody out;
    ASSERT_TRUE(serve::decodeError(serve::encodeError(body), &out));
    EXPECT_EQ(out.requestId, 9u);
    EXPECT_EQ(out.code, serve::kErrBadFastq);
    EXPECT_EQ(out.message, body.message);
}

TEST(ServeProtocol, DecodeRejectsTruncatedPayload)
{
    serve::MapRequestBody body;
    body.requestId = 1;
    body.refName = "golden";
    body.r1Fastq = "@r1\nACGT\n+\nIIII\n";
    body.r2Fastq = body.r1Fastq;
    std::vector<u8> wire = serve::encodeMapRequest(body);
    // Every proper prefix must decode to a clean failure, never a
    // crash or an accidental success on garbage.
    for (std::size_t len = 0; len < wire.size(); ++len) {
        std::vector<u8> cut(wire.begin(),
                            wire.begin() + static_cast<long>(len));
        serve::MapRequestBody out;
        EXPECT_FALSE(serve::decodeMapRequest(cut, &out))
            << "prefix of " << len << " bytes decoded";
    }
}

TEST(ServeProtocol, DecodeRejectsTrailingGarbage)
{
    serve::ErrorBody body;
    body.code = serve::kErrBadFrame;
    std::vector<u8> wire = serve::encodeError(body);
    wire.push_back(0xAB);
    serve::ErrorBody out;
    EXPECT_FALSE(serve::decodeError(wire, &out));
}

// ---------------------------------------------------------------------
// Doc-constants: docs/serve_protocol.md must match protocol.hh
// ---------------------------------------------------------------------

/** True iff some line of @p doc contains both `name` and `value`
 *  rendered as inline code. */
bool
docHasRow(const std::string &doc, const std::string &name,
          const std::string &value)
{
    const std::string n = "`" + name + "`";
    const std::string v = "`" + value + "`";
    std::istringstream is(doc);
    std::string line;
    while (std::getline(is, line))
        if (line.find(n) != std::string::npos &&
            line.find(v) != std::string::npos)
            return true;
    return false;
}

std::string
hex(u32 v, int width)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%0*X", width, v);
    return buf;
}

TEST(ServeProtocol, DocConstantsMatchHeader)
{
    std::string doc =
        slurp(std::string(docsDir()) + "/serve_protocol.md");
    ASSERT_FALSE(doc.empty());

    EXPECT_TRUE(docHasRow(doc, "kProtoMagic",
                          hex(serve::kProtoMagic, 8)));
    EXPECT_TRUE(docHasRow(doc, "kProtoVersion",
                          std::to_string(serve::kProtoVersion)));
    EXPECT_TRUE(docHasRow(doc, "kDefaultMaxFrameBytes",
                          std::to_string(serve::kDefaultMaxFrameBytes)));
    EXPECT_TRUE(
        docHasRow(doc, "kDefaultMaxPairsPerRequest",
                  std::to_string(serve::kDefaultMaxPairsPerRequest)));

    const std::pair<const char *, u8> frameTypes[] = {
        { "kHelloRequest", serve::kHelloRequest },
        { "kHelloReply", serve::kHelloReply },
        { "kMapRequest", serve::kMapRequest },
        { "kMapReply", serve::kMapReply },
        { "kHeaderRequest", serve::kHeaderRequest },
        { "kHeaderReply", serve::kHeaderReply },
        { "kStatsRequest", serve::kStatsRequest },
        { "kStatsReply", serve::kStatsReply },
        { "kShutdownRequest", serve::kShutdownRequest },
        { "kShutdownReply", serve::kShutdownReply },
        { "kRefreshRequest", serve::kRefreshRequest },
        { "kRefreshReply", serve::kRefreshReply },
        { "kErrorReply", serve::kErrorReply },
    };
    for (const auto &[name, value] : frameTypes)
        EXPECT_TRUE(docHasRow(doc, name, hex(value, 2)))
            << name << " = " << hex(value, 2) << " missing from doc";

    const std::pair<const char *, u16> errorCodes[] = {
        { "kErrBadMagic", serve::kErrBadMagic },
        { "kErrBadVersion", serve::kErrBadVersion },
        { "kErrBadFrame", serve::kErrBadFrame },
        { "kErrUnknownReference", serve::kErrUnknownReference },
        { "kErrBadFastq", serve::kErrBadFastq },
        { "kErrTooLarge", serve::kErrTooLarge },
        { "kErrDraining", serve::kErrDraining },
        { "kErrDeadline", serve::kErrDeadline },
        { "kErrOverloaded", serve::kErrOverloaded },
        { "kErrRefreshFailed", serve::kErrRefreshFailed },
        { "kErrIoFault", serve::kErrIoFault },
    };
    for (const auto &[name, value] : errorCodes)
        EXPECT_TRUE(docHasRow(doc, name, std::to_string(value)))
            << name << " = " << value << " missing from doc";

    // The doc promises the golden digest; keep that promise pinned too.
    EXPECT_NE(doc.find(kGoldenSamMd5), std::string::npos);
}

// ---------------------------------------------------------------------
// Live server over the golden corpus
// ---------------------------------------------------------------------

class ServeGoldenTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        std::string dir = goldenDir();
        std::ifstream refFile(dir + "/ref.fa");
        ASSERT_TRUE(refFile) << "missing golden reference in " << dir;
        ref_ = genomics::readFasta(refFile);
        ASSERT_GT(ref_.totalLength(), 0u);

        std::ifstream r1(dir + "/r1.fq"), r2(dir + "/r2.fq");
        ASSERT_TRUE(r1 && r2);
        reads1_ = genomics::readFastq(r1);
        reads2_ = genomics::readFastq(r2);
        ASSERT_EQ(reads1_.size(), reads2_.size());
        ASSERT_GT(reads1_.size(), 0u);

        // Pinned golden index parameters (see test_golden_corpus.cc).
        genpair::SeedMapParams params;
        params.seedLen = 50;
        params.tableBits = 18;
        params.filterThreshold = 500;
        map_ = std::make_unique<genpair::SeedMap>(ref_, params);
    }

    /** Start the daemon on a Unix socket in the test temp dir. */
    void
    startServer(u32 threads = 2, u32 admission_slots = 2,
                u32 max_pairs = serve::kDefaultMaxPairsPerRequest,
                u32 io_threads = 1, u32 chunk_pairs = 1024)
    {
        socketPath_ = ::testing::TempDir() + "gpx_serve_test.sock";
        serve::MountSpec spec;
        spec.name = "golden";
        spec.ref = &ref_;
        spec.view = *map_;
        serve::ServeConfig config;
        config.socketPath = socketPath_;
        config.threads = threads;
        config.admissionSlots = admission_slots;
        config.maxPairsPerRequest = max_pairs;
        config.ioThreads = io_threads;
        config.chunkPairs = chunk_pairs;
        server_ = std::make_unique<serve::ServeServer>(
            std::vector<serve::MountSpec>{ spec }, config);
        std::string error;
        ASSERT_TRUE(server_->start(&error)) << error;
    }

    serve::ServeClient
    connect()
    {
        std::string error;
        auto client = serve::ServeClient::connectUnix(socketPath_, &error);
        EXPECT_TRUE(client.has_value()) << error;
        return std::move(*client);
    }

    /** FASTQ text of pairs [begin, end) for one side. */
    std::string
    fastqSlice(const std::vector<genomics::Read> &reads, std::size_t begin,
               std::size_t end) const
    {
        std::vector<genomics::Read> slice(reads.begin() + begin,
                                          reads.begin() + end);
        std::ostringstream os;
        genomics::writeFastq(os, slice);
        return os.str();
    }

    /**
     * Map the whole corpus through @p client in batches of
     * @p batch_pairs and return the md5 of header + records — the same
     * document a gpx_map run over the corpus writes.
     */
    std::string
    mapCorpus(serve::ServeClient &client, std::size_t batch_pairs)
    {
        std::string doc;
        auto status = client.fetchHeader("", &doc);
        EXPECT_TRUE(status.ok) << status.describe();
        for (std::size_t i = 0; i < reads1_.size(); i += batch_pairs) {
            std::size_t end =
                std::min(i + batch_pairs, reads1_.size());
            serve::MapReplyBody reply;
            status = client.mapBatch("golden", fastqSlice(reads1_, i, end),
                                     fastqSlice(reads2_, i, end), false,
                                     &reply);
            EXPECT_TRUE(status.ok) << status.describe();
            EXPECT_EQ(reply.pairCount, end - i);
            doc += reply.sam;
        }
        return util::md5Hex(doc);
    }

    genomics::Reference ref_;
    std::vector<genomics::Read> reads1_, reads2_;
    std::unique_ptr<genpair::SeedMap> map_;
    std::unique_ptr<serve::ServeServer> server_;
    std::string socketPath_;
};

TEST_F(ServeGoldenTest, HelloAnnouncesMounts)
{
    startServer();
    auto client = connect();
    ASSERT_EQ(client.mounts().size(), 1u);
    EXPECT_EQ(client.mounts()[0], "golden");
}

TEST_F(ServeGoldenTest, SingleClientReproducesPinnedDigest)
{
    startServer();
    auto client = connect();
    EXPECT_EQ(mapCorpus(client, 64), kGoldenSamMd5);

    serve::ServeCounters counters = server_->counters();
    EXPECT_EQ(counters.pairsMapped, reads1_.size());
    EXPECT_EQ(counters.requestsRejected, 0u);
    EXPECT_GT(counters.samBytesSent, 0u);
}

TEST_F(ServeGoldenTest, EmptyRefNameRoutesToSoleMount)
{
    startServer();
    auto client = connect();
    serve::MapReplyBody reply;
    auto status =
        client.mapBatch("", fastqSlice(reads1_, 0, 4),
                        fastqSlice(reads2_, 0, 4), false, &reply);
    ASSERT_TRUE(status.ok) << status.describe();
    EXPECT_EQ(reply.pairCount, 4u);
}

TEST_F(ServeGoldenTest, ConcurrentClientsEachReproducePinnedDigest)
{
    // Three connections interleaving small batches over one shared
    // pool: per-connection replies must stay input-ordered, so every
    // client independently assembles the pinned document. This is the
    // test TSan runs against the full serve stack.
    startServer(/*threads=*/2, /*admission_slots=*/2);
    constexpr int kClients = 3;
    std::vector<std::string> digests(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c)
        threads.emplace_back([this, c, &digests]() {
            auto client = connect();
            // Different batch sizes per client so request boundaries
            // never line up across connections.
            digests[static_cast<std::size_t>(c)] =
                mapCorpus(client, 32 + 17 * static_cast<std::size_t>(c));
        });
    for (auto &t : threads)
        t.join();
    for (const auto &digest : digests)
        EXPECT_EQ(digest, kGoldenSamMd5);

    serve::ServeCounters counters = server_->counters();
    EXPECT_EQ(counters.pairsMapped, kClients * reads1_.size());
    EXPECT_EQ(counters.connectionsAccepted, 3u);
}

TEST_F(ServeGoldenTest, SpineConfigReproducesPinnedDigestOverSocket)
{
    // Force every request through the full multi-queue spine: 16-pair
    // chunks make each 64-pair batch span 4 sequence-numbered chunks,
    // 2 parser threads race the reorder buffer, and 2 connections
    // share the mount's pool. Bits must not move, and the aggregate
    // stall counters must surface in the STATS frame.
    startServer(/*threads=*/2, /*admission_slots=*/2,
                serve::kDefaultMaxPairsPerRequest, /*io_threads=*/2,
                /*chunk_pairs=*/16);
    std::vector<std::string> digests(2);
    std::vector<std::thread> threads;
    for (int c = 0; c < 2; ++c)
        threads.emplace_back([this, c, &digests]() {
            auto client = connect();
            digests[static_cast<std::size_t>(c)] =
                mapCorpus(client, 64 + 13 * static_cast<std::size_t>(c));
        });
    for (auto &t : threads)
        t.join();
    for (const auto &digest : digests)
        EXPECT_EQ(digest, kGoldenSamMd5);

    serve::ServeCounters counters = server_->counters();
    EXPECT_EQ(counters.pairsMapped, 2 * reads1_.size());
    EXPECT_GE(counters.readerStallSeconds, 0.0);
    EXPECT_GE(counters.writerStallSeconds, 0.0);

    auto client = connect();
    std::string json;
    auto status = client.fetchStats(&json);
    ASSERT_TRUE(status.ok) << status.describe();
    EXPECT_NE(json.find("\"reader_stall_seconds\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"writer_stall_seconds\""), std::string::npos)
        << json;
}

TEST_F(ServeGoldenTest, GzipRequestPayloadReproducesPinnedDigest)
{
    // A client may ship its FASTQ batches gzip-compressed; the sniffing
    // ingest path must decode them to the same pinned bits.
    if (!util::gzipSupported())
        GTEST_SKIP() << "built without zlib";
    startServer(/*threads=*/2, /*admission_slots=*/2,
                serve::kDefaultMaxPairsPerRequest, /*io_threads=*/2,
                /*chunk_pairs=*/16);
    auto client = connect();
    std::string doc;
    auto status = client.fetchHeader("", &doc);
    ASSERT_TRUE(status.ok) << status.describe();
    constexpr std::size_t kBatch = 64;
    for (std::size_t i = 0; i < reads1_.size(); i += kBatch) {
        std::size_t end = std::min(i + kBatch, reads1_.size());
        serve::MapReplyBody reply;
        status = client.mapBatch(
            "golden", util::gzipCompress(fastqSlice(reads1_, i, end)),
            util::gzipCompress(fastqSlice(reads2_, i, end)), false,
            &reply);
        ASSERT_TRUE(status.ok) << status.describe();
        EXPECT_EQ(reply.pairCount, end - i);
        doc += reply.sam;
    }
    EXPECT_EQ(util::md5Hex(doc), kGoldenSamMd5);
}

TEST_F(ServeGoldenTest, PerRequestStatsJsonAttached)
{
    startServer();
    auto client = connect();
    serve::MapReplyBody reply;
    auto status =
        client.mapBatch("golden", fastqSlice(reads1_, 0, 8),
                        fastqSlice(reads2_, 0, 8), true, &reply);
    ASSERT_TRUE(status.ok) << status.describe();
    EXPECT_NE(reply.statsJson.find("\"pairs_total\": 8"),
              std::string::npos)
        << reply.statsJson;
}

TEST_F(ServeGoldenTest, MalformedFastqRejectedConnectionSurvives)
{
    startServer();
    auto client = connect();

    // Truncated record: quality line missing.
    serve::MapReplyBody reply;
    auto status = client.mapBatch("golden", "@r1\nACGT\n+\n",
                                  "@r1\nTTGG\n+\nIIII\n", false, &reply);
    ASSERT_FALSE(status.ok);
    ASSERT_TRUE(status.errorFrame.has_value()) << status.describe();
    EXPECT_EQ(status.errorFrame->code, serve::kErrBadFastq);
    EXPECT_NE(status.errorFrame->message.find("truncated FASTQ record"),
              std::string::npos)
        << status.errorFrame->message;

    // Malformed header on the R2 side.
    status = client.mapBatch("golden", "@r1\nACGT\n+\nIIII\n",
                             "no header\nACGT\n+\nIIII\n", false, &reply);
    ASSERT_FALSE(status.ok);
    ASSERT_TRUE(status.errorFrame.has_value());
    EXPECT_EQ(status.errorFrame->code, serve::kErrBadFastq);
    EXPECT_NE(status.errorFrame->message.find("R2:"), std::string::npos);

    // R1/R2 record-count mismatch.
    status = client.mapBatch(
        "golden", "@r1\nACGT\n+\nIIII\n@r2\nACGT\n+\nIIII\n",
        "@r1\nTTGG\n+\nIIII\n", false, &reply);
    ASSERT_FALSE(status.ok);
    ASSERT_TRUE(status.errorFrame.has_value());
    EXPECT_EQ(status.errorFrame->code, serve::kErrBadFastq);

    // The connection (and the daemon) survived all three rejections:
    // the same client still maps the full corpus to the pinned bits.
    EXPECT_EQ(mapCorpus(client, 128), kGoldenSamMd5);
    EXPECT_EQ(server_->counters().requestsRejected, 3u);
}

TEST_F(ServeGoldenTest, UnknownReferenceRejectedConnectionSurvives)
{
    startServer();
    auto client = connect();
    serve::MapReplyBody reply;
    auto status =
        client.mapBatch("hg39", fastqSlice(reads1_, 0, 2),
                        fastqSlice(reads2_, 0, 2), false, &reply);
    ASSERT_FALSE(status.ok);
    ASSERT_TRUE(status.errorFrame.has_value()) << status.describe();
    EXPECT_EQ(status.errorFrame->code, serve::kErrUnknownReference);

    status = client.mapBatch("golden", fastqSlice(reads1_, 0, 2),
                             fastqSlice(reads2_, 0, 2), false, &reply);
    EXPECT_TRUE(status.ok) << status.describe();
}

TEST_F(ServeGoldenTest, OversizeBatchRejected)
{
    startServer(/*threads=*/2, /*admission_slots=*/2, /*max_pairs=*/8);
    auto client = connect();
    serve::MapReplyBody reply;
    auto status =
        client.mapBatch("golden", fastqSlice(reads1_, 0, 9),
                        fastqSlice(reads2_, 0, 9), false, &reply);
    ASSERT_FALSE(status.ok);
    ASSERT_TRUE(status.errorFrame.has_value()) << status.describe();
    EXPECT_EQ(status.errorFrame->code, serve::kErrTooLarge);
}

TEST_F(ServeGoldenTest, StatsFrameAggregatesServedRequests)
{
    startServer();
    auto client = connect();
    serve::MapReplyBody reply;
    auto status =
        client.mapBatch("golden", fastqSlice(reads1_, 0, 16),
                        fastqSlice(reads2_, 0, 16), false, &reply);
    ASSERT_TRUE(status.ok) << status.describe();

    std::string json;
    status = client.fetchStats(&json);
    ASSERT_TRUE(status.ok) << status.describe();
    EXPECT_NE(json.find("\"pairs_mapped\": 16"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"golden\""), std::string::npos);
    EXPECT_NE(json.find("\"requests_served\": 1"), std::string::npos);
}

TEST_F(ServeGoldenTest, ClientKilledMidRequestPayload)
{
    // A client that dies after sending half a MAP payload must cost
    // the server nothing but that one connection: the handler sees a
    // short read, closes, and every other connection still maps the
    // corpus to the pinned bits.
    startServer();
    {
        std::string error;
        auto raw = util::connectUnix(socketPath_, &error);
        ASSERT_TRUE(raw.has_value()) << error;
        ASSERT_TRUE(serve::writeFrame(*raw, serve::kHelloRequest,
                                      serve::encodeHello({})));
        serve::Frame hello;
        ASSERT_EQ(serve::readFrame(*raw, &hello),
                  serve::FrameRead::kFrame);

        serve::MapRequestBody req;
        req.requestId = 1;
        req.refName = "golden";
        req.r1Fastq = fastqSlice(reads1_, 0, 32);
        req.r2Fastq = fastqSlice(reads2_, 0, 32);
        std::vector<u8> payload = serve::encodeMapRequest(req);
        std::vector<u8> wire;
        serve::putU32(wire, static_cast<u32>(payload.size() + 1));
        wire.push_back(serve::kMapRequest);
        wire.insert(wire.end(), payload.begin(), payload.end());
        // Half the frame, then die.
        ASSERT_TRUE(raw->writeExact(wire.data(), wire.size() / 2));
        raw->close();
    }
    auto client = connect();
    EXPECT_EQ(mapCorpus(client, 64), kGoldenSamMd5);
}

TEST_F(ServeGoldenTest, ClientKilledMidReply)
{
    // The mirror image: the client sends a complete MAP request, reads
    // half the reply, and dies. The server's reply write fails (or is
    // discarded by the kernel); only that connection is affected.
    startServer();
    {
        std::string error;
        auto raw = util::connectUnix(socketPath_, &error);
        ASSERT_TRUE(raw.has_value()) << error;
        ASSERT_TRUE(serve::writeFrame(*raw, serve::kHelloRequest,
                                      serve::encodeHello({})));
        serve::Frame hello;
        ASSERT_EQ(serve::readFrame(*raw, &hello),
                  serve::FrameRead::kFrame);

        serve::MapRequestBody req;
        req.requestId = 2;
        req.refName = "golden";
        req.r1Fastq = fastqSlice(reads1_, 0, 64);
        req.r2Fastq = fastqSlice(reads2_, 0, 64);
        ASSERT_TRUE(serve::writeFrame(*raw, serve::kMapRequest,
                                      serve::encodeMapRequest(req)));
        // Read just the reply's length prefix + type, then vanish with
        // the rest of the reply still in flight.
        u8 partial[5];
        ASSERT_TRUE(raw->readExact(partial, sizeof partial));
        raw->close();
    }
    auto client = connect();
    EXPECT_EQ(mapCorpus(client, 64), kGoldenSamMd5);
}

TEST_F(ServeGoldenTest, ShutdownFrameDrainsServer)
{
    startServer();
    auto client = connect();
    auto status = client.shutdownServer();
    EXPECT_TRUE(status.ok) << status.describe();
    // Must return (not hang) now that a client asked for the drain.
    server_->waitUntilDrained();
    std::string error;
    EXPECT_FALSE(
        serve::ServeClient::connectUnix(socketPath_, &error).has_value());
}

} // namespace
