/**
 * @file
 * Tests for the evaluation stack: mapping accuracy scoring, the pileup
 * variant caller and the truth-set benchmark comparator.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "eval/mapping_eval.hh"
#include "eval/pileup.hh"
#include "eval/variant_bench.hh"
#include "eval/vcf.hh"
#include "genomics/reference.hh"
#include "util/rng.hh"

namespace {

using namespace gpx;
using eval::CalledVariant;
using eval::CallerParams;
using eval::MappingEvaluator;
using eval::PileupCaller;
using eval::VariantClass;
using genomics::Cigar;
using genomics::DnaSequence;
using genomics::Mapping;
using genomics::Read;
using genomics::Reference;
using simdata::Variant;
using simdata::VariantType;

Reference
randomRef(u64 len, u64 seed)
{
    util::Pcg32 rng(seed);
    std::string s;
    for (u64 i = 0; i < len; ++i)
        s.push_back(genomics::baseToChar(rng.below(4)));
    Reference ref;
    ref.addChromosome("chr1", DnaSequence(s));
    return ref;
}

TEST(MappingEval, CorrectWithinTolerance)
{
    MappingEvaluator ev(50);
    Read read;
    read.truthPos = 1000;
    Mapping m;
    m.mapped = true;
    m.pos = 1030;
    ev.addRead(read, m);
    EXPECT_EQ(ev.result().correct, 1u);
    EXPECT_EQ(ev.result().mapped, 1u);
}

TEST(MappingEval, WrongStrandIncorrect)
{
    MappingEvaluator ev(50);
    Read read;
    read.truthPos = 1000;
    Mapping m;
    m.mapped = true;
    m.pos = 1000;
    m.reverse = true; // truth is forward
    ev.addRead(read, m);
    EXPECT_EQ(ev.result().correct, 0u);
}

TEST(MappingEval, FarPositionIncorrect)
{
    MappingEvaluator ev(50);
    Read read;
    read.truthPos = 1000;
    Mapping m;
    m.mapped = true;
    m.pos = 5000;
    ev.addRead(read, m);
    EXPECT_EQ(ev.result().correct, 0u);
    EXPECT_NEAR(ev.result().precision(), 0.0, 1e-12);
}

TEST(MappingEval, UnmappedCountsTowardRecallOnly)
{
    MappingEvaluator ev(50);
    Read read;
    read.truthPos = 1000;
    ev.addRead(read, Mapping{});
    EXPECT_EQ(ev.result().mapped, 0u);
    EXPECT_EQ(ev.result().readsTotal, 1u);
}

class PileupTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ref_ = randomRef(2000, 17);
    }

    /** Add @p n exact-copy reads over [pos, pos+len). */
    void
    addCoverage(PileupCaller &caller, u64 pos, u64 len, u32 n,
                DnaSequence (*mutate)(DnaSequence) = nullptr)
    {
        for (u32 i = 0; i < n; ++i) {
            DnaSequence seq = ref_.window(pos, len);
            if (mutate)
                seq = mutate(std::move(seq));
            Mapping m;
            m.mapped = true;
            m.pos = pos;
            genomics::Cigar c;
            c.push(genomics::CigarOp::Match,
                   static_cast<u32>(seq.size()));
            m.cigar = c;
            caller.addAlignment(seq, m);
        }
    }

    Reference ref_;
};

TEST_F(PileupTest, NoVariantsOnCleanCoverage)
{
    PileupCaller caller(ref_, CallerParams{});
    addCoverage(caller, 100, 200, 30);
    EXPECT_TRUE(caller.call().empty());
    EXPECT_NEAR(caller.meanDepth(), 30.0, 0.01);
}

TEST_F(PileupTest, HomozygousSnpCalled)
{
    PileupCaller caller(ref_, CallerParams{});
    u8 refBase = ref_.baseAt(150);
    u8 alt = (refBase + 1) & 3u;
    for (u32 i = 0; i < 30; ++i) {
        DnaSequence seq = ref_.window(100, 200);
        seq.set(50, alt); // genome position 150
        Mapping m;
        m.mapped = true;
        m.pos = 100;
        m.cigar = Cigar::parse("200M");
        caller.addAlignment(seq, m);
    }
    auto calls = caller.call();
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_EQ(calls[0].pos, 150u);
    EXPECT_EQ(calls[0].altBase, alt);
    EXPECT_EQ(calls[0].type, VariantType::Snp);
    EXPECT_NEAR(calls[0].altFraction, 1.0, 1e-12);
}

TEST_F(PileupTest, HeterozygousSnpCalledAtHalfFraction)
{
    PileupCaller caller(ref_, CallerParams{});
    u8 refBase = ref_.baseAt(150);
    u8 alt = (refBase + 1) & 3u;
    for (u32 i = 0; i < 30; ++i) {
        DnaSequence seq = ref_.window(100, 200);
        if (i % 2 == 0)
            seq.set(50, alt);
        Mapping m;
        m.mapped = true;
        m.pos = 100;
        m.cigar = Cigar::parse("200M");
        caller.addAlignment(seq, m);
    }
    auto calls = caller.call();
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_NEAR(calls[0].altFraction, 0.5, 0.05);
}

TEST_F(PileupTest, DeletionCalledFromCigar)
{
    PileupCaller caller(ref_, CallerParams{});
    for (u32 i = 0; i < 30; ++i) {
        // Read skips ref bases 200..202 (3-base deletion).
        DnaSequence seq = ref_.window(100, 100);
        seq.append(ref_.windowView(203, 97));
        Mapping m;
        m.mapped = true;
        m.pos = 100;
        m.cigar = Cigar::parse("100M3D97M");
        caller.addAlignment(seq, m);
    }
    auto calls = caller.call();
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_EQ(calls[0].type, VariantType::Deletion);
    EXPECT_EQ(calls[0].len, 3u);
    EXPECT_EQ(calls[0].pos, 199u); // anchored at the preceding base
}

TEST_F(PileupTest, InsertionCalledFromCigar)
{
    PileupCaller caller(ref_, CallerParams{});
    for (u32 i = 0; i < 30; ++i) {
        DnaSequence seq = ref_.window(100, 100);
        seq.push(genomics::BaseT);
        seq.push(genomics::BaseT);
        seq.append(ref_.windowView(200, 98));
        Mapping m;
        m.mapped = true;
        m.pos = 100;
        m.cigar = Cigar::parse("100M2I98M");
        caller.addAlignment(seq, m);
    }
    auto calls = caller.call();
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_EQ(calls[0].type, VariantType::Insertion);
    EXPECT_EQ(calls[0].len, 2u);
    EXPECT_EQ(calls[0].insSeq, "TT");
}

TEST_F(PileupTest, LowDepthSuppressed)
{
    CallerParams params;
    params.minDepth = 8;
    PileupCaller caller(ref_, params);
    u8 alt = (ref_.baseAt(150) + 1) & 3u;
    for (u32 i = 0; i < 4; ++i) { // below minDepth
        DnaSequence seq = ref_.window(100, 200);
        seq.set(50, alt);
        Mapping m;
        m.mapped = true;
        m.pos = 100;
        m.cigar = Cigar::parse("200M");
        caller.addAlignment(seq, m);
    }
    EXPECT_TRUE(caller.call().empty());
}

TEST(VariantBench, ExactSnpMatch)
{
    Variant t;
    t.chrom = 0;
    t.pos = 100;
    t.type = VariantType::Snp;
    t.altBase = genomics::BaseG;
    CalledVariant c;
    c.chrom = 0;
    c.pos = 100;
    c.type = VariantType::Snp;
    c.altBase = genomics::BaseG;
    auto r = eval::benchmarkVariants({ t }, { c }, VariantClass::Snp);
    EXPECT_EQ(r.tp, 1u);
    EXPECT_EQ(r.fp, 0u);
    EXPECT_EQ(r.fn, 0u);
    EXPECT_DOUBLE_EQ(r.f1(), 1.0);
}

TEST(VariantBench, WrongAltIsFalsePositive)
{
    Variant t;
    t.pos = 100;
    t.type = VariantType::Snp;
    t.altBase = genomics::BaseG;
    CalledVariant c;
    c.pos = 100;
    c.type = VariantType::Snp;
    c.altBase = genomics::BaseT;
    auto r = eval::benchmarkVariants({ t }, { c }, VariantClass::Snp);
    EXPECT_EQ(r.tp, 0u);
    EXPECT_EQ(r.fp, 1u);
    EXPECT_EQ(r.fn, 1u);
}

TEST(VariantBench, IndelPositionTolerance)
{
    Variant t;
    t.pos = 100;
    t.type = VariantType::Deletion;
    t.delLen = 2;
    CalledVariant c;
    c.pos = 101; // off by one (representation ambiguity)
    c.type = VariantType::Deletion;
    c.len = 2;
    auto r = eval::benchmarkVariants({ t }, { c }, VariantClass::Indel, 2);
    EXPECT_EQ(r.tp, 1u);
}

TEST(VariantBench, MissedTruthIsFalseNegative)
{
    Variant t;
    t.pos = 100;
    t.type = VariantType::Snp;
    t.altBase = genomics::BaseG;
    auto r = eval::benchmarkVariants({ t }, {}, VariantClass::Snp);
    EXPECT_EQ(r.fn, 1u);
    EXPECT_DOUBLE_EQ(r.recall(), 0.0);
}

TEST(VariantBench, ClassesSeparated)
{
    Variant snp;
    snp.pos = 100;
    snp.type = VariantType::Snp;
    snp.altBase = genomics::BaseG;
    Variant del;
    del.pos = 200;
    del.type = VariantType::Deletion;
    del.delLen = 1;
    CalledVariant c;
    c.pos = 200;
    c.type = VariantType::Deletion;
    c.len = 1;
    auto snpRes = eval::benchmarkVariants({ snp, del }, { c },
                                          VariantClass::Snp);
    EXPECT_EQ(snpRes.fn, 1u);
    EXPECT_EQ(snpRes.fp, 0u); // the deletion call is not in SNP class
    auto indelRes = eval::benchmarkVariants({ snp, del }, { c },
                                            VariantClass::Indel);
    EXPECT_EQ(indelRes.tp, 1u);
}

TEST(VariantBench, DuplicateCallsBecomeFalsePositives)
{
    Variant t;
    t.pos = 100;
    t.type = VariantType::Snp;
    t.altBase = genomics::BaseG;
    CalledVariant c;
    c.pos = 100;
    c.type = VariantType::Snp;
    c.altBase = genomics::BaseG;
    auto r = eval::benchmarkVariants({ t }, { c, c }, VariantClass::Snp);
    EXPECT_EQ(r.tp, 1u);
    EXPECT_EQ(r.fp, 1u); // the second call has no remaining truth match
}

TEST(MappingEval, ZeroMappedReadsScoreZeroEverywhere)
{
    MappingEvaluator ev(50);
    for (int i = 0; i < 5; ++i) {
        Read read;
        read.truthPos = 1000 + static_cast<u64>(i);
        ev.addRead(read, Mapping{}); // all unmapped
    }
    EXPECT_EQ(ev.result().readsTotal, 5u);
    EXPECT_EQ(ev.result().mapped, 0u);
    // Every ratio must degrade to 0, never divide by zero.
    EXPECT_DOUBLE_EQ(ev.result().precision(), 0.0);
    EXPECT_DOUBLE_EQ(ev.result().recall(), 0.0);
    EXPECT_DOUBLE_EQ(ev.result().f1(), 0.0);
}

TEST(MappingEval, RegionsAttributeByTruthOrigin)
{
    MappingEvaluator ev(50);
    ev.addRegion("left", 0, 1000);
    ev.addRegion("right", 1000, 2000);

    auto score = [&ev](u64 truth, u64 mapped_pos) {
        Read read;
        read.truthPos = truth;
        Mapping m;
        m.mapped = true;
        m.pos = mapped_pos;
        ev.addRead(read, m);
    };
    score(100, 110);   // left, correct, inside
    score(200, 1500);  // left, wrong, crossed into the right region
    score(1200, 1210); // right, correct
    Read unmappedRead;
    unmappedRead.truthPos = 300; // left, unmapped
    ev.addRead(unmappedRead, Mapping{});

    ASSERT_EQ(ev.regions().size(), 2u);
    const auto &left = ev.regions()[0];
    EXPECT_EQ(left.label, "left");
    EXPECT_EQ(left.readsTotal, 3u);
    EXPECT_EQ(left.mapped, 2u);
    EXPECT_EQ(left.correct, 1u);
    EXPECT_EQ(left.crossMapped, 1u);
    EXPECT_DOUBLE_EQ(left.crossFraction(), 0.5);
    const auto &right = ev.regions()[1];
    EXPECT_EQ(right.readsTotal, 1u);
    EXPECT_EQ(right.crossMapped, 0u);
    // The global tallies are unaffected by attribution.
    EXPECT_EQ(ev.result().readsTotal, 4u);
    EXPECT_EQ(ev.result().correct, 2u);
}

TEST(Vcf, EmptyCallSetRoundTrips)
{
    Reference ref = randomRef(500, 3);
    std::stringstream vcf;
    eval::writeVcf(vcf, ref, {});
    // Header only — still a parseable document yielding zero calls.
    EXPECT_NE(vcf.str().find("##fileformat=VCF"), std::string::npos);
    EXPECT_TRUE(eval::readVcf(vcf, ref).empty());
}

TEST(VariantBench, AdjacentVariantsMatchIndependently)
{
    // Two truth SNPs one base apart: position tolerance must not let
    // one call consume both truths or double-match.
    Variant t1;
    t1.pos = 100;
    t1.type = VariantType::Snp;
    t1.altBase = genomics::BaseG;
    Variant t2;
    t2.pos = 101;
    t2.type = VariantType::Snp;
    t2.altBase = genomics::BaseT;
    CalledVariant c1;
    c1.pos = 100;
    c1.type = VariantType::Snp;
    c1.altBase = genomics::BaseG;
    CalledVariant c2;
    c2.pos = 101;
    c2.type = VariantType::Snp;
    c2.altBase = genomics::BaseT;
    auto r = eval::benchmarkVariants({ t1, t2 }, { c1, c2 },
                                     VariantClass::Snp);
    EXPECT_EQ(r.tp, 2u);
    EXPECT_EQ(r.fp, 0u);
    EXPECT_EQ(r.fn, 0u);
}

TEST(VariantBench, OverlappingTruthDeletionsMatchAtMostOnce)
{
    // Overlapping truth deletions inside one tolerance window: a
    // single call may claim only one of them.
    Variant t1;
    t1.pos = 100;
    t1.type = VariantType::Deletion;
    t1.delLen = 3;
    Variant t2;
    t2.pos = 101;
    t2.type = VariantType::Deletion;
    t2.delLen = 3;
    CalledVariant c;
    c.pos = 101;
    c.type = VariantType::Deletion;
    c.len = 3;
    auto r = eval::benchmarkVariants({ t1, t2 }, { c },
                                     VariantClass::Indel, 2);
    EXPECT_EQ(r.tp, 1u);
    EXPECT_EQ(r.fn, 1u);
    EXPECT_EQ(r.fp, 0u);
}

TEST_F(PileupTest, ZeroCoverageCallsNothing)
{
    PileupCaller caller(ref_, CallerParams{});
    EXPECT_TRUE(caller.call().empty());
    EXPECT_DOUBLE_EQ(caller.meanDepth(), 0.0);
}

TEST_F(PileupTest, AllAmbiguousColumnsResolveToAWithoutCrashing)
{
    // Ambiguity codes encode as A at ingest (charToBase contract), so
    // a pileup over all-N reads is a pileup of A columns: the caller
    // must stay well-defined and report only A-alt SNPs, never crash
    // or call INDELs.
    PileupCaller caller(ref_, CallerParams{});
    DnaSequence allN(std::string(100, 'N'));
    for (u32 i = 0; i < 30; ++i) {
        Mapping m;
        m.mapped = true;
        m.pos = 400;
        m.cigar = Cigar::parse("100M");
        caller.addAlignment(allN, m);
    }
    auto calls = caller.call();
    u64 refNonA = 0;
    for (u64 p = 400; p < 500; ++p)
        refNonA += ref_.baseAt(p) != genomics::BaseA;
    EXPECT_EQ(calls.size(), refNonA);
    for (const auto &call : calls) {
        EXPECT_EQ(call.type, VariantType::Snp);
        EXPECT_EQ(call.altBase, genomics::BaseA);
        EXPECT_NEAR(call.altFraction, 1.0, 1e-12);
    }
}

} // namespace
