/**
 * @file
 * Tests for the evaluation stack: mapping accuracy scoring, the pileup
 * variant caller and the truth-set benchmark comparator.
 */

#include <gtest/gtest.h>

#include "eval/mapping_eval.hh"
#include "eval/pileup.hh"
#include "eval/variant_bench.hh"
#include "genomics/reference.hh"
#include "util/rng.hh"

namespace {

using namespace gpx;
using eval::CalledVariant;
using eval::CallerParams;
using eval::MappingEvaluator;
using eval::PileupCaller;
using eval::VariantClass;
using genomics::Cigar;
using genomics::DnaSequence;
using genomics::Mapping;
using genomics::Read;
using genomics::Reference;
using simdata::Variant;
using simdata::VariantType;

Reference
randomRef(u64 len, u64 seed)
{
    util::Pcg32 rng(seed);
    std::string s;
    for (u64 i = 0; i < len; ++i)
        s.push_back(genomics::baseToChar(rng.below(4)));
    Reference ref;
    ref.addChromosome("chr1", DnaSequence(s));
    return ref;
}

TEST(MappingEval, CorrectWithinTolerance)
{
    MappingEvaluator ev(50);
    Read read;
    read.truthPos = 1000;
    Mapping m;
    m.mapped = true;
    m.pos = 1030;
    ev.addRead(read, m);
    EXPECT_EQ(ev.result().correct, 1u);
    EXPECT_EQ(ev.result().mapped, 1u);
}

TEST(MappingEval, WrongStrandIncorrect)
{
    MappingEvaluator ev(50);
    Read read;
    read.truthPos = 1000;
    Mapping m;
    m.mapped = true;
    m.pos = 1000;
    m.reverse = true; // truth is forward
    ev.addRead(read, m);
    EXPECT_EQ(ev.result().correct, 0u);
}

TEST(MappingEval, FarPositionIncorrect)
{
    MappingEvaluator ev(50);
    Read read;
    read.truthPos = 1000;
    Mapping m;
    m.mapped = true;
    m.pos = 5000;
    ev.addRead(read, m);
    EXPECT_EQ(ev.result().correct, 0u);
    EXPECT_NEAR(ev.result().precision(), 0.0, 1e-12);
}

TEST(MappingEval, UnmappedCountsTowardRecallOnly)
{
    MappingEvaluator ev(50);
    Read read;
    read.truthPos = 1000;
    ev.addRead(read, Mapping{});
    EXPECT_EQ(ev.result().mapped, 0u);
    EXPECT_EQ(ev.result().readsTotal, 1u);
}

class PileupTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ref_ = randomRef(2000, 17);
    }

    /** Add @p n exact-copy reads over [pos, pos+len). */
    void
    addCoverage(PileupCaller &caller, u64 pos, u64 len, u32 n,
                DnaSequence (*mutate)(DnaSequence) = nullptr)
    {
        for (u32 i = 0; i < n; ++i) {
            DnaSequence seq = ref_.window(pos, len);
            if (mutate)
                seq = mutate(std::move(seq));
            Mapping m;
            m.mapped = true;
            m.pos = pos;
            genomics::Cigar c;
            c.push(genomics::CigarOp::Match,
                   static_cast<u32>(seq.size()));
            m.cigar = c;
            caller.addAlignment(seq, m);
        }
    }

    Reference ref_;
};

TEST_F(PileupTest, NoVariantsOnCleanCoverage)
{
    PileupCaller caller(ref_, CallerParams{});
    addCoverage(caller, 100, 200, 30);
    EXPECT_TRUE(caller.call().empty());
    EXPECT_NEAR(caller.meanDepth(), 30.0, 0.01);
}

TEST_F(PileupTest, HomozygousSnpCalled)
{
    PileupCaller caller(ref_, CallerParams{});
    u8 refBase = ref_.baseAt(150);
    u8 alt = (refBase + 1) & 3u;
    for (u32 i = 0; i < 30; ++i) {
        DnaSequence seq = ref_.window(100, 200);
        seq.set(50, alt); // genome position 150
        Mapping m;
        m.mapped = true;
        m.pos = 100;
        m.cigar = Cigar::parse("200M");
        caller.addAlignment(seq, m);
    }
    auto calls = caller.call();
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_EQ(calls[0].pos, 150u);
    EXPECT_EQ(calls[0].altBase, alt);
    EXPECT_EQ(calls[0].type, VariantType::Snp);
    EXPECT_NEAR(calls[0].altFraction, 1.0, 1e-12);
}

TEST_F(PileupTest, HeterozygousSnpCalledAtHalfFraction)
{
    PileupCaller caller(ref_, CallerParams{});
    u8 refBase = ref_.baseAt(150);
    u8 alt = (refBase + 1) & 3u;
    for (u32 i = 0; i < 30; ++i) {
        DnaSequence seq = ref_.window(100, 200);
        if (i % 2 == 0)
            seq.set(50, alt);
        Mapping m;
        m.mapped = true;
        m.pos = 100;
        m.cigar = Cigar::parse("200M");
        caller.addAlignment(seq, m);
    }
    auto calls = caller.call();
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_NEAR(calls[0].altFraction, 0.5, 0.05);
}

TEST_F(PileupTest, DeletionCalledFromCigar)
{
    PileupCaller caller(ref_, CallerParams{});
    for (u32 i = 0; i < 30; ++i) {
        // Read skips ref bases 200..202 (3-base deletion).
        DnaSequence seq = ref_.window(100, 100);
        seq.append(ref_.windowView(203, 97));
        Mapping m;
        m.mapped = true;
        m.pos = 100;
        m.cigar = Cigar::parse("100M3D97M");
        caller.addAlignment(seq, m);
    }
    auto calls = caller.call();
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_EQ(calls[0].type, VariantType::Deletion);
    EXPECT_EQ(calls[0].len, 3u);
    EXPECT_EQ(calls[0].pos, 199u); // anchored at the preceding base
}

TEST_F(PileupTest, InsertionCalledFromCigar)
{
    PileupCaller caller(ref_, CallerParams{});
    for (u32 i = 0; i < 30; ++i) {
        DnaSequence seq = ref_.window(100, 100);
        seq.push(genomics::BaseT);
        seq.push(genomics::BaseT);
        seq.append(ref_.windowView(200, 98));
        Mapping m;
        m.mapped = true;
        m.pos = 100;
        m.cigar = Cigar::parse("100M2I98M");
        caller.addAlignment(seq, m);
    }
    auto calls = caller.call();
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_EQ(calls[0].type, VariantType::Insertion);
    EXPECT_EQ(calls[0].len, 2u);
    EXPECT_EQ(calls[0].insSeq, "TT");
}

TEST_F(PileupTest, LowDepthSuppressed)
{
    CallerParams params;
    params.minDepth = 8;
    PileupCaller caller(ref_, params);
    u8 alt = (ref_.baseAt(150) + 1) & 3u;
    for (u32 i = 0; i < 4; ++i) { // below minDepth
        DnaSequence seq = ref_.window(100, 200);
        seq.set(50, alt);
        Mapping m;
        m.mapped = true;
        m.pos = 100;
        m.cigar = Cigar::parse("200M");
        caller.addAlignment(seq, m);
    }
    EXPECT_TRUE(caller.call().empty());
}

TEST(VariantBench, ExactSnpMatch)
{
    Variant t;
    t.chrom = 0;
    t.pos = 100;
    t.type = VariantType::Snp;
    t.altBase = genomics::BaseG;
    CalledVariant c;
    c.chrom = 0;
    c.pos = 100;
    c.type = VariantType::Snp;
    c.altBase = genomics::BaseG;
    auto r = eval::benchmarkVariants({ t }, { c }, VariantClass::Snp);
    EXPECT_EQ(r.tp, 1u);
    EXPECT_EQ(r.fp, 0u);
    EXPECT_EQ(r.fn, 0u);
    EXPECT_DOUBLE_EQ(r.f1(), 1.0);
}

TEST(VariantBench, WrongAltIsFalsePositive)
{
    Variant t;
    t.pos = 100;
    t.type = VariantType::Snp;
    t.altBase = genomics::BaseG;
    CalledVariant c;
    c.pos = 100;
    c.type = VariantType::Snp;
    c.altBase = genomics::BaseT;
    auto r = eval::benchmarkVariants({ t }, { c }, VariantClass::Snp);
    EXPECT_EQ(r.tp, 0u);
    EXPECT_EQ(r.fp, 1u);
    EXPECT_EQ(r.fn, 1u);
}

TEST(VariantBench, IndelPositionTolerance)
{
    Variant t;
    t.pos = 100;
    t.type = VariantType::Deletion;
    t.delLen = 2;
    CalledVariant c;
    c.pos = 101; // off by one (representation ambiguity)
    c.type = VariantType::Deletion;
    c.len = 2;
    auto r = eval::benchmarkVariants({ t }, { c }, VariantClass::Indel, 2);
    EXPECT_EQ(r.tp, 1u);
}

TEST(VariantBench, MissedTruthIsFalseNegative)
{
    Variant t;
    t.pos = 100;
    t.type = VariantType::Snp;
    t.altBase = genomics::BaseG;
    auto r = eval::benchmarkVariants({ t }, {}, VariantClass::Snp);
    EXPECT_EQ(r.fn, 1u);
    EXPECT_DOUBLE_EQ(r.recall(), 0.0);
}

TEST(VariantBench, ClassesSeparated)
{
    Variant snp;
    snp.pos = 100;
    snp.type = VariantType::Snp;
    snp.altBase = genomics::BaseG;
    Variant del;
    del.pos = 200;
    del.type = VariantType::Deletion;
    del.delLen = 1;
    CalledVariant c;
    c.pos = 200;
    c.type = VariantType::Deletion;
    c.len = 1;
    auto snpRes = eval::benchmarkVariants({ snp, del }, { c },
                                          VariantClass::Snp);
    EXPECT_EQ(snpRes.fn, 1u);
    EXPECT_EQ(snpRes.fp, 0u); // the deletion call is not in SNP class
    auto indelRes = eval::benchmarkVariants({ snp, del }, { c },
                                            VariantClass::Indel);
    EXPECT_EQ(indelRes.tp, 1u);
}

TEST(VariantBench, DuplicateCallsBecomeFalsePositives)
{
    Variant t;
    t.pos = 100;
    t.type = VariantType::Snp;
    t.altBase = genomics::BaseG;
    CalledVariant c;
    c.pos = 100;
    c.type = VariantType::Snp;
    c.altBase = genomics::BaseG;
    auto r = eval::benchmarkVariants({ t }, { c, c }, VariantClass::Snp);
    EXPECT_EQ(r.tp, 1u);
    EXPECT_EQ(r.fp, 1u); // the second call has no remaining truth match
}

} // namespace
