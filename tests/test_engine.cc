/**
 * @file
 * MapperEngine tests: the one driver core must hand every item of a
 * job to exactly one worker context, reuse contexts across runs, and
 * serve all three driver configuration layers (pair, streaming via
 * ParallelMapper, long-read) with bit-identical output for any thread
 * count.
 */

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <set>

#include "genpair/engine.hh"
#include "genpair/longread.hh"
#include "simdata/genome_generator.hh"
#include "simdata/read_simulator.hh"

namespace {

using namespace gpx;
using genpair::MapperEngine;
using genpair::WorkerContext;

/** Context recording which items its worker processed. */
struct RecordingContext : WorkerContext
{
    std::vector<u64> items;
    u64 runsSeen = 0;
};

TEST(MapperEngineTest, EveryItemProcessedExactlyOnce)
{
    MapperEngine engine(4, [](u32) {
        return std::make_unique<RecordingContext>();
    });
    constexpr u64 kItems = 1000;
    auto timing = engine.run(kItems, [](WorkerContext &ctx, u64 begin,
                                        u64 end) {
        auto &rec = static_cast<RecordingContext &>(ctx);
        for (u64 i = begin; i < end; ++i)
            rec.items.push_back(i);
    });
    EXPECT_GE(timing.seconds, 0.0);
    EXPECT_GT(timing.itemsPerSec, 0.0);

    std::set<u64> seen;
    engine.forEachContext([&](WorkerContext &ctx) {
        for (u64 i : static_cast<RecordingContext &>(ctx).items)
            EXPECT_TRUE(seen.insert(i).second) << "item " << i
                                               << " processed twice";
    });
    EXPECT_EQ(seen.size(), kItems);
}

TEST(MapperEngineTest, ContextsPersistAcrossRuns)
{
    MapperEngine engine(3, [](u32) {
        return std::make_unique<RecordingContext>();
    });
    for (int run = 0; run < 5; ++run)
        engine.run(64, [](WorkerContext &ctx, u64, u64) {
            ++static_cast<RecordingContext &>(ctx).runsSeen;
        });
    u64 totalBlocks = 0;
    engine.forEachContext([&](WorkerContext &ctx) {
        totalBlocks += static_cast<RecordingContext &>(ctx).runsSeen;
    });
    EXPECT_EQ(totalBlocks, 5u); // 64 items = one block per run
}

TEST(MapperEngineTest, EmptyJobCompletes)
{
    MapperEngine engine(2, [](u32) {
        return std::make_unique<RecordingContext>();
    });
    auto timing = engine.run(0, [](WorkerContext &, u64, u64) {
        FAIL() << "no block should be dispatched for an empty job";
    });
    EXPECT_EQ(timing.itemsPerSec, 0.0);
}

TEST(MapperEngineTest, ZeroThreadsUsesHardwareConcurrency)
{
    MapperEngine engine(0, [](u32) {
        return std::make_unique<RecordingContext>();
    });
    EXPECT_GE(engine.threads(), 1u);
}

TEST(MapperEngineTest, SlotIndexIsPassedToFactory)
{
    std::mutex mu;
    std::set<u32> slots;
    MapperEngine engine(4, [&](u32 slot) {
        std::lock_guard<std::mutex> lock(mu);
        slots.insert(slot);
        return std::make_unique<RecordingContext>();
    });
    EXPECT_EQ(slots, (std::set<u32>{ 0, 1, 2, 3 }));
}

class LongReadDriverTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        simdata::GenomeParams gp;
        gp.length = 300000;
        gp.chromosomes = 1;
        gp.seed = 31;
        ref_ = simdata::generateGenome(gp);
        map_ = std::make_unique<genpair::SeedMap>(
            ref_, genpair::SeedMapParams{});

        simdata::DiploidGenome donor(ref_, simdata::VariantParams{});
        simdata::LongReadSimParams lp;
        simdata::LongReadSimulator sim(donor, lp);
        reads_ = sim.simulate(24);
    }

    genomics::Reference ref_;
    std::unique_ptr<genpair::SeedMap> map_;
    std::vector<genomics::Read> reads_;
};

TEST_F(LongReadDriverTest, ParallelMatchesSerialMapper)
{
    // The serial reference: one LongReadMapper, reads in order.
    baseline::Mm2Lite dp(ref_, baseline::Mm2LiteParams{});
    genpair::LongReadMapper serial(ref_, *map_, genpair::LongReadParams{},
                                   &dp);
    std::vector<genomics::Mapping> expected;
    expected.reserve(reads_.size());
    for (const auto &read : reads_)
        expected.push_back(serial.mapRead(read));

    genpair::LongReadDriver driver(ref_, *map_,
                                   genpair::LongReadParams{},
                                   baseline::Mm2LiteParams{}, 4);
    auto result = driver.mapAll(reads_);

    ASSERT_EQ(result.mappings.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].mapped, result.mappings[i].mapped) << i;
        EXPECT_EQ(expected[i].pos, result.mappings[i].pos) << i;
        EXPECT_EQ(expected[i].score, result.mappings[i].score) << i;
        EXPECT_EQ(expected[i].reverse, result.mappings[i].reverse) << i;
    }

    const auto &s = serial.stats();
    const auto &p = result.stats;
    EXPECT_EQ(s.readsTotal, p.readsTotal);
    EXPECT_EQ(s.mapped, p.mapped);
    EXPECT_EQ(s.unmapped, p.unmapped);
    EXPECT_EQ(s.pseudoPairs, p.pseudoPairs);
    EXPECT_EQ(s.votes, p.votes);
    EXPECT_EQ(s.query.seedLookups, p.query.seedLookups);
    EXPECT_EQ(s.query.locationsFetched, p.query.locationsFetched);
    EXPECT_EQ(s.query.filterIterations, p.query.filterIterations);
    EXPECT_GT(result.timing.itemsPerSec, 0.0);
}

TEST_F(LongReadDriverTest, RepeatedMapAllDoesNotAccumulateStats)
{
    genpair::LongReadDriver driver(ref_, *map_,
                                   genpair::LongReadParams{},
                                   baseline::Mm2LiteParams{}, 2);
    auto first = driver.mapAll(reads_);
    auto second = driver.mapAll(reads_);
    EXPECT_EQ(first.stats.readsTotal, reads_.size());
    EXPECT_EQ(second.stats.readsTotal, reads_.size());
    EXPECT_EQ(first.stats.mapped, second.stats.mapped);
    ASSERT_EQ(first.mappings.size(), second.mappings.size());
    for (std::size_t i = 0; i < first.mappings.size(); ++i)
        EXPECT_EQ(first.mappings[i].pos, second.mappings[i].pos) << i;
}

} // namespace
