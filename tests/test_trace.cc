/**
 * @file
 * Recorded-trace co-simulation tests: stage events recorded by the
 * batched engine must round-trip through the gpx-stage-trace text
 * format, reproduce exactly the workload hwsim::buildWorkload()
 * synthesizes for the same pairs, drive the NMSL simulator, and yield
 * a WorkloadProfile consistent with the software PipelineStats.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "genpair/driver.hh"
#include "genpair/streaming.hh"
#include "hwsim/pipeline_model.hh"
#include "hwsim/trace_adapter.hh"
#include "simdata/genome_generator.hh"
#include "simdata/read_simulator.hh"

namespace {

using namespace gpx;

class TraceAdapterTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        simdata::GenomeParams gp;
        gp.length = 200000;
        gp.chromosomes = 1;
        gp.seed = 61;
        ref_ = simdata::generateGenome(gp);
        map_ = std::make_unique<genpair::SeedMap>(
            ref_, genpair::SeedMapParams{});
        simdata::DiploidGenome donor(ref_, simdata::VariantParams{});
        simdata::ReadSimulator sim(donor, simdata::ReadSimParams{});
        pairs_ = sim.simulate(250);
    }

    /** One traced mapping run serialized to trace text. */
    std::string
    recordTraceText(u32 threads)
    {
        genpair::DriverConfig config;
        config.threads = threads;
        config.recordTrace = true;
        genpair::ParallelMapper mapper(ref_, *map_, config);
        auto result = mapper.mapAll(pairs_);
        lastStats_ = result.stats;

        std::ostringstream os;
        hwsim::writeTraceHeader(os, map_->tableBits());
        for (const auto &record : result.trace)
            record.writeText(os);
        return os.str();
    }

    genomics::Reference ref_;
    std::unique_ptr<genpair::SeedMap> map_;
    std::vector<genomics::ReadPair> pairs_;
    genpair::PipelineStats lastStats_;
};

TEST_F(TraceAdapterTest, RecordedTraceMatchesSyntheticWorkload)
{
    std::istringstream is(recordTraceText(3));
    hwsim::RecordedRun run;
    std::string error;
    ASSERT_TRUE(hwsim::loadRecordedRun(is, &run, &error)) << error;

    // The recorded seed stream must be exactly what buildWorkload()
    // synthesizes from the same SeedMap and pairs — the co-simulation
    // contract: hardware models see the same lookups either way.
    auto synthetic = hwsim::buildWorkload(*map_, pairs_);
    ASSERT_EQ(run.traces.size(), synthetic.size());
    for (std::size_t p = 0; p < synthetic.size(); ++p) {
        for (std::size_t s = 0; s < 6; ++s) {
            EXPECT_EQ(run.traces[p][s].hash, synthetic[p][s].hash)
                << "pair " << p << " seed " << s;
            EXPECT_EQ(run.traces[p][s].locCount,
                      synthetic[p][s].locCount)
                << "pair " << p << " seed " << s;
        }
    }
    EXPECT_EQ(run.tableBits, map_->tableBits());
}

TEST_F(TraceAdapterTest, RebuiltStatsMatchSoftwareRun)
{
    std::istringstream is(recordTraceText(2));
    hwsim::RecordedRun run;
    std::string error;
    ASSERT_TRUE(hwsim::loadRecordedRun(is, &run, &error)) << error;

    EXPECT_EQ(run.stats.pairsTotal, lastStats_.pairsTotal);
    EXPECT_EQ(run.stats.lightAligned, lastStats_.lightAligned);
    EXPECT_EQ(run.stats.seedMissFallback, lastStats_.seedMissFallback);
    EXPECT_EQ(run.stats.paFilterFallback, lastStats_.paFilterFallback);
    EXPECT_EQ(run.stats.lightAlignFallback,
              lastStats_.lightAlignFallback);
    EXPECT_EQ(run.stats.query.filterIterations,
              lastStats_.query.filterIterations);
    EXPECT_EQ(run.stats.lightAlignsAttempted,
              lastStats_.lightAlignsAttempted);

    auto profile = run.profile();
    EXPECT_NEAR(profile.avgLightAlignsPerPair,
                static_cast<double>(lastStats_.lightAlignsAttempted) /
                    lastStats_.pairsTotal,
                1e-9);
    EXPECT_GT(run.avgLocationsPerSeed, 0.0);
}

TEST_F(TraceAdapterTest, TraceIsThreadCountInvariant)
{
    // Records land at input index, so the serialized trace must be
    // byte-identical for any pool size.
    EXPECT_EQ(recordTraceText(1), recordTraceText(5));
}

TEST_F(TraceAdapterTest, RecordedTraceDrivesNmslAndPipelineModel)
{
    std::istringstream is(recordTraceText(2));
    hwsim::RecordedRun run;
    std::string error;
    ASSERT_TRUE(hwsim::loadRecordedRun(is, &run, &error)) << error;

    hwsim::NmslConfig cfg = run.nmslConfig();
    cfg.windowSize = 256;
    hwsim::NmslSim sim(cfg);
    auto nmsl = sim.run(run.traces);
    EXPECT_EQ(nmsl.pairs, pairs_.size());
    EXPECT_GT(nmsl.mpairsPerSec, 0.0);

    hwsim::PipelineModel model;
    auto design = model.design(nmsl, cfg, run.profile());
    EXPECT_GT(design.endToEndMpairs, 0.0);
    EXPECT_GT(design.totalCost.areaMm2, 0.0);
}

TEST_F(TraceAdapterTest, StreamingSinkPreservesInputOrder)
{
    genpair::DriverConfig config;
    config.threads = 3;
    config.recordTrace = true;
    genpair::StreamingMapper mapper(ref_, *map_, config, 32);

    // Round-trip the pairs through FASTQ so the streaming reader sees
    // them exactly as gpx_map would.
    std::ostringstream r1, r2;
    for (const auto &pair : pairs_) {
        r1 << "@" << pair.first.name << "\n"
           << pair.first.seq.toString() << "\n+\n"
           << std::string(pair.first.seq.size(), 'I') << "\n";
        r2 << "@" << pair.second.name << "\n"
           << pair.second.seq.toString() << "\n+\n"
           << std::string(pair.second.seq.size(), 'I') << "\n";
    }
    std::istringstream r1s(r1.str()), r2s(r2.str());
    std::ostringstream samOut, traceOut;
    genomics::SamWriter sam(samOut, ref_);
    hwsim::writeTraceHeader(traceOut, map_->tableBits());
    auto result = mapper.run(
        r1s, r2s, sam,
        [&](const genpair::PairTraceRecord *records, u64 count) {
            for (u64 i = 0; i < count; ++i)
                records[i].writeText(traceOut);
        });
    EXPECT_EQ(result.pairs, pairs_.size());
    EXPECT_GT(result.chunks, 1u);

    // Streamed chunks must concatenate to the batch-run trace.
    EXPECT_EQ(traceOut.str(), recordTraceText(2));
}

TEST(TraceFormatTest, RejectsMalformedInputs)
{
    hwsim::RecordedRun run;
    std::string error;

    std::istringstream wrongMagic("# not a trace\n");
    EXPECT_FALSE(hwsim::loadRecordedRun(wrongMagic, &run, &error));
    EXPECT_NE(error.find("gpx-stage-trace"), std::string::npos);

    std::istringstream noBits("# gpx-stage-trace v1\nP 1 2\n");
    EXPECT_FALSE(hwsim::loadRecordedRun(noBits, &run, &error));

    std::istringstream truncated(
        "# gpx-stage-trace v1\n# tableBits 18\nP 1 2 3\n");
    EXPECT_FALSE(hwsim::loadRecordedRun(truncated, &run, &error));

    std::istringstream badRoute(
        "# gpx-stage-trace v1\n# tableBits 18\n"
        "P 1 1 1 1 1 1 1 1 1 1 1 1 9 0 0\n");
    EXPECT_FALSE(hwsim::loadRecordedRun(badRoute, &run, &error));
    EXPECT_NE(error.find("route"), std::string::npos);

    std::istringstream empty("# gpx-stage-trace v1\n# tableBits 18\n");
    EXPECT_FALSE(hwsim::loadRecordedRun(empty, &run, &error));

    std::istringstream good(
        "# gpx-stage-trace v1\n# tableBits 4\n"
        "P 17 2 1 0 1 0 1 0 1 0 1 0 1 5 3\n");
    ASSERT_TRUE(hwsim::loadRecordedRun(good, &run, &error)) << error;
    EXPECT_EQ(run.traces.size(), 1u);
    EXPECT_EQ(run.traces[0][0].hash, 17u & 0xF); // masked to tableBits
    EXPECT_EQ(run.stats.lightAligned, 1u);
    EXPECT_EQ(run.stats.query.filterIterations, 5u);
}

} // namespace
