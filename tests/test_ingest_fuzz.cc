/**
 * @file
 * Ingest-path fuzz wall: seeded byte-level mutations (flips, inserts,
 * deletes, truncations) over paired FASTQ text, driven through the
 * chunked parallel ingest and the full streaming spine.
 *
 * The contract under fuzz is binary: either the input parses
 * bit-identically to the serial FastqReader (same reads, same
 * ambiguous-base accounting), or it is rejected with the serial
 * reader's diagnostic at the serial reader's position — never a crash,
 * never torn output. Everything is seeded (util::Pcg32), so a failure
 * replays from the iteration number printed in the assertion message.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "genomics/fasta.hh"
#include "genomics/fastq_ingest.hh"
#include "genomics/sam.hh"
#include "genpair/driver.hh"
#include "genpair/streaming.hh"
#include "simdata/genome_generator.hh"
#include "simdata/read_simulator.hh"
#include "simdata/variants.hh"
#include "util/byte_stream.hh"
#include "util/gzip_stream.hh"
#include "util/rng.hh"

namespace {

using namespace gpx;
using genomics::FastqParse;
using genomics::FastqReader;
using genomics::IngestError;
using genomics::Read;
using genomics::ReadPair;

/** Valid FASTQ text of @p n records; seqs drawn from @p rng. */
std::string
makeFastq(util::Pcg32 &rng, u64 n, const char *suffix,
          u64 ambiguous_every = 0)
{
    static const char kBases[] = "ACGT";
    std::string text;
    for (u64 i = 0; i < n; ++i) {
        const u64 len = 36 + rng.below(37);
        text += "@fz" + std::to_string(i) + suffix + "\n";
        std::string seq;
        for (u64 b = 0; b < len; ++b)
            seq.push_back(kBases[rng.below(4)]);
        if (ambiguous_every && i % ambiguous_every == 0)
            seq[0] = 'N';
        text += seq + "\n+\n" + std::string(len, 'I') + "\n";
    }
    return text;
}

/** One ingest outcome: the pairs parsed before the winning error. */
struct IngestOut
{
    std::vector<ReadPair> pairs;
    IngestError err;
    u64 ambiguousBases = 0;
};

/**
 * The serial reference: interleaved tryNext over both streams, the
 * discipline the chunked pipeline documents itself against.
 */
IngestOut
serialIngest(const std::string &t1, const std::string &t2)
{
    std::istringstream i1(t1), i2(t2);
    FastqReader r1(i1), r2(i2);
    IngestOut out;
    for (u64 idx = 0;; ++idx) {
        Read a, b;
        std::string e1, e2;
        // Error candidates carry 1-based record numbers (the index the
        // failing record would have had), matching the chunker.
        FastqParse p1 = r1.tryNext(a, &e1);
        if (p1 == FastqParse::kError) {
            out.err = { idx + 1, 0, e1 };
            break;
        }
        FastqParse p2 = r2.tryNext(b, &e2);
        if (p2 == FastqParse::kError) {
            out.err = { idx + 1, 1, e2 };
            break;
        }
        if ((p1 == FastqParse::kEof) != (p2 == FastqParse::kEof)) {
            out.err = { idx + 1, 2, "stream length disagreement" };
            break;
        }
        if (p1 == FastqParse::kEof)
            break;
        out.pairs.push_back({ std::move(a), std::move(b) });
    }
    out.ambiguousBases =
        r1.stats().ambiguousBases + r2.stats().ambiguousBases;
    return out;
}

/** The parallel-ingest path: chunker + slice parsers, minimum error wins. */
IngestOut
chunkedIngest(const std::string &t1, const std::string &t2,
              u64 chunk_pairs)
{
    util::StringSource s1(t1), s2(t2);
    genomics::PairedFastqChunker chunker(s1, s2, chunk_pairs);
    std::atomic<bool> warned{ false };
    IngestOut out;
    genomics::FastqChunk chunk;
    while (chunker.next(chunk)) {
        genomics::ParsedChunk parsed =
            genomics::parseFastqChunk(std::move(chunk), &warned);
        for (auto &pair : parsed.pairs)
            out.pairs.push_back(std::move(pair));
        if (parsed.error.set() && parsed.error.before(out.err))
            out.err = parsed.error;
        out.ambiguousBases += parsed.r1Stats.ambiguousBases +
                              parsed.r2Stats.ambiguousBases;
        chunk = genomics::FastqChunk{};
    }
    return out;
}

/** Apply one random byte-level mutation in place. */
void
mutate(util::Pcg32 &rng, std::string &text)
{
    if (text.empty())
        return;
    const u64 pos = rng.below64(text.size());
    switch (rng.below(4)) {
      case 0:
        text[pos] = static_cast<char>(rng.below(256));
        break;
      case 1:
        text.erase(pos, 1);
        break;
      case 2:
        text.insert(pos, 1, static_cast<char>(rng.below(256)));
        break;
      default:
        text.resize(pos); // truncation, possibly mid-record
        break;
    }
}

/** Chunked == serial: identical reads on success, same winner on error. */
void
expectMatchesSerial(const IngestOut &serial, const IngestOut &chunked,
                    const std::string &context)
{
    if (serial.err.set()) {
        ASSERT_TRUE(chunked.err.set()) << context;
        EXPECT_EQ(chunked.err.recordIndex, serial.err.recordIndex)
            << context;
        EXPECT_EQ(chunked.err.rank, serial.err.rank) << context;
        // Parse diagnostics are reproduced verbatim; the pair-level
        // disagreement message is phrased by each driver.
        if (serial.err.rank < 2) {
            EXPECT_EQ(chunked.err.message, serial.err.message) << context;
        }
        return;
    }
    ASSERT_FALSE(chunked.err.set())
        << context << ": " << chunked.err.message;
    ASSERT_EQ(chunked.pairs.size(), serial.pairs.size()) << context;
    for (std::size_t i = 0; i < serial.pairs.size(); ++i) {
        EXPECT_EQ(chunked.pairs[i].first.name, serial.pairs[i].first.name)
            << context << " pair " << i;
        EXPECT_EQ(chunked.pairs[i].first.seq.toString(),
                  serial.pairs[i].first.seq.toString())
            << context << " pair " << i;
        EXPECT_EQ(chunked.pairs[i].second.seq.toString(),
                  serial.pairs[i].second.seq.toString())
            << context << " pair " << i;
    }
    EXPECT_EQ(chunked.ambiguousBases, serial.ambiguousBases) << context;
}

TEST(IngestFuzz, CleanInputParsesIdenticallyAcrossChunkSizes)
{
    util::Pcg32 rng(11);
    const std::string r1 = makeFastq(rng, 30, "/1", 7);
    const std::string r2 = makeFastq(rng, 30, "/2");
    IngestOut serial = serialIngest(r1, r2);
    ASSERT_FALSE(serial.err.set()) << serial.err.message;
    ASSERT_EQ(serial.pairs.size(), 30u);
    EXPECT_GE(serial.ambiguousBases, 5u); // the injected N bases
    for (u64 chunk : { u64{ 1 }, u64{ 3 }, u64{ 7 }, u64{ 64 } })
        expectMatchesSerial(serial, chunkedIngest(r1, r2, chunk),
                            "chunk_pairs=" + std::to_string(chunk));
}

TEST(IngestFuzz, MutatedInputMatchesSerialOrRejectsIdentically)
{
    util::Pcg32 dataRng(17);
    const std::string base1 = makeFastq(dataRng, 30, "/1", 11);
    const std::string base2 = makeFastq(dataRng, 30, "/2");
    util::Pcg32 rng(1234);
    u64 rejected = 0;
    for (int iter = 0; iter < 300; ++iter) {
        std::string m1 = base1, m2 = base2;
        mutate(rng, rng.chance(0.5) ? m1 : m2);
        if (rng.chance(0.25)) // occasionally stack a second mutation
            mutate(rng, rng.chance(0.5) ? m1 : m2);
        IngestOut serial = serialIngest(m1, m2);
        rejected += serial.err.set();
        const std::string context = "iter " + std::to_string(iter);
        expectMatchesSerial(serial, chunkedIngest(m1, m2, 3),
                            context + " chunk=3");
        expectMatchesSerial(serial, chunkedIngest(m1, m2, 7),
                            context + " chunk=7");
    }
    // The corpus must exercise both arms of the contract.
    EXPECT_GT(rejected, 10u);
    EXPECT_LT(rejected, 300u);
}

TEST(IngestFuzz, CorruptGzipNeverCrashesTheInflateStack)
{
    if (!util::gzipSupported())
        GTEST_SKIP() << "binary built without zlib";
    util::Pcg32 dataRng(23);
    const std::string plain = makeFastq(dataRng, 40, "/1");
    const std::string gz = util::gzipCompress(plain);
    util::Pcg32 rng(5678);
    for (int iter = 0; iter < 200; ++iter) {
        std::string corrupt = gz;
        const u32 flips = 1 + rng.below(3);
        for (u32 f = 0; f < flips; ++f)
            corrupt[rng.below64(corrupt.size())] =
                static_cast<char>(rng.below(256));
        if (rng.chance(0.2))
            corrupt.resize(rng.below64(corrupt.size()));

        util::StringSource src(corrupt);
        util::AutoInflateSource inflate(src);
        FastqReader reader(inflate);
        Read read;
        std::string err;
        FastqParse status;
        u64 records = 0;
        while ((status = reader.tryNext(read, &err)) ==
               FastqParse::kRecord)
            ++records;
        // Any outcome but a crash/hang is in contract; a rejection
        // must carry a diagnostic.
        EXPECT_LE(records, 40u) << "iter " << iter;
        if (status == FastqParse::kError) {
            EXPECT_FALSE(err.empty()) << "iter " << iter;
        }
    }
}

TEST(IngestFuzz, FullSpineRejectsOrMapsNeverCrashes)
{
    simdata::GenomeParams gp;
    gp.length = 1 << 16;
    gp.chromosomes = 1;
    gp.seed = 77;
    genomics::Reference ref = simdata::generateGenome(gp);
    simdata::VariantParams vp;
    vp.snpRate = 0;
    vp.indelRate = 0;
    vp.seed = 78;
    simdata::DiploidGenome donor(ref, vp);
    simdata::ReadSimParams rp;
    rp.seed = 79;
    simdata::ReadSimulator sim(donor, rp);
    std::vector<ReadPair> pairs = sim.simulate(300);
    std::vector<Read> reads1, reads2;
    for (const auto &pair : pairs) {
        reads1.push_back(pair.first);
        reads2.push_back(pair.second);
    }
    std::ostringstream o1, o2;
    genomics::writeFastq(o1, reads1);
    genomics::writeFastq(o2, reads2);
    const std::string base1 = o1.str(), base2 = o2.str();

    genpair::SeedMap map =
        genpair::SeedMap::build(ref, genpair::SeedMapParams{}, 2);
    genpair::DriverConfig config;
    config.threads = 2;
    genpair::ParallelMapper mapper(ref, map, config);

    util::Pcg32 rng(4242);
    u64 okRuns = 0;
    for (int iter = 0; iter < 10; ++iter) {
        std::string m1 = base1, m2 = base2;
        if (iter > 0)
            mutate(rng, rng.chance(0.5) ? m1 : m2);

        genpair::StreamingMapper spine(mapper, /*chunk_pairs=*/64,
                                       /*io_threads=*/2);
        std::istringstream i1(m1), i2(m2);
        std::ostringstream out;
        genomics::SamWriter sam(out, ref);
        sam.checkWrites("<fuzz>", /*fatal_on_error=*/false);
        sam.writeHeader();
        genpair::StreamingResult sr;
        IngestError err;
        genpair::StreamRunStatus status =
            spine.tryRun(i1, i2, sam, sr, &err);
        if (status == genpair::StreamRunStatus::kOk) {
            ++okRuns;
            if (iter == 0) {
                EXPECT_EQ(sr.pairs, 300u);
            }
        } else {
            ASSERT_EQ(status, genpair::StreamRunStatus::kParseError)
                << "iter " << iter;
            EXPECT_TRUE(err.set()) << "iter " << iter;
        }
    }
    EXPECT_GE(okRuns, 1u); // the unmutated run must map
}

} // namespace
