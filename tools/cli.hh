/**
 * @file
 * Minimal flag parsing shared by the command-line tools. Flags are
 * `--name value` pairs plus boolean `--name`; anything unknown is a
 * fatal usage error so typos never silently fall back to defaults.
 */

#ifndef GPX_TOOLS_CLI_HH
#define GPX_TOOLS_CLI_HH

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/version.hh"

namespace gpx {
namespace tools {

/** Parsed command line: flag -> value ("" for boolean flags). */
class Cli
{
  public:
    /**
     * @param argc/argv Program arguments.
     * @param value_flags Flags that take a value.
     * @param bool_flags Flags that do not.
     * @param usage Printed on any parse error.
     */
    Cli(int argc, char **argv, const std::set<std::string> &value_flags,
        const std::set<std::string> &bool_flags, const std::string &usage)
        : usage_(usage)
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                std::printf("%s", usage_.c_str());
                std::exit(0);
            }
            if (arg == "--version") {
                std::printf("gpx %s\n", kVersion);
                std::exit(0);
            }
            if (bool_flags.count(arg)) {
                flags_[arg] = "";
                continue;
            }
            if (!value_flags.count(arg))
                die("unknown flag: " + arg);
            if (i + 1 >= argc)
                die("flag " + arg + " needs a value");
            flags_[arg] = argv[++i];
            multi_[arg].push_back(flags_[arg]);
        }
    }

    bool has(const std::string &flag) const { return flags_.count(flag); }

    /**
     * Every value given for a repeatable flag, in the order given
     * (str()/num() see only the last). Empty when the flag is absent.
     */
    std::vector<std::string>
    all(const std::string &flag) const
    {
        auto it = multi_.find(flag);
        return it == multi_.end() ? std::vector<std::string>{}
                                  : it->second;
    }

    std::string
    str(const std::string &flag, const std::string &fallback = "") const
    {
        auto it = flags_.find(flag);
        return it == flags_.end() ? fallback : it->second;
    }

    /** Required string flag; exits with usage if absent. */
    std::string
    required(const std::string &flag) const
    {
        if (!has(flag))
            die("missing required flag: " + flag);
        return flags_.at(flag);
    }

    long long
    num(const std::string &flag, long long fallback) const
    {
        auto it = flags_.find(flag);
        if (it == flags_.end())
            return fallback;
        char *end = nullptr;
        long long v = std::strtoll(it->second.c_str(), &end, 10);
        if (end == nullptr || *end != '\0')
            die("flag " + flag + " expects an integer, got '" +
                it->second + "'");
        return v;
    }

    double
    real(const std::string &flag, double fallback) const
    {
        auto it = flags_.find(flag);
        if (it == flags_.end())
            return fallback;
        char *end = nullptr;
        double v = std::strtod(it->second.c_str(), &end);
        if (end == nullptr || *end != '\0')
            die("flag " + flag + " expects a number, got '" + it->second +
                "'");
        return v;
    }

  private:
    [[noreturn]] void
    die(const std::string &message) const
    {
        std::fprintf(stderr, "error: %s\n\n%s\n", message.c_str(),
                     usage_.c_str());
        std::exit(2);
    }

    std::map<std::string, std::string> flags_;
    std::map<std::string, std::vector<std::string>> multi_;
    std::string usage_;
};

} // namespace tools
} // namespace gpx

#endif // GPX_TOOLS_CLI_HH
