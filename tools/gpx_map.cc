/**
 * @file
 * gpx_map — end-to-end paired-end read mapping with the GenPair
 * pipeline and MM2-lite DP fallback (the paper's "GenPair + MM2"
 * software configuration, §6), producing SAM. Loads a prebuilt SeedMap
 * image when given, otherwise builds one in memory.
 *
 * The residual-routing summary it prints after mapping is the Fig. 10
 * view of the run: how many pairs the fast path handled and where the
 * rest fell back.
 */

#include <fstream>
#include <iostream>

#include "cli.hh"
#include "genomics/fasta.hh"
#include "genomics/sam.hh"
#include "genpair/seedmap.hh"
#include "genpair/longread.hh"
#include "genpair/streaming.hh"
#include "genpair/seedmap_io.hh"
#include "util/logging.hh"
#include "util/timer.hh"

namespace {

const char kUsage[] =
    "usage: gpx_map --ref REF.fa --r1 R1.fq --r2 R2.fq --out OUT.sam "
    "[options]\n"
    "       gpx_map --ref REF.fa --long READS.fq --out OUT.sam\n"
    "\n"
    "  --ref FILE           reference FASTA\n"
    "  --r1 FILE            first-in-pair FASTQ\n"
    "  --r2 FILE            second-in-pair FASTQ\n"
    "  --long FILE          long-read FASTQ (SS4.7 pseudo-pair mode;\n"
    "                       replaces --r1/--r2)\n"
    "  --out FILE           output SAM ('-' for stdout)\n"
    "  --index FILE         prebuilt SeedMap image (from gpx_index);\n"
    "                       v2 images are served zero-copy via mmap,\n"
    "                       v1 images load through the legacy copy\n"
    "                       path; omitted = build in memory\n"
    "  --no-mmap            force the owning copy path even for v2\n"
    "                       images (debugging / comparison)\n"
    "  --threads N          worker threads (0 = hardware)     [0]\n"
    "  --chunk N            read pairs mapped per chunk (the\n"
    "                       memory bound)                 [65536]\n"
    "  --delta N            paired-adjacency threshold in bp  [500]\n"
    "  --filter-threshold N index filter when building inline [500]\n"
    "  --baseline           bypass GenPair; map with MM2-lite only\n"
    "  --version            print the gpx version and exit\n";

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpx;
    tools::Cli cli(argc, argv,
                   { "--ref", "--r1", "--r2", "--long", "--out",
                     "--index", "--threads", "--delta",
                     "--filter-threshold", "--chunk" },
                   { "--baseline", "--no-mmap" }, kUsage);

    // Reference.
    const std::string refPath = cli.required("--ref");
    std::ifstream refFile(refPath);
    if (!refFile)
        gpx_fatal("cannot open reference: ", refPath);
    genomics::Reference ref = genomics::readFasta(refFile);
    if (ref.totalLength() == 0)
        gpx_fatal("reference is empty: ", refPath);

    // Reads (streamed; opened here so path errors surface before the
    // index is built).
    const bool longMode = cli.has("--long");
    std::ifstream r1File, r2File, longFile;
    if (longMode) {
        longFile.open(cli.str("--long"));
        if (!longFile)
            gpx_fatal("cannot open --long FASTQ");
    } else {
        r1File.open(cli.required("--r1"));
        if (!r1File)
            gpx_fatal("cannot open --r1 FASTQ");
        r2File.open(cli.required("--r2"));
        if (!r2File)
            gpx_fatal("cannot open --r2 FASTQ");
    }

    // SeedMap: open the offline image (zero-copy mmap for v2 images,
    // legacy stream copy for v1) or build inline. Either way the query
    // path below consumes only the non-owning view.
    std::optional<genpair::SeedMapImage> image;
    std::unique_ptr<genpair::SeedMap> built;
    genpair::SeedMapView map;
    if (cli.has("--index")) {
        genpair::SeedMapOpenOptions opts;
        opts.forceCopy = cli.has("--no-mmap");
        std::string err;
        util::Stopwatch watch;
        image = genpair::SeedMapImage::open(cli.str("--index"), opts,
                                            &err);
        if (!image)
            gpx_fatal("index image rejected: ", err);
        map = image->view();
        std::printf("opened index in %.3f s (%s, %u shard%s)\n",
                    watch.seconds(),
                    image->mmapBacked() ? "mmap, zero-copy"
                                        : "legacy copy path",
                    image->shardCount(),
                    image->shardCount() == 1 ? "" : "s");
    } else {
        genpair::SeedMapParams sp;
        sp.filterThreshold =
            static_cast<u32>(cli.num("--filter-threshold", 500));
        util::Stopwatch watch;
        built = std::make_unique<genpair::SeedMap>(genpair::SeedMap::build(
            ref, sp, static_cast<u32>(cli.num("--threads", 0))));
        map = *built;
        std::printf("built SeedMap inline in %.2f s\n", watch.seconds());
    }

    // SAM output (the stream must exist before mapping starts).
    std::ofstream outFile;
    std::ostream *os = nullptr;
    if (cli.str("--out") == "-") {
        os = &std::cout;
    } else {
        outFile.open(cli.required("--out"));
        if (!outFile)
            gpx_fatal("cannot open output: ", cli.str("--out"));
        os = &outFile;
    }
    genomics::SamWriter sam(*os, ref);
    sam.writeHeader();

    if (longMode) {
        // SS4.7: pseudo-pair decomposition + Location Voting + DP.
        baseline::Mm2Lite dp(ref, baseline::Mm2LiteParams{});
        genpair::LongReadParams lrParams;
        lrParams.delta = static_cast<u32>(cli.num("--delta", 500));
        genpair::LongReadMapper mapper(ref, map, lrParams, &dp);
        genomics::FastqReader reader(longFile);
        genomics::Read read;
        util::Stopwatch watch;
        while (reader.next(read)) {
            auto m = mapper.mapRead(read);
            sam.writeRead(read, m);
        }
        os->flush();
        const auto &st = mapper.stats();
        std::printf("mapped %llu/%llu long reads in %.2f s "
                    "(%.1f Mcells DP/read)\n",
                    static_cast<unsigned long long>(st.mapped),
                    static_cast<unsigned long long>(st.readsTotal),
                    watch.seconds(),
                    st.readsTotal ? static_cast<double>(st.dpCells) /
                                        st.readsTotal / 1e6
                                  : 0.0);
        std::printf("wrote %llu SAM records\n",
                    static_cast<unsigned long long>(
                        sam.recordsWritten()));
        return 0;
    }

    // Map in bounded-memory chunks.
    genpair::DriverConfig config;
    config.threads = static_cast<u32>(cli.num("--threads", 0));
    config.pipeline.delta = static_cast<u32>(cli.num("--delta", 500));
    config.useGenPair = !cli.has("--baseline");
    genpair::StreamingMapper mapper(
        ref, map, config, static_cast<u64>(cli.num("--chunk", 65536)));
    auto result = mapper.run(r1File, r2File, sam);
    os->flush();
    std::printf("mapped %llu pairs in %.2f s (%.0f pairs/s, %llu "
                "chunks; pure mapping %.2f s = %.0f pairs/s)\n",
                static_cast<unsigned long long>(result.pairs),
                result.seconds, result.pairsPerSec,
                static_cast<unsigned long long>(result.chunks),
                result.mapSeconds,
                result.mapSeconds > 0 ? result.pairs / result.mapSeconds
                                      : 0.0);

    // Fig. 10 routing summary.
    const auto &st = result.stats;
    if (config.useGenPair) {
        std::printf("GenPair routing:\n");
        std::printf("  light-aligned fast path   %6.2f%%\n",
                    100 * st.fraction(st.lightAligned));
        std::printf("  DP-align at candidates    %6.2f%%\n",
                    100 * st.fraction(st.dpAligned));
        std::printf("  SeedMap miss -> full DP   %6.2f%%\n",
                    100 * st.fraction(st.seedMissFallback));
        std::printf("  PA-filter miss -> full DP %6.2f%%\n",
                    100 * st.fraction(st.paFilterFallback));
        std::printf("  unmapped                  %6.2f%%\n",
                    100 * st.fraction(st.unmapped));
    }

    std::printf("wrote %llu SAM records\n",
                static_cast<unsigned long long>(sam.recordsWritten()));
    return 0;
}
