/**
 * @file
 * gpx_map — end-to-end paired-end read mapping with the GenPair
 * pipeline and MM2-lite DP fallback (the paper's "GenPair + MM2"
 * software configuration, §6), producing SAM. Loads a prebuilt SeedMap
 * image when given, otherwise builds one in memory.
 *
 * The residual-routing summary it prints after mapping is the Fig. 10
 * view of the run: how many pairs the fast path handled and where the
 * rest fell back. `--stats-json` emits the full PipelineStats
 * (including the per-stage counters of the stage graph) machine-
 * readably, and `--trace` records per-pair stage events in the
 * gpx-stage-trace format that the hwsim trace adapter replays through
 * the NMSL and pipeline hardware models.
 */

#include <fstream>
#include <iostream>

#include "cli.hh"
#include "genomics/fasta.hh"
#include "genomics/sam.hh"
#include "genpair/seedmap.hh"
#include "genpair/longread.hh"
#include "genpair/streaming.hh"
#include "genpair/seedmap_io.hh"
#include "hwsim/trace_adapter.hh"
#include "util/logging.hh"
#include "util/timer.hh"

namespace {

const char kUsage[] =
    "usage: gpx_map --ref REF.fa --r1 R1.fq --r2 R2.fq --out OUT.sam "
    "[options]\n"
    "       gpx_map --ref REF.fa --long READS.fq --out OUT.sam\n"
    "\n"
    "  --ref FILE           reference FASTA\n"
    "  --r1 FILE            first-in-pair FASTQ (plain or gzip)\n"
    "  --r2 FILE            second-in-pair FASTQ (plain or gzip)\n"
    "  --long FILE          long-read FASTQ (SS4.7 pseudo-pair mode;\n"
    "                       replaces --r1/--r2)\n"
    "  --out FILE           output SAM ('-' for stdout)\n"
    "  --index FILE         prebuilt SeedMap image (from gpx_index);\n"
    "                       v2 images are served zero-copy via mmap,\n"
    "                       v1 images load through the legacy copy\n"
    "                       path; omitted = build in memory\n"
    "  --no-mmap            force the owning copy path even for v2\n"
    "                       images (debugging / comparison)\n"
    "  --threads N          worker threads (0 = hardware)     [0]\n"
    "  --io-threads N       FASTQ parser threads of the I/O\n"
    "                       spine (paired mode)               [1]\n"
    "  --chunk N            read pairs mapped per chunk (the\n"
    "                       memory bound)                 [65536]\n"
    "  --delta N            paired-adjacency threshold in bp  [500]\n"
    "  --filter-threshold N index filter when building inline [500]\n"
    "  --baseline           bypass GenPair; map with MM2-lite only\n"
    "  --stats-json FILE    write PipelineStats (incl. per-stage\n"
    "                       counters) as JSON after mapping; in\n"
    "                       --long mode, LongReadStats. Both carry\n"
    "                       the ambiguous-base ingest count\n"
    "  --trace FILE         record per-pair stage events for hwsim\n"
    "                       co-simulation (gpx-stage-trace v1)\n"
    "  --version            print the gpx version and exit\n";

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpx;
    tools::Cli cli(argc, argv,
                   { "--ref", "--r1", "--r2", "--long", "--out",
                     "--index", "--threads", "--io-threads", "--delta",
                     "--filter-threshold", "--chunk", "--stats-json",
                     "--trace" },
                   { "--baseline", "--no-mmap" }, kUsage);

    // Reference.
    const std::string refPath = cli.required("--ref");
    std::ifstream refFile(refPath);
    if (!refFile)
        gpx_fatal("cannot open reference: ", refPath);
    genomics::Reference ref = genomics::readFasta(refFile);
    if (ref.totalLength() == 0)
        gpx_fatal("reference is empty: ", refPath);

    // Reads (streamed; opened here so path errors surface before the
    // index is built).
    const bool longMode = cli.has("--long");
    std::ifstream r1File, r2File, longFile;
    if (longMode) {
        longFile.open(cli.str("--long"));
        if (!longFile)
            gpx_fatal("cannot open --long FASTQ");
        if (cli.has("--trace"))
            gpx_fatal("--trace records paired-end stage events; it "
                      "does not apply to --long mode");
    } else {
        r1File.open(cli.required("--r1"));
        if (!r1File)
            gpx_fatal("cannot open --r1 FASTQ");
        r2File.open(cli.required("--r2"));
        if (!r2File)
            gpx_fatal("cannot open --r2 FASTQ");
    }

    // SeedMap: open the offline image (zero-copy mmap for v2 images,
    // legacy stream copy for v1) or build inline. Either way the query
    // path below consumes only the non-owning view.
    std::optional<genpair::SeedMapImage> image;
    std::unique_ptr<genpair::SeedMap> built;
    genpair::SeedMapView map;
    if (cli.has("--index")) {
        genpair::SeedMapOpenOptions opts;
        opts.forceCopy = cli.has("--no-mmap");
        std::string err;
        util::Stopwatch watch;
        image = genpair::SeedMapImage::open(cli.str("--index"), opts,
                                            &err);
        if (!image)
            gpx_fatal("index image rejected: ", err);
        map = image->view();
        std::printf("opened index in %.3f s (%s, %u shard%s)\n",
                    watch.seconds(),
                    image->mmapBacked() ? "mmap, zero-copy"
                                        : "legacy copy path",
                    image->shardCount(),
                    image->shardCount() == 1 ? "" : "s");
    } else {
        genpair::SeedMapParams sp;
        sp.filterThreshold =
            static_cast<u32>(cli.num("--filter-threshold", 500));
        util::Stopwatch watch;
        built = std::make_unique<genpair::SeedMap>(genpair::SeedMap::build(
            ref, sp, static_cast<u32>(cli.num("--threads", 0))));
        map = *built;
        std::printf("built SeedMap inline in %.2f s\n", watch.seconds());
    }

    // SAM output (the stream must exist before mapping starts).
    std::ofstream outFile;
    std::ostream *os = nullptr;
    if (cli.str("--out") == "-") {
        os = &std::cout;
    } else {
        outFile.open(cli.required("--out"));
        if (!outFile)
            gpx_fatal("cannot open output: ", cli.str("--out"));
        os = &outFile;
    }
    genomics::SamWriter sam(*os, ref);
    // Batch mode is all-or-nothing: every SAM write is checked, and a
    // failure (disk full, short write) aborts with the output path and
    // byte offset rather than leaving a silently truncated file.
    sam.checkWrites(cli.str("--out") == "-" ? "<stdout>"
                                            : cli.str("--out"),
                    /*fatal_on_error=*/true);
    sam.writeHeader();

    if (longMode) {
        // SS4.7: pseudo-pair decomposition + Location Voting + DP,
        // chunk-streamed through the parallel LongReadDriver.
        genpair::LongReadParams lrParams;
        lrParams.delta = static_cast<u32>(cli.num("--delta", 500));
        genpair::LongReadDriver driver(
            ref, map, lrParams, baseline::Mm2LiteParams{},
            static_cast<u32>(cli.num("--threads", 0)));
        // Long reads are ~60x a short pair; keep the resident chunk
        // small unless the user asked otherwise.
        const u64 chunkReads = static_cast<u64>(
            cli.has("--chunk") ? cli.num("--chunk", 4096) : 4096);
        genomics::FastqReader reader(longFile);
        genpair::LongReadStats stats;
        double mapSeconds = 0;
        util::Stopwatch watch;
        std::vector<genomics::Read> reads;
        bool eof = false;
        while (!eof) {
            reads.clear();
            genomics::Read read;
            while (reads.size() < chunkReads) {
                if (!reader.next(read)) {
                    eof = true;
                    break;
                }
                reads.push_back(std::move(read));
            }
            if (reads.empty())
                break;
            auto result = driver.mapAll(reads);
            stats += result.stats;
            mapSeconds += result.timing.seconds;
            for (std::size_t i = 0; i < reads.size(); ++i)
                sam.writeRead(reads[i], result.mappings[i]);
        }
        os->flush();
        std::printf("mapped %llu/%llu long reads in %.2f s "
                    "(%u threads, pure mapping %.2f s, "
                    "%.1f Mcells DP/read)\n",
                    static_cast<unsigned long long>(stats.mapped),
                    static_cast<unsigned long long>(stats.readsTotal),
                    watch.seconds(), driver.threads(), mapSeconds,
                    stats.readsTotal ? static_cast<double>(stats.dpCells) /
                                           stats.readsTotal / 1e6
                                     : 0.0);
        std::printf("wrote %llu SAM records\n",
                    static_cast<unsigned long long>(
                        sam.recordsWritten()));
        if (cli.has("--stats-json")) {
            std::ofstream statsFile(cli.str("--stats-json"));
            if (!statsFile)
                gpx_fatal("cannot open stats output: ",
                          cli.str("--stats-json"));
            genpair::writeLongReadStatsJson(
                statsFile, stats, reader.stats().ambiguousBases);
            statsFile.flush();
            if (!statsFile)
                gpx_fatal("write to stats file failed");
            std::printf("wrote long-read stats to %s\n",
                        cli.str("--stats-json").c_str());
        }
        return 0;
    }

    // Map in bounded-memory chunks.
    genpair::DriverConfig config;
    config.threads = static_cast<u32>(cli.num("--threads", 0));
    config.pipeline.delta = static_cast<u32>(cli.num("--delta", 500));
    config.useGenPair = !cli.has("--baseline");

    // Stage-event trace (hwsim co-simulation hand-off).
    std::ofstream traceFile;
    genpair::StreamingMapper::TraceSink traceSink;
    if (cli.has("--trace")) {
        if (!config.useGenPair)
            gpx_fatal("--trace records GenPair stage events; drop "
                      "--baseline");
        traceFile.open(cli.str("--trace"));
        if (!traceFile)
            gpx_fatal("cannot open trace output: ", cli.str("--trace"));
        config.recordTrace = true;
        hwsim::writeTraceHeader(traceFile, map.tableBits());
        traceSink = [&traceFile](const genpair::PairTraceRecord *records,
                                 u64 count) {
            for (u64 i = 0; i < count; ++i)
                records[i].writeText(traceFile);
        };
    }

    genpair::StreamingMapper mapper(
        ref, map, config, static_cast<u64>(cli.num("--chunk", 65536)),
        static_cast<u32>(cli.num("--io-threads", 1)));
    auto result = mapper.run(r1File, r2File, sam, traceSink);
    os->flush();
    if (traceFile.is_open()) {
        traceFile.flush();
        if (!traceFile)
            gpx_fatal("write to trace file failed");
    }
    std::printf("mapped %llu pairs in %.2f s (%.0f pairs/s, %llu "
                "chunks; pure mapping %.2f s = %.0f pairs/s)\n",
                static_cast<unsigned long long>(result.pairs),
                result.total.seconds, result.total.itemsPerSec,
                static_cast<unsigned long long>(result.chunks),
                result.mapping.seconds, result.mapping.itemsPerSec);
    std::printf("I/O spine stalls: reader %.3f s, writer %.3f s\n",
                result.stats.readerStallSeconds,
                result.stats.writerStallSeconds);

    // Fig. 10 routing summary.
    const auto &st = result.stats;
    if (config.useGenPair) {
        std::printf("GenPair routing:\n");
        std::printf("  light-aligned fast path   %6.2f%%\n",
                    100 * st.fraction(st.lightAligned));
        std::printf("  DP-align at candidates    %6.2f%%\n",
                    100 * st.fraction(st.dpAligned));
        std::printf("  SeedMap miss -> full DP   %6.2f%%\n",
                    100 * st.fraction(st.seedMissFallback));
        std::printf("  PA-filter miss -> full DP %6.2f%%\n",
                    100 * st.fraction(st.paFilterFallback));
        std::printf("  unmapped                  %6.2f%%\n",
                    100 * st.fraction(st.unmapped));
    }

    if (cli.has("--stats-json")) {
        std::ofstream statsFile(cli.str("--stats-json"));
        if (!statsFile)
            gpx_fatal("cannot open stats output: ",
                      cli.str("--stats-json"));
        st.writeJson(statsFile);
        statsFile.flush();
        if (!statsFile)
            gpx_fatal("write to stats file failed");
        std::printf("wrote pipeline stats to %s\n",
                    cli.str("--stats-json").c_str());
    }

    std::printf("wrote %llu SAM records\n",
                static_cast<unsigned long long>(sam.recordsWritten()));
    return 0;
}
