/**
 * @file
 * gpx_mapeval — mapping-accuracy evaluation of a SAM file against the
 * truth table gpx_simulate writes (the paftools mapeval role, §7.8).
 * A record is correct when it maps within --tolerance of the simulated
 * origin on the right strand. Reports overall and MAPQ-binned accuracy
 * so miscalibrated confidence shows up, not just wrong positions.
 */

#include <cstdio>
#include <fstream>
#include <map>

#include "cli.hh"
#include "genomics/fasta.hh"
#include "genomics/sam_reader.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace {

const char kUsage[] =
    "usage: gpx_mapeval --ref REF.fa --sam FILE.sam --truth TRUTH.tsv "
    "[options]\n"
    "\n"
    "  --ref FILE       reference FASTA (chromosome name resolution)\n"
    "  --sam FILE       mappings to evaluate\n"
    "  --truth FILE     truth table from gpx_simulate\n"
    "  --tolerance N    max |mapped - truth| in bp          [20]\n"
    "  --min-correct X  exit non-zero when overall correct %\n"
    "                   falls below X (CI gating)            [off]\n"
    "  --version        print the gpx version and exit\n";

struct Truth
{
    gpx::GlobalPos pos = gpx::kInvalidPos;
    bool reverse = false;
    bool creditedCorrect = false; ///< --min-correct credit given once
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpx;
    tools::Cli cli(argc, argv,
                   { "--ref", "--sam", "--truth", "--tolerance",
                     "--min-correct" },
                   {}, kUsage);

    std::ifstream refFile(cli.required("--ref"));
    if (!refFile)
        gpx_fatal("cannot open reference: ", cli.str("--ref"));
    genomics::Reference ref = genomics::readFasta(refFile);

    // Truth table: read name -> origin.
    std::ifstream truthFile(cli.required("--truth"));
    if (!truthFile)
        gpx_fatal("cannot open truth table: ", cli.str("--truth"));
    std::map<std::string, Truth> truths;
    std::string line;
    std::getline(truthFile, line); // header
    while (std::getline(truthFile, line)) {
        if (line.empty())
            continue;
        std::size_t t1 = line.find('\t');
        std::size_t t2 = line.find('\t', t1 + 1);
        if (t1 == std::string::npos || t2 == std::string::npos)
            gpx_fatal("malformed truth line: ", line);
        Truth t;
        t.pos = std::strtoull(line.substr(t1 + 1, t2 - t1 - 1).c_str(),
                              nullptr, 10);
        t.reverse = line.substr(t2 + 1) == "1";
        truths[line.substr(0, t1)] = t;
    }
    std::printf("truth table: %zu reads\n", truths.size());

    std::ifstream samFile(cli.required("--sam"));
    if (!samFile)
        gpx_fatal("cannot open SAM: ", cli.str("--sam"));
    auto sam = genomics::readSam(samFile);
    if (!sam.badLines.empty()) {
        for (const auto &[no, text] : sam.badLines)
            gpx_warn("SAM line ", no, " malformed: ", text);
    }
    std::printf("SAM: %zu records (%zu malformed lines skipped)\n",
                sam.records.size(), sam.badLines.size());

    const u64 tolerance =
        static_cast<u64>(cli.num("--tolerance", 20));

    // Read names in SAM lack the /1 /2 suffix convention of the truth
    // table when pairs share a name; try both.
    auto findTruth = [&](const genomics::SamRecord &r) {
        auto it = truths.find(r.qname);
        if (it != truths.end())
            return it;
        std::string suffixed =
            r.qname + (r.isSecondInPair() ? "/2" : "/1");
        return truths.find(suffixed);
    };

    struct Bin
    {
        u64 total = 0, correct = 0, unmapped = 0;
    };
    std::map<u8, Bin> byMapq;
    Bin overall;
    u64 unknown = 0;
    u64 truthCorrect = 0; // distinct truth reads mapped correctly
    for (const auto &r : sam.records) {
        auto it = findTruth(r);
        if (it == truths.end()) {
            ++unknown;
            continue;
        }
        Bin &bin = byMapq[r.mapq];
        ++overall.total;
        ++bin.total;
        auto pos = genomics::recordGlobalPos(r, ref);
        if (!pos) {
            ++overall.unmapped;
            ++bin.unmapped;
            continue;
        }
        const u64 diff = *pos > it->second.pos ? *pos - it->second.pos
                                               : it->second.pos - *pos;
        if (diff <= tolerance && r.isReverse() == it->second.reverse) {
            ++overall.correct;
            ++bin.correct;
            if (!it->second.creditedCorrect) {
                it->second.creditedCorrect = true;
                ++truthCorrect;
            }
        }
    }
    if (unknown)
        gpx_warn(unknown, " records had no truth entry (ignored)");

    util::Table table({ "MAPQ", "records", "correct %", "unmapped %" });
    for (const auto &[mapq, bin] : byMapq) {
        table.row()
            .cell(static_cast<u64>(mapq))
            .cell(bin.total)
            .cell(bin.total ? 100.0 * bin.correct / bin.total : 0.0, 2)
            .cell(bin.total ? 100.0 * bin.unmapped / bin.total : 0.0, 2);
    }
    table.print("Accuracy by MAPQ");

    std::printf("\noverall: %llu records, %.3f%% correct (tolerance "
                "%llu bp), %.3f%% unmapped\n",
                static_cast<unsigned long long>(overall.total),
                overall.total ? 100.0 * overall.correct / overall.total
                              : 0.0,
                static_cast<unsigned long long>(tolerance),
                overall.total ? 100.0 * overall.unmapped / overall.total
                              : 0.0);

    const double minCorrect = cli.real("--min-correct", 0.0);
    if (minCorrect > 0) {
        // Credit each truth read at most once and denominate over the
        // truth set, so neither a truncated SAM nor duplicate/secondary
        // alignments can pass the gate.
        const double pctCorrect =
            truths.empty() ? 0.0
                           : 100.0 * truthCorrect / truths.size();
        if (pctCorrect < minCorrect) {
            std::fprintf(stderr,
                         "FAIL: %.3f%% of truth reads mapped correctly, "
                         "below --min-correct %.3f%%\n",
                         pctCorrect, minCorrect);
            return 1;
        }
    }
    return 0;
}
