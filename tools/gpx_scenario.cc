/**
 * @file
 * gpx_scenario — run the scenario wall (src/scenario): the pinned
 * accuracy/throughput matrix over short-read, high-error, long-read,
 * contamination and ingest-robustness workloads. `--json` emits the
 * format:1 document that scripts/check_scenarios.py gates against the
 * floors checked in as BENCH_scenarios.json.
 *
 * Accuracy is deterministic (seeded simulation, bit-identical mapping
 * at every thread count), so the floors are exact at scale 1;
 * throughput fields are informational.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "cli.hh"
#include "scenario/scenario.hh"
#include "util/logging.hh"
#include "util/timer.hh"

namespace {

const char kUsage[] =
    "usage: gpx_scenario [--json OUT.json] [options]\n"
    "\n"
    "  --json FILE      write the format:1 scenarios document\n"
    "  --list           print the scenario table and exit\n"
    "  --only NAME      run a single scenario (repeatable)\n"
    "  --scale X        genome/read-count scale factor        [1.0]\n"
    "                   (floors are recorded at scale 1; the\n"
    "                   checker SKIPs reduced-scale runs)\n"
    "  --threads N      mapper threads (0 = hardware)         [0]\n"
    "  --io-threads N   spine parser threads                  [2]\n"
    "  --work-dir DIR   scratch dir for image files           [.]\n"
    "  --version        print the gpx version and exit\n";

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpx;
    tools::Cli cli(argc, argv,
                   { "--json", "--only", "--scale", "--threads",
                     "--io-threads", "--work-dir" },
                   { "--list" }, kUsage);

    const auto &table = scenario::scenarioTable();
    if (cli.has("--list")) {
        for (const auto &spec : table)
            std::printf("%-16s %-17s %s\n", spec.name.c_str(),
                        scenario::kindName(spec.kind), spec.note.c_str());
        return 0;
    }

    scenario::ScenarioOptions options;
    options.scale = cli.real("--scale", 1.0);
    if (options.scale <= 0)
        gpx_fatal("--scale must be positive");
    options.threads = static_cast<u32>(cli.num("--threads", 0));
    options.ioThreads = static_cast<u32>(cli.num("--io-threads", 2));
    options.workDir = cli.str("--work-dir");

    std::vector<const scenario::ScenarioSpec *> selected;
    if (cli.has("--only")) {
        for (const auto &name : cli.all("--only")) {
            const scenario::ScenarioSpec *spec =
                scenario::findScenario(name);
            if (spec == nullptr)
                gpx_fatal("unknown scenario: ", name,
                          " (see --list)");
            selected.push_back(spec);
        }
    } else {
        for (const auto &spec : table)
            selected.push_back(&spec);
    }

    std::vector<scenario::ScenarioResult> rows;
    rows.reserve(selected.size());
    for (const auto *spec : selected) {
        util::Stopwatch watch;
        scenario::ScenarioResult row =
            scenario::runScenario(*spec, options);
        if (row.skipped) {
            std::printf("%-16s SKIP  %s\n", row.name.c_str(),
                        row.skipReason.c_str());
        } else if (row.kind == scenario::ScenarioKind::kTruncatedIngest) {
            std::printf("%-16s %s  (%.1f s)\n", row.name.c_str(),
                        row.rejected ? "rejected as expected"
                                     : "NOT REJECTED",
                        watch.seconds());
        } else {
            std::printf("%-16s acc %.4f  mapped %llu/%llu",
                        row.name.c_str(), row.accuracy,
                        static_cast<unsigned long long>(row.mapped),
                        static_cast<unsigned long long>(row.reads));
            if (row.snpF1 >= 0)
                std::printf("  SNP F1 %.4f  INDEL F1 %.4f", row.snpF1,
                            row.indelF1);
            for (const auto &region : row.attribution)
                std::printf("  %s cross %.4f", region.label.c_str(),
                            region.crossFraction());
            std::printf("  (%.0f reads/s, %.1f s)\n", row.readsPerSec,
                        watch.seconds());
        }
        rows.push_back(std::move(row));
    }

    if (cli.has("--json")) {
        std::ofstream out(cli.str("--json"));
        if (!out)
            gpx_fatal("cannot open output: ", cli.str("--json"));
        scenario::writeScenariosJson(out, rows, options.scale,
                                     options.threads);
        out.flush();
        if (!out)
            gpx_fatal("write to json output failed");
        std::printf("wrote %zu scenario rows to %s\n", rows.size(),
                    cli.str("--json").c_str());
    }
    return 0;
}
