/**
 * @file
 * gpx_serve — the resident mapping daemon: mount one or more SeedMap
 * v2 images once (zero-copy mmap, kernel-shared pages), keep the
 * persistent worker pools warm, and serve concurrent mapping requests
 * over gpx-serve-proto v1 on a Unix or TCP socket until told to drain
 * (SIGTERM/SIGINT or a client SHUTDOWN frame).
 *
 * Every mapping request is bit-identical to a gpx_map run over the
 * same pairs; what the daemon removes is the per-run cold start
 * (reference load, index open, pool spawn) — see
 * docs/serve_protocol.md and the Serving section of the README.
 */

#include <atomic>
#include <csignal>
#include <fstream>
#include <memory>
#include <poll.h>
#include <thread>
#include <unistd.h>

#include "cli.hh"
#include "genomics/fasta.hh"
#include "genpair/seedmap_io.hh"
#include "serve/server.hh"
#include "util/logging.hh"
#include "util/timer.hh"

namespace {

const char kUsage[] =
    "usage: gpx_serve --ref REF.fa --index INDEX.gpx --socket PATH "
    "[options]\n"
    "       gpx_serve --mount REF.fa:INDEX.gpx[:NAME] [--mount ...] "
    "--port N\n"
    "\n"
    "  --ref FILE           reference FASTA (single-mount shorthand)\n"
    "  --index FILE         SeedMap image from gpx_index; omitted =\n"
    "                       build in memory at start-up\n"
    "  --mount SPEC         REF.fa:INDEX.gpx[:NAME] — mount one\n"
    "                       reference/index pair under NAME\n"
    "                       (default: index file stem); repeatable\n"
    "  --socket PATH        listen on a Unix-domain socket\n"
    "  --port N             listen on TCP 127.0.0.1:N instead\n"
    "                       (0 = kernel-assigned, printed at start)\n"
    "  --threads N          worker threads per mount (0 = hardware) [0]\n"
    "  --io-threads N       FASTQ parser threads of each request's\n"
    "                       I/O spine                             [1]\n"
    "  --queue N            admission slots: requests mapping or\n"
    "                       queued; more block in their sockets   [4]\n"
    "  --max-frame-mib N    per-frame size limit                 [64]\n"
    "  --max-pairs N        per-request pair limit            [65536]\n"
    "  --idle-timeout N     close connections idle for N seconds\n"
    "                       (0 = never)                           [0]\n"
    "  --conn-timeout N     per-frame read/write deadline, seconds;\n"
    "                       slow peers get ERROR{DEADLINE}        [0]\n"
    "  --queue-timeout N    shed requests that cannot get an\n"
    "                       admission slot within N ms with\n"
    "                       ERROR{OVERLOADED} (0 = block forever) [0]\n"
    "  --retry-after N      retry_after_ms hint on OVERLOADED   [100]\n"
    "  --filter-threshold N index filter when building inline   [500]\n"
    "  --stats-every N      print aggregate counters to stderr\n"
    "                       every N seconds (0 = off)             [0]\n"
    "  --stats-json FILE    write aggregate stats JSON at shutdown\n"
    "  --version            print the gpx version and exit\n"
    "\n"
    "SIGHUP hot-swaps every file-backed mount: each index path is\n"
    "re-opened and fully validated before the new image is published;\n"
    "a corrupt candidate is rejected and the old index keeps serving.\n";

/** One parsed --mount (or --ref/--index shorthand). */
struct MountFiles
{
    std::string name;
    std::string refPath;
    std::string indexPath; ///< empty = build inline
};

std::string
fileStem(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    std::size_t dot = base.find_last_of('.');
    return dot == std::string::npos || dot == 0 ? base
                                                : base.substr(0, dot);
}

MountFiles
parseMountSpec(const std::string &spec)
{
    MountFiles files;
    std::size_t c1 = spec.find(':');
    if (c1 == std::string::npos)
        gpx_fatal("--mount expects REF.fa:INDEX.gpx[:NAME], got '",
                  spec, "'");
    std::size_t c2 = spec.find(':', c1 + 1);
    files.refPath = spec.substr(0, c1);
    files.indexPath = spec.substr(
        c1 + 1, c2 == std::string::npos ? c2 : c2 - c1 - 1);
    files.name = c2 == std::string::npos ? fileStem(files.indexPath)
                                         : spec.substr(c2 + 1);
    if (files.refPath.empty() || files.indexPath.empty() ||
        files.name.empty())
        gpx_fatal("--mount expects REF.fa:INDEX.gpx[:NAME], got '",
                  spec, "'");
    return files;
}

/** Self-pipe written by the signal handler, read by the monitor. */
int gSignalPipe[2] = { -1, -1 };

extern "C" void
onShutdownSignal(int)
{
    // Async-signal-safe: one byte through the self-pipe; the monitor
    // thread does the actual shutdown work.
    const char byte = 's';
    [[maybe_unused]] ssize_t n = write(gSignalPipe[1], &byte, 1);
}

extern "C" void
onRefreshSignal(int)
{
    // SIGHUP = hot-swap: the monitor thread re-opens and validates
    // every file-backed index off the signal path.
    const char byte = 'r';
    [[maybe_unused]] ssize_t n = write(gSignalPipe[1], &byte, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpx;
    tools::Cli cli(argc, argv,
                   { "--ref", "--index", "--mount", "--socket", "--port",
                     "--threads", "--io-threads", "--queue",
                     "--max-frame-mib", "--max-pairs",
                     "--idle-timeout", "--conn-timeout",
                     "--queue-timeout", "--retry-after",
                     "--filter-threshold", "--stats-every",
                     "--stats-json" },
                   {}, kUsage);

    // Assemble the mount list: repeatable --mount specs, plus the
    // --ref/--index shorthand for the common single-reference server.
    std::vector<MountFiles> mountFiles;
    for (const auto &spec : cli.all("--mount"))
        mountFiles.push_back(parseMountSpec(spec));
    if (cli.has("--ref")) {
        MountFiles files;
        files.refPath = cli.str("--ref");
        files.indexPath = cli.str("--index");
        files.name = files.indexPath.empty()
                         ? fileStem(files.refPath)
                         : fileStem(files.indexPath);
        mountFiles.push_back(files);
    }
    if (mountFiles.empty())
        gpx_fatal("nothing to serve: give --ref (and --index) or "
                  "--mount");
    if (!cli.has("--socket") && !cli.has("--port"))
        gpx_fatal("give a --socket path or a --port to listen on");

    // Mount everything up front: this is the cold start the daemon
    // pays exactly once, instead of every gpx_map run paying it.
    struct LoadedMount
    {
        genomics::Reference ref;
        std::optional<genpair::SeedMapImage> image;
        std::unique_ptr<genpair::SeedMap> built;
    };
    std::vector<LoadedMount> loaded(mountFiles.size());
    std::vector<serve::MountSpec> specs;
    util::Stopwatch mountWatch;
    for (std::size_t i = 0; i < mountFiles.size(); ++i) {
        const MountFiles &files = mountFiles[i];
        std::ifstream refFile(files.refPath);
        if (!refFile)
            gpx_fatal("cannot open reference: ", files.refPath);
        loaded[i].ref = genomics::readFasta(refFile);
        if (loaded[i].ref.totalLength() == 0)
            gpx_fatal("reference is empty: ", files.refPath);

        serve::MountSpec spec;
        spec.name = files.name;
        spec.ref = &loaded[i].ref;
        if (!files.indexPath.empty()) {
            std::string err;
            loaded[i].image = genpair::SeedMapImage::open(
                files.indexPath, {}, &err);
            if (!loaded[i].image)
                gpx_fatal("index image rejected: ", err);
            spec.view = loaded[i].image->view();
            spec.indexPath = files.indexPath; // hot-swappable
            std::fprintf(stderr,
                         "mounted %s: %s + %s (%s, %u shard%s)\n",
                         files.name.c_str(), files.refPath.c_str(),
                         files.indexPath.c_str(),
                         loaded[i].image->mmapBacked()
                             ? "mmap, zero-copy"
                             : "legacy copy path",
                         loaded[i].image->shardCount(),
                         loaded[i].image->shardCount() == 1 ? "" : "s");
        } else {
            genpair::SeedMapParams sp;
            sp.filterThreshold = static_cast<u32>(
                cli.num("--filter-threshold", 500));
            loaded[i].built = std::make_unique<genpair::SeedMap>(
                genpair::SeedMap::build(
                    loaded[i].ref, sp,
                    static_cast<u32>(cli.num("--threads", 0))));
            spec.view = *loaded[i].built;
            std::fprintf(stderr, "mounted %s: %s (index built inline)\n",
                         files.name.c_str(), files.refPath.c_str());
        }
        specs.push_back(spec);
    }

    serve::ServeConfig config;
    config.socketPath = cli.str("--socket");
    config.port = static_cast<u16>(cli.num("--port", 0));
    config.threads = static_cast<u32>(cli.num("--threads", 0));
    config.admissionSlots = static_cast<u32>(cli.num("--queue", 4));
    config.maxFrameBytes = static_cast<u32>(
        cli.num("--max-frame-mib", 64) << 20);
    config.maxPairsPerRequest =
        static_cast<u32>(cli.num("--max-pairs", 65536));
    config.ioThreads = static_cast<u32>(cli.num("--io-threads", 1));
    config.idleTimeoutMs =
        static_cast<u32>(cli.num("--idle-timeout", 0) * 1000);
    config.connTimeoutMs =
        static_cast<u32>(cli.num("--conn-timeout", 0) * 1000);
    config.queueTimeoutMs =
        static_cast<u32>(cli.num("--queue-timeout", 0));
    config.retryAfterMs =
        static_cast<u32>(cli.num("--retry-after", 100));

    serve::ServeServer server(std::move(specs), config);
    std::string error;
    if (!server.start(&error))
        gpx_fatal("cannot start server: ", error);
    if (!config.socketPath.empty())
        std::fprintf(stderr, "listening on %s (%zu mount%s, warm in "
                             "%.2f s)\n",
                     config.socketPath.c_str(), mountFiles.size(),
                     mountFiles.size() == 1 ? "" : "s",
                     mountWatch.seconds());
    else
        std::fprintf(stderr, "listening on 127.0.0.1:%u (%zu mount%s, "
                             "warm in %.2f s)\n",
                     server.boundPort(), mountFiles.size(),
                     mountFiles.size() == 1 ? "" : "s",
                     mountWatch.seconds());

    // SIGTERM/SIGINT drain gracefully through the self-pipe; the
    // monitor thread doubles as the periodic stats reporter.
    if (pipe(gSignalPipe) != 0)
        gpx_fatal("cannot create signal pipe");
    std::signal(SIGTERM, onShutdownSignal);
    std::signal(SIGINT, onShutdownSignal);
    std::signal(SIGHUP, onRefreshSignal);

    const long statsEvery = cli.num("--stats-every", 0);
    std::atomic<bool> exiting{ false };
    std::thread monitor([&]() {
        for (;;) {
            pollfd pfd{ gSignalPipe[0], POLLIN, 0 };
            int timeoutMs = statsEvery > 0
                                ? static_cast<int>(statsEvery * 1000)
                                : -1;
            int rc = poll(&pfd, 1, timeoutMs);
            if (rc > 0) {
                char byte = 's';
                if (read(gSignalPipe[0], &byte, 1) == 1 && byte == 'r') {
                    u32 swapped = server.refreshAllMounts();
                    std::fprintf(stderr,
                                 "SIGHUP: refreshed %u mount%s\n",
                                 swapped, swapped == 1 ? "" : "s");
                    continue;
                }
                std::fprintf(stderr, "shutdown signal: draining\n");
                server.requestShutdown();
                return;
            }
            if (exiting.load())
                return;
            if (rc == 0) {
                serve::ServeCounters c = server.counters();
                std::fprintf(stderr,
                             "served %llu requests / %llu pairs over "
                             "%llu connections (%llu rejected, %llu "
                             "admission waits, %llu shed, %llu idle "
                             "closed, %llu deadline, %llu io faults, "
                             "%llu swaps; stalls: reader %.3f s, "
                             "writer %.3f s)\n",
                             static_cast<unsigned long long>(
                                 c.requestsServed),
                             static_cast<unsigned long long>(
                                 c.pairsMapped),
                             static_cast<unsigned long long>(
                                 c.connectionsAccepted),
                             static_cast<unsigned long long>(
                                 c.requestsRejected),
                             static_cast<unsigned long long>(
                                 c.admissionWaits),
                             static_cast<unsigned long long>(c.shedded),
                             static_cast<unsigned long long>(
                                 c.idleClosed),
                             static_cast<unsigned long long>(
                                 c.deadlineExpired),
                             static_cast<unsigned long long>(c.ioFaults),
                             static_cast<unsigned long long>(
                                 c.indexSwaps),
                             c.readerStallSeconds, c.writerStallSeconds);
            }
        }
    });

    server.waitUntilDrained();
    // Unblock the monitor if the drain came from a SHUTDOWN frame
    // rather than a signal.
    exiting.store(true);
    onShutdownSignal(0);
    monitor.join();

    serve::ServeCounters c = server.counters();
    std::printf("drained: %llu requests, %llu pairs, %llu connections "
                "(%llu rejected; pool time %.2f s)\n",
                static_cast<unsigned long long>(c.requestsServed),
                static_cast<unsigned long long>(c.pairsMapped),
                static_cast<unsigned long long>(c.connectionsAccepted),
                static_cast<unsigned long long>(c.requestsRejected),
                c.mapSeconds);
    if (cli.has("--stats-json")) {
        std::ofstream statsFile(cli.str("--stats-json"));
        if (!statsFile)
            gpx_fatal("cannot open stats output: ",
                      cli.str("--stats-json"));
        statsFile << server.statsJson();
        statsFile.flush();
        if (!statsFile)
            gpx_fatal("write to stats file failed");
        std::printf("wrote aggregate stats to %s\n",
                    cli.str("--stats-json").c_str());
    }
    if (!config.socketPath.empty())
        unlink(config.socketPath.c_str());
    return 0;
}
