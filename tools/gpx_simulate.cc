/**
 * @file
 * gpx_simulate — generate a synthetic reference genome and paired-end
 * read set (the repository's Mason-equivalent, see DESIGN.md) in
 * standard FASTA/FASTQ formats, with a truth table for evaluating any
 * mapper. This is the dataset half of the zero-to-mapped quickstart:
 *
 *   gpx_simulate --length 4000000 --pairs 100000 --out data/demo
 *   gpx_index    --ref data/demo.fa --out data/demo.gpx
 *   gpx_map      --ref data/demo.fa --index data/demo.gpx \
 *                --r1 data/demo_1.fq --r2 data/demo_2.fq --out demo.sam
 */

#include <fstream>

#include "cli.hh"
#include "genomics/fasta.hh"
#include "simdata/genome_generator.hh"
#include "simdata/read_simulator.hh"
#include "util/logging.hh"

namespace {

const char kUsage[] =
    "usage: gpx_simulate --out PREFIX [options]\n"
    "\n"
    "  --out PREFIX        output prefix (writes PREFIX.fa, PREFIX_1.fq,\n"
    "                      PREFIX_2.fq, PREFIX.truth.tsv)\n"
    "  --length N          genome length in bp            [4194304]\n"
    "  --chromosomes N     chromosome count               [2]\n"
    "  --pairs N           read pairs to simulate         [100000]\n"
    "  --read-len N        read length in bp              [150]\n"
    "  --insert-mean X     mean outer fragment length     [400]\n"
    "  --insert-sd X       fragment length std deviation  [40]\n"
    "  --error-rate X      uniform per-base error rate; when given it\n"
    "                      replaces the default quality-mixture profile\n"
    "  --snp-rate X        donor SNP rate                 [0.001]\n"
    "  --indel-rate X      donor INDEL rate               [0.0002]\n"
    "  --seed N            RNG seed                       [23]\n"
    "  --long              simulate PacBio-HiFi-like long reads\n"
    "                      instead of pairs (writes PREFIX.fq; --pairs\n"
    "                      then counts reads; mean length 9569 bp)\n"
    "  --version           print the gpx version and exit\n";

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpx;
    tools::Cli cli(argc, argv,
                   { "--out", "--length", "--chromosomes", "--pairs",
                     "--read-len", "--insert-mean", "--insert-sd",
                     "--error-rate", "--snp-rate", "--indel-rate",
                     "--seed" },
                   { "--long" }, kUsage);

    const std::string prefix = cli.required("--out");

    simdata::GenomeParams gp;
    gp.length = static_cast<u64>(cli.num("--length", 4194304));
    gp.chromosomes = static_cast<u32>(cli.num("--chromosomes", 2));
    gp.seed = static_cast<u64>(cli.num("--seed", 23));
    std::printf("generating %llu bp genome across %u chromosomes...\n",
                static_cast<unsigned long long>(gp.length),
                gp.chromosomes);
    genomics::Reference ref = simdata::generateGenome(gp);

    simdata::VariantParams vp;
    vp.snpRate = cli.real("--snp-rate", vp.snpRate);
    vp.indelRate = cli.real("--indel-rate", vp.indelRate);
    vp.seed = gp.seed + 1;
    simdata::DiploidGenome diploid(ref, vp);
    std::printf("planted %zu truth variants\n",
                diploid.truthVariants().size());

    std::ofstream fa(prefix + ".fa");
    if (!fa)
        gpx_fatal("cannot open ", prefix, ".fa for writing");
    genomics::writeFasta(fa, ref);

    if (cli.has("--long")) {
        simdata::LongReadSimParams lp;
        lp.seed = gp.seed + 2;
        if (cli.has("--error-rate"))
            lp.errors = simdata::ErrorProfile::uniform(
                cli.real("--error-rate", 0.005));
        simdata::LongReadSimulator sim(diploid, lp);
        auto reads = sim.simulate(
            static_cast<u64>(cli.num("--pairs", 1000)));
        std::ofstream fq(prefix + ".fq");
        if (!fq)
            gpx_fatal("cannot open ", prefix, ".fq for writing");
        genomics::writeFastq(fq, reads);
        std::ofstream truth(prefix + ".truth.tsv");
        if (!truth)
            gpx_fatal("cannot open ", prefix, ".truth.tsv for writing");
        truth << "read\tglobal_pos\treverse\n";
        for (const auto &r : reads)
            truth << r.name << '\t' << r.truthPos << '\t'
                  << (r.truthReverse ? 1 : 0) << '\n';
        std::printf("wrote %s.fa, %zu long reads to %s.fq, truth to "
                    "%s.truth.tsv\n",
                    prefix.c_str(), reads.size(), prefix.c_str(),
                    prefix.c_str());
        return 0;
    }

    simdata::ReadSimParams rp;
    rp.readLen = static_cast<u32>(cli.num("--read-len", 150));
    rp.insertMean = cli.real("--insert-mean", rp.insertMean);
    rp.insertSd = cli.real("--insert-sd", rp.insertSd);
    rp.seed = gp.seed + 2;
    if (cli.has("--error-rate"))
        rp.errors =
            simdata::ErrorProfile::uniform(cli.real("--error-rate", 0.001));
    simdata::ReadSimulator sim(diploid, rp);
    const u64 numPairs = static_cast<u64>(cli.num("--pairs", 100000));
    auto pairs = sim.simulate(numPairs);

    std::vector<genomics::Read> r1, r2;
    r1.reserve(pairs.size());
    r2.reserve(pairs.size());
    for (const auto &p : pairs) {
        r1.push_back(p.first);
        r2.push_back(p.second);
    }
    std::ofstream fq1(prefix + "_1.fq");
    std::ofstream fq2(prefix + "_2.fq");
    if (!fq1 || !fq2)
        gpx_fatal("cannot open FASTQ outputs under prefix ", prefix);
    genomics::writeFastq(fq1, r1);
    genomics::writeFastq(fq2, r2);

    // Truth table: per read, the simulated forward-strand origin.
    std::ofstream truth(prefix + ".truth.tsv");
    if (!truth)
        gpx_fatal("cannot open ", prefix, ".truth.tsv for writing");
    truth << "read\tglobal_pos\treverse\n";
    for (const auto &p : pairs)
        for (const auto *r : { &p.first, &p.second })
            truth << r->name << '\t' << r->truthPos << '\t'
                  << (r->truthReverse ? 1 : 0) << '\n';

    std::printf("wrote %s.fa (%llu bp), %zu pairs to %s_1.fq/%s_2.fq, "
                "truth to %s.truth.tsv\n",
                prefix.c_str(),
                static_cast<unsigned long long>(ref.totalLength()),
                pairs.size(), prefix.c_str(), prefix.c_str(),
                prefix.c_str());
    return 0;
}
