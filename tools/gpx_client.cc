/**
 * @file
 * gpx_client — reference client for a running gpx_serve daemon:
 * streams FASTQ pairs to the server in framed batches and writes the
 * returned SAM (header + records) to a file, byte-identical to a
 * gpx_map run over the same input against the same index.
 *
 * Doubles as the daemon's control tool: `--server-stats` prints the
 * aggregate counters JSON, `--shutdown` asks the server to drain.
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "cli.hh"
#include "genomics/fasta.hh"
#include "serve/client.hh"
#include "util/logging.hh"
#include "util/timer.hh"

namespace {

const char kUsage[] =
    "usage: gpx_client --socket PATH --r1 R1.fq --r2 R2.fq --out OUT.sam"
    " [options]\n"
    "       gpx_client --port N [--host IP] ...\n"
    "       gpx_client --socket PATH --server-stats | --shutdown\n"
    "\n"
    "  --socket PATH        connect to a Unix-domain socket\n"
    "  --host IP            TCP host (IPv4)            [127.0.0.1]\n"
    "  --port N             TCP port (replaces --socket)\n"
    "  --r1 FILE            first-in-pair FASTQ\n"
    "  --r2 FILE            second-in-pair FASTQ\n"
    "  --out FILE           output SAM ('-' for stdout)\n"
    "  --ref NAME           mount to map against (default: the\n"
    "                       server's sole mount)\n"
    "  --batch N            read pairs per request          [4096]\n"
    "  --retries N          re-send a request shed with OVERLOADED\n"
    "                       up to N times (capped exponential\n"
    "                       backoff seeded by the server's\n"
    "                       retry_after_ms hint)                [0]\n"
    "  --backoff-ms N       first backoff step                 [50]\n"
    "  --stats-json FILE    write the last request's PipelineStats\n"
    "  --server-stats       print the server aggregate stats JSON\n"
    "  --refresh            ask the server to hot-swap --ref's\n"
    "                       index image (empty = sole mount)\n"
    "  --shutdown           ask the server to drain and exit\n"
    "  --version            print the gpx version and exit\n";

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpx;
    tools::Cli cli(argc, argv,
                   { "--socket", "--host", "--port", "--r1", "--r2",
                     "--out", "--ref", "--batch", "--retries",
                     "--backoff-ms", "--stats-json" },
                   { "--server-stats", "--refresh", "--shutdown" },
                   kUsage);

    std::string error;
    std::optional<serve::ServeClient> client;
    if (cli.has("--port"))
        client = serve::ServeClient::connectTcp(
            cli.str("--host", "127.0.0.1"),
            static_cast<u16>(cli.num("--port", 0)), &error);
    else
        client = serve::ServeClient::connectUnix(
            cli.required("--socket"), &error);
    if (!client)
        gpx_fatal("cannot connect: ", error);

    if (cli.has("--server-stats")) {
        std::string json;
        auto status = client->fetchStats(&json);
        if (!status.ok)
            gpx_fatal("stats request failed: ", status.describe());
        std::printf("%s", json.c_str());
        return 0;
    }
    if (cli.has("--refresh")) {
        auto status = client->refreshMount(cli.str("--ref"));
        if (!status.ok)
            gpx_fatal("refresh request failed: ", status.describe());
        std::printf("index swapped\n");
        return 0;
    }
    if (cli.has("--shutdown")) {
        auto status = client->shutdownServer();
        if (!status.ok)
            gpx_fatal("shutdown request failed: ", status.describe());
        std::printf("server draining\n");
        return 0;
    }

    serve::RetryPolicy retryPolicy;
    retryPolicy.maxRetries = static_cast<u32>(cli.num("--retries", 0));
    retryPolicy.backoffMs =
        static_cast<u32>(cli.num("--backoff-ms", 50));
    client->setRetryPolicy(retryPolicy);

    const std::string refName = cli.str("--ref");
    std::ifstream r1File(cli.required("--r1"));
    if (!r1File)
        gpx_fatal("cannot open --r1 FASTQ");
    std::ifstream r2File(cli.required("--r2"));
    if (!r2File)
        gpx_fatal("cannot open --r2 FASTQ");

    std::ofstream outFile;
    std::ostream *os = nullptr;
    if (cli.str("--out") == "-") {
        os = &std::cout;
    } else {
        outFile.open(cli.required("--out"));
        if (!outFile)
            gpx_fatal("cannot open output: ", cli.str("--out"));
        os = &outFile;
    }

    // Header first, so the output file is a complete SAM document
    // byte-identical to a gpx_map run.
    // Every output write is checked as it happens, so a full disk
    // fails with the path and byte offset instead of a silently
    // truncated SAM.
    const std::string outLabel =
        cli.str("--out") == "-" ? "<stdout>" : cli.str("--out");
    u64 outBytes = 0;
    auto emit = [&](const std::string &text) {
        os->write(text.data(),
                  static_cast<std::streamsize>(text.size()));
        if (!*os)
            gpx_fatal("SAM write failed at byte offset ", outBytes,
                      " of ", outLabel, " (short write or disk full)");
        outBytes += text.size();
    };

    std::string header;
    auto status = client->fetchHeader(refName, &header);
    if (!status.ok)
        gpx_fatal("header request failed: ", status.describe());
    emit(header);

    const u64 batchPairs =
        static_cast<u64>(cli.num("--batch", 4096)) == 0
            ? 1
            : static_cast<u64>(cli.num("--batch", 4096));
    genomics::FastqReader reader1(r1File);
    genomics::FastqReader reader2(r2File);
    u64 pairs = 0, requests = 0;
    std::string lastStatsJson;
    const bool wantStats = cli.has("--stats-json");
    util::Stopwatch watch;
    bool eof = false;
    while (!eof) {
        // Re-frame up to batchPairs records per side as FASTQ text.
        std::vector<genomics::Read> batch1, batch2;
        genomics::Read read;
        while (batch1.size() < batchPairs) {
            const bool got1 = reader1.next(read);
            if (got1)
                batch1.push_back(std::move(read));
            const bool got2 = reader2.next(read);
            if (got2)
                batch2.push_back(std::move(read));
            if (got1 != got2)
                gpx_fatal("FASTQ streams disagree: ",
                          got1 ? "R2" : "R1", " ended early after ",
                          (got1 ? reader2 : reader1).recordsRead(),
                          " records");
            if (!got1) {
                eof = true;
                break;
            }
        }
        if (batch1.empty())
            break;
        std::ostringstream fq1, fq2;
        genomics::writeFastq(fq1, batch1);
        genomics::writeFastq(fq2, batch2);

        serve::MapReplyBody reply;
        status = client->mapBatch(refName, fq1.str(), fq2.str(),
                                  wantStats, &reply);
        if (!status.ok)
            gpx_fatal("map request failed: ", status.describe());
        if (reply.pairCount != batch1.size())
            gpx_fatal("server mapped ", reply.pairCount, " of ",
                      batch1.size(), " pairs");
        emit(reply.sam);
        if (wantStats)
            lastStatsJson = reply.statsJson;
        pairs += reply.pairCount;
        ++requests;
    }
    os->flush();
    if (os == &outFile && !outFile)
        gpx_fatal("write to output failed");

    double secs = watch.seconds();
    std::printf("mapped %llu pairs in %llu requests, %.2f s (%.0f "
                "pairs/s end-to-end)\n",
                static_cast<unsigned long long>(pairs),
                static_cast<unsigned long long>(requests), secs,
                secs > 0 ? static_cast<double>(pairs) / secs : 0.0);

    if (wantStats) {
        std::ofstream statsFile(cli.str("--stats-json"));
        if (!statsFile)
            gpx_fatal("cannot open stats output: ",
                      cli.str("--stats-json"));
        statsFile << lastStatsJson;
        statsFile.flush();
        if (!statsFile)
            gpx_fatal("write to stats file failed");
    }
    return 0;
}
