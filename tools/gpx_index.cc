/**
 * @file
 * gpx_index — offline SeedMap construction (paper §4.2). Reads a
 * reference FASTA, builds the Seed Table + Location Table with the
 * index filtering threshold, reports the occupancy statistics the
 * hardware sizing depends on (Obs. 2), and persists the binary image
 * gpx_map loads.
 */

#include <algorithm>
#include <bit>
#include <fstream>
#include <thread>

#include "cli.hh"
#include "genomics/fasta.hh"
#include "genpair/seedmap.hh"
#include "genpair/seedmap_io.hh"
#include "util/logging.hh"
#include "util/timer.hh"

namespace {

const char kUsage[] =
    "usage: gpx_index --ref REF.fa --out INDEX.gpx [options]\n"
    "\n"
    "  --ref FILE           reference FASTA\n"
    "  --out FILE           output SeedMap image\n"
    "  --seed-len N         seed length in bp                  [50]\n"
    "  --table-bits N       log2 Seed Table entries (0 = auto) [0]\n"
    "  --filter-threshold N index filtering threshold;\n"
    "                       0 disables the filter              [500]\n"
    "  --threads N          build worker threads (0 = hardware;\n"
    "                       any count gives identical tables)  [0]\n"
    "  --shards N           hash-range shards in the v2 image\n"
    "                       (rounded up to a power of two;\n"
    "                       0 = match the build threads)       [0]\n"
    "  --format v1|v2       image format; v2 is 64-byte\n"
    "                       aligned, sharded and mmap-served   [v2]\n"
    "  --version            print the gpx version and exit\n";

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpx;
    tools::Cli cli(argc, argv,
                   { "--ref", "--out", "--seed-len", "--table-bits",
                     "--filter-threshold", "--threads", "--shards",
                     "--format" },
                   {}, kUsage);

    const std::string refPath = cli.required("--ref");
    const std::string outPath = cli.required("--out");

    std::ifstream refFile(refPath);
    if (!refFile)
        gpx_fatal("cannot open reference: ", refPath);
    genomics::Reference ref = genomics::readFasta(refFile);
    if (ref.totalLength() == 0)
        gpx_fatal("reference is empty: ", refPath);
    std::printf("reference: %llu bp, %u chromosomes\n",
                static_cast<unsigned long long>(ref.totalLength()),
                ref.numChromosomes());

    genpair::SeedMapParams params;
    params.seedLen = static_cast<u32>(cli.num("--seed-len", 50));
    params.tableBits = static_cast<u32>(cli.num("--table-bits", 0));
    params.filterThreshold =
        static_cast<u32>(cli.num("--filter-threshold", 500));

    u32 threads = static_cast<u32>(cli.num("--threads", 0));
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    const std::string format = cli.str("--format", "v2");
    if (format != "v1" && format != "v2")
        gpx_fatal("--format must be v1 or v2, got ", format);

    util::Stopwatch watch;
    genpair::SeedMap map = genpair::SeedMap::build(ref, params, threads);
    const auto &stats = map.stats();
    std::printf("built SeedMap in %.2f s (%u threads)\n", watch.seconds(),
                threads);
    std::printf("  seeds scanned            %llu\n",
                static_cast<unsigned long long>(stats.totalSeeds));
    std::printf("  locations stored         %llu\n",
                static_cast<unsigned long long>(stats.storedLocations));
    std::printf("  distinct hashes          %llu\n",
                static_cast<unsigned long long>(stats.distinctHashes));
    std::printf("  filtered seeds           %llu (%llu locations)\n",
                static_cast<unsigned long long>(stats.filteredSeeds),
                static_cast<unsigned long long>(stats.filteredLocations));
    std::printf("  locations/seed (mean)    %.2f\n",
                stats.avgLocationsPerSeed);
    std::printf("  locations/seed (query-weighted, Obs. 2) %.2f\n",
                stats.queryWeightedLocations);

    std::ofstream out(outPath, std::ios::binary);
    if (!out)
        gpx_fatal("cannot open output: ", outPath);
    if (format == "v1") {
        genpair::saveSeedMap(out, map);
    } else {
        u32 shards = static_cast<u32>(cli.num("--shards", 0));
        if (shards == 0)
            shards = std::bit_ceil(threads);
        genpair::saveSeedMapV2(out, map, shards);
    }
    out.flush();
    if (!out)
        gpx_fatal("write failed: ", outPath);
    std::printf("wrote %s (%s image)\n", outPath.c_str(), format.c_str());
    return 0;
}
