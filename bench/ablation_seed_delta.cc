/**
 * @file
 * Ablation — the two workload-facing knobs the paper fixes by
 * measurement: the 50 bp partitioned-seed length (§3.2 "determine an
 * optimal seed length that maximizes the exact match rate") and the
 * paired-adjacency threshold Δ (§4.5: "usually 200 to 500 bp").
 *
 * Part 1 sweeps the seed length and reports the Obs. 1 statistic (≥1
 * clean seed per read in both reads), the SeedMap footprint and the
 * query-weighted locations per seed (Obs. 2) — shorter seeds match
 * more often but multiply candidate locations; longer seeds starve.
 *
 * Part 2 sweeps Δ against the simulated insert-size distribution and
 * reports fast-path coverage and the PA-filter fallback — too small
 * drops genuine pairs whose insert lands in the tail; too large admits
 * spurious adjacencies that waste Light-Alignment work.
 */

#include "common.hh"
#include "genpair/seeder.hh"

int
main()
{
    using namespace gpx;
    using namespace gpx::bench;

    banner("Ablation: seed length (Obs. 1/2) and adjacency threshold "
           "delta (SS4.5)",
           "paper SS3.2 optimal seed length + SS4.5 delta range");

    simdata::GenomeParams gp;
    gp.length = kBenchGenomeLen;
    gp.chromosomes = 2;
    gp.seed = 7;
    genomics::Reference ref = simdata::generateGenome(gp);
    simdata::DiploidGenome diploid(ref, simdata::VariantParams{});
    simdata::ReadSimParams rp; // insert 400 +/- 40
    simdata::ReadSimulator sim(diploid, rp);
    auto pairs = sim.simulate(6000);
    baseline::Mm2Lite mm2(ref, baseline::Mm2LiteParams{});

    // Part 1: seed-length sweep.
    util::Table seedTable({ "seed len", "clean seed both reads %",
                            "locs/seed (q-weighted)", "index MB",
                            "light-aligned %" });
    for (u32 seedLen : { 25u, 33u, 40u, 50u, 60u, 75u }) {
        genpair::SeedMapParams sp;
        sp.seedLen = seedLen;
        genpair::SeedMap map(ref, sp);

        // Obs. 1 statistic at this seed length: at least one of the
        // three partitioned segments of each read matches exactly.
        u64 bothClean = 0;
        for (const auto &p : pairs) {
            auto clean = [&](const genomics::Read &r) {
                genomics::DnaSequence fwd =
                    r.truthReverse ? r.seq.revComp() : r.seq;
                const u32 len = static_cast<u32>(fwd.size());
                if (len < seedLen || r.truthPos == kInvalidPos)
                    return false;
                for (u32 off : { 0u, (len - seedLen) / 2,
                                 len - seedLen }) {
                    genomics::DnaSequence seg = fwd.sub(off, seedLen);
                    if (ref.window(r.truthPos + off, seedLen) == seg)
                        return true;
                }
                return false;
            };
            if (clean(p.first) && clean(p.second))
                ++bothClean;
        }

        genpair::GenPairPipeline pipe(ref, map, genpair::GenPairParams{},
                                      &mm2);
        for (const auto &p : pairs)
            pipe.mapPair(p);
        const auto &st = pipe.stats();

        seedTable.row()
            .cell(static_cast<u64>(seedLen))
            .cell(100.0 * bothClean / pairs.size(), 2)
            .cell(map.stats().queryWeightedLocations, 2)
            .cell((map.seedTableBytes() + map.locationTableBytes()) /
                      1048576.0,
                  1)
            .cell(100 * st.fraction(st.lightAligned), 2);
    }
    seedTable.print("Seed-length sweep (paper picks 50 bp; clean-seed "
                    "rate falls with length, candidate multiplicity "
                    "rises as it shrinks)");

    // Part 2: delta sweep. Note the truth insert distribution is
    // 400 +/- 40 outer; the oriented gap the PA filter sees is
    // insert - readLen.
    util::Table deltaTable({ "delta (bp)", "light-aligned %",
                             "PA fallback %", "candidates/pair",
                             "filter iters/pair" });
    for (u32 delta : { 100u, 200u, 300u, 500u, 800u, 1500u }) {
        genpair::SeedMap map(ref, genpair::SeedMapParams{});
        genpair::GenPairParams params;
        params.delta = delta;
        genpair::GenPairPipeline pipe(ref, map, params, &mm2);
        for (const auto &p : pairs)
            pipe.mapPair(p);
        const auto &st = pipe.stats();
        deltaTable.row()
            .cell(static_cast<u64>(delta))
            .cell(100 * st.fraction(st.lightAligned), 2)
            .cell(100 * st.fraction(st.paFilterFallback), 2)
            .cell(st.pairsTotal ? static_cast<double>(st.candidatePairs) /
                                      st.pairsTotal
                                : 0.0,
                  2)
            .cell(st.pairsTotal
                      ? static_cast<double>(st.query.filterIterations) /
                            st.pairsTotal
                      : 0.0,
                  1);
    }
    deltaTable.print("Adjacency-threshold sweep (paper: 200-500 bp; "
                     "small delta drops tail inserts to the PA "
                     "fallback, large delta multiplies candidates)");
    return 0;
}
