/**
 * @file
 * Table 6 — Memory-technology scalability: NMSL throughput and
 * throughput per unit power (of the full GenPairX+GenDP system) for
 * DDR5, GDDR6 and HBM2.
 */

#include "common.hh"
#include "hwsim/nmsl.hh"
#include "hwsim/pipeline_model.hh"

int
main()
{
    using namespace gpx;
    using namespace gpx::bench;

    banner("Memory-technology comparison",
           "Table 6 (paper: DDR5 16.91, GDDR6 19.80, HBM2 192.7 MPair/s; "
           "per-W 0.75 / 0.79 / 0.91)");

    MappingStack s = buildStack(1, kBenchGenomeLen, 20000);
    hwsim::WorkloadProfile measured = measureProfile(s);
    auto workload = hwsim::buildWorkload(*s.seedmap, s.dataset.pairs);
    hwsim::PipelineModel pm(2.0);

    util::Table table({ "memory", "MPair/s", "GB/s",
                        "system power (W)", "MPair/s/W" });
    for (const auto &mem :
         { hwsim::MemoryConfig::ddr5(), hwsim::MemoryConfig::gddr6(),
           hwsim::MemoryConfig::hbm2() }) {
        hwsim::NmslConfig cfg;
        cfg.mem = mem;
        cfg.windowSize = 1024;
        auto res = hwsim::NmslSim(cfg).run(workload);
        // System power: the design's compute cost tracks the sustained
        // rate (fewer PEs needed at lower rates), GenDP dominating.
        auto design = pm.design(res, cfg, measured);
        double systemW =
            design.totalCost.powerMw / 1000.0 + res.dramTotalPowerW;
        table.row()
            .cell(mem.name)
            .cell(res.mpairsPerSec, 2)
            .cell(res.gbPerSec, 2)
            .cell(systemW, 1)
            .cell(res.mpairsPerSec / systemW, 2);
    }
    table.print("Table 6: NMSL scaling across memory technologies");
    std::printf("paper reference: HBM2 = 11.4x DDR5 and 9.8x GDDR6 in "
                "throughput; per-W varies much less because GenDP "
                "dominates system power.\n");
    return 0;
}
