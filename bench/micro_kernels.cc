/**
 * @file
 * Google-benchmark microbenchmarks of the software kernels backing the
 * hardware models: xxHash seeding, SeedMap lookup, the SHD mask kernel,
 * light alignment and the DP fallback aligner. These provide the
 * software-side MCUPS/throughput numbers quoted in EXPERIMENTS.md.
 */

#include <benchmark/benchmark.h>

#include "align/affine.hh"
#include "align/shd.hh"
#include "align/wfa.hh"
#include "filters/grim_filter.hh"
#include "filters/sneakysnake.hh"
#include "genpair/light_align.hh"
#include "genpair/seeder.hh"
#include "genpair/seedmap.hh"
#include "simdata/genome_generator.hh"
#include "util/rng.hh"
#include "util/xxhash.hh"

namespace {

using namespace gpx;

genomics::Reference &
sharedRef()
{
    static genomics::Reference ref = [] {
        simdata::GenomeParams gp;
        gp.length = 1 << 20;
        gp.chromosomes = 1;
        gp.seed = 7;
        return simdata::generateGenome(gp);
    }();
    return ref;
}

genpair::SeedMap &
sharedMap()
{
    static genpair::SeedMap map(sharedRef(), genpair::SeedMapParams{});
    return map;
}

void
BM_Xxh32Seed(benchmark::State &state)
{
    auto seed = sharedRef().chromosome(0).sub(1000, 50);
    const auto &packed = seed.packed();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            util::xxh32(packed.data(), packed.size()));
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_Xxh32Seed);

void
BM_PartitionedSeeding(benchmark::State &state)
{
    genpair::PartitionedSeeder seeder(sharedMap());
    auto read = sharedRef().chromosome(0).sub(5000, 150);
    for (auto _ : state)
        benchmark::DoNotOptimize(seeder.extract(read));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_PartitionedSeeding);

void
BM_SeedMapLookup(benchmark::State &state)
{
    auto &map = sharedMap();
    util::Pcg32 rng(3);
    std::vector<u32> hashes;
    for (int i = 0; i < 1024; ++i) {
        auto seed = sharedRef().chromosome(0).sub(rng.below(900000), 50);
        hashes.push_back(map.hashSeed(seed));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        auto span = map.lookup(hashes[i++ & 1023]);
        benchmark::DoNotOptimize(span.data());
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_SeedMapLookup);

void
BM_ShdMasks(benchmark::State &state)
{
    auto read = sharedRef().chromosome(0).sub(10000, 150);
    auto window = sharedRef().chromosome(0).sub(9995, 160);
    for (auto _ : state)
        benchmark::DoNotOptimize(align::shiftedMasks(read, window, 5, 5));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_ShdMasks);

void
BM_LightAlign(benchmark::State &state)
{
    genpair::LightAligner aligner(sharedRef(),
                                  genpair::LightAlignParams{});
    auto read = sharedRef().chromosome(0).sub(20000, 150);
    read.set(70, (read.at(70) + 1) & 3u);
    for (auto _ : state)
        benchmark::DoNotOptimize(aligner.align(read, 20000));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_LightAlign);

void
BM_DpFitAlign(benchmark::State &state)
{
    auto read = sharedRef().chromosome(0).sub(30000, 150);
    auto window = sharedRef().chromosome(0).sub(29976, 198);
    auto scheme = genomics::ScoringScheme::shortRead();
    u64 cells = 0;
    for (auto _ : state) {
        auto r = align::fitAlign(read, window, scheme);
        cells += r.cellUpdates;
        benchmark::DoNotOptimize(r.score);
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
    state.counters["cells/s"] = benchmark::Counter(
        static_cast<double>(cells), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DpFitAlign);


void
BM_WfaGlobalAlign(benchmark::State &state)
{
    // The WFA fallback-substrate kernel on a lightly edited read (the
    // common fallback case): work is penalty-proportional.
    auto read = sharedRef().chromosome(0).sub(40000, 150);
    read.set(40, (read.at(40) + 1) & 3u);
    read.set(90, (read.at(90) + 1) & 3u);
    auto window = sharedRef().chromosome(0).sub(40000, 158);
    u64 ops = 0;
    for (auto _ : state) {
        auto r = align::wfaGlobalAlign(read, window);
        ops += r.wavefrontOps;
        benchmark::DoNotOptimize(r.penalty);
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
    state.counters["wf-ops/s"] = benchmark::Counter(
        static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WfaGlobalAlign);

void
BM_SneakySnakeGate(benchmark::State &state)
{
    // The SS8 pre-alignment gate on a passing candidate.
    filters::SneakySnakeFilter gate;
    auto read = sharedRef().chromosome(0).sub(50000, 150);
    read.set(75, (read.at(75) + 1) & 3u);
    auto window = sharedRef().chromosome(0).sub(49995, 160);
    for (auto _ : state)
        benchmark::DoNotOptimize(gate.evaluate(read, window, 5, 5));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_SneakySnakeGate);

void
BM_GrimFilterQuery(benchmark::State &state)
{
    // GRIM bin-bitvector membership test (no reference bases touched).
    static filters::GrimFilter grim(sharedRef(), filters::GrimParams{});
    auto read = sharedRef().chromosome(0).sub(60000, 150);
    for (auto _ : state)
        benchmark::DoNotOptimize(grim.evaluate(read, 60000, 5));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_GrimFilterQuery);

} // namespace
