/**
 * @file
 * Google-benchmark microbenchmarks of the software kernels backing the
 * hardware models: xxHash seeding, SeedMap lookup, the SHD mask kernel,
 * light alignment and the DP fallback aligner. These provide the
 * software-side MCUPS/throughput numbers quoted in EXPERIMENTS.md.
 *
 * The *Scalar / *Legacy rows are the pre-word-parallel implementations
 * (retained in-library as test oracles) so one run reports the
 * before/after of every bit-parallel kernel. The checked-in baseline
 * BENCH_micro_kernels.json is produced with `--benchmark_format=json`;
 * scripts/check_kernel_regression.py gates CI against it.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "align/affine.hh"
#include "align/shd.hh"
#include "align/wfa.hh"
#include "baseline/minimizer_index.hh"
#include "filters/edit_distance.hh"
#include "filters/grim_filter.hh"
#include "filters/sneakysnake.hh"
#include "genpair/light_align.hh"
#include "genpair/seeder.hh"
#include "genpair/seedmap.hh"
#include "simdata/genome_generator.hh"
#include "util/rng.hh"
#include "util/simd.hh"
#include "util/xxhash.hh"

namespace {

using namespace gpx;

genomics::Reference &
sharedRef()
{
    static genomics::Reference ref = [] {
        simdata::GenomeParams gp;
        gp.length = 1 << 20;
        gp.chromosomes = 1;
        gp.seed = 7;
        return simdata::generateGenome(gp);
    }();
    return ref;
}

genpair::SeedMap &
sharedMap()
{
    static genpair::SeedMap map(sharedRef(), genpair::SeedMapParams{});
    return map;
}

void
BM_Xxh32Seed(benchmark::State &state)
{
    auto seed = sharedRef().chromosome(0).sub(1000, 50);
    const auto &packed = seed.packed();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            util::xxh32(packed.data(), packed.size()));
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_Xxh32Seed);

void
BM_PartitionedSeeding(benchmark::State &state)
{
    genpair::PartitionedSeeder seeder(sharedMap());
    auto read = sharedRef().chromosome(0).sub(5000, 150);
    for (auto _ : state)
        benchmark::DoNotOptimize(seeder.extract(read));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_PartitionedSeeding);

void
BM_SeedMapLookup(benchmark::State &state)
{
    auto &map = sharedMap();
    util::Pcg32 rng(3);
    std::vector<u32> hashes;
    for (int i = 0; i < 1024; ++i) {
        auto seed = sharedRef().chromosome(0).sub(rng.below(900000), 50);
        hashes.push_back(map.hashSeed(seed));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        auto span = map.lookup(hashes[i++ & 1023]);
        benchmark::DoNotOptimize(span.data());
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_SeedMapLookup);

void
BM_ShdMasks(benchmark::State &state)
{
    auto read = sharedRef().chromosome(0).sub(10000, 150);
    auto window = sharedRef().chromosome(0).sub(9995, 160);
    for (auto _ : state)
        benchmark::DoNotOptimize(align::shiftedMasks(read, window, 5, 5));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_ShdMasks);

/**
 * SIMD-across-batch counterpart of BM_ShdMasks: the 2e+1 masks of one
 * read against 8 candidate windows per run (align::ShdBatch), one row
 * per backend the host supports. items_per_second counts candidate
 * windows, so the speedup over BM_ShdMasks reads off directly.
 */
void
ShdMasksBatch8(benchmark::State &state, util::SimdBackend backend)
{
    const util::SimdBackend prev = util::activeSimdBackend();
    util::forceSimdBackend(backend);
    auto read = sharedRef().chromosome(0).sub(10000, 150);
    align::BitPlanes readPlanes(read);
    constexpr u32 kLanes = 8;
    std::vector<genomics::DnaSequence> windows;
    std::vector<align::BitPlanes> windowPlanes(kLanes);
    for (u32 l = 0; l < kLanes; ++l) {
        windows.push_back(
            sharedRef().chromosome(0).sub(9995 + 400 * l, 160));
        windowPlanes[l].assign(windows.back());
    }
    align::ShdBatch batch;
    const u32 chunk = util::simdMaskLanes(backend);
    for (auto _ : state) {
        // Production chunking (ShdFilter::evaluateBatch): lane groups
        // of the backend's width until the 8 candidates are consumed.
        for (u32 i = 0; i < kLanes; i += chunk) {
            const u32 lanes = std::min(chunk, kLanes - i);
            batch.begin(lanes, 150, 5, 5);
            for (u32 l = 0; l < lanes; ++l)
                batch.setLane(l, readPlanes, windowPlanes[i + l]);
            batch.run();
            benchmark::DoNotOptimize(batch.maskWords.data());
            benchmark::DoNotOptimize(batch.popcount.data());
        }
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()) * kLanes);
    util::forceSimdBackend(prev);
}

/**
 * Register one batch row per supported backend and surface the
 * dispatch provenance in the JSON context block. ISA-dependent rows
 * ("/avx*") are optional in check_kernel_regression.py, so a baseline
 * recorded on a wider host still gates on narrower CI runners.
 */
const bool registeredShdBatch = [] {
    benchmark::AddCustomContext(
        "simd_backend",
        util::simdBackendName(util::activeSimdBackend()));
    benchmark::AddCustomContext("simd_reason", util::simdBackendReason());
    for (util::SimdBackend b :
         { util::SimdBackend::Scalar, util::SimdBackend::Avx2,
           util::SimdBackend::Avx512 }) {
        if (b > util::maxSimdBackend())
            continue;
        std::string name =
            std::string("BM_ShdMasksBatch8/") + util::simdBackendName(b);
        benchmark::RegisterBenchmark(name.c_str(), ShdMasksBatch8, b);
    }
    return true;
}();

void
BM_LightAlign(benchmark::State &state)
{
    genpair::LightAligner aligner(sharedRef(),
                                  genpair::LightAlignParams{});
    auto read = sharedRef().chromosome(0).sub(20000, 150);
    read.set(70, (read.at(70) + 1) & 3u);
    for (auto _ : state)
        benchmark::DoNotOptimize(aligner.align(read, 20000));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_LightAlign);

void
BM_DpFitAlign(benchmark::State &state)
{
    auto read = sharedRef().chromosome(0).sub(30000, 150);
    auto window = sharedRef().chromosome(0).sub(29976, 198);
    auto scheme = genomics::ScoringScheme::shortRead();
    u64 cells = 0;
    for (auto _ : state) {
        auto r = align::fitAlign(read, window, scheme);
        cells += r.cellUpdates;
        benchmark::DoNotOptimize(r.score);
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
    state.counters["cells/s"] = benchmark::Counter(
        static_cast<double>(cells), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DpFitAlign);


void
BM_WfaGlobalAlign(benchmark::State &state)
{
    // The WFA fallback-substrate kernel on a lightly edited read (the
    // common fallback case): work is penalty-proportional.
    auto read = sharedRef().chromosome(0).sub(40000, 150);
    read.set(40, (read.at(40) + 1) & 3u);
    read.set(90, (read.at(90) + 1) & 3u);
    auto window = sharedRef().chromosome(0).sub(40000, 158);
    u64 ops = 0;
    for (auto _ : state) {
        auto r = align::wfaGlobalAlign(read, window);
        ops += r.wavefrontOps;
        benchmark::DoNotOptimize(r.penalty);
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
    state.counters["wf-ops/s"] = benchmark::Counter(
        static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WfaGlobalAlign);

void
BM_SneakySnakeGate(benchmark::State &state)
{
    // The SS8 pre-alignment gate on a passing candidate.
    filters::SneakySnakeFilter gate;
    auto read = sharedRef().chromosome(0).sub(50000, 150);
    read.set(75, (read.at(75) + 1) & 3u);
    auto window = sharedRef().chromosome(0).sub(49995, 160);
    for (auto _ : state)
        benchmark::DoNotOptimize(gate.evaluate(read, window, 5, 5));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_SneakySnakeGate);

void
BM_GrimFilterQuery(benchmark::State &state)
{
    // GRIM bin-bitvector membership test (no reference bases touched).
    static filters::GrimFilter grim(sharedRef(), filters::GrimParams{});
    auto read = sharedRef().chromosome(0).sub(60000, 150);
    for (auto _ : state)
        benchmark::DoNotOptimize(grim.evaluate(read, 60000, 5));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_GrimFilterQuery);

// ---------------------------------------------------------------------------
// Before/after rows for the bit-parallel sequence kernels.
// ---------------------------------------------------------------------------

/** A 150 bp read with a realistic sprinkle of edits vs its origin. */
genomics::DnaSequence
editedRead(u64 origin)
{
    auto read = sharedRef().chromosome(0).sub(origin, 150);
    read.set(40, (read.at(40) + 1) & 3u);
    read.set(77, (read.at(77) + 2) & 3u);
    read.set(121, (read.at(121) + 1) & 3u);
    return read;
}

void
BM_EditDistance150Scalar(benchmark::State &state)
{
    auto read = editedRead(70000);
    auto target = sharedRef().chromosome(0).sub(70000, 150);
    for (auto _ : state)
        benchmark::DoNotOptimize(filters::editDistanceScalar(read, target));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_EditDistance150Scalar);

void
BM_EditDistance150Myers(benchmark::State &state)
{
    auto read = editedRead(70000);
    auto target = sharedRef().chromosome(0).sub(70000, 150);
    for (auto _ : state)
        benchmark::DoNotOptimize(filters::editDistance(read, target));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_EditDistance150Myers);

void
BM_EditDistanceBoundedScalar(benchmark::State &state)
{
    auto read = editedRead(71000);
    auto target = sharedRef().chromosome(0).sub(71000, 150);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            filters::editDistanceBoundedScalar(read, target, 5));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_EditDistanceBoundedScalar);

void
BM_EditDistanceBoundedMyers(benchmark::State &state)
{
    auto read = editedRead(71000);
    auto target = sharedRef().chromosome(0).sub(71000, 150);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            filters::editDistanceBounded(read, target, 5));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_EditDistanceBoundedMyers);

void
BM_CandidateEditScalar(benchmark::State &state)
{
    auto read = editedRead(72000);
    auto window = sharedRef().chromosome(0).sub(71995, 160);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            filters::candidateEditDistanceScalar(read, window, 5, 5));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_CandidateEditScalar);

void
BM_CandidateEditMyers(benchmark::State &state)
{
    auto read = editedRead(72000);
    auto window = sharedRef().chromosome(0).sub(71995, 160);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            filters::candidateEditDistance(read, window, 5, 5));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_CandidateEditMyers);

void
BM_MinimizerExtractLegacy(benchmark::State &state)
{
    // The pre-refactor per-base/deque implementation, retained in the
    // library as the scalar oracle.
    auto seq = sharedRef().chromosome(0).sub(80000, 10000);
    baseline::MinimizerParams params;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            baseline::extractMinimizersScalar(seq, params));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 10000);
}
BENCHMARK(BM_MinimizerExtractLegacy);

void
BM_MinimizerExtractPacked(benchmark::State &state)
{
    auto seq = sharedRef().chromosome(0).sub(80000, 10000);
    baseline::MinimizerParams params;
    for (auto _ : state)
        benchmark::DoNotOptimize(baseline::extractMinimizers(seq, params));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 10000);
}
BENCHMARK(BM_MinimizerExtractPacked);

void
BM_WindowMaterialize(benchmark::State &state)
{
    // Candidate inspection the old way: copy the window, then compare.
    auto read = sharedRef().chromosome(0).sub(90000, 150);
    for (auto _ : state) {
        genomics::DnaSequence window = sharedRef().window(90000, 150);
        benchmark::DoNotOptimize(genomics::hammingDistance(read, window));
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_WindowMaterialize);

void
BM_WindowZeroCopy(benchmark::State &state)
{
    // Candidate inspection the new way: view straight into the genome.
    auto read = sharedRef().chromosome(0).sub(90000, 150);
    for (auto _ : state) {
        genomics::DnaView window = sharedRef().windowView(90000, 150);
        benchmark::DoNotOptimize(
            genomics::hammingDistance(read.view(), window));
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_WindowZeroCopy);

/** Pre-refactor revComp: one push per base, copied as the before row. */
genomics::DnaSequence
legacyRevComp(const genomics::DnaSequence &s)
{
    genomics::DnaSequence out;
    for (std::size_t i = s.size(); i > 0; --i)
        out.push(genomics::complementBase(s.at(i - 1)));
    return out;
}

void
BM_RevCompLegacy(benchmark::State &state)
{
    auto read = sharedRef().chromosome(0).sub(95000, 150);
    for (auto _ : state)
        benchmark::DoNotOptimize(legacyRevComp(read));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_RevCompLegacy);

void
BM_RevCompWord(benchmark::State &state)
{
    auto read = sharedRef().chromosome(0).sub(95000, 150);
    for (auto _ : state)
        benchmark::DoNotOptimize(read.revComp());
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_RevCompWord);

} // namespace
