/**
 * @file
 * micro_stage_batch — batched SoA stage graph vs the monolithic
 * per-pair pipeline it replaced.
 *
 * The seed GenPairPipeline::mapPair() materialized four read
 * orientations, four candidate vectors and two candidate-pair vectors
 * per pair, and every light-alignment attempt rebuilt its bit planes
 * and Hamming masks from scratch (~17 allocations per attempt at ~11.6
 * attempts per pair). The stage graph (stages.hh) runs the same work
 * over structure-of-arrays batches with every scratch buffer reused.
 * This harness replays the seed implementation verbatim (`monolith`)
 * next to the batched engine across batch sizes and every SIMD backend
 * the host supports (scalar / AVX2 / AVX-512 — the batch kernels of
 * util/simd.hh), single-threaded (the per-core win; thread scaling is
 * micro_driver_scaling's job), checks the mappings and stats are
 * identical under every backend, and records the per-backend grid with
 * fallback fractions and candidate counts with `--json` (see
 * BENCH_stage_batch.json at the repo root, gated by
 * scripts/check_stage_batch.py).
 */

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "common.hh"
#include "genpair/pipeline.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "util/version.hh"

namespace {

using namespace gpx;

/**
 * The seed DP fallback engine, verbatim in behavior: Mm2Lite as it
 * stood before this PR, running the branchy, per-call-allocating
 * reference DP kernel (align::fitAlignRef). The production Mm2Lite now
 * reuses an AlignScratch and the branchless engine; replaying the seed
 * behavior needs this replica.
 */
class SeedMm2Lite
{
  public:
    SeedMm2Lite(const genomics::Reference &ref,
                const baseline::Mm2LiteParams &params,
                std::shared_ptr<const baseline::MinimizerIndex> index)
        : ref_(ref), params_(params), index_(std::move(index))
    {
    }

    genomics::Mapping
    alignAt(const genomics::DnaSequence &read, GlobalPos pos, u32 slack)
    {
        genomics::Mapping m;
        auto [wstart, wlen] = clampWindow(pos, read.size(), slack);
        if (wlen < read.size())
            return m;
        genomics::DnaView window = ref_.windowView(wstart, wlen);
        auto res = align::fitAlignRef(read, window, params_.scoring,
                                      static_cast<i32>(2 * slack + 32));
        if (!res.valid || res.score < params_.minAlignScore)
            return m;
        m.mapped = true;
        m.pos = wstart + res.targetStart;
        m.score = res.score;
        m.cigar = std::move(res.cigar);
        return m;
    }

    genomics::PairMapping
    mapPair(const genomics::ReadPair &pair)
    {
        auto cands1 = mapRead(pair.first);
        auto cands2 = mapRead(pair.second);

        genomics::PairMapping best;
        best.path = genomics::MappingPath::FullDpFallback;
        i64 bestScore = -1;
        for (const auto &m1 : cands1) {
            for (const auto &m2 : cands2) {
                if (m1.reverse == m2.reverse)
                    continue;
                const genomics::Mapping &left = m1.reverse ? m2 : m1;
                const genomics::Mapping &right = m1.reverse ? m1 : m2;
                if (right.pos < left.pos)
                    continue;
                u64 span = right.pos + right.cigar.refSpan() - left.pos;
                if (span > params_.maxInsert)
                    continue;
                i64 score = static_cast<i64>(m1.score) + m2.score;
                if (score > bestScore) {
                    bestScore = score;
                    best.first = m1;
                    best.second = m2;
                }
            }
        }
        if (bestScore >= 0)
            return best;
        if (!cands1.empty())
            best.first = cands1.front();
        if (!cands2.empty())
            best.second = cands2.front();
        if (!best.first.mapped && !best.second.mapped)
            best.path = genomics::MappingPath::Unmapped;
        return best;
    }

  private:
    std::pair<GlobalPos, u64>
    clampWindow(GlobalPos pos, u64 len, u64 slack) const
    {
        genomics::ChromPos cp = ref_.toChromPos(pos);
        u64 chromLen = ref_.chromosomeLength(cp.chrom);
        u64 lo = cp.offset > slack ? cp.offset - slack : 0;
        u64 hi = std::min<u64>(chromLen, cp.offset + len + slack);
        GlobalPos start = ref_.chromosomeStart(cp.chrom) + lo;
        return { start, hi > lo ? hi - lo : 0 };
    }

    std::vector<genomics::Mapping>
    mapRead(const genomics::Read &read)
    {
        using align::Anchor;
        const u32 k = params_.minimizers.k;
        auto mins =
            baseline::extractMinimizers(read.seq, params_.minimizers);
        std::vector<Anchor> anchors;
        for (const auto &m : mins) {
            for (const auto &e : index_->lookup(m.hash)) {
                bool reverse = m.reverse != e.reverse;
                Anchor a;
                a.length = k;
                a.reverse = reverse;
                a.queryPos = reverse ? read.seq.size() - k - m.pos
                                     : m.pos;
                a.refPos = e.pos;
                anchors.push_back(a);
            }
        }

        std::vector<align::Chain> chains;
        std::vector<Anchor> fwd, rev;
        for (const auto &a : anchors)
            (a.reverse ? rev : fwd).push_back(a);
        for (auto *side : { &fwd, &rev }) {
            auto part = align::chainAnchors(*side, params_.chain);
            for (auto &c : part)
                chains.push_back(std::move(c));
        }
        std::sort(chains.begin(), chains.end(),
                  [](const align::Chain &a, const align::Chain &b) {
                      return a.score > b.score;
                  });
        if (chains.size() > params_.maxCandidates)
            chains.resize(params_.maxCandidates);

        std::vector<genomics::Mapping> mappings;
        genomics::DnaSequence rc;
        bool haveRc = false;
        for (const auto &chain : chains) {
            const genomics::DnaSequence *query = &read.seq;
            if (chain.reverse) {
                if (!haveRc) {
                    rc = read.seq.revComp();
                    haveRc = true;
                }
                query = &rc;
            }
            GlobalPos expect = chain.refStart > chain.queryStart
                                   ? chain.refStart - chain.queryStart
                                   : 0;
            auto [wstart, wlen] =
                clampWindow(expect, query->size(), params_.alignSlack);
            if (wlen < query->size())
                continue;
            genomics::DnaView window = ref_.windowView(wstart, wlen);
            auto res = align::fitAlignRef(
                *query, window, params_.scoring,
                static_cast<i32>(2 * params_.alignSlack + 32));
            if (!res.valid || res.score < params_.minAlignScore)
                continue;
            genomics::Mapping m;
            m.mapped = true;
            m.pos = wstart + res.targetStart;
            m.reverse = chain.reverse;
            m.score = res.score;
            m.cigar = std::move(res.cigar);
            mappings.push_back(std::move(m));
        }

        std::sort(mappings.begin(), mappings.end(),
                  [](const genomics::Mapping &a,
                     const genomics::Mapping &b) {
                      return a.score > b.score;
                  });
        std::vector<genomics::Mapping> unique;
        unique.reserve(mappings.size());
        std::unordered_set<u64> seen;
        seen.reserve(mappings.size() * 2);
        for (auto &m : mappings) {
            const u64 key = (m.pos << 1) | (m.reverse ? 1u : 0u);
            if (seen.insert(key).second)
                unique.push_back(std::move(m));
        }
        return unique;
    }

    const genomics::Reference &ref_;
    baseline::Mm2LiteParams params_;
    std::shared_ptr<const baseline::MinimizerIndex> index_;
};

/**
 * The seed (pre-stage-graph) pipeline, verbatim in behavior: one
 * monolithic call per pair, per-pair owned orientations and candidate
 * vectors, allocating light alignment, seed DP fallback. The honest
 * pre-refactor baseline the batched engine is measured against.
 */
class MonolithPipeline
{
  public:
    MonolithPipeline(const genomics::Reference &ref,
                     const genpair::SeedMapView &map,
                     const genpair::GenPairParams &params,
                     SeedMm2Lite *fallback)
        : map_(map), params_(params), seeder_(map),
          light_(ref, params.light), fallback_(fallback)
    {
    }

    genomics::PairMapping
    mapPair(const genomics::ReadPair &pair)
    {
        using genomics::DnaSequence;
        using genomics::Mapping;
        using genomics::MappingPath;
        using genomics::PairMapping;
        using genpair::CandidatePair;
        using genpair::LightResult;

        ++stats_.pairsTotal;

        DnaSequence r1f = pair.first.seq;
        DnaSequence r1r = pair.first.seq.revComp();
        DnaSequence r2f = pair.second.seq;
        DnaSequence r2r = pair.second.seq.revComp();

        struct Oriented
        {
            const DnaSequence *left;
            const DnaSequence *right;
            bool read1IsLeft;
            std::vector<CandidatePair> cands;
        };
        Oriented orients[2] = {
            { &r1f, &r2r, true, {} },
            { &r2f, &r1r, false, {} },
        };

        u64 totalLocations = 0;
        for (auto &o : orients) {
            auto leftCands = genpair::queryCandidates(
                map_, seeder_.extract(*o.left), stats_.query);
            auto rightCands = genpair::queryCandidates(
                map_, seeder_.extract(*o.right), stats_.query);
            totalLocations += leftCands.size() + rightCands.size();
            o.cands = genpair::pairedAdjacencyFilter(
                leftCands, rightCands, params_.delta, stats_.query);
            stats_.candidatePairs += o.cands.size();
        }

        auto fullDp = [&](u64 &counter) -> PairMapping {
            ++counter;
            PairMapping out = fallback_->mapPair(pair);
            out.path = MappingPath::FullDpFallback;
            if (out.bothMapped() || out.first.mapped || out.second.mapped)
                ++stats_.fullDpMapped;
            else
                ++stats_.unmapped;
            return out;
        };

        if (totalLocations == 0)
            return fullDp(stats_.seedMissFallback);
        if (orients[0].cands.empty() && orients[1].cands.empty())
            return fullDp(stats_.paFilterFallback);

        struct Best
        {
            bool found = false;
            i64 score = 0;
            LightResult left;
            LightResult right;
            bool read1IsLeft = true;
        } best;

        for (const auto &o : orients) {
            u32 budget = params_.maxCandidatePairs;
            for (const auto &cand : o.cands) {
                if (budget-- == 0)
                    break;
                LightResult la = light_.align(*o.left, cand.leftStart);
                ++stats_.lightAlignsAttempted;
                stats_.lightHypotheses += la.hypothesesTried;
                if (!la.aligned)
                    continue;
                LightResult ra = light_.align(*o.right, cand.rightStart);
                ++stats_.lightAlignsAttempted;
                stats_.lightHypotheses += ra.hypothesesTried;
                if (!ra.aligned)
                    continue;
                i64 score = static_cast<i64>(la.score) + ra.score;
                if (!best.found || score > best.score) {
                    best.found = true;
                    best.score = score;
                    best.left = la;
                    best.right = ra;
                    best.read1IsLeft = o.read1IsLeft;
                }
            }
        }

        if (best.found) {
            ++stats_.lightAligned;
            PairMapping out;
            out.path = MappingPath::LightAligned;
            Mapping leftMap, rightMap;
            leftMap.mapped = true;
            leftMap.pos = best.left.pos;
            leftMap.score = best.left.score;
            leftMap.cigar = best.left.cigar;
            leftMap.reverse = false;
            rightMap.mapped = true;
            rightMap.pos = best.right.pos;
            rightMap.score = best.right.score;
            rightMap.cigar = best.right.cigar;
            rightMap.reverse = true;
            if (best.read1IsLeft) {
                out.first = std::move(leftMap);
                out.second = std::move(rightMap);
            } else {
                leftMap.reverse = false;
                rightMap.reverse = true;
                out.second = std::move(leftMap);
                out.first = std::move(rightMap);
            }
            return out;
        }

        ++stats_.lightAlignFallback;

        struct DpBest
        {
            bool found = false;
            i64 score = 0;
            Mapping left;
            Mapping right;
            bool read1IsLeft = true;
        } dpBest;

        for (const auto &o : orients) {
            u32 budget = std::max<u32>(4, params_.maxCandidatePairs / 4);
            for (const auto &cand : o.cands) {
                if (budget-- == 0)
                    break;
                Mapping lm = fallback_->alignAt(*o.left, cand.leftStart,
                                                params_.dpSlack);
                if (!lm.mapped || lm.score < params_.minDpScore)
                    continue;
                Mapping rm = fallback_->alignAt(
                    *o.right, cand.rightStart, params_.dpSlack);
                if (!rm.mapped || rm.score < params_.minDpScore)
                    continue;
                i64 score = static_cast<i64>(lm.score) + rm.score;
                if (!dpBest.found || score > dpBest.score) {
                    dpBest.found = true;
                    dpBest.score = score;
                    dpBest.left = std::move(lm);
                    dpBest.right = std::move(rm);
                    dpBest.read1IsLeft = o.read1IsLeft;
                }
            }
        }

        PairMapping out;
        if (dpBest.found) {
            ++stats_.dpAligned;
            out.path = MappingPath::DpAlignFallback;
            dpBest.left.reverse = false;
            dpBest.right.reverse = true;
            if (dpBest.read1IsLeft) {
                out.first = std::move(dpBest.left);
                out.second = std::move(dpBest.right);
            } else {
                out.second = std::move(dpBest.left);
                out.first = std::move(dpBest.right);
            }
        } else {
            ++stats_.unmapped;
            out.path = MappingPath::Unmapped;
        }
        return out;
    }

    const genpair::PipelineStats &stats() const { return stats_; }

  private:
    genpair::SeedMapView map_;
    genpair::GenPairParams params_;
    genpair::PartitionedSeeder seeder_;
    genpair::LightAligner light_;
    SeedMm2Lite *fallback_;
    genpair::PipelineStats stats_;
};

struct Row
{
    std::string name;
    std::string simd;
    u64 batchPairs;
    double pairsPerSec;

    double
    speedupVs(double base) const
    {
        return base > 0 ? pairsPerSec / base : 0;
    }
};

bool
sameMapping(const genomics::PairMapping &a, const genomics::PairMapping &b)
{
    return a.path == b.path && a.first.pos == b.first.pos &&
           a.second.pos == b.second.pos &&
           a.first.score == b.first.score &&
           a.second.score == b.second.score;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpx;
    using namespace gpx::bench;

    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--json needs a path\n");
                return 2;
            }
            jsonPath = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 2;
        }
    }

    banner("Batched SoA stage graph vs monolithic per-pair pipeline",
           "stage-graph engine PR; single-thread mapping hot path");

    // Capture the session's dispatch provenance before the backend
    // sweep overwrites it with "(forced)".
    const std::string simdContext = simdContextJson();

    // The micro_driver_scaling dataset: small enough for a grid,
    // large enough that the light path dominates.
    simdata::Dataset dataset = simdata::buildDataset(
        simdata::datasetConfig(1, u64{ 2 } << 20, 6000));
    const auto &ref = *dataset.reference;
    genpair::SeedMap seedmap(ref, genpair::SeedMapParams{});
    const auto &pairs = dataset.pairs;
    const u64 n = pairs.size();
    genpair::GenPairParams params;

    // One shared minimizer index: engine construction is a pool
    // start-up cost in both eras and is not what this harness measures.
    baseline::Mm2LiteParams mm2Params;
    auto sharedIndex = std::make_shared<const baseline::MinimizerIndex>(
        ref, mm2Params.minimizers);
    SeedMm2Lite seedMm2(ref, mm2Params, sharedIndex);
    baseline::Mm2Lite mm2(ref, mm2Params, sharedIndex);

    // Reference output (and warm-up): the monolith once, serial.
    std::vector<genomics::PairMapping> monolithOut(n);
    {
        MonolithPipeline warm(ref, seedmap, params, &seedMm2);
        for (u64 i = 0; i < n; ++i)
            monolithOut[i] = warm.mapPair(pairs[i]);
    }

    auto timeMonolith = [&]() {
        MonolithPipeline pipeline(ref, seedmap, params, &seedMm2);
        util::Stopwatch watch;
        for (u64 i = 0; i < n; ++i)
            monolithOut[i] = pipeline.mapPair(pairs[i]);
        return watch.seconds();
    };

    std::vector<genomics::PairMapping> batchedOut(n);
    genpair::PipelineStats batchedStats;
    auto timeBatched = [&](u64 batchPairs) {
        genpair::GenPairPipeline pipeline(ref, seedmap, params, &mm2);
        util::Stopwatch watch;
        for (u64 begin = 0; begin < n; begin += batchPairs) {
            const u64 end = std::min(n, begin + batchPairs);
            pipeline.mapBatch(pairs.data() + begin, end - begin,
                              batchedOut.data() + begin);
        }
        double secs = watch.seconds();
        batchedStats = pipeline.stats();
        return secs;
    };

    // Reference stats, once: the monolith counters every batched run
    // (any backend, any batch size) must reproduce exactly.
    genpair::PipelineStats monolithStats;
    {
        MonolithPipeline check(ref, seedmap, params, &seedMm2);
        for (u64 i = 0; i < n; ++i)
            check.mapPair(pairs[i]);
        monolithStats = check.stats();
    }

    // The refactor must not change a single mapping or stats counter —
    // under any SIMD backend.
    auto crossCheck = [&](u64 batchPairs) {
        timeBatched(batchPairs);
        for (u64 i = 0; i < n; ++i) {
            if (!sameMapping(monolithOut[i], batchedOut[i])) {
                std::fprintf(
                    stderr,
                    "batched(%llu, %s)/monolith mismatch at pair %llu\n",
                    static_cast<unsigned long long>(batchPairs),
                    util::simdBackendName(util::activeSimdBackend()),
                    static_cast<unsigned long long>(i));
                std::exit(1);
            }
        }
        const auto &a = monolithStats;
        const auto &b = batchedStats;
        if (a.lightAligned != b.lightAligned ||
            a.candidatePairs != b.candidatePairs ||
            a.lightAlignsAttempted != b.lightAlignsAttempted ||
            a.query.filterIterations != b.query.filterIterations ||
            a.unmapped != b.unmapped) {
            std::fprintf(stderr, "stats mismatch at batch %llu (%s)\n",
                         static_cast<unsigned long long>(batchPairs),
                         util::simdBackendName(util::activeSimdBackend()));
            std::exit(1);
        }
    };

    // Every backend the host can execute gets its own grid sweep; the
    // vectorized-vs-scalar ratio is a within-run contract gated by
    // scripts/check_stage_batch.py.
    const util::SimdBackend defaultBackend = util::activeSimdBackend();
    std::vector<util::SimdBackend> backends;
    for (util::SimdBackend want :
         { util::SimdBackend::Scalar, util::SimdBackend::Avx2,
           util::SimdBackend::Avx512 })
        if (util::forceSimdBackend(want) == want)
            backends.push_back(want);
    util::forceSimdBackend(defaultBackend);

    const std::vector<u64> batchGrid{ 1, 16, 64, 256, n };
    std::vector<genpair::PipelineStats> backendStats(backends.size());
    for (std::size_t bk = 0; bk < backends.size(); ++bk) {
        util::forceSimdBackend(backends[bk]);
        for (u64 b : batchGrid)
            crossCheck(b);
        backendStats[bk] = batchedStats;
    }

    // Interleaved best-of-N: every engine sees the same host noise.
    constexpr int kReps = 3;
    std::vector<std::vector<double>> batchedSecs(
        backends.size(),
        std::vector<double>(batchGrid.size(),
                            std::numeric_limits<double>::infinity()));
    double monolithSecs = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
        monolithSecs = std::min(monolithSecs, timeMonolith());
        for (std::size_t bk = 0; bk < backends.size(); ++bk) {
            util::forceSimdBackend(backends[bk]);
            for (std::size_t g = 0; g < batchGrid.size(); ++g)
                batchedSecs[bk][g] = std::min(batchedSecs[bk][g],
                                              timeBatched(batchGrid[g]));
        }
    }
    util::forceSimdBackend(defaultBackend);

    const double monolithRate =
        monolithSecs > 0 ? n / monolithSecs : 0;
    std::vector<Row> rows;
    rows.push_back({ "monolith (seed mapPair)", "-", 0, monolithRate });
    for (std::size_t bk = 0; bk < backends.size(); ++bk)
        for (std::size_t g = 0; g < batchGrid.size(); ++g)
            rows.push_back({ batchGrid[g] == n
                                 ? "stage graph (whole set)"
                                 : "stage graph",
                             util::simdBackendName(backends[bk]),
                             batchGrid[g],
                             batchedSecs[bk][g] > 0
                                 ? n / batchedSecs[bk][g]
                                 : 0 });

    util::Table table(
        { "engine", "simd", "batch", "pairs/s", "vs monolith" });
    for (const auto &row : rows) {
        table.row()
            .cell(row.name)
            .cell(row.simd)
            .cell(static_cast<double>(row.batchPairs), 0)
            .cell(row.pairsPerSec, 0)
            .cell(row.speedupVs(monolithRate), 2);
    }
    table.print("single-thread mapping hot path");

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
            return 1;
        }
        auto num = [](double v, int prec) {
            std::ostringstream str;
            str << std::fixed << std::setprecision(prec) << v;
            return str.str();
        };
        out << "{\n  \"bench\": \"micro_stage_batch\",\n"
            << "  \"gpx_version\": \"" << kVersion << "\",\n"
            << "  \"pairs\": " << n << ",\n"
            << "  \"threads\": 1,\n"
            << "  \"context\": " << simdContext << ",\n"
            << "  \"monolith_pairs_per_s\": " << num(monolithRate, 0)
            << ",\n  \"grid\": [\n";
        for (std::size_t bk = 0; bk < backends.size(); ++bk) {
            const auto &st = backendStats[bk];
            const u64 fallbacks = st.seedMissFallback +
                                  st.paFilterFallback +
                                  st.lightAlignFallback;
            const double fallbackFraction =
                st.pairsTotal
                    ? static_cast<double>(fallbacks) / st.pairsTotal
                    : 0;
            for (std::size_t g = 0; g < batchGrid.size(); ++g) {
                double rate = batchedSecs[bk][g] > 0
                                  ? n / batchedSecs[bk][g]
                                  : 0;
                out << "    {\"backend\": \""
                    << util::simdBackendName(backends[bk])
                    << "\", \"dp_lanes\": "
                    << util::simdDpLanes(backends[bk])
                    << ", \"batch_pairs\": " << batchGrid[g]
                    << ", \"pairs_per_s\": " << num(rate, 0)
                    << ", \"speedup_vs_monolith\": "
                    << num(monolithRate > 0 ? rate / monolithRate : 0, 3)
                    << ",\n     \"fallback_fraction\": "
                    << num(fallbackFraction, 4)
                    << ", \"candidate_pairs\": " << st.candidatePairs
                    << ", \"light_aligns_attempted\": "
                    << st.lightAlignsAttempted
                    << ", \"light_align_fallback\": "
                    << st.lightAlignFallback
                    << ", \"seed_miss_fallback\": "
                    << st.seedMissFallback
                    << ", \"pa_filter_fallback\": "
                    << st.paFilterFallback << "}"
                    << (bk + 1 < backends.size() ||
                                g + 1 < batchGrid.size()
                            ? ","
                            : "")
                    << "\n";
            }
        }
        out << "  ]\n}\n";
        out.flush();
        if (!out) {
            std::fprintf(stderr, "write to %s failed\n",
                         jsonPath.c_str());
            return 1;
        }
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return 0;
}
