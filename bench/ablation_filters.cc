/**
 * @file
 * Ablation — pre-alignment filter comparison and the SneakySnake x
 * Light Alignment combination named as promising future work in paper
 * §8.
 *
 * Part 1 pits the classic filters (BaseCount, SHD, GateKeeper,
 * SneakySnake) against each other on two candidate populations drawn
 * from the same pipeline state GenPairX sees after Paired-Adjacency
 * Filtering: true candidates (the read's simulated origin) and decoys
 * (wrong locations, the hash-collision / spurious-adjacency stand-in).
 * A good filter accepts nearly all of the former and few of the latter,
 * cheaply.
 *
 * Part 2 places the SneakySnake gate ahead of the Light Aligner and
 * measures the Light-Alignment hypothesis work removed on a realistic
 * candidate mix, confirming the gate loses none of the fast-path
 * alignments (the soundness property test_filters pins down).
 */

#include <memory>

#include "common.hh"
#include "filters/base_count.hh"
#include "filters/filtered_light_align.hh"
#include "filters/gatekeeper.hh"
#include "filters/grim_filter.hh"
#include "filters/shd_filter.hh"
#include "filters/sneakysnake.hh"
#include "genpair/pipeline.hh"
#include "simdata/read_simulator.hh"
#include "util/rng.hh"

int
main()
{
    using namespace gpx;
    using namespace gpx::bench;
    using genomics::DnaSequence;

    banner("Ablation: pre-alignment filters and the SneakySnake x "
           "Light-Alignment combination",
           "paper SS8 related work + future-work direction");

    simdata::GenomeParams gp;
    gp.length = kBenchGenomeLen;
    gp.chromosomes = 2;
    gp.seed = 41;
    genomics::Reference ref = simdata::generateGenome(gp);
    simdata::DiploidGenome diploid(ref, simdata::VariantParams{});
    simdata::ReadSimParams rp;
    simdata::ReadSimulator sim(diploid, rp);
    auto pairs = sim.simulate(4000);

    // Candidate populations. True candidates pair each simulated read
    // with its origin; decoys displace the candidate far from the truth.
    struct Candidate
    {
        DnaSequence read;
        GlobalPos pos;
    };
    std::vector<Candidate> truths, decoys;
    util::Pcg32 rng(4242);
    for (const auto &p : pairs) {
        const auto &read =
            rng.below(2) ? p.first : p.second;
        if (read.truthPos == kInvalidPos)
            continue;
        DnaSequence fwd =
            read.truthReverse ? read.seq.revComp() : read.seq;
        truths.push_back({ fwd, read.truthPos });
        GlobalPos decoy =
            (read.truthPos + 100000 + rng.below(1000000)) %
            (gp.length - 200);
        decoys.push_back({ fwd, decoy });
    }

    const u32 budget = 5; // Light Alignment's edit bound (maxShift)
    struct Entry
    {
        std::string name;
        std::unique_ptr<filters::PreAlignmentFilter> filter;
    };
    std::vector<Entry> entries;
    entries.push_back({ "BaseCount",
                        std::make_unique<filters::BaseCountFilter>() });
    entries.push_back({ "SHD", std::make_unique<filters::ShdFilter>() });
    entries.push_back({ "GateKeeper",
                        std::make_unique<filters::GateKeeperFilter>() });
    entries.push_back(
        { "SneakySnake",
          std::make_unique<filters::SneakySnakeFilter>() });

    util::Table table({ "filter", "true accept %", "decoy accept %",
                        "ns/candidate" });
    for (const auto &entry : entries) {
        auto evalPopulation = [&](const std::vector<Candidate> &cands,
                                  double &accept_frac, double &ns_per) {
            u64 accepted = 0;
            util::Stopwatch watch;
            for (const auto &c : cands) {
                const GlobalPos from =
                    c.pos >= budget ? c.pos - budget : 0;
                DnaSequence window = ref.window(
                    from, c.read.size() + 2 * static_cast<u64>(budget));
                auto d = entry.filter->evaluate(
                    c.read, window, static_cast<u32>(c.pos - from),
                    budget);
                accepted += d.accept ? 1 : 0;
            }
            double secs = watch.seconds();
            accept_frac =
                cands.empty()
                    ? 0.0
                    : static_cast<double>(accepted) / cands.size();
            ns_per = cands.empty() ? 0.0 : secs * 1e9 / cands.size();
        };
        double trueAcc = 0, decoyAcc = 0, nsTrue = 0, nsDecoy = 0;
        evalPopulation(truths, trueAcc, nsTrue);
        evalPopulation(decoys, decoyAcc, nsDecoy);
        table.row()
            .cell(entry.name)
            .cell(100 * trueAcc, 2)
            .cell(100 * decoyAcc, 2)
            .cell((nsTrue + nsDecoy) / 2, 1);
    }
    table.print("Filter-vs-filter on post-PA-filter candidates "
                "(budget e=5; true = simulated origin, decoy = displaced "
                "location)");

    // GRIM-Filter runs from its precomputed bin bitvectors instead of
    // reference windows (the PIM trade: storage for query locality), so
    // it gets its own section on the same populations.
    {
        filters::GrimFilter grim(ref, filters::GrimParams{});
        auto evalGrim = [&](const std::vector<Candidate> &cands,
                            double &accept_frac, double &ns_per) {
            u64 accepted = 0;
            util::Stopwatch watch;
            for (const auto &c : cands)
                accepted += grim.evaluate(c.read, c.pos, budget).accept
                                ? 1
                                : 0;
            double secs = watch.seconds();
            accept_frac =
                cands.empty()
                    ? 0.0
                    : static_cast<double>(accepted) / cands.size();
            ns_per = cands.empty() ? 0.0 : secs * 1e9 / cands.size();
        };
        double trueAcc = 0, decoyAcc = 0, nsTrue = 0, nsDecoy = 0;
        evalGrim(truths, trueAcc, nsTrue);
        evalGrim(decoys, decoyAcc, nsDecoy);
        util::Table grimTable({ "filter", "true accept %",
                                "decoy accept %", "ns/candidate",
                                "bitvector MB" });
        grimTable.row()
            .cell(std::string("GRIM (q=5, 256b bins)"))
            .cell(100 * trueAcc, 2)
            .cell(100 * decoyAcc, 2)
            .cell((nsTrue + nsDecoy) / 2, 1)
            .cell(grim.bitvectorBytes() / 1048576.0, 2);
        grimTable.print("GRIM-Filter on the same populations (index-"
                        "backed; no reference bases touched per query)");
    }

    // Part 2: the gate in front of the Light Aligner, on a mixed stream
    // with a realistic decoy fraction (hash collisions + spurious
    // adjacencies are a minority of candidates after the PA filter).
    std::vector<Candidate> stream;
    for (std::size_t i = 0; i < truths.size(); ++i) {
        stream.push_back(truths[i]);
        if (i % 3 == 0)
            stream.push_back(decoys[i]);
    }

    genpair::LightAlignParams lightParams;
    genpair::LightAligner plain(ref, lightParams);
    filters::SneakySnakeFilter gate;
    filters::FilteredLightAligner combo(ref, lightParams, gate);

    u64 plainAligned = 0, plainHypotheses = 0;
    util::Stopwatch plainWatch;
    for (const auto &c : stream) {
        auto r = plain.align(c.read, c.pos);
        plainAligned += r.aligned ? 1 : 0;
        plainHypotheses += r.hypothesesTried;
    }
    double plainSecs = plainWatch.seconds();

    util::Stopwatch comboWatch;
    for (const auto &c : stream)
        combo.align(c.read, c.pos);
    double comboSecs = comboWatch.seconds();
    const auto &cs = combo.stats();

    util::Table combined({ "configuration", "aligned", "hypotheses",
                           "gate rejects", "ns/candidate" });
    combined.row()
        .cell("LightAlign alone")
        .cell(plainAligned)
        .cell(plainHypotheses)
        .cell(u64{0})
        .cell(plainSecs * 1e9 / stream.size(), 1);
    combined.row()
        .cell("SneakySnake + LightAlign")
        .cell(cs.lightAligned)
        .cell(cs.hypothesesTried)
        .cell(cs.gateRejected)
        .cell(comboSecs * 1e9 / stream.size(), 1);
    combined.print("SS8 combination: SneakySnake gate ahead of Light "
                   "Alignment (mixed true/decoy stream)");

    std::printf("\nSoundness check: aligned counts match: %s\n",
                cs.lightAligned == plainAligned ? "YES" : "NO (BUG)");
    std::printf("Hypothesis work removed by the gate: %.1f%%\n",
                plainHypotheses
                    ? 100.0 *
                          (1.0 - static_cast<double>(cs.hypothesesTried) /
                                     plainHypotheses)
                    : 0.0);

    // Part 3: the same gate inside the full Fig. 3 pipeline (via
    // GenPairPipeline::setLightAlignGate), where candidates arrive from
    // real SeedMap queries and adjacency filtering rather than a
    // synthetic stream.
    genpair::GenPairParams pipeParams;
    genpair::SeedMap map(ref, genpair::SeedMapParams{});
    baseline::Mm2Lite mm2(ref, baseline::Mm2LiteParams{});

    genpair::GenPairPipeline plainPipe(ref, map, pipeParams, &mm2);
    for (const auto &p : pairs)
        plainPipe.mapPair(p);
    const auto &ps = plainPipe.stats();

    filters::FilterGate pipelineGate(
        ref, gate,
        std::max(pipeParams.light.maxShift,
                 pipeParams.light.maxMismatches));
    genpair::GenPairPipeline gatedPipe(ref, map, pipeParams, &mm2);
    gatedPipe.setLightAlignGate(&pipelineGate);
    for (const auto &p : pairs)
        gatedPipe.mapPair(p);
    const auto &gs = gatedPipe.stats();

    util::Table pipeTable({ "pipeline", "light-aligned %",
                            "light aligns", "hypotheses",
                            "gate rejects" });
    pipeTable.row()
        .cell("plain")
        .cell(100 * ps.fraction(ps.lightAligned), 2)
        .cell(ps.lightAlignsAttempted)
        .cell(ps.lightHypotheses)
        .cell(u64{0});
    pipeTable.row()
        .cell("SneakySnake-gated")
        .cell(100 * gs.fraction(gs.lightAligned), 2)
        .cell(gs.lightAlignsAttempted)
        .cell(gs.lightHypotheses)
        .cell(gs.gateRejected);
    pipeTable.print("Full-pipeline effect of the SS8 gate "
                    "(fast-path coverage must not move)");
    std::printf("pipeline hypothesis work removed: %.1f%% "
                "(fast path %s)\n",
                ps.lightHypotheses
                    ? 100.0 * (1.0 - static_cast<double>(
                                         gs.lightHypotheses) /
                                         ps.lightHypotheses)
                    : 0.0,
                ps.lightAligned == gs.lightAligned ? "unchanged"
                                                   : "CHANGED (BUG)");
    return 0;
}
