/**
 * @file
 * Fig. 8 — NMSL sliding-window sweep: throughput (a), required FIFO
 * depth (b) and total SRAM (c) as functions of the read-pair window
 * size, simulated against the HBM2 channel model with a real SeedMap
 * workload.
 */

#include "common.hh"
#include "hwsim/nmsl.hh"

int
main()
{
    using namespace gpx;
    using namespace gpx::bench;

    banner("NMSL sliding-window sweep over HBM2",
           "Fig. 8a-c (paper: ~192.7 MPair/s asymptote; window 1024 = "
           "91.8% of it; 11.93 MB SRAM)");

    MappingStack s = buildStack(1, kBenchGenomeLen, 20000);
    auto workload = hwsim::buildWorkload(*s.seedmap, s.dataset.pairs);

    util::Table table({ "window", "MPair/s", "GB/s", "max FIFO depth",
                        "SRAM (MB)", "% of no-window" });

    // "No window" reference first (paper's dashed asymptote).
    hwsim::NmslConfig base;
    base.windowSize = 0;
    auto asym = hwsim::NmslSim(base).run(workload);

    for (u32 win : { 1u, 4u, 16u, 64u, 256u, 1024u, 4096u, 0u }) {
        hwsim::NmslConfig cfg;
        cfg.windowSize = win;
        // Latency-bound small windows: trim the workload to keep the
        // simulation fast without changing the steady-state answer.
        std::vector<hwsim::PairTrace> w = workload;
        if (win > 0 && win <= 16)
            w.resize(2000);
        auto res = hwsim::NmslSim(cfg).run(w);
        table.row()
            .cell(win == 0 ? std::string("no window")
                           : std::to_string(win))
            .cell(res.mpairsPerSec, 2)
            .cell(res.gbPerSec, 2)
            .cell(static_cast<long long>(res.maxChannelFifoDepth))
            .cell(static_cast<double>(res.totalSramBytes) / (1 << 20), 2)
            .cell(100.0 * res.mpairsPerSec / asym.mpairsPerSec, 1);
    }
    table.print("Fig. 8: throughput / FIFO depth / SRAM vs window size");
    std::printf("paper reference: window 1024 reaches 91.8%% of the "
                "asymptotic throughput at 11.93 MB of SRAM.\n");
    return 0;
}
