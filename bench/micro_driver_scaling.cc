/**
 * @file
 * micro_driver_scaling — host driver throughput across threads x chunk
 * size (pooled vs pre-pool), plus end-to-end ingest-included runs of
 * the async I/O spine (format v2).
 *
 * Two measurements:
 *
 *  1. `grid` — the seed ParallelMapper respawned every worker thread
 *     and rebuilt each worker's Mm2Lite + GenPairPipeline engines on
 *     every mapAll() call; this replays that behavior (`legacy`) next
 *     to the persistent worker pool (`pooled`) over a threads x
 *     chunk-size grid, mapping time only.
 *
 *  2. `ingest` — whole StreamingMapper runs, FASTQ text in and SAM
 *     text out, comparing the one-parser spine (`--io-threads 1`, the
 *     pre-spine shape) against the multi-parser spine at every thread
 *     count. This is the number the async-spine PR moves: parse cost
 *     overlaps mapping instead of serializing ahead of it.
 *
 * The thread grid extends {1,2,4,8,16,32,64} but is capped to the
 * host's hardware concurrency (`--max-threads` overrides the cap);
 * `host_threads` is recorded in the JSON so the CI gate
 * (scripts/check_driver_scaling.py) can skip thread counts the
 * recording host could not genuinely exercise. `--json PATH` records
 * everything machine-readably (see BENCH_driver_scaling.json next to
 * the fig11 baseline at the repo root).
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hh"
#include "genomics/sam.hh"
#include "genpair/driver.hh"
#include "genpair/streaming.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "util/version.hh"

namespace {

using namespace gpx;

/**
 * The seed driver's mapAll, verbatim in behavior: spawn threads,
 * construct both engines inside each worker, contiguous partition —
 * all charged to the chunk being mapped.
 */
double
legacyMapChunk(const genomics::Reference &ref,
               const genpair::SeedMap &map,
               const genpair::DriverConfig &config, u32 threads,
               std::shared_ptr<const baseline::MinimizerIndex> index,
               const std::vector<genomics::ReadPair> &pairs,
               std::vector<genomics::PairMapping> &out)
{
    util::Stopwatch watch;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (u32 t = 0; t < threads; ++t) {
        workers.emplace_back([&, t]() {
            baseline::Mm2Lite fallback(ref, config.fallback, index);
            genpair::GenPairPipeline pipeline(ref, map, config.pipeline,
                                              &fallback);
            u64 chunk = (pairs.size() + threads - 1) / threads;
            u64 begin = t * chunk;
            u64 end = std::min<u64>(pairs.size(), begin + chunk);
            for (u64 i = begin; i < end; ++i)
                out[i] = pipeline.mapPair(pairs[i]);
        });
    }
    for (auto &w : workers)
        w.join();
    return watch.seconds();
}

struct GridPoint
{
    u32 threads;
    u64 chunkPairs;
    u64 chunks;
    double legacyPairsPerSec;
    double pooledPairsPerSec;

    double
    speedup() const
    {
        return legacyPairsPerSec > 0
                   ? pooledPairsPerSec / legacyPairsPerSec
                   : 0.0;
    }
};

/** One ingest-included end-to-end point: spine vs single reader. */
struct IngestPoint
{
    u32 threads;
    u32 ioThreads;
    double singleReaderPairsPerSec;
    double spinePairsPerSec;
    double readerStallSecs;
    double writerStallSecs;

    double
    speedup() const
    {
        return singleReaderPairsPerSec > 0
                   ? spinePairsPerSec / singleReaderPairsPerSec
                   : 0.0;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpx;
    using namespace gpx::bench;

    std::string jsonPath;
    u32 maxThreads = std::max(1u, std::thread::hardware_concurrency());
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--json needs a path\n");
                return 2;
            }
            jsonPath = argv[++i];
        } else if (std::string(argv[i]) == "--max-threads") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--max-threads needs a count\n");
                return 2;
            }
            maxThreads = static_cast<u32>(
                std::max(1L, std::atol(argv[++i])));
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 2;
        }
    }
    const u32 hostThreads =
        std::max(1u, std::thread::hardware_concurrency());

    banner("Host driver scaling: persistent pool vs per-chunk respawn",
           "ROADMAP host-throughput north star (driver refactor PR)");

    // Smaller than the fig benches: the grid multiplies runtime.
    simdata::Dataset dataset = simdata::buildDataset(
        simdata::datasetConfig(1, u64{ 2 } << 20, 6000));
    genpair::SeedMap seedmap(*dataset.reference,
                             genpair::SeedMapParams{});
    const auto &pairs = dataset.pairs;

    // Small chunks are where per-chunk respawn hurts most (the spawn +
    // engine-construction cost is amortized over fewer pairs), so the
    // grid leans small; 256 anchors the amortized end where the two
    // drivers are expected to converge. The thread grid reaches 64 on
    // hosts that can genuinely run it; elsewhere it caps so the
    // recorded numbers never describe oversubscription artifacts.
    std::vector<u32> threadGrid;
    for (u32 t : { 1u, 2u, 4u, 8u, 16u, 32u, 64u })
        if (t <= maxThreads)
            threadGrid.push_back(t);
    const std::vector<u64> chunkGrid{ 4, 64, 256 };
    std::vector<GridPoint> grid;

    for (u32 threads : threadGrid) {
        genpair::DriverConfig config;
        config.threads = threads;
        auto sharedIndex =
            std::make_shared<const baseline::MinimizerIndex>(
                *dataset.reference, config.fallback.minimizers);
        // One pool per thread count, reused across every chunk size —
        // exactly how StreamingMapper drives it.
        genpair::ParallelMapper pooled(*dataset.reference, seedmap,
                                       config);
        // Warm caches and first-touch pages once per thread count so
        // neither side is charged for them.
        pooled.mapAll(pairs);
        for (u64 chunkPairs : chunkGrid) {
            GridPoint pt;
            pt.threads = threads;
            pt.chunkPairs = chunkPairs;
            pt.chunks = (pairs.size() + chunkPairs - 1) / chunkPairs;

            // Chunked streaming replay, legacy driver: per-chunk thread
            // spawn + engine construction, like the seed mapAll.
            std::vector<genomics::PairMapping> legacyOut(pairs.size());
            auto legacyRun = [&]() {
                double secs = 0;
                for (u64 begin = 0; begin < pairs.size();
                     begin += chunkPairs) {
                    const u64 end =
                        std::min<u64>(pairs.size(), begin + chunkPairs);
                    std::vector<genomics::ReadPair> chunk(
                        pairs.begin() +
                            static_cast<std::ptrdiff_t>(begin),
                        pairs.begin() + static_cast<std::ptrdiff_t>(end));
                    std::vector<genomics::PairMapping> mapped(
                        chunk.size());
                    secs += legacyMapChunk(*dataset.reference, seedmap,
                                           config, threads, sharedIndex,
                                           chunk, mapped);
                    std::copy(mapped.begin(), mapped.end(),
                              legacyOut.begin() +
                                  static_cast<std::ptrdiff_t>(begin));
                }
                return secs;
            };

            // Same chunk replay through the persistent pool.
            std::vector<genomics::PairMapping> pooledOut(pairs.size());
            auto pooledRun = [&]() {
                double secs = 0;
                for (u64 begin = 0; begin < pairs.size();
                     begin += chunkPairs) {
                    const u64 end =
                        std::min<u64>(pairs.size(), begin + chunkPairs);
                    std::vector<genomics::ReadPair> chunk(
                        pairs.begin() +
                            static_cast<std::ptrdiff_t>(begin),
                        pairs.begin() + static_cast<std::ptrdiff_t>(end));
                    auto res = pooled.mapAll(chunk);
                    secs += res.timing.seconds;
                    std::copy(res.mappings.begin(), res.mappings.end(),
                              pooledOut.begin() +
                                  static_cast<std::ptrdiff_t>(begin));
                }
                return secs;
            };

            // Interleaved best-of-N: the two sides see the same host
            // noise, and min-time is the standard low-variance pick.
            constexpr int kReps = 3;
            double legacySecs = legacyRun();
            double pooledSecs = pooledRun();
            for (int rep = 1; rep < kReps; ++rep) {
                legacySecs = std::min(legacySecs, legacyRun());
                pooledSecs = std::min(pooledSecs, pooledRun());
            }
            pt.legacyPairsPerSec =
                legacySecs > 0 ? pairs.size() / legacySecs : 0;
            pt.pooledPairsPerSec =
                pooledSecs > 0 ? pairs.size() / pooledSecs : 0;

            // The refactor must not change a single mapping.
            for (std::size_t i = 0; i < pairs.size(); ++i) {
                if (legacyOut[i].first.pos != pooledOut[i].first.pos ||
                    legacyOut[i].path != pooledOut[i].path) {
                    std::fprintf(stderr,
                                 "pooled/legacy mapping mismatch at "
                                 "pair %zu\n",
                                 i);
                    return 1;
                }
            }
            grid.push_back(pt);
        }
    }

    // -----------------------------------------------------------------
    // Ingest-included end-to-end: FASTQ text -> spine -> SAM text.
    // -----------------------------------------------------------------
    std::string fq1, fq2;
    {
        std::vector<genomics::Read> r1, r2;
        r1.reserve(pairs.size());
        r2.reserve(pairs.size());
        for (const auto &p : pairs) {
            r1.push_back(p.first);
            r2.push_back(p.second);
        }
        std::ostringstream o1, o2;
        genomics::writeFastq(o1, r1);
        genomics::writeFastq(o2, r2);
        fq1 = o1.str();
        fq2 = o2.str();
    }

    std::vector<IngestPoint> ingest;
    for (u32 threads : threadGrid) {
        genpair::DriverConfig config;
        config.threads = threads;

        // End-to-end wall seconds of one full streaming run; the SAM
        // bytes come back so the two spine shapes can be diffed.
        auto endToEnd = [&](u32 io_threads, std::string *samOut,
                            genpair::StreamingResult *resOut) {
            std::istringstream i1(fq1), i2(fq2);
            std::ostringstream samOs;
            genomics::SamWriter sam(samOs, *dataset.reference);
            sam.writeHeader();
            genpair::StreamingMapper mapper(*dataset.reference, seedmap,
                                            config, 256, io_threads);
            auto result = mapper.run(i1, i2, sam);
            if (samOut)
                *samOut = samOs.str();
            if (resOut)
                *resOut = result;
            return result.total.seconds;
        };

        IngestPoint pt;
        pt.threads = threads;
        pt.ioThreads = std::min(8u, std::max(2u, threads));

        std::string samSingle, samSpine;
        genpair::StreamingResult spineRes;
        constexpr int kReps = 3;
        double singleSecs = endToEnd(1, &samSingle, nullptr);
        double spineSecs = endToEnd(pt.ioThreads, &samSpine, &spineRes);
        if (samSingle != samSpine) {
            std::fprintf(stderr,
                         "spine/single-reader SAM mismatch at %u "
                         "threads\n",
                         threads);
            return 1;
        }
        for (int rep = 1; rep < kReps; ++rep) {
            singleSecs = std::min(singleSecs, endToEnd(1, nullptr,
                                                       nullptr));
            spineSecs = std::min(
                spineSecs, endToEnd(pt.ioThreads, nullptr, &spineRes));
        }
        pt.singleReaderPairsPerSec =
            singleSecs > 0 ? pairs.size() / singleSecs : 0;
        pt.spinePairsPerSec =
            spineSecs > 0 ? pairs.size() / spineSecs : 0;
        pt.readerStallSecs = spineRes.stats.readerStallSeconds;
        pt.writerStallSecs = spineRes.stats.writerStallSeconds;
        ingest.push_back(pt);
    }

    util::Table table({ "threads", "chunk", "chunks", "legacy pairs/s",
                        "pooled pairs/s", "speedup" });
    for (const auto &pt : grid) {
        table.row()
            .cell(static_cast<double>(pt.threads), 0)
            .cell(static_cast<double>(pt.chunkPairs), 0)
            .cell(static_cast<double>(pt.chunks), 0)
            .cell(pt.legacyPairsPerSec, 0)
            .cell(pt.pooledPairsPerSec, 0)
            .cell(pt.speedup(), 2);
    }
    table.print("driver scaling: threads x chunk size");

    util::Table ingestTable({ "threads", "io", "1-reader pairs/s",
                              "spine pairs/s", "speedup", "rd stall s",
                              "wr stall s" });
    for (const auto &pt : ingest) {
        ingestTable.row()
            .cell(static_cast<double>(pt.threads), 0)
            .cell(static_cast<double>(pt.ioThreads), 0)
            .cell(pt.singleReaderPairsPerSec, 0)
            .cell(pt.spinePairsPerSec, 0)
            .cell(pt.speedup(), 2)
            .cell(pt.readerStallSecs, 3)
            .cell(pt.writerStallSecs, 3);
    }
    ingestTable.print(
        "ingest-included end-to-end: multi-parser spine vs one reader");

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
            return 1;
        }
        auto num = [](double v, int prec) {
            std::ostringstream str;
            str << std::fixed << std::setprecision(prec) << v;
            return str.str();
        };
        out << "{\n  \"bench\": \"micro_driver_scaling\",\n"
            << "  \"format\": 2,\n"
            << "  \"gpx_version\": \"" << kVersion << "\",\n"
            << "  \"context\": " << simdContextJson() << ",\n"
            << "  \"pairs\": " << pairs.size() << ",\n"
            << "  \"host_threads\": " << hostThreads << ",\n"
            << "  \"max_threads\": " << maxThreads << ",\n"
            << "  \"grid\": [\n";
        for (std::size_t i = 0; i < grid.size(); ++i) {
            const auto &pt = grid[i];
            out << "    {\"threads\": " << pt.threads
                << ", \"chunk_pairs\": " << pt.chunkPairs
                << ", \"chunks\": " << pt.chunks
                << ", \"legacy_pairs_per_s\": "
                << num(pt.legacyPairsPerSec, 0)
                << ", \"pooled_pairs_per_s\": "
                << num(pt.pooledPairsPerSec, 0)
                << ", \"pooled_vs_legacy\": " << num(pt.speedup(), 2)
                << "}" << (i + 1 < grid.size() ? "," : "") << "\n";
        }
        out << "  ],\n  \"ingest\": [\n";
        for (std::size_t i = 0; i < ingest.size(); ++i) {
            const auto &pt = ingest[i];
            out << "    {\"threads\": " << pt.threads
                << ", \"io_threads\": " << pt.ioThreads
                << ", \"single_reader_pairs_per_s\": "
                << num(pt.singleReaderPairsPerSec, 0)
                << ", \"spine_pairs_per_s\": "
                << num(pt.spinePairsPerSec, 0)
                << ", \"spine_vs_single_reader\": "
                << num(pt.speedup(), 2)
                << ", \"reader_stall_s\": " << num(pt.readerStallSecs, 3)
                << ", \"writer_stall_s\": " << num(pt.writerStallSecs, 3)
                << "}" << (i + 1 < ingest.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        out.flush();
        if (!out) {
            std::fprintf(stderr, "write to %s failed\n",
                         jsonPath.c_str());
            return 1;
        }
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return 0;
}
