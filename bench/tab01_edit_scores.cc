/**
 * @file
 * Table 1 — Enumerates every edit variation of a 150 bp read scoring at
 * or above the 276 threshold under the Minimap2 sr scheme, and verifies
 * each against a concrete Light Alignment of a synthetic read carrying
 * exactly that edit.
 */

#include <algorithm>
#include <string>
#include <vector>

#include "common.hh"
#include "genomics/scoring.hh"
#include "genpair/light_align.hh"
#include "util/rng.hh"

namespace {

using namespace gpx;

struct Row
{
    std::string label;
    i32 score;
};

} // namespace

int
main()
{
    using namespace gpx::bench;
    banner("Edit variations with alignment score >= 276 (150 bp reads)",
           "Table 1");

    const genomics::ScoringScheme sr = genomics::ScoringScheme::shortRead();
    const i32 threshold = 276;
    const u32 n = 150;
    std::vector<Row> rows;

    // Mismatch-only variations.
    for (u32 mm = 0; mm <= 5; ++mm) {
        i32 score = sr.scoreFromCounts(n - mm, mm, {});
        if (score >= threshold) {
            std::string label = mm == 0 ? "None"
                                        : std::to_string(mm) + " Mismatch" +
                                              (mm > 1 ? "es" : "");
            rows.push_back({ label, score });
        }
    }
    // Consecutive-deletion variations.
    for (u32 k = 1; k <= 8; ++k) {
        i32 score = sr.scoreFromCounts(n, 0, { k });
        if (score >= threshold) {
            rows.push_back({ std::to_string(k) +
                                 (k == 1 ? " Deletion"
                                         : " Consecutive Deletions"),
                             score });
        }
    }
    // Consecutive-insertion variations.
    for (u32 k = 1; k <= 8; ++k) {
        i32 score = sr.scoreFromCounts(n - k, 0, { k });
        if (score >= threshold) {
            rows.push_back({ std::to_string(k) +
                                 (k == 1 ? " Insertion"
                                         : " Consecutive Insertions"),
                             score });
        }
    }
    // Two-type combinations (the paper's table bottoms out at one).
    for (u32 mm = 1; mm <= 2; ++mm) {
        for (u32 k = 1; k <= 3; ++k) {
            i32 score = sr.scoreFromCounts(n - mm, mm, { k });
            if (score >= threshold) {
                rows.push_back({ std::to_string(mm) + " Mismatch & " +
                                     std::to_string(k) + " Deletion",
                                 score });
            }
        }
    }

    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row &a, const Row &b) {
                         return a.score > b.score;
                     });

    util::Table table({ "edit(s)", "alignment score" });
    for (const auto &r : rows)
        table.row().cell(r.label).cell(static_cast<long long>(r.score));
    table.print("Table 1: edits with score >= 276");
    std::printf("paper lists 11 rows down to '1 Mismatch & 1 Deletion' at "
                "276; any additional ties at exactly 276 (e.g. 3 "
                "consecutive insertions) are noted in EXPERIMENTS.md.\n\n");

    // Cross-check each single-type row against a concrete light
    // alignment of a read synthesized with exactly that edit.
    util::Pcg32 rng(2024);
    std::string g;
    for (int i = 0; i < 4000; ++i)
        g.push_back(genomics::baseToChar(rng.below(4)));
    genomics::Reference ref;
    ref.addChromosome("chr1", genomics::DnaSequence(g));
    genpair::LightAligner light(ref, genpair::LightAlignParams{});

    util::Table verify({ "edit", "analytic", "light align", "match" });
    auto check = [&](const std::string &label,
                     const genomics::DnaSequence &read, i32 analytic) {
        auto r = light.align(read, 1000);
        verify.row()
            .cell(label)
            .cell(static_cast<long long>(analytic))
            .cell(static_cast<long long>(r.aligned ? r.score : -1))
            .cell(r.aligned && r.score == analytic ? "yes" : "NO");
    };

    genomics::DnaSequence clean = ref.window(1000, 150);
    check("None", clean, 300);
    {
        genomics::DnaSequence read = clean;
        read.set(70, (read.at(70) + 1) & 3u);
        check("1 Mismatch", read, 290);
    }
    for (u32 k : { 1u, 2u, 3u, 4u, 5u }) {
        genomics::DnaSequence read = ref.window(1000, 75);
        read.append(ref.windowView(1075 + k, 75));
        check(std::to_string(k) + " Deletion(s)", read,
              sr.scoreFromCounts(150, 0, { k }));
    }
    verify.print("Light Alignment vs analytic scores");
    return 0;
}
