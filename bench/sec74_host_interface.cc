/**
 * @file
 * §7.4 "Host integration" — the PCIe bandwidth budget of the saturated
 * design: 14.5 GB/s of 2-bit read pairs in, 5.4 GB/s of locations +
 * CIGARs out at 192.7 MPair/s, sustained by PCIe Gen3/Gen4 x16. Also
 * answers the inverse question: at what pair rate would each link
 * generation become the binding constraint instead of the HBM.
 */

#include "common.hh"
#include "hwsim/host_interface.hh"

int
main()
{
    using namespace gpx;
    using namespace gpx::bench;

    banner("Host-interface bandwidth budget",
           "SS7.4 host integration (paper: 14.5 GB/s in, 5.4 GB/s out "
           "at 192.7 MPair/s; Gen3/Gen4 x16 both sufficient)");

    const double paperMpairs = 192.7;
    hwsim::HostTrafficConfig cfg;
    auto demand = hwsim::hostDemand(paperMpairs, cfg);

    std::printf("design point %.1f MPair/s, %u bp reads, 2-bit encoding:\n"
                "  input  %.1f GB/s   (paper: 14.5 GB/s)\n"
                "  output %.1f GB/s   (paper: 5.4 GB/s)\n\n",
                paperMpairs, cfg.readLen, demand.inputGBs,
                demand.outputGBs);

    util::Table table({ "link", "GB/s per direction", "sustains design",
                        "link-bound cap (MPair/s)" });
    for (const auto &link : hwsim::pcieGenerations()) {
        table.row()
            .cell(link.name)
            .cell(link.gbPerSecPerDirection, 2)
            .cell(std::string(link.sustains(demand) ? "yes" : "NO"))
            .cell(hwsim::maxMpairsOn(link, cfg), 1);
    }
    table.print("PCIe generations vs the saturated design");

    // Read-length sensitivity: longer reads raise input demand linearly
    // while output stays per-pair, shifting where the link binds.
    util::Table lens({ "read len", "input GB/s", "output GB/s",
                       "Gen3 x16 ok" });
    for (u32 len : { 100u, 150u, 250u, 300u }) {
        hwsim::HostTrafficConfig c;
        c.readLen = len;
        auto d = hwsim::hostDemand(paperMpairs, c);
        lens.row()
            .cell(static_cast<u64>(len))
            .cell(d.inputGBs, 1)
            .cell(d.outputGBs, 1)
            .cell(std::string(
                hwsim::pcieGenerations()[0].sustains(d) ? "yes" : "NO"));
    }
    lens.print("Read-length sensitivity at the same pair rate");
    return 0;
}
