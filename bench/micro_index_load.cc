/**
 * @file
 * micro_index_load — index-serving startup cost: legacy v1 stream-load
 * vs v2 mmap-open on the fig11-scale reference.
 *
 * The paper's offline stage amortizes SeedMap construction across read
 * sets (§4.2); what it cannot amortize is what every gpx_map start pays
 * to *open* the image. v1 re-deserializes both tables through a full
 * stream copy — time and private RSS proportional to the index. The v2
 * image is validated in place and served from file-backed pages, so
 * open time is directory validation (plus an optional checksum sweep)
 * and the resident cost is demand-paged and kernel-shared across the
 * worker pool.
 *
 * Open latencies are min/median of repeated in-process runs. Memory is
 * measured in a forked child per variant (VmRSS delta across the open,
 * then again after a full table sweep that faults every page), so
 * allocator reuse in this process cannot mask the copy cost.
 *
 * `--json PATH` records the result machine-readably (see
 * BENCH_index_load.json at the repo root).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common.hh"
#include "genpair/seedmap_io.hh"
#include "simdata/genome_generator.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "util/version.hh"

namespace {

using namespace gpx;

/** Current resident set size in KiB (VmRSS), 0 where unsupported. */
u64
currentRssKb()
{
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmRSS:", 0) == 0) {
            u64 kb = 0;
            std::sscanf(line.c_str(), "VmRSS: %llu",
                        reinterpret_cast<unsigned long long *>(&kb));
            return kb;
        }
    }
    return 0;
}

/** Touch every location byte so demand-paged mappings fault in. */
u64
sweepView(const genpair::SeedMapView &view)
{
    u64 sum = 0;
    const u32 mask = (1u << view.tableBits()) - 1;
    for (u32 h = 0; h <= mask; h += 1) {
        auto span = view.lookup(h);
        for (u32 loc : span)
            sum += loc;
    }
    return sum;
}

/** One opened index, whatever the backend, plus its query view. */
struct OpenedIndex
{
    std::unique_ptr<genpair::SeedMap> owned;
    std::optional<genpair::SeedMapImage> image;
    genpair::SeedMapView view;
};

struct Variant
{
    std::string name;
    std::string key; ///< JSON field prefix
    std::function<OpenedIndex()> open;
};

struct Measured
{
    double minSeconds = 0;
    double medianSeconds = 0;
    u64 rssOpenKb = 0;  ///< VmRSS delta across open
    u64 rssSweepKb = 0; ///< VmRSS delta after faulting every page
};

#if !defined(_WIN32)
/** Run @p fn once in a forked child and report its RSS deltas. */
void
measureRssForked(const Variant &v, Measured &out)
{
    int fds[2];
    if (pipe(fds) != 0)
        return;
    pid_t pid = fork();
    if (pid == 0) {
        close(fds[0]);
        u64 before = currentRssKb();
        OpenedIndex idx = v.open();
        u64 afterOpen = currentRssKb();
        volatile u64 sink = sweepView(idx.view);
        (void)sink;
        u64 afterSweep = currentRssKb();
        u64 deltas[2] = { afterOpen - before, afterSweep - before };
        ssize_t w = write(fds[1], deltas, sizeof(deltas));
        (void)w;
        close(fds[1]);
        _exit(0);
    }
    close(fds[1]);
    u64 deltas[2] = { 0, 0 };
    ssize_t r = read(fds[0], deltas, sizeof(deltas));
    close(fds[0]);
    waitpid(pid, nullptr, 0);
    if (r == sizeof(deltas)) {
        out.rssOpenKb = deltas[0];
        out.rssSweepKb = deltas[1];
    }
}
#else
void
measureRssForked(const Variant &, Measured &)
{
}
#endif

Measured
measure(const Variant &v, int reps)
{
    Measured out;
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
        util::Stopwatch watch;
        OpenedIndex idx = v.open();
        // A token lookup keeps the open from being optimized away and
        // matches what a real start does immediately after opening.
        volatile u64 sink = idx.view.lookup(1).size();
        (void)sink;
        times.push_back(watch.seconds());
    }
    std::sort(times.begin(), times.end());
    out.minSeconds = times.front();
    out.medianSeconds = times[times.size() / 2];
    measureRssForked(v, out);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpx;
    using namespace gpx::bench;

    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--json needs a path\n");
                return 2;
            }
            jsonPath = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 2;
        }
    }

    banner("Index image open: v1 stream-load vs v2 mmap",
           "ROADMAP zero-copy serving (SeedMap image format v2)");

    // The fig11 reference: same genome profile the end-to-end bench maps.
    simdata::GenomeParams gp;
    gp.length = kBenchGenomeLen;
    gp.chromosomes = 2;
    gp.seed = 7;
    genomics::Reference ref = simdata::generateGenome(gp);
    genpair::SeedMapParams sp;
    genpair::SeedMap map(ref, sp);
    std::printf("reference %llu bp, seed table %.1f MiB, "
                "location table %.1f MiB\n",
                static_cast<unsigned long long>(ref.totalLength()),
                map.seedTableBytes() / 1048576.0,
                map.locationTableBytes() / 1048576.0);

    // Persist both generations next to each other.
    const std::string v1Path = "/tmp/gpx_index_load_v1.gpx";
    const std::string v2Path = "/tmp/gpx_index_load_v2.gpx";
    {
        std::ofstream v1(v1Path, std::ios::binary | std::ios::trunc);
        genpair::saveSeedMap(v1, map);
        std::ofstream v2(v2Path, std::ios::binary | std::ios::trunc);
        genpair::saveSeedMapV2(v2, map, 8);
        if (!v1.good() || !v2.good()) {
            std::fprintf(stderr, "cannot write bench images to /tmp\n");
            return 1;
        }
    }
    auto fileBytes = [](const std::string &path) {
        std::ifstream f(path, std::ios::binary | std::ios::ate);
        return static_cast<u64>(f.tellg());
    };
    const u64 v1Bytes = fileBytes(v1Path);
    const u64 v2Bytes = fileBytes(v2Path);

    std::vector<Variant> variants;
    variants.push_back({ "v1 stream-load (copy)", "v1_stream_load",
                         [&]() {
                             OpenedIndex idx;
                             std::ifstream is(v1Path, std::ios::binary);
                             auto loaded = genpair::loadSeedMap(is);
                             idx.owned = std::make_unique<genpair::SeedMap>(
                                 std::move(*loaded));
                             idx.view = *idx.owned;
                             return idx;
                         } });
    variants.push_back({ "v2 mmap open (verify)", "v2_mmap_verify",
                         [&]() {
                             OpenedIndex idx;
                             idx.image = *genpair::SeedMapImage::open(
                                 v2Path, {});
                             idx.view = idx.image->view();
                             return idx;
                         } });
    variants.push_back({ "v2 mmap open (no verify)", "v2_mmap_noverify",
                         [&]() {
                             OpenedIndex idx;
                             genpair::SeedMapOpenOptions opts;
                             opts.verifyPayload = false;
                             idx.image = *genpair::SeedMapImage::open(
                                 v2Path, opts);
                             idx.view = idx.image->view();
                             return idx;
                         } });

    constexpr int kReps = 7;
    std::vector<Measured> results;
    results.reserve(variants.size());
    util::Table table({ "variant", "open min (ms)", "open median (ms)",
                        "RSS after open (MiB)", "RSS after sweep (MiB)" });
    for (const auto &v : variants) {
        Measured m = measure(v, kReps);
        results.push_back(m);
        table.row()
            .cell(v.name)
            .cell(m.minSeconds * 1e3, 3)
            .cell(m.medianSeconds * 1e3, 3)
            .cell(m.rssOpenKb / 1024.0, 1)
            .cell(m.rssSweepKb / 1024.0, 1);
    }
    std::printf("%s", table.toString("index image open cost").c_str());

    const double speedupVerify =
        results[1].minSeconds > 0
            ? results[0].minSeconds / results[1].minSeconds
            : 0.0;
    const double speedupNoVerify =
        results[2].minSeconds > 0
            ? results[0].minSeconds / results[2].minSeconds
            : 0.0;
    std::printf("\nv2 open speedup vs v1 stream-load: %.2fx verified, "
                "%.2fx unverified\n",
                speedupVerify, speedupNoVerify);
    std::printf("image bytes: v1 %llu, v2 %llu (+%.1f%% for alignment "
                "+ directory)\n",
                static_cast<unsigned long long>(v1Bytes),
                static_cast<unsigned long long>(v2Bytes),
                v1Bytes ? 100.0 * (static_cast<double>(v2Bytes) -
                                   static_cast<double>(v1Bytes)) /
                              static_cast<double>(v1Bytes)
                        : 0.0);

    if (!jsonPath.empty()) {
        std::ostringstream js;
        js << "{\n"
           << "  \"bench\": \"micro_index_load\",\n"
           << "  \"gpx_version\": \"" << gpx::kVersion << "\",\n"
           << "  \"context\": " << gpx::bench::simdContextJson() << ",\n"
           << "  \"reference_bp\": " << ref.totalLength() << ",\n"
           << "  \"image_bytes_v1\": " << v1Bytes << ",\n"
           << "  \"image_bytes_v2\": " << v2Bytes << ",\n"
           << "  \"shards_v2\": 8,\n"
           << "  \"variants\": [\n";
        for (std::size_t i = 0; i < variants.size(); ++i) {
            const auto &m = results[i];
            js << "    {\"name\": \"" << variants[i].key << "\", "
               << "\"open_min_s\": " << m.minSeconds << ", "
               << "\"open_median_s\": " << m.medianSeconds << ", "
               << "\"rss_open_kb\": " << m.rssOpenKb << ", "
               << "\"rss_sweep_kb\": " << m.rssSweepKb << "}"
               << (i + 1 < variants.size() ? "," : "") << "\n";
        }
        js << "  ],\n"
           << "  \"v2_open_speedup_verified\": " << speedupVerify
           << ",\n"
           << "  \"v2_open_speedup_unverified\": " << speedupNoVerify
           << "\n}\n";
        std::ofstream out(jsonPath);
        out << js.str();
        std::printf("wrote %s\n", jsonPath.c_str());
    }

    std::remove(v1Path.c_str());
    std::remove(v2Path.c_str());
    return 0;
}
