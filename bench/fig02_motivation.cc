/**
 * @file
 * §3 motivation study — regenerates Observations 1-3 and the Fig. 2
 * alignment-score CDF on the three datasets:
 *  - exact-match rate, single-end vs paired-end (§3.2: 55.7% -> 36.8%)
 *  - >=1 exact 50 bp segment in both reads (Obs. 1: 86.2/85.8/84.9%)
 *  - average SeedMap locations per seed (Obs. 2: 9.6/9.5/9.3)
 *  - pairs with single-type edits only (Obs. 3: 69.9%)
 *  - CDF of the minimum alignment score in a pair (Fig. 2)
 */

#include <algorithm>

#include "align/affine.hh"
#include "common.hh"
#include "genpair/light_align.hh"
#include "genpair/seeder.hh"
#include "util/stats.hh"

namespace {

using namespace gpx;

/** True if the 50-mer occurs verbatim at one of its SeedMap hits. */
bool
segmentExact(const genpair::SeedMap &map, const genomics::Reference &ref,
             const genomics::DnaSequence &seg)
{
    u32 h = map.hashSeed(seg);
    auto span = map.lookup(h);
    u32 checked = 0;
    for (u32 loc : span) {
        if (checked++ > 16)
            break;
        if (ref.windowValid(loc, seg.size()) &&
            ref.window(loc, seg.size()) == seg) {
            return true;
        }
    }
    return false;
}

bool
readHasExactSegment(const genpair::SeedMap &map,
                    const genomics::Reference &ref,
                    const genomics::DnaSequence &read)
{
    const u32 s = map.params().seedLen;
    u64 last = read.size() - s;
    for (u64 off : { u64{0}, last / 2, last }) {
        if (segmentExact(map, ref, read.sub(off, s)))
            return true;
    }
    return false;
}

/** Full-read exact occurrence check via the seed index. */
bool
readExact(const genpair::SeedMap &map, const genomics::Reference &ref,
          const genomics::DnaSequence &read)
{
    u32 h = map.hashSeed(read.sub(0, map.params().seedLen));
    u32 checked = 0;
    for (u32 loc : map.lookup(h)) {
        if (checked++ > 16)
            break;
        if (ref.windowValid(loc, read.size()) &&
            ref.window(loc, read.size()) == read) {
            return true;
        }
    }
    return false;
}

} // namespace

int
main()
{
    using namespace gpx;
    using namespace gpx::bench;

    banner("Paired-end motivation study", "§3.2-§3.4 Obs. 1-3 + Fig. 2");

    util::Table obs({ "dataset", "exact single %", "exact pair %",
                      "clean 50bp seg both %", "locs/seed",
                      "single-type edits %" });

    std::vector<std::vector<double>> cdfs;
    const std::vector<i32> scorePoints = { 200, 220, 240, 260, 270, 276,
                                           280, 286, 290, 300 };

    for (u32 d = 1; d <= 3; ++d) {
        MappingStack s = buildStack(d, kBenchGenomeLen, 4000);
        const auto &ref = *s.dataset.reference;
        genpair::LightAlignParams lightParams;
        genpair::LightAligner light(ref, lightParams);
        const genomics::ScoringScheme sr =
            genomics::ScoringScheme::shortRead();

        u64 exactReads = 0, reads = 0, exactPairs = 0, segBoth = 0;
        u64 singleType = 0;
        util::Histogram scoreHist(150, 301, 151);

        for (const auto &pair : s.dataset.pairs) {
            genomics::DnaSequence q1 = pair.first.seq;
            genomics::DnaSequence q2 = pair.second.seq.revComp();
            bool e1 = readExact(*s.seedmap, ref, q1);
            bool e2 = readExact(*s.seedmap, ref, q2);
            exactReads += e1;
            exactReads += e2;
            reads += 2;
            exactPairs += e1 && e2;
            segBoth += readHasExactSegment(*s.seedmap, ref, q1) &&
                       readHasExactSegment(*s.seedmap, ref, q2);

            // Single-type-edit classification + min pair score at truth.
            auto la1 = light.align(q1, pair.first.truthPos);
            auto la2 = light.align(q2, pair.second.truthPos);
            singleType += la1.aligned && la2.aligned;

            auto scoreAt = [&](const genomics::DnaSequence &q,
                               GlobalPos truth) -> i32 {
                if (truth < 20 || !ref.windowValid(truth - 20, 190))
                    return 150;
                auto w = ref.window(truth - 20, 190);
                auto r = align::fitAlign(q, w, sr);
                return r.valid ? r.score : 150;
            };
            i32 minScore = std::min(scoreAt(q1, pair.first.truthPos),
                                    scoreAt(q2, pair.second.truthPos));
            scoreHist.add(minScore);
        }

        double n = static_cast<double>(s.dataset.pairs.size());
        obs.row()
            .cell(s.dataset.name)
            .cell(100.0 * exactReads / reads, 1)
            .cell(100.0 * exactPairs / n, 1)
            .cell(100.0 * segBoth / n, 1)
            .cell(s.seedmap->stats().queryWeightedLocations, 2)
            .cell(100.0 * singleType / n, 1);

        auto cdf = scoreHist.cdf();
        std::vector<double> row;
        for (i32 p : scorePoints)
            row.push_back(cdf[static_cast<std::size_t>(p - 150)]);
        cdfs.push_back(row);
    }

    obs.print("Obs. 1-3 (paper: single 55.7%, pair 36.8%, both-seg "
              "~86%, 9.3-9.6 locs/seed, 69.9% single-type)");

    util::Table cdfTable({ "score s", "D1 P(min<=s)", "D2 P(min<=s)",
                           "D3 P(min<=s)" });
    for (std::size_t i = 0; i < scorePoints.size(); ++i) {
        cdfTable.row()
            .cell(static_cast<long long>(scorePoints[i]))
            .cell(cdfs[0][i], 3)
            .cell(cdfs[1][i], 3)
            .cell(cdfs[2][i], 3);
    }
    cdfTable.print("Fig. 2: CDF of the minimum alignment score in a pair");
    return 0;
}
