/**
 * @file
 * Ablation — Location Voting threshold for the long-read path (paper
 * §4.7 adopts the voting algorithm of [85] "to further reduce false
 * positives" without sizing it).
 *
 * Sweeps the minimum-votes acceptance threshold and reports mapping
 * rate, positional accuracy against the simulator's truth, and the DP
 * work per read. Low thresholds admit spurious vote clusters (wasted
 * DP, wrong placements); high thresholds starve noisy reads whose
 * clean pseudo-pairs are scarce. The default (3) sits where accuracy
 * has saturated but the mapping rate has not yet collapsed.
 */

#include "common.hh"
#include "genpair/longread.hh"
#include "simdata/read_simulator.hh"

int
main()
{
    using namespace gpx;
    using namespace gpx::bench;

    banner("Ablation: long-read Location-Voting threshold",
           "paper SS4.7 (voting adopted from [85], threshold unsized)");

    simdata::GenomeParams gp;
    gp.length = kBenchGenomeLen;
    gp.chromosomes = 2;
    gp.seed = 7;
    genomics::Reference ref = simdata::generateGenome(gp);
    simdata::DiploidGenome diploid(ref, simdata::VariantParams{});
    genpair::SeedMap map(ref, genpair::SeedMapParams{});
    baseline::Mm2Lite mm2(ref, baseline::Mm2LiteParams{});

    simdata::LongReadSimParams lp; // HiFi-like, mean 9569 bp
    lp.seed = 77;
    simdata::LongReadSimulator sim(diploid, lp);
    auto reads = sim.simulate(250);

    util::Table table({ "min votes", "mapped %", "correct (<=1kb) %",
                        "DP Mcells/read", "votes/read" });
    for (u32 minVotes : { 1u, 2u, 3u, 5u, 8u, 16u }) {
        genpair::LongReadParams params;
        params.minVotes = minVotes;
        genpair::LongReadMapper mapper(ref, map, params, &mm2);

        u64 mapped = 0, correct = 0;
        for (const auto &r : reads) {
            auto m = mapper.mapRead(r);
            if (!m.mapped)
                continue;
            ++mapped;
            if (r.truthPos != kInvalidPos) {
                const u64 diff = m.pos > r.truthPos
                                     ? m.pos - r.truthPos
                                     : r.truthPos - m.pos;
                if (diff <= 1000 && m.reverse == r.truthReverse)
                    ++correct;
            }
        }
        const auto &st = mapper.stats();
        table.row()
            .cell(static_cast<u64>(minVotes))
            .cell(100.0 * mapped / reads.size(), 1)
            .cell(mapped ? 100.0 * correct / mapped : 0.0, 1)
            .cell(st.readsTotal ? static_cast<double>(st.dpCells) /
                                      st.readsTotal / 1e6
                                : 0.0,
                  2)
            .cell(st.readsTotal ? static_cast<double>(st.votes) /
                                      st.readsTotal
                                : 0.0,
                  1);
    }
    table.print("Location-Voting threshold sweep (250 HiFi-like reads, "
                "mean 9.6 kbp)");
    std::printf("reading: at HiFi error rates every voted placement is "
                "already correct, so the threshold's real job is cost "
                "control — DP work per read falls ~22%% from minVotes=1 "
                "to 3 as spurious vote clusters are pruned, while the "
                "mapping rate only starts eroding past 5. The default "
                "of 3 takes most of the pruning at no mapping-rate "
                "cost.\n");
    return 0;
}
