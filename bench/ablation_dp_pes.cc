/**
 * @file
 * Ablation — GenDP provisioning versus sequencing accuracy (the design
 * direction in the final paragraph of paper §7.7: "For future
 * sequencing technologies, it may be advantageous to reduce the number
 * of costly DP PEs, since higher read accuracy decreases the need for
 * DP fallback").
 *
 * Part 1 sizes a full GenPairX+GenDP design per error rate and shows
 * how much of the chip the DP engines stop needing as reads get
 * cleaner. Part 2 takes the lean design provisioned for clean reads
 * and runs it under dirtier workloads, quantifying the throughput risk
 * of under-provisioning — the trade-off a designer actually faces.
 */

#include "common.hh"
#include "hwsim/nmsl.hh"
#include "hwsim/pipeline_model.hh"

namespace {

using namespace gpx;

/**
 * Graft GenDP engines sized at @p factor of @p donor's MCUPS onto
 * @p base's front end (the PE-count dial of the SS7.7 trade-off).
 */
hwsim::PipelineDesign
withGenDpFrom(const hwsim::PipelineDesign &base,
              const hwsim::PipelineDesign &donor, double factor)
{
    hwsim::PipelineDesign d = base;
    d.chainMcups = donor.chainMcups * factor;
    d.alignMcups = donor.alignMcups * factor;
    d.genDpCost = hwsim::GenDpModel::chainCost(d.chainMcups) +
                  hwsim::GenDpModel::alignCost(d.alignMcups);
    d.totalCost = d.genPairXCost + d.genDpCost;
    return d;
}

} // namespace

int
main()
{
    using namespace gpx::bench;

    banner("Ablation: GenDP DP-PE provisioning vs sequencing accuracy",
           "paper SS7.7 closing design direction");

    simdata::GenomeParams gp;
    gp.length = kBenchGenomeLen;
    gp.chromosomes = 2;
    gp.seed = 7;
    genomics::Reference ref = simdata::generateGenome(gp);
    simdata::DiploidGenome diploid(ref, simdata::VariantParams{});
    genpair::SeedMap map(ref, genpair::SeedMapParams{});
    baseline::Mm2Lite mm2(ref, baseline::Mm2LiteParams{});

    hwsim::NmslConfig ncfg;
    ncfg.windowSize = 1024;
    hwsim::PipelineModel pm(2.0);

    // Measure one workload profile per error rate.
    struct RatePoint
    {
        double ratePct;
        hwsim::WorkloadProfile profile;
        hwsim::PipelineDesign design;
    };
    std::vector<RatePoint> points;
    hwsim::NmslResult nmsl;
    bool nmslDone = false;
    for (double ratePct : { 0.01, 0.05, 0.1, 0.3, 1.0 }) {
        simdata::ReadSimParams rp;
        rp.errors = simdata::ErrorProfile::uniform(ratePct / 100.0);
        rp.seed = 900 + static_cast<u64>(ratePct * 1000);
        simdata::ReadSimulator sim(diploid, rp);
        auto pairs = sim.simulate(4000);
        if (!nmslDone) {
            auto workload = hwsim::buildWorkload(map, pairs);
            nmsl = hwsim::NmslSim(ncfg).run(workload);
            nmslDone = true;
        }
        genpair::GenPairPipeline pipe(ref, map, genpair::GenPairParams{},
                                      &mm2);
        u64 cb = mm2.dpWork().chainCells, ab = mm2.dpWork().alignCells;
        for (const auto &p : pairs)
            pipe.mapPair(p);
        const auto &st = pipe.stats();
        u64 full = st.seedMissFallback + st.paFilterFallback;
        u64 dps = full + st.lightAlignFallback;
        auto w = hwsim::WorkloadProfile::fromStats(
            st, 150,
            full ? double(mm2.dpWork().chainCells - cb) / full : 15000.0,
            dps ? double(mm2.dpWork().alignCells - ab) / dps : 75000.0,
            map.stats().avgLocationsPerSeed);
        points.push_back({ ratePct, w, pm.design(nmsl, ncfg, w) });
    }

    // Part 1: per-rate right-sized designs.
    util::Table sized({ "err %/bp", "DP fallback %", "GenDP MCUPS",
                        "GenDP area mm2", "GenDP power W", "total area mm2",
                        "total power W", "MPair/s" });
    for (const auto &pt : points) {
        sized.row()
            .cell(pt.ratePct, 2)
            .cell(100 * pt.profile.dpAlignFrac(), 2)
            .cell(pt.design.chainMcups + pt.design.alignMcups, 0)
            .cell(pt.design.genDpCost.areaMm2, 1)
            .cell(pt.design.genDpCost.powerMw / 1000.0, 1)
            .cell(pt.design.totalCost.areaMm2, 1)
            .cell(pt.design.totalCost.powerMw / 1000.0, 1)
            .cell(pt.design.endToEndMpairs, 1);
    }
    sized.print("Right-sized design per error rate (cleaner reads -> "
                "smaller GenDP)");
    const auto &clean = points.front().design;
    const auto &dirty = points.back().design;
    std::printf("GenDP area %0.1f mm2 when sized for %.2f%%/bp vs "
                "%0.1f mm2 for %.2f%%/bp: %.0fx area saved by "
                "right-sizing for clean reads\n\n",
                clean.genDpCost.areaMm2, points.front().ratePct,
                dirty.genDpCost.areaMm2, points.back().ratePct,
                dirty.genDpCost.areaMm2 /
                    std::max(1e-9, clean.genDpCost.areaMm2));

    // Part 2: keep the lean front end and dial the GenDP engines from a
    // sliver of the dirty-workload sizing up to all of it; evaluate each
    // variant under every workload. This is the dial a designer turns
    // when deciding how much error-rate headroom to pay for.
    util::Table risk({ "GenDP scale", "area mm2", "power W",
                       "MPair/s @0.01%", "MPair/s @0.1%", "MPair/s @0.3%",
                       "MPair/s @1%" });
    for (double factor : { 0.02, 0.1, 0.33, 1.0 }) {
        auto d = withGenDpFrom(clean, dirty, factor);
        auto at = [&](double ratePct) {
            for (const auto &pt : points)
                if (pt.ratePct == ratePct)
                    return pm.throughputUnder(d, pt.profile);
            return 0.0;
        };
        risk.row()
            .cell(factor, 2)
            .cell(d.totalCost.areaMm2, 1)
            .cell(d.totalCost.powerMw / 1000.0, 1)
            .cell(at(0.01), 1)
            .cell(at(0.1), 1)
            .cell(at(0.3), 1)
            .cell(at(1.0), 1);
    }
    risk.print("Lean front end + a fraction of the 1%/bp GenDP sizing: "
               "throughput under each workload");
    std::printf("reading: the lean design keeps full throughput on clean "
                "data at a fraction of the area/power but collapses as "
                "the error rate rises; each step of GenDP headroom buys "
                "back tolerance. This quantifies the trade-off the "
                "paper's SS7.7 design direction accepts.\n");
    return 0;
}
