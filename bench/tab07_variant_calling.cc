/**
 * @file
 * Table 7 — Variant-calling accuracy benchmark: MM2 alone versus
 * GenPair+MM2 with and without the index filter, on a diploid synthetic
 * donor at ~30x coverage, scored against the planted truth set (the
 * freebayes + vcfdist pipeline roles).
 */

#include <functional>

#include "common.hh"
#include "eval/pileup.hh"
#include "eval/variant_bench.hh"

namespace {

using namespace gpx;
using genomics::PairMapping;
using genomics::ReadPair;

/** Map every pair with @p mapFn, pile up, call, and benchmark. */
void
runConfig(const std::string &name, const genomics::Reference &ref,
          const std::vector<ReadPair> &pairs,
          const std::vector<simdata::Variant> &truth,
          const std::function<PairMapping(const ReadPair &)> &mapFn,
          util::Table &table)
{
    eval::PileupCaller caller(ref, eval::CallerParams{});
    for (const auto &pair : pairs) {
        PairMapping pm = mapFn(pair);
        if (pm.first.mapped) {
            caller.addAlignment(pm.first.reverse
                                    ? pair.first.seq.revComp()
                                    : pair.first.seq,
                                pm.first);
        }
        if (pm.second.mapped) {
            caller.addAlignment(pm.second.reverse
                                    ? pair.second.seq.revComp()
                                    : pair.second.seq,
                                pm.second);
        }
    }
    auto calls = caller.call();

    for (auto cls : { eval::VariantClass::Snp, eval::VariantClass::Indel }) {
        auto r = eval::benchmarkVariants(truth, calls, cls);
        table.row()
            .cell(name + (cls == eval::VariantClass::Snp ? " [SNP]"
                                                         : " [INDEL]"))
            .cell(static_cast<long long>(r.tp))
            .cell(static_cast<long long>(r.fp))
            .cell(r.precision(), 4)
            .cell(r.recall(), 4)
            .cell(r.f1(), 4);
    }
}

} // namespace

int
main()
{
    using namespace gpx;
    using namespace gpx::bench;

    banner("Variant-calling accuracy: MM2 vs GenPair+MM2 (+/- filter)",
           "Table 7 (paper: F1 deltas <= 0.0026; GenPair precision >= "
           "MM2; filter impact <= 0.0001)");

    // ~25x coverage over a 1 Mbp diploid donor (a scaled-down stand-in
    // for the paper's 100x GRCh38 run; see DESIGN.md).
    const u64 genomeLen = 1000000;
    const u64 numPairs = genomeLen * 25 / (2 * 150);
    simdata::DatasetConfig cfg = simdata::datasetConfig(1, genomeLen,
                                                        numPairs);
    simdata::Dataset ds = simdata::buildDataset(cfg);
    const auto &ref = *ds.reference;
    const auto &truth = ds.diploid->truthVariants();

    baseline::Mm2Lite mm2(ref, baseline::Mm2LiteParams{});

    genpair::SeedMapParams withFilter;
    withFilter.filterThreshold = 500;
    genpair::SeedMap mapFiltered(ref, withFilter);
    genpair::SeedMapParams noFilter;
    noFilter.filterThreshold = 0;
    genpair::SeedMap mapUnfiltered(ref, noFilter);

    genpair::GenPairPipeline gpFiltered(ref, mapFiltered,
                                        genpair::GenPairParams{}, &mm2);
    genpair::GenPairPipeline gpUnfiltered(ref, mapUnfiltered,
                                          genpair::GenPairParams{}, &mm2);

    util::Table table({ "mapper", "TP", "FP", "precision", "recall",
                        "F1" });

    runConfig("MM2", ref, ds.pairs, truth,
              [&](const ReadPair &p) { return mm2.mapPair(p); }, table);
    runConfig("GenPair+MM2 no filter", ref, ds.pairs, truth,
              [&](const ReadPair &p) { return gpUnfiltered.mapPair(p); },
              table);
    runConfig("GenPair+MM2", ref, ds.pairs, truth,
              [&](const ReadPair &p) { return gpFiltered.mapPair(p); },
              table);

    table.print("Table 7: variant-calling benchmark "
                "(synthetic truth set, ~30x coverage)");
    std::printf("paper claims to check: (1) GenPair+MM2 F1 within 0.003 "
                "of MM2, (2) GenPair precision >= MM2, (3) filter "
                "impact on F1 negligible (<= 0.0001-ish).\n"
                "truth set: %zu variants over %.1f Mbp\n",
                truth.size(), genomeLen / 1e6);
    return 0;
}
