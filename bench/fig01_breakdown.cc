/**
 * @file
 * Fig. 1 — Execution-time breakdown of the DP-based baseline mapper
 * (the Minimap2 role) on the three paired-end datasets. The paper
 * measures chaining+alignment at 83.4-84.9% of total time; the claim to
 * reproduce is that the DP stages dominate.
 */

#include "common.hh"

int
main()
{
    using namespace gpx;
    using namespace gpx::bench;

    banner("Execution time breakdown of the baseline seed-chain-align "
           "mapper (paired-end)",
           "Fig. 1 (paper: chaining+alignment = 83.4-84.9%)");

    util::Table table({ "dataset", "seeding %", "chaining %",
                        "alignment %", "pairing/other %", "DP total %" });

    for (u32 d = 1; d <= 3; ++d) {
        MappingStack s = buildStack(d, kBenchGenomeLen, 3000);
        s.mm2->timers().clear();
        for (const auto &pair : s.dataset.pairs)
            s.mm2->mapPair(pair);
        const auto &t = s.mm2->timers();
        double seed = t.fraction(baseline::stages::kSeeding) * 100;
        double chain = t.fraction(baseline::stages::kChaining) * 100;
        double align = t.fraction(baseline::stages::kAlignment) * 100;
        double other = t.fraction(baseline::stages::kPairing) * 100;
        table.row()
            .cell(s.dataset.name)
            .cell(seed, 1)
            .cell(chain, 1)
            .cell(align, 1)
            .cell(other, 1)
            .cell(chain + align, 1);
    }
    table.print("Fig. 1: stage breakdown (% of total mapping time)");
    std::printf("paper reference: DP stages (chaining+alignment) consume "
                "83.4%%-84.9%% of Minimap2 time.\n");
    return 0;
}
