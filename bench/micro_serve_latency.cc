/**
 * @file
 * micro_serve_latency — what does serving cost over mapping in-process?
 *
 * The gpx_serve pitch is that a resident daemon amortizes the cold
 * start (reference load, index open, pool spawn) without giving up
 * meaningful per-request throughput. This harness measures the second
 * half of that claim: the same FASTQ batches go through (a) a direct
 * in-process ParallelMapper — the gpx_map hot path once its stack is
 * warm — and (b) a live ServeServer over a Unix socket via ServeClient,
 * paying framing, socket copies, the admission gate and the handler
 * thread handoff. Both sides start from FASTQ text and end at rendered
 * SAM records, so the delta is exactly the serving overhead.
 *
 * Reports requests/s, pairs/s and p50/p99 per-request latency for both
 * sides; `--json` records them (BENCH_serve_latency.json at the repo
 * root, gated by scripts/check_serve_latency.py: warm-serve throughput
 * must stay >= 0.9x direct).
 */

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "common.hh"
#include "genomics/fasta.hh"
#include "genomics/sam.hh"
#include "genpair/driver.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "util/version.hh"

namespace {

using namespace gpx;

constexpr u64 kPairs = 4096;
constexpr u64 kBatchPairs = 128;
constexpr u32 kThreads = 4;
constexpr int kReps = 3;

struct Side
{
    double bestSecs = 0;          ///< best-of-reps total wall time
    std::vector<double> latencyMs; ///< per-request, all reps pooled
    u64 samBytes = 0;

    double
    pairsPerSec() const
    {
        return bestSecs > 0 ? kPairs / bestSecs : 0;
    }

    double
    requestsPerSec() const
    {
        return bestSecs > 0 ? (kPairs / kBatchPairs) / bestSecs : 0;
    }
};

double
percentile(std::vector<double> values, double q)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1) + 0.5);
    return values[std::min(idx, values.size() - 1)];
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpx::bench;

    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--json needs a path\n");
                return 2;
            }
            jsonPath = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 2;
        }
    }

    banner("Warm gpx_serve round trips vs direct in-process mapping",
           "serve daemon PR; the cost of the wire on the mapping path");

    simdata::Dataset dataset = simdata::buildDataset(
        simdata::datasetConfig(1, u64{ 2 } << 20, kPairs));
    const auto &ref = *dataset.reference;
    genpair::SeedMap seedmap(ref, genpair::SeedMapParams{});

    // Pre-serialize every request's FASTQ blobs once: client-side read
    // cost is not what either side is being measured on.
    const u64 numBatches = kPairs / kBatchPairs;
    std::vector<std::string> r1Blobs(numBatches), r2Blobs(numBatches);
    for (u64 b = 0; b < numBatches; ++b) {
        std::vector<genomics::Read> side1, side2;
        for (u64 i = b * kBatchPairs; i < (b + 1) * kBatchPairs; ++i) {
            side1.push_back(dataset.pairs[i].first);
            side2.push_back(dataset.pairs[i].second);
        }
        std::ostringstream os1, os2;
        genomics::writeFastq(os1, side1);
        genomics::writeFastq(os2, side2);
        r1Blobs[b] = os1.str();
        r2Blobs[b] = os2.str();
    }

    // --- direct: warm ParallelMapper, FASTQ text -> SAM records -----
    genpair::DriverConfig driverConfig;
    driverConfig.threads = kThreads;
    genpair::ParallelMapper direct(ref, seedmap, driverConfig);

    Side directSide;
    auto runDirect = [&]() {
        util::Stopwatch total;
        u64 samBytes = 0;
        for (u64 b = 0; b < numBatches; ++b) {
            util::Stopwatch req;
            std::istringstream is1(r1Blobs[b]), is2(r2Blobs[b]);
            auto reads1 = genomics::readFastq(is1);
            auto reads2 = genomics::readFastq(is2);
            std::vector<genomics::ReadPair> pairs;
            pairs.reserve(reads1.size());
            for (std::size_t i = 0; i < reads1.size(); ++i)
                pairs.push_back({ std::move(reads1[i]),
                                  std::move(reads2[i]) });
            auto result = direct.mapAll(pairs);
            std::ostringstream samOs;
            genomics::SamWriter sam(samOs, ref);
            for (std::size_t i = 0; i < pairs.size(); ++i)
                sam.writePair(pairs[i], result.mappings[i]);
            samBytes += samOs.str().size();
            directSide.latencyMs.push_back(req.seconds() * 1e3);
        }
        directSide.samBytes = samBytes;
        return total.seconds();
    };

    // --- serve: the same blobs through a live daemon -----------------
    std::string socketPath = "/tmp/gpx_serve_bench_" +
                             std::to_string(::getpid()) + ".sock";
    serve::MountSpec mount;
    mount.name = "bench";
    mount.ref = &ref;
    mount.view = seedmap;
    serve::ServeConfig serveConfig;
    serveConfig.socketPath = socketPath;
    serveConfig.threads = kThreads;
    serve::ServeServer server({ mount }, serveConfig);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "cannot start server: %s\n", error.c_str());
        return 1;
    }
    auto client = serve::ServeClient::connectUnix(socketPath, &error);
    if (!client) {
        std::fprintf(stderr, "cannot connect: %s\n", error.c_str());
        return 1;
    }

    Side serveSide;
    auto runServe = [&]() {
        util::Stopwatch total;
        u64 samBytes = 0;
        for (u64 b = 0; b < numBatches; ++b) {
            util::Stopwatch req;
            serve::MapReplyBody reply;
            auto status = client->mapBatch("bench", r1Blobs[b],
                                           r2Blobs[b], false, &reply);
            if (!status.ok) {
                std::fprintf(stderr, "map request failed: %s\n",
                             status.describe().c_str());
                std::exit(1);
            }
            if (reply.pairCount != kBatchPairs) {
                std::fprintf(stderr, "short reply: %u pairs\n",
                             reply.pairCount);
                std::exit(1);
            }
            samBytes += reply.sam.size();
            serveSide.latencyMs.push_back(req.seconds() * 1e3);
        }
        serveSide.samBytes = samBytes;
        return total.seconds();
    };

    // Warm-up both sides (pool spin-up, page faults, allocator), then
    // interleave the reps so host noise lands on both equally.
    runDirect();
    runServe();
    directSide.latencyMs.clear();
    serveSide.latencyMs.clear();
    directSide.bestSecs = runDirect();
    serveSide.bestSecs = runServe();
    for (int rep = 1; rep < kReps; ++rep) {
        directSide.bestSecs = std::min(directSide.bestSecs, runDirect());
        serveSide.bestSecs = std::min(serveSide.bestSecs, runServe());
    }

    // Serving must not change the bytes: both sides rendered the same
    // records (per rep), so per-rep totals must agree.
    if (directSide.samBytes != serveSide.samBytes) {
        std::fprintf(stderr, "SAM byte mismatch: direct %llu, serve %llu\n",
                     static_cast<unsigned long long>(directSide.samBytes),
                     static_cast<unsigned long long>(serveSide.samBytes));
        return 1;
    }

    const double ratio = directSide.pairsPerSec() > 0
                             ? serveSide.pairsPerSec() /
                                   directSide.pairsPerSec()
                             : 0;

    util::Table table({ "path", "req/s", "pairs/s", "p50 ms", "p99 ms" });
    table.row()
        .cell("direct (in-process)")
        .cell(directSide.requestsPerSec(), 1)
        .cell(directSide.pairsPerSec(), 0)
        .cell(percentile(directSide.latencyMs, 0.50), 2)
        .cell(percentile(directSide.latencyMs, 0.99), 2);
    table.row()
        .cell("gpx_serve (unix socket)")
        .cell(serveSide.requestsPerSec(), 1)
        .cell(serveSide.pairsPerSec(), 0)
        .cell(percentile(serveSide.latencyMs, 0.50), 2)
        .cell(percentile(serveSide.latencyMs, 0.99), 2);
    table.print("warm request path, " + std::to_string(kBatchPairs) +
                " pairs/request, " + std::to_string(kThreads) +
                " worker threads");
    std::printf("serve throughput = %.3fx direct\n", ratio);

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
            return 1;
        }
        auto num = [](double v, int prec) {
            std::ostringstream str;
            str << std::fixed << std::setprecision(prec) << v;
            return str.str();
        };
        auto side = [&](const Side &s) {
            return "{\"requests_per_s\": " + num(s.requestsPerSec(), 1) +
                   ", \"pairs_per_s\": " + num(s.pairsPerSec(), 0) +
                   ", \"p50_ms\": " + num(percentile(s.latencyMs, 0.50), 3) +
                   ", \"p99_ms\": " + num(percentile(s.latencyMs, 0.99), 3) +
                   "}";
        };
        out << "{\n  \"bench\": \"micro_serve_latency\",\n"
            << "  \"gpx_version\": \"" << kVersion << "\",\n"
            << "  \"context\": " << simdContextJson() << ",\n"
            << "  \"pairs\": " << kPairs << ",\n"
            << "  \"batch_pairs\": " << kBatchPairs << ",\n"
            << "  \"threads\": " << kThreads << ",\n"
            << "  \"direct\": " << side(directSide) << ",\n"
            << "  \"serve\": " << side(serveSide) << ",\n"
            << "  \"serve_vs_direct\": " << num(ratio, 3) << "\n}\n";
        out.flush();
        if (!out) {
            std::fprintf(stderr, "write to %s failed\n", jsonPath.c_str());
            return 1;
        }
        std::printf("wrote %s\n", jsonPath.c_str());
    }

    client->shutdownServer();
    server.waitUntilDrained();
    ::unlink(socketPath.c_str());
    return 0;
}
