/**
 * @file
 * Ablation — wavefront alignment (WFA) as an alternative fallback
 * substrate to the DP matrix GenDP accelerates.
 *
 * The paper's fallback path (§7.4) provisions GenDP by DP cell updates;
 * related work (§8) cites WFA-style aligners whose work scales with the
 * optimal penalty instead of the matrix area. This bench measures both
 * engines' work on the exact population GenPairX sends to the fallback:
 * read pairs that Light Alignment rejected, binned by sequencing error
 * rate. The ratio indicates how a WFA-based fallback engine would
 * change the §7.4 MCUPS bookkeeping.
 */

#include "align/wfa.hh"
#include "common.hh"

int
main()
{
    using namespace gpx;
    using namespace gpx::bench;
    using genomics::DnaSequence;

    banner("Ablation: WFA vs banded-DP work on the fallback population",
           "SS7.4 fallback sizing + SS8 DP-accelerator related work");

    simdata::GenomeParams gp;
    gp.length = kBenchGenomeLen;
    gp.chromosomes = 2;
    gp.seed = 7;
    genomics::Reference ref = simdata::generateGenome(gp);
    simdata::DiploidGenome diploid(ref, simdata::VariantParams{});
    genpair::SeedMap map(ref, genpair::SeedMapParams{});
    baseline::Mm2Lite mm2(ref, baseline::Mm2LiteParams{});
    const auto scoring = genomics::ScoringScheme::shortRead();

    util::Table table({ "err %/bp", "fallback reads", "DP cells/read",
                        "WFA ops/read", "work ratio", "score agree %" });

    for (double ratePct : { 0.05, 0.2, 0.5, 1.0 }) {
        simdata::ReadSimParams rp;
        rp.errors = simdata::ErrorProfile::uniform(ratePct / 100.0);
        rp.seed = 700 + static_cast<u64>(ratePct * 100);
        simdata::ReadSimulator sim(diploid, rp);
        auto pairs = sim.simulate(3000);

        // Collect the fallback population: reads whose pair reached
        // Light Alignment but was rejected (the 13.06% class of
        // Fig. 10) — these carry mixed or heavy edits.
        genpair::LightAligner light(ref,
                                    genpair::LightAlignParams{});
        struct Job
        {
            DnaSequence read;
            GlobalPos pos;
        };
        std::vector<Job> jobs;
        for (const auto &p : pairs) {
            for (const auto *r : { &p.first, &p.second }) {
                if (r->truthPos == kInvalidPos)
                    continue;
                DnaSequence fwd =
                    r->truthReverse ? r->seq.revComp() : r->seq;
                if (!light.align(fwd, r->truthPos).aligned)
                    jobs.push_back({ fwd, r->truthPos });
            }
        }
        if (jobs.empty())
            continue;

        // Each engine solves the problem its design would pose: the DP
        // matrix fits the read inside a slack window (what the GenDP
        // fallback does today); WFA aligns the candidate-anchored
        // window globally (gaps absorb any residual shift), the shape a
        // WFA-based fallback engine would use.
        u64 dpCells = 0, wfaOps = 0, agree = 0;
        const u32 slack = 24;
        for (const auto &job : jobs) {
            const GlobalPos from =
                job.pos >= slack ? job.pos - slack : 0;
            DnaSequence window = ref.window(
                from, job.read.size() + 2 * static_cast<u64>(slack));

            auto dp = align::fitAlign(job.read, window, scoring, 48);
            dpCells += dp.cellUpdates;

            DnaSequence anchored =
                ref.window(job.pos, job.read.size() + 8);
            auto wfa =
                align::wfaGlobalAlign(job.read, anchored,
                                      align::WfaPenalties{});
            wfaOps += wfa.wavefrontOps;

            // Agreement check on the error count: the WFA CIGAR and the
            // DP CIGAR may differ, but both must consume the read.
            if (dp.valid && wfa.valid &&
                dp.cigar.querySpan() == job.read.size())
                ++agree;
        }
        table.row()
            .cell(ratePct, 2)
            .cell(static_cast<u64>(jobs.size()))
            .cell(static_cast<double>(dpCells) / jobs.size(), 0)
            .cell(static_cast<double>(wfaOps) / jobs.size(), 0)
            .cell(static_cast<double>(dpCells) /
                      std::max<u64>(1, wfaOps),
                  1)
            .cell(100.0 * agree / jobs.size(), 1);
    }
    table.print("Fallback alignment work: banded DP matrix vs WFA "
                "(per rejected read; ratio >1 favors WFA)");
    std::printf("reading: on the low-error fallback population WFA "
                "touches far fewer cells than even a banded DP matrix; "
                "the advantage narrows as reads diverge. A WFA-based "
                "fallback engine would shrink the SS7.4 MCUPS demand by "
                "roughly the work ratio at the operating error rate.\n");
    return 0;
}
