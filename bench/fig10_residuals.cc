/**
 * @file
 * Fig. 10 — Residual read pairs that cannot be mapped or aligned by the
 * GenPair fast path, per fallback stage.
 */

#include "common.hh"

int
main()
{
    using namespace gpx;
    using namespace gpx::bench;

    banner("Residual read pairs per GenPair stage",
           "Fig. 10 (paper: 2.09% SeedMap miss, 8.79% PA filter, "
           "13.06% light alignment)");

    MappingStack s = buildStack(1, kBenchGenomeLen, 20000);
    for (const auto &pair : s.dataset.pairs)
        s.pipeline->mapPair(pair);
    const auto &st = s.pipeline->stats();

    util::Table table({ "stage", "measured %", "paper %" });
    table.row()
        .cell("SeedMap Query miss -> full DP")
        .cell(100 * st.fraction(st.seedMissFallback), 2)
        .cell(2.09, 2);
    table.row()
        .cell("Paired-Adjacency filter -> full DP")
        .cell(100 * st.fraction(st.paFilterFallback), 2)
        .cell(8.79, 2);
    table.row()
        .cell("Light Alignment reject -> DP align")
        .cell(100 * st.fraction(st.lightAlignFallback), 2)
        .cell(13.06, 2);
    table.row()
        .cell("mapped on the fast path")
        .cell(100 * st.fraction(st.lightAligned), 2)
        .cell(100.0 - 2.09 - 8.79 - 13.06, 2);
    table.print("Fig. 10: residual pairs per stage");

    std::printf("GenPair maps %.1f%% without DP seeding/chaining and "
                "light-aligns %.1f%% (paper: 89.1%% / 76.1%%)\n",
                100 * (1 - st.fraction(st.seedMissFallback) -
                       st.fraction(st.paFilterFallback)),
                100 * st.fraction(st.lightAligned));
    std::printf("avg light alignments per pair: %.1f (paper: 11.6)\n",
                st.avgAlignmentsPerPair());
    return 0;
}
