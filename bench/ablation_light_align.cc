/**
 * @file
 * Ablation — Light Alignment design knobs called out in DESIGN.md:
 * (a) maximum shift e (mask count 2e+1) and (b) the mismatch bound,
 * versus fast-path coverage and per-pair alignment work; plus the
 * Seed-Table hash-width ablation (collision-driven false candidates).
 */

#include "common.hh"
#include "hwsim/nmsl.hh"

int
main()
{
    using namespace gpx;
    using namespace gpx::bench;

    banner("Ablations: light-alignment bounds and seed-table hash width",
           "DESIGN.md ablation index (supports §4.6/§5.2 choices)");

    simdata::GenomeParams gp;
    gp.length = kBenchGenomeLen;
    gp.chromosomes = 2;
    gp.seed = 7;
    genomics::Reference ref = simdata::generateGenome(gp);
    simdata::DiploidGenome diploid(ref, simdata::VariantParams{});
    simdata::ReadSimParams rp;
    simdata::ReadSimulator sim(diploid, rp);
    auto pairs = sim.simulate(5000);
    baseline::Mm2Lite mm2(ref, baseline::Mm2LiteParams{});

    // (a) maxShift sweep.
    util::Table shiftTable({ "maxShift e", "masks", "light-aligned %",
                             "LA fallback %", "hypoth./align" });
    genpair::SeedMap map(ref, genpair::SeedMapParams{});
    for (u32 e : { 1u, 2u, 3u, 5u, 8u }) {
        genpair::GenPairParams params;
        params.light.maxShift = e;
        genpair::GenPairPipeline pipe(ref, map, params, &mm2);
        for (const auto &p : pairs)
            pipe.mapPair(p);
        const auto &st = pipe.stats();
        shiftTable.row()
            .cell(static_cast<long long>(e))
            .cell(static_cast<long long>(2 * e + 1))
            .cell(100 * st.fraction(st.lightAligned), 2)
            .cell(100 * st.fraction(st.lightAlignFallback), 2)
            .cell(st.lightAlignsAttempted
                      ? static_cast<double>(st.lightHypotheses) /
                            st.lightAlignsAttempted
                      : 0.0,
                  1);
    }
    shiftTable.print("Ablation (a): Hamming-mask shift bound");

    // (b) mismatch bound sweep.
    util::Table mmTable({ "maxMismatches", "light-aligned %",
                          "LA fallback %" });
    for (u32 mm : { 1u, 2u, 3u, 5u }) {
        genpair::GenPairParams params;
        params.light.maxMismatches = mm;
        genpair::GenPairPipeline pipe(ref, map, params, &mm2);
        for (const auto &p : pairs)
            pipe.mapPair(p);
        const auto &st = pipe.stats();
        mmTable.row()
            .cell(static_cast<long long>(mm))
            .cell(100 * st.fraction(st.lightAligned), 2)
            .cell(100 * st.fraction(st.lightAlignFallback), 2);
    }
    mmTable.print("Ablation (b): fast-path mismatch bound (score gate "
                  "stays at 276)");

    // (c) Seed-Table hash width: narrower tables collide more, inflating
    // candidate lists (more PA-filter and light-align work).
    util::Table hashTable({ "table bits", "seed table MB", "locs/seed",
                            "candidates/pair", "light aligns/pair" });
    for (u32 bits : { 18u, 20u, 22u, 24u }) {
        genpair::SeedMapParams sp;
        sp.tableBits = bits;
        genpair::SeedMap m(ref, sp);
        genpair::GenPairPipeline pipe(ref, m, genpair::GenPairParams{},
                                      &mm2);
        for (const auto &p : pairs)
            pipe.mapPair(p);
        const auto &st = pipe.stats();
        hashTable.row()
            .cell(static_cast<long long>(bits))
            .cell(static_cast<double>(m.seedTableBytes()) / (1 << 20), 1)
            .cell(m.stats().avgLocationsPerSeed, 2)
            .cell(static_cast<double>(st.candidatePairs) / st.pairsTotal,
                  2)
            .cell(st.avgAlignmentsPerPair(), 2);
    }
    hashTable.print("Ablation (c): Seed-Table hash width vs collision "
                    "work");

    // (d) NMSL channel mapping: the paper's hash interleaving vs a
    // contiguous block split. Under real (xxHash-uniform) workloads the
    // two balance equally — validating the paper's uniform-distribution
    // premise; the hot-hash-region stress case where interleaving wins
    // >4x is covered by Nmsl.BlockMappingLosesToHashInterleave in the
    // unit tests.
    {
        genpair::SeedMap m(ref, genpair::SeedMapParams{});
        auto workload = hwsim::buildWorkload(m, pairs);
        util::Table chTable({ "channel mapping", "MPair/s", "GB/s",
                              "max FIFO depth" });
        for (auto mapping : { hwsim::ChannelMapping::HashInterleave,
                              hwsim::ChannelMapping::Block }) {
            hwsim::NmslConfig cfg;
            cfg.windowSize = 1024;
            cfg.mapping = mapping;
            cfg.tableEntries = u64{1} << m.tableBits();
            auto res = hwsim::NmslSim(cfg).run(workload);
            chTable.row()
                .cell(mapping == hwsim::ChannelMapping::HashInterleave
                          ? "hash interleave (paper)"
                          : "contiguous block")
                .cell(res.mpairsPerSec, 2)
                .cell(res.gbPerSec, 2)
                .cell(static_cast<long long>(res.maxChannelFifoDepth));
        }
        chTable.print("Ablation (d): NMSL subtable-to-channel mapping");
    }
    return 0;
}
