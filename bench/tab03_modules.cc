/**
 * @file
 * Table 3 — GenPairX module sizing: per-instance throughput, latency and
 * replica counts, derived from the measured software workload profile
 * and the NMSL-sustained rate (the paper's §7.2 methodology).
 */

#include "common.hh"
#include "hwsim/nmsl.hh"
#include "hwsim/pipeline_model.hh"
#include "hwsim/pipeline_sim.hh"

int
main()
{
    using namespace gpx;
    using namespace gpx::bench;

    banner("GenPairX module sizing from software profiling",
           "Table 3 (paper: PS 333/10cyc/1, PA 83.0/24.1cyc/3, "
           "LA 1.1/156cyc/174 at 192.7 MPair/s)");

    MappingStack s = buildStack(1);
    hwsim::WorkloadProfile measured = measureProfile(s);

    auto workload = hwsim::buildWorkload(*s.seedmap, s.dataset.pairs);
    hwsim::NmslConfig cfg;
    cfg.windowSize = 1024;
    auto nmsl = hwsim::NmslSim(cfg).run(workload);

    std::printf("measured workload profile: filter iterations/pair = "
                "%.1f, light aligns/pair = %.1f, locations/seed = %.1f\n"
                "NMSL sustained rate (simulated): %.1f MPair/s "
                "(paper: 192.7)\n\n",
                measured.avgFilterIterationsPerPair,
                measured.avgLightAlignsPerPair,
                measured.avgLocationsPerSeed, nmsl.mpairsPerSec);

    hwsim::ModuleModels mm(2.0);
    util::Table table({ "module", "MPair/s per inst", "latency (cycles)",
                        "# instances (measured)", "# instances (paper)" });

    auto emit = [&](const hwsim::ModuleSpec &spec, u32 paperCount) {
        table.row()
            .cell(spec.name)
            .cell(spec.throughputMpairs, 2)
            .cell(spec.latencyCycles, 1)
            .cell(static_cast<long long>(spec.instances))
            .cell(static_cast<long long>(paperCount));
    };
    emit(mm.partitionedSeeding(nmsl.mpairsPerSec), 1);
    emit(mm.pairedAdjacencyFilter(measured, nmsl.mpairsPerSec), 3);
    emit(mm.lightAlignment(measured, nmsl.mpairsPerSec), 174);
    table.print("Table 3: module throughput, latency and instance counts");

    // Reference sizing at the paper's own workload numbers.
    util::Table paperTable({ "module", "MPair/s per inst",
                             "# instances at 192.7 MPair/s" });
    hwsim::WorkloadProfile paper = hwsim::WorkloadProfile::paperDefault();
    for (const auto &spec :
         { mm.partitionedSeeding(192.7),
           mm.pairedAdjacencyFilter(paper, 192.7),
           mm.lightAlignment(paper, 192.7) }) {
        paperTable.row()
            .cell(spec.name)
            .cell(spec.throughputMpairs, 2)
            .cell(static_cast<long long>(spec.instances));
    }
    paperTable.print("Sanity: sizing at the paper's reported workload");

    // Cycle-level validation: run the sized design against a per-pair
    // workload with the measured means and heavy-tailed dispersion; a
    // balanced design must sustain ~the NMSL rate (paper §7.2's
    // circular-buffer argument).
    hwsim::PipelineSimConfig simCfg;
    simCfg.nmslMpairs = nmsl.mpairsPerSec;
    simCfg.paInstances =
        mm.pairedAdjacencyFilter(measured, nmsl.mpairsPerSec).instances;
    simCfg.laInstances =
        mm.lightAlignment(measured, nmsl.mpairsPerSec).instances;
    auto simWork = hwsim::GenPairXPipelineSim::synthesizeWorkload(
        measured, 40000, 99);
    auto simRes = hwsim::GenPairXPipelineSim(simCfg).run(simWork);
    std::printf("\ncycle-level validation of the sized design: sustained "
                "%.1f MPair/s = %.1f%% of the NMSL rate\n"
                "  PA util %.0f%%, LA util %.0f%%, buffer high-water "
                "%zu/%zu, source stalls %llu cycles\n",
                simRes.mpairsPerSec,
                100 * simRes.efficiencyVsNmsl(simCfg),
                100 * simRes.paUtilization, 100 * simRes.laUtilization,
                simRes.buf1MaxOccupancy, simRes.buf2MaxOccupancy,
                static_cast<unsigned long long>(simRes.sourceStallCycles));
    return 0;
}
