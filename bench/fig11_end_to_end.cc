/**
 * @file
 * Fig. 11 + Table 5 — End-to-end comparison: throughput per unit area
 * and per unit power for every evaluated system, plus the absolute
 * accelerator operating points. GenPairX+GenDP is *derived* (NMSL
 * simulation + measured workload + cost roll-up); the baselines are the
 * reported-constant models.
 */

#include "common.hh"
#include "hwsim/baseline_models.hh"
#include "hwsim/nmsl.hh"
#include "hwsim/pipeline_model.hh"

int
main()
{
    using namespace gpx;
    using namespace gpx::bench;

    banner("End-to-end throughput per area and per power",
           "Fig. 11 + Table 5 (paper: 958x/1575x vs MM2, 2.35x/1.43x vs "
           "GenCache, 1.97x/2.38x vs GenDP)");

    MappingStack s = buildStack(1);
    hwsim::WorkloadProfile measured = measureProfile(s);
    auto workload = hwsim::buildWorkload(*s.seedmap, s.dataset.pairs);
    hwsim::NmslConfig cfg;
    cfg.windowSize = 1024;
    auto nmsl = hwsim::NmslSim(cfg).run(workload);

    hwsim::PipelineModel pm(2.0);
    auto design = pm.design(nmsl, cfg, measured);
    auto ours = design.asSystemPoint("GenPairX+GenDP (simulated)");

    // Long-read operating point (paper §4.7: ~10x below short reads).
    hwsim::LongReadWorkload lw;
    double longMbps = pm.longReadMbps(design, lw);

    std::vector<hwsim::SystemPoint> systems =
        hwsim::BaselineModels::all();
    systems.push_back(ours);
    systems.push_back(hwsim::BaselineModels::genPairXReported());
    systems.push_back({ "GenPairX+GenDP (Long Reads)", longMbps,
                        ours.areaMm2, ours.powerW });

    util::Table table({ "system", "Mbp/s", "mm2", "W", "Mbp/s/mm2",
                        "Mbp/s/W" });
    for (const auto &sys : systems) {
        table.row()
            .cell(sys.name)
            .cell(sys.throughputMbps, 0)
            .cell(sys.areaMm2, 1)
            .cell(sys.powerW, 1)
            .cell(sys.mbpsPerMm2(), 2)
            .cell(sys.mbpsPerW(), 2);
    }
    table.print("Fig. 11 / Table 5: end-to-end comparison");

    auto mm2 = hwsim::BaselineModels::mm2Cpu();
    auto gc = hwsim::BaselineModels::genCache();
    auto gd = hwsim::BaselineModels::genDp();
    auto gpu = hwsim::BaselineModels::bwaMemGpu();
    std::printf("\nmeasured GenPairX+GenDP vs baselines:\n"
                "  vs MM2:      %7.0fx per-area, %7.0fx per-W "
                "(paper 958x / 1575x)\n"
                "  vs GenCache: %7.2fx per-area, %7.2fx per-W "
                "(paper 2.35x / 1.43x)\n"
                "  vs GenDP:    %7.2fx per-area, %7.2fx per-W "
                "(paper 1.97x / 2.38x)\n"
                "  vs BWA-GPU:  %7.0fx per-area, %7.0fx per-W "
                "(paper 3053x / 1685x)\n",
                ours.mbpsPerMm2() / mm2.mbpsPerMm2(),
                ours.mbpsPerW() / mm2.mbpsPerW(),
                ours.mbpsPerMm2() / gc.mbpsPerMm2(),
                ours.mbpsPerW() / gc.mbpsPerW(),
                ours.mbpsPerMm2() / gd.mbpsPerMm2(),
                ours.mbpsPerW() / gd.mbpsPerW(),
                ours.mbpsPerMm2() / gpu.mbpsPerMm2(),
                ours.mbpsPerW() / gpu.mbpsPerW());
    std::printf("long reads: %.0f Mbp/s = %.1fx below short reads "
                "(paper: roughly one order of magnitude)\n",
                longMbps, ours.throughputMbps / longMbps);
    return 0;
}
