/**
 * @file
 * Fig. 11 + Table 5 — End-to-end comparison: throughput per unit area
 * and per unit power for every evaluated system, plus the absolute
 * accelerator operating points. GenPairX+GenDP is *derived* (NMSL
 * simulation + measured workload + cost roll-up); the baselines are the
 * reported-constant models.
 */

#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>

#include "common.hh"
#include "hwsim/baseline_models.hh"
#include "hwsim/nmsl.hh"
#include "hwsim/pipeline_model.hh"
#include "util/version.hh"

namespace {

/** Paper-reported speedups (per-area, per-W) of GenPairX+GenDP. */
struct PaperSpeedup
{
    double area;
    double watt;
};
constexpr PaperSpeedup kPaperVsMm2{ 958, 1575 };
constexpr PaperSpeedup kPaperVsGenCache{ 2.35, 1.43 };
constexpr PaperSpeedup kPaperVsGenDp{ 1.97, 2.38 };
constexpr PaperSpeedup kPaperVsBwaGpu{ 3053, 1685 };

} // namespace

int
main(int argc, char **argv)
{
    // `--json PATH` additionally writes the result as a machine-readable
    // baseline file (see BENCH_fig11_seed.json at the repo root).
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--json needs a path\n");
                return 2;
            }
            jsonPath = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 2;
        }
    }
    using namespace gpx;
    using namespace gpx::bench;

    banner("End-to-end throughput per area and per power",
           "Fig. 11 + Table 5 (paper: 958x/1575x vs MM2, 2.35x/1.43x vs "
           "GenCache, 1.97x/2.38x vs GenDP)");

    MappingStack s = buildStack(1);
    hwsim::WorkloadProfile measured = measureProfile(s);
    auto workload = hwsim::buildWorkload(*s.seedmap, s.dataset.pairs);
    hwsim::NmslConfig cfg;
    cfg.windowSize = 1024;
    auto nmsl = hwsim::NmslSim(cfg).run(workload);

    hwsim::PipelineModel pm(2.0);
    auto design = pm.design(nmsl, cfg, measured);
    auto ours = design.asSystemPoint("GenPairX+GenDP (simulated)");

    // Long-read operating point (paper §4.7: ~10x below short reads).
    hwsim::LongReadWorkload lw;
    double longMbps = pm.longReadMbps(design, lw);

    std::vector<hwsim::SystemPoint> systems =
        hwsim::BaselineModels::all();
    systems.push_back(ours);
    systems.push_back(hwsim::BaselineModels::genPairXReported());
    systems.push_back({ "GenPairX+GenDP (Long Reads)", longMbps,
                        ours.areaMm2, ours.powerW });

    util::Table table({ "system", "Mbp/s", "mm2", "W", "Mbp/s/mm2",
                        "Mbp/s/W" });
    for (const auto &sys : systems) {
        table.row()
            .cell(sys.name)
            .cell(sys.throughputMbps, 0)
            .cell(sys.areaMm2, 1)
            .cell(sys.powerW, 1)
            .cell(sys.mbpsPerMm2(), 2)
            .cell(sys.mbpsPerW(), 2);
    }
    table.print("Fig. 11 / Table 5: end-to-end comparison");

    auto mm2 = hwsim::BaselineModels::mm2Cpu();
    auto gc = hwsim::BaselineModels::genCache();
    auto gd = hwsim::BaselineModels::genDp();
    auto gpu = hwsim::BaselineModels::bwaMemGpu();
    std::printf("\nmeasured GenPairX+GenDP vs baselines:\n"
                "  vs MM2:      %7.0fx per-area, %7.0fx per-W "
                "(paper %gx / %gx)\n"
                "  vs GenCache: %7.2fx per-area, %7.2fx per-W "
                "(paper %gx / %gx)\n"
                "  vs GenDP:    %7.2fx per-area, %7.2fx per-W "
                "(paper %gx / %gx)\n"
                "  vs BWA-GPU:  %7.0fx per-area, %7.0fx per-W "
                "(paper %gx / %gx)\n",
                ours.mbpsPerMm2() / mm2.mbpsPerMm2(),
                ours.mbpsPerW() / mm2.mbpsPerW(), kPaperVsMm2.area,
                kPaperVsMm2.watt, ours.mbpsPerMm2() / gc.mbpsPerMm2(),
                ours.mbpsPerW() / gc.mbpsPerW(), kPaperVsGenCache.area,
                kPaperVsGenCache.watt,
                ours.mbpsPerMm2() / gd.mbpsPerMm2(),
                ours.mbpsPerW() / gd.mbpsPerW(), kPaperVsGenDp.area,
                kPaperVsGenDp.watt,
                ours.mbpsPerMm2() / gpu.mbpsPerMm2(),
                ours.mbpsPerW() / gpu.mbpsPerW(), kPaperVsBwaGpu.area,
                kPaperVsBwaGpu.watt);
    std::printf("long reads: %.0f Mbp/s = %.1fx below short reads "
                "(paper: roughly one order of magnitude)\n",
                longMbps, ours.throughputMbps / longMbps);

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
            return 1;
        }
        // Streamed field by field (no fixed line buffers) so oversize
        // names or values can never truncate into malformed JSON.
        auto num = [](double v, int prec) {
            std::ostringstream str;
            str << std::fixed << std::setprecision(prec) << v;
            return str.str();
        };
        out << "{\n  \"bench\": \"fig11_end_to_end\",\n"
            << "  \"gpx_version\": \"" << kVersion << "\",\n"
            << "  \"context\": " << simdContextJson() << ",\n"
            << "  \"systems\": [\n";
        for (std::size_t i = 0; i < systems.size(); ++i) {
            const auto &sys = systems[i];
            out << "    {\"name\": \"" << bench::jsonEscape(sys.name)
                << "\", \"mbp_per_s\": " << num(sys.throughputMbps, 0)
                << ", \"mm2\": " << num(sys.areaMm2, 1)
                << ", \"watts\": " << num(sys.powerW, 1)
                << ", \"mbp_s_per_mm2\": " << num(sys.mbpsPerMm2(), 2)
                << ", \"mbp_s_per_w\": " << num(sys.mbpsPerW(), 2)
                << "}" << (i + 1 < systems.size() ? "," : "") << "\n";
        }
        auto speedup = [&](const hwsim::SystemPoint &base,
                           const char *key, const PaperSpeedup &paper,
                           bool last) {
            out << "    \"" << key << "\": {\"per_area\": "
                << num(ours.mbpsPerMm2() / base.mbpsPerMm2(), 2)
                << ", \"per_watt\": "
                << num(ours.mbpsPerW() / base.mbpsPerW(), 2)
                << ", \"paper_per_area\": " << paper.area
                << ", \"paper_per_watt\": " << paper.watt << "}"
                << (last ? "" : ",") << "\n";
        };
        out << "  ],\n  \"speedups_vs_baselines\": {\n";
        speedup(mm2, "mm2", kPaperVsMm2, false);
        speedup(gc, "gencache", kPaperVsGenCache, false);
        speedup(gd, "gendp", kPaperVsGenDp, false);
        speedup(gpu, "bwa_gpu", kPaperVsBwaGpu, true);
        out << "  },\n  \"long_reads\": {\"mbp_per_s\": "
            << num(longMbps, 0) << ", \"slowdown_vs_short_reads\": "
            << num(ours.throughputMbps / longMbps, 1) << "}\n}\n";
        out.flush();
        if (!out) {
            std::fprintf(stderr, "write to %s failed\n", jsonPath.c_str());
            return 1;
        }
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return 0;
}
