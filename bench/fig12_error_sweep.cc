/**
 * @file
 * Fig. 12 — Sensitivity to the per-base sequencing error rate: DP
 * fallback fractions after Paired-Adjacency Filtering and after Light
 * Alignment (a), and the resulting GenPairX+GenDP throughput when the
 * fixed design's GenDP becomes the bottleneck (b). Reads are simulated
 * with the Mason-default uniform error profile (paper §7.7).
 */

#include "common.hh"
#include "hwsim/nmsl.hh"
#include "hwsim/pipeline_model.hh"

int
main()
{
    using namespace gpx;
    using namespace gpx::bench;

    banner("Error-rate sensitivity sweep (Mason-default profile)",
           "Fig. 12a-b (paper: fallback grows past 0.1-0.2%/bp; "
           "throughput stable below 0.2%, degrades above)");

    // Shared genome + index; per-rate read sets.
    simdata::GenomeParams gp;
    gp.length = kBenchGenomeLen;
    gp.chromosomes = 2;
    gp.seed = 7;
    genomics::Reference ref = simdata::generateGenome(gp);
    simdata::VariantParams vp; // paper §7.8 rates
    simdata::DiploidGenome diploid(ref, vp);
    genpair::SeedMap map(ref, genpair::SeedMapParams{});
    baseline::Mm2Lite mm2(ref, baseline::Mm2LiteParams{});

    // Fix the hardware design at the default operating point.
    {
        // Build a small default workload to size the design.
    }
    simdata::ReadSimParams defParams;
    simdata::ReadSimulator defSim(diploid, defParams);
    auto defPairs = defSim.simulate(6000);
    auto hwWorkload = hwsim::buildWorkload(map, defPairs);
    hwsim::NmslConfig ncfg;
    ncfg.windowSize = 1024;
    auto nmsl = hwsim::NmslSim(ncfg).run(hwWorkload);
    genpair::GenPairPipeline defPipe(ref, map, genpair::GenPairParams{},
                                     &mm2);
    u64 c0 = mm2.dpWork().chainCells, a0 = mm2.dpWork().alignCells;
    for (const auto &p : defPairs)
        defPipe.mapPair(p);
    const auto &dst = defPipe.stats();
    u64 fullDp = dst.seedMissFallback + dst.paFilterFallback;
    u64 dpPairs = fullDp + dst.lightAlignFallback;
    hwsim::WorkloadProfile defProfile = hwsim::WorkloadProfile::fromStats(
        dst, 150,
        fullDp ? double(mm2.dpWork().chainCells - c0) / fullDp : 15000.0,
        dpPairs ? double(mm2.dpWork().alignCells - a0) / dpPairs : 75000.0,
        map.stats().avgLocationsPerSeed);
    hwsim::PipelineModel pm(2.0);
    auto design = pm.design(nmsl, ncfg, defProfile);

    util::Table table({ "err %/bp", "fallback after PA-filter %",
                        "fallback after light align %",
                        "throughput (MPair/s)" });

    for (double ratePct :
         { 0.01, 0.03, 0.1, 0.2, 0.3, 0.5, 1.0, 2.0 }) {
        simdata::ReadSimParams rp;
        rp.errors = simdata::ErrorProfile::uniform(ratePct / 100.0);
        rp.seed = 400 + static_cast<u64>(ratePct * 100);
        simdata::ReadSimulator sim(diploid, rp);
        auto pairs = sim.simulate(4000);

        genpair::GenPairPipeline pipe(ref, map, genpair::GenPairParams{},
                                      &mm2);
        u64 cb = mm2.dpWork().chainCells, ab = mm2.dpWork().alignCells;
        for (const auto &p : pairs)
            pipe.mapPair(p);
        const auto &st = pipe.stats();
        u64 full = st.seedMissFallback + st.paFilterFallback;
        u64 dps = full + st.lightAlignFallback;
        hwsim::WorkloadProfile w = hwsim::WorkloadProfile::fromStats(
            st, 150,
            full ? double(mm2.dpWork().chainCells - cb) / full
                 : defProfile.chainCellsPerFullDpPair,
            dps ? double(mm2.dpWork().alignCells - ab) / dps
                : defProfile.alignCellsPerDpPair,
            map.stats().avgLocationsPerSeed);

        double tput = pm.throughputUnder(design, w);
        table.row()
            .cell(ratePct, 2)
            .cell(100 * w.fullDpFrac(), 2)
            .cell(100 * w.lightFallbackFrac, 2)
            .cell(tput, 1);
    }
    table.print("Fig. 12: DP fallback and throughput vs error rate");
    std::printf("paper reference: throughput flat (~192 MPair/s) below "
                "0.2%%/bp, decreasing beyond as DP alignment becomes "
                "the bottleneck.\n");
    return 0;
}
