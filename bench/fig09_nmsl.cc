/**
 * @file
 * Fig. 9 — SeedMap Query throughput: NMSL (simulated over HBM2) versus a
 * CPU implementation (actually measured, multi-threaded, on the host)
 * and the paper's reported GPU point. Also prints throughput per unit
 * area and per unit power.
 *
 * With `--trace FILE` the NMSL workload is replayed from a recorded
 * `gpx_map --trace` run (gpx-stage-trace v1) instead of the synthetic
 * generator — the real-trace co-simulation path of the stage-graph
 * engine. The CPU rows still use the synthetic stack's SeedMap.
 */

#include <atomic>
#include <fstream>
#include <thread>

#include "common.hh"
#include "hwsim/baseline_models.hh"
#include "hwsim/nmsl.hh"
#include "hwsim/trace_adapter.hh"

namespace {

using namespace gpx;

/** Host-measured multi-threaded SeedMap query throughput (MPair/s). */
double
measureHostQueryRate(const genpair::SeedMap &map,
                     const std::vector<hwsim::PairTrace> &workload)
{
    const u32 threads = std::min(16u, std::thread::hardware_concurrency());
    std::atomic<u64> sink{ 0 };
    util::Stopwatch watch;
    std::vector<std::thread> pool;
    for (u32 t = 0; t < threads; ++t) {
        pool.emplace_back([&, t]() {
            u64 local = 0;
            for (std::size_t i = t; i < workload.size(); i += threads) {
                for (const auto &st : workload[i]) {
                    auto span = map.lookup(st.hash);
                    for (u32 loc : span)
                        local += loc; // force the memory traffic
                }
            }
            sink += local;
        });
    }
    for (auto &th : pool)
        th.join();
    double secs = watch.seconds();
    (void)sink.load();
    return workload.size() / secs / 1e6;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpx;
    using namespace gpx::bench;

    std::string tracePath;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--trace" && i + 1 < argc) {
            tracePath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: fig09_nmsl [--trace FILE]\n");
            return 2;
        }
    }

    banner("SeedMap Query throughput: CPU vs GPU vs NMSL",
           "Fig. 9 + §7.1 (paper: NMSL 192.7 MPair/s = 2.12x GPU, "
           "4.58x CPU)");

    MappingStack s = buildStack(1, kBenchGenomeLen, 20000);

    std::vector<hwsim::PairTrace> workload;
    hwsim::NmslConfig cfg;
    cfg.windowSize = 1024;
    if (tracePath.empty()) {
        workload = hwsim::buildWorkload(*s.seedmap, s.dataset.pairs);
    } else {
        std::ifstream traceFile(tracePath);
        if (!traceFile) {
            std::fprintf(stderr, "cannot open trace: %s\n",
                         tracePath.c_str());
            return 1;
        }
        hwsim::RecordedRun run;
        std::string error;
        if (!hwsim::loadRecordedRun(traceFile, &run, &error)) {
            std::fprintf(stderr, "trace rejected: %s\n", error.c_str());
            return 1;
        }
        workload = std::move(run.traces);
        cfg = run.nmslConfig(cfg);
        std::printf("replaying recorded trace: %zu pairs, tableBits %u, "
                    "%.1f locations/seed\n\n",
                    workload.size(), run.tableBits,
                    run.avgLocationsPerSeed);
    }
    auto nmsl = hwsim::NmslSim(cfg).run(workload);

    double hostRate = measureHostQueryRate(*s.seedmap, workload);

    auto gpu = hwsim::NmslComparisonPoints::gpuQuery();
    auto cpu = hwsim::NmslComparisonPoints::cpuQuery();
    auto paper = hwsim::NmslComparisonPoints::nmslReported();

    // Our NMSL point uses the simulated rate with the paper's NMSL
    // area/power envelope (HBM PHY + query logic slice of Table 4).
    util::Table table({ "system", "MPair/s", "GB/s", "MPair/s/mm2",
                        "MPair/s/W" });
    auto addRow = [&](const std::string &name, double mpairs, double gbps,
                      double area, double watts) {
        table.row()
            .cell(name)
            .cell(mpairs, 2)
            .cell(gbps, 2)
            .cell(area > 0 ? mpairs / area : 0.0, 3)
            .cell(watts > 0 ? mpairs / watts : 0.0, 3);
    };
    addRow("CPU (paper model)", cpu.throughputMbps, 0, cpu.areaMm2,
           cpu.powerW);
    addRow("CPU (host measured)", hostRate, 0, cpu.areaMm2, cpu.powerW);
    addRow("GPU (paper model)", gpu.throughputMbps, 0, gpu.areaMm2,
           gpu.powerW);
    addRow("NMSL (simulated)", nmsl.mpairsPerSec, nmsl.gbPerSec,
           paper.areaMm2, nmsl.dramTotalPowerW + 1.2);
    // Paper NMSL power implied by its 26.8x per-W advantage over GPU.
    double paperNmslWatts =
        paper.throughputMbps /
        (26.8 * gpu.throughputMbps / gpu.powerW);
    addRow("NMSL (paper)", paper.throughputMbps, 35.0, paper.areaMm2,
           paperNmslWatts);

    table.print("Fig. 9: SeedMap Query throughput comparison");
    std::printf("ratios (simulated NMSL / models): vs GPU = %.2fx, "
                "vs CPU model = %.2fx (paper: 2.12x / 4.58x)\n",
                nmsl.mpairsPerSec / gpu.throughputMbps,
                nmsl.mpairsPerSec / cpu.throughputMbps);
    return 0;
}
