/**
 * @file
 * Fig. 13 — Sensitivity to the index filtering threshold: mapping
 * precision, recall and F1 of GenPair WITHOUT DP fallback (paper §7.8),
 * on Mason-simulated reads (SNP 1e-3, INDEL 2e-4) over a repeat-rich
 * genome, evaluated paftools-style (location only).
 */

#include "common.hh"
#include "eval/mapping_eval.hh"

int
main()
{
    using namespace gpx;
    using namespace gpx::bench;

    banner("Index filtering threshold sweep (no DP fallback)",
           "Fig. 13 (paper: precision falls / recall rises with the "
           "threshold; both flatten beyond ~4000)");

    // Repeat-heavy genome: high-copy, low-divergence satellites create
    // the >500-location seed tail that the threshold acts on (GRCh38's
    // centromeric satellite role).
    simdata::GenomeParams gp;
    gp.length = kBenchGenomeLen;
    gp.chromosomes = 2;
    gp.repeatFraction = 0.55;
    gp.satelliteFamilies = 4;
    gp.repeatDivergence = 0.008;
    gp.seed = 7;
    genomics::Reference ref = simdata::generateGenome(gp);
    simdata::VariantParams vp; // §7.8: SNP 1e-3, INDEL 2e-4
    simdata::DiploidGenome diploid(ref, vp);
    simdata::ReadSimParams rp;
    rp.errors = simdata::ErrorProfile::uniform(0.003);
    simdata::ReadSimulator sim(diploid, rp);
    auto pairs = sim.simulate(6000);

    util::Table table({ "threshold", "mapped pairs %", "precision",
                        "recall", "F1" });

    for (u32 threshold : { 50u, 100u, 200u, 500u, 1000u, 2000u, 4000u,
                           8000u, 0u }) {
        genpair::SeedMapParams sp;
        sp.filterThreshold = threshold;
        genpair::SeedMap map(ref, sp);
        genpair::GenPairPipeline pipe(ref, map, genpair::GenPairParams{},
                                      nullptr); // no DP fallback (§7.8)
        eval::MappingEvaluator ev(50);
        u64 mappedPairs = 0;
        for (const auto &pair : pairs) {
            auto pm = pipe.mapPair(pair);
            mappedPairs += pm.bothMapped();
            ev.addPair(pair, pm);
        }
        const auto &acc = ev.result();
        table.row()
            .cell(threshold == 0 ? std::string("unlimited")
                                 : std::to_string(threshold))
            .cell(100.0 * mappedPairs / pairs.size(), 2)
            .cell(acc.precision(), 4)
            .cell(acc.recall(), 4)
            .cell(acc.f1(), 4);
    }
    table.print("Fig. 13: filter-threshold sensitivity");
    std::printf("paper reference: precision ~0.999->0.997, recall "
                "~0.85->0.87, F1 plateau past 4000; threshold 500 "
                "chosen as the accuracy/performance trade-off.\n");
    return 0;
}
