/**
 * @file
 * Table 4 — Area and power breakdown of GenPairX + GenDP at 7 nm,
 * rolled up from the synthesized block costs, the CACTI-lite SRAM
 * model, the NMSL buffer sizing and the GenDP MCUPS sizing.
 */

#include "common.hh"
#include "hwsim/nmsl.hh"
#include "hwsim/pipeline_model.hh"

int
main()
{
    using namespace gpx;
    using namespace gpx::bench;

    banner("Area and power breakdown (7 nm)",
           "Table 4 (paper: GenPairX 66.80 mm2 / 0.88 W; with GenDP "
           "381.1 mm2 / 209.0 W)");

    MappingStack s = buildStack(1);
    hwsim::WorkloadProfile measured = measureProfile(s);

    auto workload = hwsim::buildWorkload(*s.seedmap, s.dataset.pairs);
    hwsim::NmslConfig cfg;
    cfg.windowSize = 1024;
    auto nmsl = hwsim::NmslSim(cfg).run(workload);

    hwsim::PipelineModel pm(2.0);
    auto design = pm.design(nmsl, cfg, measured);

    util::Table table({ "component", "area (mm2)", "power (mW)" });
    for (const auto &row : design.breakdown) {
        table.row()
            .cell(row.name)
            .cell(row.cost.areaMm2, 3)
            .cell(row.cost.powerMw, 2);
    }
    table.row()
        .cell("GenPairX total")
        .cell(design.genPairXCost.areaMm2, 2)
        .cell(design.genPairXCost.powerMw, 1);
    table.row()
        .cell("GenDP Chain (sized)")
        .cell(hwsim::GenDpModel::chainCost(design.chainMcups).areaMm2, 1)
        .cell(hwsim::GenDpModel::chainCost(design.chainMcups).powerMw, 0);
    table.row()
        .cell("GenDP Align (sized)")
        .cell(hwsim::GenDpModel::alignCost(design.alignMcups).areaMm2, 1)
        .cell(hwsim::GenDpModel::alignCost(design.alignMcups).powerMw, 0);
    table.row()
        .cell("GenPairX + GenDP")
        .cell(design.totalCost.areaMm2, 1)
        .cell(design.totalCost.powerMw, 0);
    table.print("Table 4: area/power breakdown (measured workload)");

    std::printf("GenDP sizing: chain %.0f MCUPS (paper 331,772), align "
                "%.0f MCUPS (paper 3,469,180)\n",
                design.chainMcups, design.alignMcups);
    return 0;
}
