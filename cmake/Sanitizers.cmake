# Interface target carrying the sanitizer flags selected via
# -DGPX_SANITIZE=... (semicolon- or comma-separated, e.g.
# "address;undefined"). Linked PUBLIC from the gpx library so every
# dependent target compiles and links with the same instrumentation.
add_library(gpx_sanitizers INTERFACE)
if(GPX_SANITIZE)
    string(REPLACE "," ";" _gpx_san_list "${GPX_SANITIZE}")
    string(REPLACE ";" "," _gpx_san_flag "${_gpx_san_list}")
    target_compile_options(gpx_sanitizers INTERFACE
        -fsanitize=${_gpx_san_flag} -fno-omit-frame-pointer -fno-sanitize-recover=all)
    target_link_options(gpx_sanitizers INTERFACE -fsanitize=${_gpx_san_flag})
endif()
