# End-to-end smoke of the four CLIs, invoked by the smoke_tools_pipeline
# CTest entry: simulate a small dataset, build an index image, map the
# pairs through the streaming driver, then score the SAM against truth.
# Any non-zero exit fails the test.
#
# Required -D variables: GPX_SIMULATE GPX_INDEX GPX_MAP GPX_MAPEVAL WORK_DIR
foreach(v GPX_SIMULATE GPX_INDEX GPX_MAP GPX_MAPEVAL WORK_DIR)
    if(NOT DEFINED ${v})
        message(FATAL_ERROR "RunToolPipeline.cmake needs -D${v}=...")
    endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step)
    execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "pipeline step failed (rc=${rc}): ${ARGV}")
    endif()
endfunction()

run_step(${GPX_SIMULATE} --out ${WORK_DIR}/sim
    --length 262144 --chromosomes 1 --pairs 1000)
run_step(${GPX_INDEX} --ref ${WORK_DIR}/sim.fa --out ${WORK_DIR}/sim.gpx)
run_step(${GPX_MAP} --ref ${WORK_DIR}/sim.fa --index ${WORK_DIR}/sim.gpx
    --r1 ${WORK_DIR}/sim_1.fq --r2 ${WORK_DIR}/sim_2.fq
    --out ${WORK_DIR}/out.sam --threads 2)
run_step(${GPX_MAPEVAL} --ref ${WORK_DIR}/sim.fa
    --sam ${WORK_DIR}/out.sam --truth ${WORK_DIR}/sim.truth.tsv
    --min-correct 90)
