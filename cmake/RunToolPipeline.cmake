# End-to-end smoke of the four CLIs, invoked by the smoke_tools_pipeline
# CTest entry: simulate a small dataset, build an index image, map the
# pairs through the streaming driver, then score the SAM against truth.
# Any non-zero exit fails the test.
#
# Required -D variables: GPX_SIMULATE GPX_INDEX GPX_MAP GPX_MAPEVAL WORK_DIR
foreach(v GPX_SIMULATE GPX_INDEX GPX_MAP GPX_MAPEVAL WORK_DIR)
    if(NOT DEFINED ${v})
        message(FATAL_ERROR "RunToolPipeline.cmake needs -D${v}=...")
    endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step)
    execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "pipeline step failed (rc=${rc}): ${ARGV}")
    endif()
endfunction()

run_step(${GPX_SIMULATE} --out ${WORK_DIR}/sim
    --length 262144 --chromosomes 1 --pairs 1000)
run_step(${GPX_INDEX} --ref ${WORK_DIR}/sim.fa --out ${WORK_DIR}/sim.gpx)
run_step(${GPX_MAP} --ref ${WORK_DIR}/sim.fa --index ${WORK_DIR}/sim.gpx
    --r1 ${WORK_DIR}/sim_1.fq --r2 ${WORK_DIR}/sim_2.fq
    --out ${WORK_DIR}/out.sam --threads 2 --io-threads 2
    --stats-json ${WORK_DIR}/stats.json
    --trace ${WORK_DIR}/run.trace)
run_step(${GPX_MAPEVAL} --ref ${WORK_DIR}/sim.fa
    --sam ${WORK_DIR}/out.sam --truth ${WORK_DIR}/sim.truth.tsv
    --min-correct 90)

# --stats-json must carry the full PipelineStats, including the
# per-stage counters of the stage graph and the I/O spine's stall
# accounting (reader-starved vs emission-bound seconds).
file(READ ${WORK_DIR}/stats.json STATS_JSON)
foreach(key pairs_total light_aligned stages light_align fallback
        reader_stall_seconds writer_stall_seconds)
    if(NOT STATS_JSON MATCHES "\"${key}\"")
        message(FATAL_ERROR "stats.json is missing key '${key}'")
    endif()
endforeach()

# --trace must produce a parseable gpx-stage-trace with one record per
# mapped pair (1000 simulated pairs + the 2-line header).
file(STRINGS ${WORK_DIR}/run.trace TRACE_LINES)
list(GET TRACE_LINES 0 TRACE_MAGIC)
if(NOT TRACE_MAGIC STREQUAL "# gpx-stage-trace v1")
    message(FATAL_ERROR "trace magic line is '${TRACE_MAGIC}'")
endif()
list(LENGTH TRACE_LINES TRACE_LEN)
if(TRACE_LEN LESS 1002)
    message(FATAL_ERROR "trace holds ${TRACE_LEN} lines, expected >= 1002")
endif()
