# Interface target carrying the project-wide warning flags. Linked
# PRIVATE by every target so warnings never propagate to consumers.
add_library(gpx_warnings INTERFACE)
if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    target_compile_options(gpx_warnings INTERFACE -Wall -Wextra -Wshadow)
    if(GPX_WERROR)
        target_compile_options(gpx_warnings INTERFACE -Werror)
    endif()
endif()
