#!/usr/bin/env python3
"""Gate CI on the micro_kernels benchmark against a checked-in baseline.

Compares a fresh `micro_kernels --benchmark_format=json` run against
BENCH_micro_kernels.json. Absolute nanoseconds differ between machines,
so per-kernel ratios (current/baseline) are normalized by their median:
the median ratio is the machine-speed factor, and a kernel fails only
when it is more than --tolerance slower than that factor predicts —
i.e. it regressed *relative to the other kernels*.

Additionally enforces the bit-parallel speedup contract within the
current run (machine-independent): the Myers edit-distance kernel must
be at least --min-edit-speedup times faster than the retained scalar
oracle benched in the same binary.

Usage:
  check_kernel_regression.py BASELINE.json CURRENT.json \
      [--tolerance 0.30] [--min-edit-speedup 5.0]
"""

import argparse
import json
import statistics
import sys


def load_times(path):
    """Name -> cpu_time ns, min over repetitions.

    Scheduling, frequency scaling and cache pollution only ever *add*
    time, so the minimum across --benchmark_repetitions is the robust
    estimator of a kernel's true cost; cpu_time additionally excludes
    time the process was descheduled."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type", "iteration") != "iteration":
            continue
        name = row.get("run_name", row["name"])
        t = float(row["cpu_time"])
        times[name] = min(times.get(name, t), t)
    return times


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed slowdown vs the median-normalized "
                         "baseline (0.30 = 30%%)")
    ap.add_argument("--min-edit-speedup", type=float, default=5.0,
                    help="required Myers-vs-scalar edit-distance speedup "
                         "within the current run")
    ap.add_argument("--min-gate-ns", type=float, default=10.0,
                    help="kernels faster than this in the baseline are "
                         "reported but not gated (sub-10ns rows jitter "
                         "far more than any real regression)")
    args = ap.parse_args()

    base = load_times(args.baseline)
    cur = load_times(args.current)

    shared = sorted(set(base) & set(cur))
    if not shared:
        print("error: no common benchmarks between baseline and current")
        return 1
    missing = sorted(set(base) - set(cur))
    # ISA-dependent rows (the "/avx*" SIMD-batch variants) register only
    # on hosts whose CPU supports them: a baseline recorded on a wider
    # machine must still gate on a narrower CI runner.
    isa_missing = [m for m in missing if "/avx" in m]
    missing = [m for m in missing if "/avx" not in m]
    if isa_missing:
        print(f"SKIP (host lacks the ISA): {isa_missing}")
    if missing:
        print(f"error: benchmarks missing from current run: {missing}")
        return 1
    ungated = sorted(set(cur) - set(base))
    if ungated:
        print("warning: benchmarks not in the baseline are NOT gated "
              f"(regenerate BENCH_micro_kernels.json): {ungated}")

    ratios = {name: cur[name] / base[name] for name in shared}
    machine = statistics.median(ratios.values())
    print(f"machine-speed factor (median current/baseline): {machine:.3f}")

    failed = False
    for name in shared:
        rel = ratios[name] / machine
        flag = ""
        if rel > 1.0 + args.tolerance:
            if base[name] < args.min_gate_ns:
                flag = "  (slow, below gate floor — ignored)"
            else:
                flag = "  << REGRESSION"
                failed = True
        print(f"  {name:32s} base {base[name]:12.1f} ns  "
              f"cur {cur[name]:12.1f} ns  rel {rel:6.3f}{flag}")

    scalar = cur.get("BM_EditDistance150Scalar")
    myers = cur.get("BM_EditDistance150Myers")
    if scalar is None or myers is None:
        print("error: edit-distance speedup rows missing from current run")
        failed = True
    else:
        speedup = scalar / myers
        ok = speedup >= args.min_edit_speedup
        print(f"edit-distance bit-parallel speedup: {speedup:.1f}x "
              f"(required >= {args.min_edit_speedup:.1f}x)"
              f"{'' if ok else '  << FAIL'}")
        failed = failed or not ok

    if failed:
        print("FAIL: kernel regression gate")
        return 1
    print("OK: all kernels within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
