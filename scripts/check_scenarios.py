#!/usr/bin/env python3
"""Gate CI on the scenario wall (gpx_scenario --json, format 1).

Accuracy floors live in BENCH_scenarios.json. Unlike the throughput
benches, accuracy is machine-independent by construction — simulation
is seeded and mapping is bit-identical at every thread count — so a
floor violation is a real behavior change, not host noise. Throughput
fields (reads_per_s, map_seconds) are printed but never gated.

The gate is environment-aware in the check_driver_scaling.py style:

  * a run recorded at --scale != 1 SKIPs (floors are recorded at
    scale 1; tests exercise reduced scales through the library);
  * a scenario row marked skipped (e.g. gzip without zlib) SKIPs with
    its reason instead of failing.

Per-scenario floor fields (all optional):
  min_accuracy      mapping_eval recall floor
  min_snp_f1        variant-calling SNP F1 floor (variant leg only)
  min_indel_f1      variant-calling INDEL F1 floor
  max_cross_frac    per-region cross-mapped fraction ceiling
  min_shards        mounted image shard count floor (contamination)
  min_ambiguous     ambiguous-base ingest count floor (dirty inputs
                    must stay visible in the stats)
  expect_rejected   the scenario must reject its input (truncation)
  expect_sam_match  gzip SAM must be byte-identical to the plain run

Usage:
  check_scenarios.py CURRENT.json [--floors BENCH_scenarios.json]
"""

import argparse
import json
import sys


def fail(msg):
    print(f"FAIL: {msg}")
    return 1


def check_row(name, row, floor):
    """Returns a list of failure messages for one scenario row."""
    errors = []
    if floor.get("expect_rejected"):
        if not row.get("rejected"):
            errors.append(f"{name}: expected the input to be rejected")
        elif not row.get("reject_diagnostic"):
            errors.append(f"{name}: rejected without a diagnostic")
        else:
            print(f"  {name}: rejected as expected "
                  f"({row['reject_diagnostic'][:60]}...)")
        return errors
    if row.get("rejected"):
        errors.append(f"{name}: unexpectedly rejected: "
                      f"{row.get('reject_diagnostic', '')}")
        return errors

    acc = float(row.get("accuracy", 0.0))
    line = f"  {name}: accuracy {acc:.4f}"
    if "min_accuracy" in floor:
        if acc < floor["min_accuracy"]:
            errors.append(f"{name}: accuracy {acc:.4f} below the "
                          f"floor {floor['min_accuracy']:.4f}")
        line += f" (floor {floor['min_accuracy']:.4f})"
    for key, field in (("min_snp_f1", "snp_f1"),
                       ("min_indel_f1", "indel_f1")):
        if key in floor:
            value = float(row.get(field, -1.0))
            if value < floor[key]:
                errors.append(f"{name}: {field} {value:.4f} below the "
                              f"floor {floor[key]:.4f}")
            line += f", {field} {value:.4f} (floor {floor[key]:.4f})"
    if "max_cross_frac" in floor:
        regions = row.get("attribution", [])
        if not regions:
            errors.append(f"{name}: no attribution regions in the row")
        for region in regions:
            frac = float(region.get("cross_fraction", 1.0))
            if frac > floor["max_cross_frac"]:
                errors.append(
                    f"{name}: region '{region.get('label')}' cross "
                    f"fraction {frac:.4f} above the ceiling "
                    f"{floor['max_cross_frac']:.4f}")
            line += (f", {region.get('label')} cross {frac:.4f}"
                     f" (ceiling {floor['max_cross_frac']:.4f})")
    if "min_shards" in floor:
        shards = int(row.get("shard_count", 1))
        if shards < floor["min_shards"]:
            errors.append(f"{name}: mounted {shards} shard(s), floor "
                          f"is {floor['min_shards']}")
        line += f", {shards} shards"
    if "min_ambiguous" in floor:
        ambiguous = int(row.get("ambiguous_bases", 0))
        if ambiguous < floor["min_ambiguous"]:
            errors.append(f"{name}: ambiguous_bases {ambiguous} below "
                          f"{floor['min_ambiguous']} — ingest "
                          f"accounting lost the dirty input")
        line += f", {ambiguous} ambiguous bases"
    if floor.get("expect_sam_match") and not row.get("sam_matches_plain"):
        errors.append(f"{name}: gzip SAM differs from the plain-text "
                      f"run (bit-identity contract broken)")
    line += f"  [{row.get('reads_per_s', 0):.0f} reads/s]"
    print(line)
    return errors


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("--floors", default="BENCH_scenarios.json")
    args = ap.parse_args()

    with open(args.current) as f:
        doc = json.load(f)
    if doc.get("bench") != "scenarios":
        return fail(f"{args.current} is not a scenarios record")
    if doc.get("format") != 1:
        return fail(f"{args.current} is format {doc.get('format')!r}, "
                    f"need 1 (rerun gpx_scenario)")

    with open(args.floors) as f:
        floors_doc = json.load(f)
    if floors_doc.get("bench") != "scenarios":
        return fail(f"{args.floors} is not a scenarios floors record")
    floors = floors_doc.get("floors", {})

    scale = float(doc.get("scale", 0.0))
    print(f"scenario run at scale {scale}, "
          f"{doc.get('host_threads', '?')}-thread host, "
          f"{len(doc.get('scenarios', []))} rows")
    if scale != 1.0:
        print(f"SKIP: floors are recorded at scale 1, this run used "
              f"scale {scale}")
        return 0

    rows = {row.get("name"): row for row in doc.get("scenarios", [])}
    errors = []
    skipped = 0
    for name, floor in floors.items():
        row = rows.get(name)
        if row is None:
            errors.append(f"{name}: missing from the run (the wall "
                          f"must run every pinned scenario)")
            continue
        if row.get("skipped"):
            print(f"  {name}: SKIP ({row.get('skip_reason', '')})")
            skipped += 1
            continue
        errors.extend(check_row(name, row, floor))

    extra = set(rows) - set(floors)
    if extra:
        print(f"note: {len(extra)} scenario(s) without floors: "
              f"{', '.join(sorted(extra))} — pin them in {args.floors}")

    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        return 1
    print(f"OK: {len(floors) - skipped} scenario(s) within floors"
          f"{f', {skipped} skipped' if skipped else ''}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
