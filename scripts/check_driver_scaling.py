#!/usr/bin/env python3
"""Gate CI on the micro_driver_scaling benchmark (format v2).

Two within-run ratios, machine-independent by construction (the same
contract style as check_stage_batch.py):

  * pooled_vs_legacy — the persistent worker pool against the seed
    per-chunk respawn driver, mapping time only. Informational here;
    regressions surface as a warning, not a failure, because on small
    or noisy hosts the two legitimately converge.

  * spine_vs_single_reader — a whole StreamingMapper run (FASTQ text
    in, SAM text out) with the multi-parser async spine against the
    same run with one parser thread. This is the number the async-spine
    refactor moves, and it is gated: at the gated thread count the
    spine must be >= --min-speedup faster.

The gate is host-aware: parallel parsing cannot beat a single reader
on a host without spare cores, so when the *recording* host has fewer
hardware threads than --threads the gate SKIPs (exit 0) after
validating the schema. BENCH JSON records host_threads for exactly
this decision.

Usage:
  check_driver_scaling.py CURRENT.json [--min-speedup 1.15]
                          [--threads 8]
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("--min-speedup", type=float, default=1.15,
                    help="required spine-vs-single-reader speedup at "
                         "the gated thread count")
    ap.add_argument("--threads", type=int, default=8,
                    help="ingest grid point to gate")
    args = ap.parse_args()

    with open(args.current) as f:
        doc = json.load(f)
    if doc.get("bench") != "micro_driver_scaling":
        print(f"error: {args.current} is not a micro_driver_scaling "
              f"record")
        return 1
    if doc.get("format") != 2:
        print(f"error: {args.current} is format "
              f"{doc.get('format')!r}, need 2 (rerun the bench)")
        return 1
    for key in ("host_threads", "grid", "ingest"):
        if key not in doc:
            print(f"error: {args.current} is missing '{key}'")
            return 1

    host_threads = int(doc["host_threads"])
    print(f"recorded on a {host_threads}-thread host, "
          f"{doc.get('pairs', '?')} pairs")

    print("pooled vs legacy (mapping only):")
    for point in doc["grid"]:
        ratio = float(point["pooled_vs_legacy"])
        warn = "  (pooled slower)" if ratio < 0.90 else ""
        print(f"  threads {point['threads']:3d}  chunk "
              f"{point['chunk_pairs']:4d}  {ratio:.2f}x{warn}")

    print("ingest-included spine vs single reader:")
    gated = None
    for point in doc["ingest"]:
        flag = ""
        if point["threads"] == args.threads:
            gated = point
            flag = "  << gated"
        print(f"  threads {point['threads']:3d}  io "
              f"{point['io_threads']:2d}  "
              f"{float(point['spine_vs_single_reader']):.2f}x  "
              f"(spine {point['spine_pairs_per_s']} pairs/s, "
              f"stalls rd {point['reader_stall_s']} s / "
              f"wr {point['writer_stall_s']} s){flag}")

    if host_threads < args.threads:
        print(f"SKIP: recording host has {host_threads} hardware "
              f"thread(s), below the gated {args.threads}; the spine "
              f"cannot out-parse a single reader without spare cores")
        return 0
    if gated is None:
        print(f"error: no ingest point with threads == {args.threads} "
              f"(host has {host_threads} threads; the bench should "
              f"have reached it)")
        return 1

    speedup = float(gated["spine_vs_single_reader"])
    if speedup < args.min_speedup:
        print(f"FAIL: spine speedup {speedup:.3f}x at "
              f"{args.threads} threads is below the required "
              f"{args.min_speedup:.2f}x")
        return 1
    print(f"OK: spine speedup {speedup:.3f}x at {args.threads} "
          f"threads (required >= {args.min_speedup:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
