#!/usr/bin/env sh
# Check (default) or fix (--fix) clang-format conformance for all
# tracked C++ sources. Mirrors the non-blocking CI format job.
set -eu

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
    echo "error: clang-format not found in PATH" >&2
    exit 1
fi

mode="--dry-run -Werror"
if [ "${1:-}" = "--fix" ]; then
    mode="-i"
fi

# shellcheck disable=SC2086
git ls-files '*.cc' '*.hh' | xargs clang-format $mode
