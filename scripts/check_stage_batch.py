#!/usr/bin/env python3
"""Gate CI on the micro_stage_batch benchmark.

The benchmark measures the batched stage-graph engine against an
in-binary replay of the seed (pre-stage-graph) per-pair engine, so the
speedup is a within-run ratio and machine-independent — the same
contract style as the Myers-vs-scalar gate in
check_kernel_regression.py. The checked-in BENCH_stage_batch.json
records >= 1.5x at the production block size; CI enforces a
conservative floor so host noise cannot flake the job.

Usage:
  check_stage_batch.py CURRENT.json [--min-speedup 1.10]
                       [--batch-pairs 64]
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("--min-speedup", type=float, default=1.10,
                    help="required batched-vs-monolith speedup at the "
                         "gated batch size")
    ap.add_argument("--batch-pairs", type=int, default=64,
                    help="grid point to gate (the production "
                         "MapperEngine block size)")
    args = ap.parse_args()

    with open(args.current) as f:
        doc = json.load(f)
    if doc.get("bench") != "micro_stage_batch":
        print(f"error: {args.current} is not a micro_stage_batch record")
        return 1

    gated = None
    for point in doc.get("grid", []):
        flag = ""
        if point["batch_pairs"] == args.batch_pairs:
            gated = point
            flag = "  << gated"
        print(f"  batch {point['batch_pairs']:6d}  "
              f"{point['pairs_per_s']:>10} pairs/s  "
              f"{point['speedup_vs_monolith']:.3f}x vs monolith{flag}")
    if gated is None:
        print(f"error: no grid point with batch_pairs == "
              f"{args.batch_pairs}")
        return 1

    speedup = float(gated["speedup_vs_monolith"])
    if speedup < args.min_speedup:
        print(f"FAIL: stage-graph speedup {speedup:.3f}x is below the "
              f"required {args.min_speedup:.2f}x")
        return 1
    print(f"OK: stage-graph speedup {speedup:.3f}x "
          f"(required >= {args.min_speedup:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
