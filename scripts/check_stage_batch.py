#!/usr/bin/env python3
"""Gate CI on the micro_stage_batch benchmark.

The benchmark measures the batched stage-graph engine against an
in-binary replay of the seed (pre-stage-graph) per-pair engine, so the
speedup is a within-run ratio and machine-independent — the same
contract style as the Myers-vs-scalar gate in
check_kernel_regression.py. The checked-in BENCH_stage_batch.json
records the production block size well above the floor; CI enforces a
conservative floor so host noise cannot flake the job.

Two gates, both within-run ratios:

  1. The widest-backend grid row at the gated batch size must beat the
     monolith by --min-speedup.
  2. The vectorized-vs-scalar ratio at the gated batch size (widest
     backend rate / scalar backend rate, same binary, same run) must
     reach --min-simd-ratio. Skipped with a notice when the host can
     only run the scalar backend (no AVX2), and on pre-SIMD JSON whose
     grid rows carry no "backend" field.

Usage:
  check_stage_batch.py CURRENT.json [--min-speedup 1.10]
                       [--batch-pairs 64] [--min-simd-ratio 1.25]
"""

import argparse
import json
import sys

BACKEND_ORDER = {"scalar": 0, "avx2": 1, "avx512": 2}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("--min-speedup", type=float, default=1.10,
                    help="required batched-vs-monolith speedup at the "
                         "gated batch size")
    ap.add_argument("--batch-pairs", type=int, default=64,
                    help="grid point to gate (the production "
                         "MapperEngine block size)")
    ap.add_argument("--min-simd-ratio", type=float, default=1.25,
                    help="required widest-backend-vs-scalar speedup at "
                         "the gated batch size (skipped when the host "
                         "has no vectorized backend)")
    args = ap.parse_args()

    with open(args.current) as f:
        doc = json.load(f)
    if doc.get("bench") != "micro_stage_batch":
        print(f"error: {args.current} is not a micro_stage_batch record")
        return 1

    # Group the gated-batch-size rows by backend; rows without a
    # backend field (pre-SIMD JSON) land under None.
    gated = {}
    for point in doc.get("grid", []):
        backend = point.get("backend")
        flag = ""
        if point["batch_pairs"] == args.batch_pairs:
            gated[backend] = point
            flag = "  << gated"
        label = f"[{backend}] " if backend else ""
        print(f"  {label}batch {point['batch_pairs']:6d}  "
              f"{point['pairs_per_s']:>10} pairs/s  "
              f"{point['speedup_vs_monolith']:.3f}x vs monolith{flag}")
    if not gated:
        print(f"error: no grid point with batch_pairs == "
              f"{args.batch_pairs}")
        return 1

    widest = max(gated, key=lambda b: BACKEND_ORDER.get(b, -1))
    speedup = float(gated[widest]["speedup_vs_monolith"])
    who = f"{widest} " if widest else ""
    if speedup < args.min_speedup:
        print(f"FAIL: {who}stage-graph speedup {speedup:.3f}x is below "
              f"the required {args.min_speedup:.2f}x")
        return 1
    print(f"OK: {who}stage-graph speedup {speedup:.3f}x "
          f"(required >= {args.min_speedup:.2f}x)")

    # Gate 2: vectorized vs scalar, same run.
    if widest in (None, "scalar"):
        reason = ("grid rows carry no backend field"
                  if widest is None else "host runs scalar only, no AVX2")
        print(f"SKIP: simd-vs-scalar ratio gate ({reason})")
        return 0
    if "scalar" not in gated:
        print("error: vectorized rows present but no scalar row to "
              "ratio against")
        return 1
    scalar_rate = float(gated["scalar"]["pairs_per_s"])
    widest_rate = float(gated[widest]["pairs_per_s"])
    ratio = widest_rate / scalar_rate if scalar_rate > 0 else 0.0
    if ratio < args.min_simd_ratio:
        print(f"FAIL: {widest}/scalar ratio {ratio:.3f}x is below the "
              f"required {args.min_simd_ratio:.2f}x")
        return 1
    print(f"OK: {widest}/scalar ratio {ratio:.3f}x "
          f"(required >= {args.min_simd_ratio:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
