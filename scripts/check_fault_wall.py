#!/usr/bin/env python3
"""Hold the fault wall to its contract.

util::FaultInjector only proves anything if three sets stay equal:

  1. the registry   — kKnownPoints in src/util/fault.cc;
  2. the call sites — checkFault("...") / checkFaultBytes("...") in
     src/ (a point with no call site injects nothing);
  3. the coverage   — every point named by at least one fault plan in
     tests/ or .github/workflows/ci.yml (a point no test arms is
     recovery code that has never run).

This script recomputes all three from the sources and fails on any
drift, so removing a call site, renaming a point, or dropping a chaos
plan breaks CI instead of silently retiring an injection point. It
also syntax-checks every plan it finds: plans naming unknown points
would be rejected at configure time and test nothing.

Usage:
  check_fault_wall.py [--repo ROOT]
"""

import argparse
import pathlib
import re
import sys

POINT_RE = re.compile(r'check(?:Fault|FaultBytes)\(\s*"([a-z._]+)"')
REGISTRY_RE = re.compile(
    r"kKnownPoints\s*=\s*\{(.*?)\};", re.DOTALL)
REGISTRY_ENTRY_RE = re.compile(r'"([a-z._]+)"')
# A fault plan as it appears in test source (configure/arm calls) or in
# CI env blocks: point:action with an optional @trigger.
PLAN_RULE_RE = re.compile(
    r'([a-z]+\.[a-z]+):'
    r'(fail|short|sigbus|enospc|eio|epipe|delay=\d+(?:ms)?)'
    r'(?:@[a-zA-Z0-9=.]+)?')


def fail(msg):
    print(f"check_fault_wall: {msg}", file=sys.stderr)
    sys.exit(1)


def registry_points(repo):
    text = (repo / "src/util/fault.cc").read_text()
    m = REGISTRY_RE.search(text)
    if not m:
        fail("cannot find kKnownPoints registry in src/util/fault.cc")
    points = set(REGISTRY_ENTRY_RE.findall(m.group(1)))
    if not points:
        fail("kKnownPoints registry parsed empty")
    return points


def call_site_points(repo):
    sites = {}
    for path in sorted((repo / "src").rglob("*.cc")) + sorted(
            (repo / "src").rglob("*.hh")):
        if path.name in ("fault.cc", "fault.hh"):
            continue  # the injector itself is not a call site
        for point in POINT_RE.findall(path.read_text()):
            sites.setdefault(point, []).append(
                str(path.relative_to(repo)))
    return sites


def plan_points(repo):
    covered = {}
    sources = sorted((repo / "tests").glob("*.cc"))
    ci = repo / ".github/workflows/ci.yml"
    if ci.exists():
        sources.append(ci)
    for path in sources:
        for line in path.read_text().splitlines():
            # Negative tests deliberately feed the injector bogus
            # plans and assert the rejection; those are not coverage.
            if "EXPECT_FALSE" in line or "bad plan" in line:
                continue
            for point, _action in PLAN_RULE_RE.findall(line):
                covered.setdefault(point, []).append(
                    str(path.relative_to(repo)))
    return covered


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--repo", default=".",
                    help="repository root (default: cwd)")
    args = ap.parse_args()
    repo = pathlib.Path(args.repo).resolve()

    registry = registry_points(repo)
    sites = call_site_points(repo)
    plans = plan_points(repo)

    missing_sites = registry - set(sites)
    if missing_sites:
        fail(f"registered points with no call site in src/: "
             f"{sorted(missing_sites)}")
    unregistered = set(sites) - registry
    if unregistered:
        detail = {p: sites[p] for p in sorted(unregistered)}
        fail(f"call sites naming unregistered points: {detail}")

    bogus = set(plans) - registry
    if bogus:
        detail = {p: plans[p] for p in sorted(bogus)}
        fail(f"fault plans naming unknown points (would be rejected "
             f"at configure time): {detail}")
    uncovered = registry - set(plans)
    if uncovered:
        fail(f"registered points never armed by any test/CI plan: "
             f"{sorted(uncovered)}")

    print(f"fault wall intact: {len(registry)} points, each with "
          f"call sites and test coverage")
    for point in sorted(registry):
        print(f"  {point}: {len(sites[point])} call site(s), "
              f"{len(plans[point])} plan source(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
