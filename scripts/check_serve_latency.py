#!/usr/bin/env python3
"""Gate CI on the micro_serve_latency benchmark.

The benchmark runs the same FASTQ batches through a warm in-process
ParallelMapper and through a live gpx_serve daemon on a Unix socket, in
one process on one host — so serve_vs_direct is a within-run ratio and
machine-independent, the same contract style as check_stage_batch.py.
The serving layer (framing, socket copies, admission gate, handler
handoff) is allowed to cost at most 10% of warm mapping throughput;
the checked-in BENCH_serve_latency.json records the reference run.

Usage:
  check_serve_latency.py CURRENT.json [--min-ratio 0.90]
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("--min-ratio", type=float, default=0.90,
                    help="required warm-serve / direct throughput ratio")
    args = ap.parse_args()

    with open(args.current) as f:
        doc = json.load(f)
    if doc.get("bench") != "micro_serve_latency":
        print(f"error: {args.current} is not a micro_serve_latency record")
        return 1

    for name in ("direct", "serve"):
        side = doc[name]
        print(f"  {name:>6}: {side['requests_per_s']:>8} req/s  "
              f"{side['pairs_per_s']:>10} pairs/s  "
              f"p50 {side['p50_ms']} ms  p99 {side['p99_ms']} ms")

    ratio = float(doc["serve_vs_direct"])
    if ratio < args.min_ratio:
        print(f"FAIL: warm-serve throughput is {ratio:.3f}x direct, "
              f"below the required {args.min_ratio:.2f}x")
        return 1
    print(f"OK: warm-serve throughput {ratio:.3f}x direct "
          f"(required >= {args.min_ratio:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
