#include "scenario/scenario.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "eval/pileup.hh"
#include "eval/variant_bench.hh"
#include "eval/vcf.hh"
#include "genomics/fasta.hh"
#include "genomics/sam.hh"
#include "genomics/sam_reader.hh"
#include "genpair/driver.hh"
#include "genpair/seedmap_io.hh"
#include "genpair/streaming.hh"
#include "simdata/genome_generator.hh"
#include "simdata/read_simulator.hh"
#include "util/gzip_stream.hh"
#include "util/logging.hh"

namespace gpx {
namespace scenario {

using genomics::ReadPair;
using genomics::Reference;

namespace {

/** Scale a genome length, keeping enough room for repeats + reads. */
u64
scaleGenome(u64 len, double scale)
{
    return std::max<u64>(u64{ 1 } << 16,
                         static_cast<u64>(static_cast<double>(len) * scale));
}

/** Scale a read count with a floor that keeps the statistics meaningful. */
u64
scaleReads(u64 n, double scale, u64 floor)
{
    return std::max<u64>(floor,
                         static_cast<u64>(static_cast<double>(n) * scale));
}

simdata::VariantParams
variantParams(const ScenarioSpec &spec)
{
    simdata::VariantParams vp;
    vp.seed = spec.seed + 1;
    if (!spec.plantVariants) {
        // No donor variants: reads differ from the reference only by
        // sequencing error, so accuracy isolates the error sweep.
        vp.snpRate = 0;
        vp.indelRate = 0;
    }
    return vp;
}

simdata::ReadSimParams
readSimParams(const ScenarioSpec &spec, u64 seed_offset)
{
    simdata::ReadSimParams rp;
    rp.seed = spec.seed + seed_offset;
    if (spec.errorRate >= 0)
        rp.errors = simdata::ErrorProfile::uniform(spec.errorRate);
    return rp;
}

void
fillAccuracy(ScenarioResult &result, const eval::MappingEvaluator &eval,
             double seconds)
{
    const eval::MappingAccuracy &acc = eval.result();
    result.reads = acc.readsTotal;
    result.mapped = acc.mapped;
    result.correct = acc.correct;
    result.accuracy = acc.recall();
    result.mapSeconds = seconds;
    result.readsPerSec =
        seconds > 0 ? static_cast<double>(acc.readsTotal) / seconds : 0;
    result.attribution = eval.regions();
}

/** The pileup -> VCF round trip -> variant_bench leg (paper Table 7). */
void
runVariantLeg(ScenarioResult &result, const Reference &ref,
              const simdata::DiploidGenome &donor,
              const std::vector<ReadPair> &pairs,
              const std::vector<genomics::PairMapping> &mappings)
{
    eval::PileupCaller caller(ref, eval::CallerParams{});
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto &pm = mappings[i];
        if (pm.first.mapped)
            caller.addAlignment(pm.first.reverse
                                    ? pairs[i].first.seq.revComp()
                                    : pairs[i].first.seq,
                                pm.first);
        if (pm.second.mapped)
            caller.addAlignment(pm.second.reverse
                                    ? pairs[i].second.seq.revComp()
                                    : pairs[i].second.seq,
                                pm.second);
    }
    // Round-trip the calls through VCF so the wall covers the
    // serialization the external comparison flow depends on.
    std::stringstream vcf;
    eval::writeVcf(vcf, ref, caller.call());
    std::vector<eval::CalledVariant> calls = eval::readVcf(vcf, ref);
    result.snpF1 = eval::benchmarkVariants(donor.truthVariants(), calls,
                                           eval::VariantClass::Snp)
                       .f1();
    result.indelF1 = eval::benchmarkVariants(donor.truthVariants(), calls,
                                             eval::VariantClass::Indel)
                         .f1();
}

ScenarioResult
runShortRead(const ScenarioSpec &spec, const ScenarioOptions &options)
{
    ScenarioResult result;
    simdata::GenomeParams gp;
    gp.length = scaleGenome(spec.genomeLen, options.scale);
    gp.chromosomes = spec.chromosomes;
    gp.seed = spec.seed;
    Reference ref = simdata::generateGenome(gp);
    simdata::DiploidGenome donor(ref, variantParams(spec));

    simdata::ReadSimParams rp = readSimParams(spec, 2);
    const u64 numPairs =
        spec.plantVariants
            ? std::max<u64>(500, static_cast<u64>(
                                     static_cast<double>(ref.totalLength()) *
                                     spec.coverage / (2.0 * rp.readLen)))
            : scaleReads(spec.reads, options.scale, 200);
    simdata::ReadSimulator sim(donor, rp);
    std::vector<ReadPair> pairs = sim.simulate(numPairs);

    genpair::SeedMap map = genpair::SeedMap::build(
        ref, genpair::SeedMapParams{}, options.threads);
    genpair::DriverConfig config;
    config.threads = options.threads;
    genpair::ParallelMapper mapper(ref, map, config);
    genpair::DriverResult res = mapper.mapAll(pairs);
    result.stats = res.stats;

    eval::MappingEvaluator eval(spec.evalTolerance);
    for (std::size_t i = 0; i < pairs.size(); ++i)
        eval.addPair(pairs[i], res.mappings[i]);
    fillAccuracy(result, eval, res.timing.seconds);

    if (spec.plantVariants)
        runVariantLeg(result, ref, donor, pairs, res.mappings);
    return result;
}

ScenarioResult
runLongRead(const ScenarioSpec &spec, const ScenarioOptions &options)
{
    ScenarioResult result;
    simdata::GenomeParams gp;
    gp.length = scaleGenome(spec.genomeLen, options.scale);
    gp.chromosomes = spec.chromosomes;
    gp.seed = spec.seed;
    Reference ref = simdata::generateGenome(gp);
    simdata::DiploidGenome donor(ref, variantParams(spec));

    simdata::LongReadSimParams lp;
    lp.meanLen = spec.longMeanLen;
    lp.sdLen = spec.longSdLen;
    lp.seed = spec.seed + 2;
    if (spec.errorRate >= 0)
        lp.errors = simdata::ErrorProfile::uniform(spec.errorRate);
    simdata::LongReadSimulator sim(donor, lp);
    std::vector<genomics::Read> reads =
        sim.simulate(scaleReads(spec.reads, options.scale, 24));

    genpair::SeedMap map = genpair::SeedMap::build(
        ref, genpair::SeedMapParams{}, options.threads);
    genpair::LongReadDriver driver(ref, map, genpair::LongReadParams{},
                                   baseline::Mm2LiteParams{},
                                   options.threads);
    genpair::LongReadResult res = driver.mapAll(reads);
    result.longStats = res.stats;

    eval::MappingEvaluator eval(spec.evalTolerance);
    for (std::size_t i = 0; i < reads.size(); ++i)
        eval.addRead(reads[i], res.mappings[i]);
    fillAccuracy(result, eval, res.timing.seconds);
    return result;
}

ScenarioResult
runContamination(const ScenarioSpec &spec, const ScenarioOptions &options)
{
    ScenarioResult result;
    // Two independently generated species: the host keeps the spec's
    // seed lineage, the contaminant gets a disjoint one.
    simdata::GenomeParams ga;
    ga.length = scaleGenome(spec.genomeLen, options.scale);
    ga.chromosomes = spec.chromosomes;
    ga.seed = spec.seed;
    simdata::GenomeParams gb;
    gb.length = scaleGenome(spec.contaminantGenomeLen, options.scale);
    gb.chromosomes = 1;
    gb.seed = spec.seed + 100;
    Reference refA = simdata::generateGenome(ga);
    Reference refB = simdata::generateGenome(gb);

    Reference combined;
    for (u32 c = 0; c < refA.numChromosomes(); ++c)
        combined.addChromosome("host_" + refA.name(c),
                               refA.chromosome(c));
    for (u32 c = 0; c < refB.numChromosomes(); ++c)
        combined.addChromosome("contam_" + refB.name(c),
                               refB.chromosome(c));

    // Reads come from each species' own donor; species B truth
    // positions rebase onto the combined coordinate space (B
    // chromosomes follow A's in addChromosome order).
    simdata::DiploidGenome donorA(refA, variantParams(spec));
    simdata::DiploidGenome donorB(refB, variantParams(spec));
    const u64 total = scaleReads(spec.reads, options.scale, 400);
    const u64 fromB = static_cast<u64>(static_cast<double>(total) *
                                       spec.contaminantFrac);
    simdata::ReadSimulator simA(donorA, readSimParams(spec, 2));
    simdata::ReadSimulator simB(donorB, readSimParams(spec, 3));
    std::vector<ReadPair> pairs = simA.simulate(total - fromB);
    std::vector<ReadPair> pairsB = simB.simulate(fromB);
    const GlobalPos rebase = refA.totalLength();
    for (auto &pair : pairsB) {
        if (pair.first.truthPos != kInvalidPos)
            pair.first.truthPos += rebase;
        if (pair.second.truthPos != kInvalidPos)
            pair.second.truthPos += rebase;
        pairs.push_back(std::move(pair));
    }

    // The index is served the deployment way: a sharded v2 image on
    // disk, mounted zero-copy through the multi-shard mmap view.
    genpair::SeedMap map = genpair::SeedMap::build(
        combined, genpair::SeedMapParams{}, options.threads);
    const std::string dir =
        options.workDir.empty() ? "." : options.workDir;
    const std::string imagePath =
        dir + "/gpx_scenario_" + spec.name + ".seedmap";
    {
        std::ofstream os(imagePath, std::ios::binary);
        if (!os) {
            result.skipped = true;
            result.skipReason =
                "cannot write scratch image: " + imagePath;
            return result;
        }
        genpair::saveSeedMapV2(os, map, spec.imageShards);
        os.flush();
        if (!os) {
            result.skipped = true;
            result.skipReason =
                "short write on scratch image: " + imagePath;
            std::remove(imagePath.c_str());
            return result;
        }
    }
    std::string err;
    auto image = genpair::SeedMapImage::open(
        imagePath, genpair::SeedMapOpenOptions{}, &err);
    if (!image) {
        result.skipped = true;
        result.skipReason = "image rejected: " + err;
        std::remove(imagePath.c_str());
        return result;
    }
    result.shardCount = image->shardCount();

    genpair::DriverConfig config;
    config.threads = options.threads;
    genpair::ParallelMapper mapper(combined, image->view(), config);
    genpair::DriverResult res = mapper.mapAll(pairs);
    result.stats = res.stats;

    eval::MappingEvaluator eval(spec.evalTolerance);
    eval.addRegion("host", 0, refA.totalLength());
    eval.addRegion("contaminant", refA.totalLength(),
                   combined.totalLength());
    for (std::size_t i = 0; i < pairs.size(); ++i)
        eval.addPair(pairs[i], res.mappings[i]);
    fillAccuracy(result, eval, res.timing.seconds);
    std::remove(imagePath.c_str());
    return result;
}

/** Render pairs as two same-order FASTQ texts. */
void
renderFastqPair(const std::vector<ReadPair> &pairs, std::string &r1,
                std::string &r2)
{
    std::vector<genomics::Read> reads1, reads2;
    reads1.reserve(pairs.size());
    reads2.reserve(pairs.size());
    for (const auto &pair : pairs) {
        reads1.push_back(pair.first);
        reads2.push_back(pair.second);
    }
    std::ostringstream o1, o2;
    genomics::writeFastq(o1, reads1);
    genomics::writeFastq(o2, reads2);
    r1 = o1.str();
    r2 = o2.str();
}

/**
 * Replace the first base of every @p every-th record's sequence line
 * with 'N'; returns the number of records touched. Keeps the ingest
 * accounting (IngestStats -> PipelineStats::ambiguousBases) a pinned,
 * nonzero number in the gzip scenario.
 */
u64
injectAmbiguousBases(std::string &fastq, u64 every)
{
    u64 record = 0, line = 0, touched = 0;
    std::size_t lineStart = 0;
    while (lineStart < fastq.size()) {
        std::size_t lineEnd = fastq.find('\n', lineStart);
        if (lineEnd == std::string::npos)
            lineEnd = fastq.size();
        if (line % 4 == 1) {
            if (record % every == 0 && lineEnd > lineStart) {
                fastq[lineStart] = 'N';
                ++touched;
            }
            ++record;
        }
        ++line;
        lineStart = lineEnd + 1;
    }
    return touched;
}

/** One spine pass: FASTQ text in, SAM text out. */
genpair::StreamRunStatus
runSpine(genpair::ParallelMapper &mapper, const Reference &ref,
         const ScenarioOptions &options, const std::string &r1,
         const std::string &r2, std::string &sam_text,
         genpair::StreamingResult &sr, genomics::IngestError &error)
{
    genpair::StreamingMapper spine(mapper, options.chunkPairs,
                                   options.ioThreads);
    std::istringstream i1(r1), i2(r2);
    std::ostringstream out;
    genomics::SamWriter sam(out, ref);
    sam.checkWrites("<scenario>", /*fatal_on_error=*/false);
    sam.writeHeader();
    genpair::StreamRunStatus status =
        spine.tryRun(i1, i2, sam, sr, &error);
    sam_text = out.str();
    return status;
}

/** Evaluate a SAM text against the simulated truth, by read name. */
void
evaluateSam(const std::string &sam_text, const Reference &ref,
            const std::vector<ReadPair> &pairs, u64 tolerance,
            ScenarioResult &result, double seconds)
{
    std::unordered_map<std::string, std::pair<GlobalPos, bool>> truth;
    truth.reserve(pairs.size() * 2);
    for (const auto &pair : pairs) {
        truth[pair.first.name] = { pair.first.truthPos,
                                   pair.first.truthReverse };
        truth[pair.second.name] = { pair.second.truthPos,
                                    pair.second.truthReverse };
    }
    std::istringstream is(sam_text);
    genomics::SamFile file = genomics::readSam(is);
    eval::MappingEvaluator eval(tolerance);
    for (const auto &rec : file.records) {
        auto it = truth.find(rec.qname);
        if (it == truth.end())
            continue;
        genomics::Read read;
        read.name = rec.qname;
        read.truthPos = it->second.first;
        read.truthReverse = it->second.second;
        genomics::Mapping m;
        if (rec.isMapped()) {
            auto pos = genomics::recordGlobalPos(rec, ref);
            if (pos) {
                m.mapped = true;
                m.pos = *pos;
                m.reverse = rec.isReverse();
            }
        }
        eval.addRead(read, m);
    }
    fillAccuracy(result, eval, seconds);
}

ScenarioResult
runGzipIngest(const ScenarioSpec &spec, const ScenarioOptions &options)
{
    ScenarioResult result;
    if (!util::gzipSupported()) {
        result.skipped = true;
        result.skipReason = "binary built without zlib";
        return result;
    }
    simdata::GenomeParams gp;
    gp.length = scaleGenome(spec.genomeLen, options.scale);
    gp.chromosomes = spec.chromosomes;
    gp.seed = spec.seed;
    Reference ref = simdata::generateGenome(gp);
    simdata::DiploidGenome donor(ref, variantParams(spec));
    simdata::ReadSimulator sim(donor, readSimParams(spec, 2));
    std::vector<ReadPair> pairs =
        sim.simulate(scaleReads(spec.reads, options.scale, 200));

    std::string r1, r2;
    renderFastqPair(pairs, r1, r2);
    // A sprinkle of ambiguous bases keeps the ingest accounting a
    // pinned nonzero number through the inflate path.
    injectAmbiguousBases(r1, 97);

    genpair::SeedMap map = genpair::SeedMap::build(
        ref, genpair::SeedMapParams{}, options.threads);
    genpair::DriverConfig config;
    config.threads = options.threads;
    genpair::ParallelMapper mapper(ref, map, config);

    std::string samPlain, samGz;
    genpair::StreamingResult plainRun, gzRun;
    genomics::IngestError error;
    if (runSpine(mapper, ref, options, r1, r2, samPlain, plainRun,
                 error) != genpair::StreamRunStatus::kOk) {
        result.rejected = true;
        result.rejectDiagnostic = "plain-text run failed: " + error.message;
        return result;
    }
    if (runSpine(mapper, ref, options, util::gzipCompress(r1),
                 util::gzipCompress(r2), samGz, gzRun,
                 error) != genpair::StreamRunStatus::kOk) {
        result.rejected = true;
        result.rejectDiagnostic = "gzip run failed: " + error.message;
        return result;
    }
    result.samMatchesPlain = samGz == samPlain;
    result.stats = gzRun.stats;
    result.ambiguousBases = gzRun.stats.ambiguousBases;
    evaluateSam(samGz, ref, pairs, spec.evalTolerance, result,
                gzRun.mapping.seconds);
    return result;
}

ScenarioResult
runTruncatedIngest(const ScenarioSpec &spec,
                   const ScenarioOptions &options)
{
    ScenarioResult result;
    simdata::GenomeParams gp;
    gp.length = scaleGenome(spec.genomeLen, options.scale);
    gp.chromosomes = spec.chromosomes;
    gp.seed = spec.seed;
    Reference ref = simdata::generateGenome(gp);
    simdata::DiploidGenome donor(ref, variantParams(spec));
    simdata::ReadSimulator sim(donor, readSimParams(spec, 2));
    std::vector<ReadPair> pairs =
        sim.simulate(scaleReads(spec.reads, options.scale, 200));

    std::string r1, r2;
    renderFastqPair(pairs, r1, r2);
    // Cut R2 mid-record: the spine must reject with the serial
    // reader's diagnostic, never crash or emit torn output.
    r2.resize(r2.size() * 3 / 5);

    genpair::SeedMap map = genpair::SeedMap::build(
        ref, genpair::SeedMapParams{}, options.threads);
    genpair::DriverConfig config;
    config.threads = options.threads;
    genpair::ParallelMapper mapper(ref, map, config);

    std::string sam;
    genpair::StreamingResult run;
    genomics::IngestError error;
    genpair::StreamRunStatus status =
        runSpine(mapper, ref, options, r1, r2, sam, run, error);
    result.rejected =
        status == genpair::StreamRunStatus::kParseError && error.set();
    result.rejectDiagnostic = error.message;
    return result;
}

} // namespace

const char *
kindName(ScenarioKind kind)
{
    switch (kind) {
      case ScenarioKind::kShortRead: return "short_read";
      case ScenarioKind::kLongRead: return "long_read";
      case ScenarioKind::kContamination: return "contamination";
      case ScenarioKind::kGzipIngest: return "gzip_ingest";
      case ScenarioKind::kTruncatedIngest: return "truncated_ingest";
    }
    return "unknown";
}

const std::vector<ScenarioSpec> &
scenarioTable()
{
    static const std::vector<ScenarioSpec> kTable = [] {
        std::vector<ScenarioSpec> t;

        {
            // The reference workload: GIAB-like mixture errors, planted
            // variants, full map -> pileup -> VCF -> F1 leg at ~25x.
            ScenarioSpec s;
            s.name = "short_baseline";
            s.kind = ScenarioKind::kShortRead;
            s.note = "2x150 bp, mixture errors, 25x, variant F1 leg";
            s.genomeLen = 200000;
            s.plantVariants = true;
            s.seed = 23;
            t.push_back(std::move(s));
        }
        for (double rate : { 0.05, 0.10, 0.15 }) {
            // The paper's SS7.7 error sweep, pinned at three points.
            ScenarioSpec s;
            s.name = "short_err" +
                     std::to_string(static_cast<int>(rate * 100 + 0.5));
            s.kind = ScenarioKind::kShortRead;
            s.note = "2x150 bp, uniform " +
                     std::to_string(static_cast<int>(rate * 100 + 0.5)) +
                     "% error";
            s.genomeLen = 400000;
            s.errorRate = rate;
            s.reads = 4000;
            s.seed = 37;
            t.push_back(std::move(s));
        }
        {
            // HiFi-like long reads through the parallel LongReadDriver.
            ScenarioSpec s;
            s.name = "long_hifi";
            s.kind = ScenarioKind::kLongRead;
            s.note = "HiFi-like ~9 kb reads at 0.5% error";
            s.genomeLen = 400000;
            s.errorRate = 0.005;
            s.reads = 96;
            s.longMeanLen = 9000;
            s.longSdLen = 2500;
            s.evalTolerance = 200;
            s.seed = 41;
            t.push_back(std::move(s));
        }
        {
            // ONT-like: longer, noisier; Location Voting has to dig
            // the start position out of mostly-dirty segments.
            ScenarioSpec s;
            s.name = "long_ont";
            s.kind = ScenarioKind::kLongRead;
            s.note = "ONT-like ~12 kb reads at 4% error";
            s.genomeLen = 400000;
            s.errorRate = 0.04;
            s.reads = 80;
            s.longMeanLen = 12000;
            s.longSdLen = 4000;
            s.evalTolerance = 300;
            s.seed = 43;
            t.push_back(std::move(s));
        }
        {
            // 10% foreign reads over a 4-shard mmap image: per-species
            // attribution pins the cross-mapping bleed.
            ScenarioSpec s;
            s.name = "contam_mix10";
            s.kind = ScenarioKind::kContamination;
            s.note = "10% contaminant reads, 4-shard mmap image";
            s.genomeLen = 300000;
            s.contaminantGenomeLen = 100000;
            s.contaminantFrac = 0.10;
            s.imageShards = 4;
            s.reads = 3000;
            s.seed = 47;
            t.push_back(std::move(s));
        }
        {
            // Even mix over 8 shards: the stress version.
            ScenarioSpec s;
            s.name = "contam_even";
            s.kind = ScenarioKind::kContamination;
            s.note = "50/50 species mix, 8-shard mmap image";
            s.genomeLen = 200000;
            s.contaminantGenomeLen = 200000;
            s.contaminantFrac = 0.50;
            s.imageShards = 8;
            s.reads = 3000;
            s.seed = 53;
            t.push_back(std::move(s));
        }
        {
            // Gzip end to end: inflate -> chunker -> parsers -> mapper
            // -> SAM must be byte-identical to the plain-text run.
            ScenarioSpec s;
            s.name = "gzip_ingest";
            s.kind = ScenarioKind::kGzipIngest;
            s.note = "gzip FASTQ through the spine, bit-identical SAM";
            s.genomeLen = 200000;
            s.reads = 2500;
            s.seed = 59;
            t.push_back(std::move(s));
        }
        {
            // Mid-record truncation must reject with a diagnostic.
            ScenarioSpec s;
            s.name = "trunc_reject";
            s.kind = ScenarioKind::kTruncatedIngest;
            s.note = "truncated R2 rejects with the serial diagnostic";
            s.genomeLen = 100000;
            s.reads = 400;
            s.seed = 61;
            t.push_back(std::move(s));
        }
        return t;
    }();
    return kTable;
}

const ScenarioSpec *
findScenario(const std::string &name)
{
    for (const auto &spec : scenarioTable())
        if (spec.name == name)
            return &spec;
    return nullptr;
}

ScenarioResult
runScenario(const ScenarioSpec &spec, const ScenarioOptions &options)
{
    ScenarioResult result;
    switch (spec.kind) {
      case ScenarioKind::kShortRead:
        result = runShortRead(spec, options);
        break;
      case ScenarioKind::kLongRead:
        result = runLongRead(spec, options);
        break;
      case ScenarioKind::kContamination:
        result = runContamination(spec, options);
        break;
      case ScenarioKind::kGzipIngest:
        result = runGzipIngest(spec, options);
        break;
      case ScenarioKind::kTruncatedIngest:
        result = runTruncatedIngest(spec, options);
        break;
    }
    result.name = spec.name;
    result.kind = spec.kind;
    if (result.ambiguousBases == 0)
        result.ambiguousBases = result.stats.ambiguousBases;
    return result;
}

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

} // namespace

void
writeScenariosJson(std::ostream &os,
                   const std::vector<ScenarioResult> &rows, double scale,
                   u32 threads)
{
    os << std::setprecision(10);
    os << "{\n"
       << "  \"bench\": \"scenarios\",\n"
       << "  \"format\": 1,\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"host_threads\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ScenarioResult &r = rows[i];
        os << "    {\"name\": \"" << jsonEscape(r.name) << "\","
           << " \"kind\": \"" << kindName(r.kind) << "\",\n"
           << "     \"skipped\": " << (r.skipped ? "true" : "false")
           << ", \"skip_reason\": \"" << jsonEscape(r.skipReason)
           << "\",\n"
           << "     \"rejected\": " << (r.rejected ? "true" : "false")
           << ", \"reject_diagnostic\": \""
           << jsonEscape(r.rejectDiagnostic) << "\",\n"
           << "     \"reads\": " << r.reads << ", \"mapped\": "
           << r.mapped << ", \"correct\": " << r.correct
           << ", \"accuracy\": " << r.accuracy << ",\n"
           << "     \"snp_f1\": " << r.snpF1 << ", \"indel_f1\": "
           << r.indelF1 << ",\n"
           << "     \"reads_per_s\": " << r.readsPerSec
           << ", \"map_seconds\": " << r.mapSeconds << ",\n"
           << "     \"ambiguous_bases\": " << r.ambiguousBases
           << ", \"shard_count\": " << r.shardCount
           << ", \"sam_matches_plain\": "
           << (r.samMatchesPlain ? "true" : "false") << ",\n"
           << "     \"attribution\": [";
        for (std::size_t a = 0; a < r.attribution.size(); ++a) {
            const eval::RegionAccuracy &region = r.attribution[a];
            os << (a ? ", " : "") << "{\"label\": \""
               << jsonEscape(region.label) << "\", \"reads\": "
               << region.readsTotal << ", \"mapped\": " << region.mapped
               << ", \"correct\": " << region.correct
               << ", \"cross_mapped\": " << region.crossMapped
               << ", \"cross_fraction\": " << region.crossFraction()
               << "}";
        }
        os << "],\n"
           << "     \"counters\": {\"light_aligned\": "
           << r.stats.lightAligned
           << ", \"dp_aligned\": " << r.stats.dpAligned
           << ", \"seed_miss_fallback\": " << r.stats.seedMissFallback
           << ", \"pa_filter_fallback\": " << r.stats.paFilterFallback
           << ", \"full_dp_mapped\": " << r.stats.fullDpMapped
           << ", \"unmapped\": " << r.stats.unmapped
           << ", \"pseudo_pairs\": " << r.longStats.pseudoPairs
           << ", \"votes\": " << r.longStats.votes
           << ", \"dp_cells\": " << r.longStats.dpCells << "}}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace scenario
} // namespace gpx
