/**
 * @file
 * The scenario wall: named end-to-end workloads pinning accuracy.
 *
 * PRs 3-8 made the mapper faster layer by layer; nothing stopped a
 * kernel or stage-graph change from quietly trading mapping accuracy
 * or variant F1 away. This module turns the simdata + eval pieces into
 * a declarative accuracy contract: a table of named scenarios — the
 * short-read baseline with planted variants, Mason-style error sweeps,
 * ONT-like long reads through the parallel LongReadDriver, mixed-
 * species contamination served from a multi-shard mmap SeedMap image,
 * and gzip/truncated ingest variants — each running its full
 * simulate -> index -> map -> evaluate path and emitting one format:1
 * JSON row. `scripts/check_scenarios.py` gates CI against the floors
 * checked in as BENCH_scenarios.json.
 *
 * Everything is seeded (util::Pcg32) and mapping is bit-identical
 * across thread counts and drivers, so the accuracy numbers — unlike
 * the throughput numbers, which are informational — are exact
 * machine-independent constants at a given scale.
 */

#ifndef GPX_SCENARIO_SCENARIO_HH
#define GPX_SCENARIO_SCENARIO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "eval/mapping_eval.hh"
#include "genpair/longread.hh"
#include "genpair/pipeline.hh"

namespace gpx {
namespace scenario {

/** Workload families of the wall. */
enum class ScenarioKind
{
    kShortRead,       ///< paired 150 bp through ParallelMapper
    kLongRead,        ///< long reads through the parallel LongReadDriver
    kContamination,   ///< two-species mix over a multi-shard mmap image
    kGzipIngest,      ///< gzip FASTQ through the streaming spine
    kTruncatedIngest, ///< mid-record truncation must reject, not crash
};

/** Human-readable kind name (JSON `kind` field). */
const char *kindName(ScenarioKind kind);

/** One named scenario: the full recipe, sized for a Release CI run. */
struct ScenarioSpec
{
    std::string name;
    ScenarioKind kind = ScenarioKind::kShortRead;
    std::string note; ///< one-line description (--list, EXPERIMENTS.md)

    u64 genomeLen = 1 << 19; ///< host genome bases (before scaling)
    u32 chromosomes = 2;
    u64 seed = 23; ///< base seed; genome/variants/reads derive from it

    /**
     * Total per-base error rate for ErrorProfile::uniform(); negative
     * selects the default per-fragment quality mixture (the paper's
     * GIAB-like profile).
     */
    double errorRate = -1.0;

    /**
     * Plant SNPs/INDELs (VariantParams defaults) and run the
     * pileup -> VCF round trip -> variant_bench leg; reads are then
     * sized by @ref coverage instead of @ref reads.
     */
    bool plantVariants = false;
    double coverage = 25.0; ///< target depth when plantVariants

    u64 reads = 4000; ///< pairs (short kinds) or reads (long kind)

    double longMeanLen = 9000.0; ///< long-read length distribution
    double longSdLen = 2500.0;

    double contaminantFrac = 0.0; ///< fraction of reads from species B
    u64 contaminantGenomeLen = 0; ///< species B genome bases
    u32 imageShards = 1; ///< v2 image shards (contamination: > 1)

    u64 evalTolerance = 50; ///< mapping_eval position tolerance (bases)
};

/** Runtime knobs (never part of the accuracy contract). */
struct ScenarioOptions
{
    /**
     * Multiplies genome length and read count. Floors in
     * BENCH_scenarios.json are recorded at scale 1; tests run reduced
     * scales through the library.
     */
    double scale = 1.0;
    u32 threads = 0;    ///< mapper threads (0 = hardware)
    u32 ioThreads = 2;  ///< parser threads of the streaming spine
    u64 chunkPairs = 1024;
    /**
     * Directory for the scenario's scratch files (the contamination
     * image); empty = current directory. Files are removed afterwards.
     */
    std::string workDir;
};

/** One JSON row of the wall. */
struct ScenarioResult
{
    std::string name;
    ScenarioKind kind = ScenarioKind::kShortRead;

    bool skipped = false; ///< environment cannot run it (e.g. no zlib)
    std::string skipReason;

    bool rejected = false; ///< ingest rejected the input (by design)
    std::string rejectDiagnostic;

    u64 reads = 0; ///< evaluated reads (2x pairs for paired kinds)
    u64 mapped = 0;
    u64 correct = 0;
    double accuracy = 0; ///< correct / reads (mapping_eval recall)

    double snpF1 = -1;   ///< variant leg only; -1 = not run
    double indelF1 = -1;

    double readsPerSec = 0; ///< informational (machine-dependent)
    double mapSeconds = 0;

    u64 ambiguousBases = 0; ///< ingest accounting (streaming kinds)
    u32 shardCount = 1;     ///< mounted image shards (contamination)

    /**
     * Gzip kind only: the gzip run's SAM bytes equal the plain-text
     * run's (the spine's bit-identity contract extended to inflate).
     */
    bool samMatchesPlain = true;

    genpair::PipelineStats stats;       ///< short-read kinds
    genpair::LongReadStats longStats;   ///< long-read kind

    /** Per-species attribution (contamination kind). */
    std::vector<eval::RegionAccuracy> attribution;
};

/** The wall: every pinned scenario, in gating order. */
const std::vector<ScenarioSpec> &scenarioTable();

/** Look up a scenario by name; nullptr when unknown. */
const ScenarioSpec *findScenario(const std::string &name);

/** Run one scenario end to end. */
ScenarioResult runScenario(const ScenarioSpec &spec,
                           const ScenarioOptions &options = {});

/**
 * Emit the format:1 scenarios document consumed by
 * scripts/check_scenarios.py:
 *   {"bench": "scenarios", "format": 1, "scale": ..,
 *    "host_threads": .., "scenarios": [row, ..]}
 */
void writeScenariosJson(std::ostream &os,
                        const std::vector<ScenarioResult> &rows,
                        double scale, u32 threads);

} // namespace scenario
} // namespace gpx

#endif // GPX_SCENARIO_SCENARIO_HH
