/**
 * @file
 * SeedMap serialization.
 *
 * The paper's offline stage builds SeedMap "only once for a given
 * reference genome" and reuses it across read sets (§4.2). These
 * routines persist the index to a compact binary image so production
 * deployments pay construction once; the format stores the Seed and
 * Location tables verbatim (the same layout the NMSL's memory channels
 * consume).
 */

#ifndef GPX_GENPAIR_SEEDMAP_IO_HH
#define GPX_GENPAIR_SEEDMAP_IO_HH

#include <iosfwd>
#include <optional>

#include "genpair/seedmap.hh"

namespace gpx {
namespace genpair {

/** Binary image header. */
struct SeedMapImageHeader
{
    static constexpr u32 kMagic = 0x53504758; // "GPXS"
    static constexpr u32 kVersion = 1;

    u32 magic = kMagic;
    u32 version = kVersion;
    u32 seedLen = 0;
    u32 tableBits = 0;
    u32 filterThreshold = 0;
    u64 seedTableEntries = 0;
    u64 locationEntries = 0;
    /** xxh64 of the location table payload, for corruption detection. */
    u64 payloadChecksum = 0;
};

/** Serialize a SeedMap to a binary stream. */
void saveSeedMap(std::ostream &os, const SeedMap &map);

/**
 * Deserialize; returns std::nullopt on magic/version/checksum mismatch
 * (a truncated or corrupt image must never be silently accepted).
 */
std::optional<SeedMap> loadSeedMap(std::istream &is);

} // namespace genpair
} // namespace gpx

#endif // GPX_GENPAIR_SEEDMAP_IO_HH
