/**
 * @file
 * SeedMap serialization: the legacy v1 stream image and the
 * memory-mappable sharded v2 image.
 *
 * The paper's offline stage builds SeedMap "only once for a given
 * reference genome" and reuses it across read sets (§4.2). v1 persisted
 * the two tables as a stream that every gpx_map start re-deserialized
 * through a full copy. The v2 format is designed to be used *in place*:
 *
 *   [header, 64 B]
 *   [shard directory, shardCount x 64 B]
 *   [shard 0 Seed Table]   (64-byte aligned, zero-padded)
 *   [shard 0 Location Table]
 *   [shard 1 Seed Table] ...
 *
 * Every section starts on a 64-byte boundary (cache-line- and
 * direct-I/O-friendly) and carries an xxh64 checksum recorded in the
 * header/directory. A shard covers a contiguous power-of-two range of
 * masked seed-hash values; its Seed Table is a local CSR over its own
 * Location Table slice, so a SeedMapImage can serve queries straight
 * from kernel-shared mapped pages with zero deserialization, and a
 * future multi-reference deployment can mount shards from several
 * images under one directory.
 */

#ifndef GPX_GENPAIR_SEEDMAP_IO_HH
#define GPX_GENPAIR_SEEDMAP_IO_HH

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "genpair/seedmap.hh"
#include "util/mapped_file.hh"

namespace gpx {
namespace genpair {

/** Legacy v1 binary image header (kept bit-compatible with old images). */
struct SeedMapImageHeader
{
    static constexpr u32 kMagic = 0x53504758; // "GPXS"
    static constexpr u32 kVersion = 1;

    u32 magic = kMagic;
    u32 version = kVersion;
    u32 seedLen = 0;
    u32 tableBits = 0;
    u32 filterThreshold = 0;
    u64 seedTableEntries = 0;
    u64 locationEntries = 0;
    /** xxh64 of the location table payload, for corruption detection. */
    u64 payloadChecksum = 0;
};

/** Section alignment of the v2 image (cache line / DMA burst). */
inline constexpr u64 kSeedMapSectionAlign = 64;

/** v2 image header: exactly one 64-byte aligned section. */
struct SeedMapImageHeaderV2
{
    static constexpr u32 kVersion = 2;

    u32 magic = SeedMapImageHeader::kMagic;
    u32 version = kVersion;
    u32 seedLen = 0;
    u32 tableBits = 0;
    u32 filterThreshold = 0;
    u32 shardCount = 0; ///< power of two, <= 2^tableBits
    u64 fileBytes = 0;  ///< total image size, for truncation detection
    u64 directoryOffset = 0; ///< byte offset of the shard directory
    u64 directoryChecksum = 0; ///< xxh64 of the directory section
    u64 reserved = 0;
    /** xxh64 of the preceding 56 header bytes. */
    u64 headerChecksum = 0;
};
static_assert(sizeof(SeedMapImageHeaderV2) == kSeedMapSectionAlign);

/** One v2 shard directory entry (one 64-byte aligned slot each). */
struct SeedMapShardDirEntry
{
    u64 hashCount = 0;        ///< masked-hash values this shard covers
    u64 seedTableOffset = 0;  ///< byte offset, 64-byte aligned
    u64 seedTableEntries = 0; ///< hashCount + 1 local CSR offsets
    u64 seedTableChecksum = 0;
    u64 locationOffset = 0; ///< byte offset, 64-byte aligned
    u64 locationEntries = 0;
    u64 locationChecksum = 0;
    u64 reserved = 0;
};
static_assert(sizeof(SeedMapShardDirEntry) == kSeedMapSectionAlign);

/** Serialize a SeedMap to a v1 binary stream (legacy format). */
void saveSeedMap(std::ostream &os, const SeedMap &map);

/**
 * Serialize a SeedMap as a v2 image with @p shards hash-range shards
 * (rounded up to a power of two and clamped to the Seed Table size;
 * pass 1 for a single-shard image).
 */
void saveSeedMapV2(std::ostream &os, const SeedMap &map, u32 shards = 1);

/**
 * Deserialize a v1 or v2 image through the owning copy path; returns
 * std::nullopt on magic/version/bounds/checksum mismatch (a truncated
 * or corrupt image must never be silently accepted) and, when @p error
 * is non-null, a human-readable diagnostic of what was rejected.
 */
std::optional<SeedMap> loadSeedMap(std::istream &is,
                                   std::string *error = nullptr);

/** Options for SeedMapImage::open. */
struct SeedMapOpenOptions
{
    /**
     * Verify the per-shard Seed/Location Table checksums at open time.
     * Costs one sequential read of the image's pages; disable for
     * latency-critical restarts of already-trusted images (the header
     * and directory are always verified).
     */
    bool verifyPayload = true;
    /** Force the owning copy path even for v2 images (debugging). */
    bool forceCopy = false;
};

/**
 * An opened SeedMap image. For v2 images the tables are served straight
 * from a read-only memory mapping — zero-copy, demand-paged and
 * kernel-shared across every process mapping the same file. v1 images
 * fall back to the legacy owning copy path, so callers can open any
 * image generation through this one interface.
 */
class SeedMapImage
{
  public:
    /**
     * Open @p path, validating the header, directory and (by default)
     * payload checksums. Returns std::nullopt with a diagnostic in
     * @p error on any validation failure.
     */
    static std::optional<SeedMapImage>
    open(const std::string &path, const SeedMapOpenOptions &options = {},
         std::string *error = nullptr);

    /**
     * Query view over the image. Valid as long as this SeedMapImage is
     * alive and unmoved-from; hand it to the drivers by value.
     */
    SeedMapView
    view() const
    {
        if (owned_)
            return owned_->view();
        return { params_, tableBits_, shards_ };
    }

    /** True when serving from the mapping (v2), false on the copy path. */
    bool mmapBacked() const { return owned_ == nullptr; }
    u32
    shardCount() const
    {
        return owned_ ? 1u : static_cast<u32>(shards_.size());
    }
    u32 tableBits() const { return tableBits_; }
    const SeedMapParams &params() const { return params_; }
    /** On-disk image size in bytes (0 on the v1 copy path). */
    u64 imageBytes() const { return file_.size(); }

  private:
    SeedMapImage() = default;

    util::MappedFile file_;
    std::vector<SeedMapShardView> shards_; ///< spans into file_
    SeedMapParams params_;
    u32 tableBits_ = 0;
    std::unique_ptr<SeedMap> owned_; ///< v1 legacy copy path
};

} // namespace genpair
} // namespace gpx

#endif // GPX_GENPAIR_SEEDMAP_IO_HH
