/**
 * @file
 * MapperEngine: the single driver core behind every host mapping
 * driver.
 *
 * ParallelMapper, StreamingMapper and LongReadDriver used to each own a
 * copy of the same orchestration — spawn workers, partition the input,
 * merge per-worker statistics, time the run. The engine owns all of it
 * exactly once: a persistent worker pool (per-worker contexts built
 * once at start-up, on the worker's own thread), an atomic block
 * cursor for load balance, and the RunTiming measurement. Drivers are
 * thin configuration layers: they provide a context factory (their
 * per-worker engines) and a block-mapping function, and the engine
 * guarantees that item i of a job is mapped exactly once, by exactly
 * one context — results landing at input index keep output
 * bit-identical to a serial run regardless of scheduling.
 */

#ifndef GPX_GENPAIR_ENGINE_HH
#define GPX_GENPAIR_ENGINE_HH

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/types.hh"

namespace gpx {
namespace genpair {

/**
 * Wall-time accounting of one driver run, filled by MapperEngine (the
 * one place that times mapping). Replaces the hand-rolled
 * seconds/pairsPerSec/mapSeconds fields every driver result used to
 * duplicate. One-time pool costs (thread spawn, per-worker engine
 * construction) are paid at engine start-up and never charged here, so
 * itemsPerSec is comparable across chunk sizes.
 */
struct RunTiming
{
    double seconds = 0;
    double itemsPerSec = 0; ///< read pairs (or long reads) per second

    /** Timing of @p items of work done in @p secs wall seconds. */
    static RunTiming
    of(u64 items, double secs)
    {
        RunTiming t;
        t.seconds = secs;
        t.itemsPerSec =
            secs > 0 ? static_cast<double>(items) / secs : 0;
        return t;
    }

    /** Throughput in Mbp/s for paired-end reads of @p read_len. */
    double
    mbpsFor(u32 read_len) const
    {
        return itemsPerSec * 2.0 * read_len / 1e6;
    }
};

/**
 * Base class of a driver's per-worker state (mapping engines, gates,
 * scratch). Built once per worker at pool start-up and reused across
 * every run() call.
 */
class WorkerContext
{
  public:
    virtual ~WorkerContext() = default;
};

/**
 * The persistent worker pool + block cursor. Not itself thread-safe:
 * one run() at a time (the workers inside it are the parallelism).
 * forEachContext() must only be called while no run() is in flight.
 */
class MapperEngine
{
  public:
    /** Builds one worker's context; called on that worker's thread,
     *  concurrently with the other workers' factories. */
    using ContextFactory =
        std::function<std::unique_ptr<WorkerContext>(u32 slot)>;

    /** Maps items [begin, end) of the current job with @p context. */
    using BlockFn =
        std::function<void(WorkerContext &context, u64 begin, u64 end)>;

    /**
     * @param threads Worker count; 0 = hardware concurrency.
     * @param factory Per-worker context builder.
     * @param block_items Items a worker claims per cursor grab (the
     *        load-balance grain and the stage-graph batch size).
     */
    MapperEngine(u32 threads, ContextFactory factory,
                 u64 block_items = kDefaultBlockItems);
    ~MapperEngine();

    MapperEngine(const MapperEngine &) = delete;
    MapperEngine &operator=(const MapperEngine &) = delete;

    /**
     * Run @p fn over all blocks of [0, items) and return the measured
     * timing. Blocks are pulled off a shared atomic cursor; every item
     * is processed exactly once.
     */
    RunTiming run(u64 items, const BlockFn &fn);

    /**
     * Thread-safe job submission: like run(), but callable from any
     * thread, concurrently. Concurrent submitters are serialized in
     * arrival order (one job owns the whole pool at a time — the
     * workers inside a job are the parallelism), which is exactly the
     * admission discipline a resident server wants: a request's batch
     * runs on every core, requests queue behind each other. The
     * returned timing covers only this job's pool occupancy, not the
     * time spent waiting behind other submitters.
     */
    RunTiming submit(u64 items, const BlockFn &fn);

    /**
     * Visit every worker context from the calling thread (stats reset
     * before a run, stats merge after). Engine must be idle.
     */
    void forEachContext(const std::function<void(WorkerContext &)> &fn);

    u32 threads() const { return threads_; }
    u64 blockItems() const { return blockItems_; }

    /** Default load-balance grain (= the SoA batch size). */
    static constexpr u64 kDefaultBlockItems = 64;

  private:
    void workerLoop(u32 slot, const ContextFactory &factory);

    u32 threads_;
    u64 blockItems_;

    /** Serializes submit() callers; run() callers never take it. */
    std::mutex submitMu_;

    // Job hand-off: run() publishes the job under mu_, bumps jobSeq_
    // and wakes the pool; workers race the shared cursor and the last
    // one out signals completion.
    std::mutex mu_;
    std::condition_variable jobReady_;
    std::condition_variable jobDone_;
    u64 jobSeq_ = 0;
    u32 workersReady_ = 0;
    u32 workersLeft_ = 0;
    bool shutdown_ = false;
    u64 jobItems_ = 0;
    const BlockFn *jobFn_ = nullptr;
    std::atomic<u64> cursor_{ 0 };
    std::vector<std::unique_ptr<WorkerContext>> contexts_;
    std::vector<std::thread> workers_;
};

} // namespace genpair
} // namespace gpx

#endif // GPX_GENPAIR_ENGINE_HH
