#include "genpair/seedmap_io.hh"

#include <istream>
#include <ostream>

#include "util/logging.hh"
#include "util/xxhash.hh"

namespace gpx {
namespace genpair {

void
saveSeedMap(std::ostream &os, const SeedMap &map)
{
    SeedMapImageHeader hdr;
    hdr.seedLen = map.params().seedLen;
    hdr.tableBits = map.tableBits();
    hdr.filterThreshold = map.params().filterThreshold;
    hdr.seedTableEntries = map.rawSeedTable().size();
    hdr.locationEntries = map.rawLocationTable().size();
    hdr.payloadChecksum = util::xxh64(
        map.rawLocationTable().data(),
        map.rawLocationTable().size() * sizeof(u32));

    os.write(reinterpret_cast<const char *>(&hdr), sizeof(hdr));
    os.write(reinterpret_cast<const char *>(map.rawSeedTable().data()),
             static_cast<std::streamsize>(hdr.seedTableEntries *
                                          sizeof(u32)));
    os.write(
        reinterpret_cast<const char *>(map.rawLocationTable().data()),
        static_cast<std::streamsize>(hdr.locationEntries * sizeof(u32)));
}

std::optional<SeedMap>
loadSeedMap(std::istream &is)
{
    SeedMapImageHeader hdr;
    is.read(reinterpret_cast<char *>(&hdr), sizeof(hdr));
    if (!is || hdr.magic != SeedMapImageHeader::kMagic ||
        hdr.version != SeedMapImageHeader::kVersion) {
        return std::nullopt;
    }
    if (hdr.tableBits > 30 ||
        hdr.seedTableEntries != (u64{1} << hdr.tableBits) + 1) {
        return std::nullopt;
    }

    std::vector<u32> seedTable(hdr.seedTableEntries);
    is.read(reinterpret_cast<char *>(seedTable.data()),
            static_cast<std::streamsize>(hdr.seedTableEntries *
                                         sizeof(u32)));
    std::vector<u32> locationTable(hdr.locationEntries);
    is.read(reinterpret_cast<char *>(locationTable.data()),
            static_cast<std::streamsize>(hdr.locationEntries *
                                         sizeof(u32)));
    if (!is)
        return std::nullopt;

    u64 checksum = util::xxh64(locationTable.data(),
                               locationTable.size() * sizeof(u32));
    if (checksum != hdr.payloadChecksum)
        return std::nullopt;
    if (seedTable.back() != locationTable.size())
        return std::nullopt;

    SeedMapParams params;
    params.seedLen = hdr.seedLen;
    params.tableBits = hdr.tableBits;
    params.filterThreshold = hdr.filterThreshold;
    return SeedMap::fromTables(params, hdr.tableBits,
                               std::move(seedTable),
                               std::move(locationTable));
}

} // namespace genpair
} // namespace gpx
