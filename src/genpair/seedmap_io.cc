#include "genpair/seedmap_io.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/fault.hh"
#include "util/logging.hh"
#include "util/sigbus_guard.hh"
#include "util/xxhash.hh"

namespace gpx {
namespace genpair {

namespace {

void
setError(std::string *error, const std::string &msg)
{
    if (error != nullptr)
        *error = "seedmap image: " + msg;
}

u64
alignUp(u64 value)
{
    return (value + kSeedMapSectionAlign - 1) &
           ~(kSeedMapSectionAlign - 1);
}

void
writePadding(std::ostream &os, u64 written)
{
    static const char zeros[kSeedMapSectionAlign] = {};
    u64 pad = alignUp(written) - written;
    if (pad > 0)
        os.write(zeros, static_cast<std::streamsize>(pad));
}

/** Parsed v2 image: shard views into caller-owned bytes. */
struct ParsedV2
{
    SeedMapParams params;
    u32 tableBits = 0;
    std::vector<SeedMapShardView> shards;
};

/**
 * Validate a v2 image held in memory and carve the shard views out of
 * it. @p data must stay alive as long as the returned views. Rejects —
 * with a diagnostic — any header/directory/bounds/checksum violation;
 * the fuzz suite drives every branch here.
 */
std::optional<ParsedV2>
parseV2Image(const u8 *data, u64 size, const SeedMapOpenOptions &options,
             std::string *error)
{
    SeedMapImageHeaderV2 hdr;
    if (size < sizeof(hdr)) {
        setError(error, "truncated before the v2 header (" +
                            std::to_string(size) + " bytes)");
        return std::nullopt;
    }
    std::memcpy(&hdr, data, sizeof(hdr));
    if (hdr.magic != SeedMapImageHeader::kMagic ||
        hdr.version != SeedMapImageHeaderV2::kVersion) {
        setError(error, "bad magic/version for a v2 image");
        return std::nullopt;
    }
    u64 wantHeaderSum = util::xxh64(data, sizeof(hdr) - sizeof(u64));
    if (hdr.headerChecksum != wantHeaderSum) {
        setError(error, "header checksum mismatch");
        return std::nullopt;
    }
    if (hdr.fileBytes != size) {
        setError(error, "file size " + std::to_string(size) +
                            " does not match header fileBytes " +
                            std::to_string(hdr.fileBytes));
        return std::nullopt;
    }
    if (hdr.seedLen < 8 || hdr.seedLen > kMaxSeedLen) {
        setError(error,
                 "unsupported seed length " + std::to_string(hdr.seedLen));
        return std::nullopt;
    }
    if (hdr.tableBits == 0 || hdr.tableBits > 30) {
        setError(error,
                 "table bits out of range: " + std::to_string(hdr.tableBits));
        return std::nullopt;
    }
    const u64 tableEntries = u64{ 1 } << hdr.tableBits;
    if (hdr.shardCount == 0 || !std::has_single_bit(hdr.shardCount) ||
        hdr.shardCount > tableEntries) {
        setError(error, "shard count must be a power of two in [1, 2^" +
                            std::to_string(hdr.tableBits) + "], got " +
                            std::to_string(hdr.shardCount));
        return std::nullopt;
    }
    const u64 dirBytes = u64{ hdr.shardCount } * sizeof(SeedMapShardDirEntry);
    if (hdr.directoryOffset % kSeedMapSectionAlign != 0 ||
        hdr.directoryOffset < sizeof(hdr) ||
        hdr.directoryOffset > size || dirBytes > size - hdr.directoryOffset) {
        setError(error, "shard directory out of bounds");
        return std::nullopt;
    }
    u64 wantDirSum = util::xxh64(data + hdr.directoryOffset, dirBytes);
    if (hdr.directoryChecksum != wantDirSum) {
        setError(error, "shard directory checksum mismatch");
        return std::nullopt;
    }

    ParsedV2 out;
    out.params.seedLen = hdr.seedLen;
    out.params.tableBits = hdr.tableBits;
    out.params.filterThreshold = hdr.filterThreshold;
    out.tableBits = hdr.tableBits;
    out.shards.reserve(hdr.shardCount);

    const u64 hashPerShard = tableEntries / hdr.shardCount;
    for (u32 s = 0; s < hdr.shardCount; ++s) {
        SeedMapShardDirEntry ent;
        std::memcpy(&ent,
                    data + hdr.directoryOffset +
                        u64{ s } * sizeof(SeedMapShardDirEntry),
                    sizeof(ent));
        const std::string where = "shard " + std::to_string(s) + ": ";
        if (ent.hashCount != hashPerShard) {
            setError(error, where + "hash range " +
                                std::to_string(ent.hashCount) +
                                " does not partition the seed table (want " +
                                std::to_string(hashPerShard) + ")");
            return std::nullopt;
        }
        if (ent.seedTableEntries != ent.hashCount + 1) {
            setError(error, where + "seed table entry count " +
                                std::to_string(ent.seedTableEntries) +
                                " is not hashCount+1");
            return std::nullopt;
        }
        if (ent.locationEntries > (u64{ 1 } << 32)) {
            setError(error, where + "location entry count overflows the "
                                    "32-bit location space");
            return std::nullopt;
        }
        const u64 seedBytes = ent.seedTableEntries * sizeof(u32);
        const u64 locBytes = ent.locationEntries * sizeof(u32);
        if (ent.seedTableOffset % kSeedMapSectionAlign != 0 ||
            ent.seedTableOffset > size || seedBytes > size - ent.seedTableOffset) {
            setError(error, where + "seed table section out of bounds");
            return std::nullopt;
        }
        if (ent.locationOffset % kSeedMapSectionAlign != 0 ||
            ent.locationOffset > size || locBytes > size - ent.locationOffset) {
            setError(error, where + "location section out of bounds");
            return std::nullopt;
        }
        const u32 *seedTable =
            reinterpret_cast<const u32 *>(data + ent.seedTableOffset);
        const u32 *locations =
            reinterpret_cast<const u32 *>(data + ent.locationOffset);
        if (options.verifyPayload) {
            if (util::xxh64(seedTable, seedBytes) != ent.seedTableChecksum) {
                setError(error, where + "seed table checksum mismatch");
                return std::nullopt;
            }
            if (util::xxh64(locations, locBytes) != ent.locationChecksum) {
                setError(error, where + "location table checksum mismatch");
                return std::nullopt;
            }
        }
        // Structural invariants of the local CSR that lookups rely on.
        // These are NOT optional alongside the checksums: a checksum
        // only proves the bytes are the author's, not that the author's
        // CSR is sane, and lookup() turns any non-monotone entry into
        // an out-of-bounds span. Monotonicity plus the endpoint checks
        // bound every interior entry to [0, locationEntries].
        if (seedTable[0] != 0 ||
            seedTable[ent.seedTableEntries - 1] != ent.locationEntries) {
            setError(error, where + "local CSR does not cover the "
                                    "location slice");
            return std::nullopt;
        }
        // Branchless block scan (vectorizes); damaged images are the
        // rare case, so locate the offending entry only on failure.
        bool monotone = true;
        for (u64 i = 0; i + 1 < ent.seedTableEntries;) {
            u64 end = std::min<u64>(ent.seedTableEntries - 1, i + 4096);
            u32 bad = 0;
            for (; i < end; ++i)
                bad |= static_cast<u32>(seedTable[i] > seedTable[i + 1]);
            if (bad != 0) {
                monotone = false;
                break;
            }
        }
        if (!monotone) {
            setError(error, where + "local CSR is not monotone");
            return std::nullopt;
        }
        out.shards.push_back(
            { { seedTable, ent.seedTableEntries },
              { locations, ent.locationEntries } });
    }
    // The global CSR rebuilt from these shards stores 32-bit offsets;
    // a crafted directory whose slices sum past that wraps the rebase.
    u64 totalLocations = 0;
    for (const auto &sh : out.shards)
        totalLocations += sh.locations.size();
    if (totalLocations > u64{ 0xFFFFFFFF }) {
        setError(error, "total location count " +
                            std::to_string(totalLocations) +
                            " overflows the 32-bit offset space");
        return std::nullopt;
    }
    return out;
}

/** Reassemble an owning SeedMap from parsed v2 shards (the copy path). */
SeedMap
materializeV2(const ParsedV2 &parsed)
{
    const u64 tableEntries = u64{ 1 } << parsed.tableBits;
    std::vector<u32> seedTable;
    seedTable.reserve(tableEntries + 1);
    std::vector<u32> locations;
    u64 total = 0;
    for (const auto &sh : parsed.shards)
        total += sh.locations.size();
    locations.reserve(total);
    u32 base = 0;
    for (const auto &sh : parsed.shards) {
        // Drop each shard's trailing sentinel: the next shard's first
        // local offset (0) rebased by the accumulated count continues
        // the global CSR exactly where this shard ended.
        for (std::size_t i = 0; i + 1 < sh.seedTable.size(); ++i)
            seedTable.push_back(base + sh.seedTable[i]);
        locations.insert(locations.end(), sh.locations.begin(),
                         sh.locations.end());
        base += static_cast<u32>(sh.locations.size());
    }
    seedTable.push_back(base);
    return SeedMap::fromTables(parsed.params, parsed.tableBits,
                               std::move(seedTable), std::move(locations));
}

std::optional<SeedMap>
loadSeedMapV1Body(std::istream &is, const SeedMapImageHeader &hdr,
                  std::string *error)
{
    if (hdr.tableBits > 30 ||
        hdr.seedTableEntries != (u64{ 1 } << hdr.tableBits) + 1) {
        setError(error, "v1 seed table size does not match table bits");
        return std::nullopt;
    }
    if (hdr.locationEntries > (u64{ 1 } << 32)) {
        // Bound the allocation before trusting a header the v1 format
        // never checksummed.
        setError(error, "v1 location entry count overflows the 32-bit "
                        "location space");
        return std::nullopt;
    }

    std::vector<u32> seedTable(hdr.seedTableEntries);
    is.read(reinterpret_cast<char *>(seedTable.data()),
            static_cast<std::streamsize>(hdr.seedTableEntries *
                                         sizeof(u32)));
    std::vector<u32> locationTable(hdr.locationEntries);
    is.read(reinterpret_cast<char *>(locationTable.data()),
            static_cast<std::streamsize>(hdr.locationEntries *
                                         sizeof(u32)));
    if (!is) {
        setError(error, "v1 image truncated mid-table");
        return std::nullopt;
    }

    u64 checksum = util::xxh64(locationTable.data(),
                               locationTable.size() * sizeof(u32));
    if (checksum != hdr.payloadChecksum) {
        setError(error, "v1 payload checksum mismatch");
        return std::nullopt;
    }
    if (seedTable.front() != 0 ||
        seedTable.back() != locationTable.size()) {
        setError(error, "v1 seed table does not cover the location table");
        return std::nullopt;
    }
    // The v1 format never checksummed the seed table, so structural
    // validation is the only line of defense: a non-monotone entry
    // would turn lookup() into an out-of-bounds span (same contract as
    // the v2 parser).
    for (std::size_t i = 0; i + 1 < seedTable.size(); ++i) {
        if (seedTable[i] > seedTable[i + 1]) {
            setError(error, "v1 seed table CSR is not monotone");
            return std::nullopt;
        }
    }

    SeedMapParams params;
    params.seedLen = hdr.seedLen;
    params.tableBits = hdr.tableBits;
    params.filterThreshold = hdr.filterThreshold;
    return SeedMap::fromTables(params, hdr.tableBits,
                               std::move(seedTable),
                               std::move(locationTable));
}

} // namespace

void
saveSeedMap(std::ostream &os, const SeedMap &map)
{
    SeedMapImageHeader hdr;
    hdr.seedLen = map.params().seedLen;
    hdr.tableBits = map.tableBits();
    hdr.filterThreshold = map.params().filterThreshold;
    hdr.seedTableEntries = map.rawSeedTable().size();
    hdr.locationEntries = map.rawLocationTable().size();
    hdr.payloadChecksum = util::xxh64(
        map.rawLocationTable().data(),
        map.rawLocationTable().size() * sizeof(u32));

    os.write(reinterpret_cast<const char *>(&hdr), sizeof(hdr));
    os.write(reinterpret_cast<const char *>(map.rawSeedTable().data()),
             static_cast<std::streamsize>(hdr.seedTableEntries *
                                          sizeof(u32)));
    os.write(
        reinterpret_cast<const char *>(map.rawLocationTable().data()),
        static_cast<std::streamsize>(hdr.locationEntries * sizeof(u32)));
}

void
saveSeedMapV2(std::ostream &os, const SeedMap &map, u32 shards)
{
    const u32 tableBits = map.tableBits();
    const u64 tableEntries = u64{ 1 } << tableBits;
    u64 want = std::bit_ceil(
        u64{ std::clamp<u32>(shards, 1, 1u << 30) });
    const u32 shardCount =
        static_cast<u32>(std::min<u64>(want, tableEntries));
    const u64 hashPerShard = tableEntries / shardCount;

    const std::vector<u32> &seedTable = map.rawSeedTable();
    const std::vector<u32> &locations = map.rawLocationTable();

    // Lay out the directory first so every section offset is known
    // before anything is written.
    std::vector<SeedMapShardDirEntry> dir(shardCount);
    u64 offset = alignUp(sizeof(SeedMapImageHeaderV2) +
                         u64{ shardCount } * sizeof(SeedMapShardDirEntry));
    // Shard-local CSR tables are derived (rebased) copies; build them
    // once, checksum them, and reuse at write time.
    std::vector<std::vector<u32>> localCsr(shardCount);
    for (u32 s = 0; s < shardCount; ++s) {
        const u64 lo = u64{ s } * hashPerShard;
        const u32 globalBase = seedTable[lo];
        const u32 globalEnd = seedTable[lo + hashPerShard];
        localCsr[s].resize(hashPerShard + 1);
        for (u64 i = 0; i <= hashPerShard; ++i)
            localCsr[s][i] = seedTable[lo + i] - globalBase;

        SeedMapShardDirEntry &ent = dir[s];
        ent.hashCount = hashPerShard;
        ent.seedTableOffset = offset;
        ent.seedTableEntries = hashPerShard + 1;
        ent.seedTableChecksum = util::xxh64(
            localCsr[s].data(), localCsr[s].size() * sizeof(u32));
        offset = alignUp(offset + ent.seedTableEntries * sizeof(u32));
        ent.locationOffset = offset;
        ent.locationEntries = globalEnd - globalBase;
        ent.locationChecksum = util::xxh64(
            locations.data() + globalBase,
            ent.locationEntries * sizeof(u32));
        offset = alignUp(offset + ent.locationEntries * sizeof(u32));
    }

    SeedMapImageHeaderV2 hdr;
    hdr.seedLen = map.params().seedLen;
    hdr.tableBits = tableBits;
    hdr.filterThreshold = map.params().filterThreshold;
    hdr.shardCount = shardCount;
    hdr.fileBytes = offset;
    hdr.directoryOffset = sizeof(SeedMapImageHeaderV2);
    hdr.directoryChecksum = util::xxh64(
        dir.data(), dir.size() * sizeof(SeedMapShardDirEntry));
    hdr.headerChecksum =
        util::xxh64(&hdr, sizeof(hdr) - sizeof(u64));

    os.write(reinterpret_cast<const char *>(&hdr), sizeof(hdr));
    os.write(reinterpret_cast<const char *>(dir.data()),
             static_cast<std::streamsize>(dir.size() *
                                          sizeof(SeedMapShardDirEntry)));
    writePadding(os, sizeof(hdr) + dir.size() * sizeof(SeedMapShardDirEntry));
    for (u32 s = 0; s < shardCount; ++s) {
        const u64 seedBytes = localCsr[s].size() * sizeof(u32);
        os.write(reinterpret_cast<const char *>(localCsr[s].data()),
                 static_cast<std::streamsize>(seedBytes));
        writePadding(os, seedBytes);
        const u64 lo = u64{ s } * hashPerShard;
        const u64 locBytes = dir[s].locationEntries * sizeof(u32);
        os.write(reinterpret_cast<const char *>(locations.data() +
                                                seedTable[lo]),
                 static_cast<std::streamsize>(locBytes));
        writePadding(os, locBytes);
    }
}

std::optional<SeedMap>
loadSeedMap(std::istream &is, std::string *error)
{
    // The first two u32s dispatch the format generation.
    u32 magicVersion[2];
    is.read(reinterpret_cast<char *>(magicVersion), sizeof(magicVersion));
    if (!is || magicVersion[0] != SeedMapImageHeader::kMagic) {
        setError(error, "not a SeedMap image (bad magic)");
        return std::nullopt;
    }

    if (magicVersion[1] == SeedMapImageHeader::kVersion) {
        SeedMapImageHeader hdr;
        is.read(reinterpret_cast<char *>(&hdr) + sizeof(magicVersion),
                sizeof(hdr) - sizeof(magicVersion));
        if (!is) {
            setError(error, "v1 image truncated mid-header");
            return std::nullopt;
        }
        hdr.magic = magicVersion[0];
        hdr.version = magicVersion[1];
        return loadSeedMapV1Body(is, hdr, error);
    }

    if (magicVersion[1] == SeedMapImageHeaderV2::kVersion) {
        // Copy path for v2: slurp the stream, validate, reassemble the
        // global tables. openSeedMap/SeedMapImage is the zero-copy way.
        std::vector<u8> buf(sizeof(magicVersion));
        std::memcpy(buf.data(), magicVersion, sizeof(magicVersion));
        char chunk[65536];
        while (is.read(chunk, sizeof(chunk)) || is.gcount() > 0)
            buf.insert(buf.end(), chunk, chunk + is.gcount());
        auto parsed = parseV2Image(buf.data(), buf.size(),
                                   SeedMapOpenOptions{}, error);
        if (!parsed)
            return std::nullopt;
        return materializeV2(*parsed);
    }

    setError(error, "unsupported image version " +
                        std::to_string(magicVersion[1]));
    return std::nullopt;
}

std::optional<SeedMapImage>
SeedMapImage::open(const std::string &path,
                   const SeedMapOpenOptions &options, std::string *error)
{
    auto mapped = util::MappedFile::open(path, error);
    if (!mapped)
        return std::nullopt;

    if (mapped->size() < 2 * sizeof(u32)) {
        setError(error, "file too small to be a SeedMap image");
        return std::nullopt;
    }
    u32 magicVersion[2];
    std::memcpy(magicVersion, mapped->data(), sizeof(magicVersion));
    if (magicVersion[0] != SeedMapImageHeader::kMagic) {
        setError(error, "not a SeedMap image (bad magic)");
        return std::nullopt;
    }

    SeedMapImage image;
    if (magicVersion[1] == SeedMapImageHeaderV2::kVersion) {
        if (util::checkFault("mmap.validate")) {
            setError(error, path + ": injected validation fault "
                            "(mmap.validate)");
            return std::nullopt;
        }
        // Validate in place against the mapping — once — whether the
        // caller wants zero-copy serving or a forced owning copy. The
        // pass touches every byte the image will ever serve, so it
        // runs under the SIGBUS guard: a file truncated between mmap
        // and here (or shrunk by a botched index refresh) becomes a
        // diagnostic reject instead of killing the process.
        mapped->prefetch();
        std::optional<ParsedV2> parsed;
        const bool survived = util::SigbusGuard::run([&] {
            parsed = parseV2Image(mapped->data(), mapped->size(),
                                  options, error);
        });
        if (!survived) {
            setError(error, path + " truncated while validating "
                            "(SIGBUS on a mapped page); refusing image");
            return std::nullopt;
        }
        if (!parsed)
            return std::nullopt;
        if (options.forceCopy) {
            image.owned_ =
                std::make_unique<SeedMap>(materializeV2(*parsed));
            image.params_ = image.owned_->params();
            image.tableBits_ = image.owned_->tableBits();
            return image;
        }
        image.file_ = std::move(*mapped);
        image.shards_ = std::move(parsed->shards);
        image.params_ = parsed->params;
        image.tableBits_ = parsed->tableBits;
        return image;
    }

    // v1 legacy path: stream-load into an owning map.
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        setError(error, "cannot reopen " + path);
        return std::nullopt;
    }
    auto loaded = loadSeedMap(is, error);
    if (!loaded)
        return std::nullopt;
    image.owned_ = std::make_unique<SeedMap>(std::move(*loaded));
    image.params_ = image.owned_->params();
    image.tableBits_ = image.owned_->tableBits();
    return image;
}

} // namespace genpair
} // namespace gpx
