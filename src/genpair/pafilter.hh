/**
 * @file
 * SeedMap Query merging and Paired-Adjacency Filtering (paper §4.4-4.5).
 *
 * The query stage turns the three seed location lists of a read into one
 * sorted, deduplicated list of candidate *read start* positions. The
 * Paired-Adjacency filter then co-iterates the two reads' candidate lists
 * and keeps only pairs whose distance is within the insert threshold
 * delta — the step that replaces DP chaining for paired-end reads.
 */

#ifndef GPX_GENPAIR_PAFILTER_HH
#define GPX_GENPAIR_PAFILTER_HH

#include <vector>

#include "genpair/seedmap.hh"
#include "genpair/seeder.hh"
#include "util/types.hh"

namespace gpx {
namespace genpair {

/** Work counters fed into the hardware module models (Table 3). */
struct QueryWork
{
    u64 seedLookups = 0;      ///< Seed Table accesses
    u64 locationsFetched = 0; ///< Location Table entries streamed
    u64 filterIterations = 0; ///< comparator cycles in the PA filter

    QueryWork &
    operator+=(const QueryWork &other)
    {
        seedLookups += other.seedLookups;
        locationsFetched += other.locationsFetched;
        filterIterations += other.filterIterations;
        return *this;
    }
};

/**
 * Query SeedMap with a read's three seeds and merge the sorted location
 * lists into candidate read-start positions (location minus the seed's
 * offset in the read), deduplicated.
 */
std::vector<GlobalPos> queryCandidates(const SeedMapView &map,
                                       const ReadSeeds &seeds,
                                       QueryWork &work);

/**
 * queryCandidates() appending into @p out (whose storage is reused
 * across calls): the candidates are appended at the tail, then that
 * appended range alone is sorted and deduplicated. Returns how many
 * candidates remain appended. The CSR-batched QueryStage packs every
 * lane of a PairBatch into one growing vector through this form.
 */
std::size_t queryCandidatesInto(const SeedMapView &map,
                                const ReadSeeds &seeds, QueryWork &work,
                                std::vector<GlobalPos> &out);

/** One candidate pair position that survived the adjacency filter. */
struct CandidatePair
{
    GlobalPos leftStart;  ///< candidate start of the left (upstream) read
    GlobalPos rightStart; ///< candidate start of the right read
};

/**
 * Paired-Adjacency Filtering: two-pointer sweep over the sorted
 * candidate lists keeping pairs with 0 <= right - left <= delta.
 *
 * @param left Sorted candidate starts of the upstream read.
 * @param right Sorted candidate starts of the downstream read.
 * @param delta Positional distance threshold (paper: 200-500 bp).
 * @param work Iteration counter (hardware comparator cycles).
 */
std::vector<CandidatePair> pairedAdjacencyFilter(
    const std::vector<GlobalPos> &left, const std::vector<GlobalPos> &right,
    u32 delta, QueryWork &work);

/**
 * pairedAdjacencyFilter() over raw spans, appending into @p out (reused
 * storage). Returns how many candidate pairs were appended. Span form
 * because the batched PaFilterStage reads its inputs out of one CSR
 * candidate store rather than per-pair vectors.
 */
std::size_t pairedAdjacencyFilterInto(const GlobalPos *left,
                                      std::size_t left_count,
                                      const GlobalPos *right,
                                      std::size_t right_count, u32 delta,
                                      QueryWork &work,
                                      std::vector<CandidatePair> &out);

} // namespace genpair
} // namespace gpx

#endif // GPX_GENPAIR_PAFILTER_HH
