/**
 * @file
 * Partitioned Seeding (paper §4.3).
 *
 * Extracts three non-overlapping 50 bp seeds per read — the first, middle
 * and last segments — and hashes each with xxHash. Observation 1 of the
 * paper: in ~86% of pairs at least one such segment per read matches the
 * reference exactly, which is what makes the long-seed strategy work.
 */

#ifndef GPX_GENPAIR_SEEDER_HH
#define GPX_GENPAIR_SEEDER_HH

#include <array>

#include "genomics/sequence.hh"
#include "genpair/seedmap.hh"
#include "util/types.hh"

namespace gpx {
namespace genpair {

/** One extracted seed: its hash plus its offset within the read. */
struct Seed
{
    u32 hash = 0;
    u32 offsetInRead = 0;
};

/** Three partitioned seeds of one read. */
using ReadSeeds = std::array<Seed, 3>;

/** Extracts and hashes partitioned seeds. */
class PartitionedSeeder
{
  public:
    /** @param map Non-owning view; any SeedMap backend works. */
    explicit PartitionedSeeder(const SeedMapView &map) : map_(map) {}

    /**
     * Seeds of one read: offsets 0, (len-s)/2 and len-s. The read must
     * be at least one seed long. Consumes a zero-copy view.
     */
    ReadSeeds extract(const genomics::DnaView &read) const;

  private:
    SeedMapView map_;
};

} // namespace genpair
} // namespace gpx

#endif // GPX_GENPAIR_SEEDER_HH
