/**
 * @file
 * Light Alignment (paper §4.6, Fig. 5; hardware module §5.4).
 *
 * Aligns a read at a known candidate position without dynamic
 * programming, covering exactly the single-edit-type cases of paper
 * Table 1: k scattered mismatches, one run of k consecutive insertions,
 * or one run of k consecutive deletions. The algorithm computes 2e+1
 * Hamming masks between the read and shifted copies of the reference
 * window and reasons about the longest all-ones prefix/suffix of each
 * mask. All hypotheses within the edit bound are evaluated and the
 * best-scoring valid one is returned, so within its bound the result is
 * optimal (paper §8). Anything else falls back to DP.
 */

#ifndef GPX_GENPAIR_LIGHT_ALIGN_HH
#define GPX_GENPAIR_LIGHT_ALIGN_HH

#include "align/shd.hh"
#include "genomics/cigar.hh"
#include "genomics/reference.hh"
#include "genomics/scoring.hh"
#include "genomics/sequence.hh"
#include "util/types.hh"

namespace gpx {
namespace genpair {

/** Light Alignment configuration. */
struct LightAlignParams
{
    /**
     * Maximum consecutive insertions/deletions detectable: e. Requires
     * 2e+1 Hamming masks (the hardware computes 8 masks per cycle with
     * e=5 per Table 1's "5 consecutive deletions" bound plus shift 0 and
     * the insertion shifts).
     */
    u32 maxShift = 5;
    /** Maximum scattered mismatches accepted on the fast path. */
    u32 maxMismatches = 3;
    /**
     * Acceptance threshold on the alignment score; 276 reproduces paper
     * Table 1 for 150 bp reads (relative threshold for other lengths is
     * handled by minScoreFor()).
     */
    i32 minScore = 276;
    genomics::ScoringScheme scoring = genomics::ScoringScheme::shortRead();

    /** Threshold scaled to a read length (276/300 of the perfect score). */
    i32
    minScoreFor(u32 read_len) const
    {
        if (read_len == 150)
            return minScore;
        double frac = static_cast<double>(minScore) / 300.0;
        return static_cast<i32>(frac * scoring.perfectScore(read_len));
    }
};

/** Result of one light alignment attempt. */
struct LightResult
{
    bool aligned = false;
    i32 score = 0;
    genomics::Cigar cigar;
    /** Final alignment start (candidate start shifts for deletions). */
    GlobalPos pos = kInvalidPos;
    /** Hypotheses evaluated (hardware cycles model input). */
    u32 hypothesesTried = 0;
};

/**
 * Admission gate consulted before each light-alignment attempt (the
 * paper SS8 combination point: a cheap pre-alignment filter such as
 * SneakySnake drops hopeless candidates before any hypothesis is
 * evaluated). Implementations live outside genpair (see
 * filters::SneakyGate); the pipeline only sees this interface.
 */
class LightAlignGate
{
  public:
    virtual ~LightAlignGate() = default;

    /** True when the candidate is worth light-aligning. */
    virtual bool admit(const genomics::DnaSequence &read,
                       GlobalPos candidate) = 0;
};

/**
 * Reusable scratch for repeated light alignments. The batched
 * LightAlignStage attempts ~11.6 alignments per pair (paper §7.2), each
 * needing bit planes for read and window plus 2e+1 Hamming masks;
 * without scratch every attempt pays ~17 heap allocations. The read's
 * planes are additionally cached across the candidates of one pair
 * side: call invalidateRead() whenever the read changes.
 */
struct LightAlignScratch
{
    align::BitPlanes read;
    align::BitPlanes window;
    std::vector<align::HammingMask> masks;
    std::vector<u32> popcount;
    std::vector<u32> prefix;
    std::vector<u32> suffix;
    bool readValid = false;

    /** Mark the cached read planes stale (the read changed). */
    void invalidateRead() { readValid = false; }
};

/**
 * One candidate of a LightAligner::alignBatch() run: the read's
 * prebuilt bit planes plus the candidate start. Planes are shared
 * across the candidates of one read, so the batch stage builds them
 * once per pair side.
 */
struct LightBatchItem
{
    const align::BitPlanes *read = nullptr;
    GlobalPos candidate = 0;
};

/**
 * Scratch of the SIMD-across-batch light aligner: the lane-major
 * ShdBatch staging plus per-lane window planes. Owned by the caller
 * (PairBatch keeps one) and reused; warm runs are allocation-free.
 */
struct LightBatchScratch
{
    align::ShdBatch shd;
    std::vector<align::BitPlanes> windows;
    LightAlignScratch scalar; ///< SimdBackend::Scalar fallback path
};

/** The Light Alignment engine. */
class LightAligner
{
  public:
    LightAligner(const genomics::Reference &ref,
                 const LightAlignParams &params)
        : ref_(ref), params_(params)
    {
    }

    const LightAlignParams &params() const { return params_; }

    /**
     * Attempt to light-align @p read with its first base at reference
     * position @p candidate. The reference window is consumed as a
     * zero-copy view; no bases are materialized.
     */
    LightResult align(const genomics::DnaView &read,
                      GlobalPos candidate) const;

    /**
     * Scratch-reusing form of align(): bit-identical result, no heap
     * allocation once @p scratch is warm. @p scratch must have been
     * invalidated (or used with the same read) since the read changed.
     */
    LightResult align(const genomics::DnaView &read, GlobalPos candidate,
                      LightAlignScratch &scratch) const;

    /**
     * SIMD-across-batch form: evaluate @p count candidates, computing
     * the 2e+1 shifted Hamming masks of up to simdMaskLanes() lanes
     * per vector register (align::ShdBatch). All reads of one lane
     * group must share a length; the grouping is handled here —
     * consecutive items with equal read length fill a group, a length
     * change starts a new one. out[i] is bit-identical to the scalar
     * align() of the same read and candidate (pinned by
     * tests/test_simd.cc); under SimdBackend::Scalar every item runs
     * the production scalar datapath.
     */
    void alignBatch(const LightBatchItem *items, std::size_t count,
                    LightBatchScratch &scratch, LightResult *out) const;

    /**
     * Core mask-based alignment of @p read against @p window whose
     * position @p center corresponds to the candidate start (the window
     * must extend maxShift bases on each side). Exposed for unit tests
     * and for the hardware-model cycle accounting.
     */
    LightResult alignWindow(const genomics::DnaView &read,
                            const genomics::DnaView &window,
                            u32 center) const;

  private:
    /**
     * Hypothesis evaluation over per-shift mask statistics — the
     * shared core of every alignment form. The search only ever needs
     * the three statistics per shift, never raw mask bits, which is
     * what lets the batch kernel hand lane-major stat arrays straight
     * in: entry s of each array lives at [s * stride].
     */
    LightResult evaluateHypotheses(u32 read_len, u32 center,
                                   const u32 *popcount,
                                   const u32 *prefix, const u32 *suffix,
                                   u32 stride) const;

    /** Scalar datapath over prebuilt read planes. */
    LightResult alignPlanes(const align::BitPlanes &read,
                            GlobalPos candidate,
                            LightAlignScratch &scratch) const;

    const genomics::Reference &ref_;
    LightAlignParams params_;
};

} // namespace genpair
} // namespace gpx

#endif // GPX_GENPAIR_LIGHT_ALIGN_HH
