#include "genpair/pafilter.hh"

#include <algorithm>

namespace gpx {
namespace genpair {

std::vector<GlobalPos>
queryCandidates(const SeedMapView &map, const ReadSeeds &seeds,
                QueryWork &work)
{
    std::vector<GlobalPos> candidates;
    queryCandidatesInto(map, seeds, work, candidates);
    return candidates;
}

std::size_t
queryCandidatesInto(const SeedMapView &map, const ReadSeeds &seeds,
                    QueryWork &work, std::vector<GlobalPos> &out)
{
    const std::size_t start = out.size();
    for (const Seed &seed : seeds) {
        ++work.seedLookups;
        auto span = map.lookup(seed.hash);
        work.locationsFetched += span.size();
        for (u32 loc : span) {
            if (loc >= seed.offsetInRead)
                out.push_back(loc - seed.offsetInRead);
        }
    }
    // Three sorted lists concatenated; sort + dedupe. The hardware merges
    // the pre-sorted lists on the fly (§4.4); the result is identical.
    auto begin = out.begin() + static_cast<std::ptrdiff_t>(start);
    std::sort(begin, out.end());
    out.erase(std::unique(begin, out.end()), out.end());
    return out.size() - start;
}

std::vector<CandidatePair>
pairedAdjacencyFilter(const std::vector<GlobalPos> &left,
                      const std::vector<GlobalPos> &right, u32 delta,
                      QueryWork &work)
{
    std::vector<CandidatePair> out;
    pairedAdjacencyFilterInto(left.data(), left.size(), right.data(),
                              right.size(), delta, work, out);
    return out;
}

std::size_t
pairedAdjacencyFilterInto(const GlobalPos *left, std::size_t left_count,
                          const GlobalPos *right, std::size_t right_count,
                          u32 delta, QueryWork &work,
                          std::vector<CandidatePair> &out)
{
    const std::size_t start = out.size();
    std::size_t j = 0;
    for (std::size_t i = 0; i < left_count; ++i) {
        // Advance the right cursor to the first candidate >= left[i].
        while (j < right_count && right[j] < left[i]) {
            ++j;
            ++work.filterIterations;
        }
        // Emit every right candidate within the delta window.
        for (std::size_t t = j; t < right_count; ++t) {
            ++work.filterIterations;
            if (right[t] - left[i] > delta)
                break;
            out.push_back({ left[i], right[t] });
        }
    }
    return out.size() - start;
}

} // namespace genpair
} // namespace gpx
