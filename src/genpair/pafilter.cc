#include "genpair/pafilter.hh"

#include <algorithm>

namespace gpx {
namespace genpair {

std::vector<GlobalPos>
queryCandidates(const SeedMapView &map, const ReadSeeds &seeds,
                QueryWork &work)
{
    std::vector<GlobalPos> candidates;
    for (const Seed &seed : seeds) {
        ++work.seedLookups;
        auto span = map.lookup(seed.hash);
        work.locationsFetched += span.size();
        for (u32 loc : span) {
            if (loc >= seed.offsetInRead)
                candidates.push_back(loc - seed.offsetInRead);
        }
    }
    // Three sorted lists concatenated; sort + dedupe. The hardware merges
    // the pre-sorted lists on the fly (§4.4); the result is identical.
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    return candidates;
}

std::vector<CandidatePair>
pairedAdjacencyFilter(const std::vector<GlobalPos> &left,
                      const std::vector<GlobalPos> &right, u32 delta,
                      QueryWork &work)
{
    std::vector<CandidatePair> out;
    std::size_t j = 0;
    for (std::size_t i = 0; i < left.size(); ++i) {
        // Advance the right cursor to the first candidate >= left[i].
        while (j < right.size() && right[j] < left[i]) {
            ++j;
            ++work.filterIterations;
        }
        // Emit every right candidate within the delta window.
        for (std::size_t t = j; t < right.size(); ++t) {
            ++work.filterIterations;
            if (right[t] - left[i] > delta)
                break;
            out.push_back({ left[i], right[t] });
        }
    }
    return out;
}

} // namespace genpair
} // namespace gpx
