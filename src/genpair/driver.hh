/**
 * @file
 * Multi-threaded mapping driver: the "GenPair + MM2 (CPU)" software
 * configuration of the paper's evaluation (§6), which runs the GenPair
 * pipeline on general-purpose cores with Minimap2-style DP fallback.
 *
 * A thin configuration layer over MapperEngine (engine.hh), which owns
 * the persistent worker pool, the block cursor and the run timing.
 * This driver contributes the per-worker engines (Mm2Lite fallback +
 * GenPairPipeline, built once at pool start-up over the shared
 * read-only index) and the block function: each claimed block runs as
 * one SoA batch through the stage graph (stages.hh). Mapping is
 * per-pair pure and results land at the pair's input index, so output
 * is bit-identical to a serial run regardless of scheduling.
 */

#ifndef GPX_GENPAIR_DRIVER_HH
#define GPX_GENPAIR_DRIVER_HH

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "baseline/mm2lite.hh"
#include "genpair/engine.hh"
#include "genpair/pipeline.hh"
#include "genpair/seedmap.hh"
#include "util/types.hh"

namespace gpx {
namespace genpair {

/** Driver configuration. */
struct DriverConfig
{
    u32 threads = 0; ///< 0 = hardware concurrency
    GenPairParams pipeline;
    baseline::Mm2LiteParams fallback;
    bool useGenPair = true; ///< false = pure MM2-lite baseline runs

    /**
     * Record per-pair stage events (PairTraceRecord) for hwsim
     * co-simulation; DriverResult::trace is filled 1:1 with the input
     * when set. Off by default — tracing costs one extra SeedMap
     * lookup per seed plus the record stores.
     */
    bool recordTrace = false;

    /**
     * Light-align admission gate factory (paper SS8). Called once per
     * worker at pool start-up so each pipeline owns a thread-local gate
     * instance; empty = no gate. The workers start concurrently, so the
     * factory may be invoked from all of them at once and must be
     * thread-safe. Gate decisions must be a pure function of
     * (read, candidate) or results become schedule-dependent.
     */
    std::function<std::unique_ptr<LightAlignGate>()> gateFactory;
};

/** Batch mapping results. */
struct DriverResult
{
    std::vector<genomics::PairMapping> mappings; ///< 1:1 with input
    PipelineStats stats; ///< aggregated across workers
    /** Pure mapping wall time of this mapAll() call (see RunTiming). */
    RunTiming timing;
    /** Per-pair stage events; 1:1 with input iff recordTrace was set. */
    std::vector<PairTraceRecord> trace;
};

/**
 * Parallel paired-end mapping over a shared index, backed by the
 * persistent MapperEngine pool. Not itself thread-safe: one mapAll()
 * at a time (the workers inside it are the parallelism).
 */
class ParallelMapper
{
  public:
    /**
     * @param map Non-owning SeedMap view shared read-only by every
     *            worker; its backing storage (owning SeedMap or
     *            mmap-backed image) must outlive the pool.
     */
    ParallelMapper(const genomics::Reference &ref,
                   const SeedMapView &map, const DriverConfig &config);

    /** Map all pairs; mappings[i] corresponds to pairs[i]. */
    DriverResult mapAll(const std::vector<genomics::ReadPair> &pairs);

    /**
     * Thread-safe form of mapAll() for foreign-thread submission
     * (gpx_serve connection handlers): concurrent callers are
     * serialized in arrival order, each call owning the worker pool —
     * and the per-worker stats accumulators — for its whole batch.
     * Results are bit-identical to mapAll() from the owning thread.
     */
    DriverResult
    mapAllShared(const std::vector<genomics::ReadPair> &pairs);

    u32 threads() const { return engine_->threads(); }

  private:
    const genomics::Reference &ref_;
    SeedMapView map_;
    DriverConfig config_;
    std::shared_ptr<const baseline::MinimizerIndex> sharedIndex_;
    /** Built after sharedIndex_ (workers capture it); one pool. */
    std::unique_ptr<MapperEngine> engine_;
    /** Serializes mapAllShared() callers around the pool + stats. */
    std::mutex mapMu_;
};

} // namespace genpair
} // namespace gpx

#endif // GPX_GENPAIR_DRIVER_HH
