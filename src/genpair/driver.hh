/**
 * @file
 * Multi-threaded mapping driver: the "GenPair + MM2 (CPU)" software
 * configuration of the paper's evaluation (§6), which runs the GenPair
 * pipeline on general-purpose cores with Minimap2-style DP fallback.
 *
 * The SeedMap and minimizer index are shared read-only. Workers are
 * persistent: each thread constructs its Mm2Lite fallback and
 * GenPairPipeline once, at pool start-up, and reuses them across
 * mapAll() calls — a streaming run of ten thousand chunks spawns
 * threads and builds engines exactly once. Within a call, workers pull
 * fixed-size blocks off an atomic cursor for load balance; mapping is
 * per-pair pure and results land at the pair's input index, so output
 * is bit-identical to a serial run regardless of scheduling.
 */

#ifndef GPX_GENPAIR_DRIVER_HH
#define GPX_GENPAIR_DRIVER_HH

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "baseline/mm2lite.hh"
#include "genpair/pipeline.hh"
#include "genpair/seedmap.hh"
#include "util/types.hh"

namespace gpx {
namespace genpair {

/** Driver configuration. */
struct DriverConfig
{
    u32 threads = 0; ///< 0 = hardware concurrency
    GenPairParams pipeline;
    baseline::Mm2LiteParams fallback;
    bool useGenPair = true; ///< false = pure MM2-lite baseline runs

    /**
     * Light-align admission gate factory (paper SS8). Called once per
     * worker at pool start-up so each pipeline owns a thread-local gate
     * instance; empty = no gate. The workers start concurrently, so the
     * factory may be invoked from all of them at once and must be
     * thread-safe. Gate decisions must be a pure function of
     * (read, candidate) or results become schedule-dependent.
     */
    std::function<std::unique_ptr<LightAlignGate>()> gateFactory;
};

/** Batch mapping results. */
struct DriverResult
{
    std::vector<genomics::PairMapping> mappings; ///< 1:1 with input
    PipelineStats stats;   ///< aggregated across workers
    /**
     * Pure mapping wall time of this mapAll() call. One-time costs —
     * thread spawn, per-worker engine construction — are paid at pool
     * start-up and never charged here, so pairsPerSec is comparable
     * across chunk sizes.
     */
    double seconds = 0;
    double pairsPerSec = 0;

    /** Throughput in Mbp/s for the given read length. */
    double
    mbpsFor(u32 read_len) const
    {
        return pairsPerSec * 2.0 * read_len / 1e6;
    }
};

/**
 * Parallel paired-end mapping over a shared index, backed by a
 * persistent worker pool. Not itself thread-safe: one mapAll() at a
 * time (the workers inside it are the parallelism).
 */
class ParallelMapper
{
  public:
    /**
     * @param map Non-owning SeedMap view shared read-only by every
     *            worker; its backing storage (owning SeedMap or
     *            mmap-backed image) must outlive the pool.
     */
    ParallelMapper(const genomics::Reference &ref,
                   const SeedMapView &map, const DriverConfig &config);
    ~ParallelMapper();

    ParallelMapper(const ParallelMapper &) = delete;
    ParallelMapper &operator=(const ParallelMapper &) = delete;

    /** Map all pairs; mappings[i] corresponds to pairs[i]. */
    DriverResult mapAll(const std::vector<genomics::ReadPair> &pairs);

    u32 threads() const { return threads_; }

  private:
    /** Pairs a worker claims per cursor grab (load-balance grain). */
    static constexpr u64 kBlockPairs = 64;

    void workerLoop(u32 slot);

    const genomics::Reference &ref_;
    SeedMapView map_;
    DriverConfig config_;
    u32 threads_;
    std::shared_ptr<const baseline::MinimizerIndex> sharedIndex_;

    // Job hand-off: mapAll() publishes the job under mu_, bumps
    // jobSeq_ and wakes the pool; workers race the shared cursor and
    // the last one out signals completion.
    std::mutex mu_;
    std::condition_variable jobReady_;
    std::condition_variable jobDone_;
    u64 jobSeq_ = 0;
    u32 workersReady_ = 0;
    u32 workersLeft_ = 0;
    bool shutdown_ = false;
    const std::vector<genomics::ReadPair> *jobPairs_ = nullptr;
    std::vector<genomics::PairMapping> *jobOut_ = nullptr;
    std::atomic<u64> cursor_{ 0 };
    std::vector<PipelineStats> perThread_;
    std::vector<std::thread> workers_;
};

} // namespace genpair
} // namespace gpx

#endif // GPX_GENPAIR_DRIVER_HH
