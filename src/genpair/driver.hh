/**
 * @file
 * Multi-threaded mapping driver: the "GenPair + MM2 (CPU)" software
 * configuration of the paper's evaluation (§6), which runs the GenPair
 * pipeline on general-purpose cores with Minimap2-style DP fallback.
 * The SeedMap and minimizer index are shared read-only; each worker
 * owns its own pipeline/fallback engines (all mutable state is
 * thread-local), so results are bit-identical to a serial run.
 */

#ifndef GPX_GENPAIR_DRIVER_HH
#define GPX_GENPAIR_DRIVER_HH

#include <vector>

#include "baseline/mm2lite.hh"
#include "genpair/pipeline.hh"
#include "genpair/seedmap.hh"
#include "util/types.hh"

namespace gpx {
namespace genpair {

/** Driver configuration. */
struct DriverConfig
{
    u32 threads = 0; ///< 0 = hardware concurrency
    GenPairParams pipeline;
    baseline::Mm2LiteParams fallback;
    bool useGenPair = true; ///< false = pure MM2-lite baseline runs
};

/** Batch mapping results. */
struct DriverResult
{
    std::vector<genomics::PairMapping> mappings; ///< 1:1 with input
    PipelineStats stats;   ///< aggregated across workers
    double seconds = 0;
    double pairsPerSec = 0;

    /** Throughput in Mbp/s for the given read length. */
    double
    mbpsFor(u32 read_len) const
    {
        return pairsPerSec * 2.0 * read_len / 1e6;
    }
};

/** Parallel paired-end mapping over a shared index. */
class ParallelMapper
{
  public:
    ParallelMapper(const genomics::Reference &ref, const SeedMap &map,
                   const DriverConfig &config);

    /** Map all pairs; mappings[i] corresponds to pairs[i]. */
    DriverResult mapAll(const std::vector<genomics::ReadPair> &pairs);

    u32 threads() const { return threads_; }

  private:
    const genomics::Reference &ref_;
    const SeedMap &map_;
    DriverConfig config_;
    u32 threads_;
    std::shared_ptr<const baseline::MinimizerIndex> sharedIndex_;
};

} // namespace genpair
} // namespace gpx

#endif // GPX_GENPAIR_DRIVER_HH
