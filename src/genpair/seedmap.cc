#include "genpair/seedmap.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <thread>

#include "util/logging.hh"
#include "util/xxhash.hh"

namespace gpx {
namespace genpair {

using genomics::DnaSequence;

u32
hashSeedValue(const DnaSequence &seed, u32 seed_len)
{
    gpx_assert(seed.size() == seed_len, "seed length mismatch");
    return util::xxh32(seed.packed().data(), seed.packed().size());
}

u32
hashSeedValueAt(const genomics::DnaView &read, u64 offset, u32 seed_len)
{
    // Repack the (generally byte-misaligned) seed slice into a stack
    // buffer word-by-word: same bytes hashSeedValue() sees for an
    // owning copy, without the per-seed heap allocation.
    genomics::DnaView seed = read.sub(offset, seed_len);
    u8 buf[(kMaxSeedLen + 3) / 4];
    static_assert(sizeof(buf) * 4 >= kMaxSeedLen);
    seed.packTo(buf);
    return util::xxh32(buf, seed.packedBytes());
}

// ---------------------------------------------------------------------
// SeedMapView
// ---------------------------------------------------------------------

SeedMapView::SeedMapView(const SeedMapParams &params, u32 table_bits,
                         std::span<const u32> seed_table,
                         std::span<const u32> locations)
    : params_(params), tableBits_(table_bits), shardShift_(table_bits),
      single_{ seed_table, locations }
{
    gpx_assert(seed_table.size() == (u64{1} << table_bits) + 1,
               "seed table size does not match table bits");
}

SeedMapView::SeedMapView(const SeedMapParams &params, u32 table_bits,
                         std::span<const SeedMapShardView> shards)
    : params_(params), tableBits_(table_bits), shards_(shards)
{
    gpx_assert(!shards.empty() && std::has_single_bit(shards.size()),
               "shard count must be a power of two");
    gpx_assert(shards.size() <= (u64{1} << table_bits),
               "more shards than seed table entries");
    u32 shardBits = static_cast<u32>(std::bit_width(shards.size()) - 1);
    shardShift_ = table_bits - shardBits;
    if (shards.size() == 1) {
        // Collapse to the inline representation: one fewer indirection
        // on lookup and no external-array lifetime to manage.
        single_ = shards[0];
        shards_ = {};
    }
}

u32
SeedMapView::hashSeed(const DnaSequence &seed) const
{
    return hashSeedValue(seed, params_.seedLen);
}

u32
SeedMapView::hashSeedAt(const genomics::DnaView &read, u64 offset) const
{
    return hashSeedValueAt(read, offset, params_.seedLen);
}

u64
SeedMapView::seedTableBytes() const
{
    if (shards_.empty())
        return single_.seedTable.size() * sizeof(u32);
    u64 bytes = 0;
    for (const auto &sh : shards_)
        bytes += sh.seedTable.size() * sizeof(u32);
    return bytes;
}

u64
SeedMapView::locationTableBytes() const
{
    if (shards_.empty())
        return single_.locations.size() * sizeof(u32);
    u64 bytes = 0;
    for (const auto &sh : shards_)
        bytes += sh.locations.size() * sizeof(u32);
    return bytes;
}

// ---------------------------------------------------------------------
// SeedMap construction
// ---------------------------------------------------------------------

namespace {

/** Auto-size the Seed Table: ~2 entries per genome base, clamped. */
u32
resolveTableBits(const genomics::Reference &ref, const SeedMapParams &p)
{
    if (p.tableBits != 0)
        return p.tableBits;
    u64 want = ref.totalLength() * 2;
    u32 bits = static_cast<u32>(std::bit_width(want));
    return std::clamp<u32>(bits, 16, 30);
}

} // namespace

SeedMap::SeedMap(const genomics::Reference &ref, const SeedMapParams &params)
    : params_(params)
{
    gpx_assert(ref.totalLength() < (u64{1} << 32),
               "SeedMap stores 32-bit locations; genome too large");
    gpx_assert(params_.seedLen >= 8 && params_.seedLen <= kMaxSeedLen,
               "unsupported seed length");

    tableBits_ = resolveTableBits(ref, params_);

    // Pass 1: temporary Seed Locations Table of (masked hash, location).
    struct Rec
    {
        u32 hash;
        u32 loc;
    };
    std::vector<Rec> recs;
    u64 totalPositions = 0;
    for (u32 c = 0; c < ref.numChromosomes(); ++c) {
        u64 len = ref.chromosomeLength(c);
        if (len >= params_.seedLen)
            totalPositions += len - params_.seedLen + 1;
    }
    recs.reserve(totalPositions);
    for (u32 c = 0; c < ref.numChromosomes(); ++c) {
        const DnaSequence &chrom = ref.chromosome(c);
        if (chrom.size() < params_.seedLen)
            continue;
        GlobalPos base = ref.chromosomeStart(c);
        for (u64 p = 0; p + params_.seedLen <= chrom.size(); ++p) {
            u32 h = maskHash(hashSeedValueAt(chrom, p, params_.seedLen));
            recs.push_back({ h, static_cast<u32>(base + p) });
            ++stats_.totalSeeds;
        }
    }

    // Pass 2: sort by (hash, location) so each seed's locations land
    // contiguously and pre-sorted in the Location Table.
    std::sort(recs.begin(), recs.end(), [](const Rec &a, const Rec &b) {
        if (a.hash != b.hash)
            return a.hash < b.hash;
        return a.loc < b.loc;
    });

    // Pass 3: build the Location Table and CSR Seed Table, applying the
    // index filtering threshold.
    seedTable_.assign((u64{1} << tableBits_) + 1, 0);
    std::vector<u32> counts(u64{1} << tableBits_, 0);

    std::size_t i = 0;
    while (i < recs.size()) {
        std::size_t j = i;
        while (j < recs.size() && recs[j].hash == recs[i].hash)
            ++j;
        u64 n = j - i;
        ++stats_.distinctHashes;
        if (params_.filterThreshold > 0 && n > params_.filterThreshold) {
            ++stats_.filteredSeeds;
            stats_.filteredLocations += n;
        } else {
            counts[recs[i].hash] = static_cast<u32>(n);
            stats_.storedLocations += n;
        }
        i = j;
    }

    locationTable_.reserve(stats_.storedLocations);
    u32 offset = 0;
    for (u64 h = 0; h < counts.size(); ++h) {
        seedTable_[h] = offset;
        offset += counts[h];
    }
    seedTable_.back() = offset;

    // Fill the Location Table using the CSR offsets.
    locationTable_.resize(stats_.storedLocations);
    i = 0;
    while (i < recs.size()) {
        std::size_t j = i;
        while (j < recs.size() && recs[j].hash == recs[i].hash)
            ++j;
        u32 h = recs[i].hash;
        if (counts[h] > 0) {
            for (std::size_t t = i; t < j; ++t)
                locationTable_[seedTable_[h] + (t - i)] = recs[t].loc;
        }
        i = j;
    }

    u64 kept = stats_.distinctHashes - stats_.filteredSeeds;
    stats_.avgLocationsPerSeed =
        kept ? static_cast<double>(stats_.storedLocations) /
                   static_cast<double>(kept)
             : 0.0;
    // Query-weighted mean: sum(n^2) / sum(n) over kept buckets.
    double sumSq = 0;
    for (u64 h = 0; h < counts.size(); ++h)
        sumSq += static_cast<double>(counts[h]) * counts[h];
    stats_.queryWeightedLocations =
        stats_.storedLocations
            ? sumSq / static_cast<double>(stats_.storedLocations)
            : 0.0;
}

SeedMap
SeedMap::build(const genomics::Reference &ref, const SeedMapParams &params,
               u32 threads)
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    if (threads <= 1)
        return SeedMap(ref, params);

    gpx_assert(ref.totalLength() < (u64{1} << 32),
               "SeedMap stores 32-bit locations; genome too large");
    gpx_assert(params.seedLen >= 8 && params.seedLen <= kMaxSeedLen,
               "unsupported seed length");

    SeedMap map;
    map.params_ = params;
    map.tableBits_ = resolveTableBits(ref, params);
    const u32 tableBits = map.tableBits_;

    struct Rec
    {
        u32 hash;
        u32 loc;
    };

    // Hash-space shards sorted independently; one per worker is enough
    // parallelism without fragmenting the merge.
    const u32 shardCount = std::min<u32>(
        std::bit_ceil(threads), u32{ 1 } << std::min<u32>(tableBits, 8));
    const u32 shardShift =
        tableBits - static_cast<u32>(std::bit_width(shardCount) - 1);

    // Scan partitions: fixed spans of seed start positions within a
    // chromosome, so workers stay balanced on skewed chromosome sizes.
    struct Span
    {
        u32 chrom;
        u64 begin; ///< first seed start position
        u64 end;   ///< one past the last seed start position
    };
    std::vector<Span> spans;
    constexpr u64 kSpanPositions = 1u << 18;
    u64 totalPositions = 0;
    for (u32 c = 0; c < ref.numChromosomes(); ++c) {
        u64 len = ref.chromosomeLength(c);
        if (len < params.seedLen)
            continue;
        u64 positions = len - params.seedLen + 1;
        totalPositions += positions;
        for (u64 b = 0; b < positions; b += kSpanPositions)
            spans.push_back(
                { c, b, std::min(positions, b + kSpanPositions) });
    }

    // Pass 1 (parallel): scan spans, binning records by hash shard.
    // Bin order across workers is irrelevant: every shard is fully
    // sorted below, so the result is bit-identical to the serial build.
    std::vector<std::vector<std::vector<Rec>>> bins(
        threads, std::vector<std::vector<Rec>>(shardCount));
    {
        std::atomic<std::size_t> cursor{ 0 };
        auto scan = [&](u32 slot) {
            for (;;) {
                std::size_t s =
                    cursor.fetch_add(1, std::memory_order_relaxed);
                if (s >= spans.size())
                    return;
                const Span &span = spans[s];
                const DnaSequence &chrom = ref.chromosome(span.chrom);
                GlobalPos base = ref.chromosomeStart(span.chrom);
                for (u64 p = span.begin; p < span.end; ++p) {
                    u32 h = hashSeedValueAt(chrom, p, params.seedLen) &
                            ((1u << tableBits) - 1);
                    bins[slot][h >> shardShift].push_back(
                        { h, static_cast<u32>(base + p) });
                }
            }
        };
        std::vector<std::thread> workers;
        workers.reserve(threads);
        for (u32 t = 0; t < threads; ++t)
            workers.emplace_back(scan, t);
        for (auto &w : workers)
            w.join();
    }
    map.stats_.totalSeeds = totalPositions;

    // Pass 2 (parallel): per shard, gather + sort + count with the
    // index filtering threshold applied.
    struct ShardBuild
    {
        std::vector<Rec> recs;   ///< sorted (hash, loc)
        std::vector<u32> counts; ///< kept locations per masked hash
        u64 stored = 0;
        u64 distinct = 0;
        u64 filteredSeeds = 0;
        u64 filteredLocations = 0;
        double sumSq = 0;
    };
    std::vector<ShardBuild> shards(shardCount);
    {
        std::atomic<u32> cursor{ 0 };
        auto sortShard = [&]() {
            for (;;) {
                u32 s = cursor.fetch_add(1, std::memory_order_relaxed);
                if (s >= shardCount)
                    return;
                ShardBuild &sh = shards[s];
                std::size_t total = 0;
                for (u32 t = 0; t < threads; ++t)
                    total += bins[t][s].size();
                sh.recs.reserve(total);
                for (u32 t = 0; t < threads; ++t) {
                    sh.recs.insert(sh.recs.end(), bins[t][s].begin(),
                                   bins[t][s].end());
                    bins[t][s].clear();
                    bins[t][s].shrink_to_fit();
                }
                std::sort(sh.recs.begin(), sh.recs.end(),
                          [](const Rec &a, const Rec &b) {
                              if (a.hash != b.hash)
                                  return a.hash < b.hash;
                              return a.loc < b.loc;
                          });

                sh.counts.assign(u64{ 1 } << shardShift, 0);
                const u32 hashBase = s << shardShift;
                std::size_t i = 0;
                while (i < sh.recs.size()) {
                    std::size_t j = i;
                    while (j < sh.recs.size() &&
                           sh.recs[j].hash == sh.recs[i].hash)
                        ++j;
                    u64 n = j - i;
                    ++sh.distinct;
                    if (params.filterThreshold > 0 &&
                        n > params.filterThreshold) {
                        ++sh.filteredSeeds;
                        sh.filteredLocations += n;
                    } else {
                        sh.counts[sh.recs[i].hash - hashBase] =
                            static_cast<u32>(n);
                        sh.stored += n;
                        sh.sumSq += static_cast<double>(n) * n;
                    }
                    i = j;
                }
            }
        };
        std::vector<std::thread> workers;
        workers.reserve(std::min(threads, shardCount));
        for (u32 t = 0; t < std::min(threads, shardCount); ++t)
            workers.emplace_back(sortShard);
        for (auto &w : workers)
            w.join();
    }

    // Pass 3: global CSR assembly. Shard s's locations start at the sum
    // of all earlier shards' stored counts; within the shard, offsets
    // accumulate exactly as in the serial pass.
    u64 storedTotal = 0;
    double sumSq = 0;
    for (const ShardBuild &sh : shards) {
        map.stats_.distinctHashes += sh.distinct;
        map.stats_.filteredSeeds += sh.filteredSeeds;
        map.stats_.filteredLocations += sh.filteredLocations;
        storedTotal += sh.stored;
        sumSq += sh.sumSq;
    }
    map.stats_.storedLocations = storedTotal;
    map.seedTable_.assign((u64{ 1 } << tableBits) + 1, 0);
    map.locationTable_.resize(storedTotal);

    std::vector<u64> shardBase(shardCount);
    u64 base = 0;
    for (u32 s = 0; s < shardCount; ++s) {
        shardBase[s] = base;
        base += shards[s].stored;
    }
    map.seedTable_.back() = static_cast<u32>(storedTotal);

    {
        std::atomic<u32> cursor{ 0 };
        auto fillShard = [&]() {
            for (;;) {
                u32 s = cursor.fetch_add(1, std::memory_order_relaxed);
                if (s >= shardCount)
                    return;
                const ShardBuild &sh = shards[s];
                const u32 hashBase = s << shardShift;
                u64 offset = shardBase[s];
                for (u64 h = 0; h < sh.counts.size(); ++h) {
                    map.seedTable_[hashBase + h] =
                        static_cast<u32>(offset);
                    offset += sh.counts[h];
                }
                // Fill this shard's location slice from its sorted recs.
                u64 out = shardBase[s];
                std::size_t i = 0;
                while (i < sh.recs.size()) {
                    std::size_t j = i;
                    while (j < sh.recs.size() &&
                           sh.recs[j].hash == sh.recs[i].hash)
                        ++j;
                    if (sh.counts[sh.recs[i].hash - hashBase] > 0) {
                        for (std::size_t t = i; t < j; ++t)
                            map.locationTable_[out++] = sh.recs[t].loc;
                    }
                    i = j;
                }
            }
        };
        std::vector<std::thread> workers;
        workers.reserve(std::min(threads, shardCount));
        for (u32 t = 0; t < std::min(threads, shardCount); ++t)
            workers.emplace_back(fillShard);
        for (auto &w : workers)
            w.join();
    }

    u64 kept = map.stats_.distinctHashes - map.stats_.filteredSeeds;
    map.stats_.avgLocationsPerSeed =
        kept ? static_cast<double>(storedTotal) / static_cast<double>(kept)
             : 0.0;
    map.stats_.queryWeightedLocations =
        storedTotal ? sumSq / static_cast<double>(storedTotal) : 0.0;
    return map;
}

SeedMap
SeedMap::fromTables(const SeedMapParams &params, u32 table_bits,
                    std::vector<u32> seed_table,
                    std::vector<u32> location_table)
{
    gpx_assert(seed_table.size() == (u64{1} << table_bits) + 1,
               "seed table size does not match table bits");
    gpx_assert(seed_table.back() == location_table.size(),
               "seed table does not cover the location table");
    SeedMap map;
    map.params_ = params;
    map.tableBits_ = table_bits;
    map.seedTable_ = std::move(seed_table);
    map.locationTable_ = std::move(location_table);

    // Recompute occupancy statistics from the tables.
    map.stats_.storedLocations = map.locationTable_.size();
    double sumSq = 0;
    for (std::size_t h = 0; h + 1 < map.seedTable_.size(); ++h) {
        u64 n = map.seedTable_[h + 1] - map.seedTable_[h];
        if (n > 0) {
            ++map.stats_.distinctHashes;
            sumSq += static_cast<double>(n) * n;
        }
    }
    map.stats_.totalSeeds = map.stats_.storedLocations;
    map.stats_.avgLocationsPerSeed =
        map.stats_.distinctHashes
            ? static_cast<double>(map.stats_.storedLocations) /
                  map.stats_.distinctHashes
            : 0.0;
    map.stats_.queryWeightedLocations =
        map.stats_.storedLocations
            ? sumSq / static_cast<double>(map.stats_.storedLocations)
            : 0.0;
    return map;
}

} // namespace genpair
} // namespace gpx
