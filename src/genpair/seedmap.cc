#include "genpair/seedmap.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"
#include "util/xxhash.hh"

namespace gpx {
namespace genpair {

using genomics::DnaSequence;

SeedMap::SeedMap(const genomics::Reference &ref, const SeedMapParams &params)
    : params_(params)
{
    gpx_assert(ref.totalLength() < (u64{1} << 32),
               "SeedMap stores 32-bit locations; genome too large");
    gpx_assert(params_.seedLen >= 8 && params_.seedLen <= kMaxSeedLen,
               "unsupported seed length");

    if (params_.tableBits == 0) {
        // Auto-size: ~2 entries per genome base, clamped to sane bounds.
        u64 want = ref.totalLength() * 2;
        u32 bits = static_cast<u32>(std::bit_width(want));
        tableBits_ = std::clamp<u32>(bits, 16, 30);
    } else {
        tableBits_ = params_.tableBits;
    }

    // Pass 1: temporary Seed Locations Table of (masked hash, location).
    struct Rec
    {
        u32 hash;
        u32 loc;
    };
    std::vector<Rec> recs;
    u64 totalPositions = 0;
    for (u32 c = 0; c < ref.numChromosomes(); ++c) {
        u64 len = ref.chromosomeLength(c);
        if (len >= params_.seedLen)
            totalPositions += len - params_.seedLen + 1;
    }
    recs.reserve(totalPositions);
    for (u32 c = 0; c < ref.numChromosomes(); ++c) {
        const DnaSequence &chrom = ref.chromosome(c);
        if (chrom.size() < params_.seedLen)
            continue;
        GlobalPos base = ref.chromosomeStart(c);
        for (u64 p = 0; p + params_.seedLen <= chrom.size(); ++p) {
            u32 h = maskHash(hashSeedAt(chrom, p));
            recs.push_back({ h, static_cast<u32>(base + p) });
            ++stats_.totalSeeds;
        }
    }

    // Pass 2: sort by (hash, location) so each seed's locations land
    // contiguously and pre-sorted in the Location Table.
    std::sort(recs.begin(), recs.end(), [](const Rec &a, const Rec &b) {
        if (a.hash != b.hash)
            return a.hash < b.hash;
        return a.loc < b.loc;
    });

    // Pass 3: build the Location Table and CSR Seed Table, applying the
    // index filtering threshold.
    seedTable_.assign((u64{1} << tableBits_) + 1, 0);
    std::vector<u32> counts(u64{1} << tableBits_, 0);

    std::size_t i = 0;
    while (i < recs.size()) {
        std::size_t j = i;
        while (j < recs.size() && recs[j].hash == recs[i].hash)
            ++j;
        u64 n = j - i;
        ++stats_.distinctHashes;
        if (params_.filterThreshold > 0 && n > params_.filterThreshold) {
            ++stats_.filteredSeeds;
            stats_.filteredLocations += n;
        } else {
            counts[recs[i].hash] = static_cast<u32>(n);
            stats_.storedLocations += n;
        }
        i = j;
    }

    locationTable_.reserve(stats_.storedLocations);
    u32 offset = 0;
    for (u64 h = 0; h < counts.size(); ++h) {
        seedTable_[h] = offset;
        offset += counts[h];
    }
    seedTable_.back() = offset;

    // Fill the Location Table using the CSR offsets.
    locationTable_.resize(stats_.storedLocations);
    std::vector<u32> cursor(counts.size(), 0);
    i = 0;
    while (i < recs.size()) {
        std::size_t j = i;
        while (j < recs.size() && recs[j].hash == recs[i].hash)
            ++j;
        u32 h = recs[i].hash;
        if (counts[h] > 0) {
            for (std::size_t t = i; t < j; ++t)
                locationTable_[seedTable_[h] + (t - i)] = recs[t].loc;
        }
        i = j;
    }

    u64 kept = stats_.distinctHashes - stats_.filteredSeeds;
    stats_.avgLocationsPerSeed =
        kept ? static_cast<double>(stats_.storedLocations) /
                   static_cast<double>(kept)
             : 0.0;
    // Query-weighted mean: sum(n^2) / sum(n) over kept buckets.
    double sumSq = 0;
    for (u64 h = 0; h < counts.size(); ++h)
        sumSq += static_cast<double>(counts[h]) * counts[h];
    stats_.queryWeightedLocations =
        stats_.storedLocations
            ? sumSq / static_cast<double>(stats_.storedLocations)
            : 0.0;
}

SeedMap
SeedMap::fromTables(const SeedMapParams &params, u32 table_bits,
                    std::vector<u32> seed_table,
                    std::vector<u32> location_table)
{
    gpx_assert(seed_table.size() == (u64{1} << table_bits) + 1,
               "seed table size does not match table bits");
    gpx_assert(seed_table.back() == location_table.size(),
               "seed table does not cover the location table");
    SeedMap map;
    map.params_ = params;
    map.tableBits_ = table_bits;
    map.seedTable_ = std::move(seed_table);
    map.locationTable_ = std::move(location_table);

    // Recompute occupancy statistics from the tables.
    map.stats_.storedLocations = map.locationTable_.size();
    double sumSq = 0;
    for (std::size_t h = 0; h + 1 < map.seedTable_.size(); ++h) {
        u64 n = map.seedTable_[h + 1] - map.seedTable_[h];
        if (n > 0) {
            ++map.stats_.distinctHashes;
            sumSq += static_cast<double>(n) * n;
        }
    }
    map.stats_.totalSeeds = map.stats_.storedLocations;
    map.stats_.avgLocationsPerSeed =
        map.stats_.distinctHashes
            ? static_cast<double>(map.stats_.storedLocations) /
                  map.stats_.distinctHashes
            : 0.0;
    map.stats_.queryWeightedLocations =
        map.stats_.storedLocations
            ? sumSq / static_cast<double>(map.stats_.storedLocations)
            : 0.0;
    return map;
}

u32
SeedMap::hashSeed(const DnaSequence &seed) const
{
    gpx_assert(seed.size() == params_.seedLen, "seed length mismatch");
    return util::xxh32(seed.packed().data(), seed.packed().size());
}

u32
SeedMap::hashSeedAt(const genomics::DnaView &read, u64 offset) const
{
    // Repack the (generally byte-misaligned) seed slice into a stack
    // buffer word-by-word: same bytes hashSeed() sees for an owning
    // copy, without the per-seed heap allocation.
    genomics::DnaView seed = read.sub(offset, params_.seedLen);
    u8 buf[(kMaxSeedLen + 3) / 4];
    static_assert(sizeof(buf) * 4 >= kMaxSeedLen);
    seed.packTo(buf);
    return util::xxh32(buf, seed.packedBytes());
}

std::span<const u32>
SeedMap::lookup(u32 hash) const
{
    u32 h = maskHash(hash);
    u32 lo = seedTable_[h];
    u32 hi = seedTable_[h + 1];
    return { locationTable_.data() + lo, locationTable_.data() + hi };
}

} // namespace genpair
} // namespace gpx
