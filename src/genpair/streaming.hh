/**
 * @file
 * Streaming mapping driver: FASTQ pair in, SAM out, bounded memory,
 * every pipeline stage free to scale independently.
 *
 * The batch ParallelMapper needs every read pair resident; real read
 * sets (the paper maps 100 M pairs, §6) do not fit the host budget
 * that way. StreamingMapper runs the async I/O spine over fixed-size
 * chunks of pairs:
 *
 *   chunker thread  — scans raw FASTQ text (gzip inflated, prefetch
 *                     double-buffered) into sequence-numbered chunks
 *   N parser threads— full parse/encode of disjoint chunks (the
 *                     --io-threads knob)
 *   mapper (caller) — feeds each parsed chunk to the MapperEngine
 *                     worker pool, in arrival order
 *   writer thread   — sequence-numbered reorder buffer; emits trace
 *                     events and batched SAM strictly in input order
 *
 * Stages hand off through bounded util::Channel queues, so peak
 * memory stays proportional to the queue capacities regardless of
 * input size, and the channels' stall counters feed the reader-stall/
 * writer-stall fields of PipelineStats (`gpx_map --stats-json`).
 * Mapping is per-pair pure and the writer reorders by chunk sequence
 * number, so output is bit-identical to a whole-file batch run at
 * every reader/worker/chunk-size combination.
 */

#ifndef GPX_GENPAIR_STREAMING_HH
#define GPX_GENPAIR_STREAMING_HH

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

#include "genomics/fasta.hh"
#include "genomics/fastq_ingest.hh"
#include "genomics/sam.hh"
#include "genpair/driver.hh"

namespace gpx {
namespace genpair {

/** Streaming run summary. */
struct StreamingResult
{
    u64 pairs = 0;
    u64 chunks = 0;
    PipelineStats stats; ///< aggregated over all chunks (incl. stalls)
    /** End-to-end timing including FASTQ parse and SAM drain. */
    RunTiming total;
    /** Pure mapping time summed over chunks (see RunTiming). */
    RunTiming mapping;
};

/** Outcome of one StreamingMapper::tryRun(). */
enum class StreamRunStatus
{
    kOk,
    kParseError, ///< malformed/disagreeing FASTQ; see the error string
    kTooLarge,   ///< input exceeded the caller's max_pairs bound
    kWriteError, ///< SAM emission failed (checked writer); output torn
};

/** Chunked mapping driver over the shared SeedMap. */
class StreamingMapper
{
  public:
    /**
     * Consumer of recorded per-pair stage events, invoked on the
     * emission thread once per chunk, in input order (the hand-off to
     * `gpx_map --trace`). Requires DriverConfig::recordTrace.
     */
    using TraceSink =
        std::function<void(const PairTraceRecord *records, u64 count)>;

    /**
     * @param map Non-owning SeedMap view (owning or mmap-backed; the
     *            backing storage must outlive the mapper).
     * @param chunk_pairs Read pairs mapped per chunk (the memory bound).
     * @param io_threads Parser threads of the ingest spine (>= 1).
     */
    StreamingMapper(const genomics::Reference &ref,
                    const SeedMapView &map, const DriverConfig &config,
                    u64 chunk_pairs = 65536, u32 io_threads = 1);

    /**
     * Borrowing form for daemons: rides an existing ParallelMapper
     * (thread-safe mapAllShared submission) instead of owning a pool,
     * so many request handlers can stream over one resident mount.
     * @p shared must outlive this mapper.
     */
    explicit StreamingMapper(ParallelMapper &shared,
                             u64 chunk_pairs = 65536, u32 io_threads = 1,
                             bool record_trace = false);

    /**
     * Map all pairs from @p r1/@p r2 (same-order FASTQ streams; plain
     * or gzip) and write records through @p sam. Fatal error — naming
     * the stream that ended early — if the streams yield different
     * record counts. @p trace_sink (optional) receives each chunk's
     * stage-event records; the driver must have been configured with
     * recordTrace.
     */
    StreamingResult run(std::istream &r1, std::istream &r2,
                        genomics::SamWriter &sam,
                        const TraceSink &trace_sink = nullptr);

    /**
     * Recoverable form of run() (the gpx_serve discipline): malformed
     * input and an exceeded @p max_pairs bound (0 = unbounded) come
     * back as a status instead of killing the process. On kParseError
     * @p error carries the winning diagnostic — message plus the
     * stream rank (0 = R1, 1 = R2, 2 = pair-level disagreement) so
     * callers can attribute it. On any status other than kOk the SAM
     * output and @p result are partial and must be discarded by the
     * caller.
     */
    StreamRunStatus tryRun(std::istream &r1, std::istream &r2,
                           genomics::SamWriter &sam,
                           StreamingResult &result,
                           genomics::IngestError *error = nullptr,
                           u64 max_pairs = 0,
                           const TraceSink &trace_sink = nullptr);

  private:
    std::unique_ptr<ParallelMapper> owned_;
    ParallelMapper &mapper_;
    const bool borrowed_;
    u64 chunkPairs_;
    u32 ioThreads_;
    bool traceEnabled_;
};

} // namespace genpair
} // namespace gpx

#endif // GPX_GENPAIR_STREAMING_HH
