/**
 * @file
 * Streaming mapping driver: FASTQ pair in, SAM out, bounded memory,
 * I/O overlapped with compute.
 *
 * The batch ParallelMapper needs every read pair resident; real read
 * sets (the paper maps 100 M pairs, §6) do not fit the host budget
 * that way. StreamingMapper runs a three-stage pipeline over fixed-size
 * chunks: a reader thread parses the next FASTQ chunk and a writer
 * thread drains the previous chunk's SAM records while the persistent
 * worker pool maps the current chunk. Each hand-off queue is
 * single-slot (double buffering per stage), so peak memory stays
 * bounded by a small constant number of chunks regardless of input
 * size, and results are bit-identical to a whole-file batch run
 * (mapping is per-pair pure and chunks flow reader → mapper → writer
 * in input order).
 */

#ifndef GPX_GENPAIR_STREAMING_HH
#define GPX_GENPAIR_STREAMING_HH

#include <functional>
#include <iosfwd>

#include "genomics/fasta.hh"
#include "genomics/sam.hh"
#include "genpair/driver.hh"

namespace gpx {
namespace genpair {

/** Streaming run summary. */
struct StreamingResult
{
    u64 pairs = 0;
    u64 chunks = 0;
    PipelineStats stats; ///< aggregated over all chunks
    /** End-to-end timing including FASTQ parse and SAM drain. */
    RunTiming total;
    /** Pure mapping time summed over chunks (see RunTiming). */
    RunTiming mapping;
};

/** Chunked mapping driver over the shared SeedMap. */
class StreamingMapper
{
  public:
    /**
     * Consumer of recorded per-pair stage events, invoked on the
     * mapping thread once per chunk, in input order (the hand-off to
     * `gpx_map --trace`). Requires DriverConfig::recordTrace.
     */
    using TraceSink =
        std::function<void(const PairTraceRecord *records, u64 count)>;

    /**
     * @param map Non-owning SeedMap view (owning or mmap-backed; the
     *            backing storage must outlive the mapper).
     * @param chunk_pairs Read pairs mapped per chunk (the memory bound).
     */
    StreamingMapper(const genomics::Reference &ref,
                    const SeedMapView &map, const DriverConfig &config,
                    u64 chunk_pairs = 65536);

    /**
     * Map all pairs from @p r1/@p r2 (same-order FASTQ streams) and
     * write records through @p sam. Fatal error — naming the stream
     * that ended early — if the streams yield different record counts.
     * @p trace_sink (optional) receives each chunk's stage-event
     * records; the driver must have been configured with recordTrace.
     */
    StreamingResult run(std::istream &r1, std::istream &r2,
                        genomics::SamWriter &sam,
                        const TraceSink &trace_sink = nullptr);

  private:
    const genomics::Reference &ref_;
    ParallelMapper mapper_;
    u64 chunkPairs_;
    bool traceEnabled_;
};

} // namespace genpair
} // namespace gpx

#endif // GPX_GENPAIR_STREAMING_HH
