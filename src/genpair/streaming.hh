/**
 * @file
 * Streaming mapping driver: FASTQ pair in, SAM out, bounded memory,
 * I/O overlapped with compute.
 *
 * The batch ParallelMapper needs every read pair resident; real read
 * sets (the paper maps 100 M pairs, §6) do not fit the host budget
 * that way. StreamingMapper runs a three-stage pipeline over fixed-size
 * chunks: a reader thread parses the next FASTQ chunk and a writer
 * thread drains the previous chunk's SAM records while the persistent
 * worker pool maps the current chunk. Each hand-off queue is
 * single-slot (double buffering per stage), so peak memory stays
 * bounded by a small constant number of chunks regardless of input
 * size, and results are bit-identical to a whole-file batch run
 * (mapping is per-pair pure and chunks flow reader → mapper → writer
 * in input order).
 */

#ifndef GPX_GENPAIR_STREAMING_HH
#define GPX_GENPAIR_STREAMING_HH

#include <iosfwd>

#include "genomics/fasta.hh"
#include "genomics/sam.hh"
#include "genpair/driver.hh"

namespace gpx {
namespace genpair {

/** Streaming run summary. */
struct StreamingResult
{
    u64 pairs = 0;
    u64 chunks = 0;
    PipelineStats stats; ///< aggregated over all chunks
    /** End-to-end wall time including FASTQ parse and SAM drain. */
    double seconds = 0;
    /** Pure mapping wall time summed over chunks (see DriverResult). */
    double mapSeconds = 0;
    /** End-to-end throughput (pairs / seconds). */
    double pairsPerSec = 0;
};

/** Chunked mapping driver over the shared SeedMap. */
class StreamingMapper
{
  public:
    /**
     * @param map Non-owning SeedMap view (owning or mmap-backed; the
     *            backing storage must outlive the mapper).
     * @param chunk_pairs Read pairs mapped per chunk (the memory bound).
     */
    StreamingMapper(const genomics::Reference &ref,
                    const SeedMapView &map, const DriverConfig &config,
                    u64 chunk_pairs = 65536);

    /**
     * Map all pairs from @p r1/@p r2 (same-order FASTQ streams) and
     * write records through @p sam. Fatal error — naming the stream
     * that ended early — if the streams yield different record counts.
     */
    StreamingResult run(std::istream &r1, std::istream &r2,
                        genomics::SamWriter &sam);

  private:
    const genomics::Reference &ref_;
    ParallelMapper mapper_;
    u64 chunkPairs_;
};

} // namespace genpair
} // namespace gpx

#endif // GPX_GENPAIR_STREAMING_HH
