#include "genpair/light_align.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/simd.hh"

namespace gpx {
namespace genpair {

using align::HammingMask;
using genomics::Cigar;
using genomics::CigarOp;
using genomics::DnaView;

LightResult
LightAligner::evaluateHypotheses(u32 read_len, u32 center,
                                 const u32 *popcount, const u32 *prefix,
                                 const u32 *suffix, u32 stride) const
{
    const u32 n = read_len;
    const u32 e = params_.maxShift;
    const i32 minScore = params_.minScoreFor(n);
    LightResult best;

    auto consider = [&](i32 score, GlobalPos rel_start, Cigar cigar) {
        if (score > best.score || !best.aligned) {
            best.aligned = true;
            best.score = score;
            best.pos = rel_start;
            best.cigar = std::move(cigar);
        }
    };
    best.aligned = false;

    // Hypothesis class 1: scattered mismatches only, at each shift.
    for (i32 s = -static_cast<i32>(e); s <= static_cast<i32>(e); ++s) {
        ++best.hypothesesTried;
        u32 mm = n - popcount[static_cast<std::size_t>(
                          s + static_cast<i32>(e)) *
                      stride];
        if (mm > params_.maxMismatches)
            continue;
        i32 score = params_.scoring.scoreFromCounts(n - mm, mm, {});
        if (score < minScore)
            continue;
        Cigar cigar;
        cigar.push(CigarOp::Match, n);
        consider(score, static_cast<GlobalPos>(
                            static_cast<i64>(center) + s),
                 std::move(cigar));
    }

    // Hypothesis class 2: one run of k consecutive insertions/deletions.
    // A (s1 -> prefix mask, s2 -> suffix mask) pair with s2 > s1 models a
    // deletion of k = s2 - s1 reference bases; s2 < s1 models an
    // insertion. Seeds sit at different read offsets, so the prefix mask
    // is not always shift 0 (candidate positions can be displaced by the
    // gap itself).
    for (i32 s1 = -static_cast<i32>(e); s1 <= static_cast<i32>(e); ++s1) {
        for (i32 s2 = -static_cast<i32>(e); s2 <= static_cast<i32>(e);
             ++s2) {
            if (s1 == s2)
                continue;
            ++best.hypothesesTried;
            u32 pre = prefix[static_cast<std::size_t>(
                                 s1 + static_cast<i32>(e)) *
                             stride];
            u32 suf = suffix[static_cast<std::size_t>(
                                 s2 + static_cast<i32>(e)) *
                             stride];
            if (s2 > s1) {
                // Deletion of k reference bases after read position p.
                u32 k = static_cast<u32>(s2 - s1);
                if (pre + suf < n)
                    continue;
                i32 score = params_.scoring.scoreFromCounts(
                    n, 0, { k });
                if (score < minScore)
                    continue;
                u32 p = n - suf;
                Cigar cigar;
                cigar.push(CigarOp::Match, p);
                cigar.push(CigarOp::Deletion, k);
                cigar.push(CigarOp::Match, n - p);
                consider(score,
                         static_cast<GlobalPos>(
                             static_cast<i64>(center) + s1),
                         std::move(cigar));
            } else {
                // Insertion of k read bases after read position p.
                u32 k = static_cast<u32>(s1 - s2);
                if (k >= n)
                    continue;
                if (pre + suf < n - k)
                    continue;
                i32 score = params_.scoring.scoreFromCounts(
                    n - k, 0, { k });
                if (score < minScore)
                    continue;
                u32 p = suf <= n - k ? n - k - suf : 0;
                if (p > pre)
                    p = pre; // keep the prefix claim honest
                Cigar cigar;
                cigar.push(CigarOp::Match, p);
                cigar.push(CigarOp::Insertion, k);
                cigar.push(CigarOp::Match, n - k - p);
                consider(score,
                         static_cast<GlobalPos>(
                             static_cast<i64>(center) + s1),
                         std::move(cigar));
            }
        }
    }

    return best;
}

LightResult
LightAligner::alignWindow(const DnaView &read, const DnaView &window,
                          u32 center) const
{
    const u32 n = static_cast<u32>(read.size());
    auto masks = align::shiftedMasks(read, window, center,
                                     params_.maxShift);

    // Per-mask statistics (the hardware computes these for all masks
    // in parallel while streaming the read, §5.4).
    std::vector<u32> popcount(masks.size());
    std::vector<u32> prefix(masks.size()), suffix(masks.size());
    for (std::size_t i = 0; i < masks.size(); ++i) {
        popcount[i] = masks[i].popcount();
        prefix[i] = masks[i].onesPrefix();
        suffix[i] = masks[i].onesSuffix();
    }

    return evaluateHypotheses(n, center, popcount.data(), prefix.data(),
                              suffix.data(), 1);
}

namespace {

/** Window extent check shared by both align() forms. */
inline bool
windowFor(const genomics::Reference &ref, const DnaView &read,
          GlobalPos candidate, u32 e, GlobalPos *wstart, u64 *wlen)
{
    // The window must cover [candidate-e, candidate+n+e) inside one
    // chromosome; otherwise the pair falls back to DP.
    if (candidate < e)
        return false;
    *wstart = candidate - e;
    *wlen = static_cast<u64>(read.size()) + 2 * e;
    return ref.windowValid(*wstart, *wlen);
}

} // namespace

LightResult
LightAligner::align(const DnaView &read, GlobalPos candidate) const
{
    const u32 e = params_.maxShift;
    GlobalPos wstart = 0;
    u64 wlen = 0;
    if (!windowFor(ref_, read, candidate, e, &wstart, &wlen))
        return {};

    DnaView window = ref_.windowView(wstart, wlen);
    LightResult res = alignWindow(read, window, e);
    if (res.aligned)
        res.pos = wstart + res.pos; // window-relative -> global
    return res;
}

LightResult
LightAligner::alignPlanes(const align::BitPlanes &read,
                          GlobalPos candidate,
                          LightAlignScratch &scratch) const
{
    const u32 e = params_.maxShift;
    const u32 n = read.bits();
    GlobalPos wstart = 0;
    u64 wlen = 0;
    // windowFor only consumes the read length; a zero-length view
    // stands in for the original DnaView.
    if (candidate < e)
        return {};
    wstart = candidate - e;
    wlen = static_cast<u64>(n) + 2 * e;
    if (!ref_.windowValid(wstart, wlen))
        return {};

    scratch.window.assign(ref_.windowView(wstart, wlen));
    align::shiftedMasksInto(read, scratch.window, e, e, scratch.masks);
    scratch.popcount.resize(scratch.masks.size());
    scratch.prefix.resize(scratch.masks.size());
    scratch.suffix.resize(scratch.masks.size());
    for (std::size_t i = 0; i < scratch.masks.size(); ++i) {
        scratch.popcount[i] = scratch.masks[i].popcount();
        scratch.prefix[i] = scratch.masks[i].onesPrefix();
        scratch.suffix[i] = scratch.masks[i].onesSuffix();
    }

    LightResult res = evaluateHypotheses(
        n, e, scratch.popcount.data(), scratch.prefix.data(),
        scratch.suffix.data(), 1);
    if (res.aligned)
        res.pos = wstart + res.pos; // window-relative -> global
    return res;
}

LightResult
LightAligner::align(const DnaView &read, GlobalPos candidate,
                    LightAlignScratch &scratch) const
{
    if (!scratch.readValid) {
        scratch.read.assign(read);
        scratch.readValid = true;
    }
    return alignPlanes(scratch.read, candidate, scratch);
}

void
LightAligner::alignBatch(const LightBatchItem *items, std::size_t count,
                         LightBatchScratch &scratch,
                         LightResult *out) const
{
    const u32 e = params_.maxShift;
    const util::SimdBackend backend = util::activeSimdBackend();
    const u32 maxLanes = util::simdMaskLanes(backend);

    std::size_t i = 0;
    while (i < count) {
        const u32 n = items[i].read->bits();
        if (backend == util::SimdBackend::Scalar || n == 0) {
            out[i] = alignPlanes(*items[i].read, items[i].candidate,
                                 scratch.scalar);
            ++i;
            continue;
        }

        // Lane group: consecutive items with this read length.
        std::size_t g = i + 1;
        while (g < count && g - i < maxLanes &&
               items[g].read->bits() == n)
            ++g;

        // Stage the lanes whose window is in bounds; out-of-window
        // items keep the scalar contract (empty result, zero
        // hypotheses) without burning a lane.
        if (scratch.windows.size() < maxLanes)
            scratch.windows.resize(maxLanes);
        u32 lanes = 0;
        GlobalPos wstarts[16];
        std::size_t laneItem[16];
        for (std::size_t k = i; k < g; ++k) {
            out[k] = {};
            const GlobalPos candidate = items[k].candidate;
            if (candidate < e)
                continue;
            const GlobalPos wstart = candidate - e;
            const u64 wlen = static_cast<u64>(n) + 2 * e;
            if (!ref_.windowValid(wstart, wlen))
                continue;
            wstarts[lanes] = wstart;
            laneItem[lanes] = k;
            ++lanes;
        }
        if (lanes > 0) {
            scratch.shd.begin(lanes, n, e, e);
            for (u32 l = 0; l < lanes; ++l) {
                scratch.windows[l].assign(ref_.windowView(
                    wstarts[l], static_cast<u64>(n) + 2 * e));
                scratch.shd.setLane(l, *items[laneItem[l]].read,
                                    scratch.windows[l]);
            }
            scratch.shd.run();
            for (u32 l = 0; l < lanes; ++l) {
                LightResult res = evaluateHypotheses(
                    n, e, scratch.shd.popcount.data() + l,
                    scratch.shd.prefix.data() + l,
                    scratch.shd.suffix.data() + l, lanes);
                if (res.aligned)
                    res.pos = wstarts[l] + res.pos;
                out[laneItem[l]] = res;
            }
        }
        i = g;
    }
}

} // namespace genpair
} // namespace gpx
