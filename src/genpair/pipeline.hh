/**
 * @file
 * GenPairPipeline: the end-to-end online GenPair read-mapping pipeline
 * (paper Fig. 3) with the traditional-DP fallback structure of Fig. 10.
 *
 * Per pair: Partitioned Seeding -> SeedMap Query -> Paired-Adjacency
 * Filtering -> Light Alignment, with three fallback exits:
 *  1. no SeedMap hit at all            -> full DP pipeline (paper: 2.09%)
 *  2. no candidate within delta        -> full DP pipeline (paper: 8.79%)
 *  3. Light Alignment rejects          -> DP alignment at the known
 *                                         candidate positions (13.06%)
 *
 * Orientation: a proper FR pair maps read 1 forward + read 2 as its
 * reverse complement, or the mirror image; the pipeline evaluates both
 * orientations (the paper leaves this implicit; see DESIGN.md).
 */

#ifndef GPX_GENPAIR_PIPELINE_HH
#define GPX_GENPAIR_PIPELINE_HH

#include <iosfwd>
#include <vector>

#include "baseline/mm2lite.hh"
#include "genomics/readpair.hh"
#include "genpair/light_align.hh"
#include "genpair/pafilter.hh"
#include "genpair/seeder.hh"
#include "genpair/seedmap.hh"
#include "genpair/stages.hh"
#include "util/types.hh"

namespace gpx {
namespace genpair {

/** Online pipeline parameters. */
struct GenPairParams
{
    /** Paired-adjacency distance threshold delta (paper: 200-500 bp). */
    u32 delta = 500;
    LightAlignParams light;
    /** Candidate pairs light-aligned before giving up, per orientation. */
    u32 maxCandidatePairs = 32;
    /** Minimum acceptable DP fallback score. */
    i32 minDpScore = 100;
    /** Window slack for the DP alignment fallback. */
    u32 dpSlack = 24;
};

/** Pipeline counters; drives Fig. 10, Fig. 12 and the hardware sizing. */
struct PipelineStats
{
    u64 pairsTotal = 0;
    u64 seedMissFallback = 0;   ///< SeedMap returned nothing (full DP)
    u64 paFilterFallback = 0;   ///< adjacency filter emptied (full DP)
    u64 lightAlignFallback = 0; ///< light alignment rejected (DP align)
    u64 lightAligned = 0;       ///< fast path end to end
    u64 dpAligned = 0;          ///< DP-aligned at GenPair candidates
    u64 fullDpMapped = 0;       ///< mapped by the fallback pipeline
    u64 unmapped = 0;

    QueryWork query;
    u64 candidatePairs = 0;       ///< pairs surviving the PA filter
    u64 lightAlignsAttempted = 0; ///< single-read light alignments run
    u64 lightHypotheses = 0;
    u64 gateRejected = 0; ///< candidates dropped by the SS8 gate

    /**
     * Ingest accounting (streaming drivers only; zero for batch runs,
     * whose reads arrive pre-encoded): non-ACGT input characters the
     * FASTQ parsers encoded as A (IngestStats), summed over both
     * streams. Dirty inputs must stay visible in --stats-json no
     * matter which driver consumed them.
     */
    u64 ambiguousBases = 0;

    /**
     * I/O-spine stall accounting (streaming drivers only; zero for
     * batch runs). Reader stall is time the mapping stage spent
     * waiting for parsed input (ingest-bound); writer stall is time it
     * spent waiting for emission backpressure (output-bound). Either
     * dominating the wall clock names the pipeline's bottleneck.
     */
    double readerStallSeconds = 0;
    double writerStallSeconds = 0;

    /** Per-stage visit counters of the stage graph (stages.hh). */
    std::array<StageCounters, kNumStages> stage{};

    const StageCounters &
    stageCounters(StageId id) const
    {
        return stage[static_cast<std::size_t>(id)];
    }

    /**
     * Merge another worker's (or chunk's) counters into this one. The
     * single accumulation point for every stats merge in the tree —
     * hand-rolled field lists in the drivers drifted once (dropping
     * gateRejected) and must not come back.
     */
    PipelineStats &
    operator+=(const PipelineStats &other)
    {
        pairsTotal += other.pairsTotal;
        seedMissFallback += other.seedMissFallback;
        paFilterFallback += other.paFilterFallback;
        lightAlignFallback += other.lightAlignFallback;
        lightAligned += other.lightAligned;
        dpAligned += other.dpAligned;
        fullDpMapped += other.fullDpMapped;
        unmapped += other.unmapped;
        query += other.query;
        candidatePairs += other.candidatePairs;
        lightAlignsAttempted += other.lightAlignsAttempted;
        lightHypotheses += other.lightHypotheses;
        gateRejected += other.gateRejected;
        ambiguousBases += other.ambiguousBases;
        readerStallSeconds += other.readerStallSeconds;
        writerStallSeconds += other.writerStallSeconds;
        for (std::size_t s = 0; s < kNumStages; ++s)
            stage[s] += other.stage[s];
        return *this;
    }

    /**
     * Machine-readable form: every counter above plus the per-stage
     * visit counters, as one JSON object (gpx_map --stats-json).
     */
    void writeJson(std::ostream &os) const;

    double
    fraction(u64 value) const
    {
        return pairsTotal ? static_cast<double>(value) / pairsTotal : 0.0;
    }

    /** Average light alignments per pair (paper §7.2: 11.6). */
    double
    avgAlignmentsPerPair() const
    {
        return pairsTotal
                   ? static_cast<double>(lightAlignsAttempted) / pairsTotal
                   : 0.0;
    }
};

/** The online GenPair pipeline with DP fallback. */
class GenPairPipeline
{
  public:
    /**
     * @param ref Reference genome.
     * @param map View of a prebuilt SeedMap over @p ref (owning or
     *            mmap-backed; the backing storage must outlive the
     *            pipeline).
     * @param params Online parameters.
     * @param fallback DP pipeline for residual pairs; may be null, in
     *                 which case residual pairs count as unmapped (used
     *                 by the filter-threshold sweep of §7.8).
     */
    GenPairPipeline(const genomics::Reference &ref,
                    const SeedMapView &map, const GenPairParams &params,
                    baseline::Mm2Lite *fallback);

    /**
     * Map one pair through the full Fig. 3 pipeline. A batch-of-one
     * through the stage graph; kept so every historical call site (and
     * the golden-corpus digest) is untouched by the batched engine.
     */
    genomics::PairMapping mapPair(const genomics::ReadPair &pair);

    /**
     * Map @p n pairs through the batched stage graph: out[i] is the
     * mapping of pairs[i]. Bit-identical to calling mapPair() per pair
     * (stats included); the batch form exists for throughput — SoA
     * lanes and scratch reuse across the whole batch. When @p trace is
     * non-null it must hold @p n records; each pair's stage events are
     * recorded for hwsim co-simulation (see stages.hh).
     */
    void mapBatch(const genomics::ReadPair *pairs, u64 n,
                  genomics::PairMapping *out,
                  PairTraceRecord *trace = nullptr);

    /**
     * Install an admission gate ahead of Light Alignment (paper SS8;
     * nullptr = no gate). Non-owning; the gate must outlive the
     * pipeline. A sound (never-overestimating) gate leaves mappings
     * bit-identical and only removes wasted hypothesis work.
     */
    void setLightAlignGate(LightAlignGate *gate) { gate_ = gate; }

    const PipelineStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

    const GenPairParams &params() const { return params_; }

  private:
    const genomics::Reference &ref_;
    SeedMapView map_;
    GenPairParams params_;
    PartitionedSeeder seeder_;
    LightAligner light_;
    LightAlignGate *gate_ = nullptr;
    baseline::Mm2Lite *fallback_;
    PipelineStats stats_;
    /** Reused across mapBatch()/mapPair() calls (scratch persistence). */
    PairBatch batch_;
};

} // namespace genpair
} // namespace gpx

#endif // GPX_GENPAIR_PIPELINE_HH
