#include "genpair/pipeline.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gpx {
namespace genpair {

using genomics::DnaSequence;
using genomics::Mapping;
using genomics::MappingPath;
using genomics::PairMapping;
using genomics::ReadPair;

GenPairPipeline::GenPairPipeline(const genomics::Reference &ref,
                                 const SeedMapView &map,
                                 const GenPairParams &params,
                                 baseline::Mm2Lite *fallback)
    : ref_(ref), map_(map), params_(params), seeder_(map),
      light_(ref, params.light), fallback_(fallback)
{
}

PairMapping
GenPairPipeline::mapPair(const ReadPair &pair)
{
    ++stats_.pairsTotal;

    // Oriented queries: a proper FR pair has one read forward (left) and
    // the other reverse-complemented (right).
    DnaSequence r1f = pair.first.seq;
    DnaSequence r1r = pair.first.seq.revComp();
    DnaSequence r2f = pair.second.seq;
    DnaSequence r2r = pair.second.seq.revComp();

    Oriented orients[2] = {
        { &r1f, &r2r, true, {} },  // fragment on the forward strand
        { &r2f, &r1r, false, {} }, // fragment on the reverse strand
    };

    u64 totalLocations = 0;
    for (auto &o : orients) {
        auto leftCands =
            queryCandidates(map_, seeder_.extract(*o.left), stats_.query);
        auto rightCands =
            queryCandidates(map_, seeder_.extract(*o.right), stats_.query);
        totalLocations += leftCands.size() + rightCands.size();
        o.cands = pairedAdjacencyFilter(leftCands, rightCands,
                                        params_.delta, stats_.query);
        stats_.candidatePairs += o.cands.size();
    }

    auto fullDp = [&](u64 &counter) -> PairMapping {
        ++counter;
        if (!fallback_) {
            ++stats_.unmapped;
            PairMapping out;
            out.path = MappingPath::Unmapped;
            return out;
        }
        PairMapping out = fallback_->mapPair(pair);
        out.path = MappingPath::FullDpFallback;
        if (out.bothMapped() || out.first.mapped || out.second.mapped)
            ++stats_.fullDpMapped;
        else
            ++stats_.unmapped;
        return out;
    };

    // Fallback exit 1: the SeedMap query produced no location at all.
    if (totalLocations == 0)
        return fullDp(stats_.seedMissFallback);

    // Fallback exit 2: no candidate pair within delta.
    if (orients[0].cands.empty() && orients[1].cands.empty())
        return fullDp(stats_.paFilterFallback);

    // Light Alignment over the surviving candidates.
    struct Best
    {
        bool found = false;
        i64 score = 0;
        LightResult left;
        LightResult right;
        bool read1IsLeft = true;
    } best;

    for (const auto &o : orients) {
        u32 budget = params_.maxCandidatePairs;
        for (const auto &cand : o.cands) {
            if (budget-- == 0)
                break;
            if (gate_ && !gate_->admit(*o.left, cand.leftStart)) {
                ++stats_.gateRejected;
                continue;
            }
            LightResult la = light_.align(*o.left, cand.leftStart);
            ++stats_.lightAlignsAttempted;
            stats_.lightHypotheses += la.hypothesesTried;
            if (!la.aligned)
                continue;
            if (gate_ && !gate_->admit(*o.right, cand.rightStart)) {
                ++stats_.gateRejected;
                continue;
            }
            LightResult ra = light_.align(*o.right, cand.rightStart);
            ++stats_.lightAlignsAttempted;
            stats_.lightHypotheses += ra.hypothesesTried;
            if (!ra.aligned)
                continue;
            i64 score = static_cast<i64>(la.score) + ra.score;
            if (!best.found || score > best.score) {
                best.found = true;
                best.score = score;
                best.left = la;
                best.right = ra;
                best.read1IsLeft = o.read1IsLeft;
            }
        }
    }

    if (best.found) {
        ++stats_.lightAligned;
        PairMapping out;
        out.path = MappingPath::LightAligned;
        Mapping leftMap, rightMap;
        leftMap.mapped = true;
        leftMap.pos = best.left.pos;
        leftMap.score = best.left.score;
        leftMap.cigar = best.left.cigar;
        leftMap.reverse = false;
        rightMap.mapped = true;
        rightMap.pos = best.right.pos;
        rightMap.score = best.right.score;
        rightMap.cigar = best.right.cigar;
        rightMap.reverse = true;
        if (best.read1IsLeft) {
            out.first = std::move(leftMap);
            out.second = std::move(rightMap);
        } else {
            // Orientation B: read 2 maps forward, read 1 reverse.
            leftMap.reverse = false;
            rightMap.reverse = true;
            out.second = std::move(leftMap);
            out.first = std::move(rightMap);
        }
        return out;
    }

    // Fallback exit 3: light alignment rejected every candidate; DP-align
    // at the known candidate positions (no seeding/chaining needed).
    ++stats_.lightAlignFallback;
    if (!fallback_) {
        ++stats_.unmapped;
        PairMapping out;
        out.path = MappingPath::Unmapped;
        return out;
    }

    struct DpBest
    {
        bool found = false;
        i64 score = 0;
        Mapping left;
        Mapping right;
        bool read1IsLeft = true;
    } dpBest;

    for (const auto &o : orients) {
        u32 budget = std::max<u32>(4, params_.maxCandidatePairs / 4);
        for (const auto &cand : o.cands) {
            if (budget-- == 0)
                break;
            Mapping lm = fallback_->alignAt(*o.left, cand.leftStart,
                                            params_.dpSlack);
            if (!lm.mapped || lm.score < params_.minDpScore)
                continue;
            Mapping rm = fallback_->alignAt(*o.right, cand.rightStart,
                                            params_.dpSlack);
            if (!rm.mapped || rm.score < params_.minDpScore)
                continue;
            i64 score = static_cast<i64>(lm.score) + rm.score;
            if (!dpBest.found || score > dpBest.score) {
                dpBest.found = true;
                dpBest.score = score;
                dpBest.left = std::move(lm);
                dpBest.right = std::move(rm);
                dpBest.read1IsLeft = o.read1IsLeft;
            }
        }
    }

    PairMapping out;
    if (dpBest.found) {
        ++stats_.dpAligned;
        out.path = MappingPath::DpAlignFallback;
        dpBest.left.reverse = false;
        dpBest.right.reverse = true;
        if (dpBest.read1IsLeft) {
            out.first = std::move(dpBest.left);
            out.second = std::move(dpBest.right);
        } else {
            out.second = std::move(dpBest.left);
            out.first = std::move(dpBest.right);
        }
    } else {
        ++stats_.unmapped;
        out.path = MappingPath::Unmapped;
    }
    return out;
}

} // namespace genpair
} // namespace gpx
