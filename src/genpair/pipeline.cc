#include "genpair/pipeline.hh"

#include <ostream>

#include "genpair/stages.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace gpx {
namespace genpair {

using genomics::PairMapping;
using genomics::ReadPair;

GenPairPipeline::GenPairPipeline(const genomics::Reference &ref,
                                 const SeedMapView &map,
                                 const GenPairParams &params,
                                 baseline::Mm2Lite *fallback)
    : ref_(ref), map_(map), params_(params), seeder_(map),
      light_(ref, params.light), fallback_(fallback)
{
}

PairMapping
GenPairPipeline::mapPair(const ReadPair &pair)
{
    PairMapping out;
    mapBatch(&pair, 1, &out, nullptr);
    return out;
}

void
GenPairPipeline::mapBatch(const ReadPair *pairs, u64 n, PairMapping *out,
                          PairTraceRecord *trace)
{
    if (n == 0)
        return;
    StageContext ctx{ ref_,  map_,      params_,   seeder_,
                      light_, gate_,    fallback_, stats_ };
    batch_.bind(pairs, n, out, trace);
    runStageGraph(ctx, batch_);
}

void
PipelineStats::writeJson(std::ostream &os) const
{
    os << "{\n"
       << "  \"simd\": {\"backend\": \""
       << util::simdBackendName(util::activeSimdBackend())
       << "\", \"reason\": \"" << util::simdBackendReason() << "\"},\n"
       << "  \"pairs_total\": " << pairsTotal << ",\n"
       << "  \"light_aligned\": " << lightAligned << ",\n"
       << "  \"dp_aligned\": " << dpAligned << ",\n"
       << "  \"seed_miss_fallback\": " << seedMissFallback << ",\n"
       << "  \"pa_filter_fallback\": " << paFilterFallback << ",\n"
       << "  \"light_align_fallback\": " << lightAlignFallback << ",\n"
       << "  \"full_dp_mapped\": " << fullDpMapped << ",\n"
       << "  \"unmapped\": " << unmapped << ",\n"
       << "  \"candidate_pairs\": " << candidatePairs << ",\n"
       << "  \"light_aligns_attempted\": " << lightAlignsAttempted
       << ",\n"
       << "  \"light_hypotheses\": " << lightHypotheses << ",\n"
       << "  \"gate_rejected\": " << gateRejected << ",\n"
       << "  \"query\": {\"seed_lookups\": " << query.seedLookups
       << ", \"locations_fetched\": " << query.locationsFetched
       << ", \"filter_iterations\": " << query.filterIterations
       << "},\n"
       << "  \"ingest\": {\"ambiguous_bases\": " << ambiguousBases
       << "},\n"
       << "  \"io\": {\"reader_stall_seconds\": " << readerStallSeconds
       << ", \"writer_stall_seconds\": " << writerStallSeconds << "},\n"
       << "  \"stages\": {\n";
    for (std::size_t s = 0; s < kNumStages; ++s) {
        const StageCounters &c = stage[s];
        os << "    \"" << stageName(static_cast<StageId>(s))
           << "\": {\"batches\": " << c.batches
           << ", \"items_in\": " << c.itemsIn
           << ", \"items_out\": " << c.itemsOut << "}"
           << (s + 1 < kNumStages ? "," : "") << "\n";
    }
    os << "  }\n}\n";
}

} // namespace genpair
} // namespace gpx
