#include "genpair/stages.hh"

#include <algorithm>
#include <cstdint>
#include <ostream>

#include "genpair/pipeline.hh"
#include "util/logging.hh"

namespace gpx {
namespace genpair {

using genomics::DnaSequence;
using genomics::Mapping;
using genomics::MappingPath;
using genomics::PairMapping;

namespace {

/** Left/right sequences of one orientation (see the lane convention). */
struct OrientRefs
{
    const DnaSequence *left;
    const DnaSequence *right;
    bool read1IsLeft;
};

inline OrientRefs
orientation(const PairBatch &batch, u64 i, u32 o)
{
    if (o == 0)
        return { &batch.pairs[i].first.seq, &batch.rc2[i], true };
    return { &batch.pairs[i].second.seq, &batch.rc1[i], false };
}

inline StageCounters &
counters(const StageContext &ctx, StageId id)
{
    return ctx.stats.stage[static_cast<std::size_t>(id)];
}

/** Pairs still on the fast path (for the itemsOut accounting). */
inline u64
pendingCount(const PairBatch &batch)
{
    u64 n = 0;
    for (u64 i = 0; i < batch.size; ++i)
        n += batch.route[i] == PairRoute::Pending;
    return n;
}

} // namespace

const char *
stageName(StageId id)
{
    switch (id) {
    case StageId::Seed: return "seed";
    case StageId::Query: return "query";
    case StageId::PaFilter: return "pa_filter";
    case StageId::LightAlign: return "light_align";
    case StageId::Fallback: return "fallback";
    }
    return "?";
}

void
PairTraceRecord::writeText(std::ostream &os) const
{
    os << 'P';
    for (std::size_t s = 0; s < 6; ++s)
        os << ' ' << seedHash[s] << ' ' << locCount[s];
    os << ' ' << static_cast<u32>(route) << ' ' << filterIterations
       << ' ' << lightAligns << '\n';
}

void
PairBatch::bind(const genomics::ReadPair *p, u64 n,
                genomics::PairMapping *o, PairTraceRecord *t)
{
    pairs = p;
    size = n;
    out = o;
    trace = t;
    if (rc1.size() < n) {
        rc1.resize(n);
        rc2.resize(n);
    }
    seeds.resize(4 * n);
    route.assign(n, PairRoute::Pending);
    if (lightLeft.size() < 2 * n) {
        lightLeft.resize(2 * n);
        lightRight.resize(2 * n);
    }
    lightLeftValid.assign(2 * n, 0);
    lightRightValid.assign(2 * n, 0);
}

void
runSeedStage(const StageContext &ctx, PairBatch &batch)
{
    StageCounters &sc = counters(ctx, StageId::Seed);
    ++sc.batches;
    sc.itemsIn += batch.size;
    sc.itemsOut += batch.size;

    for (u64 i = 0; i < batch.size; ++i) {
        ++ctx.stats.pairsTotal;
        const genomics::ReadPair &pair = batch.pairs[i];
        batch.rc1[i].assignRevComp(pair.first.seq);
        batch.rc2[i].assignRevComp(pair.second.seq);
        batch.seeds[4 * i + 0] = ctx.seeder.extract(pair.first.seq);
        batch.seeds[4 * i + 1] = ctx.seeder.extract(batch.rc2[i]);
        batch.seeds[4 * i + 2] = ctx.seeder.extract(pair.second.seq);
        batch.seeds[4 * i + 3] = ctx.seeder.extract(batch.rc1[i]);
    }
}

void
runQueryStage(const StageContext &ctx, PairBatch &batch)
{
    StageCounters &sc = counters(ctx, StageId::Query);
    ++sc.batches;
    sc.itemsIn += batch.size;

    batch.candidates.clear();
    batch.candOffsets.clear();
    batch.candOffsets.reserve(4 * batch.size + 1);
    batch.candOffsets.push_back(0);

    for (u64 i = 0; i < batch.size; ++i) {
        u64 total = 0;
        for (u32 lane = 0; lane < 4; ++lane) {
            total += queryCandidatesInto(ctx.map,
                                         batch.seeds[4 * i + lane],
                                         ctx.stats.query,
                                         batch.candidates);
            batch.candOffsets.push_back(batch.candidates.size());
        }
        // Fallback exit 1: the SeedMap query produced no location at
        // all (across both orientations).
        if (total == 0)
            batch.route[i] = PairRoute::SeedMiss;

        if (batch.trace) {
            // The orientation-A seed stream (lanes 0 and 1) is what the
            // Partitioned Seeding hardware emits; record raw location
            // list lengths exactly like hwsim::buildWorkload().
            PairTraceRecord &tr = batch.trace[i];
            for (u32 s = 0; s < 3; ++s) {
                const Seed &a = batch.seeds[4 * i + 0][s];
                const Seed &b = batch.seeds[4 * i + 1][s];
                tr.seedHash[s] = a.hash;
                tr.locCount[s] =
                    static_cast<u32>(ctx.map.lookup(a.hash).size());
                tr.seedHash[s + 3] = b.hash;
                tr.locCount[s + 3] =
                    static_cast<u32>(ctx.map.lookup(b.hash).size());
            }
        }
    }
    sc.itemsOut += pendingCount(batch);
}

void
runPaFilterStage(const StageContext &ctx, PairBatch &batch)
{
    StageCounters &sc = counters(ctx, StageId::PaFilter);
    ++sc.batches;
    sc.itemsIn += batch.size;

    batch.candidatePairs.clear();
    batch.pairOffsets.clear();
    batch.pairOffsets.reserve(2 * batch.size + 1);
    batch.pairOffsets.push_back(0);

    for (u64 i = 0; i < batch.size; ++i) {
        const u64 itersBefore = ctx.stats.query.filterIterations;
        u64 survivors = 0;
        for (u32 o = 0; o < 2; ++o) {
            const u64 leftBegin = batch.candOffsets[4 * i + 2 * o];
            const u64 leftEnd = batch.candOffsets[4 * i + 2 * o + 1];
            const u64 rightEnd = batch.candOffsets[4 * i + 2 * o + 2];
            std::size_t cnt = pairedAdjacencyFilterInto(
                batch.candidates.data() + leftBegin, leftEnd - leftBegin,
                batch.candidates.data() + leftEnd, rightEnd - leftEnd,
                ctx.params.delta, ctx.stats.query, batch.candidatePairs);
            ctx.stats.candidatePairs += cnt;
            survivors += cnt;
            batch.pairOffsets.push_back(batch.candidatePairs.size());
        }
        // Fallback exit 2: no candidate pair within delta.
        if (batch.route[i] == PairRoute::Pending && survivors == 0)
            batch.route[i] = PairRoute::PaMiss;
        if (batch.trace)
            batch.trace[i].filterIterations = static_cast<u32>(
                ctx.stats.query.filterIterations - itersBefore);
    }
    sc.itemsOut += pendingCount(batch);
}

namespace {

/**
 * The gated light-alignment path: per-candidate scalar loop, exactly
 * the pre-batching behavior. Gates may be stateful (SneakySnake keeps
 * per-read state and its own counters), so admission order must stay
 * candidate-by-candidate; the SIMD batch path below only runs when no
 * gate is installed.
 */
void
runLightAlignStageGated(const StageContext &ctx, PairBatch &batch,
                        StageCounters &sc)
{
    for (u64 i = 0; i < batch.size; ++i) {
        if (batch.route[i] != PairRoute::Pending)
            continue;
        ++sc.itemsIn;
        const u64 alignsBefore = ctx.stats.lightAlignsAttempted;

        struct Best
        {
            bool found = false;
            i64 score = 0;
            LightResult left;
            LightResult right;
            bool read1IsLeft = true;
        } best;

        for (u32 o = 0; o < 2; ++o) {
            const OrientRefs refs = orientation(batch, i, o);
            // The read changed: drop the cached bit planes.
            batch.scratchLeft.invalidateRead();
            batch.scratchRight.invalidateRead();
            u32 budget = ctx.params.maxCandidatePairs;
            const u64 begin = batch.pairOffsets[2 * i + o];
            const u64 end = batch.pairOffsets[2 * i + o + 1];
            for (u64 c = begin; c < end; ++c) {
                if (budget-- == 0)
                    break;
                const CandidatePair &cand = batch.candidatePairs[c];
                if (ctx.gate &&
                    !ctx.gate->admit(*refs.left, cand.leftStart)) {
                    ++ctx.stats.gateRejected;
                    continue;
                }
                LightResult la = ctx.light.align(
                    *refs.left, cand.leftStart, batch.scratchLeft);
                ++ctx.stats.lightAlignsAttempted;
                ctx.stats.lightHypotheses += la.hypothesesTried;
                if (!la.aligned)
                    continue;
                if (ctx.gate &&
                    !ctx.gate->admit(*refs.right, cand.rightStart)) {
                    ++ctx.stats.gateRejected;
                    continue;
                }
                LightResult ra = ctx.light.align(
                    *refs.right, cand.rightStart, batch.scratchRight);
                ++ctx.stats.lightAlignsAttempted;
                ctx.stats.lightHypotheses += ra.hypothesesTried;
                if (!ra.aligned)
                    continue;
                i64 score = static_cast<i64>(la.score) + ra.score;
                if (!best.found || score > best.score) {
                    best.found = true;
                    best.score = score;
                    best.left = la;
                    best.right = ra;
                    best.read1IsLeft = refs.read1IsLeft;
                }
            }
        }

        if (batch.trace)
            batch.trace[i].lightAligns = static_cast<u32>(
                ctx.stats.lightAlignsAttempted - alignsBefore);

        if (best.found) {
            ++ctx.stats.lightAligned;
            ++sc.itemsOut;
            batch.route[i] = PairRoute::LightAligned;
            PairMapping &pm = batch.out[i];
            pm = {};
            pm.path = MappingPath::LightAligned;
            Mapping leftMap, rightMap;
            leftMap.mapped = true;
            leftMap.pos = best.left.pos;
            leftMap.score = best.left.score;
            leftMap.cigar = best.left.cigar;
            leftMap.reverse = false;
            rightMap.mapped = true;
            rightMap.pos = best.right.pos;
            rightMap.score = best.right.score;
            rightMap.cigar = best.right.cigar;
            rightMap.reverse = true;
            if (best.read1IsLeft) {
                pm.first = std::move(leftMap);
                pm.second = std::move(rightMap);
            } else {
                // Orientation B: read 2 maps forward, read 1 reverse.
                leftMap.reverse = false;
                rightMap.reverse = true;
                pm.second = std::move(leftMap);
                pm.first = std::move(rightMap);
            }
        } else {
            // Fallback exit 3: light alignment rejected every candidate.
            ++ctx.stats.lightAlignFallback;
            batch.route[i] = PairRoute::LightFallback;
        }
    }
}

/** Read planes of one pair-side, built once and shared per candidate. */
inline const align::BitPlanes &
leftPlanes(PairBatch &batch, u64 i, u32 o)
{
    align::BitPlanes &planes = batch.lightLeft[2 * i + o];
    if (!batch.lightLeftValid[2 * i + o]) {
        planes.assign(*orientation(batch, i, o).left);
        batch.lightLeftValid[2 * i + o] = 1;
    }
    return planes;
}

inline const align::BitPlanes &
rightPlanes(PairBatch &batch, u64 i, u32 o)
{
    align::BitPlanes &planes = batch.lightRight[2 * i + o];
    if (!batch.lightRightValid[2 * i + o]) {
        planes.assign(*orientation(batch, i, o).right);
        batch.lightRightValid[2 * i + o] = 1;
    }
    return planes;
}

} // namespace

void
runLightAlignStage(const StageContext &ctx, PairBatch &batch)
{
    StageCounters &sc = counters(ctx, StageId::LightAlign);
    ++sc.batches;

    if (ctx.gate) {
        runLightAlignStageGated(ctx, batch, sc);
        return;
    }

    // Gate-free path: evaluate the shifted-mask filter for whole lane
    // groups of candidates per vector register. The scalar loop
    // attempted the left side of every budgeted candidate and the
    // right side only where the left aligned; two phased sweeps keep
    // that exact attempt set, so every counter and trace field is
    // unchanged.
    struct CandRef
    {
        u64 pair;
        u64 cand; ///< index into batch.candidatePairs
        u32 orient;
    };
    std::vector<CandRef> cands;
    std::vector<LightBatchItem> leftItems;
    for (u64 i = 0; i < batch.size; ++i) {
        if (batch.route[i] != PairRoute::Pending)
            continue;
        ++sc.itemsIn;
        for (u32 o = 0; o < 2; ++o) {
            u32 budget = ctx.params.maxCandidatePairs;
            const u64 begin = batch.pairOffsets[2 * i + o];
            const u64 end = batch.pairOffsets[2 * i + o + 1];
            for (u64 c = begin; c < end; ++c) {
                if (budget-- == 0)
                    break;
                cands.push_back({ i, c, o });
                leftItems.push_back(
                    { &leftPlanes(batch, i, o),
                      batch.candidatePairs[c].leftStart });
            }
        }
    }

    std::vector<LightResult> leftRes(cands.size());
    ctx.light.alignBatch(leftItems.data(), leftItems.size(),
                         batch.lightBatch, leftRes.data());

    std::vector<LightBatchItem> rightItems;
    std::vector<std::size_t> rightSlot(cands.size(), SIZE_MAX);
    for (std::size_t t = 0; t < cands.size(); ++t) {
        ++ctx.stats.lightAlignsAttempted;
        ctx.stats.lightHypotheses += leftRes[t].hypothesesTried;
        if (!leftRes[t].aligned)
            continue;
        rightSlot[t] = rightItems.size();
        rightItems.push_back(
            { &rightPlanes(batch, cands[t].pair, cands[t].orient),
              batch.candidatePairs[cands[t].cand].rightStart });
    }
    std::vector<LightResult> rightRes(rightItems.size());
    ctx.light.alignBatch(rightItems.data(), rightItems.size(),
                         batch.lightBatch, rightRes.data());
    for (const LightResult &r : rightRes) {
        ++ctx.stats.lightAlignsAttempted;
        ctx.stats.lightHypotheses += r.hypothesesTried;
    }

    // Selection replay, per pair in candidate-visit order.
    std::size_t t = 0;
    for (u64 i = 0; i < batch.size; ++i) {
        if (batch.route[i] != PairRoute::Pending)
            continue;

        struct Best
        {
            bool found = false;
            i64 score = 0;
            LightResult left;
            LightResult right;
            bool read1IsLeft = true;
        } best;

        u32 pairAttempts = 0;
        for (; t < cands.size() && cands[t].pair == i; ++t) {
            ++pairAttempts;
            const LightResult &la = leftRes[t];
            if (!la.aligned)
                continue;
            ++pairAttempts; // the right side was attempted too
            const LightResult &ra = rightRes[rightSlot[t]];
            if (!ra.aligned)
                continue;
            i64 score = static_cast<i64>(la.score) + ra.score;
            if (!best.found || score > best.score) {
                best.found = true;
                best.score = score;
                best.left = la;
                best.right = ra;
                best.read1IsLeft = cands[t].orient == 0;
            }
        }

        if (batch.trace)
            batch.trace[i].lightAligns = pairAttempts;

        if (best.found) {
            ++ctx.stats.lightAligned;
            ++sc.itemsOut;
            batch.route[i] = PairRoute::LightAligned;
            PairMapping &pm = batch.out[i];
            pm = {};
            pm.path = MappingPath::LightAligned;
            Mapping leftMap, rightMap;
            leftMap.mapped = true;
            leftMap.pos = best.left.pos;
            leftMap.score = best.left.score;
            leftMap.cigar = best.left.cigar;
            leftMap.reverse = false;
            rightMap.mapped = true;
            rightMap.pos = best.right.pos;
            rightMap.score = best.right.score;
            rightMap.cigar = best.right.cigar;
            rightMap.reverse = true;
            if (best.read1IsLeft) {
                pm.first = std::move(leftMap);
                pm.second = std::move(rightMap);
            } else {
                // Orientation B: read 2 maps forward, read 1 reverse.
                pm.second = std::move(leftMap);
                pm.first = std::move(rightMap);
            }
        } else {
            // Fallback exit 3: light alignment rejected every candidate.
            ++ctx.stats.lightAlignFallback;
            batch.route[i] = PairRoute::LightFallback;
        }
    }
}

void
runFallbackStage(const StageContext &ctx, PairBatch &batch)
{
    StageCounters &sc = counters(ctx, StageId::Fallback);
    ++sc.batches;

    // Pass 1: classify routed pairs so each fallback class can run as
    // one batched DP sweep across the whole PairBatch (the interleaved
    // engine fills its lanes across pair boundaries). Pairs without a
    // fallback engine resolve to Unmapped here, exactly as before.
    std::vector<u64> fullDp; ///< exits 1+2: full seed-chain-align DP
    std::vector<u64> exit3;  ///< exit 3: DP at known candidate pairs
    for (u64 i = 0; i < batch.size; ++i) {
        const PairRoute route = batch.route[i];
        if (route == PairRoute::LightAligned)
            continue;
        ++sc.itemsIn;
        if (batch.trace)
            batch.trace[i].route = route;

        if (route == PairRoute::SeedMiss || route == PairRoute::PaMiss) {
            if (route == PairRoute::SeedMiss)
                ++ctx.stats.seedMissFallback;
            else
                ++ctx.stats.paFilterFallback;
        }
        if (!ctx.fallback) {
            ++ctx.stats.unmapped;
            PairMapping &pm = batch.out[i];
            pm = {};
            pm.path = MappingPath::Unmapped;
            continue;
        }
        if (route == PairRoute::SeedMiss || route == PairRoute::PaMiss)
            fullDp.push_back(i);
        else
            exit3.push_back(i);
    }

    // Full DP pipeline for pairs GenPair could not narrow down, every
    // chain alignment of the class in one interleaved batch.
    if (!fullDp.empty()) {
        std::vector<const genomics::ReadPair *> prs;
        prs.reserve(fullDp.size());
        for (u64 i : fullDp)
            prs.push_back(&batch.pairs[i]);
        std::vector<PairMapping> mapped(fullDp.size());
        ctx.fallback->mapPairsBatch(prs.data(), prs.size(),
                                    mapped.data());
        for (std::size_t k = 0; k < fullDp.size(); ++k) {
            PairMapping &pm = batch.out[fullDp[k]];
            pm = std::move(mapped[k]);
            pm.path = MappingPath::FullDpFallback;
            if (pm.bothMapped() || pm.first.mapped || pm.second.mapped) {
                ++ctx.stats.fullDpMapped;
                ++sc.itemsOut;
            } else {
                ++ctx.stats.unmapped;
            }
        }
    }

    // Exit 3: DP-align at the known candidate positions (no
    // seeding/chaining needed). The scalar loop aligned left-then-right
    // per candidate with the right gated on the left passing; phased
    // batching keeps that contract — all left windows in one sweep,
    // then the right windows of passing lefts — so the alignment set
    // (and with it every counter) is unchanged.
    if (!exit3.empty()) {
        struct CandRef
        {
            u64 pair;
            u64 cand;     ///< index into batch.candidatePairs
            u32 orient;
        };
        std::vector<CandRef> cands;
        std::vector<baseline::Mm2Lite::AlignAtTask> leftTasks;
        for (u64 i : exit3) {
            for (u32 o = 0; o < 2; ++o) {
                const OrientRefs refs = orientation(batch, i, o);
                u32 budget =
                    std::max<u32>(4, ctx.params.maxCandidatePairs / 4);
                const u64 begin = batch.pairOffsets[2 * i + o];
                const u64 end = batch.pairOffsets[2 * i + o + 1];
                for (u64 c = begin; c < end; ++c) {
                    if (budget-- == 0)
                        break;
                    cands.push_back({ i, c, o });
                    leftTasks.push_back(
                        { refs.left,
                          batch.candidatePairs[c].leftStart,
                          ctx.params.dpSlack });
                }
            }
        }

        std::vector<Mapping> leftRes(cands.size());
        ctx.fallback->alignAtBatch(leftTasks.data(), leftTasks.size(),
                                   leftRes.data());

        std::vector<baseline::Mm2Lite::AlignAtTask> rightTasks;
        std::vector<std::size_t> rightSlot(cands.size(), SIZE_MAX);
        for (std::size_t t = 0; t < cands.size(); ++t) {
            const Mapping &lm = leftRes[t];
            if (!lm.mapped || lm.score < ctx.params.minDpScore)
                continue;
            const OrientRefs refs =
                orientation(batch, cands[t].pair, cands[t].orient);
            rightSlot[t] = rightTasks.size();
            rightTasks.push_back(
                { refs.right,
                  batch.candidatePairs[cands[t].cand].rightStart,
                  ctx.params.dpSlack });
        }
        std::vector<Mapping> rightRes(rightTasks.size());
        ctx.fallback->alignAtBatch(rightTasks.data(), rightTasks.size(),
                                   rightRes.data());

        // Selection replay, per pair in candidate-visit order.
        std::size_t t = 0;
        for (u64 i : exit3) {
            struct DpBest
            {
                bool found = false;
                i64 score = 0;
                Mapping left;
                Mapping right;
                bool read1IsLeft = true;
            } dpBest;

            for (; t < cands.size() && cands[t].pair == i; ++t) {
                Mapping &lm = leftRes[t];
                if (!lm.mapped || lm.score < ctx.params.minDpScore)
                    continue;
                Mapping &rm = rightRes[rightSlot[t]];
                if (!rm.mapped || rm.score < ctx.params.minDpScore)
                    continue;
                i64 score = static_cast<i64>(lm.score) + rm.score;
                if (!dpBest.found || score > dpBest.score) {
                    dpBest.found = true;
                    dpBest.score = score;
                    dpBest.left = std::move(lm);
                    dpBest.right = std::move(rm);
                    dpBest.read1IsLeft = cands[t].orient == 0;
                }
            }

            PairMapping &pm = batch.out[i];
            pm = {};
            if (dpBest.found) {
                ++ctx.stats.dpAligned;
                ++sc.itemsOut;
                pm.path = MappingPath::DpAlignFallback;
                dpBest.left.reverse = false;
                dpBest.right.reverse = true;
                if (dpBest.read1IsLeft) {
                    pm.first = std::move(dpBest.left);
                    pm.second = std::move(dpBest.right);
                } else {
                    pm.second = std::move(dpBest.left);
                    pm.first = std::move(dpBest.right);
                }
            } else {
                ++ctx.stats.unmapped;
                pm.path = MappingPath::Unmapped;
            }
        }
    }
}

void
runStageGraph(const StageContext &ctx, PairBatch &batch)
{
    runSeedStage(ctx, batch);
    runQueryStage(ctx, batch);
    runPaFilterStage(ctx, batch);
    runLightAlignStage(ctx, batch);
    runFallbackStage(ctx, batch);
    if (batch.trace) {
        // LightAligned pairs never reach the fallback stage; stamp
        // their final route here so every record is complete.
        for (u64 i = 0; i < batch.size; ++i)
            if (batch.route[i] == PairRoute::LightAligned)
                batch.trace[i].route = PairRoute::LightAligned;
    }
}

} // namespace genpair
} // namespace gpx
