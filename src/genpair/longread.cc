#include "genpair/longread.hh"

#include <algorithm>
#include <map>
#include <ostream>

#include "util/logging.hh"

namespace gpx {
namespace genpair {

using genomics::DnaSequence;
using genomics::Mapping;
using genomics::Read;

LongReadMapper::LongReadMapper(const genomics::Reference &ref,
                               const SeedMapView &map,
                               const LongReadParams &params,
                               baseline::Mm2Lite *dp)
    : ref_(ref), map_(map), params_(params), seeder_(map), dp_(dp)
{
    gpx_assert(dp_, "long-read mapping requires the DP engine");
}

std::vector<std::pair<GlobalPos, u32>>
LongReadMapper::voteCandidates(const DnaSequence &seq)
{
    const u32 seg = params_.segmentLen;
    std::map<u64, u32> votes; // bucketed candidate read start -> count

    u64 numSegments = seq.size() / seg;
    for (u64 s = 0; s + 1 < numSegments; ++s) {
        ++stats_.pseudoPairs;
        u64 off1 = s * seg;
        u64 off2 = (s + 1) * seg;
        DnaSequence seg1 = seq.sub(off1, seg);
        DnaSequence seg2 = seq.sub(off2, seg);
        auto left = queryCandidates(map_, seeder_.extract(seg1),
                                    stats_.query);
        auto right = queryCandidates(map_, seeder_.extract(seg2),
                                     stats_.query);
        auto cands = pairedAdjacencyFilter(left, right, params_.delta,
                                           stats_.query);
        for (const auto &c : cands) {
            if (c.leftStart < off1)
                continue;
            u64 start = c.leftStart - off1;
            votes[start / params_.voteBucket] += 1;
            ++stats_.votes;
        }
    }

    std::vector<std::pair<GlobalPos, u32>> out;
    for (const auto &[bucket, count] : votes) {
        if (count >= params_.minVotes)
            out.push_back({ bucket * params_.voteBucket, count });
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    if (out.size() > 4)
        out.resize(4);
    return out;
}

Mapping
LongReadMapper::alignAtStart(const DnaSequence &seq, GlobalPos start)
{
    Mapping out;
    genomics::Cigar stitched;
    i64 total = 0;
    u64 consumedRef = 0;
    GlobalPos firstPos = kInvalidPos;

    const auto &scoring = dp_->params().scoring;
    for (u64 off = 0; off < seq.size(); off += params_.chunkLen) {
        u64 len = std::min<u64>(params_.chunkLen, seq.size() - off);
        DnaSequence chunk = seq.sub(off, len);
        // Track reference drift from previously consumed chunks so INDELs
        // accumulate correctly along the read.
        GlobalPos expect = firstPos == kInvalidPos ? start + off
                                                   : firstPos + consumedRef;
        Mapping m = dp_->alignAt(chunk, expect, params_.chunkSlack);
        i32 minScore = scoring.perfectScore(static_cast<u32>(len)) *
                       params_.minChunkScoreFrac / 100;
        if (!m.mapped || m.score < minScore)
            return {}; // a failed chunk rejects this candidate region
        if (firstPos == kInvalidPos) {
            firstPos = m.pos;
            consumedRef = 0;
        }
        consumedRef = m.pos + m.cigar.refSpan() - firstPos;
        total += m.score;
        for (const auto &e : m.cigar.elems())
            stitched.push(e.op, e.len);
    }

    out.mapped = true;
    out.pos = firstPos;
    out.score = static_cast<i32>(total);
    out.cigar = std::move(stitched);
    return out;
}

Mapping
LongReadMapper::mapRead(const Read &read)
{
    ++stats_.readsTotal;
    DnaSequence fwd = read.seq;
    DnaSequence rc = read.seq.revComp();

    struct Candidate
    {
        GlobalPos start;
        u32 votes;
        bool reverse;
    };
    std::vector<Candidate> cands;
    for (const auto &[pos, votes] : voteCandidates(fwd))
        cands.push_back({ pos, votes, false });
    for (const auto &[pos, votes] : voteCandidates(rc))
        cands.push_back({ pos, votes, true });
    std::sort(cands.begin(), cands.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.votes > b.votes;
              });

    u64 before = dp_->dpWork().alignCells;
    Mapping best;
    for (const auto &c : cands) {
        const DnaSequence &seq = c.reverse ? rc : fwd;
        Mapping m = alignAtStart(seq, c.start);
        if (m.mapped && (!best.mapped || m.score > best.score)) {
            best = std::move(m);
            best.reverse = c.reverse;
        }
    }
    stats_.dpCells += dp_->dpWork().alignCells - before;

    if (best.mapped)
        ++stats_.mapped;
    else
        ++stats_.unmapped;
    return best;
}

namespace {

/** Per-worker long-read engines (DP + voting mapper). */
struct LongReadWorkerContext : WorkerContext
{
    baseline::Mm2Lite dp;
    LongReadMapper mapper;

    LongReadWorkerContext(
        const genomics::Reference &ref, const SeedMapView &map,
        const LongReadParams &params,
        const baseline::Mm2LiteParams &dp_params,
        std::shared_ptr<const baseline::MinimizerIndex> index)
        : dp(ref, dp_params, std::move(index)),
          mapper(ref, map, params, &dp)
    {
    }
};

} // namespace

LongReadDriver::LongReadDriver(const genomics::Reference &ref,
                               const SeedMapView &map,
                               const LongReadParams &params,
                               const baseline::Mm2LiteParams &dp_params,
                               u32 threads)
    : ref_(ref), map_(map), params_(params), dpParams_(dp_params)
{
    sharedIndex_ = std::make_shared<const baseline::MinimizerIndex>(
        ref, dpParams_.minimizers);
    engine_ = std::make_unique<MapperEngine>(
        threads,
        [this](u32 /*slot*/) {
            return std::make_unique<LongReadWorkerContext>(
                ref_, map_, params_, dpParams_, sharedIndex_);
        },
        // Long reads are ~60x the work of a short pair; a finer grain
        // keeps the cursor balanced.
        /*block_items=*/4);
}

LongReadResult
LongReadDriver::mapAll(const std::vector<genomics::Read> &reads)
{
    LongReadResult result;
    result.mappings.resize(reads.size());

    engine_->forEachContext([](WorkerContext &ctx) {
        static_cast<LongReadWorkerContext &>(ctx).mapper.resetStats();
    });

    const genomics::Read *in = reads.data();
    genomics::Mapping *out = result.mappings.data();
    result.timing = engine_->run(
        reads.size(), [&](WorkerContext &wc, u64 begin, u64 end) {
            auto &ctx = static_cast<LongReadWorkerContext &>(wc);
            for (u64 i = begin; i < end; ++i)
                out[i] = ctx.mapper.mapRead(in[i]);
        });

    engine_->forEachContext([&](WorkerContext &ctx) {
        result.stats +=
            static_cast<LongReadWorkerContext &>(ctx).mapper.stats();
    });
    return result;
}

void
writeLongReadStatsJson(std::ostream &os, const LongReadStats &stats,
                       u64 ambiguous_bases)
{
    os << "{\n"
       << "  \"reads_total\": " << stats.readsTotal << ",\n"
       << "  \"mapped\": " << stats.mapped << ",\n"
       << "  \"unmapped\": " << stats.unmapped << ",\n"
       << "  \"pseudo_pairs\": " << stats.pseudoPairs << ",\n"
       << "  \"votes\": " << stats.votes << ",\n"
       << "  \"dp_cells\": " << stats.dpCells << ",\n"
       << "  \"query\": {\"seed_lookups\": " << stats.query.seedLookups
       << ", \"locations_fetched\": " << stats.query.locationsFetched
       << ", \"filter_iterations\": " << stats.query.filterIterations
       << "},\n"
       << "  \"ingest\": {\"ambiguous_bases\": " << ambiguous_bases
       << "}\n}\n";
}

} // namespace genpair
} // namespace gpx
