#include "genpair/driver.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/timer.hh"

namespace gpx {
namespace genpair {

ParallelMapper::ParallelMapper(const genomics::Reference &ref,
                               const SeedMapView &map,
                               const DriverConfig &config)
    : ref_(ref), map_(map), config_(config)
{
    threads_ = config.threads ? config.threads
                              : std::max(1u,
                                         std::thread::hardware_concurrency());
    sharedIndex_ = std::make_shared<const baseline::MinimizerIndex>(
        ref, config_.fallback.minimizers);
    perThread_.resize(threads_);
    workers_.reserve(threads_);
    for (u32 t = 0; t < threads_; ++t)
        workers_.emplace_back([this, t]() { workerLoop(t); });
    // Engine construction is a pool start-up cost, not a mapping cost:
    // don't return until every worker has built its engines, so the
    // first mapAll()'s stopwatch measures mapping only.
    std::unique_lock<std::mutex> lock(mu_);
    jobDone_.wait(lock, [&] { return workersReady_ == threads_; });
}

ParallelMapper::~ParallelMapper()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    jobReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ParallelMapper::workerLoop(u32 slot)
{
    // Engines are built once per worker and live for the pool's
    // lifetime; every mapAll() call reuses them.
    baseline::Mm2Lite fallback(ref_, config_.fallback, sharedIndex_);
    GenPairPipeline pipeline(ref_, map_, config_.pipeline, &fallback);
    std::unique_ptr<LightAlignGate> gate;
    if (config_.gateFactory) {
        gate = config_.gateFactory();
        pipeline.setLightAlignGate(gate.get());
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        ++workersReady_;
    }
    jobDone_.notify_all();

    u64 seenJob = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            jobReady_.wait(lock, [&] {
                return shutdown_ || jobSeq_ != seenJob;
            });
            if (shutdown_)
                return;
            seenJob = jobSeq_;
        }

        pipeline.resetStats();
        const auto &pairs = *jobPairs_;
        auto &out = *jobOut_;
        for (;;) {
            const u64 begin = cursor_.fetch_add(kBlockPairs,
                                                std::memory_order_relaxed);
            if (begin >= pairs.size())
                break;
            const u64 end =
                std::min<u64>(pairs.size(), begin + kBlockPairs);
            for (u64 i = begin; i < end; ++i) {
                if (config_.useGenPair)
                    out[i] = pipeline.mapPair(pairs[i]);
                else
                    out[i] = fallback.mapPair(pairs[i]);
            }
        }
        perThread_[slot] = pipeline.stats();

        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--workersLeft_ == 0)
                jobDone_.notify_one();
        }
    }
}

DriverResult
ParallelMapper::mapAll(const std::vector<genomics::ReadPair> &pairs)
{
    DriverResult result;
    result.mappings.resize(pairs.size());

    util::Stopwatch watch;
    {
        std::lock_guard<std::mutex> lock(mu_);
        jobPairs_ = &pairs;
        jobOut_ = &result.mappings;
        cursor_.store(0, std::memory_order_relaxed);
        workersLeft_ = threads_;
        ++jobSeq_;
    }
    jobReady_.notify_all();
    {
        std::unique_lock<std::mutex> lock(mu_);
        jobDone_.wait(lock, [&] { return workersLeft_ == 0; });
    }
    result.seconds = watch.seconds();
    result.pairsPerSec =
        result.seconds > 0 ? pairs.size() / result.seconds : 0;

    for (const auto &st : perThread_)
        result.stats += st;
    return result;
}

} // namespace genpair
} // namespace gpx
