#include "genpair/driver.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gpx {
namespace genpair {

namespace {

/** Per-worker engines: DP fallback + stage-graph pipeline + gate. */
struct PairWorkerContext : WorkerContext
{
    baseline::Mm2Lite fallback;
    GenPairPipeline pipeline;
    std::unique_ptr<LightAlignGate> gate;

    PairWorkerContext(
        const genomics::Reference &ref, const SeedMapView &map,
        const DriverConfig &config,
        std::shared_ptr<const baseline::MinimizerIndex> index)
        : fallback(ref, config.fallback, std::move(index)),
          pipeline(ref, map, config.pipeline, &fallback)
    {
        if (config.gateFactory) {
            gate = config.gateFactory();
            pipeline.setLightAlignGate(gate.get());
        }
    }
};

} // namespace

ParallelMapper::ParallelMapper(const genomics::Reference &ref,
                               const SeedMapView &map,
                               const DriverConfig &config)
    : ref_(ref), map_(map), config_(config)
{
    // The MM2-lite baseline path never fills trace records; a trace of
    // all-zero (Pending) routes would be silently unreplayable.
    gpx_assert(!config_.recordTrace || config_.useGenPair,
               "recordTrace records GenPair stage events; it requires "
               "useGenPair");
    sharedIndex_ = std::make_shared<const baseline::MinimizerIndex>(
        ref, config_.fallback.minimizers);
    engine_ = std::make_unique<MapperEngine>(
        config_.threads, [this](u32 /*slot*/) {
            return std::make_unique<PairWorkerContext>(
                ref_, map_, config_, sharedIndex_);
        });
}

DriverResult
ParallelMapper::mapAll(const std::vector<genomics::ReadPair> &pairs)
{
    DriverResult result;
    result.mappings.resize(pairs.size());
    if (config_.recordTrace)
        result.trace.resize(pairs.size());

    engine_->forEachContext([](WorkerContext &ctx) {
        static_cast<PairWorkerContext &>(ctx).pipeline.resetStats();
    });

    const genomics::ReadPair *in = pairs.data();
    genomics::PairMapping *out = result.mappings.data();
    PairTraceRecord *trace =
        config_.recordTrace ? result.trace.data() : nullptr;
    const bool useGenPair = config_.useGenPair;

    result.timing = engine_->submit(
        pairs.size(), [&](WorkerContext &wc, u64 begin, u64 end) {
            auto &ctx = static_cast<PairWorkerContext &>(wc);
            if (useGenPair) {
                ctx.pipeline.mapBatch(in + begin, end - begin,
                                      out + begin,
                                      trace ? trace + begin : nullptr);
            } else {
                for (u64 i = begin; i < end; ++i)
                    out[i] = ctx.fallback.mapPair(in[i]);
            }
        });

    engine_->forEachContext([&](WorkerContext &ctx) {
        result.stats +=
            static_cast<PairWorkerContext &>(ctx).pipeline.stats();
    });
    return result;
}

DriverResult
ParallelMapper::mapAllShared(const std::vector<genomics::ReadPair> &pairs)
{
    // The stats reset / engine run / stats merge sequence in mapAll()
    // touches every worker context; one submitter at a time may own it.
    std::lock_guard<std::mutex> lock(mapMu_);
    return mapAll(pairs);
}

} // namespace genpair
} // namespace gpx
