#include "genpair/driver.hh"

#include <algorithm>
#include <thread>

#include "util/logging.hh"
#include "util/timer.hh"

namespace gpx {
namespace genpair {

ParallelMapper::ParallelMapper(const genomics::Reference &ref,
                               const SeedMap &map,
                               const DriverConfig &config)
    : ref_(ref), map_(map), config_(config)
{
    threads_ = config.threads ? config.threads
                              : std::max(1u,
                                         std::thread::hardware_concurrency());
    sharedIndex_ = std::make_shared<const baseline::MinimizerIndex>(
        ref, config_.fallback.minimizers);
}

DriverResult
ParallelMapper::mapAll(const std::vector<genomics::ReadPair> &pairs)
{
    DriverResult result;
    result.mappings.resize(pairs.size());
    std::vector<PipelineStats> perThread(threads_);

    util::Stopwatch watch;
    std::vector<std::thread> workers;
    workers.reserve(threads_);
    for (u32 t = 0; t < threads_; ++t) {
        workers.emplace_back([&, t]() {
            baseline::Mm2Lite fallback(ref_, config_.fallback,
                                       sharedIndex_);
            GenPairPipeline pipeline(ref_, map_, config_.pipeline,
                                     &fallback);
            // Contiguous block partitioning keeps the output stable and
            // the per-thread caches warm.
            u64 chunk = (pairs.size() + threads_ - 1) / threads_;
            u64 begin = t * chunk;
            u64 end = std::min<u64>(pairs.size(), begin + chunk);
            for (u64 i = begin; i < end; ++i) {
                if (config_.useGenPair) {
                    result.mappings[i] = pipeline.mapPair(pairs[i]);
                } else {
                    result.mappings[i] = fallback.mapPair(pairs[i]);
                }
            }
            perThread[t] = pipeline.stats();
        });
    }
    for (auto &w : workers)
        w.join();
    result.seconds = watch.seconds();
    result.pairsPerSec =
        result.seconds > 0 ? pairs.size() / result.seconds : 0;

    // Aggregate worker statistics.
    PipelineStats &agg = result.stats;
    for (const auto &st : perThread) {
        agg.pairsTotal += st.pairsTotal;
        agg.seedMissFallback += st.seedMissFallback;
        agg.paFilterFallback += st.paFilterFallback;
        agg.lightAlignFallback += st.lightAlignFallback;
        agg.lightAligned += st.lightAligned;
        agg.dpAligned += st.dpAligned;
        agg.fullDpMapped += st.fullDpMapped;
        agg.unmapped += st.unmapped;
        agg.query.seedLookups += st.query.seedLookups;
        agg.query.locationsFetched += st.query.locationsFetched;
        agg.query.filterIterations += st.query.filterIterations;
        agg.candidatePairs += st.candidatePairs;
        agg.lightAlignsAttempted += st.lightAlignsAttempted;
        agg.lightHypotheses += st.lightHypotheses;
    }
    return result;
}

} // namespace genpair
} // namespace gpx
