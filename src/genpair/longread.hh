/**
 * @file
 * Long-read support (paper §4.7).
 *
 * A long read is reformulated as a sequence of interleaved pseudo
 * read-pairs of adjacent 150 bp segments (distance < delta by
 * construction). Each pseudo-pair runs Partitioned Seeding, SeedMap Query
 * and Paired-Adjacency Filtering; candidate read-start locations are then
 * combined with Location Voting across all pairs of the read, and the
 * winning region is aligned with DP (light alignment is insufficient for
 * noisy long reads).
 */

#ifndef GPX_GENPAIR_LONGREAD_HH
#define GPX_GENPAIR_LONGREAD_HH

#include <iosfwd>
#include <memory>
#include <vector>

#include "baseline/mm2lite.hh"
#include "genomics/readpair.hh"
#include "genpair/engine.hh"
#include "genpair/pafilter.hh"
#include "genpair/seeder.hh"
#include "genpair/seedmap.hh"
#include "util/types.hh"

namespace gpx {
namespace genpair {

/** Long-read mapping parameters. */
struct LongReadParams
{
    u32 segmentLen = 150; ///< pseudo-read length
    u32 delta = 500;      ///< adjacency threshold within a pseudo-pair
    u32 minVotes = 3;     ///< Location Voting acceptance threshold
    u32 voteBucket = 128; ///< vote clustering granularity (bases)
    u32 chunkLen = 600;   ///< DP alignment chunk size
    u32 chunkSlack = 100; ///< window slack per chunk
    i32 minChunkScoreFrac = 40; ///< % of perfect score a chunk must reach
};

/** Long-read pipeline counters. */
struct LongReadStats
{
    u64 readsTotal = 0;
    u64 mapped = 0;
    u64 unmapped = 0;
    u64 pseudoPairs = 0;
    u64 votes = 0;
    u64 dpCells = 0;
    QueryWork query;

    /** Single accumulation point for every long-read stats merge. */
    LongReadStats &
    operator+=(const LongReadStats &other)
    {
        readsTotal += other.readsTotal;
        mapped += other.mapped;
        unmapped += other.unmapped;
        pseudoPairs += other.pseudoPairs;
        votes += other.votes;
        dpCells += other.dpCells;
        query += other.query;
        return *this;
    }
};

/**
 * Machine-readable form of LongReadStats plus the ingest accounting
 * (`gpx_map --long --stats-json`): the long-read counterpart of
 * PipelineStats::writeJson, with the same "ingest" object so dirty
 * inputs surface identically in both modes.
 */
void writeLongReadStatsJson(std::ostream &os, const LongReadStats &stats,
                            u64 ambiguous_bases);

/** Long-read mapper built from GenPair stages plus DP alignment. */
class LongReadMapper
{
  public:
    LongReadMapper(const genomics::Reference &ref,
                   const SeedMapView &map, const LongReadParams &params,
                   baseline::Mm2Lite *dp);

    /** Map one long read; Mapping.cigar is stitched from DP chunks. */
    genomics::Mapping mapRead(const genomics::Read &read);

    const LongReadStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

  private:
    /** Candidate read starts (bucketed votes) for one orientation. */
    std::vector<std::pair<GlobalPos, u32>> voteCandidates(
        const genomics::DnaSequence &seq);

    /** Chunked DP alignment at a voted start position. */
    genomics::Mapping alignAtStart(const genomics::DnaSequence &seq,
                                   GlobalPos start);

    const genomics::Reference &ref_;
    SeedMapView map_;
    LongReadParams params_;
    PartitionedSeeder seeder_;
    baseline::Mm2Lite *dp_;
    LongReadStats stats_;
};

/** Result of a parallel long-read batch. */
struct LongReadResult
{
    std::vector<genomics::Mapping> mappings; ///< 1:1 with input reads
    LongReadStats stats; ///< aggregated across workers
    RunTiming timing;    ///< filled by MapperEngine
};

/**
 * Parallel long-read mapping: the third thin configuration layer over
 * MapperEngine. Per-worker contexts own an Mm2Lite DP engine (over one
 * shared MinimizerIndex) plus a LongReadMapper; mapping is per-read
 * pure and results land at input index, so output is bit-identical to
 * a serial LongReadMapper loop for any thread count.
 */
class LongReadDriver
{
  public:
    /**
     * @param threads Worker count; 0 = hardware concurrency.
     */
    LongReadDriver(const genomics::Reference &ref, const SeedMapView &map,
                   const LongReadParams &params,
                   const baseline::Mm2LiteParams &dp_params = {},
                   u32 threads = 0);

    /** Map all reads; mappings[i] corresponds to reads[i]. */
    LongReadResult mapAll(const std::vector<genomics::Read> &reads);

    u32 threads() const { return engine_->threads(); }

  private:
    const genomics::Reference &ref_;
    SeedMapView map_;
    LongReadParams params_;
    baseline::Mm2LiteParams dpParams_;
    std::shared_ptr<const baseline::MinimizerIndex> sharedIndex_;
    std::unique_ptr<MapperEngine> engine_;
};

} // namespace genpair
} // namespace gpx

#endif // GPX_GENPAIR_LONGREAD_HH
