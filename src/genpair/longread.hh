/**
 * @file
 * Long-read support (paper §4.7).
 *
 * A long read is reformulated as a sequence of interleaved pseudo
 * read-pairs of adjacent 150 bp segments (distance < delta by
 * construction). Each pseudo-pair runs Partitioned Seeding, SeedMap Query
 * and Paired-Adjacency Filtering; candidate read-start locations are then
 * combined with Location Voting across all pairs of the read, and the
 * winning region is aligned with DP (light alignment is insufficient for
 * noisy long reads).
 */

#ifndef GPX_GENPAIR_LONGREAD_HH
#define GPX_GENPAIR_LONGREAD_HH

#include "baseline/mm2lite.hh"
#include "genomics/readpair.hh"
#include "genpair/pafilter.hh"
#include "genpair/seeder.hh"
#include "genpair/seedmap.hh"
#include "util/types.hh"

namespace gpx {
namespace genpair {

/** Long-read mapping parameters. */
struct LongReadParams
{
    u32 segmentLen = 150; ///< pseudo-read length
    u32 delta = 500;      ///< adjacency threshold within a pseudo-pair
    u32 minVotes = 3;     ///< Location Voting acceptance threshold
    u32 voteBucket = 128; ///< vote clustering granularity (bases)
    u32 chunkLen = 600;   ///< DP alignment chunk size
    u32 chunkSlack = 100; ///< window slack per chunk
    i32 minChunkScoreFrac = 40; ///< % of perfect score a chunk must reach
};

/** Long-read pipeline counters. */
struct LongReadStats
{
    u64 readsTotal = 0;
    u64 mapped = 0;
    u64 unmapped = 0;
    u64 pseudoPairs = 0;
    u64 votes = 0;
    u64 dpCells = 0;
    QueryWork query;
};

/** Long-read mapper built from GenPair stages plus DP alignment. */
class LongReadMapper
{
  public:
    LongReadMapper(const genomics::Reference &ref,
                   const SeedMapView &map, const LongReadParams &params,
                   baseline::Mm2Lite *dp);

    /** Map one long read; Mapping.cigar is stitched from DP chunks. */
    genomics::Mapping mapRead(const genomics::Read &read);

    const LongReadStats &stats() const { return stats_; }

  private:
    /** Candidate read starts (bucketed votes) for one orientation. */
    std::vector<std::pair<GlobalPos, u32>> voteCandidates(
        const genomics::DnaSequence &seq);

    /** Chunked DP alignment at a voted start position. */
    genomics::Mapping alignAtStart(const genomics::DnaSequence &seq,
                                   GlobalPos start);

    const genomics::Reference &ref_;
    SeedMapView map_;
    LongReadParams params_;
    PartitionedSeeder seeder_;
    baseline::Mm2Lite *dp_;
    LongReadStats stats_;
};

} // namespace genpair
} // namespace gpx

#endif // GPX_GENPAIR_LONGREAD_HH
