/**
 * @file
 * SeedMap: the offline hash-table index of the reference genome
 * (paper §4.2, Fig. 4).
 *
 * Two tables, exactly as in the paper:
 *  - the Location Table linearly concatenates, per seed, the sorted
 *    reference-genome locations of that seed;
 *  - the Seed Table is a direct-indexed array over (masked) seed hash
 *    values whose entry i holds the Location Table offset of the first
 *    location of seed-hash i; the half-open range
 *    [seedTable[i], seedTable[i+1]) is seed i's location list.
 *
 * Locations are stored as 32-bit flat positions (4-byte entries, the
 * granularity the NMSL memory-traffic model assumes). Seeds occurring
 * more than the index-filtering threshold are dropped at construction
 * time (§5.2), bounding the hardware FIFO depth.
 */

#ifndef GPX_GENPAIR_SEEDMAP_HH
#define GPX_GENPAIR_SEEDMAP_HH

#include <span>
#include <vector>

#include "genomics/reference.hh"
#include "genomics/sequence.hh"
#include "util/types.hh"

namespace gpx {
namespace genpair {

/** Upper bound on seedLen (sizes hashSeedAt's stack repack buffer). */
inline constexpr u32 kMaxSeedLen = 256;

/** SeedMap construction parameters. */
struct SeedMapParams
{
    u32 seedLen = 50;         ///< paper's 50 bp partitioned seeds
    u32 tableBits = 0;        ///< log2(Seed Table entries); 0 = auto-size
    u32 filterThreshold = 500;///< index filtering threshold (0 = disabled)
};

/** Construction/occupancy statistics (drive the hardware model). */
struct SeedMapStats
{
    u64 totalSeeds = 0;          ///< seed positions scanned
    u64 storedLocations = 0;     ///< locations kept in the Location Table
    u64 filteredSeeds = 0;       ///< distinct seeds dropped by the filter
    u64 filteredLocations = 0;   ///< locations dropped with them
    u64 distinctHashes = 0;      ///< occupied Seed Table entries
    double avgLocationsPerSeed = 0.0; ///< mean list length per kept hash
    /**
     * Query-weighted mean locations per seed: the expected list length
     * when the queried seed comes from a random genome position (the
     * paper's Obs. 2 metric, ~9.5 on GRCh38 — repeat seeds are queried
     * proportionally to their multiplicity).
     */
    double queryWeightedLocations = 0.0;
};

/** The SeedMap index. */
class SeedMap
{
  public:
    /** Build the index over @p ref (the offline stage). */
    SeedMap(const genomics::Reference &ref, const SeedMapParams &params);

    const SeedMapParams &params() const { return params_; }
    const SeedMapStats &stats() const { return stats_; }

    /** Hash a seed sequence to its (unmasked) 32-bit xxHash value. */
    u32 hashSeed(const genomics::DnaSequence &seed) const;

    /**
     * Hash of the seed starting at @p offset in @p read: identical to
     * hashSeed() on an owning copy, but repacks through a stack buffer
     * so the per-seed heap allocation disappears from the hot path.
     */
    u32 hashSeedAt(const genomics::DnaView &read, u64 offset) const;

    /**
     * Query: the sorted location list of a seed hash (the online
     * SeedMap Query of Fig. 4b). Two memory accesses in hardware: one
     * Seed Table entry pair, then a contiguous Location Table burst.
     */
    std::span<const u32> lookup(u32 hash) const;

    /** Seed Table size in bytes (4-byte offsets). */
    u64 seedTableBytes() const { return seedTable_.size() * sizeof(u32); }
    /** Location Table size in bytes (4-byte locations). */
    u64
    locationTableBytes() const
    {
        return locationTable_.size() * sizeof(u32);
    }

    u32 tableBits() const { return tableBits_; }

    /** Raw CSR Seed Table (serialization / NMSL address layout). */
    const std::vector<u32> &rawSeedTable() const { return seedTable_; }
    /** Raw Location Table. */
    const std::vector<u32> &rawLocationTable() const
    {
        return locationTable_;
    }

    /**
     * Reconstruct a SeedMap from previously built tables (the
     * deserialization path; occupancy statistics are recomputed).
     */
    static SeedMap fromTables(const SeedMapParams &params, u32 table_bits,
                              std::vector<u32> seed_table,
                              std::vector<u32> location_table);

  private:
    SeedMap() = default;

    u32 maskHash(u32 hash) const { return hash & ((1u << tableBits_) - 1); }

    SeedMapParams params_;
    SeedMapStats stats_;
    u32 tableBits_ = 0;
    /** CSR offsets, size 2^tableBits + 1. */
    std::vector<u32> seedTable_;
    /** Flat sorted locations per seed hash. */
    std::vector<u32> locationTable_;
};

} // namespace genpair
} // namespace gpx

#endif // GPX_GENPAIR_SEEDMAP_HH
