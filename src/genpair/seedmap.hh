/**
 * @file
 * SeedMap: the offline hash-table index of the reference genome
 * (paper §4.2, Fig. 4).
 *
 * Two tables, exactly as in the paper:
 *  - the Location Table linearly concatenates, per seed, the sorted
 *    reference-genome locations of that seed;
 *  - the Seed Table is a direct-indexed array over (masked) seed hash
 *    values whose entry i holds the Location Table offset of the first
 *    location of seed-hash i; the half-open range
 *    [seedTable[i], seedTable[i+1]) is seed i's location list.
 *
 * Locations are stored as 32-bit flat positions (4-byte entries, the
 * granularity the NMSL memory-traffic model assumes). Seeds occurring
 * more than the index-filtering threshold are dropped at construction
 * time (§5.2), bounding the hardware FIFO depth.
 */

#ifndef GPX_GENPAIR_SEEDMAP_HH
#define GPX_GENPAIR_SEEDMAP_HH

#include <span>
#include <vector>

#include "genomics/reference.hh"
#include "genomics/sequence.hh"
#include "util/types.hh"

namespace gpx {
namespace genpair {

/** Upper bound on seedLen (sizes hashSeedAt's stack repack buffer). */
inline constexpr u32 kMaxSeedLen = 256;

/** SeedMap construction parameters. */
struct SeedMapParams
{
    u32 seedLen = 50;         ///< paper's 50 bp partitioned seeds
    u32 tableBits = 0;        ///< log2(Seed Table entries); 0 = auto-size
    u32 filterThreshold = 500;///< index filtering threshold (0 = disabled)
};

/** Construction/occupancy statistics (drive the hardware model). */
struct SeedMapStats
{
    u64 totalSeeds = 0;          ///< seed positions scanned
    u64 storedLocations = 0;     ///< locations kept in the Location Table
    u64 filteredSeeds = 0;       ///< distinct seeds dropped by the filter
    u64 filteredLocations = 0;   ///< locations dropped with them
    u64 distinctHashes = 0;      ///< occupied Seed Table entries
    double avgLocationsPerSeed = 0.0; ///< mean list length per kept hash
    /**
     * Query-weighted mean locations per seed: the expected list length
     * when the queried seed comes from a random genome position (the
     * paper's Obs. 2 metric, ~9.5 on GRCh38 — repeat seeds are queried
     * proportionally to their multiplicity).
     */
    double queryWeightedLocations = 0.0;
};

class SeedMap;

/** Hash a seed sequence of length @p seed_len (unmasked 32-bit xxHash). */
u32 hashSeedValue(const genomics::DnaSequence &seed, u32 seed_len);

/**
 * Hash of the @p seed_len seed starting at @p offset in @p read:
 * identical to hashSeedValue() on an owning copy, but repacks through a
 * stack buffer so the per-seed heap allocation disappears from the hot
 * path.
 */
u32 hashSeedValueAt(const genomics::DnaView &read, u64 offset,
                    u32 seed_len);

/**
 * One shard of a SeedMap: a local CSR Seed Table slice plus the
 * Location Table slice it indexes. A shard covers a contiguous,
 * power-of-two-sized range of masked seed-hash values; seedTable holds
 * hashCount+1 offsets that are *local* to this shard's locations span.
 *
 * The spans are non-owning: in the mmap-backed v2 image path they point
 * straight into kernel-shared file pages.
 */
struct SeedMapShardView
{
    std::span<const u32> seedTable; ///< local CSR, hashCount+1 entries
    std::span<const u32> locations; ///< this shard's location slice
};

/**
 * Non-owning SeedMap view: everything the online query path needs —
 * seed hashing plus the two-table lookup — over storage it does not
 * own. The whole query path (PartitionedSeeder, queryCandidates,
 * GenPairPipeline, the serial/pool/streaming drivers, LongReadMapper,
 * the NMSL workload builder) consumes this type, so an owning SeedMap,
 * a memory-mapped v2 image and any future remote/tiered backend are
 * interchangeable at every call site.
 *
 * Cheap to copy (a few words plus a span of shard descriptors). The
 * underlying storage — the owning SeedMap's vectors, or a
 * SeedMapImage's mapping and shard array — must outlive every copy.
 */
class SeedMapView
{
  public:
    SeedMapView() = default;

    /** Single-shard view over whole-table storage. */
    SeedMapView(const SeedMapParams &params, u32 table_bits,
                std::span<const u32> seed_table,
                std::span<const u32> locations);

    /**
     * Multi-shard view: @p shards must hold a power-of-two count of
     * equal-hash-range shards in ascending hash order and stay alive
     * for the view's lifetime (the view keeps only the span).
     */
    SeedMapView(const SeedMapParams &params, u32 table_bits,
                std::span<const SeedMapShardView> shards);

    /** Every owning SeedMap converts implicitly (the common call). */
    SeedMapView(const SeedMap &map); // NOLINT(google-explicit-constructor)

    const SeedMapParams &params() const { return params_; }
    u32 tableBits() const { return tableBits_; }
    u32 shardCount() const
    {
        return shards_.empty() ? 1u
                               : static_cast<u32>(shards_.size());
    }

    /** Hash a seed sequence to its (unmasked) 32-bit xxHash value. */
    u32 hashSeed(const genomics::DnaSequence &seed) const;

    /**
     * Hash of the seed starting at @p offset in @p read: identical to
     * hashSeed() on an owning copy, but repacks through a stack buffer
     * so the per-seed heap allocation disappears from the hot path.
     */
    u32 hashSeedAt(const genomics::DnaView &read, u64 offset) const;

    /**
     * Query: the sorted location list of a seed hash (the online
     * SeedMap Query of Fig. 4b). Two memory accesses in hardware: one
     * Seed Table entry pair, then a contiguous Location Table burst —
     * the shard indirection is a shift, not an access.
     */
    std::span<const u32>
    lookup(u32 hash) const
    {
        u32 m = maskHash(hash);
        const SeedMapShardView &sh =
            shards_.empty() ? single_ : shards_[m >> shardShift_];
        u32 local = m & ((u32{1} << shardShift_) - 1);
        u32 lo = sh.seedTable[local];
        u32 hi = sh.seedTable[local + 1];
        return { sh.locations.data() + lo, sh.locations.data() + hi };
    }

    /** Seed Table bytes summed over shards (4-byte offsets). */
    u64 seedTableBytes() const;
    /** Location Table bytes summed over shards (4-byte locations). */
    u64 locationTableBytes() const;

  private:
    u32 maskHash(u32 hash) const { return hash & ((1u << tableBits_) - 1); }

    SeedMapParams params_;
    u32 tableBits_ = 0;
    /** Masked-hash bits resolved inside a shard (= tableBits for 1). */
    u32 shardShift_ = 0;
    /** Inline storage for the single-shard case, so a view over an
        owning SeedMap needs no external shard array. */
    SeedMapShardView single_;
    /** Multi-shard descriptors; empty means use single_. */
    std::span<const SeedMapShardView> shards_;
};

/** The SeedMap index (owning). */
class SeedMap
{
  public:
    /** Build the index over @p ref (the offline stage). */
    SeedMap(const genomics::Reference &ref, const SeedMapParams &params);

    /**
     * Parallel offline build: partitions the reference scan into
     * fixed-span slices, bins seed records by hash shard and sorts the
     * shards concurrently. Bit-identical tables to the serial
     * constructor for any thread count (0 = hardware concurrency).
     */
    static SeedMap build(const genomics::Reference &ref,
                         const SeedMapParams &params, u32 threads);

    const SeedMapParams &params() const { return params_; }
    const SeedMapStats &stats() const { return stats_; }

    /** Non-owning view over this map (valid while the map lives). */
    SeedMapView
    view() const
    {
        return { params_, tableBits_, seedTable_, locationTable_ };
    }

    /** Hash a seed sequence to its (unmasked) 32-bit xxHash value. */
    u32
    hashSeed(const genomics::DnaSequence &seed) const
    {
        return hashSeedValue(seed, params_.seedLen);
    }

    /** See hashSeedValueAt. */
    u32
    hashSeedAt(const genomics::DnaView &read, u64 offset) const
    {
        return hashSeedValueAt(read, offset, params_.seedLen);
    }

    /**
     * Query the sorted location list of a seed hash. Delegates to the
     * view so there is exactly one lookup implementation to keep
     * correct (product hot paths hold a SeedMapView directly).
     */
    std::span<const u32>
    lookup(u32 hash) const
    {
        return view().lookup(hash);
    }

    /** Seed Table size in bytes (4-byte offsets). */
    u64 seedTableBytes() const { return seedTable_.size() * sizeof(u32); }
    /** Location Table size in bytes (4-byte locations). */
    u64
    locationTableBytes() const
    {
        return locationTable_.size() * sizeof(u32);
    }

    u32 tableBits() const { return tableBits_; }

    /** Raw CSR Seed Table (serialization / NMSL address layout). */
    const std::vector<u32> &rawSeedTable() const { return seedTable_; }
    /** Raw Location Table. */
    const std::vector<u32> &rawLocationTable() const
    {
        return locationTable_;
    }

    /**
     * Reconstruct a SeedMap from previously built tables (the
     * deserialization path; occupancy statistics are recomputed).
     */
    static SeedMap fromTables(const SeedMapParams &params, u32 table_bits,
                              std::vector<u32> seed_table,
                              std::vector<u32> location_table);

  private:
    SeedMap() = default;

    u32 maskHash(u32 hash) const { return hash & ((1u << tableBits_) - 1); }

    SeedMapParams params_;
    SeedMapStats stats_;
    u32 tableBits_ = 0;
    /** CSR offsets, size 2^tableBits + 1. */
    std::vector<u32> seedTable_;
    /** Flat sorted locations per seed hash. */
    std::vector<u32> locationTable_;
};

inline SeedMapView::SeedMapView(const SeedMap &map)
{
    *this = map.view();
}

} // namespace genpair
} // namespace gpx

#endif // GPX_GENPAIR_SEEDMAP_HH
