/**
 * @file
 * The explicit stage graph of the Fig. 3 pipeline over
 * structure-of-arrays batches.
 *
 * A PairBatch flows through SeedStage -> QueryStage -> PaFilterStage ->
 * LightAlignStage -> FallbackStage. Each stage is a pure function over
 * the batch: it reads the lanes earlier stages filled, appends its own,
 * routes pairs that exit the fast path (the Fig. 10 fallback classes)
 * and bumps its StageCounters. Per-pair work is bit-identical to the
 * historical monolithic mapPair() — the golden-corpus SAM digest pins
 * that — but the batch form reuses every scratch buffer across pairs
 * (revComp storage, CSR candidate stores, light-alignment bit planes
 * and masks), which removes the per-pair allocation traffic that
 * dominated the monolith's overhead.
 *
 * Lane convention (a proper FR pair maps one read forward and the other
 * reverse-complemented; both fragment orientations are evaluated):
 *
 *   lane 0: orientation A left  = read 1 forward
 *   lane 1: orientation A right = revComp(read 2)
 *   lane 2: orientation B left  = read 2 forward
 *   lane 3: orientation B right = revComp(read 1)
 *
 * Candidate lists live in one CSR store per batch
 * (candOffsets[4*i+lane] .. candOffsets[4*i+lane+1] indexes
 * candidates), candidate pairs likewise with two lanes per pair.
 */

#ifndef GPX_GENPAIR_STAGES_HH
#define GPX_GENPAIR_STAGES_HH

#include <array>
#include <iosfwd>
#include <vector>

#include "baseline/mm2lite.hh"
#include "genomics/readpair.hh"
#include "genpair/light_align.hh"
#include "genpair/pafilter.hh"
#include "genpair/seeder.hh"
#include "genpair/seedmap.hh"
#include "util/types.hh"

namespace gpx {
namespace genpair {

struct GenPairParams;
struct PipelineStats;

/** The five stages of the Fig. 3 graph (with the Fig. 10 fallbacks). */
enum class StageId : u32
{
    Seed = 0,
    Query,
    PaFilter,
    LightAlign,
    Fallback,
};

inline constexpr u32 kNumStages = 5;

/** Human-readable stage name ("seed", "query", ...). */
const char *stageName(StageId id);

/**
 * Per-stage execution counters. itemsOut means "pairs that left the
 * stage successfully": still on the fast path for Seed/Query/PaFilter,
 * fast-path aligned for LightAlign, mapped for Fallback.
 */
struct StageCounters
{
    u64 batches = 0;  ///< stage invocations (batch granularity)
    u64 itemsIn = 0;  ///< pairs entering the stage
    u64 itemsOut = 0; ///< pairs leaving the stage successfully

    StageCounters &
    operator+=(const StageCounters &other)
    {
        batches += other.batches;
        itemsIn += other.itemsIn;
        itemsOut += other.itemsOut;
        return *this;
    }
};

/** Where a pair is in the graph / which Fig. 10 exit it took. */
enum class PairRoute : u8
{
    Pending = 0,   ///< still on the fast path
    LightAligned,  ///< fast path end to end
    LightFallback, ///< exit 3: light alignment rejected (DP at candidates)
    SeedMiss,      ///< exit 1: SeedMap returned nothing (full DP)
    PaMiss,        ///< exit 2: adjacency filter emptied (full DP)
};

/**
 * Recorded stage events of one pair — the co-simulation hand-off. The
 * six seed lookups are the orientation-A stream (read 1 forward then
 * revComp(read 2)), exactly what hwsim::buildWorkload() synthesizes and
 * the Partitioned Seeding hardware module emits; locCount is the raw
 * Location Table list length of each seed. route/filterIterations/
 * lightAligns let the hwsim trace adapter rebuild a WorkloadProfile
 * from a real run instead of the paper's reference numbers.
 */
struct PairTraceRecord
{
    std::array<u32, 6> seedHash{};
    std::array<u32, 6> locCount{};
    PairRoute route = PairRoute::Pending;
    u32 filterIterations = 0;
    u32 lightAligns = 0;

    /** Serialize as one "P ..." trace line (format: trace_adapter.hh). */
    void writeText(std::ostream &os) const;
};

/** The structure-of-arrays batch flowing through the stage graph. */
struct PairBatch
{
    // Bound per mapBatch() call (non-owning).
    const genomics::ReadPair *pairs = nullptr;
    u64 size = 0;
    genomics::PairMapping *out = nullptr;
    PairTraceRecord *trace = nullptr; ///< optional, 1:1 with pairs

    // SoA lanes; storage is reused across batches.
    std::vector<genomics::DnaSequence> rc1; ///< revComp(read 1) per pair
    std::vector<genomics::DnaSequence> rc2; ///< revComp(read 2) per pair
    std::vector<ReadSeeds> seeds;           ///< 4 lanes per pair
    std::vector<u64> candOffsets;     ///< CSR, 4*size+1 into candidates
    std::vector<GlobalPos> candidates;
    std::vector<u64> pairOffsets;     ///< CSR, 2*size+1 into candidatePairs
    std::vector<CandidatePair> candidatePairs;
    std::vector<PairRoute> route;

    // Light-alignment scratch: one per pair side, read planes cached
    // across the candidates of an orientation.
    LightAlignScratch scratchLeft;
    LightAlignScratch scratchRight;

    // Batched light-alignment state (the gate-free fast path): read
    // bit planes per pair x orientation ([2*i+o], built on demand and
    // shared by every candidate of that side) plus the lane-major
    // ShdBatch staging.
    std::vector<align::BitPlanes> lightLeft;
    std::vector<align::BitPlanes> lightRight;
    std::vector<u8> lightLeftValid;
    std::vector<u8> lightRightValid;
    LightBatchScratch lightBatch;

    /** Bind a run and size the SoA lanes (capacity is kept). */
    void bind(const genomics::ReadPair *p, u64 n,
              genomics::PairMapping *o, PairTraceRecord *t);
};

/**
 * Everything a stage needs: the shared read-only index state, the
 * per-worker engines and the counter sink. Stages never own state, so
 * one context can drive any number of batches.
 */
struct StageContext
{
    const genomics::Reference &ref;
    const SeedMapView &map;
    const GenPairParams &params;
    const PartitionedSeeder &seeder;
    const LightAligner &light;
    LightAlignGate *gate;         ///< may be null
    baseline::Mm2Lite *fallback;  ///< may be null (residuals -> unmapped)
    PipelineStats &stats;
};

/** Orientation + seed extraction into the batch lanes. */
void runSeedStage(const StageContext &ctx, PairBatch &batch);

/** SeedMap lookups into the CSR candidate store; routes exit 1. */
void runQueryStage(const StageContext &ctx, PairBatch &batch);

/** Paired-adjacency filtering per orientation; routes exit 2. */
void runPaFilterStage(const StageContext &ctx, PairBatch &batch);

/** Budgeted light alignment over candidate pairs; routes exit 3. */
void runLightAlignStage(const StageContext &ctx, PairBatch &batch);

/** Fig. 10 DP fallbacks for every routed pair. */
void runFallbackStage(const StageContext &ctx, PairBatch &batch);

/** The full graph in Fig. 3 order. */
void runStageGraph(const StageContext &ctx, PairBatch &batch);

} // namespace genpair
} // namespace gpx

#endif // GPX_GENPAIR_STAGES_HH
