#include "genpair/engine.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/timer.hh"

namespace gpx {
namespace genpair {

MapperEngine::MapperEngine(u32 threads, ContextFactory factory,
                           u64 block_items)
    : threads_(threads ? threads
                       : std::max(1u,
                                  std::thread::hardware_concurrency())),
      blockItems_(block_items == 0 ? 1 : block_items)
{
    gpx_assert(factory, "MapperEngine needs a context factory");
    contexts_.resize(threads_);
    workers_.reserve(threads_);
    for (u32 t = 0; t < threads_; ++t)
        workers_.emplace_back(
            [this, t, factory]() { workerLoop(t, factory); });
    // Context construction is a pool start-up cost, not a mapping
    // cost: don't return until every worker has built its context, so
    // the first run()'s stopwatch measures mapping only.
    std::unique_lock<std::mutex> lock(mu_);
    jobDone_.wait(lock, [&] { return workersReady_ == threads_; });
}

MapperEngine::~MapperEngine()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    jobReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
MapperEngine::workerLoop(u32 slot, const ContextFactory &factory)
{
    // Contexts are built once per worker, on the worker's own thread
    // (first-touch locality), and live for the pool's lifetime.
    contexts_[slot] = factory(slot);

    {
        std::lock_guard<std::mutex> lock(mu_);
        ++workersReady_;
    }
    jobDone_.notify_all();

    u64 seenJob = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            jobReady_.wait(lock, [&] {
                return shutdown_ || jobSeq_ != seenJob;
            });
            if (shutdown_)
                return;
            seenJob = jobSeq_;
        }

        const u64 items = jobItems_;
        const BlockFn &fn = *jobFn_;
        for (;;) {
            const u64 begin = cursor_.fetch_add(
                blockItems_, std::memory_order_relaxed);
            if (begin >= items)
                break;
            const u64 end = std::min(items, begin + blockItems_);
            fn(*contexts_[slot], begin, end);
        }

        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--workersLeft_ == 0)
                jobDone_.notify_one();
        }
    }
}

RunTiming
MapperEngine::run(u64 items, const BlockFn &fn)
{
    util::Stopwatch watch;
    {
        std::lock_guard<std::mutex> lock(mu_);
        jobItems_ = items;
        jobFn_ = &fn;
        cursor_.store(0, std::memory_order_relaxed);
        workersLeft_ = threads_;
        ++jobSeq_;
    }
    jobReady_.notify_all();
    {
        std::unique_lock<std::mutex> lock(mu_);
        jobDone_.wait(lock, [&] { return workersLeft_ == 0; });
    }
    return RunTiming::of(items, watch.seconds());
}

RunTiming
MapperEngine::submit(u64 items, const BlockFn &fn)
{
    std::lock_guard<std::mutex> lock(submitMu_);
    return run(items, fn);
}

void
MapperEngine::forEachContext(
    const std::function<void(WorkerContext &)> &fn)
{
    for (auto &ctx : contexts_)
        fn(*ctx);
}

} // namespace genpair
} // namespace gpx
