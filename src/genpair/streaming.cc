#include "genpair/streaming.hh"

#include <atomic>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "genomics/fastq_ingest.hh"
#include "util/byte_stream.hh"
#include "util/channel.hh"
#include "util/gzip_stream.hh"
#include "util/logging.hh"
#include "util/timer.hh"

namespace gpx {
namespace genpair {

namespace {

/** One chunk leaving the mapper for the emission stage. */
struct MappedChunk
{
    u64 seq = 0;
    std::vector<genomics::ReadPair> pairs;
    std::vector<genomics::PairMapping> mappings;
    std::vector<PairTraceRecord> trace;
    genomics::IngestError error; ///< when set: emission stops here
};

} // namespace

StreamingMapper::StreamingMapper(const genomics::Reference &ref,
                                 const SeedMapView &map,
                                 const DriverConfig &config,
                                 u64 chunk_pairs, u32 io_threads)
    : owned_(std::make_unique<ParallelMapper>(ref, map, config)),
      mapper_(*owned_), borrowed_(false),
      chunkPairs_(chunk_pairs == 0 ? 1 : chunk_pairs),
      ioThreads_(io_threads == 0 ? 1 : io_threads),
      traceEnabled_(config.recordTrace)
{
}

StreamingMapper::StreamingMapper(ParallelMapper &shared, u64 chunk_pairs,
                                 u32 io_threads, bool record_trace)
    : mapper_(shared), borrowed_(true),
      chunkPairs_(chunk_pairs == 0 ? 1 : chunk_pairs),
      ioThreads_(io_threads == 0 ? 1 : io_threads),
      traceEnabled_(record_trace)
{
}

StreamingResult
StreamingMapper::run(std::istream &r1, std::istream &r2,
                     genomics::SamWriter &sam,
                     const TraceSink &trace_sink)
{
    StreamingResult result;
    genomics::IngestError error;
    const StreamRunStatus status =
        tryRun(r1, r2, sam, result, &error, 0, trace_sink);
    if (status != StreamRunStatus::kOk)
        gpx_fatal(error.message);
    return result;
}

StreamRunStatus
StreamingMapper::tryRun(std::istream &r1, std::istream &r2,
                        genomics::SamWriter &sam, StreamingResult &result,
                        genomics::IngestError *error, u64 max_pairs,
                        const TraceSink &trace_sink)
{
    gpx_assert(!trace_sink || traceEnabled_,
               "trace sink needs DriverConfig::recordTrace");
    result = StreamingResult{};
    util::Stopwatch watch;

    const std::size_t qcap =
        std::max<std::size_t>(2, static_cast<std::size_t>(ioThreads_) * 2);
    util::Channel<genomics::FastqChunk> rawQ(qcap);
    util::Channel<genomics::ParsedChunk> parsedQ(qcap);
    util::Channel<MappedChunk> mappedQ(2);

    std::atomic<bool> warnedAmbiguous{false};

    // Chunker: owns the byte stacks. Prefetch sits above inflate so
    // file reads AND gzip decompression run ahead of the scan.
    std::thread chunkerThread([&]() {
        util::IstreamSource raw1(r1);
        util::IstreamSource raw2(r2);
        util::AutoInflateSource inflate1(raw1);
        util::AutoInflateSource inflate2(raw2);
        util::PrefetchSource prefetch1(inflate1);
        util::PrefetchSource prefetch2(inflate2);
        genomics::PairedFastqChunker chunker(prefetch1, prefetch2,
                                             chunkPairs_);
        genomics::FastqChunk chunk;
        while (chunker.next(chunk)) {
            // push fails only after an early close (downstream error).
            if (!rawQ.push(std::move(chunk)))
                break;
            chunk = genomics::FastqChunk{};
        }
        rawQ.close();
    });

    // Parsers: the expensive half of ingest, over disjoint chunks.
    // The last one out closes the parsed queue.
    std::atomic<u32> parsersLive{ioThreads_};
    std::vector<std::thread> parserThreads;
    parserThreads.reserve(ioThreads_);
    for (u32 t = 0; t < ioThreads_; ++t) {
        parserThreads.emplace_back([&]() {
            while (auto chunk = rawQ.pop()) {
                genomics::ParsedChunk parsed = genomics::parseFastqChunk(
                    std::move(*chunk), &warnedAmbiguous);
                if (!parsedQ.push(std::move(parsed)))
                    break;
            }
            if (parsersLive.fetch_sub(1) == 1)
                parsedQ.close();
        });
    }

    // Writer: the only thread that touches `sam`. Reorders by chunk
    // sequence number so emission is strictly input-ordered; stops at
    // the first in-order error chunk, which by construction carries
    // the diagnostic the serial reader would have hit first.
    genomics::IngestError firstError;
    std::atomic<bool> writeFailed{ false };
    std::thread writerThread([&]() {
        std::map<u64, MappedChunk> reorder;
        u64 nextSeq = 0;
        bool stopped = false;
        while (auto m = mappedQ.pop()) {
            reorder.emplace(m->seq, std::move(*m));
            while (!stopped) {
                auto it = reorder.find(nextSeq);
                if (it == reorder.end())
                    break;
                MappedChunk chunk = std::move(it->second);
                reorder.erase(it);
                if (chunk.error.set()) {
                    firstError = std::move(chunk.error);
                    stopped = true;
                    break;
                }
                if (trace_sink)
                    trace_sink(chunk.trace.data(), chunk.trace.size());
                sam.writePairBatch(chunk.pairs.data(),
                                   chunk.mappings.data(),
                                   chunk.pairs.size());
                if (sam.writeFailed()) {
                    // Checked writer latched a short write/ENOSPC:
                    // nothing downstream of this byte offset can be
                    // emitted in order, so stop writing and let the
                    // pipeline drain (upstream stops via rawQ below).
                    writeFailed.store(true,
                                      std::memory_order_relaxed);
                    stopped = true;
                    break;
                }
                ++nextSeq;
            }
        }
    });

    // Mapper (this thread): the pool's workers are the parallelism.
    // Chunks are mapped in arrival order (mapping is per-pair pure;
    // the writer restores input order).
    double mapSeconds = 0;
    u64 totalParsed = 0;
    bool tooLarge = false;
    while (auto parsed = parsedQ.pop()) {
        MappedChunk m;
        m.seq = parsed->seq;
        m.error = std::move(parsed->error);
        // Ingest accounting: the slice parsers count the non-ACGT
        // bases they encoded away (IngestStats); fold them in here so
        // the spine reports dirty inputs exactly like the serial
        // reader path would.
        result.stats.ambiguousBases += parsed->r1Stats.ambiguousBases +
                                       parsed->r2Stats.ambiguousBases;
        totalParsed += parsed->pairs.size();
        if (max_pairs != 0 && totalParsed > max_pairs)
            tooLarge = true;
        if (writeFailed.load(std::memory_order_relaxed)) {
            // The writer latched an emission failure; stop producing
            // and drain what is in flight.
            rawQ.close();
        }
        if (m.error.set()) {
            // Stop the chunker; queued chunks still drain so every
            // sequence number below the error reaches the writer.
            rawQ.close();
        } else if (!tooLarge &&
                   !writeFailed.load(std::memory_order_relaxed)) {
            DriverResult res = borrowed_
                                   ? mapper_.mapAllShared(parsed->pairs)
                                   : mapper_.mapAll(parsed->pairs);
            result.stats += res.stats;
            mapSeconds += res.timing.seconds;
            result.pairs += parsed->pairs.size();
            ++result.chunks;
            m.pairs = std::move(parsed->pairs);
            m.mappings = std::move(res.mappings);
            m.trace = std::move(res.trace);
        }
        mappedQ.push(std::move(m));
    }
    mappedQ.close();

    writerThread.join();
    rawQ.close(); // idempotent; normally closed by the chunker itself
    chunkerThread.join();
    for (auto &t : parserThreads)
        t.join();

    // Spine stall accounting: this thread is the sole parsedQ popper
    // and sole mappedQ pusher, so the channel counters are exactly the
    // mapping stage's ingest-wait vs emission-wait split.
    result.stats.readerStallSeconds = parsedQ.popStall().seconds;
    result.stats.writerStallSeconds = mappedQ.pushStall().seconds;

    if (writeFailed.load(std::memory_order_relaxed)) {
        if (error != nullptr) {
            error->rank = 2;
            error->message = sam.writeError();
        }
        return StreamRunStatus::kWriteError;
    }
    if (firstError.set()) {
        if (error != nullptr)
            *error = std::move(firstError);
        return StreamRunStatus::kParseError;
    }
    if (tooLarge) {
        if (error != nullptr) {
            error->recordIndex = totalParsed;
            error->rank = 2;
            error->message = util::detail::cat(
                "batch of ", totalParsed,
                " pairs exceeds the per-request limit of ", max_pairs);
        }
        return StreamRunStatus::kTooLarge;
    }
    result.total = RunTiming::of(result.pairs, watch.seconds());
    result.mapping = RunTiming::of(result.pairs, mapSeconds);
    return StreamRunStatus::kOk;
}

} // namespace genpair
} // namespace gpx
