#include "genpair/streaming.hh"

#include "util/logging.hh"
#include "util/timer.hh"

namespace gpx {
namespace genpair {

namespace {

void
accumulate(PipelineStats &into, const PipelineStats &chunk)
{
    into.pairsTotal += chunk.pairsTotal;
    into.seedMissFallback += chunk.seedMissFallback;
    into.paFilterFallback += chunk.paFilterFallback;
    into.lightAlignFallback += chunk.lightAlignFallback;
    into.lightAligned += chunk.lightAligned;
    into.dpAligned += chunk.dpAligned;
    into.fullDpMapped += chunk.fullDpMapped;
    into.unmapped += chunk.unmapped;
    into.query.seedLookups += chunk.query.seedLookups;
    into.query.locationsFetched += chunk.query.locationsFetched;
    into.query.filterIterations += chunk.query.filterIterations;
    into.candidatePairs += chunk.candidatePairs;
    into.lightAlignsAttempted += chunk.lightAlignsAttempted;
    into.lightHypotheses += chunk.lightHypotheses;
    into.gateRejected += chunk.gateRejected;
}

} // namespace

StreamingMapper::StreamingMapper(const genomics::Reference &ref,
                                 const SeedMap &map,
                                 const DriverConfig &config,
                                 u64 chunk_pairs)
    : ref_(ref), mapper_(ref, map, config),
      chunkPairs_(chunk_pairs == 0 ? 1 : chunk_pairs)
{
}

StreamingResult
StreamingMapper::run(std::istream &r1, std::istream &r2,
                     genomics::SamWriter &sam)
{
    StreamingResult result;
    genomics::FastqReader reader1(r1);
    genomics::FastqReader reader2(r2);
    util::Stopwatch watch;

    std::vector<genomics::ReadPair> chunk;
    chunk.reserve(chunkPairs_);
    bool done = false;
    while (!done) {
        chunk.clear();
        while (chunk.size() < chunkPairs_) {
            genomics::ReadPair pair;
            const bool got1 = reader1.next(pair.first);
            const bool got2 = reader2.next(pair.second);
            if (got1 != got2)
                gpx_fatal("FASTQ streams disagree: ",
                          reader1.recordsRead(), " vs ",
                          reader2.recordsRead(), " records");
            if (!got1) {
                done = true;
                break;
            }
            chunk.push_back(std::move(pair));
        }
        if (chunk.empty())
            break;

        DriverResult mapped = mapper_.mapAll(chunk);
        accumulate(result.stats, mapped.stats);
        for (std::size_t i = 0; i < chunk.size(); ++i)
            sam.writePair(chunk[i], mapped.mappings[i]);
        result.pairs += chunk.size();
        ++result.chunks;
    }

    result.seconds = watch.seconds();
    result.pairsPerSec =
        result.seconds > 0 ? result.pairs / result.seconds : 0;
    return result;
}

} // namespace genpair
} // namespace gpx
