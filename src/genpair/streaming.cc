#include "genpair/streaming.hh"

#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "util/logging.hh"
#include "util/timer.hh"

namespace gpx {
namespace genpair {

namespace {

/**
 * Single-slot blocking hand-off between one producer and one consumer
 * thread: the double-buffering primitive of the streaming pipeline.
 * push() blocks while the slot is full; pop() blocks while it is empty
 * and returns nullopt once the channel is closed and drained.
 */
template <typename T>
class HandoffSlot
{
  public:
    void
    push(T value)
    {
        std::unique_lock<std::mutex> lock(mu_);
        spaceFree_.wait(lock, [&] { return !slot_.has_value(); });
        slot_.emplace(std::move(value));
        itemReady_.notify_one();
    }

    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        itemReady_.wait(lock, [&] { return slot_.has_value() || closed_; });
        if (!slot_.has_value())
            return std::nullopt;
        std::optional<T> out = std::move(slot_);
        slot_.reset();
        spaceFree_.notify_one();
        return out;
    }

    void
    close()
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
        itemReady_.notify_one();
    }

  private:
    std::mutex mu_;
    std::condition_variable itemReady_;
    std::condition_variable spaceFree_;
    std::optional<T> slot_;
    bool closed_ = false;
};

/** One chunk moving through the reader → mapper → writer pipeline. */
struct Batch
{
    std::vector<genomics::ReadPair> pairs;
    std::vector<genomics::PairMapping> mappings; ///< filled by the mapper
};

} // namespace

StreamingMapper::StreamingMapper(const genomics::Reference &ref,
                                 const SeedMapView &map,
                                 const DriverConfig &config,
                                 u64 chunk_pairs)
    : ref_(ref), mapper_(ref, map, config),
      chunkPairs_(chunk_pairs == 0 ? 1 : chunk_pairs),
      traceEnabled_(config.recordTrace)
{
}

StreamingResult
StreamingMapper::run(std::istream &r1, std::istream &r2,
                     genomics::SamWriter &sam,
                     const TraceSink &trace_sink)
{
    gpx_assert(!trace_sink || traceEnabled_,
               "trace sink needs DriverConfig::recordTrace");
    StreamingResult result;
    util::Stopwatch watch;

    HandoffSlot<Batch> parsed;
    HandoffSlot<Batch> mapped;

    // Reader: parse the next chunk while the pool maps the current one.
    std::thread reader([&]() {
        genomics::FastqReader reader1(r1);
        genomics::FastqReader reader2(r2);
        bool done = false;
        while (!done) {
            Batch batch;
            batch.pairs.reserve(chunkPairs_);
            while (batch.pairs.size() < chunkPairs_) {
                genomics::ReadPair pair;
                const bool got1 = reader1.next(pair.first);
                const bool got2 = reader2.next(pair.second);
                if (got1 != got2)
                    gpx_fatal("FASTQ streams disagree: ",
                              got1 ? "R2" : "R1", " ended early after ",
                              (got1 ? reader2 : reader1).recordsRead(),
                              " records while ", got1 ? "R1" : "R2",
                              " still has reads (",
                              (got1 ? reader1 : reader2).recordsRead(),
                              " so far)");
                if (!got1) {
                    done = true;
                    break;
                }
                batch.pairs.push_back(std::move(pair));
            }
            if (!batch.pairs.empty())
                parsed.push(std::move(batch));
        }
        parsed.close();
    });

    // Writer: drain SAM records while the pool maps the next chunk.
    // Single consumer of the `mapped` slot, so records leave in chunk
    // order — output stays bit-identical to a batch run.
    std::thread writer([&]() {
        while (auto batch = mapped.pop()) {
            for (std::size_t i = 0; i < batch->pairs.size(); ++i)
                sam.writePair(batch->pairs[i], batch->mappings[i]);
        }
    });

    // Mapper (this thread): the pool's workers are the parallelism.
    // Chunks flow through here in input order, so the trace sink sees
    // stage events exactly as a serial run would emit them.
    double mapSeconds = 0;
    while (auto batch = parsed.pop()) {
        DriverResult res = mapper_.mapAll(batch->pairs);
        result.stats += res.stats;
        mapSeconds += res.timing.seconds;
        result.pairs += batch->pairs.size();
        ++result.chunks;
        if (trace_sink)
            trace_sink(res.trace.data(), res.trace.size());
        batch->mappings = std::move(res.mappings);
        mapped.push(std::move(*batch));
    }
    mapped.close();

    reader.join();
    writer.join();

    result.total = RunTiming::of(result.pairs, watch.seconds());
    result.mapping = RunTiming::of(result.pairs, mapSeconds);
    return result;
}

} // namespace genpair
} // namespace gpx
