#include "genpair/seeder.hh"

#include "util/logging.hh"

namespace gpx {
namespace genpair {

ReadSeeds
PartitionedSeeder::extract(const genomics::DnaView &read) const
{
    const u32 s = map_.params().seedLen;
    gpx_assert(read.size() >= s, "read shorter than the seed length");
    u64 last = read.size() - s;
    u64 mid = last / 2;

    ReadSeeds seeds;
    const u64 offsets[3] = { 0, mid, last };
    for (int i = 0; i < 3; ++i) {
        seeds[i].offsetInRead = static_cast<u32>(offsets[i]);
        seeds[i].hash = map_.hashSeedAt(read, offsets[i]);
    }
    return seeds;
}

} // namespace genpair
} // namespace gpx
