#include "eval/pileup.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gpx {
namespace eval {

using genomics::CigarOp;
using genomics::DnaSequence;
using genomics::Mapping;

PileupCaller::PileupCaller(const genomics::Reference &ref,
                           const CallerParams &params)
    : ref_(ref), params_(params)
{
    baseCounts_.assign(ref.totalLength(), { 0, 0, 0, 0 });
}

void
PileupCaller::addAlignment(const DnaSequence &query, const Mapping &mapping)
{
    if (!mapping.mapped)
        return;
    u64 q = 0;
    u64 r = mapping.pos;
    for (const auto &e : mapping.cigar.elems()) {
        switch (e.op) {
          case CigarOp::Match:
          case CigarOp::Equal:
          case CigarOp::Diff:
            for (u32 k = 0; k < e.len; ++k) {
                if (r < baseCounts_.size() && q < query.size()) {
                    auto &counts = baseCounts_[r];
                    u8 base = query.at(q);
                    if (counts[base] != 0xFFFFu)
                        ++counts[base];
                }
                ++q;
                ++r;
            }
            break;
          case CigarOp::Insertion: {
            // VCF convention: anchored at the preceding reference base.
            std::string ins;
            for (u32 k = 0; k < e.len && q + k < query.size(); ++k)
                ins.push_back(genomics::baseToChar(query.at(q + k)));
            if (r > 0)
                ++insCounts_[{ r - 1, ins }];
            q += e.len;
            break;
          }
          case CigarOp::Deletion:
            if (r > 0)
                ++delCounts_[{ r - 1, e.len }];
            r += e.len;
            break;
          case CigarOp::SoftClip:
            q += e.len;
            break;
        }
    }
}

std::vector<CalledVariant>
PileupCaller::call() const
{
    std::vector<CalledVariant> calls;

    for (u64 pos = 0; pos < baseCounts_.size(); ++pos) {
        const auto &counts = baseCounts_[pos];
        u32 depth = 0;
        for (u16 c : counts)
            depth += c;
        if (depth < params_.minDepth)
            continue;
        u8 refBase = ref_.baseAt(pos);
        u8 alt = 0;
        u32 altCount = 0;
        for (u8 b = 0; b < 4; ++b) {
            if (b != refBase && counts[b] > altCount) {
                altCount = counts[b];
                alt = b;
            }
        }
        double frac = static_cast<double>(altCount) / depth;
        if (frac >= params_.minAltFraction) {
            genomics::ChromPos cp = ref_.toChromPos(pos);
            CalledVariant v;
            v.chrom = cp.chrom;
            v.pos = cp.offset;
            v.type = simdata::VariantType::Snp;
            v.altBase = alt;
            v.altFraction = frac;
            v.depth = depth;
            calls.push_back(std::move(v));
        }
    }

    auto depthAt = [&](u64 pos) -> u32 {
        if (pos >= baseCounts_.size())
            return 0;
        u32 d = 0;
        for (u16 c : baseCounts_[pos])
            d += c;
        return d;
    };

    for (const auto &[key, count] : insCounts_) {
        u32 depth = depthAt(key.first);
        if (depth < params_.minDepth)
            continue;
        double frac = static_cast<double>(count) / depth;
        if (frac < params_.minAltFraction)
            continue;
        genomics::ChromPos cp = ref_.toChromPos(key.first);
        CalledVariant v;
        v.chrom = cp.chrom;
        v.pos = cp.offset;
        v.type = simdata::VariantType::Insertion;
        v.len = static_cast<u32>(key.second.size());
        v.insSeq = key.second;
        v.altFraction = frac;
        v.depth = depth;
        calls.push_back(std::move(v));
    }

    for (const auto &[key, count] : delCounts_) {
        u32 depth = depthAt(key.first);
        if (depth < params_.minDepth)
            continue;
        double frac = static_cast<double>(count) / depth;
        if (frac < params_.minAltFraction)
            continue;
        genomics::ChromPos cp = ref_.toChromPos(key.first);
        CalledVariant v;
        v.chrom = cp.chrom;
        v.pos = cp.offset;
        v.type = simdata::VariantType::Deletion;
        v.len = key.second;
        v.altFraction = frac;
        v.depth = depth;
        calls.push_back(std::move(v));
    }

    return calls;
}

double
PileupCaller::meanDepth() const
{
    u64 covered = 0;
    u64 total = 0;
    for (const auto &counts : baseCounts_) {
        u32 d = counts[0] + counts[1] + counts[2] + counts[3];
        if (d > 0) {
            ++covered;
            total += d;
        }
    }
    return covered ? static_cast<double>(total) / covered : 0.0;
}

} // namespace eval
} // namespace gpx
