/**
 * @file
 * Mapping-location accuracy evaluation (the paftools mapeval role,
 * paper §7.8): a simulated read is correctly mapped when the reported
 * position and strand match its ground-truth origin within a tolerance.
 */

#ifndef GPX_EVAL_MAPPING_EVAL_HH
#define GPX_EVAL_MAPPING_EVAL_HH

#include <string>
#include <vector>

#include "genomics/readpair.hh"
#include "util/types.hh"

namespace gpx {
namespace eval {

/** Aggregate mapping accuracy. */
struct MappingAccuracy
{
    u64 readsTotal = 0;
    u64 mapped = 0;
    u64 correct = 0;

    /** Fraction of mapped reads that are correct. */
    double
    precision() const
    {
        return mapped ? static_cast<double>(correct) / mapped : 0.0;
    }

    /** Fraction of all reads that are correctly mapped. */
    double
    recall() const
    {
        return readsTotal ? static_cast<double>(correct) / readsTotal : 0.0;
    }

    double
    f1() const
    {
        double p = precision(), r = recall();
        return p + r > 0 ? 2 * p * r / (p + r) : 0.0;
    }
};

/**
 * Per-region accuracy attribution: a labeled half-open GlobalPos range
 * (a species in a contamination mix, a shard's genome span, one
 * chromosome) with the reads whose *truth* origin falls inside it.
 * crossMapped counts that region's reads whose reported position
 * landed outside it — the contamination-bleed number the scenario
 * wall pins.
 */
struct RegionAccuracy
{
    std::string label;
    GlobalPos begin = 0;
    GlobalPos end = 0; ///< exclusive

    u64 readsTotal = 0;   ///< truth origin inside [begin, end)
    u64 mapped = 0;
    u64 correct = 0;      ///< same correctness criterion as the total
    u64 crossMapped = 0;  ///< mapped, but outside this region

    double
    crossFraction() const
    {
        return mapped ? static_cast<double>(crossMapped) / mapped : 0.0;
    }
};

/** Accumulates per-read correctness against simulator ground truth. */
class MappingEvaluator
{
  public:
    explicit MappingEvaluator(u64 tolerance = 50) : tolerance_(tolerance) {}

    /**
     * Register an attribution region (optional; evaluation without
     * regions is unchanged). Regions must not overlap: a truth
     * position is attributed to the first region containing it.
     */
    void addRegion(std::string label, GlobalPos begin, GlobalPos end);

    /** Score one read's mapping against its truth origin. */
    void addRead(const genomics::Read &read, const genomics::Mapping &m);

    /** Score both reads of a pair. */
    void addPair(const genomics::ReadPair &pair,
                 const genomics::PairMapping &pm);

    const MappingAccuracy &result() const { return acc_; }

    /** Per-region attribution, in addRegion() order. */
    const std::vector<RegionAccuracy> &regions() const { return regions_; }

  private:
    RegionAccuracy *regionOf(GlobalPos pos);

    u64 tolerance_;
    MappingAccuracy acc_;
    std::vector<RegionAccuracy> regions_;
};

} // namespace eval
} // namespace gpx

#endif // GPX_EVAL_MAPPING_EVAL_HH
