/**
 * @file
 * Mapping-location accuracy evaluation (the paftools mapeval role,
 * paper §7.8): a simulated read is correctly mapped when the reported
 * position and strand match its ground-truth origin within a tolerance.
 */

#ifndef GPX_EVAL_MAPPING_EVAL_HH
#define GPX_EVAL_MAPPING_EVAL_HH

#include "genomics/readpair.hh"
#include "util/types.hh"

namespace gpx {
namespace eval {

/** Aggregate mapping accuracy. */
struct MappingAccuracy
{
    u64 readsTotal = 0;
    u64 mapped = 0;
    u64 correct = 0;

    /** Fraction of mapped reads that are correct. */
    double
    precision() const
    {
        return mapped ? static_cast<double>(correct) / mapped : 0.0;
    }

    /** Fraction of all reads that are correctly mapped. */
    double
    recall() const
    {
        return readsTotal ? static_cast<double>(correct) / readsTotal : 0.0;
    }

    double
    f1() const
    {
        double p = precision(), r = recall();
        return p + r > 0 ? 2 * p * r / (p + r) : 0.0;
    }
};

/** Accumulates per-read correctness against simulator ground truth. */
class MappingEvaluator
{
  public:
    explicit MappingEvaluator(u64 tolerance = 50) : tolerance_(tolerance) {}

    /** Score one read's mapping against its truth origin. */
    void addRead(const genomics::Read &read, const genomics::Mapping &m);

    /** Score both reads of a pair. */
    void addPair(const genomics::ReadPair &pair,
                 const genomics::PairMapping &pm);

    const MappingAccuracy &result() const { return acc_; }

  private:
    u64 tolerance_;
    MappingAccuracy acc_;
};

} // namespace eval
} // namespace gpx

#endif // GPX_EVAL_MAPPING_EVAL_HH
