#include "eval/variant_bench.hh"

#include <algorithm>

namespace gpx {
namespace eval {

using simdata::Variant;
using simdata::VariantType;

namespace {

bool
inClass(VariantType type, VariantClass cls)
{
    if (cls == VariantClass::Snp)
        return type == VariantType::Snp;
    return type == VariantType::Insertion || type == VariantType::Deletion;
}

/** True if a call matches a truth variant within the tolerance. */
bool
matches(const Variant &t, const CalledVariant &c, u64 tolerance)
{
    if (t.chrom != c.chrom || t.type != c.type)
        return false;
    u64 diff = t.pos > c.pos ? t.pos - c.pos : c.pos - t.pos;
    if (diff > tolerance)
        return false;
    switch (t.type) {
      case VariantType::Snp:
        return t.pos == c.pos && t.altBase == c.altBase;
      case VariantType::Insertion:
        return t.insSeq.size() == c.len;
      case VariantType::Deletion:
        return t.delLen == c.len;
    }
    return false;
}

} // namespace

VariantBenchResult
benchmarkVariants(const std::vector<Variant> &truth,
                  const std::vector<CalledVariant> &calls, VariantClass cls,
                  u64 pos_tolerance)
{
    VariantBenchResult res;

    std::vector<const Variant *> classTruth;
    for (const auto &t : truth) {
        if (inClass(t.type, cls))
            classTruth.push_back(&t);
    }
    std::vector<const CalledVariant *> classCalls;
    for (const auto &c : calls) {
        if (inClass(c.type, cls))
            classCalls.push_back(&c);
    }

    std::vector<bool> truthHit(classTruth.size(), false);
    for (const auto *call : classCalls) {
        bool hit = false;
        for (std::size_t i = 0; i < classTruth.size(); ++i) {
            if (truthHit[i])
                continue;
            if (matches(*classTruth[i], *call, pos_tolerance)) {
                truthHit[i] = true;
                hit = true;
                break;
            }
        }
        if (hit)
            ++res.tp;
        else
            ++res.fp;
    }
    for (bool hit : truthHit) {
        if (!hit)
            ++res.fn;
    }
    return res;
}

} // namespace eval
} // namespace gpx
