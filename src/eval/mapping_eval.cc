#include "eval/mapping_eval.hh"

#include <utility>

namespace gpx {
namespace eval {

void
MappingEvaluator::addRegion(std::string label, GlobalPos begin,
                            GlobalPos end)
{
    RegionAccuracy region;
    region.label = std::move(label);
    region.begin = begin;
    region.end = end;
    regions_.push_back(std::move(region));
}

RegionAccuracy *
MappingEvaluator::regionOf(GlobalPos pos)
{
    for (auto &region : regions_)
        if (pos >= region.begin && pos < region.end)
            return &region;
    return nullptr;
}

void
MappingEvaluator::addRead(const genomics::Read &read,
                          const genomics::Mapping &m)
{
    ++acc_.readsTotal;
    RegionAccuracy *region = read.truthPos != kInvalidPos
                                 ? regionOf(read.truthPos)
                                 : nullptr;
    if (region != nullptr)
        ++region->readsTotal;
    if (!m.mapped)
        return;
    ++acc_.mapped;
    if (region != nullptr) {
        ++region->mapped;
        if (m.pos < region->begin || m.pos >= region->end)
            ++region->crossMapped;
    }
    if (read.truthPos == kInvalidPos)
        return;
    if (m.reverse != read.truthReverse)
        return;
    u64 diff = m.pos > read.truthPos ? m.pos - read.truthPos
                                     : read.truthPos - m.pos;
    if (diff <= tolerance_) {
        ++acc_.correct;
        if (region != nullptr)
            ++region->correct;
    }
}

void
MappingEvaluator::addPair(const genomics::ReadPair &pair,
                          const genomics::PairMapping &pm)
{
    addRead(pair.first, pm.first);
    addRead(pair.second, pm.second);
}

} // namespace eval
} // namespace gpx
