#include "eval/mapping_eval.hh"

namespace gpx {
namespace eval {

void
MappingEvaluator::addRead(const genomics::Read &read,
                          const genomics::Mapping &m)
{
    ++acc_.readsTotal;
    if (!m.mapped)
        return;
    ++acc_.mapped;
    if (read.truthPos == kInvalidPos)
        return;
    if (m.reverse != read.truthReverse)
        return;
    u64 diff = m.pos > read.truthPos ? m.pos - read.truthPos
                                     : read.truthPos - m.pos;
    if (diff <= tolerance_)
        ++acc_.correct;
}

void
MappingEvaluator::addPair(const genomics::ReadPair &pair,
                          const genomics::PairMapping &pm)
{
    addRead(pair.first, pm.first);
    addRead(pair.second, pm.second);
}

} // namespace eval
} // namespace gpx
