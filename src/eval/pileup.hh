/**
 * @file
 * Pileup-based small-variant caller (the freebayes role, paper §6).
 *
 * Consumes read-to-reference alignments (position + CIGAR), builds
 * per-position base/INDEL pileups, and calls SNPs and INDELs with simple
 * allele-fraction thresholds appropriate for a diploid donor. The calls
 * feed the Table 7 variant-calling benchmark.
 */

#ifndef GPX_EVAL_PILEUP_HH
#define GPX_EVAL_PILEUP_HH

#include <array>
#include <map>
#include <string>
#include <vector>

#include "genomics/readpair.hh"
#include "genomics/reference.hh"
#include "simdata/variants.hh"
#include "util/types.hh"

namespace gpx {
namespace eval {

/** A called variant in reference coordinates. */
struct CalledVariant
{
    u32 chrom = 0;
    u64 pos = 0;
    simdata::VariantType type = simdata::VariantType::Snp;
    u8 altBase = 0;      ///< SNPs
    u32 len = 0;         ///< INDEL length
    std::string insSeq;  ///< inserted bases
    double altFraction = 0;
    u32 depth = 0;
};

/** Caller thresholds. */
struct CallerParams
{
    u32 minDepth = 8;
    double minAltFraction = 0.25;
};

/** Accumulates alignments and emits variant calls. */
class PileupCaller
{
  public:
    PileupCaller(const genomics::Reference &ref,
                 const CallerParams &params);

    /**
     * Add one aligned read.
     *
     * @param query The read as it aligns forward to the reference (i.e.
     *              already reverse-complemented for reverse mappings).
     * @param mapping Its mapping (position + CIGAR).
     */
    void addAlignment(const genomics::DnaSequence &query,
                      const genomics::Mapping &mapping);

    /** Emit calls over the accumulated pileup. */
    std::vector<CalledVariant> call() const;

    /** Mean depth over positions with any coverage. */
    double meanDepth() const;

  private:
    const genomics::Reference &ref_;
    CallerParams params_;
    /** Per-genome-position counts of observed bases (A,C,G,T). */
    std::vector<std::array<u16, 4>> baseCounts_;
    /** Insertion observations: (pos, inserted seq) -> count. */
    std::map<std::pair<u64, std::string>, u32> insCounts_;
    /** Deletion observations: (pos, length) -> count. */
    std::map<std::pair<u64, u32>, u32> delCounts_;
};

} // namespace eval
} // namespace gpx

#endif // GPX_EVAL_PILEUP_HH
