/**
 * @file
 * Variant-call benchmarking against the simulator truth set (the vcfdist
 * role, paper §6/Table 7): counts true/false positives and negatives per
 * variant class and reports precision/recall/F1.
 */

#ifndef GPX_EVAL_VARIANT_BENCH_HH
#define GPX_EVAL_VARIANT_BENCH_HH

#include <vector>

#include "eval/pileup.hh"
#include "simdata/variants.hh"
#include "util/types.hh"

namespace gpx {
namespace eval {

/** Variant classes benchmarked separately (paper Table 7). */
enum class VariantClass { Snp, Indel };

/** One Table 7 row. */
struct VariantBenchResult
{
    u64 tp = 0;
    u64 fp = 0;
    u64 fn = 0;

    double
    precision() const
    {
        return tp + fp ? static_cast<double>(tp) / (tp + fp) : 0.0;
    }

    double
    recall() const
    {
        return tp + fn ? static_cast<double>(tp) / (tp + fn) : 0.0;
    }

    double
    f1() const
    {
        double p = precision(), r = recall();
        return p + r > 0 ? 2 * p * r / (p + r) : 0.0;
    }
};

/**
 * Compare calls against the truth set for one variant class.
 *
 * @param truth Planted variants (all classes; filtered internally).
 * @param calls Caller output.
 * @param cls Which class to score.
 * @param pos_tolerance Positional slack for INDEL representation
 *                      ambiguity (bases).
 */
VariantBenchResult benchmarkVariants(
    const std::vector<simdata::Variant> &truth,
    const std::vector<CalledVariant> &calls, VariantClass cls,
    u64 pos_tolerance = 2);

} // namespace eval
} // namespace gpx

#endif // GPX_EVAL_VARIANT_BENCH_HH
