/**
 * @file
 * VCF serialization of pileup variant calls, so GenPairX's calling
 * pipeline interoperates with standard comparison tooling (the role
 * vcfdist's VCF input plays in the paper's Table 7 flow).
 */

#ifndef GPX_EVAL_VCF_HH
#define GPX_EVAL_VCF_HH

#include <iosfwd>
#include <vector>

#include "eval/pileup.hh"
#include "genomics/reference.hh"

namespace gpx {
namespace eval {

/** Write a minimal VCF 4.2 file for a set of calls. */
void writeVcf(std::ostream &os, const genomics::Reference &ref,
              const std::vector<CalledVariant> &calls);

/** Parse the variants back (positions/alleles only; used by tests). */
std::vector<CalledVariant> readVcf(std::istream &is,
                                   const genomics::Reference &ref);

} // namespace eval
} // namespace gpx

#endif // GPX_EVAL_VCF_HH
