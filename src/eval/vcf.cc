#include "eval/vcf.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace gpx {
namespace eval {

using genomics::Reference;
using simdata::VariantType;

void
writeVcf(std::ostream &os, const Reference &ref,
         const std::vector<CalledVariant> &calls)
{
    os << "##fileformat=VCFv4.2\n"
       << "##source=genpairx\n";
    for (u32 c = 0; c < ref.numChromosomes(); ++c) {
        os << "##contig=<ID=" << ref.name(c)
           << ",length=" << ref.chromosomeLength(c) << ">\n";
    }
    os << "##INFO=<ID=AF,Number=1,Type=Float,Description=\"Allele "
          "fraction\">\n"
       << "##INFO=<ID=DP,Number=1,Type=Integer,Description=\"Depth\">\n"
       << "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\n";

    for (const auto &v : calls) {
        std::string refAllele, altAllele;
        u64 pos1; // VCF position, 1-based
        GlobalPos global = ref.toGlobal(v.chrom, v.pos);
        switch (v.type) {
          case VariantType::Snp:
            pos1 = v.pos + 1;
            refAllele = std::string(1, genomics::baseToChar(
                                           ref.baseAt(global)));
            altAllele = std::string(1, genomics::baseToChar(v.altBase));
            break;
          case VariantType::Insertion:
            // Anchored at the POS base, alt = anchor + inserted bases.
            pos1 = v.pos + 1;
            refAllele = std::string(1, genomics::baseToChar(
                                           ref.baseAt(global)));
            altAllele = refAllele + v.insSeq;
            break;
          case VariantType::Deletion: {
            pos1 = v.pos + 1;
            refAllele = std::string(1, genomics::baseToChar(
                                           ref.baseAt(global)));
            for (u32 k = 1; k <= v.len; ++k) {
                refAllele.push_back(genomics::baseToChar(
                    ref.baseAt(global + k)));
            }
            altAllele = refAllele.substr(0, 1);
            break;
          }
          default:
            continue;
        }
        os << ref.name(v.chrom) << '\t' << pos1 << "\t.\t" << refAllele
           << '\t' << altAllele << "\t.\tPASS\tAF="
           << static_cast<float>(v.altFraction) << ";DP=" << v.depth
           << '\n';
    }
}

std::vector<CalledVariant>
readVcf(std::istream &is, const Reference &ref)
{
    std::vector<CalledVariant> out;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        std::string chromName, id, refAllele, altAllele, qual, filter;
        u64 pos1;
        ss >> chromName >> pos1 >> id >> refAllele >> altAllele >> qual
           >> filter;
        u32 chrom = ~u32{0};
        for (u32 c = 0; c < ref.numChromosomes(); ++c) {
            if (ref.name(c) == chromName) {
                chrom = c;
                break;
            }
        }
        if (chrom == ~u32{0})
            continue;
        CalledVariant v;
        v.chrom = chrom;
        if (refAllele.size() == 1 && altAllele.size() == 1) {
            v.type = VariantType::Snp;
            v.pos = pos1 - 1;
            v.altBase = genomics::charToBase(altAllele[0]);
        } else if (altAllele.size() > refAllele.size()) {
            v.type = VariantType::Insertion;
            v.pos = pos1 - 1;
            v.insSeq = altAllele.substr(refAllele.size());
            v.len = static_cast<u32>(v.insSeq.size());
        } else {
            v.type = VariantType::Deletion;
            v.pos = pos1 - 1;
            v.len = static_cast<u32>(refAllele.size() -
                                     altAllele.size());
        }
        out.push_back(std::move(v));
    }
    return out;
}

} // namespace eval
} // namespace gpx
