/**
 * @file
 * GRIM-Filter-style binned q-gram existence filter [Kim+ 2018].
 *
 * The processing-in-memory filter the paper's related work (§8)
 * contrasts with: the reference is partitioned into bins, each bin
 * stores a 4^q-bit existence bitvector of the q-grams it contains, and
 * a candidate location is accepted when enough of the read's q-grams
 * exist in the bins the read would occupy. Each edit can destroy at
 * most q overlapping q-grams, so requiring
 *   present >= tokens - q * maxEdits
 * never rejects a true location within the edit budget (the GRIM
 * no-false-negative argument). Unlike the window filters it needs no
 * reference bases at query time — only the precomputed bitvectors,
 * which is what makes it PIM-friendly.
 */

#ifndef GPX_FILTERS_GRIM_FILTER_HH
#define GPX_FILTERS_GRIM_FILTER_HH

#include <vector>

#include "filters/filter.hh"
#include "genomics/reference.hh"

namespace gpx {
namespace filters {

/** GRIM-Filter configuration. */
struct GrimParams
{
    u32 q = 5;        ///< token length (GRIM uses 5 bp)
    u32 binBits = 8;  ///< log2 bin size; 8 -> 256 bp bins
};

/** Binned q-gram existence filter over a reference genome. */
class GrimFilter
{
  public:
    GrimFilter(const genomics::Reference &ref, const GrimParams &params);

    const GrimParams &params() const { return params_; }

    /** Total bitvector storage (the PIM capacity footprint). */
    u64 bitvectorBytes() const;

    /**
     * Evaluate @p read placed at global position @p candidate with an
     * edit budget of @p maxEdits. estimatedEdits reports the implied
     * lower bound ceil(missing / q).
     */
    FilterDecision evaluate(const genomics::DnaSequence &read,
                            GlobalPos candidate, u32 maxEdits) const;

    /** Number of read q-grams present in the bins at @p candidate. */
    u32 presentTokens(const genomics::DnaSequence &read,
                      GlobalPos candidate) const;

  private:
    /** Token id of the q-gram starting at @p i in @p seq. */
    u32 token(const genomics::DnaSequence &seq, std::size_t i) const;

    bool tokenInBin(u64 bin, u32 token) const;

    const genomics::Reference &ref_;
    GrimParams params_;
    u64 numBins_ = 0;
    u32 tokenSpace_ = 0;      ///< 4^q
    u64 wordsPerBin_ = 0;     ///< tokenSpace_ / 64
    std::vector<u64> bits_;   ///< numBins_ x wordsPerBin_
};

} // namespace filters
} // namespace gpx

#endif // GPX_FILTERS_GRIM_FILTER_HH
