/**
 * @file
 * Base-counting (1-gram) pre-alignment filter.
 *
 * The cheapest member of the q-gram counting family the paper's related
 * work builds on: bases the read needs that the candidate window cannot
 * supply each cost at least one edit, so the deficit is a true lower
 * bound on edit distance. Costs one pass over read and window and no
 * per-candidate memory; its weakness is blindness to order (shuffled
 * windows pass), which the ablation bench quantifies as a high false
 * accept rate relative to SneakySnake.
 */

#ifndef GPX_FILTERS_BASE_COUNT_HH
#define GPX_FILTERS_BASE_COUNT_HH

#include "filters/filter.hh"

namespace gpx {
namespace filters {

/** 1-gram counting filter (order-blind edit lower bound). */
class BaseCountFilter final : public PreAlignmentFilter
{
  public:
    std::string name() const override { return "BaseCount"; }

    FilterDecision evaluate(const genomics::DnaView &read,
                            const genomics::DnaView &window,
                            u32 center, u32 maxEdits) const override;
};

} // namespace filters
} // namespace gpx

#endif // GPX_FILTERS_BASE_COUNT_HH
