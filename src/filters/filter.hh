/**
 * @file
 * Common interface for pre-alignment filters.
 *
 * The paper's related work (§8) surveys a family of cheap filters —
 * Shifted Hamming Distance [52], GateKeeper [50], SneakySnake [49],
 * base-counting q-gram filters — that reject candidate (read, location)
 * pairs before expensive verification. GenPair's Light Alignment goes
 * further (it *aligns* rather than filters), and §8 names combining it
 * with SneakySnake as promising future work. This library implements the
 * classic filters behind one interface so that combination (and the
 * filter-vs-filter ablation in `bench/ablation_filters`) can be built
 * and tested.
 *
 * Candidate model: the read's nominal first base sits at offset
 * @p center inside a reference @p window that extends at least
 * `center + read.size() + maxEdits` bases, mirroring the shifted-mask
 * convention of align/shd.hh. A filter returns an *edit lower-bound
 * estimate*; the candidate is accepted when the estimate does not exceed
 * the caller's edit budget.
 */

#ifndef GPX_FILTERS_FILTER_HH
#define GPX_FILTERS_FILTER_HH

#include <string>

#include "genomics/sequence.hh"
#include "util/types.hh"

namespace gpx {
namespace filters {

/** Outcome of one filter evaluation. */
struct FilterDecision
{
    /** True when the candidate survives (edit estimate <= budget). */
    bool accept = false;
    /**
     * The filter's estimate of the number of edits. For lower-bounding
     * filters (SneakySnake, base counting) this never exceeds the true
     * edit distance; heuristic filters (GateKeeper, SHD) may
     * overestimate on adversarial inputs.
     */
    u32 estimatedEdits = 0;
};

/** A pre-alignment filter: cheap accept/reject ahead of verification. */
class PreAlignmentFilter
{
  public:
    virtual ~PreAlignmentFilter() = default;

    /** Human-readable name used by benches and reports. */
    virtual std::string name() const = 0;

    /**
     * Evaluate the candidate placement of @p read at offset @p center
     * within @p window, with an edit budget of @p maxEdits. Both
     * arguments are zero-copy views (any DnaSequence converts
     * implicitly); reference windows should come straight from
     * Reference::windowView() so no candidate inspection copies bases.
     */
    virtual FilterDecision evaluate(const genomics::DnaView &read,
                                    const genomics::DnaView &window,
                                    u32 center, u32 maxEdits) const = 0;
};

} // namespace filters
} // namespace gpx

#endif // GPX_FILTERS_FILTER_HH
