#include "filters/sneakysnake.hh"

#include <algorithm>

#include "filters/mask_ops.hh"

namespace gpx {
namespace filters {

FilterDecision
SneakySnakeFilter::evaluate(const genomics::DnaView &read,
                            const genomics::DnaView &window, u32 center,
                            u32 maxEdits) const
{
    FilterDecision d;
    if (read.empty()) {
        d.accept = true;
        return d;
    }
    auto masks = align::shiftedMasks(read, window, center, maxEdits);
    const u32 bits = masks[0].bits;

    // Greedy snake: at each column take the longest horizontal match run
    // across all diagonals, then pay one obstacle crossing to move past
    // the blocking column. Early-exit once the budget is exceeded.
    u32 col = 0;
    u32 obstacles = 0;
    while (col < bits) {
        u32 best = 0;
        for (const auto &mask : masks) {
            best = std::max(best, onesRunAt(mask, col));
            if (col + best >= bits)
                break;
        }
        col += best;
        if (col >= bits)
            break;
        ++obstacles;
        ++col; // cross the obstacle column
        if (obstacles > maxEdits)
            break;
    }

    d.estimatedEdits = obstacles;
    d.accept = obstacles <= maxEdits;
    return d;
}

} // namespace filters
} // namespace gpx
