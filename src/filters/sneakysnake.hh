/**
 * @file
 * SneakySnake pre-alignment filter [Alser+ 2020].
 *
 * Reframes approximate matching as Single Net Routing: the 2e+1 shifted
 * Hamming masks form a grid whose match runs are horizontal wires, and
 * the minimum number of obstacles a "snake" must cross to traverse the
 * read left to right lower-bounds the edit distance. The greedy
 * longest-segment-first traversal is optimal for this subproblem (proved
 * in the SneakySnake paper), so the filter never rejects a candidate
 * whose true distance is within the budget.
 *
 * Paper §8: "A combination of the two methods [SneakySnake and Light
 * Alignment] is a promising future work" — filters/filtered_light_align
 * builds that combination on top of this class.
 */

#ifndef GPX_FILTERS_SNEAKYSNAKE_HH
#define GPX_FILTERS_SNEAKYSNAKE_HH

#include "filters/filter.hh"

namespace gpx {
namespace filters {

/** The SneakySnake filter. */
class SneakySnakeFilter final : public PreAlignmentFilter
{
  public:
    std::string name() const override { return "SneakySnake"; }

    FilterDecision evaluate(const genomics::DnaView &read,
                            const genomics::DnaView &window,
                            u32 center, u32 maxEdits) const override;
};

} // namespace filters
} // namespace gpx

#endif // GPX_FILTERS_SNEAKYSNAKE_HH
