#include "filters/gatekeeper.hh"

#include "filters/mask_ops.hh"

namespace gpx {
namespace filters {

FilterDecision
GateKeeperFilter::evaluate(const genomics::DnaView &read,
                           const genomics::DnaView &window, u32 center,
                           u32 maxEdits) const
{
    FilterDecision d;
    if (read.empty()) {
        d.accept = true;
        return d;
    }
    auto masks = align::shiftedMasks(read, window, center, maxEdits);

    align::HammingMask combined = masks[maxEdits]; // zero shift, unamended
    for (u32 m = 0; m < masks.size(); ++m) {
        if (m == maxEdits)
            continue;
        combined =
            orMasks(combined, amendShortRuns(masks[m], params_.minMatchRun));
    }

    // Hardware-style verdict: popcount of unexplained positions.
    d.estimatedEdits = zeroCount(combined);
    d.accept = d.estimatedEdits <= maxEdits;
    return d;
}

} // namespace filters
} // namespace gpx
