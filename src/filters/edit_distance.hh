/**
 * @file
 * Unit-cost edit distance (Levenshtein), full and banded.
 *
 * This is the ground-truth oracle the filter tests validate against:
 * lower-bounding filters must never report an edit estimate above the
 * true distance, and no filter may reject a candidate whose distance is
 * within the edit budget (a false reject loses a mapping; a false accept
 * merely wastes verification work). The banded variant (Ukkonen cutoff)
 * is also what a production pre-filter would call when it needs an exact
 * small-distance verdict.
 */

#ifndef GPX_FILTERS_EDIT_DISTANCE_HH
#define GPX_FILTERS_EDIT_DISTANCE_HH

#include "genomics/sequence.hh"
#include "util/types.hh"

namespace gpx {
namespace filters {

/** Full O(n*m) unit-cost edit distance between two sequences. */
u32 editDistance(const genomics::DnaSequence &a,
                 const genomics::DnaSequence &b);

/**
 * Banded edit distance with cutoff @p k: returns the exact distance when
 * it is <= k, otherwise k+1 ("more than k"). O(n*k) time.
 */
u32 editDistanceBounded(const genomics::DnaSequence &a,
                        const genomics::DnaSequence &b, u32 k);

/**
 * Minimum edit distance between @p read and any prefix-anchored
 * placement inside @p window at offsets within +/- @p slack of
 * @p center; this is the exact quantity pre-alignment filters
 * lower-bound (the read must align somewhere near the candidate, the
 * window edges are free).
 */
u32 candidateEditDistance(const genomics::DnaSequence &read,
                          const genomics::DnaSequence &window, u32 center,
                          u32 slack);

} // namespace filters
} // namespace gpx

#endif // GPX_FILTERS_EDIT_DISTANCE_HH
