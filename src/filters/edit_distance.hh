/**
 * @file
 * Unit-cost edit distance (Levenshtein): bit-parallel primary kernels
 * plus the scalar DP retained as the ground-truth oracle.
 *
 * The primary implementations use Myers' 1999 bit-vector algorithm
 * (blocked for patterns longer than 64 bases, with the edlib-style
 * horizontal carry chain between blocks): one column of the DP matrix
 * costs a handful of word operations per 64 pattern rows instead of 64
 * scalar cells. The bounded variant adds a Ukkonen-style cutoff — the
 * running last-row score minus the columns still to come lower-bounds
 * the final distance, so hopeless candidates exit early. The semi-global
 * variant (candidateEditDistance) runs the same kernel with a free text
 * prefix (zero horizontal boundary deltas) and a running minimum over
 * the last row for the free suffix.
 *
 * The *Scalar functions are the original O(n*m) DP kept verbatim: they
 * are the oracle the randomized property tests and the filter-soundness
 * tests validate against (lower-bounding filters must never report an
 * edit estimate above the true distance).
 */

#ifndef GPX_FILTERS_EDIT_DISTANCE_HH
#define GPX_FILTERS_EDIT_DISTANCE_HH

#include "genomics/sequence.hh"
#include "util/types.hh"

namespace gpx {
namespace filters {

/** Full unit-cost edit distance between two sequences (bit-parallel). */
u32 editDistance(const genomics::DnaView &a, const genomics::DnaView &b);

/**
 * Banded edit distance with cutoff @p k: returns the exact distance when
 * it is <= k, otherwise k+1 ("more than k"). Bit-parallel with a
 * Ukkonen-style early exit.
 */
u32 editDistanceBounded(const genomics::DnaView &a,
                        const genomics::DnaView &b, u32 k);

/**
 * Minimum edit distance between @p read and any prefix-anchored
 * placement inside @p window at offsets within +/- @p slack of
 * @p center; this is the exact quantity pre-alignment filters
 * lower-bound (the read must align somewhere near the candidate, the
 * window edges are free).
 */
u32 candidateEditDistance(const genomics::DnaView &read,
                          const genomics::DnaView &window, u32 center,
                          u32 slack);

/** Scalar O(n*m) oracle for editDistance (tests/benches only). */
u32 editDistanceScalar(const genomics::DnaView &a,
                       const genomics::DnaView &b);

/** Scalar banded oracle for editDistanceBounded (tests/benches only). */
u32 editDistanceBoundedScalar(const genomics::DnaView &a,
                              const genomics::DnaView &b, u32 k);

/** Scalar semi-global oracle for candidateEditDistance (tests only). */
u32 candidateEditDistanceScalar(const genomics::DnaView &read,
                                const genomics::DnaView &window, u32 center,
                                u32 slack);

} // namespace filters
} // namespace gpx

#endif // GPX_FILTERS_EDIT_DISTANCE_HH
