/**
 * @file
 * Shifted Hamming Distance (SHD) pre-alignment filter [Xin+ 2015].
 *
 * The direct ancestor of GenPair's Light Alignment (paper §4.6 cites it
 * explicitly): compute 2e+1 Hamming masks between the read and shifted
 * copies of the reference, amend away short random match runs, OR the
 * masks together, and count the residual error clusters. A true
 * alignment with <= e edits decomposes the read into match segments each
 * visible under some shift, so few clusters survive; dissimilar
 * sequences leave many. SHD filters only — GenPair's contribution on
 * top of it is producing the score and CIGAR as well.
 */

#ifndef GPX_FILTERS_SHD_FILTER_HH
#define GPX_FILTERS_SHD_FILTER_HH

#include "filters/filter.hh"

namespace gpx {
namespace filters {

/** SHD configuration. */
struct ShdParams
{
    /**
     * Amendment threshold: match runs shorter than this are treated as
     * accidental and removed before masks are combined (the SHD paper's
     * speculative removal uses 2-3).
     */
    u32 minMatchRun = 3;
};

/** The SHD filter. */
class ShdFilter final : public PreAlignmentFilter
{
  public:
    explicit ShdFilter(const ShdParams &params = {}) : params_(params) {}

    std::string name() const override { return "SHD"; }

    FilterDecision evaluate(const genomics::DnaView &read,
                            const genomics::DnaView &window,
                            u32 center, u32 maxEdits) const override;

    /**
     * SIMD-across-batch form: one read against @p count candidate
     * windows, mask construction running 4-8 window lanes per vector
     * register (align::ShdBatch). The amend/OR/cluster-count epilogue
     * stays word-scalar per lane; out[i] is bit-identical to
     * evaluate(read, windows[i], center, maxEdits). Under
     * SimdBackend::Scalar each window runs the production scalar path.
     */
    void evaluateBatch(const genomics::DnaView &read,
                       const genomics::DnaView *windows,
                       std::size_t count, u32 center, u32 maxEdits,
                       FilterDecision *out) const;

  private:
    ShdParams params_;
};

} // namespace filters
} // namespace gpx

#endif // GPX_FILTERS_SHD_FILTER_HH
