/**
 * @file
 * GateKeeper pre-alignment filter [Alser+ 2017].
 *
 * The FPGA-friendly simplification of SHD the paper's related work
 * discusses: the same 2e+1 shifted masks, but the verdict counts
 * individual unexplained *positions* rather than error clusters, which
 * removes the run bookkeeping from the hardware's critical path (a
 * popcount suffices). The trade-off — counting positions overestimates
 * the cost of indels, whose single edit leaves a diagonal of mismatches
 * in the zero-shift mask — is exactly what the shifted copies repair,
 * and the ablation bench measures what remains.
 */

#ifndef GPX_FILTERS_GATEKEEPER_HH
#define GPX_FILTERS_GATEKEEPER_HH

#include "filters/filter.hh"

namespace gpx {
namespace filters {

/** GateKeeper configuration. */
struct GateKeeperParams
{
    /** Amendment threshold (the paper amends runs of 1-2 matches). */
    u32 minMatchRun = 3;
};

/** The GateKeeper filter. */
class GateKeeperFilter final : public PreAlignmentFilter
{
  public:
    explicit GateKeeperFilter(const GateKeeperParams &params = {})
        : params_(params)
    {
    }

    std::string name() const override { return "GateKeeper"; }

    FilterDecision evaluate(const genomics::DnaView &read,
                            const genomics::DnaView &window,
                            u32 center, u32 maxEdits) const override;

  private:
    GateKeeperParams params_;
};

} // namespace filters
} // namespace gpx

#endif // GPX_FILTERS_GATEKEEPER_HH
