#include "filters/edit_distance.hh"

#include <algorithm>
#include <limits>
#include <vector>

namespace gpx {
namespace filters {

using genomics::DnaView;

namespace {

constexpr u32 kNoCutoff = std::numeric_limits<u32>::max();

/** Pattern blocks served from the stack (256 bases covers any read). */
constexpr u32 kStackBlocks = 4;

/**
 * Build the per-base match masks of the pattern into @p peq (4*W
 * words): peq[c * W + b] bit i is set when pattern base 64*b + i equals
 * code c. Derived word-parallel straight from the packed words — no
 * intermediate plane vectors. Bits past the pattern's last base are
 * zero, which only feeds the (unread) garbage bits above the score row.
 */
void
buildPatternEq(const DnaView &pat, u32 m, u32 W, u64 *peq)
{
    const std::size_t nw = pat.numWords();
    for (u32 b = 0; b < W; ++b) {
        u64 v0 = pat.word(2 * b);
        u64 v1 = 2 * b + 1 < nw ? pat.word(2 * b + 1) : 0;
        u64 l = genomics::detail::evenBits(v0) |
                (genomics::detail::evenBits(v1) << 32);
        u64 h = genomics::detail::evenBits(v0 >> 1) |
                (genomics::detail::evenBits(v1 >> 1) << 32);
        u64 valid =
            m - 64 * b >= 64 ? ~u64{0} : (u64{1} << (m - 64 * b)) - 1;
        peq[genomics::BaseA * W + b] = ~l & ~h & valid;
        peq[genomics::BaseC * W + b] = l & ~h;
        peq[genomics::BaseG * W + b] = ~l & h;
        peq[genomics::BaseT * W + b] = l & h;
    }
}

/**
 * Blocked Myers bit-vector edit distance of @p pat against @p text.
 *
 * fitting=false: global distance D(m, n) with boundary D(0, j) = j
 * (horizontal +1 fed into the bottom block each column). When
 * @p cutoff != kNoCutoff, returns early with any value > cutoff once
 * score_j - (columns left) proves the final distance exceeds it.
 *
 * fitting=true: free text prefix (boundary D(0, j) = 0) and suffix —
 * returns min_j D(m, j), the semi-global "fitting" distance.
 */
u32
myersDistance(const DnaView &pat, const DnaView &text, bool fitting,
              u32 cutoff)
{
    const u32 m = static_cast<u32>(pat.size());
    const u32 n = static_cast<u32>(text.size());
    if (m == 0)
        return fitting ? 0 : n;
    if (n == 0)
        return m;

    // State lives on the stack for any read-sized pattern (<= 256
    // bases); only long-pattern calls pay one allocation.
    const u32 W = (m + 63) / 64;
    u64 stackBuf[6 * kStackBlocks];
    std::vector<u64> heapBuf;
    u64 *buf = stackBuf;
    if (W > kStackBlocks) {
        heapBuf.resize(6 * static_cast<std::size_t>(W));
        buf = heapBuf.data();
    }
    u64 *const peq = buf;          // 4*W words
    u64 *const Pv = buf + 4 * W;   // W words
    u64 *const Mv = buf + 5 * W;   // W words
    buildPatternEq(pat, m, W, peq);
    for (u32 b = 0; b < W; ++b) {
        Pv[b] = ~u64{0};
        Mv[b] = 0;
    }
    u32 score = m;
    u32 best = m; // fitting: D(m, 0) = m
    const u32 scoreShift = (m - 1) & 63u; // score row's bit in last block
    const u32 WL = W - 1;

    u32 j = 0;
    const std::size_t tw = text.numWords();
    for (std::size_t wi = 0; wi < tw; ++wi) {
        u64 tword = text.word(wi);
        u32 cnt = static_cast<u32>(
            std::min<std::size_t>(32, n - 32 * wi));
        for (u32 t = 0; t < cnt; ++t, ++j) {
            const u32 c = static_cast<u32>(tword & 0x3u);
            tword >>= 2;
            const u64 *peqc = peq + c * W;
            // Horizontal delta entering the bottom block: the row-0
            // boundary of the DP matrix.
            int hin = fitting ? 0 : 1;
            for (u32 b = 0; b <= WL; ++b) {
                const u64 Pvb = Pv[b];
                const u64 Mvb = Mv[b];
                u64 Eq = peqc[b];
                const u64 hinNeg = hin < 0 ? u64{1} : u64{0};
                const u64 Xv = Eq | Mvb;
                Eq |= hinNeg;
                const u64 Xh = (((Eq & Pvb) + Pvb) ^ Pvb) | Eq;
                u64 Ph = Mvb | ~(Xh | Pvb);
                u64 Mh = Pvb & Xh;
                if (b == WL) {
                    score += static_cast<u32>((Ph >> scoreShift) & 1);
                    score -= static_cast<u32>((Mh >> scoreShift) & 1);
                }
                const int hout = static_cast<int>((Ph >> 63) & 1) -
                                 static_cast<int>((Mh >> 63) & 1);
                Ph = (Ph << 1) | (hin > 0 ? u64{1} : u64{0});
                Mh = (Mh << 1) | hinNeg;
                Pv[b] = Mh | ~(Xv | Ph);
                Mv[b] = Ph & Xv;
                hin = hout;
            }
            if (fitting) {
                best = std::min(best, score);
            } else if (cutoff != kNoCutoff &&
                       static_cast<u64>(score) >
                           static_cast<u64>(cutoff) + (n - (j + 1))) {
                // The last-row score drops by at most 1 per remaining
                // column, so the final distance provably exceeds cutoff.
                return cutoff + 1;
            }
        }
    }
    return fitting ? best : score;
}

} // namespace

u32
editDistance(const DnaView &a, const DnaView &b)
{
    // Fewer blocks when the shorter sequence is the pattern.
    const DnaView &pat = a.size() <= b.size() ? a : b;
    const DnaView &text = a.size() <= b.size() ? b : a;
    return myersDistance(pat, text, false, kNoCutoff);
}

u32
editDistanceBounded(const DnaView &a, const DnaView &b, u32 k)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    // Length difference alone exceeds the budget.
    if ((n > m ? n - m : m - n) > k)
        return k + 1;
    u32 d = myersDistance(n <= m ? a : b, n <= m ? b : a, false, k);
    return d <= k ? d : k + 1;
}

u32
candidateEditDistance(const DnaView &read, const DnaView &window, u32 center,
                      u32 slack)
{
    const u32 from = center >= slack ? center - slack : 0;
    const u64 span = read.size() + 2 * static_cast<u64>(slack);
    const u64 to = std::min<u64>(window.size(), from + span);
    const u64 m = to > from ? to - from : 0;
    if (m == 0)
        return static_cast<u32>(read.size());
    return myersDistance(read, window.sub(from, m), true, kNoCutoff);
}

// ---------------------------------------------------------------------------
// Scalar oracles (the original DP, kept cell-for-cell as ground truth).
// ---------------------------------------------------------------------------

u32
editDistanceScalar(const DnaView &a, const DnaView &b)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    std::vector<u32> row(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        row[j] = static_cast<u32>(j);
    for (std::size_t i = 1; i <= n; ++i) {
        u32 diag = row[0];
        row[0] = static_cast<u32>(i);
        for (std::size_t j = 1; j <= m; ++j) {
            u32 up = row[j];
            u32 sub = diag + (a.at(i - 1) == b.at(j - 1) ? 0 : 1);
            row[j] = std::min({ sub, up + 1, row[j - 1] + 1 });
            diag = up;
        }
    }
    return row[m];
}

u32
editDistanceBoundedScalar(const DnaView &a, const DnaView &b, u32 k)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    const u32 over = k + 1;
    // Length difference alone exceeds the budget.
    if ((n > m ? n - m : m - n) > k)
        return over;
    // Band of half-width k around the main diagonal, offset by the
    // length difference so the end cell stays in band.
    const i64 band = static_cast<i64>(k);
    std::vector<u32> row(m + 1, over);
    std::vector<u32> prev(m + 1, over);
    for (std::size_t j = 0; j <= std::min<std::size_t>(m, k); ++j)
        prev[j] = static_cast<u32>(j);
    for (std::size_t i = 1; i <= n; ++i) {
        std::fill(row.begin(), row.end(), over);
        const i64 lo = std::max<i64>(1, static_cast<i64>(i) - band);
        const i64 hi =
            std::min<i64>(static_cast<i64>(m), static_cast<i64>(i) + band);
        if (static_cast<i64>(i) - band <= 0)
            row[0] = static_cast<u32>(i);
        for (i64 j = lo; j <= hi; ++j) {
            u32 sub = prev[j - 1] +
                      (a.at(i - 1) == b.at(j - 1) ? 0 : 1);
            u32 del = prev[j] == over ? over : prev[j] + 1;
            u32 ins = row[j - 1] == over ? over : row[j - 1] + 1;
            row[j] = std::min({ sub, del, ins, over });
        }
        std::swap(row, prev);
    }
    return std::min(prev[m], over);
}

u32
candidateEditDistanceScalar(const DnaView &read, const DnaView &window,
                            u32 center, u32 slack)
{
    // Semi-global (fitting) DP over the window region the candidate can
    // legally occupy: free target prefix and suffix, read consumed
    // end to end.
    const u32 from = center >= slack ? center - slack : 0;
    const u64 span = read.size() + 2 * static_cast<u64>(slack);
    const u64 to = std::min<u64>(window.size(), from + span);
    const std::size_t n = read.size();
    const std::size_t m = to > from ? to - from : 0;
    if (m == 0)
        return static_cast<u32>(n);
    std::vector<u32> row(m + 1, 0); // free target prefix
    for (std::size_t i = 1; i <= n; ++i) {
        u32 diag = row[0];
        row[0] = static_cast<u32>(i);
        for (std::size_t j = 1; j <= m; ++j) {
            u32 up = row[j];
            u32 sub =
                diag +
                (read.at(i - 1) == window.at(from + j - 1) ? 0 : 1);
            row[j] = std::min({ sub, up + 1, row[j - 1] + 1 });
            diag = up;
        }
    }
    return *std::min_element(row.begin(), row.end()); // free suffix
}

} // namespace filters
} // namespace gpx
