#include "filters/edit_distance.hh"

#include <algorithm>
#include <vector>

namespace gpx {
namespace filters {

u32
editDistance(const genomics::DnaSequence &a, const genomics::DnaSequence &b)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    std::vector<u32> row(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        row[j] = static_cast<u32>(j);
    for (std::size_t i = 1; i <= n; ++i) {
        u32 diag = row[0];
        row[0] = static_cast<u32>(i);
        for (std::size_t j = 1; j <= m; ++j) {
            u32 up = row[j];
            u32 sub = diag + (a.at(i - 1) == b.at(j - 1) ? 0 : 1);
            row[j] = std::min({ sub, up + 1, row[j - 1] + 1 });
            diag = up;
        }
    }
    return row[m];
}

u32
editDistanceBounded(const genomics::DnaSequence &a,
                    const genomics::DnaSequence &b, u32 k)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    const u32 over = k + 1;
    // Length difference alone exceeds the budget.
    if ((n > m ? n - m : m - n) > k)
        return over;
    // Band of half-width k around the main diagonal, offset by the
    // length difference so the end cell stays in band.
    const i64 band = static_cast<i64>(k);
    std::vector<u32> row(m + 1, over);
    std::vector<u32> prev(m + 1, over);
    for (std::size_t j = 0; j <= std::min<std::size_t>(m, k); ++j)
        prev[j] = static_cast<u32>(j);
    for (std::size_t i = 1; i <= n; ++i) {
        std::fill(row.begin(), row.end(), over);
        const i64 lo = std::max<i64>(1, static_cast<i64>(i) - band);
        const i64 hi =
            std::min<i64>(static_cast<i64>(m), static_cast<i64>(i) + band);
        if (static_cast<i64>(i) - band <= 0)
            row[0] = static_cast<u32>(i);
        for (i64 j = lo; j <= hi; ++j) {
            u32 sub = prev[j - 1] +
                      (a.at(i - 1) == b.at(j - 1) ? 0 : 1);
            u32 del = prev[j] == over ? over : prev[j] + 1;
            u32 ins = row[j - 1] == over ? over : row[j - 1] + 1;
            row[j] = std::min({ sub, del, ins, over });
        }
        std::swap(row, prev);
    }
    return std::min(prev[m], over);
}

u32
candidateEditDistance(const genomics::DnaSequence &read,
                      const genomics::DnaSequence &window, u32 center,
                      u32 slack)
{
    // Semi-global (fitting) DP over the window region the candidate can
    // legally occupy: free target prefix and suffix, read consumed
    // end to end.
    const u32 from = center >= slack ? center - slack : 0;
    const u64 span = read.size() + 2 * static_cast<u64>(slack);
    const u64 to = std::min<u64>(window.size(), from + span);
    const std::size_t n = read.size();
    const std::size_t m = to > from ? to - from : 0;
    if (m == 0)
        return static_cast<u32>(n);
    std::vector<u32> row(m + 1, 0); // free target prefix
    for (std::size_t i = 1; i <= n; ++i) {
        u32 diag = row[0];
        row[0] = static_cast<u32>(i);
        for (std::size_t j = 1; j <= m; ++j) {
            u32 up = row[j];
            u32 sub =
                diag +
                (read.at(i - 1) == window.at(from + j - 1) ? 0 : 1);
            row[j] = std::min({ sub, up + 1, row[j - 1] + 1 });
            diag = up;
        }
    }
    return *std::min_element(row.begin(), row.end()); // free suffix
}

} // namespace filters
} // namespace gpx
