#include "filters/shd_filter.hh"

#include "filters/mask_ops.hh"
#include "util/simd.hh"

namespace gpx {
namespace filters {

FilterDecision
ShdFilter::evaluate(const genomics::DnaView &read,
                    const genomics::DnaView &window, u32 center,
                    u32 maxEdits) const
{
    FilterDecision d;
    if (read.empty()) {
        d.accept = true;
        return d;
    }
    auto masks = align::shiftedMasks(read, window, center, maxEdits);

    // OR of amended masks: a position is "explained" if it matches under
    // any shift via a non-accidental run. The zero-shift mask is kept
    // unamended so a perfectly matching read is never penalized at its
    // flanks.
    align::HammingMask combined = masks[maxEdits];
    for (u32 m = 0; m < masks.size(); ++m) {
        if (m == maxEdits)
            continue;
        combined =
            orMasks(combined, amendShortRuns(masks[m], params_.minMatchRun));
    }

    // Each residual error cluster needs at least one edit.
    d.estimatedEdits = zeroRunCount(combined);
    d.accept = d.estimatedEdits <= maxEdits;
    return d;
}

void
ShdFilter::evaluateBatch(const genomics::DnaView &read,
                         const genomics::DnaView *windows,
                         std::size_t count, u32 center, u32 maxEdits,
                         FilterDecision *out) const
{
    const util::SimdBackend backend = util::activeSimdBackend();
    if (backend == util::SimdBackend::Scalar || read.empty()) {
        for (std::size_t i = 0; i < count; ++i)
            out[i] = evaluate(read, windows[i], center, maxEdits);
        return;
    }

    const u32 n = static_cast<u32>(read.size());
    const u32 maxLanes = util::simdMaskLanes(backend);
    align::ShdBatch batch;
    align::BitPlanes readPlanes(read);
    std::vector<align::BitPlanes> windowPlanes(maxLanes);
    align::HammingMask mask, combined;

    std::size_t i = 0;
    while (i < count) {
        const u32 lanes =
            static_cast<u32>(std::min<std::size_t>(maxLanes, count - i));
        batch.begin(lanes, n, center, maxEdits);
        for (u32 l = 0; l < lanes; ++l) {
            windowPlanes[l].assign(windows[i + l]);
            batch.setLane(l, readPlanes, windowPlanes[l]);
        }
        batch.run();

        // Per-lane epilogue over the lane-major mask words: identical
        // arithmetic to evaluate() since the words are bit-identical
        // to the scalar shiftedMasks().
        for (u32 l = 0; l < lanes; ++l) {
            mask.bits = n;
            mask.words.resize(batch.readWords);
            combined.bits = n;
            combined.words.resize(batch.readWords);
            for (u32 w = 0; w < batch.readWords; ++w)
                combined.words[w] = batch.maskWord(maxEdits, w, l);
            for (u32 s = 0; s < batch.shifts(); ++s) {
                if (s == maxEdits)
                    continue;
                for (u32 w = 0; w < batch.readWords; ++w)
                    mask.words[w] = batch.maskWord(s, w, l);
                combined = orMasks(
                    combined, amendShortRuns(mask, params_.minMatchRun));
            }
            FilterDecision d;
            d.estimatedEdits = zeroRunCount(combined);
            d.accept = d.estimatedEdits <= maxEdits;
            out[i + l] = d;
        }
        i += lanes;
    }
}

} // namespace filters
} // namespace gpx
