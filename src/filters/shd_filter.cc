#include "filters/shd_filter.hh"

#include "filters/mask_ops.hh"

namespace gpx {
namespace filters {

FilterDecision
ShdFilter::evaluate(const genomics::DnaView &read,
                    const genomics::DnaView &window, u32 center,
                    u32 maxEdits) const
{
    FilterDecision d;
    if (read.empty()) {
        d.accept = true;
        return d;
    }
    auto masks = align::shiftedMasks(read, window, center, maxEdits);

    // OR of amended masks: a position is "explained" if it matches under
    // any shift via a non-accidental run. The zero-shift mask is kept
    // unamended so a perfectly matching read is never penalized at its
    // flanks.
    align::HammingMask combined = masks[maxEdits];
    for (u32 m = 0; m < masks.size(); ++m) {
        if (m == maxEdits)
            continue;
        combined =
            orMasks(combined, amendShortRuns(masks[m], params_.minMatchRun));
    }

    // Each residual error cluster needs at least one edit.
    d.estimatedEdits = zeroRunCount(combined);
    d.accept = d.estimatedEdits <= maxEdits;
    return d;
}

} // namespace filters
} // namespace gpx
