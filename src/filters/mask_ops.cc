#include "filters/mask_ops.hh"

#include <bit>

namespace gpx {
namespace filters {

u32
onesRunAt(const align::HammingMask &mask, u32 pos)
{
    if (pos >= mask.bits)
        return 0;
    u32 run = 0;
    u32 i = pos;
    // Walk word by word; countr_one on the shifted word gives the run
    // inside the word in one step.
    while (i < mask.bits) {
        const u32 w = i >> 6;
        const u32 b = i & 63u;
        u64 word = mask.words[w] >> b;
        const u32 avail = std::min<u32>(64 - b, mask.bits - i);
        u32 ones = static_cast<u32>(std::countr_one(word));
        if (ones >= avail) {
            run += avail;
            i += avail;
            continue;
        }
        run += ones;
        return run;
    }
    return run;
}

align::HammingMask
amendShortRuns(const align::HammingMask &mask, u32 min_run)
{
    align::HammingMask out = mask;
    u32 i = 0;
    while (i < mask.bits) {
        if (!mask.test(i)) {
            ++i;
            continue;
        }
        const u32 run = onesRunAt(mask, i);
        if (run < min_run)
            for (u32 j = i; j < i + run; ++j)
                out.words[j >> 6] &= ~(u64{1} << (j & 63u));
        i += run;
    }
    return out;
}

align::HammingMask
orMasks(const align::HammingMask &a, const align::HammingMask &b)
{
    align::HammingMask out = a;
    for (std::size_t w = 0; w < out.words.size() && w < b.words.size();
         ++w)
        out.words[w] |= b.words[w];
    return out;
}

u32
zeroRunCount(const align::HammingMask &mask)
{
    // A zero run starts wherever a 0 bit follows a 1 bit or the mask
    // boundary: starts = ~m & ((m << 1) | 1), carried across words.
    u32 runs = 0;
    u64 carry = 1; // the boundary before bit 0 counts as a 1
    for (u32 w = 0; w * 64 < mask.bits; ++w) {
        u64 word = mask.words[w];
        const u32 remaining = mask.bits - w * 64;
        if (remaining < 64) {
            // Force bits past the end to 1 so they start no run.
            word |= ~u64{0} << remaining;
        }
        const u64 starts = ~word & ((word << 1) | carry);
        runs += static_cast<u32>(std::popcount(starts));
        carry = word >> 63;
    }
    return runs;
}

u32
zeroRunCountRef(const align::HammingMask &mask)
{
    u32 runs = 0;
    bool inRun = false;
    for (u32 i = 0; i < mask.bits; ++i) {
        const bool zero = !mask.test(i);
        if (zero && !inRun)
            ++runs;
        inRun = zero;
    }
    return runs;
}

u32
zeroCount(const align::HammingMask &mask)
{
    return mask.bits - mask.popcount();
}

} // namespace filters
} // namespace gpx
