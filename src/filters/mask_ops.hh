/**
 * @file
 * Shared Hamming-mask bit operations for the filter implementations:
 * run extraction and the "amendment" passes of GateKeeper/SHD that kill
 * short spurious match runs. Masks follow align/shd.hh's convention
 * (bit set = bases match).
 */

#ifndef GPX_FILTERS_MASK_OPS_HH
#define GPX_FILTERS_MASK_OPS_HH

#include "align/shd.hh"
#include "util/types.hh"

namespace gpx {
namespace filters {

/** Length of the run of 1s starting at bit @p pos (0 if bit is 0). */
u32 onesRunAt(const align::HammingMask &mask, u32 pos);

/**
 * Amendment (GateKeeper §III-B / SHD speculative removal): zero out
 * every run of 1s strictly shorter than @p min_run. Short random match
 * runs between true errors would otherwise hide mismatches when masks
 * are OR-combined.
 */
align::HammingMask amendShortRuns(const align::HammingMask &mask,
                                  u32 min_run);

/** Bitwise OR of two equal-width masks. */
align::HammingMask orMasks(const align::HammingMask &a,
                           const align::HammingMask &b);

/**
 * Number of maximal runs of 0s (error clusters) in the mask.
 * Word-parallel: counts run starts as popcount(~m & ((m << 1) | 1))
 * with the carry threaded across words, ~64x fewer operations than the
 * bit-at-a-time walk (kept as zeroRunCountRef, the property-test
 * oracle).
 */
u32 zeroRunCount(const align::HammingMask &mask);

/** Bit-at-a-time reference implementation of zeroRunCount(). */
u32 zeroRunCountRef(const align::HammingMask &mask);

/** Number of 0 bits (positions matching under no shift). */
u32 zeroCount(const align::HammingMask &mask);

} // namespace filters
} // namespace gpx

#endif // GPX_FILTERS_MASK_OPS_HH
