#include "filters/grim_filter.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gpx {
namespace filters {

GrimFilter::GrimFilter(const genomics::Reference &ref,
                       const GrimParams &params)
    : ref_(ref), params_(params)
{
    gpx_assert(params_.q >= 2 && params_.q <= 12, "GRIM q out of range");
    tokenSpace_ = u32{1} << (2 * params_.q);
    wordsPerBin_ = std::max<u64>(1, tokenSpace_ / 64);
    const u64 binSize = u64{1} << params_.binBits;
    numBins_ = (ref.totalLength() + binSize - 1) >> params_.binBits;
    bits_.assign(numBins_ * wordsPerBin_, 0);

    // Populate each bin with the q-grams that *start* inside it. Tokens
    // near the bin end straddle into the next bin; the query side
    // compensates by OR-ing the bins the read touches.
    for (u32 c = 0; c < ref.numChromosomes(); ++c) {
        const auto &chrom = ref.chromosome(c);
        if (chrom.size() < params_.q)
            continue;
        const GlobalPos base = ref.chromosomeStart(c);
        u32 tok = 0;
        const u32 mask = tokenSpace_ - 1;
        for (std::size_t i = 0; i < chrom.size(); ++i) {
            tok = ((tok << 2) | chrom.at(i)) & mask;
            if (i + 1 < params_.q)
                continue;
            const GlobalPos start = base + i + 1 - params_.q;
            const u64 bin = start >> params_.binBits;
            bits_[bin * wordsPerBin_ + (tok >> 6)] |= u64{1}
                                                      << (tok & 63u);
        }
    }
}

u64
GrimFilter::bitvectorBytes() const
{
    return bits_.size() * sizeof(u64);
}

u32
GrimFilter::token(const genomics::DnaSequence &seq, std::size_t i) const
{
    u32 tok = 0;
    for (u32 k = 0; k < params_.q; ++k)
        tok = (tok << 2) | seq.at(i + k);
    return tok;
}

bool
GrimFilter::tokenInBin(u64 bin, u32 tok) const
{
    if (bin >= numBins_)
        return false;
    return (bits_[bin * wordsPerBin_ + (tok >> 6)] >> (tok & 63u)) & 1u;
}

u32
GrimFilter::presentTokens(const genomics::DnaSequence &read,
                          GlobalPos candidate) const
{
    if (read.size() < params_.q)
        return 0;
    // Bins the read's span can touch (one extra on each side so edits
    // that shift the true position across a boundary stay covered).
    const u64 firstBin =
        (candidate >> params_.binBits) == 0
            ? 0
            : (candidate >> params_.binBits) - 1;
    const u64 lastBin = (candidate + read.size()) >> params_.binBits;

    u32 present = 0;
    const u32 tokens = static_cast<u32>(read.size() - params_.q + 1);
    for (u32 i = 0; i < tokens; ++i) {
        const u32 tok = token(read, i);
        for (u64 bin = firstBin; bin <= lastBin + 1; ++bin) {
            if (tokenInBin(bin, tok)) {
                ++present;
                break;
            }
        }
    }
    return present;
}

FilterDecision
GrimFilter::evaluate(const genomics::DnaSequence &read, GlobalPos candidate,
                     u32 maxEdits) const
{
    FilterDecision d;
    if (read.size() < params_.q) {
        d.accept = true;
        return d;
    }
    const u32 tokens = static_cast<u32>(read.size() - params_.q + 1);
    const u32 present = presentTokens(read, candidate);
    const u32 missing = tokens - present;
    // Each edit destroys at most q overlapping tokens.
    d.estimatedEdits = (missing + params_.q - 1) / params_.q;
    d.accept = d.estimatedEdits <= maxEdits;
    return d;
}

} // namespace filters
} // namespace gpx
