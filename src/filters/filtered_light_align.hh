/**
 * @file
 * SneakySnake x Light Alignment combination (paper §8 future work).
 *
 * Light Alignment evaluates its full hypothesis space (mismatch counts,
 * insertion/deletion runs) even for candidates that cannot possibly
 * align — e.g. hash-collision candidates from the Seed Table, or decoy
 * adjacencies that survive the Paired-Adjacency filter. A cheap
 * edit-lower-bound gate ahead of it removes those candidates after a
 * single mask pass. Because the gate's estimate never exceeds the true
 * edit distance (SneakySnake's optimality), the combination cannot
 * reject anything Light Alignment would have aligned as long as the
 * gate's budget covers Light Alignment's own edit bound.
 */

#ifndef GPX_FILTERS_FILTERED_LIGHT_ALIGN_HH
#define GPX_FILTERS_FILTERED_LIGHT_ALIGN_HH

#include "filters/filter.hh"
#include "genpair/light_align.hh"

namespace gpx {
namespace filters {

/** Counters of a FilteredLightAligner run. */
struct FilteredLightStats
{
    u64 candidates = 0;     ///< align() calls
    u64 gateRejected = 0;   ///< dropped by the pre-filter
    u64 lightAttempted = 0; ///< reached the Light Aligner
    u64 lightAligned = 0;   ///< fast-path success
    u64 gateEstimateSum = 0;
    u64 hypothesesTried = 0; ///< Light Alignment work actually spent

    double
    rejectFraction() const
    {
        return candidates ? static_cast<double>(gateRejected) / candidates
                          : 0.0;
    }
};

/**
 * genpair::LightAlignGate adapter: plugs SneakySnake (or any
 * PreAlignmentFilter) into GenPairPipeline::setLightAlignGate so the
 * SS8 combination runs inside the full Fig. 3 pipeline.
 */
class FilterGate final : public genpair::LightAlignGate
{
  public:
    /**
     * @param budget Edit budget handed to the filter; must cover Light
     *        Alignment's own bound for the gate to be sound.
     */
    FilterGate(const genomics::Reference &ref,
               const PreAlignmentFilter &filter, u32 budget)
        : ref_(ref), filter_(filter), budget_(budget)
    {
    }

    bool admit(const genomics::DnaSequence &read,
               GlobalPos candidate) override;

    u64 evaluations() const { return evaluations_; }
    u64 rejections() const { return rejections_; }

  private:
    const genomics::Reference &ref_;
    const PreAlignmentFilter &filter_;
    u32 budget_;
    u64 evaluations_ = 0;
    u64 rejections_ = 0;
};

/** Light Aligner behind a pre-alignment gate. */
class FilteredLightAligner
{
  public:
    /**
     * @param ref Reference genome.
     * @param params Light Alignment parameters (the gate budget is
     *        derived from them: max(maxShift, maxMismatches)).
     * @param gate Pre-alignment filter; must outlive this object.
     */
    FilteredLightAligner(const genomics::Reference &ref,
                         const genpair::LightAlignParams &params,
                         const PreAlignmentFilter &gate)
        : ref_(ref), aligner_(ref, params), gate_(gate),
          budget_(std::max(params.maxShift, params.maxMismatches))
    {
    }

    /** Edit budget handed to the gate. */
    u32 gateBudget() const { return budget_; }

    /**
     * Gate, then light-align @p read at @p candidate. A gate reject
     * returns aligned = false with zero hypotheses spent.
     */
    genpair::LightResult align(const genomics::DnaSequence &read,
                               GlobalPos candidate);

    const FilteredLightStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

  private:
    const genomics::Reference &ref_;
    genpair::LightAligner aligner_;
    const PreAlignmentFilter &gate_;
    u32 budget_;
    FilteredLightStats stats_;
};

} // namespace filters
} // namespace gpx

#endif // GPX_FILTERS_FILTERED_LIGHT_ALIGN_HH
