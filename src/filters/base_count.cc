#include "filters/base_count.hh"

#include <algorithm>
#include <array>

namespace gpx {
namespace filters {

FilterDecision
BaseCountFilter::evaluate(const genomics::DnaSequence &read,
                          const genomics::DnaSequence &window, u32 center,
                          u32 maxEdits) const
{
    // The read may legally consume any substring of the window region
    // [center - maxEdits, center + read.size() + maxEdits); count the
    // bases available there.
    const u32 from = center >= maxEdits ? center - maxEdits : 0;
    const u64 to = std::min<u64>(
        window.size(), center + read.size() + static_cast<u64>(maxEdits));

    std::array<i64, 4> need{};
    for (std::size_t i = 0; i < read.size(); ++i)
        ++need[read.at(i)];
    for (u64 i = from; i < to; ++i)
        --need[window.at(i)];

    // Each edit supplies at most one missing base, so the total deficit
    // lower-bounds the edit distance.
    i64 deficit = 0;
    for (i64 n : need)
        deficit += std::max<i64>(0, n);

    FilterDecision d;
    d.estimatedEdits = static_cast<u32>(deficit);
    d.accept = d.estimatedEdits <= maxEdits;
    return d;
}

} // namespace filters
} // namespace gpx
