#include "filters/base_count.hh"

#include <algorithm>
#include <array>
#include <bit>

namespace gpx {
namespace filters {

FilterDecision
BaseCountFilter::evaluate(const genomics::DnaView &read,
                          const genomics::DnaView &window, u32 center,
                          u32 maxEdits) const
{
    // The read may legally consume any substring of the window region
    // [center - maxEdits, center + read.size() + maxEdits); count the
    // bases available there.
    const u32 from = center >= maxEdits ? center - maxEdits : 0;
    const u64 to = std::min<u64>(
        window.size(), center + read.size() + static_cast<u64>(maxEdits));

    // Word-parallel base histograms: split each packed word into its two
    // bit planes and popcount the four plane combinations (A=00, C=01,
    // G=10, T=11). Zero padding past the end would count as A, so A is
    // derived from the word's true base count instead.
    auto countBases = [](const genomics::DnaView &seq) {
        std::array<i64, 4> n{};
        const std::size_t nw = seq.numWords();
        for (std::size_t w = 0; w < nw; ++w) {
            u64 v = seq.word(w);
            u64 b0 = v & 0x5555555555555555ull;
            u64 b1 = (v >> 1) & 0x5555555555555555ull;
            i64 rem = static_cast<i64>(
                std::min<std::size_t>(32, seq.size() - 32 * w));
            i64 cC = std::popcount(b0 & ~b1);
            i64 cG = std::popcount(b1 & ~b0);
            i64 cT = std::popcount(b0 & b1);
            n[genomics::BaseC] += cC;
            n[genomics::BaseG] += cG;
            n[genomics::BaseT] += cT;
            n[genomics::BaseA] += rem - cC - cG - cT;
        }
        return n;
    };

    const u64 wfrom = std::min<u64>(from, window.size());
    const u64 wlen = to > wfrom ? to - wfrom : 0;
    std::array<i64, 4> need = countBases(read);
    std::array<i64, 4> have = countBases(window.sub(wfrom, wlen));
    for (std::size_t b = 0; b < 4; ++b)
        need[b] -= have[b];

    // Each edit supplies at most one missing base, so the total deficit
    // lower-bounds the edit distance.
    i64 deficit = 0;
    for (i64 n : need)
        deficit += std::max<i64>(0, n);

    FilterDecision d;
    d.estimatedEdits = static_cast<u32>(deficit);
    d.accept = d.estimatedEdits <= maxEdits;
    return d;
}

} // namespace filters
} // namespace gpx
