#include "filters/filtered_light_align.hh"

namespace gpx {
namespace filters {

bool
FilterGate::admit(const genomics::DnaSequence &read, GlobalPos candidate)
{
    ++evaluations_;
    const GlobalPos from = candidate >= budget_ ? candidate - budget_ : 0;
    const u32 center = static_cast<u32>(candidate - from);
    genomics::DnaView window =
        ref_.windowView(from, read.size() + 2 * static_cast<u64>(budget_));
    const bool ok =
        filter_.evaluate(read, window, center, budget_).accept;
    if (!ok)
        ++rejections_;
    return ok;
}

genpair::LightResult
FilteredLightAligner::align(const genomics::DnaSequence &read,
                            GlobalPos candidate)
{
    ++stats_.candidates;

    // Build the same shifted window Light Alignment would inspect.
    const u32 e = budget_;
    const GlobalPos from = candidate >= e ? candidate - e : 0;
    const u32 center = static_cast<u32>(candidate - from);
    genomics::DnaView window =
        ref_.windowView(from, read.size() + 2 * static_cast<u64>(e));

    FilterDecision gate = gate_.evaluate(read, window, center, e);
    stats_.gateEstimateSum += gate.estimatedEdits;
    if (!gate.accept) {
        ++stats_.gateRejected;
        return {};
    }

    ++stats_.lightAttempted;
    genpair::LightResult r = aligner_.align(read, candidate);
    stats_.hypothesesTried += r.hypothesesTried;
    if (r.aligned)
        ++stats_.lightAligned;
    return r;
}

} // namespace filters
} // namespace gpx
