/**
 * @file
 * Two-piece affine-gap dynamic-programming alignment with full traceback.
 *
 * This is the repository's "expensive DP" substrate: it plays the role of
 * Minimap2's ksw2 aligner in the software baseline and of the GenDP
 * accelerator's Banded Smith-Waterman in the fallback path (paper §7.4).
 * Gap cost follows the two-piece model min(q1 + k*e1, q2 + k*e2) so DP
 * scores are directly comparable with the Light Alignment scores.
 */

#ifndef GPX_ALIGN_AFFINE_HH
#define GPX_ALIGN_AFFINE_HH

#include <vector>

#include "genomics/cigar.hh"
#include "genomics/scoring.hh"
#include "genomics/sequence.hh"
#include "util/types.hh"

namespace gpx {
namespace align {

/**
 * Reusable DP working set: traceback matrix, score rows and decoded
 * operands. One alignment allocated all of these per call in the seed
 * implementation; a driver-held scratch amortizes them across every
 * alignment of a batch (the fallback path runs thousands per chunk).
 */
struct AlignScratch
{
    std::vector<u8> traceback;
    std::vector<u8> queryCodes;
    std::vector<u8> targetCodes;
    std::vector<i32> hPrev;
    std::vector<i32> hCur;
    std::vector<i32> f1;
    std::vector<i32> f2;
};

/** Result of a DP alignment. */
struct AlignResult
{
    bool valid = false;
    i32 score = 0;
    genomics::Cigar cigar;
    /** First target base consumed by the alignment. */
    u64 targetStart = 0;
    /** One past the last target base consumed. */
    u64 targetEnd = 0;
    /** Number of DP matrix cells evaluated (MCUPS bookkeeping, §7.4). */
    u64 cellUpdates = 0;
};

/**
 * Fitting alignment: the whole query must align, the target start and end
 * are free. This is the shape of the DP-fallback alignment of a 150 bp
 * read inside a candidate reference window.
 *
 * @param query Read sequence (aligned end-to-end).
 * @param target Reference window.
 * @param scheme Scoring parameters.
 * @param band Optional band half-width around the main diagonal;
 *             negative disables banding.
 */
AlignResult fitAlign(const genomics::DnaView &query,
                     const genomics::DnaView &target,
                     const genomics::ScoringScheme &scheme,
                     i32 band = -1);

/** fitAlign() reusing @p scratch (bit-identical, allocation-free warm). */
AlignResult fitAlign(const genomics::DnaView &query,
                     const genomics::DnaView &target,
                     const genomics::ScoringScheme &scheme, i32 band,
                     AlignScratch &scratch);

/**
 * The seed (pre-optimization) fitting-alignment engine, kept verbatim
 * as the correctness oracle for the branchless banded engine above —
 * the same pattern the bit-parallel kernels use for their scalar
 * oracles. Also the honest "pre-refactor" side of bench/micro_stage_batch.
 */
AlignResult fitAlignRef(const genomics::DnaView &query,
                        const genomics::DnaView &target,
                        const genomics::ScoringScheme &scheme,
                        i32 band = -1);

/** One fitting alignment of a batch (see fitAlignBatch). */
struct FitTask
{
    genomics::DnaView query;
    genomics::DnaView target;
    /** Band half-width; negative disables banding. */
    i32 band = -1;
};

/**
 * Working set of the interleaved batch engine: lane-major (struct-of-
 * lanes) H/E/F rows, decoded operands and the lane-major traceback
 * matrix, plus a scalar AlignScratch for the portable backend. Sized
 * by the widest lane group seen; reuse across calls is allocation-free
 * once warm.
 */
struct BatchAlignScratch
{
    std::vector<u8> traceback; ///< [(i*(nMax+1)+j)*L + lane]
    std::vector<i32> queryCodes;  ///< [(i-1)*L + lane]
    std::vector<i32> targetCodes; ///< [(j-1)*L + lane]
    std::vector<i32> hPrev;
    std::vector<i32> hCur;
    std::vector<i32> f1;
    std::vector<i32> f2;
    std::vector<u8> decodeTmp; ///< contiguous decode staging
    AlignScratch scalar;       ///< SimdBackend::Scalar fallback path
};

/**
 * Fitting alignment of @p count independent tasks, interleaved across
 * SIMD lanes: out[i] is bit-identical to
 * fitAlign(tasks[i].query, tasks[i].target, scheme, tasks[i].band) —
 * lanes never exchange data, each computes exactly the scalar engine's
 * arithmetic — but consecutive tasks with equal query length advance
 * in lockstep through one band sweep (8 lanes under AVX2, 16 under
 * AVX-512; per-lane masking covers ragged target lengths and bands).
 * The active util::SimdBackend picks the lane width; the scalar
 * backend runs the production scalar engine per task.
 */
void fitAlignBatch(const FitTask *tasks, std::size_t count,
                   const genomics::ScoringScheme &scheme,
                   BatchAlignScratch &scratch, AlignResult *out);

/**
 * Global alignment: both sequences consumed end to end. Used by unit tests
 * and by the chain-gap stitching of the long-read path.
 */
AlignResult globalAlign(const genomics::DnaView &query,
                        const genomics::DnaView &target,
                        const genomics::ScoringScheme &scheme,
                        i32 band = -1);

/**
 * Local (Smith-Waterman) alignment: best-scoring subsequence pair. The
 * CIGAR covers only the aligned core; queryStart reports where it begins.
 */
struct LocalResult
{
    bool valid = false;
    i32 score = 0;
    genomics::Cigar cigar;
    u64 queryStart = 0;
    u64 targetStart = 0;
    u64 cellUpdates = 0;
};

LocalResult localAlign(const genomics::DnaView &query,
                       const genomics::DnaView &target,
                       const genomics::ScoringScheme &scheme);

} // namespace align
} // namespace gpx

#endif // GPX_ALIGN_AFFINE_HH
