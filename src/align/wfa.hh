/**
 * @file
 * Gap-affine Wavefront Alignment (WFA) [Marco-Sola+ 2021], cited by the
 * paper's related work as a GPU/vector-friendly DP alternative.
 *
 * WFA computes a min-penalty global alignment in O(ns) time, where s is
 * the optimal penalty — for the near-identical sequences that dominate
 * read mapping it touches a tiny fraction of the O(nm) DP matrix. The
 * repository uses it as an ablation substrate: `bench/ablation_wfa`
 * compares its work against the banded Smith-Waterman engine GenDP
 * models, quantifying when a WFA-based fallback would beat a DP-matrix
 * one (a design alternative for the §7.4 fallback engine).
 *
 * Penalties: match 0, mismatch x, gap open o, gap extend e (a k-gap
 * costs o + k*e). With x=1, o=0, e=1 the penalty equals unit edit
 * distance, which the tests exploit as an oracle.
 */

#ifndef GPX_ALIGN_WFA_HH
#define GPX_ALIGN_WFA_HH

#include "genomics/cigar.hh"
#include "genomics/sequence.hh"
#include "util/types.hh"

namespace gpx {
namespace align {

/** WFA penalty configuration (all costs non-negative; match is free). */
struct WfaPenalties
{
    u32 mismatch = 4;
    u32 gapOpen = 6;
    u32 gapExtend = 2;

    /** Unit-cost configuration: penalty == Levenshtein distance. */
    static WfaPenalties
    unit()
    {
        return { 1, 0, 1 };
    }
};

/** Result of a WFA alignment. */
struct WfaResult
{
    /** False when the penalty cap was hit before alignment completed. */
    bool valid = false;
    u32 penalty = 0;
    genomics::Cigar cigar;
    /**
     * Wavefront offsets computed (the WFA work metric, comparable to DP
     * cell updates).
     */
    u64 wavefrontOps = 0;
};

/**
 * Global gap-affine alignment of @p query against @p text.
 *
 * @param max_penalty Abandon the alignment when the penalty would
 *        exceed this cap (the adaptive-band role); ~u32{0} = unbounded.
 */
WfaResult wfaGlobalAlign(const genomics::DnaSequence &query,
                         const genomics::DnaSequence &text,
                         const WfaPenalties &penalties = {},
                         u32 max_penalty = ~u32{0});

} // namespace align
} // namespace gpx

#endif // GPX_ALIGN_WFA_HH
